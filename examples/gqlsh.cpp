// gqlsh — an interactive Cypher shell over an in-memory gqlite engine.
//
//   ./build/examples/gqlsh            # empty graph
//   ./build/examples/gqlsh --demo     # preloaded citation graph (Figure 1)
//
// Meta commands:
//   :explain <query>   show the Volcano plan
//   :profile <query>   run and show per-operator row counts
//   :stats             graph summary
//   :mode interp|volcano
//   :quit

#include <iostream>
#include <string>

#include "src/core/engine.h"
#include "src/workload/paper_graphs.h"

using namespace gqlite;

namespace {

void PrintStats(CypherEngine& engine) {
  const PropertyGraph& g = engine.graph();
  std::cout << g.NumNodes() << " nodes, " << g.NumRels()
            << " relationships\n";
  for (const auto& [label_id, count] : g.LabelCounts()) {
    if (count > 0) {
      std::cout << "  :" << g.labels().ToString(label_id) << " x" << count
                << "\n";
    }
  }
  const PlanCacheStats& pc = engine.plan_cache_stats();
  std::cout << "plan cache: " << engine.plan_cache_size() << "/"
            << engine.plan_cache_capacity() << " entries, " << pc.hits
            << " hits, " << pc.misses << " misses, " << pc.evictions
            << " evictions, " << pc.invalidations << " invalidations\n";
  const BatchStats& ex = engine.exec_stats();
  std::cout << "execution: " << engine.exec_queries() << " queries, "
            << ex.rows << " rows in " << ex.batches << " batches (morsel size "
            << engine.options().batch_size;
  if (ex.batches > 0) {
    std::cout << ", avg " << (ex.rows / ex.batches) << " rows/batch";
  }
  std::cout << ")\n";
  const auto& par = engine.parallel_stats();
  std::cout << "parallel: " << engine.options().num_threads << " workers, "
            << par.queries << " parallel queries, " << par.morsels
            << " scan morsels dispatched, " << par.merge_tasks
            << " merge tasks\n";
  std::cout << "parallel merges: " << par.sort_merges << " sort, "
            << par.agg_merges << " partitioned aggregation, "
            << par.distinct_merges << " partitioned DISTINCT\n";
  if (!par.serial_reasons.empty()) {
    std::cout << "serial fallbacks:\n";
    for (const auto& [reason, count] : par.serial_reasons) {
      std::cout << "  " << count << "x " << reason << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  CypherEngine engine;

  if (argc > 1 && std::string(argv[1]) == "--demo") {
    // Load the paper's Figure 1 graph via Cypher so the shell starts with
    // something to explore.
    auto r = engine.Execute(
        "CREATE (n1:Researcher {name: 'Nils'}), "
        "(n2:Publication {acmid: 220}), (n3:Publication {acmid: 190}), "
        "(n4:Publication {acmid: 235}), (n5:Publication {acmid: 240}), "
        "(n6:Researcher {name: 'Elin'}), (n7:Student {name: 'Sten'}), "
        "(n8:Student {name: 'Linda'}), (n9:Publication {acmid: 269}), "
        "(n10:Researcher {name: 'Thor'}), "
        "(n1)-[:AUTHORS]->(n2), (n2)-[:CITES]->(n3), (n4)-[:CITES]->(n2), "
        "(n5)-[:CITES]->(n2), (n6)-[:AUTHORS]->(n5), "
        "(n6)-[:SUPERVISES]->(n7), (n6)-[:SUPERVISES]->(n8), "
        "(n10)-[:SUPERVISES]->(n7), (n9)-[:CITES]->(n4), "
        "(n6)-[:AUTHORS]->(n9), (n9)-[:CITES]->(n5)");
    if (!r.ok()) {
      std::cerr << "demo load failed: " << r.status().ToString() << "\n";
      return 1;
    }
    std::cout << "loaded the paper's Figure 1 graph (" << r->stats.ToString()
              << ")\n";
  }

  std::cout << "gqlite shell — Cypher per Francis et al., SIGMOD 2018.\n"
               "Type a query, or :help.\n";
  std::string line;
  while (true) {
    std::cout << "gql> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;

    if (line == ":quit" || line == ":exit") break;
    if (line == ":help") {
      std::cout << ":explain <q>  :profile <q>  :stats  "
                   ":mode interp|volcano  :quit\n";
      continue;
    }
    if (line == ":stats") {
      PrintStats(engine);
      continue;
    }
    if (line.rfind(":mode", 0) == 0) {
      EngineOptions opts = engine.options();
      if (line.find("interp") != std::string::npos) {
        opts.mode = ExecutionMode::kInterpreter;
        std::cout << "executing on the reference interpreter\n";
      } else {
        opts.mode = ExecutionMode::kVolcano;
        std::cout << "executing on the Volcano runtime\n";
      }
      engine.set_options(opts);
      continue;
    }
    if (line.rfind(":explain ", 0) == 0) {
      auto plan = engine.Explain(line.substr(9));
      std::cout << (plan.ok() ? *plan : plan.status().ToString() + "\n");
      continue;
    }
    if (line.rfind(":profile ", 0) == 0) {
      auto plan = engine.Profile(line.substr(9));
      std::cout << (plan.ok() ? *plan : plan.status().ToString() + "\n");
      continue;
    }

    auto result = engine.Execute(line);
    if (!result.ok()) {
      std::cout << result.status().ToString() << "\n";
      continue;
    }
    std::cout << result->ToString(&engine.graph());
  }
  return 0;
}
