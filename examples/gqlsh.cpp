// gqlsh — an interactive Cypher shell over a gqlite database.
//
//   ./build/examples/gqlsh              # in-memory, empty graph
//   ./build/examples/gqlsh --demo       # preloaded citation graph (Figure 1)
//   ./build/examples/gqlsh --db <dir>   # durable database rooted at <dir>
//
// With --db, every committed write is appended to <dir>/wal.log before
// the prompt returns, and restarting the shell on the same directory
// recovers the exact committed state.
//
// Meta commands:
//   :explain <query>   show the Volcano plan
//   :profile <query>   run and show per-operator row counts
//   :stats             graph summary
//   :checkpoint        fold the WAL into a fast-loading baseline (--db)
//   :mode interp|volcano
//   :quit

#include <iostream>
#include <string>

#include "src/core/database.h"
#include "src/workload/paper_graphs.h"

using namespace gqlite;

namespace {

void PrintStats(Database& db) {
  const PropertyGraph& g = db.graph();
  CypherEngine& engine = db.engine();
  std::cout << g.NumNodes() << " nodes, " << g.NumRels()
            << " relationships\n";
  for (const auto& [label_id, count] : g.LabelCounts()) {
    if (count > 0) {
      std::cout << "  :" << g.labels().ToString(label_id) << " x" << count
                << "\n";
    }
  }
  const PlanCacheStats& pc = engine.plan_cache_stats();
  std::cout << "plan cache: " << engine.plan_cache_size() << "/"
            << engine.plan_cache_capacity() << " entries, " << pc.hits
            << " hits, " << pc.misses << " misses, " << pc.evictions
            << " evictions, " << pc.invalidations << " invalidations\n";
  const BatchStats& ex = engine.exec_stats();
  std::cout << "execution: " << engine.exec_queries() << " queries, "
            << ex.rows << " rows in " << ex.batches << " batches (morsel size "
            << engine.options().batch_size;
  if (ex.batches > 0) {
    std::cout << ", avg " << (ex.rows / ex.batches) << " rows/batch";
  }
  std::cout << ")\n";
  const auto& par = engine.parallel_stats();
  std::cout << "parallel: " << engine.options().num_threads << " workers, "
            << par.queries << " parallel queries, " << par.morsels
            << " scan morsels dispatched, " << par.merge_tasks
            << " merge tasks\n";
  std::cout << "parallel merges: " << par.sort_merges << " sort, "
            << par.agg_merges << " partitioned aggregation, "
            << par.distinct_merges << " partitioned DISTINCT\n";
  if (!par.serial_reasons.empty()) {
    std::cout << "serial fallbacks:\n";
    for (const auto& [reason, count] : par.serial_reasons) {
      std::cout << "  " << count << "x " << reason << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool demo = false;
  std::string db_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--db" && i + 1 < argc) {
      db_path = argv[++i];
    } else {
      std::cerr << "usage: gqlsh [--demo] [--db <dir>]\n";
      return 2;
    }
  }

  auto opened = db_path.empty() ? Database::OpenInMemory()
                                : Database::Open(db_path);
  if (!opened.ok()) {
    std::cerr << "open failed: " << opened.status().ToString() << "\n";
    return 1;
  }
  Database db = std::move(*opened);
  if (!db_path.empty()) {
    std::cout << "durable database at " << db_path << ": "
              << db.graph().NumNodes() << " nodes, " << db.graph().NumRels()
              << " relationships recovered\n";
  }

  if (demo) {
    // Load the paper's Figure 1 graph via Cypher so the shell starts with
    // something to explore.
    auto r = db.Execute(
        "CREATE (n1:Researcher {name: 'Nils'}), "
        "(n2:Publication {acmid: 220}), (n3:Publication {acmid: 190}), "
        "(n4:Publication {acmid: 235}), (n5:Publication {acmid: 240}), "
        "(n6:Researcher {name: 'Elin'}), (n7:Student {name: 'Sten'}), "
        "(n8:Student {name: 'Linda'}), (n9:Publication {acmid: 269}), "
        "(n10:Researcher {name: 'Thor'}), "
        "(n1)-[:AUTHORS]->(n2), (n2)-[:CITES]->(n3), (n4)-[:CITES]->(n2), "
        "(n5)-[:CITES]->(n2), (n6)-[:AUTHORS]->(n5), "
        "(n6)-[:SUPERVISES]->(n7), (n6)-[:SUPERVISES]->(n8), "
        "(n10)-[:SUPERVISES]->(n7), (n9)-[:CITES]->(n4), "
        "(n6)-[:AUTHORS]->(n9), (n9)-[:CITES]->(n5)");
    if (!r.ok()) {
      std::cerr << "demo load failed: " << r.status().ToString() << "\n";
      return 1;
    }
    std::cout << "loaded the paper's Figure 1 graph (" << r->stats.ToString()
              << ")\n";
  }

  std::cout << "gqlite shell — Cypher per Francis et al., SIGMOD 2018.\n"
               "Type a query, or :help.\n";
  std::string line;
  while (true) {
    std::cout << "gql> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;

    if (line == ":quit" || line == ":exit") break;
    if (line == ":help") {
      std::cout << ":explain <q>  :profile <q>  :stats  :checkpoint  "
                   ":mode interp|volcano  :quit\n";
      continue;
    }
    if (line == ":stats") {
      PrintStats(db);
      continue;
    }
    if (line == ":checkpoint") {
      Status st = db.Checkpoint();
      if (!st.ok()) {
        std::cout << st.ToString() << "\n";
      } else if (db_path.empty()) {
        std::cout << "in-memory database; nothing to checkpoint\n";
      } else {
        std::cout << "checkpoint written; WAL truncated\n";
      }
      continue;
    }
    if (line.rfind(":mode", 0) == 0) {
      EngineOptions opts = db.engine().options();
      if (line.find("interp") != std::string::npos) {
        opts.mode = ExecutionMode::kInterpreter;
        std::cout << "executing on the reference interpreter\n";
      } else {
        opts.mode = ExecutionMode::kVolcano;
        std::cout << "executing on the Volcano runtime\n";
      }
      Status st = db.engine().set_options(opts);
      if (!st.ok()) std::cout << st.ToString() << "\n";
      continue;
    }
    if (line.rfind(":explain ", 0) == 0) {
      auto plan = db.Explain(line.substr(9));
      std::cout << (plan.ok() ? *plan : plan.status().ToString() + "\n");
      continue;
    }
    if (line.rfind(":profile ", 0) == 0) {
      auto plan = db.Profile(line.substr(9));
      std::cout << (plan.ok() ? *plan : plan.status().ToString() + "\n");
      continue;
    }

    auto result = db.Execute(line);
    if (!result.ok()) {
      std::cout << result.status().ToString() << "\n";
      continue;
    }
    std::cout << result->ToString(&db.graph());
  }
  return 0;
}
