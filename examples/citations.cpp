// Citation analysis on the paper's own Figure 1 graph and on a larger
// synthetic citation network: reproduces the §3 worked example end to end
// (the query whose intermediate tables the paper prints) and extends it
// with h-index-style analytics.

#include <iostream>

#include "src/core/database.h"
#include "src/frontend/parser.h"
#include "src/interp/interpreter.h"
#include "src/workload/generators.h"
#include "src/workload/paper_graphs.h"

using namespace gqlite;  // example code; the library is namespaced

namespace {

void RunOn(GraphPtr graph, const char* query) {
  std::cout << "cypher> " << query << "\n";
  // Point the database at the prebuilt graph via the catalog: FROM GRAPH
  // selects it (Cypher 10).
  auto db = Database::OpenInMemory();
  if (!db.ok()) {
    std::cout << "  " << db.status().ToString() << "\n\n";
    return;
  }
  db->RegisterGraph("paper", graph);
  auto result = db->Execute(std::string("FROM GRAPH paper ") + query);
  if (!result.ok()) {
    std::cout << "  " << result.status().ToString() << "\n\n";
    return;
  }
  std::cout << result->table.ToString(graph.get()) << "\n";
}

}  // namespace

int main() {
  // ---- The paper's Figure 1 graph -----------------------------------------
  workload::PaperFigure1 fig = workload::MakePaperFigure1Graph();
  std::cout << "=== Figure 1 graph: " << fig.graph->NumNodes()
            << " nodes, " << fig.graph->NumRels() << " relationships ===\n\n";

  // The §3 worked example: supervision counts and transitive citations.
  RunOn(fig.graph,
        "MATCH (r:Researcher) "
        "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
        "WITH r, count(s) AS studentsSupervised "
        "MATCH (r)-[:AUTHORS]->(p1:Publication) "
        "OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication) "
        "RETURN r.name, studentsSupervised, "
        "count(DISTINCT p2) AS citedCount");

  // Direct citations per publication.
  RunOn(fig.graph,
        "MATCH (p:Publication) OPTIONAL MATCH (p)<-[:CITES]-(citing) "
        "RETURN p.acmid, count(citing) AS directCitations "
        "ORDER BY directCitations DESC, p.acmid");

  // Citation chains as paths.
  RunOn(fig.graph,
        "MATCH (a:Publication)-[cs:CITES*2..3]->(b:Publication) "
        "RETURN a.acmid, size(cs) AS chainLength, b.acmid "
        "ORDER BY a.acmid, chainLength, b.acmid");

  // ---- A larger synthetic citation network --------------------------------
  workload::CitationConfig cfg;
  cfg.num_researchers = 200;
  cfg.pubs_per_researcher = 4;
  cfg.avg_cites_per_pub = 3.0;
  GraphPtr big = workload::MakeCitationGraph(cfg);
  std::cout << "=== Synthetic citation network: " << big->NumNodes()
            << " nodes, " << big->NumRels() << " relationships ===\n\n";

  RunOn(big,
        "MATCH (r:Researcher)-[:AUTHORS]->(p:Publication) "
        "OPTIONAL MATCH (p)<-[:CITES]-(c:Publication) "
        "WITH r, p, count(c) AS cites "
        "WITH r, collect(cites) AS perPaper, sum(cites) AS total "
        "RETURN r.name, size(perPaper) AS papers, total "
        "ORDER BY total DESC LIMIT 5");

  RunOn(big,
        "MATCH (p:Publication) WHERE NOT (p)<-[:CITES]-() "
        "RETURN count(p) AS uncitedPublications");

  return 0;
}
