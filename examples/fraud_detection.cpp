// Fraud-ring detection (§3 industry example 2): account holders sharing
// personal information (SSNs, phone numbers, addresses) form potential
// fraud rings. Runs the paper's query on a synthetic dataset and drills
// into the rings it finds.

#include <iostream>

#include "src/core/database.h"
#include "src/workload/generators.h"

using namespace gqlite;

int main() {
  workload::FraudConfig cfg;
  cfg.num_holders = 5000;
  cfg.num_rings = 12;
  cfg.ring_size = 4;
  GraphPtr data = workload::MakeFraudGraph(cfg);

  auto opened = Database::OpenInMemory();
  if (!opened.ok()) {
    std::cerr << opened.status().ToString() << "\n";
    return 1;
  }
  Database db = std::move(*opened);
  db.RegisterGraph("accounts", data);

  std::cout << "Account graph: " << data->NumNodes() << " nodes, "
            << data->NumRels() << " relationships\n\n";

  // The paper's fraud query (§3), with the fraudRingCount alias used in
  // the filter.
  auto rings = db.Execute(
      "FROM GRAPH accounts "
      "MATCH (accHolder:AccountHolder)-[:HAS]->(pInfo) "
      "WHERE pInfo:SSN OR pInfo:PhoneNumber OR pInfo:Address "
      "WITH pInfo, "
      "     collect(accHolder.uniqueId) AS accountHolders, "
      "     count(*) AS fraudRingCount "
      "WHERE fraudRingCount > 1 "
      "RETURN accountHolders, "
      "       labels(pInfo) AS personalInformation, "
      "       fraudRingCount "
      "ORDER BY fraudRingCount DESC, personalInformation");
  if (!rings.ok()) {
    std::cerr << rings.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Potential fraud rings (shared personal information):\n"
            << rings->table.ToString(data.get()) << "\n";

  // Ring sizes by information type.
  auto by_type = db.Execute(
      "FROM GRAPH accounts "
      "MATCH (h:AccountHolder)-[:HAS]->(pInfo) "
      "WITH pInfo, count(h) AS holders WHERE holders > 1 "
      "UNWIND labels(pInfo) AS kind "
      "RETURN kind, count(*) AS sharedItems, max(holders) AS largestRing "
      "ORDER BY kind");
  if (by_type.ok()) {
    std::cout << "Shared-information summary:\n"
              << by_type->table.ToString() << "\n";
  }

  // Second-degree exposure: holders connected to a flagged holder through
  // any shared information item.
  auto exposure = db.Execute(
      "FROM GRAPH accounts "
      "MATCH (a:AccountHolder)-[:HAS]->(p)<-[:HAS]-(b:AccountHolder) "
      "WHERE a.uniqueId < b.uniqueId "
      "RETURN count(*) AS linkedPairs");
  if (exposure.ok()) {
    std::cout << "Holder pairs linked through shared information:\n"
              << exposure->table.ToString() << "\n";
  }
  return 0;
}
