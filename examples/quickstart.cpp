// Quickstart: open a database, create a small property graph with
// Cypher, query it, update it, and look at a query plan. Build & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "src/core/database.h"

using gqlite::Database;
using gqlite::Value;
using gqlite::ValueMap;

namespace {

/// Runs a query and prints the rendered result (or the error).
void Run(Database& db, const char* query, const ValueMap& params = {}) {
  std::cout << "cypher> " << query << "\n";
  auto result = db.Execute(query, params);
  if (!result.ok()) {
    std::cout << "  " << result.status().ToString() << "\n\n";
    return;
  }
  std::cout << result->ToString(&db.graph()) << "\n";
}

}  // namespace

int main() {
  // In-memory database; Database::Open("/some/dir") instead makes every
  // committed write durable (WAL + checkpoints, crash recovery).
  auto opened = Database::OpenInMemory();
  if (!opened.ok()) {
    std::cerr << opened.status().ToString() << "\n";
    return 1;
  }
  Database db = std::move(*opened);

  // --- Create data (the update language of §2). --------------------------
  Run(db,
      "CREATE (ada:Person {name: 'Ada', born: 1815})-[:KNOWS {since: 1833}]->"
      "(charles:Person {name: 'Charles', born: 1791}), "
      "(ada)-[:LIKES]->(math:Topic {name: 'Mathematics'}), "
      "(charles)-[:LIKES]->(math)");

  // --- Pattern matching ("ASCII art", §2). --------------------------------
  Run(db,
      "MATCH (a:Person)-[:LIKES]->(t:Topic)<-[:LIKES]-(b:Person) "
      "WHERE a.name < b.name "
      "RETURN a.name, b.name, t.name AS sharedTopic");

  // --- Query parameters (§2: injection-safe by construction). ------------
  ValueMap params;
  params["name"] = Value::String("Ada");
  Run(db, "MATCH (p:Person {name: $name}) RETURN p.born", params);

  // --- Aggregation with implicit grouping (§3). ---------------------------
  Run(db,
      "MATCH (p:Person)-[:LIKES]->(t:Topic) "
      "RETURN t.name, count(p) AS fans, collect(p.name) AS names");

  // --- OPTIONAL MATCH and null handling. ----------------------------------
  Run(db,
      "MATCH (p:Person) OPTIONAL MATCH (p)-[:MENTORS]->(m) "
      "RETURN p.name, m");

  // --- Updates: MERGE is match-or-create. ---------------------------------
  Run(db,
      "MERGE (t:Topic {name: 'Mathematics'}) "
      "ON MATCH SET t.popular = true RETURN t");
  Run(db, "MATCH (p:Person {name: 'Ada'}) SET p.famous = true");
  Run(db, "MATCH (p:Person) RETURN p.name, p.famous");

  // --- EXPLAIN: the Volcano plan (§2 "Neo4j implementation"). -------------
  auto plan = db.Explain(
      "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE b.born < 1800 "
      "RETURN a.name");
  if (plan.ok()) {
    std::cout << "EXPLAIN MATCH (a:Person)-[:KNOWS]->(b:Person) ...\n"
              << *plan << "\n";
  }

  // --- Temporal values (Cypher 10 preview, §6). ----------------------------
  Run(db,
      "RETURN date('1815-12-10') AS born, "
      "date('1815-12-10') + duration('P27Y') AS analyticalEngineEra");

  return 0;
}
