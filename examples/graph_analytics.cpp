// Graph analytics: combines Cypher querying with the built-in algorithm
// library (§1: graph databases provide "built-in support for graph
// algorithms (e.g., Page Rank, subgraph matching and so on)") — PageRank
// over a citation network, shortest dependency paths, components and
// triangles in a social graph.

#include <algorithm>
#include <iostream>
#include <vector>

#include "src/algo/graph_algorithms.h"
#include "src/core/database.h"
#include "src/workload/generators.h"

using namespace gqlite;

int main() {
  // ---- PageRank over citations -------------------------------------------
  workload::CitationConfig ccfg;
  ccfg.num_researchers = 120;
  ccfg.pubs_per_researcher = 3;
  ccfg.avg_cites_per_pub = 2.5;
  GraphPtr citations = workload::MakeCitationGraph(ccfg);

  auto pr = algo::PageRank(*citations);
  std::vector<std::pair<double, NodeId>> ranked;
  for (const auto& [id, score] : pr) {
    NodeId n{id};
    if (citations->NodeHasLabel(n, "Publication")) {
      ranked.push_back({score, n});
    }
  }
  std::sort(ranked.rbegin(), ranked.rend(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::cout << "Top publications by PageRank over CITES/AUTHORS edges:\n";
  for (size_t i = 0; i < 5 && i < ranked.size(); ++i) {
    std::cout << "  acmid "
              << citations->NodeProperty(ranked[i].second, "acmid").ToString()
              << "  score " << ranked[i].first << "\n";
  }

  // Cross-check with a Cypher query: in-degree correlates with PageRank.
  auto opened = Database::OpenInMemory();
  if (!opened.ok()) {
    std::cerr << opened.status().ToString() << "\n";
    return 1;
  }
  Database db = std::move(*opened);
  db.RegisterGraph("cites", citations);
  auto top_cited = db.Execute(
      "FROM GRAPH cites MATCH (p:Publication)<-[:CITES]-(q) "
      "RETURN p.acmid AS acmid, count(q) AS cites "
      "ORDER BY cites DESC LIMIT 5");
  if (top_cited.ok()) {
    std::cout << "\nTop publications by direct citations (Cypher):\n"
              << top_cited->table.ToString();
  }

  // ---- Shortest paths in a dependency network ------------------------------
  workload::DependencyConfig dcfg;
  dcfg.layers = 4;
  dcfg.per_layer = 20;
  dcfg.fanout = 2;
  GraphPtr deps = workload::MakeDependencyNetwork(dcfg);
  algo::TraversalOptions via_depends;
  via_depends.type = "DEPENDS_ON";
  // svc-3-5 down to the core.
  NodeId top = deps->NodesWithLabel("Service")[3 * 20 + 5];
  NodeId core = deps->NodesWithLabel("Service")[0];
  auto path = algo::ShortestPath(*deps, top, core, via_depends);
  std::cout << "\nShortest dependency chain from svc-3-5 to the core: ";
  if (path) {
    std::cout << path->length() << " hops\n  " << deps->Render(
        Value::MakePath(*path)) << "\n";
  } else {
    std::cout << "none\n";
  }

  // ---- Social structure ------------------------------------------------------
  workload::SocialConfig scfg;
  scfg.num_people = 400;
  scfg.avg_friends = 6;
  GraphPtr soc = workload::MakeSocialNetwork(scfg);
  auto comp = algo::WeaklyConnectedComponents(*soc);
  std::unordered_map<uint64_t, size_t> sizes;
  for (const auto& [node, c] : comp) ++sizes[c];
  size_t largest = 0;
  for (const auto& [c, n] : sizes) largest = std::max(largest, n);
  std::cout << "\nSocial graph: " << sizes.size()
            << " weakly connected components; largest has " << largest
            << " of " << soc->NumNodes() << " nodes\n";
  std::cout << "Triangles (friend-of-a-friend closures): "
            << algo::TriangleCount(*soc) << "\n";

  std::cout << "Degree histogram (degree: nodes):";
  auto hist = algo::DegreeHistogram(*soc);
  size_t shown = 0;
  for (const auto& [deg, count] : hist) {
    if (shown++ % 6 == 0) std::cout << "\n  ";
    std::cout << deg << ": " << count << "   ";
  }
  std::cout << "\n";
  return 0;
}
