// Network & IT operations (§3 industry example 1): services, dependencies
// and impact analysis over a layered data-center model. The headline query
// finds the component the most other services transitively depend on.

#include <iostream>

#include "src/core/database.h"
#include "src/workload/generators.h"

using namespace gqlite;

int main() {
  workload::DependencyConfig cfg;
  cfg.layers = 4;
  cfg.per_layer = 40;
  cfg.fanout = 3;
  GraphPtr net = workload::MakeDependencyNetwork(cfg);

  auto opened = Database::OpenInMemory();
  if (!opened.ok()) {
    std::cerr << opened.status().ToString() << "\n";
    return 1;
  }
  Database db = std::move(*opened);
  db.RegisterGraph("datacenter", net);
  std::cout << "Dependency graph: " << net->NumNodes() << " services, "
            << net->NumRels() << " dependencies\n\n";

  // The paper's network-management query: most depended-upon component.
  auto critical = db.Execute(
      "FROM GRAPH datacenter "
      "MATCH (svc:Service)<-[:DEPENDS_ON*]-(dep:Service) "
      "RETURN svc.name AS service, count(DISTINCT dep) AS dependents "
      "ORDER BY dependents DESC "
      "LIMIT 1");
  if (!critical.ok()) {
    std::cerr << critical.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Most critical component (everything that transitively "
               "depends on it):\n"
            << critical->table.ToString() << "\n";

  // Impact analysis: what would an outage of that component take down,
  // tier by tier?
  auto impact = db.Execute(
      "FROM GRAPH datacenter "
      "MATCH (core:Service {name: 'svc-0-0'})<-[:DEPENDS_ON*]-(dep) "
      "RETURN dep.tier AS tier, count(DISTINCT dep) AS affected "
      "ORDER BY tier");
  if (impact.ok()) {
    std::cout << "Blast radius of svc-0-0 by tier:\n"
              << impact->table.ToString() << "\n";
  }

  // Shortest dependency chains from the top tier to the core (path length
  // distribution via variable-length matching).
  auto chains = db.Execute(
      "FROM GRAPH datacenter "
      "MATCH (top:Service {tier: 3})-[deps:DEPENDS_ON*1..4]->"
      "(core:Service {name: 'svc-0-0'}) "
      "RETURN size(deps) AS chainLength, count(*) AS chains "
      "ORDER BY chainLength");
  if (chains.ok()) {
    std::cout << "Dependency chains from tier 3 to the core:\n"
              << chains->table.ToString() << "\n";
  }

  // Redundancy check: services depending on a single tier-below service
  // are single-point-of-failure candidates.
  auto spof = db.Execute(
      "FROM GRAPH datacenter "
      "MATCH (s:Service)-[:DEPENDS_ON]->(d:Service) "
      "WITH s, count(DISTINCT d) AS deps WHERE deps = 1 "
      "RETURN count(s) AS singleDependencyServices");
  if (spof.ok()) {
    std::cout << "Services with a single dependency:\n"
              << spof->table.ToString() << "\n";
  }
  return 0;
}
