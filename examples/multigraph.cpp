// Cypher 10 preview (§6): multiple named graphs, graph projection with
// RETURN GRAPH, and query composition — the paper's Example 6.1 run on a
// synthetic social network plus a citizen register.

#include <iostream>

#include "src/core/database.h"
#include "src/workload/generators.h"

using namespace gqlite;

int main() {
  auto opened = Database::OpenInMemory();
  if (!opened.ok()) {
    std::cerr << opened.status().ToString() << "\n";
    return 1;
  }
  Database db = std::move(*opened);

  // soc_net lives "at" an external URL (simulated by the catalog's URL
  // registry; see DESIGN.md substitutions).
  workload::SocialConfig cfg;
  cfg.num_people = 300;
  cfg.avg_friends = 6;
  cfg.num_cities = 10;
  GraphPtr soc = workload::MakeSocialNetwork(cfg);
  db.RegisterUrl("hdfs://cluster/soc_network", soc);

  // The register graph: the same people, IN edges to cities (the social
  // generator already adds them, so reuse a second network as register).
  db.RegisterUrl("bolt://cluster/citizens", soc);

  std::cout << "soc_net: " << soc->NumNodes() << " nodes, " << soc->NumRels()
            << " relationships\n\n";

  // --- Example 6.1, first query: project a friend-sharing graph. ----------
  ValueMap params;
  params["duration"] = Value::Int(5);
  auto projected = db.Execute(
      "FROM GRAPH soc_net AT \"hdfs://cluster/soc_network\" "
      "MATCH (a)-[r1:FRIEND]-()-[r2:FRIEND]-(b) "
      "WHERE abs(r2.since - r1.since) < $duration AND a.name < b.name "
      "WITH DISTINCT a, b "
      "RETURN GRAPH friends OF (a)-[:SHARE_FRIEND]->(b)",
      params);
  if (!projected.ok()) {
    std::cerr << projected.status().ToString() << "\n";
    return 1;
  }
  GraphPtr friends = projected->graphs[0].second;
  std::cout << "projected graph `friends`: " << friends->NumNodes()
            << " nodes, " << friends->NumRels()
            << " SHARE_FRIEND relationships\n\n";

  // --- Example 6.1, composition: filter the projected graph against the
  // register (same-city pairs). Node identity does not transfer between
  // graphs, so the join goes through the `name` key. ----------------------
  auto composed = db.Execute(
      "QUERY GRAPH friends "
      "MATCH (a)-[:SHARE_FRIEND]-(b) "
      "WITH a.name AS an, b.name AS bn WHERE an < bn "
      "FROM GRAPH register AT \"bolt://cluster/citizens\" "
      "MATCH (a2:Person {name: an})-[:IN]->(c:City)<-[:IN]-"
      "(b2:Person {name: bn}) "
      "RETURN c.name AS city, count(*) AS friendSharingPairs "
      "ORDER BY friendSharingPairs DESC LIMIT 5");
  if (!composed.ok()) {
    std::cerr << composed.status().ToString() << "\n";
    return 1;
  }
  std::cout << "friend-sharing pairs living in the same city:\n"
            << composed->table.ToString() << "\n";

  // --- Named graphs are addressable afterwards too. -----------------------
  auto again = db.Execute(
      "FROM GRAPH friends MATCH (a)-[:SHARE_FRIEND]->(b) "
      "RETURN count(*) AS pairs");
  if (again.ok()) {
    std::cout << "re-querying `friends` by name:\n"
              << again->table.ToString() << "\n";
  }
  return 0;
}
