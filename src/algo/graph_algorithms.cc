#include "src/algo/graph_algorithms.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace gqlite {
namespace algo {

namespace {

/// Applies the traversal options to one node's incident relationships,
/// invoking fn(rel, neighbor) for each admissible step.
template <typename Fn>
void ForEachStep(const PropertyGraph& g, NodeId n,
                 const TraversalOptions& opts, Fn&& fn) {
  SymbolId type = opts.type.empty() ? kNoSymbol : g.LookupType(opts.type);
  bool filter = !opts.type.empty();
  if (filter && type == kNoSymbol) return;  // unknown type: no steps
  for (RelId r : g.OutRels(n)) {
    if (filter && g.RelTypeId(r) != type) continue;
    fn(r, g.Target(r));
  }
  if (opts.undirected) {
    for (RelId r : g.InRels(n)) {
      if (filter && g.RelTypeId(r) != type) continue;
      if (g.Source(r) == g.Target(r)) continue;  // self loop seen above
      fn(r, g.Source(r));
    }
  }
}

}  // namespace

std::optional<Path> ShortestPath(const PropertyGraph& g, NodeId source,
                                 NodeId target,
                                 const TraversalOptions& opts) {
  if (!g.IsNodeAlive(source) || !g.IsNodeAlive(target)) return std::nullopt;
  if (source == target) {
    Path p;
    p.nodes.push_back(source);
    return p;
  }
  // BFS with parent pointers.
  std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> parent;
  std::deque<NodeId> queue;
  queue.push_back(source);
  parent.emplace(source.id, std::make_pair(source.id, ~0ULL));
  while (!queue.empty()) {
    NodeId cur = queue.front();
    queue.pop_front();
    bool found = false;
    ForEachStep(g, cur, opts, [&](RelId r, NodeId next) {
      if (found || parent.contains(next.id)) return;
      parent.emplace(next.id, std::make_pair(cur.id, r.id));
      if (next == target) {
        found = true;
        return;
      }
      queue.push_back(next);
    });
    if (found) break;
  }
  auto it = parent.find(target.id);
  if (it == parent.end()) return std::nullopt;
  // Reconstruct backwards.
  Path p;
  std::vector<NodeId> rnodes;
  std::vector<RelId> rrels;
  uint64_t cur = target.id;
  while (cur != source.id) {
    auto [prev, rel] = parent.at(cur);
    rnodes.push_back(NodeId{cur});
    rrels.push_back(RelId{rel});
    cur = prev;
  }
  rnodes.push_back(source);
  std::reverse(rnodes.begin(), rnodes.end());
  std::reverse(rrels.begin(), rrels.end());
  p.nodes = std::move(rnodes);
  p.rels = std::move(rrels);
  return p;
}

std::unordered_map<uint64_t, int64_t> BfsDistances(
    const PropertyGraph& g, NodeId source, const TraversalOptions& opts) {
  std::unordered_map<uint64_t, int64_t> dist;
  if (!g.IsNodeAlive(source)) return dist;
  std::deque<NodeId> queue;
  queue.push_back(source);
  dist[source.id] = 0;
  while (!queue.empty()) {
    NodeId cur = queue.front();
    queue.pop_front();
    int64_t d = dist[cur.id];
    ForEachStep(g, cur, opts, [&](RelId, NodeId next) {
      if (dist.contains(next.id)) return;
      dist[next.id] = d + 1;
      queue.push_back(next);
    });
  }
  return dist;
}

std::unordered_map<uint64_t, double> PageRank(const PropertyGraph& g,
                                              const PageRankOptions& opts) {
  std::vector<NodeId> nodes = g.AllNodes();
  std::unordered_map<uint64_t, double> rank;
  if (nodes.empty()) return rank;
  const double n = static_cast<double>(nodes.size());
  for (NodeId v : nodes) rank[v.id] = 1.0 / n;

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    std::unordered_map<uint64_t, double> next;
    next.reserve(rank.size());
    for (NodeId v : nodes) next[v.id] = 0;
    double dangling = 0;
    for (NodeId v : nodes) {
      const auto& out = g.OutRels(v);
      double share = rank[v.id];
      if (out.empty()) {
        dangling += share;
        continue;
      }
      double per_edge = share / static_cast<double>(out.size());
      for (RelId r : out) next[g.Target(r).id] += per_edge;
    }
    double base = (1.0 - opts.damping) / n + opts.damping * dangling / n;
    double delta = 0;
    for (NodeId v : nodes) {
      double nv = base + opts.damping * next[v.id];
      delta += std::abs(nv - rank[v.id]);
      next[v.id] = nv;
    }
    rank.swap(next);
    if (delta < opts.tolerance) break;
  }
  return rank;
}

std::unordered_map<uint64_t, uint64_t> WeaklyConnectedComponents(
    const PropertyGraph& g) {
  std::unordered_map<uint64_t, uint64_t> comp;
  TraversalOptions undirected;
  undirected.undirected = true;
  for (size_t i = 0; i < g.NumNodeSlots(); ++i) {
    NodeId start{i};
    if (!g.IsNodeAlive(start) || comp.contains(start.id)) continue;
    // BFS labelling with the smallest node id (starts ascend).
    std::deque<NodeId> queue;
    queue.push_back(start);
    comp[start.id] = start.id;
    while (!queue.empty()) {
      NodeId cur = queue.front();
      queue.pop_front();
      ForEachStep(g, cur, undirected, [&](RelId, NodeId next) {
        if (comp.contains(next.id)) return;
        comp[next.id] = start.id;
        queue.push_back(next);
      });
    }
  }
  return comp;
}

int64_t TriangleCount(const PropertyGraph& g) {
  // Build deduplicated undirected neighbor sets; count each triangle once
  // by ordering node ids.
  std::unordered_map<uint64_t, std::set<uint64_t>> nbr;
  for (size_t i = 0; i < g.NumRelSlots(); ++i) {
    RelId r{i};
    if (!g.IsRelAlive(r)) continue;
    uint64_t a = g.Source(r).id;
    uint64_t b = g.Target(r).id;
    if (a == b) continue;
    nbr[a].insert(b);
    nbr[b].insert(a);
  }
  int64_t count = 0;
  for (const auto& [a, na] : nbr) {
    for (uint64_t b : na) {
      if (b <= a) continue;
      const auto& nb = nbr[b];
      for (uint64_t c : na) {
        if (c <= b) continue;
        if (nb.contains(c)) ++count;
      }
    }
  }
  return count;
}

std::vector<std::pair<size_t, size_t>> DegreeHistogram(
    const PropertyGraph& g) {
  std::map<size_t, size_t> hist;
  for (size_t i = 0; i < g.NumNodeSlots(); ++i) {
    NodeId n{i};
    if (!g.IsNodeAlive(n)) continue;
    ++hist[g.Degree(n)];
  }
  return {hist.begin(), hist.end()};
}

}  // namespace algo
}  // namespace gqlite
