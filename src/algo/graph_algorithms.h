#ifndef GQLITE_ALGO_GRAPH_ALGORITHMS_H_
#define GQLITE_ALGO_GRAPH_ALGORITHMS_H_

#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/graph/property_graph.h"

namespace gqlite {
namespace algo {

/// Built-in graph algorithms. §1 of the paper lists "built-in support for
/// graph algorithms (e.g., Page Rank, subgraph matching and so on)" among
/// the benefits of property-graph databases; this module provides the
/// classical set over the native adjacency representation. All functions
/// are read-only, single-threaded and deterministic.

/// Options shared by the traversal algorithms: restrict to one
/// relationship type (empty = any) and/or treat edges as undirected.
struct TraversalOptions {
  std::string type;          // empty = any relationship type
  bool undirected = false;   // follow edges both ways
};

/// Unweighted shortest path (BFS) from `source` to `target`. Returns the
/// path (nodes and relationships) or nullopt when unreachable. Ties break
/// deterministically by adjacency order.
std::optional<Path> ShortestPath(const PropertyGraph& g, NodeId source,
                                 NodeId target,
                                 const TraversalOptions& opts = {});

/// BFS distances from `source` to every reachable node (hop counts).
std::unordered_map<uint64_t, int64_t> BfsDistances(
    const PropertyGraph& g, NodeId source, const TraversalOptions& opts = {});

/// PageRank over the directed graph (standard power iteration with
/// uniform teleport; dangling mass redistributed uniformly). Returns a
/// score per live node id. Deterministic.
struct PageRankOptions {
  double damping = 0.85;
  int max_iterations = 50;
  double tolerance = 1e-9;
};
std::unordered_map<uint64_t, double> PageRank(
    const PropertyGraph& g, const PageRankOptions& opts = {});

/// Weakly connected components: component id (the smallest node id in the
/// component) per live node.
std::unordered_map<uint64_t, uint64_t> WeaklyConnectedComponents(
    const PropertyGraph& g);

/// Number of undirected triangles in the graph (parallel edges and self
/// loops ignored).
int64_t TriangleCount(const PropertyGraph& g);

/// Degree histogram: degree → node count (total degree, both directions).
std::vector<std::pair<size_t, size_t>> DegreeHistogram(
    const PropertyGraph& g);

}  // namespace algo
}  // namespace gqlite

#endif  // GQLITE_ALGO_GRAPH_ALGORITHMS_H_
