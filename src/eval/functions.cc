#include "src/eval/functions.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <limits>
#include <unordered_map>

#include "src/common/string_util.h"
#include "src/eval/evaluator.h"
#include "src/temporal/temporal_parse.h"
#include "src/value/value_format.h"

namespace gqlite {

namespace {

using Args = std::vector<Value>;

Status Arity(const std::string& name, const Args& args, size_t lo, size_t hi) {
  if (args.size() < lo || args.size() > hi) {
    return Status::EvaluationError(
        "wrong number of arguments to " + name + "() (got " +
        std::to_string(args.size()) + ")");
  }
  return Status::OK();
}

Status WrongType(const std::string& fn, const Value& v) {
  return Status::TypeError(fn + "() cannot operate on " +
                           ValueTypeName(v.type()));
}

Result<Value> FnId(const Args& a, const EvalContext& ctx) {
  (void)ctx;
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  if (v.is_node()) return Value::Int(static_cast<int64_t>(v.AsNode().id));
  if (v.is_relationship()) {
    return Value::Int(static_cast<int64_t>(v.AsRelationship().id));
  }
  return WrongType("id", v);
}

Result<Value> FnLabels(const Args& a, const EvalContext& ctx) {
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  if (!v.is_node()) return WrongType("labels", v);
  if (ctx.graph == nullptr || !ctx.graph->IsNodeAlive(v.AsNode())) {
    return Status::EvaluationError("labels() on a deleted node");
  }
  ValueList out;
  for (const std::string& l : ctx.graph->NodeLabels(v.AsNode())) {
    out.push_back(Value::String(l));
  }
  return Value::MakeList(std::move(out));
}

Result<Value> FnType(const Args& a, const EvalContext& ctx) {
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  if (!v.is_relationship()) return WrongType("type", v);
  if (ctx.graph == nullptr || !ctx.graph->IsRelAlive(v.AsRelationship())) {
    return Status::EvaluationError("type() on a deleted relationship");
  }
  return Value::String(ctx.graph->RelType(v.AsRelationship()));
}

Result<Value> FnProperties(const Args& a, const EvalContext& ctx) {
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  if (v.is_map()) return v;
  if (v.is_node()) {
    return Value::MakeMap(ctx.graph->NodeProperties(v.AsNode()));
  }
  if (v.is_relationship()) {
    return Value::MakeMap(ctx.graph->RelProperties(v.AsRelationship()));
  }
  return WrongType("properties", v);
}

Result<Value> FnKeys(const Args& a, const EvalContext& ctx) {
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  ValueList out;
  if (v.is_map()) {
    for (const auto& [k, val] : v.AsMap()) out.push_back(Value::String(k));
  } else if (v.is_node()) {
    for (auto& k : ctx.graph->NodePropertyKeys(v.AsNode())) {
      out.push_back(Value::String(k));
    }
  } else if (v.is_relationship()) {
    for (auto& k : ctx.graph->RelPropertyKeys(v.AsRelationship())) {
      out.push_back(Value::String(k));
    }
  } else {
    return WrongType("keys", v);
  }
  return Value::MakeList(std::move(out));
}

Result<Value> FnStartNode(const Args& a, const EvalContext& ctx) {
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  if (!v.is_relationship()) return WrongType("startNode", v);
  return Value::Node(ctx.graph->Source(v.AsRelationship()));
}

Result<Value> FnEndNode(const Args& a, const EvalContext& ctx) {
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  if (!v.is_relationship()) return WrongType("endNode", v);
  return Value::Node(ctx.graph->Target(v.AsRelationship()));
}

Result<Value> FnDegree(const Args& a, const EvalContext& ctx, int mode) {
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  if (!v.is_node()) return WrongType("degree", v);
  NodeId n = v.AsNode();
  size_t d = mode == 0   ? ctx.graph->Degree(n)
             : mode == 1 ? ctx.graph->OutRels(n).size()
                         : ctx.graph->InRels(n).size();
  return Value::Int(static_cast<int64_t>(d));
}

Result<Value> FnLength(const Args& a, const EvalContext&) {
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  // length(path) is the number of relationships (§4.1 path model); we also
  // accept lists and strings for convenience, like Neo4j ≤3.x.
  if (v.is_path()) {
    return Value::Int(static_cast<int64_t>(v.AsPath().length()));
  }
  if (v.is_list()) return Value::Int(static_cast<int64_t>(v.AsList().size()));
  if (v.is_string()) {
    return Value::Int(static_cast<int64_t>(Utf8Length(v.AsString())));
  }
  return WrongType("length", v);
}

Result<Value> FnSize(const Args& a, const EvalContext&) {
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  if (v.is_list()) return Value::Int(static_cast<int64_t>(v.AsList().size()));
  if (v.is_string()) {
    // size(string) counts characters (code points), not bytes.
    return Value::Int(static_cast<int64_t>(Utf8Length(v.AsString())));
  }
  if (v.is_map()) return Value::Int(static_cast<int64_t>(v.AsMap().size()));
  return WrongType("size", v);
}

Result<Value> FnNodes(const Args& a, const EvalContext&) {
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  if (!v.is_path()) return WrongType("nodes", v);
  ValueList out;
  for (NodeId n : v.AsPath().nodes) out.push_back(Value::Node(n));
  return Value::MakeList(std::move(out));
}

Result<Value> FnRelationships(const Args& a, const EvalContext&) {
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  if (!v.is_path()) return WrongType("relationships", v);
  ValueList out;
  for (RelId r : v.AsPath().rels) out.push_back(Value::Relationship(r));
  return Value::MakeList(std::move(out));
}

Result<Value> FnHead(const Args& a, const EvalContext&) {
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  if (!v.is_list()) return WrongType("head", v);
  if (v.AsList().empty()) return Value::Null();
  return v.AsList().front();
}

Result<Value> FnLast(const Args& a, const EvalContext&) {
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  if (!v.is_list()) return WrongType("last", v);
  if (v.AsList().empty()) return Value::Null();
  return v.AsList().back();
}

Result<Value> FnTail(const Args& a, const EvalContext&) {
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  if (!v.is_list()) return WrongType("tail", v);
  ValueList out;
  for (size_t i = 1; i < v.AsList().size(); ++i) out.push_back(v.AsList()[i]);
  return Value::MakeList(std::move(out));
}

Result<Value> FnReverse(const Args& a, const EvalContext&) {
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  if (v.is_list()) {
    ValueList out(v.AsList().rbegin(), v.AsList().rend());
    return Value::MakeList(std::move(out));
  }
  if (v.is_string()) {
    // Reverse by code point so multi-byte characters survive intact.
    return Value::String(Utf8Reverse(v.AsString()));
  }
  return WrongType("reverse", v);
}

Result<Value> FnRange(const Args& a, const EvalContext&) {
  for (const Value& v : a) {
    if (v.is_null()) return Value::Null();
    if (!v.is_int()) return WrongType("range", v);
  }
  int64_t start = a[0].AsInt();
  int64_t end = a[1].AsInt();
  int64_t step = a.size() > 2 ? a[2].AsInt() : 1;
  if (step == 0) return Status::EvaluationError("range() step must not be 0");
  ValueList out;
  if (step > 0) {
    for (int64_t i = start; i <= end;) {
      out.push_back(Value::Int(i));
      if (__builtin_add_overflow(i, step, &i)) break;  // ran off INT64_MAX
    }
  } else {
    for (int64_t i = start; i >= end;) {
      out.push_back(Value::Int(i));
      if (__builtin_add_overflow(i, step, &i)) break;  // ran off INT64_MIN
    }
  }
  return Value::MakeList(std::move(out));
}

Result<Value> FnCoalesce(const Args& a, const EvalContext&) {
  for (const Value& v : a) {
    if (!v.is_null()) return v;
  }
  return Value::Null();
}

Result<Value> FnToString(const Args& a, const EvalContext&) {
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  if (v.is_string()) return v;
  if (v.is_int()) return Value::String(std::to_string(v.AsInt()));
  if (v.is_float()) return Value::String(FormatFloat(v.AsFloat()));
  if (v.is_bool()) return Value::String(v.AsBool() ? "true" : "false");
  if (v.is_temporal()) return Value::String(v.ToString());
  return WrongType("toString", v);
}

/// Range-checked double → int64 truncation; the raw static_cast is UB when
/// the value does not fit. 2^63 is exactly representable as a double, so
/// `d >= 2^63` and `d < -2^63` bracket exactly the non-representable range.
bool DoubleFitsInt64(double d) {
  return !std::isnan(d) && d >= -9223372036854775808.0 &&
         d < 9223372036854775808.0;
}

/// True when `s` has the shape of a decimal number literal
/// [+-]?(digits[.digits] | .digits)([eE][+-]?digits)?. Needed because
/// strtod/stod also accept hex ("0x1A") and case-insensitive "inf"/"nan",
/// which Neo4j treats as unconvertible (null). The exact-case forms
/// "Infinity"/"NaN" that Java's parseDouble accepts are special-cased in
/// toFloat, not here.
bool IsDecimalNumberString(std::string_view s) {
  size_t i = 0;
  if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
  size_t digits = 0;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
    ++i;
    ++digits;
  }
  if (i < s.size() && s[i] == '.') {
    ++i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      ++i;
      ++digits;
    }
  }
  if (digits == 0) return false;
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    size_t exp_digits = 0;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      ++i;
      ++exp_digits;
    }
    if (exp_digits == 0) return false;
  }
  return i == s.size();
}

Result<Value> FnToInteger(const Args& a, const EvalContext&) {
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  if (v.is_int()) return v;
  if (v.is_float()) {
    if (!DoubleFitsInt64(v.AsFloat())) {
      return Status::EvaluationError("integer overflow: toInteger(" +
                                     FormatFloat(v.AsFloat()) + ")");
    }
    return Value::Int(static_cast<int64_t>(v.AsFloat()));
  }
  if (v.is_string()) {
    // Neo4j trims surrounding whitespace before converting.
    std::string s(TrimView(v.AsString()));
    if (!IsDecimalNumberString(s)) return Value::Null();
    // Pure integer strings convert at full 64-bit precision; anything else
    // (e.g. "42.9", "6e2") goes through double and truncates.
    errno = 0;
    char* end = nullptr;
    long long ll = std::strtoll(s.c_str(), &end, 10);
    if (errno == 0 && end == s.c_str() + s.size()) {
      return Value::Int(static_cast<int64_t>(ll));
    }
    try {
      size_t pos = 0;
      double d = std::stod(s, &pos);
      if (pos != s.size()) return Value::Null();
      if (!DoubleFitsInt64(d)) return Value::Null();
      return Value::Int(static_cast<int64_t>(d));
    } catch (...) {
      return Value::Null();
    }
  }
  return WrongType("toInteger", v);
}

Result<Value> FnToFloat(const Args& a, const EvalContext&) {
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  if (v.is_float()) return v;
  if (v.is_int()) return Value::Float(static_cast<double>(v.AsInt()));
  if (v.is_string()) {
    std::string s(TrimView(v.AsString()));
    // Neo4j follows Java's Double.parseDouble: the exact-case words
    // "Infinity" and "NaN" convert; lowercase "inf"/"nan" do not.
    if (s == "Infinity" || s == "+Infinity") {
      return Value::Float(std::numeric_limits<double>::infinity());
    }
    if (s == "-Infinity") {
      return Value::Float(-std::numeric_limits<double>::infinity());
    }
    if (s == "NaN") {
      return Value::Float(std::numeric_limits<double>::quiet_NaN());
    }
    if (!IsDecimalNumberString(s)) return Value::Null();
    try {
      size_t pos = 0;
      double d = std::stod(s, &pos);
      if (pos != s.size()) return Value::Null();
      return Value::Float(d);
    } catch (...) {
      return Value::Null();
    }
  }
  return WrongType("toFloat", v);
}

Result<Value> FnToBoolean(const Args& a, const EvalContext&) {
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  if (v.is_bool()) return v;
  if (v.is_string()) {
    if (AsciiEqualsIgnoreCase(v.AsString(), "true")) return Value::Bool(true);
    if (AsciiEqualsIgnoreCase(v.AsString(), "false")) {
      return Value::Bool(false);
    }
    return Value::Null();
  }
  return WrongType("toBoolean", v);
}

Result<Value> Math1(const std::string& name, const Args& a,
                    double (*fn)(double), bool keep_int = false) {
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  if (!v.is_number()) return WrongType(name, v);
  if (keep_int && v.is_int()) return v;
  return Value::Float(fn(v.AsNumber()));
}

Result<Value> FnAbs(const Args& a, const EvalContext&) {
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  if (v.is_int()) {
    if (v.AsInt() == INT64_MIN) {
      return Status::EvaluationError("integer overflow: abs(" +
                                     std::to_string(v.AsInt()) + ")");
    }
    return Value::Int(v.AsInt() < 0 ? -v.AsInt() : v.AsInt());
  }
  if (v.is_float()) return Value::Float(std::fabs(v.AsFloat()));
  return WrongType("abs", v);
}

Result<Value> FnSign(const Args& a, const EvalContext&) {
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  if (!v.is_number()) return WrongType("sign", v);
  double d = v.AsNumber();
  return Value::Int(d > 0 ? 1 : (d < 0 ? -1 : 0));
}

Result<Value> FnRound(const Args& a, const EvalContext&) {
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  if (!v.is_number()) return WrongType("round", v);
  return Value::Float(std::round(v.AsNumber()));
}

Result<Value> FnAtan2(const Args& a, const EvalContext&) {
  if (a[0].is_null() || a[1].is_null()) return Value::Null();
  if (!a[0].is_number() || !a[1].is_number()) {
    return Status::TypeError("atan2() requires numbers");
  }
  return Value::Float(std::atan2(a[0].AsNumber(), a[1].AsNumber()));
}

Result<Value> FnRand(const Args&, const EvalContext& ctx) {
  if (ctx.rand_state == nullptr) {
    return Status::EvaluationError("rand() is not seeded in this context");
  }
  // xorshift64*; deterministic per engine seed so tests are reproducible.
  uint64_t x = *ctx.rand_state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *ctx.rand_state = x;
  uint64_t r = x * 0x2545F4914F6CDD1DULL;
  return Value::Float(static_cast<double>(r >> 11) /
                      static_cast<double>(1ULL << 53));
}

Result<Value> Str1(const std::string& name, const Args& a,
                   std::string (*fn)(std::string_view)) {
  const Value& v = a[0];
  if (v.is_null()) return Value::Null();
  if (!v.is_string()) return WrongType(name, v);
  return Value::String(fn(v.AsString()));
}

Result<Value> FnReplace(const Args& a, const EvalContext&) {
  for (const Value& v : a) {
    if (v.is_null()) return Value::Null();
    if (!v.is_string()) return WrongType("replace", v);
  }
  std::string_view s = a[0].AsString();
  std::string_view find = a[1].AsString();
  std::string_view repl = a[2].AsString();
  if (find.empty()) return a[0];
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(find, start);
    if (pos == std::string::npos) {
      out += s.substr(start);
      break;
    }
    out += s.substr(start, pos - start);
    out += repl;
    start = pos + find.size();
  }
  return Value::String(std::move(out));
}

Result<Value> FnSplit(const Args& a, const EvalContext&) {
  if (a[0].is_null() || a[1].is_null()) return Value::Null();
  if (!a[0].is_string() || !a[1].is_string()) {
    return Status::TypeError("split() requires strings");
  }
  ValueList out;
  for (auto& part : SplitBy(a[0].AsString(), a[1].AsString())) {
    out.push_back(Value::String(std::move(part)));
  }
  return Value::MakeList(std::move(out));
}

Result<Value> FnSubstring(const Args& a, const EvalContext&) {
  if (a[0].is_null()) return Value::Null();
  if (!a[0].is_string() || !a[1].is_int() ||
      (a.size() > 2 && !a[2].is_int())) {
    return Status::TypeError("substring(string, start[, length])");
  }
  std::string_view s = a[0].AsString();
  int64_t chars = static_cast<int64_t>(Utf8Length(s));
  int64_t start = a[1].AsInt();
  if (start < 0) return Status::EvaluationError("substring start < 0");
  if (start >= chars) return Value::String("");
  int64_t len = a.size() > 2 ? a[2].AsInt() : chars - start;
  if (len < 0) return Status::EvaluationError("substring length < 0");
  return Value::String(Utf8Substr(s, static_cast<size_t>(start),
                                  static_cast<size_t>(len)));
}

Result<Value> FnLeftRight(const Args& a, const EvalContext&, bool left) {
  if (a[0].is_null()) return Value::Null();
  if (!a[0].is_string() || !a[1].is_int()) {
    return Status::TypeError("left/right(string, n)");
  }
  std::string_view s = a[0].AsString();
  int64_t n = a[1].AsInt();
  if (n < 0) return Status::EvaluationError("left/right length < 0");
  size_t chars = Utf8Length(s);
  size_t take = std::min<size_t>(static_cast<size_t>(n), chars);
  return Value::String(left ? Utf8Substr(s, 0, take)
                            : Utf8Substr(s, chars - take, take));
}

template <typename T>
Result<Value> ParseTemporal(const std::string& name, const Args& a,
                            Result<T> (*parse)(std::string_view)) {
  if (a[0].is_null()) return Value::Null();
  if (!a[0].is_string()) return WrongType(name, a[0]);
  GQL_ASSIGN_OR_RETURN(T t, parse(a[0].AsString()));
  return Value::Temporal(t);
}

Result<Value> FnDurationBetween(const Args& a, const EvalContext&) {
  if (a[0].is_null() || a[1].is_null()) return Value::Null();
  if (a[0].type() != a[1].type()) {
    return Status::TypeError(
        "durationBetween() requires two temporal values of the same type");
  }
  switch (a[0].type()) {
    case ValueType::kDate:
      return Value::Temporal(DurationBetween(a[0].AsDate(), a[1].AsDate()));
    case ValueType::kLocalDateTime:
      return Value::Temporal(
          DurationBetween(a[0].AsLocalDateTime(), a[1].AsLocalDateTime()));
    case ValueType::kDateTime:
      return Value::Temporal(
          DurationBetween(a[0].AsDateTime(), a[1].AsDateTime()));
    default:
      return WrongType("durationBetween", a[0]);
  }
}

}  // namespace

Result<Value> CallFunction(const std::string& name, const Args& args,
                           const EvalContext& ctx) {
  // Entities.
  if (name == "id") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnId(args, ctx);
  }
  if (name == "labels") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnLabels(args, ctx);
  }
  if (name == "type") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnType(args, ctx);
  }
  if (name == "properties") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnProperties(args, ctx);
  }
  if (name == "keys") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnKeys(args, ctx);
  }
  if (name == "startnode") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnStartNode(args, ctx);
  }
  if (name == "endnode") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnEndNode(args, ctx);
  }
  if (name == "degree") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnDegree(args, ctx, 0);
  }
  if (name == "outdegree") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnDegree(args, ctx, 1);
  }
  if (name == "indegree") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnDegree(args, ctx, 2);
  }
  // Paths & lists.
  if (name == "length") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnLength(args, ctx);
  }
  if (name == "size") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnSize(args, ctx);
  }
  if (name == "nodes") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnNodes(args, ctx);
  }
  if (name == "relationships" || name == "rels") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnRelationships(args, ctx);
  }
  if (name == "head") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnHead(args, ctx);
  }
  if (name == "last") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnLast(args, ctx);
  }
  if (name == "tail") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnTail(args, ctx);
  }
  if (name == "reverse") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnReverse(args, ctx);
  }
  if (name == "range") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 2, 3));
    return FnRange(args, ctx);
  }
  // Scalars.
  if (name == "coalesce") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 64));
    return FnCoalesce(args, ctx);
  }
  if (name == "tostring") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnToString(args, ctx);
  }
  if (name == "tointeger" || name == "toint") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnToInteger(args, ctx);
  }
  if (name == "tofloat") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnToFloat(args, ctx);
  }
  if (name == "toboolean") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnToBoolean(args, ctx);
  }
  // Math.
  if (name == "abs") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnAbs(args, ctx);
  }
  if (name == "sign") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnSign(args, ctx);
  }
  if (name == "ceil") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Math1(name, args, std::ceil);
  }
  if (name == "floor") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Math1(name, args, std::floor);
  }
  if (name == "round") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return FnRound(args, ctx);
  }
  if (name == "sqrt") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Math1(name, args, std::sqrt);
  }
  if (name == "exp") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Math1(name, args, std::exp);
  }
  if (name == "log") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Math1(name, args, std::log);
  }
  if (name == "log10") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Math1(name, args, std::log10);
  }
  if (name == "sin") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Math1(name, args, std::sin);
  }
  if (name == "cos") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Math1(name, args, std::cos);
  }
  if (name == "tan") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Math1(name, args, std::tan);
  }
  if (name == "asin") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Math1(name, args, std::asin);
  }
  if (name == "acos") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Math1(name, args, std::acos);
  }
  if (name == "atan") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Math1(name, args, std::atan);
  }
  if (name == "atan2") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 2, 2));
    return FnAtan2(args, ctx);
  }
  if (name == "pi") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 0, 0));
    return Value::Float(M_PI);
  }
  if (name == "e") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 0, 0));
    return Value::Float(M_E);
  }
  if (name == "rand") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 0, 0));
    return FnRand(args, ctx);
  }
  // Strings.
  if (name == "toupper" || name == "upper") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Str1(name, args, Utf8ToUpper);
  }
  if (name == "tolower" || name == "lower") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Str1(name, args, Utf8ToLower);
  }
  if (name == "trim") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Str1(name, args,
                [](std::string_view s) { return std::string(TrimView(s)); });
  }
  if (name == "ltrim") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Str1(name, args,
                [](std::string_view s) { return std::string(LTrimView(s)); });
  }
  if (name == "rtrim") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return Str1(name, args,
                [](std::string_view s) { return std::string(RTrimView(s)); });
  }
  if (name == "replace") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 3, 3));
    return FnReplace(args, ctx);
  }
  if (name == "split") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 2, 2));
    return FnSplit(args, ctx);
  }
  if (name == "substring") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 2, 3));
    return FnSubstring(args, ctx);
  }
  if (name == "left") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 2, 2));
    return FnLeftRight(args, ctx, true);
  }
  if (name == "right") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 2, 2));
    return FnLeftRight(args, ctx, false);
  }
  // Temporal constructors (Cypher 10).
  if (name == "date") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return ParseTemporal<Date>(name, args, ParseDate);
  }
  if (name == "localtime") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return ParseTemporal<LocalTime>(name, args, ParseLocalTime);
  }
  if (name == "time") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return ParseTemporal<ZonedTime>(name, args, ParseZonedTime);
  }
  if (name == "localdatetime") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return ParseTemporal<LocalDateTime>(name, args, ParseLocalDateTime);
  }
  if (name == "datetime") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return ParseTemporal<ZonedDateTime>(name, args, ParseZonedDateTime);
  }
  if (name == "duration") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 1, 1));
    return ParseTemporal<Duration>(name, args, ParseDuration);
  }
  if (name == "durationbetween") {
    GQL_RETURN_IF_ERROR(Arity(name, args, 2, 2));
    return FnDurationBetween(args, ctx);
  }
  return Status::EvaluationError("unknown function: " + name + "()");
}

bool IsBuiltinFunction(const std::string& name) {
  static const std::unordered_map<std::string, int>* kNames = [] {
    auto* m = new std::unordered_map<std::string, int>();
    for (const char* n :
         {"id",        "labels",   "type",      "properties", "keys",
          "startnode", "endnode",  "degree",    "outdegree",  "indegree",
          "length",    "size",     "nodes",     "relationships", "rels",
          "head",      "last",     "tail",      "reverse",    "range",
          "coalesce",  "tostring", "tointeger", "toint",      "tofloat",
          "toboolean", "abs",      "sign",      "ceil",       "floor",
          "round",     "sqrt",     "exp",       "log",        "log10",
          "sin",       "cos",      "tan",       "asin",       "acos",
          "atan",      "atan2",    "pi",        "e",          "rand",
          "toupper",   "upper",    "tolower",   "lower",      "trim",
          "ltrim",     "rtrim",    "replace",   "split",      "substring",
          "left",      "right",    "date",      "localtime",  "time",
          "localdatetime", "datetime", "duration", "durationbetween",
          "exists"}) {
      (*m)[n] = 1;
    }
    return m;
  }();
  return kNames->contains(name);
}

}  // namespace gqlite
