#ifndef GQLITE_EVAL_FUNCTIONS_H_
#define GQLITE_EVAL_FUNCTIONS_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/value/value.h"

namespace gqlite {

struct EvalContext;

/// Dispatches a call to a built-in (non-aggregate) function — the paper's
/// predefined function set ℱ applied to values (§4.1 "we assume a finite
/// set ℱ of predefined functions"). Names arrive lowercased from the
/// parser. Unknown names yield kEvaluationError; most functions propagate
/// null arguments as null.
///
/// Implemented families:
///  * entities: id, labels, type, properties, keys, startNode, endNode,
///    degree, inDegree, outDegree
///  * paths/lists: length, size, nodes, relationships, head, last, tail,
///    reverse, range
///  * scalars: coalesce, toString, toInteger, toFloat, toBoolean
///  * math: abs, sign, ceil, floor, round, sqrt, exp, log, log10, sin,
///    cos, tan, asin, acos, atan, atan2, pi, e, rand
///  * strings: toUpper, toLower, trim, lTrim, rTrim, replace, split,
///    substring, left, right
///  * temporal (Cypher 10, §6): date, localtime, time, localdatetime,
///    datetime, duration, durationBetween
Result<Value> CallFunction(const std::string& name,
                           const std::vector<Value>& args,
                           const EvalContext& ctx);

/// True if `name` (lowercase) is a known non-aggregate builtin.
bool IsBuiltinFunction(const std::string& name);

}  // namespace gqlite

#endif  // GQLITE_EVAL_FUNCTIONS_H_
