#include "src/eval/aggregation.h"

#include <unordered_set>

#include "src/eval/evaluator.h"
#include "src/value/value_compare.h"

namespace gqlite {

namespace {

/// Mixin handling DISTINCT and null-skipping; calls Feed() on kept values.
class BaseAggregator : public Aggregator {
 public:
  explicit BaseAggregator(bool distinct) : distinct_(distinct) {}

  Status Accumulate(const Value& v) final {
    if (v.is_null()) return Status::OK();
    if (distinct_) {
      if (!seen_.insert(v).second) return Status::OK();
    }
    return Feed(v);
  }

 protected:
  virtual Status Feed(const Value& v) = 0;

 private:
  bool distinct_;
  std::unordered_set<Value, ValueEquivalenceHash, ValueEquivalenceEq> seen_;
};

class CountAggregator : public BaseAggregator {
 public:
  using BaseAggregator::BaseAggregator;
  Status Feed(const Value&) override {
    ++count_;
    return Status::OK();
  }
  Result<Value> Finish() override { return Value::Int(count_); }

 private:
  int64_t count_ = 0;
};

/// count(*) counts rows including nulls and ignores DISTINCT.
class CountStarAggregator : public Aggregator {
 public:
  Status Accumulate(const Value&) override {
    ++count_;
    return Status::OK();
  }
  Result<Value> Finish() override { return Value::Int(count_); }

 private:
  int64_t count_ = 0;
};

class SumAggregator : public BaseAggregator {
 public:
  using BaseAggregator::BaseAggregator;
  Status Feed(const Value& v) override {
    if (v.is_int() && !is_float_) {
      // Checked: a running sum of int64s must raise on overflow like the
      // `+` operator does, not wrap (UB).
      GQL_ASSIGN_OR_RETURN(int_sum_, CheckedAddInt64(int_sum_, v.AsInt()));
    } else if (v.is_number()) {
      if (!is_float_) {
        is_float_ = true;
        float_sum_ = static_cast<double>(int_sum_);
      }
      float_sum_ += v.AsNumber();
    } else if (v.type() == ValueType::kDuration) {
      if (!seen_any_ && int_sum_ == 0 && !is_float_) {
        is_duration_ = true;
      }
      if (!is_duration_) {
        return Status::TypeError("sum() cannot mix durations and numbers");
      }
      duration_sum_ = duration_sum_ + v.AsDuration();
    } else {
      return Status::TypeError("sum() requires numeric or duration values");
    }
    if (is_duration_ && v.is_number()) {
      return Status::TypeError("sum() cannot mix durations and numbers");
    }
    seen_any_ = true;
    return Status::OK();
  }
  Result<Value> Finish() override {
    if (is_duration_) return Value::Temporal(duration_sum_);
    if (is_float_) return Value::Float(float_sum_);
    return Value::Int(int_sum_);
  }

 private:
  bool seen_any_ = false;
  bool is_float_ = false;
  bool is_duration_ = false;
  int64_t int_sum_ = 0;
  double float_sum_ = 0;
  Duration duration_sum_;
};

class AvgAggregator : public BaseAggregator {
 public:
  using BaseAggregator::BaseAggregator;
  Status Feed(const Value& v) override {
    if (!v.is_number()) {
      return Status::TypeError("avg() requires numeric values");
    }
    if (v.is_int() && !is_float_) {
      // All-integer input accumulates exactly in checked int64 (doubles
      // silently lose precision past 2^53). Unlike sum(), whose result
      // type is integral and must raise, avg() returns a float anyway —
      // on int64 overflow it degrades gracefully to float accumulation
      // instead of rejecting a representable mean.
      auto checked = CheckedAddInt64(int_sum_, v.AsInt());
      if (checked.ok()) {
        int_sum_ = *checked;
      } else {
        is_float_ = true;
        float_sum_ = static_cast<double>(int_sum_) +
                     static_cast<double>(v.AsInt());
      }
    } else {
      if (!is_float_) {
        is_float_ = true;
        float_sum_ = static_cast<double>(int_sum_);
      }
      float_sum_ += v.AsNumber();
    }
    ++count_;
    return Status::OK();
  }
  Result<Value> Finish() override {
    if (count_ == 0) return Value::Null();
    double total =
        is_float_ ? float_sum_ : static_cast<double>(int_sum_);
    return Value::Float(total / static_cast<double>(count_));
  }

 private:
  bool is_float_ = false;
  int64_t int_sum_ = 0;
  double float_sum_ = 0;
  int64_t count_ = 0;
};

class MinMaxAggregator : public BaseAggregator {
 public:
  MinMaxAggregator(bool distinct, bool is_min)
      : BaseAggregator(distinct), is_min_(is_min) {}
  Status Feed(const Value& v) override {
    if (best_.is_null()) {
      best_ = v;
      return Status::OK();
    }
    int c = ValueOrder(v, best_);
    if (is_min_ ? c < 0 : c > 0) best_ = v;
    return Status::OK();
  }
  Result<Value> Finish() override { return best_; }

 private:
  bool is_min_;
  Value best_;  // null until first value
};

class CollectAggregator : public BaseAggregator {
 public:
  using BaseAggregator::BaseAggregator;
  Status Feed(const Value& v) override {
    items_.push_back(v);
    return Status::OK();
  }
  Result<Value> Finish() override {
    return Value::MakeList(std::move(items_));
  }

 private:
  ValueList items_;
};

}  // namespace

Result<std::unique_ptr<Aggregator>> MakeAggregator(const std::string& name,
                                                   bool distinct) {
  if (name == "count(*)") {
    return std::unique_ptr<Aggregator>(new CountStarAggregator());
  }
  if (name == "count") {
    return std::unique_ptr<Aggregator>(new CountAggregator(distinct));
  }
  if (name == "sum") {
    return std::unique_ptr<Aggregator>(new SumAggregator(distinct));
  }
  if (name == "avg") {
    return std::unique_ptr<Aggregator>(new AvgAggregator(distinct));
  }
  if (name == "min") {
    return std::unique_ptr<Aggregator>(new MinMaxAggregator(distinct, true));
  }
  if (name == "max") {
    return std::unique_ptr<Aggregator>(new MinMaxAggregator(distinct, false));
  }
  if (name == "collect") {
    return std::unique_ptr<Aggregator>(new CollectAggregator(distinct));
  }
  return Status::Internal("unknown aggregate function: " + name);
}

}  // namespace gqlite
