#include "src/eval/aggregation.h"

#include <unordered_set>

#include "src/eval/evaluator.h"
#include "src/value/value_compare.h"

namespace gqlite {

namespace {

/// Mixin handling DISTINCT and null-skipping; calls Feed() on kept values.
/// DISTINCT partials are the kept values themselves (in first-seen order,
/// so order-sensitive aggregates merge deterministically); merging
/// re-accumulates them, de-duplicating across partitions. Non-DISTINCT
/// partials delegate to the per-function ExportState/MergeState.
class BaseAggregator : public Aggregator {
 public:
  explicit BaseAggregator(bool distinct) : distinct_(distinct) {}

  Status Accumulate(const Value& v) final {
    if (v.is_null()) return Status::OK();
    if (distinct_) {
      if (!seen_.insert(v).second) return Status::OK();
      seen_order_.push_back(v);
    }
    return Feed(v);
  }

  Result<Value> ExportPartial() final {
    if (distinct_) return Value::MakeList(std::move(seen_order_));
    return ExportState();
  }

  Status MergePartial(const Value& partial) final {
    if (distinct_) {
      if (!partial.is_list()) {
        return Status::Internal("DISTINCT aggregate partial must be a list");
      }
      for (const Value& v : partial.AsList()) {
        GQL_RETURN_IF_ERROR(Accumulate(v));
      }
      return Status::OK();
    }
    return MergeState(partial);
  }

 protected:
  virtual Status Feed(const Value& v) = 0;
  virtual Result<Value> ExportState() = 0;
  virtual Status MergeState(const Value& partial) = 0;

 private:
  bool distinct_;
  std::unordered_set<Value, ValueEquivalenceHash, ValueEquivalenceEq> seen_;
  /// Insertion-ordered view of seen_, kept for ExportPartial. Each entry
  /// duplicates only the Value HANDLE (strings/lists/maps are
  /// shared_ptr-backed), not the payload.
  ValueList seen_order_;
};

class CountAggregator : public BaseAggregator {
 public:
  using BaseAggregator::BaseAggregator;
  Status Feed(const Value&) override {
    ++count_;
    return Status::OK();
  }
  Result<Value> Finish() override { return Value::Int(count_); }
  Result<Value> ExportState() override { return Value::Int(count_); }
  Status MergeState(const Value& partial) override {
    if (!partial.is_int()) {
      return Status::Internal("count() partial must be an integer");
    }
    GQL_ASSIGN_OR_RETURN(count_, CheckedAddInt64(count_, partial.AsInt()));
    return Status::OK();
  }

 private:
  int64_t count_ = 0;
};

/// count(*) counts rows including nulls and ignores DISTINCT.
class CountStarAggregator : public Aggregator {
 public:
  Status Accumulate(const Value&) override {
    ++count_;
    return Status::OK();
  }
  Result<Value> Finish() override { return Value::Int(count_); }
  Result<Value> ExportPartial() override { return Value::Int(count_); }
  Status MergePartial(const Value& partial) override {
    if (!partial.is_int()) {
      return Status::Internal("count(*) partial must be an integer");
    }
    GQL_ASSIGN_OR_RETURN(count_, CheckedAddInt64(count_, partial.AsInt()));
    return Status::OK();
  }

 private:
  int64_t count_ = 0;
};

class SumAggregator : public BaseAggregator {
 public:
  using BaseAggregator::BaseAggregator;
  Status Feed(const Value& v) override {
    if (v.is_int() && !is_float_) {
      // Checked: a running sum of int64s must raise on overflow like the
      // `+` operator does, not wrap (UB).
      GQL_ASSIGN_OR_RETURN(int_sum_, CheckedAddInt64(int_sum_, v.AsInt()));
    } else if (v.is_number()) {
      if (!is_float_) {
        is_float_ = true;
        float_sum_ = static_cast<double>(int_sum_);
      }
      float_sum_ += v.AsNumber();
    } else if (v.type() == ValueType::kDuration) {
      if (!seen_any_ && int_sum_ == 0 && !is_float_) {
        is_duration_ = true;
      }
      if (!is_duration_) {
        return Status::TypeError("sum() cannot mix durations and numbers");
      }
      duration_sum_ = duration_sum_ + v.AsDuration();
    } else {
      return Status::TypeError("sum() requires numeric or duration values");
    }
    if (is_duration_ && v.is_number()) {
      return Status::TypeError("sum() cannot mix durations and numbers");
    }
    seen_any_ = true;
    return Status::OK();
  }
  Result<Value> Finish() override {
    if (is_duration_) return Value::Temporal(duration_sum_);
    if (is_float_) return Value::Float(float_sum_);
    return Value::Int(int_sum_);
  }
  /// Partial: [running sum, seen-any flag]. The flag distinguishes the
  /// neutral 0 of an empty partition (skipped on merge) from a genuine
  /// zero sum, so duration-adoption and mixing rules replay exactly.
  Result<Value> ExportState() override {
    GQL_ASSIGN_OR_RETURN(Value sum, Finish());
    ValueList state;
    state.push_back(std::move(sum));
    state.push_back(Value::Bool(seen_any_));
    return Value::MakeList(std::move(state));
  }
  Status MergeState(const Value& partial) override {
    if (!partial.is_list() || partial.AsList().size() != 2 ||
        !partial.AsList()[1].is_bool()) {
      return Status::Internal("sum() partial must be [sum, seen]");
    }
    if (!partial.AsList()[1].AsBool()) return Status::OK();
    // Re-feeding the partial sum replays the serial type-combination
    // rules, including the checked int64 add: an overflow that only
    // appears when partial sums combine still raises EvaluationError.
    return Feed(partial.AsList()[0]);
  }

 private:
  bool seen_any_ = false;
  bool is_float_ = false;
  bool is_duration_ = false;
  int64_t int_sum_ = 0;
  double float_sum_ = 0;
  Duration duration_sum_;
};

class AvgAggregator : public BaseAggregator {
 public:
  using BaseAggregator::BaseAggregator;
  Status Feed(const Value& v) override {
    if (!v.is_number()) {
      return Status::TypeError("avg() requires numeric values");
    }
    if (v.is_int() && !is_float_) {
      // All-integer input accumulates exactly in checked int64 (doubles
      // silently lose precision past 2^53). Unlike sum(), whose result
      // type is integral and must raise, avg() returns a float anyway —
      // on int64 overflow it degrades gracefully to float accumulation
      // instead of rejecting a representable mean.
      auto checked = CheckedAddInt64(int_sum_, v.AsInt());
      if (checked.ok()) {
        int_sum_ = *checked;
      } else {
        is_float_ = true;
        float_sum_ = static_cast<double>(int_sum_) +
                     static_cast<double>(v.AsInt());
      }
    } else {
      if (!is_float_) {
        is_float_ = true;
        float_sum_ = static_cast<double>(int_sum_);
      }
      float_sum_ += v.AsNumber();
    }
    ++count_;
    return Status::OK();
  }
  Result<Value> Finish() override {
    if (count_ == 0) return Value::Null();
    double total =
        is_float_ ? float_sum_ : static_cast<double>(int_sum_);
    return Value::Float(total / static_cast<double>(count_));
  }
  /// Partial: [is_float, int_sum, float_sum, count] — the raw accumulator,
  /// so all-integer input stays exact across the merge (doubles lose
  /// precision past 2^53) and the mean is identical to the serial run.
  Result<Value> ExportState() override {
    ValueList state;
    state.push_back(Value::Bool(is_float_));
    state.push_back(Value::Int(int_sum_));
    state.push_back(Value::Float(float_sum_));
    state.push_back(Value::Int(count_));
    return Value::MakeList(std::move(state));
  }
  Status MergeState(const Value& partial) override {
    if (!partial.is_list() || partial.AsList().size() != 4) {
      return Status::Internal(
          "avg() partial must be [is_float, int_sum, float_sum, count]");
    }
    const ValueList& s = partial.AsList();
    bool other_float = s[0].AsBool();
    int64_t other_int = s[1].AsInt();
    double other_f = s[2].AsFloat();
    if (!other_float && !is_float_) {
      // Mirror Feed: degrade to float on int64 overflow instead of
      // rejecting a representable mean.
      auto checked = CheckedAddInt64(int_sum_, other_int);
      if (checked.ok()) {
        int_sum_ = *checked;
      } else {
        is_float_ = true;
        float_sum_ =
            static_cast<double>(int_sum_) + static_cast<double>(other_int);
      }
    } else {
      double mine = is_float_ ? float_sum_ : static_cast<double>(int_sum_);
      double theirs =
          other_float ? other_f : static_cast<double>(other_int);
      is_float_ = true;
      float_sum_ = mine + theirs;
    }
    count_ += s[3].AsInt();
    return Status::OK();
  }

 private:
  bool is_float_ = false;
  int64_t int_sum_ = 0;
  double float_sum_ = 0;
  int64_t count_ = 0;
};

class MinMaxAggregator : public BaseAggregator {
 public:
  MinMaxAggregator(bool distinct, bool is_min)
      : BaseAggregator(distinct), is_min_(is_min) {}
  Status Feed(const Value& v) override {
    if (best_.is_null()) {
      best_ = v;
      return Status::OK();
    }
    int c = ValueOrder(v, best_);
    if (is_min_ ? c < 0 : c > 0) best_ = v;
    return Status::OK();
  }
  Result<Value> Finish() override { return best_; }
  Result<Value> ExportState() override { return best_; }
  Status MergeState(const Value& partial) override {
    if (partial.is_null()) return Status::OK();  // empty partition
    return Feed(partial);
  }

 private:
  bool is_min_;
  Value best_;  // null until first value
};

class CollectAggregator : public BaseAggregator {
 public:
  using BaseAggregator::BaseAggregator;
  Status Feed(const Value& v) override {
    items_.push_back(v);
    return Status::OK();
  }
  Result<Value> Finish() override {
    return Value::MakeList(std::move(items_));
  }
  Result<Value> ExportState() override {
    return Value::MakeList(std::move(items_));
  }
  Status MergeState(const Value& partial) override {
    if (!partial.is_list()) {
      return Status::Internal("collect() partial must be a list");
    }
    // Partials arrive in partition order, so appending reproduces the
    // serial input order.
    for (const Value& v : partial.AsList()) items_.push_back(v);
    return Status::OK();
  }

 private:
  ValueList items_;
};

}  // namespace

Result<std::unique_ptr<Aggregator>> MakeAggregator(const std::string& name,
                                                   bool distinct) {
  if (name == "count(*)") {
    return std::unique_ptr<Aggregator>(new CountStarAggregator());
  }
  if (name == "count") {
    return std::unique_ptr<Aggregator>(new CountAggregator(distinct));
  }
  if (name == "sum") {
    return std::unique_ptr<Aggregator>(new SumAggregator(distinct));
  }
  if (name == "avg") {
    return std::unique_ptr<Aggregator>(new AvgAggregator(distinct));
  }
  if (name == "min") {
    return std::unique_ptr<Aggregator>(new MinMaxAggregator(distinct, true));
  }
  if (name == "max") {
    return std::unique_ptr<Aggregator>(new MinMaxAggregator(distinct, false));
  }
  if (name == "collect") {
    return std::unique_ptr<Aggregator>(new CollectAggregator(distinct));
  }
  return Status::Internal("unknown aggregate function: " + name);
}

}  // namespace gqlite
