#ifndef GQLITE_EVAL_AGGREGATION_H_
#define GQLITE_EVAL_AGGREGATION_H_

#include <memory>
#include <string>

#include "src/common/result.h"
#include "src/value/value.h"

namespace gqlite {

/// Accumulator for one aggregate function instance within one group.
/// Cypher aggregation semantics (following SQL, §2 "implements the
/// established semantics"): null inputs are skipped by every aggregate;
/// count(*) counts rows; min/max use orderability restricted to comparable
/// values; sum of integers stays integral; avg is a float; collect gathers
/// non-nulls in input order. DISTINCT variants de-duplicate by value
/// equivalence.
class Aggregator {
 public:
  virtual ~Aggregator() = default;
  /// Feeds one input value (ignored/a row marker for count(*)).
  virtual Status Accumulate(const Value& v) = 0;
  /// Produces the aggregate result for the group.
  virtual Result<Value> Finish() = 0;
};

/// Creates an aggregator. `name` is the lowercase function name: "count",
/// "sum", "avg", "min", "max", "collect", or "count(*)" for the star form.
/// Unknown names are kInternal (the analyzer validates names first).
Result<std::unique_ptr<Aggregator>> MakeAggregator(const std::string& name,
                                                   bool distinct);

}  // namespace gqlite

#endif  // GQLITE_EVAL_AGGREGATION_H_
