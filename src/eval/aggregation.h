#ifndef GQLITE_EVAL_AGGREGATION_H_
#define GQLITE_EVAL_AGGREGATION_H_

#include <memory>
#include <string>

#include "src/common/result.h"
#include "src/value/value.h"

namespace gqlite {

/// Accumulator for one aggregate function instance within one group.
/// Cypher aggregation semantics (following SQL, §2 "implements the
/// established semantics"): null inputs are skipped by every aggregate;
/// count(*) counts rows; min/max use orderability restricted to comparable
/// values; sum of integers stays integral; avg is a float; collect gathers
/// non-nulls in input order. DISTINCT variants de-duplicate by value
/// equivalence.
class Aggregator {
 public:
  virtual ~Aggregator() = default;
  /// Feeds one input value (ignored/a row marker for count(*)).
  virtual Status Accumulate(const Value& v) = 0;
  /// Produces the aggregate result for the group.
  virtual Result<Value> Finish() = 0;

  /// Parallel-merge support (morsel-driven runtime): a worker exports its
  /// accumulator state as a plain Value, and the merge stage absorbs such
  /// partials into another accumulator of the SAME function/distinctness.
  /// Merging partials in input (partition) order reproduces the serial
  /// accumulation for every order-sensitive aggregate (collect keeps
  /// first-to-last order, DISTINCT keeps first occurrence). Merge re-runs
  /// the same checked arithmetic as accumulation, so an int64 overflow
  /// produced only by combining partial sums still raises
  /// EvaluationError. The converse does not hold: a serial running sum
  /// that overflows mid-stream (while the true total is representable)
  /// may succeed when accumulated in chunks — accumulation order is
  /// unspecified in Cypher, and chunked addition is the price of
  /// parallel sum (see src/exec/parallel.h).
  virtual Result<Value> ExportPartial() = 0;
  virtual Status MergePartial(const Value& partial) = 0;
};

/// Creates an aggregator. `name` is the lowercase function name: "count",
/// "sum", "avg", "min", "max", "collect", or "count(*)" for the star form.
/// Unknown names are kInternal (the analyzer validates names first).
Result<std::unique_ptr<Aggregator>> MakeAggregator(const std::string& name,
                                                   bool distinct);

}  // namespace gqlite

#endif  // GQLITE_EVAL_AGGREGATION_H_
