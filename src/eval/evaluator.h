#ifndef GQLITE_EVAL_EVALUATOR_H_
#define GQLITE_EVAL_EVALUATOR_H_

#include <functional>
#include <optional>
#include <string>

#include "src/common/result.h"
#include "src/frontend/ast.h"
#include "src/graph/property_graph.h"
#include "src/value/value_compare.h"

namespace gqlite {

/// A variable-binding environment (the assignment u of the paper). The
/// evaluator resolves VariableExpr through this interface; list
/// comprehensions push overlay environments.
class Environment {
 public:
  virtual ~Environment() = default;
  /// Pointer to the value bound to `name`, or nullptr if unbound. The
  /// pointee lives in the environment's backing storage (a row, a map, an
  /// overlay binding) — no Value is materialized by a lookup; callers
  /// copy only when they need ownership.
  virtual const Value* Lookup(const std::string& name) const = 0;
};

/// Environment over an explicit map (tests, parameters-only evaluation).
class MapEnvironment : public Environment {
 public:
  MapEnvironment() = default;
  explicit MapEnvironment(ValueMap vars) : vars_(std::move(vars)) {}
  void Set(const std::string& name, Value v) { vars_[name] = std::move(v); }
  const Value* Lookup(const std::string& name) const override {
    auto it = vars_.find(name);
    if (it == vars_.end()) return nullptr;
    return &it->second;
  }

 private:
  ValueMap vars_;
};

/// One extra binding layered over a base environment (list comprehension
/// iteration variable).
class OverlayEnvironment : public Environment {
 public:
  OverlayEnvironment(const Environment& base, const std::string& name,
                     const Value& v)
      : base_(base), name_(name), value_(v) {}
  const Value* Lookup(const std::string& name) const override {
    if (name == name_) return &value_;
    return base_.Lookup(name);
  }

 private:
  const Environment& base_;
  const std::string& name_;
  const Value& value_;
};

/// Environment over a schema (column names) and one positional row — the
/// batched runtime's row view (no Table required).
class SchemaRowEnvironment : public Environment {
 public:
  SchemaRowEnvironment(const std::vector<std::string>& schema,
                       const ValueList& row)
      : schema_(schema), row_(row) {}
  const Value* Lookup(const std::string& name) const override {
    for (size_t i = 0; i < schema_.size() && i < row_.size(); ++i) {
      if (schema_[i] == name) return &row_[i];
    }
    return nullptr;
  }

 private:
  const std::vector<std::string>& schema_;
  const ValueList& row_;
};

/// Context threaded through expression evaluation: the graph G (for
/// property/label access — ⟦expr⟧G,u is parameterized by G), the query
/// parameters, and a hook for evaluating pattern predicates (wired up by
/// the interpreter layer, which owns pattern matching; this breaks the
/// eval↔pattern dependency cycle).
struct EvalContext {
  const PropertyGraph* graph = nullptr;
  const ValueMap* parameters = nullptr;
  std::function<Result<bool>(const ast::Pattern&, const Environment&)>
      pattern_predicate;
  /// Deterministic PRNG state for rand(); owned by the engine.
  uint64_t* rand_state = nullptr;
};

/// Evaluates ⟦expr⟧G,u (§4.3). Type errors (e.g. `1 + true`) are
/// kTypeError; nulls propagate per SQL/Cypher rules and never error.
Result<Value> EvaluateExpr(const ast::Expr& e, const Environment& env,
                           const EvalContext& ctx);

/// Evaluates an expression to a Tri for WHERE filtering: true/false/null;
/// non-boolean non-null values are a type error.
Result<Tri> EvaluatePredicate(const ast::Expr& e, const Environment& env,
                              const EvalContext& ctx);

/// Arithmetic helpers shared with the update executor.
Result<Value> AddValues(const Value& a, const Value& b);

/// Checked int64 addition shared by the `+` operator and the sum()/avg()
/// aggregators: raises `EvaluationError: integer overflow` instead of
/// wrapping (which is UB in C++ and wrong under openCypher semantics).
Result<int64_t> CheckedAddInt64(int64_t a, int64_t b);

}  // namespace gqlite

#endif  // GQLITE_EVAL_EVALUATOR_H_
