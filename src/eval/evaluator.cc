#include "src/eval/evaluator.h"

#include <cmath>
#include <cstdint>
#include <regex>

#include "src/common/string_util.h"
#include "src/eval/functions.h"
#include "src/frontend/analyzer.h"
#include "src/frontend/ast_printer.h"
#include "src/value/value_format.h"

namespace gqlite {

using namespace ast;  // NOLINT(build/namespaces)

namespace {

Status TypeErr(const std::string& what, const Value& v) {
  return Status::TypeError(what + " (got " + ValueTypeName(v.type()) + ")");
}

Value TriToValue(Tri t) {
  switch (t) {
    case Tri::kTrue:
      return Value::Bool(true);
    case Tri::kFalse:
      return Value::Bool(false);
    case Tri::kNull:
      return Value::Null();
  }
  return Value::Null();
}

Result<Tri> AsTri(const Value& v, const char* op) {
  if (v.is_null()) return Tri::kNull;
  if (v.is_bool()) return TriFromBool(v.AsBool());
  return Status::TypeError(std::string(op) +
                           " requires a boolean operand (got " +
                           ValueTypeName(v.type()) + ")");
}

/// Property/component access on a value: maps index by key; nodes and
/// relationships consult ι; temporal values expose their components.
Result<Value> AccessProperty(const Value& obj, std::string_view key,
                             const EvalContext& ctx) {
  switch (obj.type()) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kMap: {
      auto it = obj.AsMap().find(key);
      return it == obj.AsMap().end() ? Value::Null() : it->second;
    }
    case ValueType::kNode:
      if (ctx.graph == nullptr) {
        return Status::EvaluationError("no graph bound for property access");
      }
      if (!ctx.graph->IsNodeAlive(obj.AsNode())) {
        return Status::EvaluationError(
            "cannot access property of a deleted node");
      }
      return ctx.graph->NodeProperty(obj.AsNode(), key);
    case ValueType::kRelationship:
      if (ctx.graph == nullptr) {
        return Status::EvaluationError("no graph bound for property access");
      }
      if (!ctx.graph->IsRelAlive(obj.AsRelationship())) {
        return Status::EvaluationError(
            "cannot access property of a deleted relationship");
      }
      return ctx.graph->RelProperty(obj.AsRelationship(), key);
    case ValueType::kDate: {
      Date d = obj.AsDate();
      if (key == "year") return Value::Int(d.year());
      if (key == "month") return Value::Int(d.month());
      if (key == "day") return Value::Int(d.day());
      if (key == "dayOfWeek" || key == "weekDay") {
        return Value::Int(DayOfWeek(d.days_since_epoch) + 1);  // ISO 1..7
      }
      if (key == "epochDays") return Value::Int(d.days_since_epoch);
      return Status::EvaluationError("unknown Date component `" +
                                     std::string(key) + "`");
    }
    case ValueType::kLocalTime:
    case ValueType::kTime: {
      LocalTime t = obj.type() == ValueType::kTime ? obj.AsTime().local
                                                   : obj.AsLocalTime();
      if (key == "hour") return Value::Int(t.hour());
      if (key == "minute") return Value::Int(t.minute());
      if (key == "second") return Value::Int(t.second());
      if (key == "millisecond") return Value::Int(t.nanosecond() / 1000000);
      if (key == "microsecond") return Value::Int(t.nanosecond() / 1000);
      if (key == "nanosecond") return Value::Int(t.nanosecond());
      if (key == "offsetSeconds" && obj.type() == ValueType::kTime) {
        return Value::Int(obj.AsTime().offset_seconds);
      }
      return Status::EvaluationError("unknown time component `" +
                                     std::string(key) + "`");
    }
    case ValueType::kLocalDateTime:
    case ValueType::kDateTime: {
      LocalDateTime dt = obj.type() == ValueType::kDateTime
                             ? obj.AsDateTime().local
                             : obj.AsLocalDateTime();
      if (key == "offsetSeconds" && obj.type() == ValueType::kDateTime) {
        return Value::Int(obj.AsDateTime().offset_seconds);
      }
      if (key == "epochSeconds") {
        if (obj.type() == ValueType::kDateTime) {
          return Value::Int(obj.AsDateTime().InstantNanos() / kNanosPerSecond);
        }
        return Value::Int(dt.EpochSeconds());
      }
      // Delegate to the date components first, then the time components.
      Result<Value> dr = AccessProperty(Value::Temporal(dt.date), key, ctx);
      if (dr.ok()) return dr;
      return AccessProperty(Value::Temporal(dt.time), key, ctx);
    }
    case ValueType::kDuration: {
      const Duration& d = obj.AsDuration();
      if (key == "months") return Value::Int(d.months);
      if (key == "days") return Value::Int(d.days);
      if (key == "seconds") return Value::Int(d.seconds);
      if (key == "nanoseconds") return Value::Int(d.nanos);
      if (key == "years") return Value::Int(d.months / 12);
      if (key == "hours") return Value::Int(d.seconds / 3600);
      if (key == "minutes") return Value::Int(d.seconds / 60);
      return Status::EvaluationError("unknown Duration component `" +
                                     std::string(key) + "`");
    }
    default:
      return TypeErr("property access requires a map, node, relationship or "
                     "temporal value",
                     obj);
  }
}

Result<Value> Arith(BinaryOp op, const Value& a, const Value& b);

}  // namespace

Result<int64_t> CheckedAddInt64(int64_t a, int64_t b) {
  int64_t r = 0;
  if (__builtin_add_overflow(a, b, &r)) {
    return Status::EvaluationError("integer overflow: " + std::to_string(a) +
                                   " + " + std::to_string(b));
  }
  return r;
}

Result<Value> AddValues(const Value& a, const Value& b) {
  return Arith(BinaryOp::kAdd, a, b);
}

namespace {

Result<Value> Arith(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  // String concatenation: 'a' + x.
  if (op == BinaryOp::kAdd) {
    if (a.is_string() && b.is_string()) {
      std::string_view x = a.AsString();
      std::string_view y = b.AsString();
      std::string out;
      out.reserve(x.size() + y.size());
      out += x;
      out += y;
      return Value::String(std::move(out));
    }
    if (a.is_string() && b.is_number()) {
      std::string out(a.AsString());
      out += b.is_int() ? std::to_string(b.AsInt()) : FormatFloat(b.AsFloat());
      return Value::String(std::move(out));
    }
    if (a.is_number() && b.is_string()) {
      std::string out = a.is_int() ? std::to_string(a.AsInt())
                                   : FormatFloat(a.AsFloat());
      out += b.AsString();
      return Value::String(std::move(out));
    }
    if (a.is_list() && b.is_list()) {
      ValueList out = a.AsList();  // new payload: payloads are immutable
      out.insert(out.end(), b.AsList().begin(), b.AsList().end());
      return Value::MakeList(std::move(out));
    }
    if (a.is_list()) {
      ValueList out = a.AsList();
      out.push_back(b);
      return Value::MakeList(std::move(out));
    }
    if (b.is_list()) {
      ValueList out;
      out.push_back(a);
      out.insert(out.end(), b.AsList().begin(), b.AsList().end());
      return Value::MakeList(std::move(out));
    }
    // Temporal arithmetic.
    if (a.is_temporal() && b.type() == ValueType::kDuration) {
      switch (a.type()) {
        case ValueType::kDate:
          return Value::Temporal(AddDuration(a.AsDate(), b.AsDuration()));
        case ValueType::kLocalDateTime:
          return Value::Temporal(
              AddDuration(a.AsLocalDateTime(), b.AsDuration()));
        case ValueType::kDateTime:
          return Value::Temporal(AddDuration(a.AsDateTime(), b.AsDuration()));
        case ValueType::kLocalTime:
          return Value::Temporal(AddDuration(a.AsLocalTime(), b.AsDuration()));
        case ValueType::kTime: {
          ZonedTime t = a.AsTime();
          t.local = AddDuration(t.local, b.AsDuration());
          return Value::Temporal(t);
        }
        case ValueType::kDuration:
          return Value::Temporal(a.AsDuration() + b.AsDuration());
        default:
          break;
      }
    }
    if (a.type() == ValueType::kDuration && b.is_temporal()) {
      return Arith(BinaryOp::kAdd, b, a);  // duration + instant commutes
    }
  }
  if (op == BinaryOp::kSub) {
    if (a.type() == ValueType::kDuration && b.type() == ValueType::kDuration) {
      return Value::Temporal(a.AsDuration() - b.AsDuration());
    }
    if (a.is_temporal() && b.type() == ValueType::kDuration) {
      return Arith(BinaryOp::kAdd, a,
                   Value::Temporal(b.AsDuration().Negated()));
    }
    // instant - instant → duration (exact difference).
    if (a.type() == ValueType::kDate && b.type() == ValueType::kDate) {
      return Value::Temporal(DurationBetween(b.AsDate(), a.AsDate()));
    }
    if (a.type() == ValueType::kLocalDateTime &&
        b.type() == ValueType::kLocalDateTime) {
      return Value::Temporal(
          DurationBetween(b.AsLocalDateTime(), a.AsLocalDateTime()));
    }
    if (a.type() == ValueType::kDateTime && b.type() == ValueType::kDateTime) {
      return Value::Temporal(DurationBetween(b.AsDateTime(), a.AsDateTime()));
    }
  }
  if (op == BinaryOp::kMul && a.type() == ValueType::kDuration && b.is_int()) {
    return Value::Temporal(a.AsDuration().ScaledBy(b.AsInt()));
  }
  if (op == BinaryOp::kMul && b.type() == ValueType::kDuration && a.is_int()) {
    return Value::Temporal(b.AsDuration().ScaledBy(a.AsInt()));
  }
  if (!a.is_number() || !b.is_number()) {
    return Status::TypeError(std::string("operator ") + BinaryOpName(op) +
                             " cannot combine " + ValueTypeName(a.type()) +
                             " and " + ValueTypeName(b.type()));
  }
  if (op == BinaryOp::kPow) {
    return Value::Float(std::pow(a.AsNumber(), b.AsNumber()));
  }
  if (a.is_int() && b.is_int()) {
    // Integer arithmetic must raise on overflow (openCypher; wrapping is
    // UB in C++), so every op goes through a checked builtin.
    int64_t x = a.AsInt(), y = b.AsInt();
    int64_t r = 0;
    switch (op) {
      case BinaryOp::kAdd: {
        GQL_ASSIGN_OR_RETURN(r, CheckedAddInt64(x, y));
        return Value::Int(r);
      }
      case BinaryOp::kSub:
        if (__builtin_sub_overflow(x, y, &r)) {
          return Status::EvaluationError("integer overflow: " +
                                         std::to_string(x) + " - " +
                                         std::to_string(y));
        }
        return Value::Int(r);
      case BinaryOp::kMul:
        if (__builtin_mul_overflow(x, y, &r)) {
          return Status::EvaluationError("integer overflow: " +
                                         std::to_string(x) + " * " +
                                         std::to_string(y));
        }
        return Value::Int(r);
      case BinaryOp::kDiv:
        if (y == 0) return Status::EvaluationError("division by zero");
        if (x == INT64_MIN && y == -1) {
          return Status::EvaluationError("integer overflow: " +
                                         std::to_string(x) + " / -1");
        }
        return Value::Int(x / y);
      case BinaryOp::kMod:
        if (y == 0) return Status::EvaluationError("modulo by zero");
        if (y == -1) return Value::Int(0);  // INT64_MIN % -1 is UB
        return Value::Int(x % y);
      default:
        break;
    }
  }
  double x = a.AsNumber(), y = b.AsNumber();
  switch (op) {
    case BinaryOp::kAdd:
      return Value::Float(x + y);
    case BinaryOp::kSub:
      return Value::Float(x - y);
    case BinaryOp::kMul:
      return Value::Float(x * y);
    case BinaryOp::kDiv:
      return Value::Float(x / y);
    case BinaryOp::kMod:
      return Value::Float(std::fmod(x, y));
    default:
      break;
  }
  return Status::Internal("unhandled arithmetic operator");
}

Result<Value> StringPredicate(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_string() || !b.is_string()) {
    // Neo4j yields null when either operand is non-string.
    return Value::Null();
  }
  switch (op) {
    case BinaryOp::kStartsWith:
      return Value::Bool(StartsWith(a.AsString(), b.AsString()));
    case BinaryOp::kEndsWith:
      return Value::Bool(EndsWith(a.AsString(), b.AsString()));
    case BinaryOp::kContains:
      return Value::Bool(Contains(a.AsString(), b.AsString()));
    case BinaryOp::kRegexMatch: {
      std::string_view s = a.AsString();
      std::string_view pattern = b.AsString();
      try {
        std::regex re(pattern.begin(), pattern.end());
        return Value::Bool(std::regex_match(s.begin(), s.end(), re));
      } catch (const std::regex_error&) {
        return Status::EvaluationError("invalid regular expression: " +
                                       std::string(b.AsString()));
      }
    }
    default:
      return Status::Internal("unhandled string predicate");
  }
}

Result<Value> InList(const Value& needle, const Value& hay) {
  if (hay.is_null()) return Value::Null();
  if (!hay.is_list()) {
    return TypeErr("IN requires a list on the right-hand side", hay);
  }
  bool saw_null = false;
  for (const Value& e : hay.AsList()) {
    Tri t = ValueEquals(needle, e);
    if (t == Tri::kTrue) return Value::Bool(true);
    if (t == Tri::kNull) saw_null = true;
  }
  return saw_null ? Value::Null() : Value::Bool(false);
}

Result<Value> IndexValue(const Value& obj, const Value& idx,
                         const EvalContext& ctx) {
  if (obj.is_null() || idx.is_null()) return Value::Null();
  if (obj.is_list()) {
    if (!idx.is_int()) return TypeErr("list index must be an integer", idx);
    int64_t i = idx.AsInt();
    int64_t n = static_cast<int64_t>(obj.AsList().size());
    if (i < 0) i += n;  // negative indexes from the end
    if (i < 0 || i >= n) return Value::Null();
    return obj.AsList()[i];
  }
  if (obj.is_map() || obj.is_node() || obj.is_relationship()) {
    if (!idx.is_string()) return TypeErr("key must be a string", idx);
    return AccessProperty(obj, idx.AsString(), ctx);
  }
  return TypeErr("indexing requires a list or map", obj);
}

Result<Value> SliceValue(const Value& obj, const Value& from, const Value& to) {
  if (obj.is_null() || from.is_null() || to.is_null()) return Value::Null();
  if (!obj.is_list()) return TypeErr("slicing requires a list", obj);
  if (!from.is_int() || !to.is_int()) {
    return Status::TypeError("slice bounds must be integers");
  }
  int64_t n = static_cast<int64_t>(obj.AsList().size());
  int64_t lo = from.AsInt();
  int64_t hi = to.AsInt();
  if (lo < 0) lo += n;
  if (hi < 0) hi += n;
  lo = std::max<int64_t>(0, std::min(lo, n));
  hi = std::max<int64_t>(0, std::min(hi, n));
  ValueList out;
  for (int64_t i = lo; i < hi; ++i) out.push_back(obj.AsList()[i]);
  return Value::MakeList(std::move(out));
}

}  // namespace

Result<Value> EvaluateExpr(const Expr& e, const Environment& env,
                           const EvalContext& ctx) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return static_cast<const LiteralExpr&>(e).value;
    case Expr::Kind::kVariable: {
      const auto& v = static_cast<const VariableExpr&>(e);
      const Value* val = env.Lookup(v.name);
      if (val == nullptr) {
        return Status::EvaluationError("variable `" + v.name +
                                       "` is not bound");
      }
      return *val;
    }
    case Expr::Kind::kParameter: {
      const auto& p = static_cast<const ParameterExpr&>(e);
      if (ctx.parameters == nullptr) {
        return Status::EvaluationError("no parameters supplied");
      }
      auto it = ctx.parameters->find(p.name);
      if (it == ctx.parameters->end()) {
        return Status::EvaluationError("missing query parameter $" + p.name);
      }
      return it->second;
    }
    case Expr::Kind::kProperty: {
      const auto& p = static_cast<const PropertyExpr&>(e);
      GQL_ASSIGN_OR_RETURN(Value obj, EvaluateExpr(*p.object, env, ctx));
      return AccessProperty(obj, p.key, ctx);
    }
    case Expr::Kind::kLabelCheck: {
      const auto& p = static_cast<const LabelCheckExpr&>(e);
      GQL_ASSIGN_OR_RETURN(Value obj, EvaluateExpr(*p.object, env, ctx));
      if (obj.is_null()) return Value::Null();
      if (!obj.is_node()) {
        return TypeErr("label predicate requires a node", obj);
      }
      if (ctx.graph == nullptr || !ctx.graph->IsNodeAlive(obj.AsNode())) {
        return Status::EvaluationError("label check on a deleted node");
      }
      for (const auto& l : p.labels) {
        if (!ctx.graph->NodeHasLabel(obj.AsNode(), l)) {
          return Value::Bool(false);
        }
      }
      return Value::Bool(true);
    }
    case Expr::Kind::kListLiteral: {
      const auto& p = static_cast<const ListLiteralExpr&>(e);
      ValueList out;
      out.reserve(p.items.size());
      for (const auto& i : p.items) {
        GQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*i, env, ctx));
        out.push_back(std::move(v));
      }
      return Value::MakeList(std::move(out));
    }
    case Expr::Kind::kMapLiteral: {
      const auto& p = static_cast<const MapLiteralExpr&>(e);
      ValueMap out;
      for (const auto& [k, v] : p.entries) {
        GQL_ASSIGN_OR_RETURN(Value val, EvaluateExpr(*v, env, ctx));
        out[k] = std::move(val);
      }
      return Value::MakeMap(std::move(out));
    }
    case Expr::Kind::kCountStar:
      return Status::EvaluationError(
          "count(*) is only valid in RETURN/WITH projections");
    case Expr::Kind::kFunctionCall: {
      const auto& f = static_cast<const FunctionCallExpr&>(e);
      if (IsAggregateFunction(f.name)) {
        return Status::EvaluationError(
            "aggregate function " + f.name +
            " is only valid in RETURN/WITH projections");
      }
      // exists(...): pattern predicates delegate to the matcher; any other
      // argument tests for null (absent property).
      if (f.name == "exists" && f.args.size() == 1) {
        if (f.args[0]->kind == Expr::Kind::kPatternPredicate) {
          return EvaluateExpr(*f.args[0], env, ctx);
        }
        GQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*f.args[0], env, ctx));
        return Value::Bool(!v.is_null());
      }
      std::vector<Value> args;
      args.reserve(f.args.size());
      for (const auto& a : f.args) {
        GQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*a, env, ctx));
        args.push_back(std::move(v));
      }
      return CallFunction(f.name, args, ctx);
    }
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      switch (b.op) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
        case BinaryOp::kXor: {
          GQL_ASSIGN_OR_RETURN(Value lv, EvaluateExpr(*b.lhs, env, ctx));
          GQL_ASSIGN_OR_RETURN(Value rv, EvaluateExpr(*b.rhs, env, ctx));
          GQL_ASSIGN_OR_RETURN(Tri lt, AsTri(lv, BinaryOpName(b.op)));
          GQL_ASSIGN_OR_RETURN(Tri rt, AsTri(rv, BinaryOpName(b.op)));
          Tri r = b.op == BinaryOp::kAnd
                      ? TriAnd(lt, rt)
                      : (b.op == BinaryOp::kOr ? TriOr(lt, rt)
                                               : TriXor(lt, rt));
          return TriToValue(r);
        }
        default:
          break;
      }
      GQL_ASSIGN_OR_RETURN(Value lv, EvaluateExpr(*b.lhs, env, ctx));
      GQL_ASSIGN_OR_RETURN(Value rv, EvaluateExpr(*b.rhs, env, ctx));
      switch (b.op) {
        case BinaryOp::kEq:
          return TriToValue(ValueEquals(lv, rv));
        case BinaryOp::kNeq:
          return TriToValue(TriNot(ValueEquals(lv, rv)));
        case BinaryOp::kLt:
          return TriToValue(ValueLess(lv, rv));
        case BinaryOp::kLe:
          return TriToValue(TriOr(ValueLess(lv, rv), ValueEquals(lv, rv)));
        case BinaryOp::kGt:
          return TriToValue(ValueLess(rv, lv));
        case BinaryOp::kGe:
          return TriToValue(TriOr(ValueLess(rv, lv), ValueEquals(lv, rv)));
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
        case BinaryOp::kPow:
          return Arith(b.op, lv, rv);
        case BinaryOp::kIn:
          if (lv.is_null() && rv.is_null()) return Value::Null();
          return InList(lv, rv);
        case BinaryOp::kStartsWith:
        case BinaryOp::kEndsWith:
        case BinaryOp::kContains:
        case BinaryOp::kRegexMatch:
          return StringPredicate(b.op, lv, rv);
        default:
          return Status::Internal("unhandled binary operator");
      }
    }
    case Expr::Kind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      GQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*u.operand, env, ctx));
      switch (u.op) {
        case UnaryOp::kNot: {
          GQL_ASSIGN_OR_RETURN(Tri t, AsTri(v, "NOT"));
          return TriToValue(TriNot(t));
        }
        case UnaryOp::kMinus:
          if (v.is_null()) return Value::Null();
          if (v.is_int()) {
            if (v.AsInt() == INT64_MIN) {
              return Status::EvaluationError(
                  "integer overflow: -(" + std::to_string(v.AsInt()) + ")");
            }
            return Value::Int(-v.AsInt());
          }
          if (v.is_float()) return Value::Float(-v.AsFloat());
          if (v.type() == ValueType::kDuration) {
            return Value::Temporal(v.AsDuration().Negated());
          }
          return TypeErr("unary minus requires a number", v);
        case UnaryOp::kPlus:
          if (v.is_null() || v.is_number()) return v;
          return TypeErr("unary plus requires a number", v);
        case UnaryOp::kIsNull:
          return Value::Bool(v.is_null());
        case UnaryOp::kIsNotNull:
          return Value::Bool(!v.is_null());
      }
      return Status::Internal("unhandled unary operator");
    }
    case Expr::Kind::kIndex: {
      const auto& i = static_cast<const IndexExpr&>(e);
      GQL_ASSIGN_OR_RETURN(Value obj, EvaluateExpr(*i.object, env, ctx));
      GQL_ASSIGN_OR_RETURN(Value idx, EvaluateExpr(*i.index, env, ctx));
      return IndexValue(obj, idx, ctx);
    }
    case Expr::Kind::kSlice: {
      const auto& s = static_cast<const SliceExpr&>(e);
      GQL_ASSIGN_OR_RETURN(Value obj, EvaluateExpr(*s.object, env, ctx));
      Value from = Value::Int(0);
      if (s.from) {
        GQL_ASSIGN_OR_RETURN(from, EvaluateExpr(*s.from, env, ctx));
      }
      Value to = obj.is_list()
                     ? Value::Int(static_cast<int64_t>(obj.AsList().size()))
                     : Value::Null();
      if (s.to) {
        GQL_ASSIGN_OR_RETURN(to, EvaluateExpr(*s.to, env, ctx));
      }
      if (!obj.is_null() && !obj.is_list()) {
        return TypeErr("slicing requires a list", obj);
      }
      if (obj.is_null()) return Value::Null();
      return SliceValue(obj, from, to);
    }
    case Expr::Kind::kCase: {
      const auto& c = static_cast<const CaseExpr&>(e);
      if (c.operand) {
        GQL_ASSIGN_OR_RETURN(Value op, EvaluateExpr(*c.operand, env, ctx));
        for (const auto& [w, t] : c.whens) {
          GQL_ASSIGN_OR_RETURN(Value wv, EvaluateExpr(*w, env, ctx));
          if (ValueEquals(op, wv) == Tri::kTrue) {
            return EvaluateExpr(*t, env, ctx);
          }
        }
      } else {
        for (const auto& [w, t] : c.whens) {
          GQL_ASSIGN_OR_RETURN(Value wv, EvaluateExpr(*w, env, ctx));
          GQL_ASSIGN_OR_RETURN(Tri wt, AsTri(wv, "CASE WHEN"));
          if (wt == Tri::kTrue) return EvaluateExpr(*t, env, ctx);
        }
      }
      if (c.otherwise) return EvaluateExpr(*c.otherwise, env, ctx);
      return Value::Null();
    }
    case Expr::Kind::kListComprehension: {
      const auto& c = static_cast<const ListComprehensionExpr&>(e);
      GQL_ASSIGN_OR_RETURN(Value list, EvaluateExpr(*c.list, env, ctx));
      if (list.is_null()) return Value::Null();
      if (!list.is_list()) {
        return TypeErr("list comprehension requires a list", list);
      }
      ValueList out;
      for (const Value& item : list.AsList()) {
        OverlayEnvironment inner(env, c.var, item);
        if (c.where) {
          GQL_ASSIGN_OR_RETURN(Value wv, EvaluateExpr(*c.where, inner, ctx));
          GQL_ASSIGN_OR_RETURN(Tri wt, AsTri(wv, "comprehension WHERE"));
          if (wt != Tri::kTrue) continue;
        }
        if (c.project) {
          GQL_ASSIGN_OR_RETURN(Value pv, EvaluateExpr(*c.project, inner, ctx));
          out.push_back(std::move(pv));
        } else {
          out.push_back(item);
        }
      }
      return Value::MakeList(std::move(out));
    }
    case Expr::Kind::kQuantifier: {
      const auto& q = static_cast<const QuantifierExpr&>(e);
      GQL_ASSIGN_OR_RETURN(Value list, EvaluateExpr(*q.list, env, ctx));
      if (list.is_null()) return Value::Null();
      if (!list.is_list()) {
        return TypeErr("quantifier requires a list", list);
      }
      // 3VL folds: all = AND over the element predicates (empty → true),
      // any = OR (empty → false), none = NOT any; single = exactly one
      // true, null when an unknown could change the verdict.
      int64_t trues = 0, falses = 0, nulls = 0;
      for (const Value& item : list.AsList()) {
        OverlayEnvironment inner(env, q.var, item);
        GQL_ASSIGN_OR_RETURN(Value wv, EvaluateExpr(*q.where, inner, ctx));
        GQL_ASSIGN_OR_RETURN(Tri wt, AsTri(wv, "quantifier WHERE"));
        if (wt == Tri::kTrue) ++trues;
        else if (wt == Tri::kFalse) ++falses;
        else ++nulls;
      }
      switch (q.quantifier) {
        case QuantifierExpr::Quantifier::kAll:
          if (falses > 0) return Value::Bool(false);
          if (nulls > 0) return Value::Null();
          return Value::Bool(true);
        case QuantifierExpr::Quantifier::kAny:
          if (trues > 0) return Value::Bool(true);
          if (nulls > 0) return Value::Null();
          return Value::Bool(false);
        case QuantifierExpr::Quantifier::kNone:
          if (trues > 0) return Value::Bool(false);
          if (nulls > 0) return Value::Null();
          return Value::Bool(true);
        case QuantifierExpr::Quantifier::kSingle:
          if (trues > 1) return Value::Bool(false);
          if (nulls > 0) return Value::Null();
          return Value::Bool(trues == 1);
      }
      return Status::Internal("unhandled quantifier");
    }
    case Expr::Kind::kReduce: {
      const auto& r = static_cast<const ReduceExpr&>(e);
      GQL_ASSIGN_OR_RETURN(Value acc, EvaluateExpr(*r.init, env, ctx));
      GQL_ASSIGN_OR_RETURN(Value list, EvaluateExpr(*r.list, env, ctx));
      if (list.is_null()) return Value::Null();
      if (!list.is_list()) return TypeErr("reduce requires a list", list);
      for (const Value& item : list.AsList()) {
        OverlayEnvironment with_acc(env, r.acc, acc);
        OverlayEnvironment inner(with_acc, r.var, item);
        GQL_ASSIGN_OR_RETURN(Value next, EvaluateExpr(*r.body, inner, ctx));
        acc = std::move(next);
      }
      return acc;
    }
    case Expr::Kind::kPatternPredicate: {
      const auto& p = static_cast<const PatternPredicateExpr&>(e);
      if (!ctx.pattern_predicate) {
        return Status::EvaluationError(
            "pattern predicates are not available in this context");
      }
      GQL_ASSIGN_OR_RETURN(bool any, ctx.pattern_predicate(p.pattern, env));
      return Value::Bool(any);
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<Tri> EvaluatePredicate(const Expr& e, const Environment& env,
                              const EvalContext& ctx) {
  GQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(e, env, ctx));
  if (v.is_null()) return Tri::kNull;
  if (v.is_bool()) return TriFromBool(v.AsBool());
  return Status::TypeError(
      "predicate must evaluate to a boolean or null (got " +
      std::string(ValueTypeName(v.type())) + ")");
}

}  // namespace gqlite
