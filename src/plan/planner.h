#ifndef GQLITE_PLAN_PLANNER_H_
#define GQLITE_PLAN_PLANNER_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/graph/graph_catalog.h"
#include "src/plan/cost_model.h"
#include "src/plan/operators.h"

namespace gqlite {

/// Planner configuration. The three modes ablate pattern ordering
/// (experiment E15):
///  * kLeftToRight — anchor every path at its syntactically first node and
///    expand left to right (no cost model; the "naive" baseline);
///  * kGreedy — anchor at the cheapest position by estimated cardinality
///    and expand the cheaper frontier first;
///  * kDpStarts — exhaustively cost every anchor position per path chain
///    and pick the optimum. For chain-shaped patterns (Cypher path
///    patterns are chains) this search is exact under the cost model —
///    the chain specialization of the IDP join-ordering the paper cites.
struct PlannerOptions {
  enum class Mode { kGreedy, kLeftToRight, kDpStarts };
  Mode mode = Mode::kGreedy;
  /// E14 baseline: replace adjacency Expand with a relationship-store
  /// hash join (equivalent to forcing expand_strategy = kHashJoin).
  bool use_join_expand = false;
  /// Per-hop physical-operator choice: kCost compares the adjacency
  /// Expand against the relationship-store hash join per step; the
  /// forced values pin one side (differential-harness override).
  ExpandStrategy expand_strategy = ExpandStrategy::kCost;
  /// Anchor/expand-direction choice: kCost searches by estimated cost;
  /// kForceRight / kForceLeft pin the chain traversal direction.
  DirectionPolicy direction_policy = DirectionPolicy::kCost;
  /// Morsel capacity of the batched runtime (1 = tuple-at-a-time).
  /// Copied into each plan's ExecContext for pipeline breakers and used
  /// by RunPlanned/ExecutePlan for the root drain.
  size_t batch_size = RowBatch::kDefaultCapacity;
  /// Worker count for morsel-driven parallel execution (src/exec/). With
  /// num_threads > 1 the planner builds one pipeline instance per worker
  /// for parallel-safe plans; 1 keeps today's serial path.
  size_t num_threads = 1;
  MatchOptions match;
};

/// Parallel-execution metadata of a compiled plan (filled by the planner
/// when PlannerOptions::num_threads > 1; see src/exec/parallel.h for the
/// execution model and the safety rules).
struct ParallelPlanInfo {
  /// True when worker instances were built and the plan may run on the
  /// morsel-driven parallel runtime.
  bool safe = false;
  /// Why the plan stays serial (surfaced by EXPLAIN); empty when safe.
  std::string reason;
  /// Human-readable merge-stage shape ("parallel merge sort",
  /// "partitioned aggregation merge", ...) for EXPLAIN/PROFILE; empty
  /// when serial.
  std::string merge_shape;
  /// Per worker instance (instance 0 is Plan::root, instance i > 0 is
  /// extra_roots[i-1]): the merge-point projection (the lowest pipeline
  /// breaker on the projection spine, or the root) and the
  /// morsel-partitioned driving scan of that instance's pipeline.
  std::vector<ProjectionOp*> projections;
  std::vector<PartitionedScan*> scans;
};

/// A compiled physical plan plus everything it borrows (execution
/// contexts, synthesized filter expressions). The analyzed AST must
/// outlive the plan.
struct Plan {
  OperatorPtr root;
  /// Additional per-worker pipeline instances (parallel execution only):
  /// structurally identical trees planned from the same AST — operators
  /// are stateful single-use pipelines, so each worker needs its own.
  std::vector<OperatorPtr> extra_roots;
  ParallelPlanInfo parallel;
  std::vector<std::unique_ptr<ExecContext>> contexts;
  std::vector<ast::ExprPtr> synthesized;
};

/// Compiles analyzed read-only queries to Volcano pipelines. Updating
/// queries and RETURN GRAPH run on the reference interpreter (the engine
/// routes them); patterns outside the pipeline subset fall back to the
/// MatcherOp inside an otherwise planned pipeline.
class Planner {
 public:
  Planner(CatalogRef catalog, GraphPtr graph, const ValueMap* params,
          PlannerOptions options, uint64_t* rand_state)
      : catalog_(std::move(catalog)),
        graph_(std::move(graph)),
        params_(params),
        options_(std::move(options)),
        rand_state_(rand_state) {}

  Result<Plan> PlanQuery(const ast::Query& q);

 private:
  struct PipelineState;

  Result<OperatorPtr> PlanSingle(const ast::SingleQuery& q, Plan* plan);
  /// Analyzes `plan` for parallel safety and, when safe, plans the
  /// num_threads - 1 extra worker instances (no-op at num_threads <= 1).
  Status BuildParallelInstances(const ast::Query& q, Plan* plan);
  Result<OperatorPtr> PlanMatch(const ast::MatchClause& m, OperatorPtr input,
                                Plan* plan, ExecContext* ctx);
  Status PlanChain(const ast::PathPattern& path, PipelineState* state,
                   Plan* plan, ExecContext* ctx);

  /// Places every pending WHERE/synthesized conjunct whose variables are
  /// all bound as a FilterOp at the current tip. PlanChain calls this
  /// after the anchor scan and after every expand step (filter pushdown
  /// into the chain, not just at chain boundaries). With `est` non-null
  /// the running cardinality estimate is multiplied by each filter's
  /// selectivity and annotated on the placed operator; `rel_vars` names
  /// the relationship columns so property equalities pick the right NDV
  /// sketch.
  void PlaceReadyFilters(PipelineState* state, ExecContext* ctx,
                         const GraphStatistics* stats,
                         const std::set<std::string>* rel_vars, double* est);

  ExecContext* MakeContext(Plan* plan, GraphPtr graph);

  CatalogRef catalog_;
  GraphPtr graph_;
  const ValueMap* params_;
  PlannerOptions options_;
  uint64_t* rand_state_;
  int fresh_counter_ = 0;
};

}  // namespace gqlite

#endif  // GQLITE_PLAN_PLANNER_H_
