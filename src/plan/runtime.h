#ifndef GQLITE_PLAN_RUNTIME_H_
#define GQLITE_PLAN_RUNTIME_H_

#include "src/interp/row_batch.h"
#include "src/interp/table.h"
#include "src/plan/planner.h"

namespace gqlite {

class WorkerPool;
struct ParallelRunStats;

/// Executes a compiled plan: Open the root and drain it morsel by morsel
/// into a table. The runtime is batched ("morsel-at-a-time") Volcano
/// iteration: operators keep the pull-based tree of §2's "Neo4j
/// implementation", but each NextBatch call moves a RowBatch of up to
/// `batch_size` rows (selection vectors carry filter results), amortizing
/// virtual dispatch across the morsel. `batch_size == 1` degenerates to
/// classic tuple-at-a-time execution — the escape hatch the benches
/// expose as `--no-batch` and tests drive via GQLITE_BATCH_SIZE=1.
/// `stats` (optional) accumulates rows/batches the root produced.
Result<Table> ExecutePlan(Plan* plan,
                          size_t batch_size = RowBatch::kDefaultCapacity,
                          BatchStats* stats = nullptr);

/// Resolves the effective morsel capacity for `configured`: applies the
/// GQLITE_BATCH_SIZE environment override (how CI drives every executor
/// at batch size 1) and clamps the programmatic value to [1, 2^20] — a
/// morsel bounds the per-batch working set (batch buffers, pending
/// var-length expansions), and batching gains nothing past cache sizes.
/// A garbage override (non-numeric, non-positive, overflowing, or above
/// the cap) is an InvalidArgument error naming the variable — NOT a
/// silent clamp; CI relying on the override must learn when it is
/// ineffective. Every entry point that builds execution options
/// (CypherEngine, test harnesses that call RunPlanned directly) must
/// route its batch size through this so the override means the same
/// thing everywhere.
Result<size_t> EffectiveBatchSize(size_t configured);

/// Same contract for the worker count of the morsel-driven parallel
/// runtime: applies the GQLITE_THREADS environment override (how the
/// TSan CI leg drives every engine at 4 workers), clamps the
/// programmatic value to [1, 256], and rejects garbage overrides with a
/// clear error instead of silently clamping.
Result<size_t> EffectiveNumThreads(size_t configured);

/// Plans and executes a read-only query in one call (morsel size from
/// `options.batch_size`). With `options.num_threads > 1` AND a non-null
/// `pool`, parallel-safe plans run on the morsel-driven parallel runtime
/// (src/exec/parallel.h); everything else takes the serial drain.
/// `pstats` (optional) reports workers/morsels/merge tasks when the
/// parallel path ran. `serial_reason` (optional) receives the
/// AnalyzeParallelCandidate reason when a parallel-eligible execution
/// (num_threads > 1, pool present) fell back to the serial drain — the
/// engine folds these into per-reason fallback counters.
Result<Table> RunPlanned(CatalogRef catalog, GraphPtr graph,
                         const ValueMap* params, const PlannerOptions& options,
                         uint64_t* rand_state, const ast::Query& q,
                         BatchStats* stats = nullptr,
                         WorkerPool* pool = nullptr,
                         ParallelRunStats* pstats = nullptr,
                         std::string* serial_reason = nullptr);

/// Plans a query and renders the operator tree (EXPLAIN), headed by the
/// execution model line (batched runtime + morsel size) and — when
/// `options.num_threads > 1` — whether the plan runs on the parallel
/// runtime or why it stays serial.
Result<std::string> ExplainQuery(CatalogRef catalog, GraphPtr graph,
                                 const ValueMap* params,
                                 const PlannerOptions& options,
                                 uint64_t* rand_state, const ast::Query& q);

}  // namespace gqlite

#endif  // GQLITE_PLAN_RUNTIME_H_
