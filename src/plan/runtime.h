#ifndef GQLITE_PLAN_RUNTIME_H_
#define GQLITE_PLAN_RUNTIME_H_

#include "src/interp/table.h"
#include "src/plan/planner.h"

namespace gqlite {

/// Executes a compiled plan: Open the root and drain it into a table
/// (tuple-at-a-time Volcano iteration, §2 "Neo4j implementation").
Result<Table> ExecutePlan(Plan* plan);

/// Plans and executes a read-only query in one call.
Result<Table> RunPlanned(GraphCatalog* catalog, GraphPtr graph,
                         const ValueMap* params, const PlannerOptions& options,
                         uint64_t* rand_state, const ast::Query& q);

/// Plans a query and renders the operator tree (EXPLAIN).
Result<std::string> ExplainQuery(GraphCatalog* catalog, GraphPtr graph,
                                 const ValueMap* params,
                                 const PlannerOptions& options,
                                 uint64_t* rand_state, const ast::Query& q);

}  // namespace gqlite

#endif  // GQLITE_PLAN_RUNTIME_H_
