#include "src/plan/operators.h"

#include <algorithm>
#include <cstdio>

#include "src/frontend/analyzer.h"
#include "src/value/value_compare.h"

namespace gqlite {

namespace {

std::vector<std::string> Extend(const std::vector<std::string>& base,
                                std::initializer_list<std::string> extra) {
  std::vector<std::string> out = base;
  for (const auto& e : extra) {
    if (!e.empty()) out.push_back(e);
  }
  return out;
}

/// True if relationship `r` already occurs in one of the uniqueness
/// columns (single relationships or relationship lists) of `row` — the
/// relationship-isomorphism check.
bool RelAlreadyUsed(RelId r, const ValueList& row,
                    const std::vector<int>& cols) {
  for (int c : cols) {
    const Value& v = row[c];
    if (v.is_relationship() && v.AsRelationship() == r) return true;
    if (v.is_list()) {
      for (const Value& e : v.AsList()) {
        if (e.is_relationship() && e.AsRelationship() == r) return true;
      }
    }
  }
  return false;
}

/// Type check against the spec's pre-resolved type ids (see
/// ExpandSpec::type_ids) — one integer compare per wanted type.
bool TypeOk(const PropertyGraph& g, const ExpandSpec& spec, RelId r) {
  if (spec.type_ids.empty()) return true;
  SymbolId t = g.RelTypeId(r);
  for (SymbolId want : spec.type_ids) {
    if (want == t) return true;
  }
  return false;
}

/// Resolves the spec's type names against the bound graph (call from
/// Open(): the graph is fixed per execution, ids are stable per graph).
void ResolveTypeIds(const PropertyGraph& g, ExpandSpec* spec) {
  spec->type_ids.clear();
  spec->type_ids.reserve(spec->types.size());
  for (const auto& t : spec->types) spec->type_ids.push_back(g.LookupType(t));
}

}  // namespace

// ---- LazyPropWants ----------------------------------------------------------

Result<bool> LazyPropWants::Ok(const ExecContext& ctx, const ExpandSpec& spec,
                               const std::vector<std::string>& schema,
                               const ValueList& row, RelId r) {
  if (spec.rel_props == nullptr) return true;
  const auto& props = *spec.rel_props;
  for (size_t i = 0; i < props.size(); ++i) {
    if (i >= wants_.size()) {
      // Key i's constraint value is evaluated at the first candidate
      // that survives keys 0..i-1 — exactly when the per-candidate
      // reference check would evaluate it, so an erroring expression
      // behind a mismatching earlier key stays unevaluated.
      SchemaRowEnvironment env(schema, row);
      GQL_ASSIGN_OR_RETURN(Value want,
                           EvaluateExpr(*props[i].second, env, ctx.eval));
      wants_.push_back(std::move(want));
    }
    if (ValueEquals(ctx.graph->RelProperty(r, props[i].first), wants_[i]) !=
        Tri::kTrue) {
      return false;
    }
  }
  return true;
}

// ---- BatchCursor ------------------------------------------------------------

Result<const ValueList*> BatchCursor::Current(Operator* child,
                                              size_t capacity) {
  while (!done_ && pos_ >= batch_.size()) {
    if (batch_.capacity() != capacity) batch_ = RowBatch(capacity);
    GQL_ASSIGN_OR_RETURN(bool ok, child->NextBatch(&batch_));
    pos_ = 0;
    if (!ok) done_ = true;
  }
  if (done_) return static_cast<const ValueList*>(nullptr);
  return &batch_.row(pos_);
}

// ---- ArgumentOp -------------------------------------------------------------

Result<bool> ArgumentOp::NextBatchImpl(RowBatch* out) {
  if (single_row_ != nullptr) {
    if (done_single_) return false;
    done_single_ = true;
    out->Append(*single_row_);
    return true;
  }
  if (source_ == nullptr) return false;
  while (pos_ < source_->NumRows() && !out->full()) {
    out->Append(source_->rows()[pos_++]);
  }
  return !out->empty();
}

// ---- AllNodesScanOp ---------------------------------------------------------

AllNodesScanOp::AllNodesScanOp(OperatorPtr child, const ExecContext* ctx,
                               std::string var)
    : Operator(nullptr, {}), ctx_(ctx), var_(var) {
  child_ = std::move(child);
  schema_ = Extend(child_->schema(), {var});
}

size_t AllNodesScanOp::ScanDomainSize() const {
  return ctx_->graph->NumNodeSlots();
}

Status AllNodesScanOp::Open() {
  input_.Reset();
  node_pos_ = range_begin_;
  return child_->Open();
}

Result<bool> AllNodesScanOp::NextBatchImpl(RowBatch* out) {
  const PropertyGraph& g = *ctx_->graph;
  const size_t end = std::min(range_end_, g.NumNodeSlots());
  while (!out->full()) {
    GQL_ASSIGN_OR_RETURN(const ValueList* in,
                         input_.Current(child_.get(), out->capacity()));
    if (in == nullptr) break;
    while (node_pos_ < end && !out->full()) {
      NodeId n{node_pos_++};
      if (!g.IsNodeAlive(n)) continue;
      out->AppendFrom(*in).push_back(Value::Node(n));
    }
    if (node_pos_ >= end) {
      input_.Advance();
      node_pos_ = range_begin_;
    }
  }
  return !out->empty();
}

// ---- NodeByLabelScanOp ------------------------------------------------------

NodeByLabelScanOp::NodeByLabelScanOp(OperatorPtr child, const ExecContext* ctx,
                                     std::string var, std::string label)
    : Operator(nullptr, {}), ctx_(ctx), var_(var), label_(label) {
  child_ = std::move(child);
  schema_ = Extend(child_->schema(), {var});
}

size_t NodeByLabelScanOp::ScanDomainSize() const {
  return ctx_->graph->NodesWithLabel(label_).size();
}

Status NodeByLabelScanOp::Open() {
  input_.Reset();
  idx_pos_ = range_begin_;
  return child_->Open();
}

Result<bool> NodeByLabelScanOp::NextBatchImpl(RowBatch* out) {
  const auto& idx = ctx_->graph->NodesWithLabel(label_);
  const size_t end = std::min(range_end_, idx.size());
  while (!out->full()) {
    GQL_ASSIGN_OR_RETURN(const ValueList* in,
                         input_.Current(child_.get(), out->capacity()));
    if (in == nullptr) break;
    while (idx_pos_ < end && !out->full()) {
      out->AppendFrom(*in).push_back(Value::Node(idx[idx_pos_++]));
    }
    if (idx_pos_ >= end) {
      input_.Advance();
      idx_pos_ = range_begin_;
    }
  }
  return !out->empty();
}

// ---- ExpandOp ---------------------------------------------------------------

ExpandOp::ExpandOp(OperatorPtr child, const ExecContext* ctx, ExpandSpec spec)
    : Operator(nullptr, {}), ctx_(ctx), spec_(std::move(spec)) {
  child_ = std::move(child);
  schema_ = child_->schema();
  if (!spec_.rel_var.empty()) schema_.push_back(spec_.rel_var);
  if (spec_.to_col < 0) schema_.push_back(spec_.to_var);
}

Status ExpandOp::Open() {
  input_.Reset();
  adj_pos_ = 0;
  props_.Reset();
  ResolveTypeIds(*ctx_->graph, &spec_);
  return child_->Open();
}

Result<bool> ExpandOp::RelMatches(RelId r, const ValueList& row,
                                  NodeId* next) {
  const PropertyGraph& g = *ctx_->graph;
  if (!TypeOk(g, spec_, r)) return false;
  if (ctx_->match.morphism != Morphism::kHomomorphism &&
      RelAlreadyUsed(r, row, spec_.uniqueness_cols)) {
    return false;
  }
  GQL_ASSIGN_OR_RETURN(bool props_ok,
                       props_.Ok(*ctx_, spec_, child_->schema(), row, r));
  if (!props_ok) return false;
  if (spec_.bound_rel_col >= 0) {
    const Value& bound = row[spec_.bound_rel_col];
    if (!bound.is_relationship() || !(bound.AsRelationship() == r)) {
      return false;
    }
  }
  NodeId from = row[spec_.from_col].AsNode();
  NodeId src = g.Source(r);
  NodeId tgt = g.Target(r);
  switch (spec_.direction) {
    case ast::Direction::kRight:
      if (src != from) return false;
      *next = tgt;
      break;
    case ast::Direction::kLeft:
      if (tgt != from) return false;
      *next = src;
      break;
    case ast::Direction::kBoth:
      *next = (src == from) ? tgt : src;
      break;
  }
  if (spec_.to_col >= 0) {
    const Value& want = row[spec_.to_col];
    if (!want.is_node() || !(want.AsNode() == *next)) return false;
  }
  return true;
}

Result<bool> ExpandOp::NextBatchImpl(RowBatch* out) {
  const PropertyGraph& g = *ctx_->graph;
  while (!out->full()) {
    GQL_ASSIGN_OR_RETURN(const ValueList* in,
                         input_.Current(child_.get(), out->capacity()));
    if (in == nullptr) break;
    const Value& from_v = (*in)[spec_.from_col];
    if (!from_v.is_node() || !g.IsNodeAlive(from_v.AsNode())) {
      input_.Advance();
      adj_pos_ = 0;
      props_.Reset();
      continue;
    }
    NodeId from = from_v.AsNode();
    const auto& out_rels = g.OutRels(from);
    const auto& in_rels = g.InRels(from);
    // Conceptual adjacency sequence: out rels then (when direction allows)
    // in rels. Self-loops are skipped in the `in` half so undirected
    // traversal sees them once.
    size_t total = out_rels.size() + in_rels.size();
    while (adj_pos_ < total && !out->full()) {
      size_t i = adj_pos_++;
      RelId r;
      bool from_out = i < out_rels.size();
      if (from_out) {
        r = out_rels[i];
        if (spec_.direction == ast::Direction::kLeft &&
            g.Source(r) == g.Target(r)) {
          // A self-loop also appears in `in`; let the `in` half handle it
          // for left-pointing patterns.
          continue;
        }
        if (spec_.direction == ast::Direction::kLeft &&
            g.Target(r) != from) {
          continue;
        }
      } else {
        r = in_rels[i - out_rels.size()];
        if (spec_.direction != ast::Direction::kLeft &&
            g.Source(r) == g.Target(r)) {
          continue;  // self-loop handled in the `out` half
        }
        if (spec_.direction == ast::Direction::kRight) continue;
      }
      NodeId next;
      GQL_ASSIGN_OR_RETURN(bool rel_ok, RelMatches(r, *in, &next));
      if (!rel_ok) continue;
      ValueList& row = out->AppendFrom(*in);
      if (!spec_.rel_var.empty()) row.push_back(Value::Relationship(r));
      if (spec_.to_col < 0) row.push_back(Value::Node(next));
    }
    if (adj_pos_ >= total) {
      input_.Advance();
      adj_pos_ = 0;
      props_.Reset();
    }
  }
  return !out->empty();
}

std::string ExpandOp::Describe() const {
  std::string arrow = spec_.direction == ast::Direction::kRight   ? "->"
                      : spec_.direction == ast::Direction::kLeft ? "<-"
                                                                  : "--";
  std::string out = spec_.to_col >= 0 ? "ExpandInto(" : "Expand(";
  out += schema_[spec_.from_col] + arrow;
  for (size_t i = 0; i < spec_.types.size(); ++i) {
    out += (i ? "|" : ":") + spec_.types[i];
  }
  out += arrow;
  out += spec_.to_col >= 0 ? schema_[spec_.to_col] : spec_.to_var;
  return out + ")";
}

// ---- HashJoinExpandOp -------------------------------------------------------

HashJoinExpandOp::HashJoinExpandOp(OperatorPtr child, const ExecContext* ctx,
                                   ExpandSpec spec)
    : Operator(nullptr, {}), ctx_(ctx), spec_(std::move(spec)) {
  child_ = std::move(child);
  schema_ = child_->schema();
  if (!spec_.rel_var.empty()) schema_.push_back(spec_.rel_var);
  if (spec_.to_col < 0) schema_.push_back(spec_.to_var);
}

Status HashJoinExpandOp::Open() {
  input_.Reset();
  probing_ = false;
  ResolveTypeIds(*ctx_->graph, &spec_);
  if (!built_) {
    // Build side: scan the entire relationship store (the indirection the
    // adjacency-based Expand avoids).
    const PropertyGraph& g = *ctx_->graph;
    for (size_t i = 0; i < g.NumRelSlots(); ++i) {
      RelId r{i};
      if (!g.IsRelAlive(r)) continue;
      if (!TypeOk(g, spec_, r)) continue;
      switch (spec_.direction) {
        case ast::Direction::kRight:
          index_.emplace(g.Source(r).id, r.id);
          break;
        case ast::Direction::kLeft:
          index_.emplace(g.Target(r).id, r.id);
          break;
        case ast::Direction::kBoth:
          index_.emplace(g.Source(r).id, r.id);
          if (!(g.Source(r) == g.Target(r))) {
            index_.emplace(g.Target(r).id, r.id);
          }
          break;
      }
    }
    built_ = true;
  }
  range_ = {index_.end(), index_.end()};
  return child_->Open();
}

Result<bool> HashJoinExpandOp::NextBatchImpl(RowBatch* out) {
  const PropertyGraph& g = *ctx_->graph;
  while (!out->full()) {
    GQL_ASSIGN_OR_RETURN(const ValueList* in,
                         input_.Current(child_.get(), out->capacity()));
    if (in == nullptr) break;
    if (!probing_) {
      const Value& from_v = (*in)[spec_.from_col];
      if (!from_v.is_node()) {
        input_.Advance();
        continue;
      }
      range_ = index_.equal_range(from_v.AsNode().id);
      probing_ = true;
      props_.Reset();
    }
    while (range_.first != range_.second && !out->full()) {
      RelId r{range_.first->second};
      ++range_.first;
      if (ctx_->match.morphism != Morphism::kHomomorphism &&
          RelAlreadyUsed(r, *in, spec_.uniqueness_cols)) {
        continue;
      }
      if (spec_.bound_rel_col >= 0) {
        const Value& bound = (*in)[spec_.bound_rel_col];
        if (!bound.is_relationship() || !(bound.AsRelationship() == r)) {
          continue;
        }
      }
      GQL_ASSIGN_OR_RETURN(
          bool props_ok,
          props_.Ok(*ctx_, spec_, child_->schema(), *in, r));
      if (!props_ok) continue;
      NodeId from = (*in)[spec_.from_col].AsNode();
      NodeId next = g.OtherEnd(r, from);
      if (spec_.direction == ast::Direction::kRight) next = g.Target(r);
      if (spec_.direction == ast::Direction::kLeft) next = g.Source(r);
      if (spec_.to_col >= 0) {
        const Value& want = (*in)[spec_.to_col];
        if (!want.is_node() || !(want.AsNode() == next)) continue;
      }
      ValueList& row = out->AppendFrom(*in);
      if (!spec_.rel_var.empty()) row.push_back(Value::Relationship(r));
      if (spec_.to_col < 0) row.push_back(Value::Node(next));
    }
    if (range_.first == range_.second) {
      probing_ = false;
      input_.Advance();
    }
  }
  return !out->empty();
}

std::string HashJoinExpandOp::Describe() const {
  return "HashJoinExpand(" + schema_[spec_.from_col] + "," +
         (spec_.to_col >= 0 ? schema_[spec_.to_col] : spec_.to_var) + ")";
}

// ---- VarLengthExpandOp ------------------------------------------------------

VarLengthExpandOp::VarLengthExpandOp(OperatorPtr child, const ExecContext* ctx,
                                     ExpandSpec spec, int64_t min, int64_t max)
    : Operator(nullptr, {}), ctx_(ctx), spec_(std::move(spec)), min_(min),
      max_(max) {
  child_ = std::move(child);
  schema_ = child_->schema();
  if (!spec_.rel_var.empty()) schema_.push_back(spec_.rel_var);
  if (spec_.to_col < 0) schema_.push_back(spec_.to_var);
}

Status VarLengthExpandOp::Open() {
  input_.Clear();
  pending_size_ = 0;
  pos_in_pending_ = 0;
  ResolveTypeIds(*ctx_->graph, &spec_);
  return child_->Open();
}

ValueList& VarLengthExpandOp::NextPendingSlot() {
  if (pending_size_ < pending_.size()) {
    ValueList& slot = pending_[pending_size_++];
    slot.clear();
    return slot;
  }
  pending_.emplace_back();
  ++pending_size_;
  return pending_.back();
}

Status VarLengthExpandOp::ExpandBatch() {
  const PropertyGraph& g = *ctx_->graph;
  pending_size_ = 0;
  const std::vector<std::string>& in_schema = child_->schema();
  size_t n = input_.size();

  // Per-row lazily-hoisted relationship property constraint values.
  std::vector<LazyPropWants> wants(spec_.rel_props != nullptr ? n : 0);

  auto emit = [&](uint32_t row_idx, NodeId target, const RelId* path,
                  size_t path_len) {
    const ValueList& in = input_.row(row_idx);
    if (spec_.to_col >= 0) {
      const Value& want = in[spec_.to_col];
      if (!want.is_node() || !(want.AsNode() == target)) return;
    }
    ValueList& row = NextPendingSlot();
    row.reserve(in.size() + 2);
    row.assign(in.begin(), in.end());
    if (!spec_.rel_var.empty()) {
      ValueList list;
      list.reserve(path_len);
      for (size_t k = 0; k < path_len; ++k) {
        list.push_back(Value::Relationship(path[k]));
      }
      row.push_back(Value::MakeList(std::move(list)));
    }
    if (spec_.to_col < 0) row.push_back(Value::Node(target));
  };

  // One frontier entry per in-flight path. Each level's paths live in
  // one flat pooled arena with stride = level length (level-synchronous
  // BFS keeps them uniform): extending appends prefix + new relationship
  // to the next level's arena — amortized chunk growth instead of a
  // vector allocation per extension — and the trail-uniqueness scan
  // stays a linear pass over contiguous memory (parent-linked path
  // sharing measures slower at depth: pointer-chasing latency on every
  // uniqueness probe).
  frontier_.clear();
  cur_paths_.clear();
  for (uint32_t i = 0; i < n; ++i) {
    const ValueList& in = input_.row(i);
    const Value& from_v = in[spec_.from_col];
    if (!from_v.is_node() || !g.IsNodeAlive(from_v.AsNode())) continue;
    NodeId from = from_v.AsNode();
    if (min_ == 0) emit(i, from, nullptr, 0);
    if (max_ >= 1) frontier_.push_back({i, from});
  }

  // Level-synchronous BFS over the whole morsel: every depth in
  // [max(1,min), max] produces its own rows (rigid refinements), and the
  // relationship-isomorphism rule (no rel reused within one path, nor
  // against the clause's uniqueness columns) keeps enumeration finite.
  for (int64_t depth = 1; depth <= max_ && !frontier_.empty(); ++depth) {
    next_frontier_.clear();
    next_paths_.clear();
    // Entry e's path in this level's arena (stride = depth - 1).
    const size_t stride = static_cast<size_t>(depth - 1);
    for (size_t ei = 0; ei < frontier_.size(); ++ei) {
      const FrontierEntry& e = frontier_[ei];
      const RelId* path = cur_paths_.data() + ei * stride;
      const ValueList& in = input_.row(e.row);
      auto consider = [&](RelId r, bool from_out) -> Status {
        if (!TypeOk(g, spec_, r)) return Status::OK();
        // Within-path uniqueness plus clause-level uniqueness columns.
        if (ctx_->match.morphism != Morphism::kHomomorphism) {
          for (size_t k = 0; k < stride; ++k) {
            if (path[k] == r) return Status::OK();
          }
          if (RelAlreadyUsed(r, in, spec_.uniqueness_cols)) {
            return Status::OK();
          }
        }
        if (spec_.rel_props != nullptr) {
          GQL_ASSIGN_OR_RETURN(
              bool props_ok,
              wants[e.row].Ok(*ctx_, spec_, in_schema, in, r));
          if (!props_ok) return Status::OK();
        }
        NodeId src = g.Source(r);
        NodeId tgt = g.Target(r);
        NodeId next;
        switch (spec_.direction) {
          case ast::Direction::kRight:
            if (src != e.node) return Status::OK();
            next = tgt;
            break;
          case ast::Direction::kLeft:
            if (tgt != e.node) return Status::OK();
            next = src;
            break;
          case ast::Direction::kBoth:
            if (src == tgt && !from_out) return Status::OK();  // once
            next = (src == e.node) ? tgt : src;
            break;
        }
        // Materialize the extension at the next arena's tail; keep it
        // only if it seeds the next level.
        size_t base = next_paths_.size();
        if (stride > 0) {  // depth 1 has a null arena; 0-len insert is UB
          next_paths_.insert(next_paths_.end(), path, path + stride);
        }
        next_paths_.push_back(r);
        if (depth >= min_) {
          emit(e.row, next, next_paths_.data() + base, stride + 1);
        }
        if (depth < max_) {
          next_frontier_.push_back({e.row, next});
        } else {
          next_paths_.resize(base);
        }
        return Status::OK();
      };
      if (spec_.direction != ast::Direction::kLeft) {
        for (RelId r : g.OutRels(e.node)) {
          GQL_RETURN_IF_ERROR(consider(r, true));
        }
      }
      if (spec_.direction != ast::Direction::kRight) {
        for (RelId r : g.InRels(e.node)) {
          GQL_RETURN_IF_ERROR(consider(r, false));
        }
      }
    }
    frontier_.swap(next_frontier_);
    cur_paths_.swap(next_paths_);
  }
  return Status::OK();
}

Result<bool> VarLengthExpandOp::NextBatchImpl(RowBatch* out) {
  while (!out->full()) {
    if (pos_in_pending_ < pending_size_) {
      while (pos_in_pending_ < pending_size_ && !out->full()) {
        // Copy (don't move): both the pending slot and the out slot keep
        // their allocations for the next refill; the elements themselves
        // are O(1) to copy.
        out->AppendFrom(pending_[pos_in_pending_++]);
      }
      continue;
    }
    if (input_.capacity() != out->capacity()) input_ = RowBatch(out->capacity());
    GQL_ASSIGN_OR_RETURN(bool ok, child_->NextBatch(&input_));
    if (!ok) break;
    GQL_RETURN_IF_ERROR(ExpandBatch());
    pos_in_pending_ = 0;
  }
  return !out->empty();
}

std::string VarLengthExpandOp::Describe() const {
  std::string out = "VarLengthExpand(" + schema_[spec_.from_col] + "-";
  for (size_t i = 0; i < spec_.types.size(); ++i) {
    out += (i ? "|" : ":") + spec_.types[i];
  }
  out += "*" + std::to_string(min_) + ".." + std::to_string(max_) + "->";
  out += spec_.to_col >= 0 ? schema_[spec_.to_col] : spec_.to_var;
  return out + ")";
}

// ---- FilterOp ---------------------------------------------------------------

FilterOp::FilterOp(OperatorPtr child, const ExecContext* ctx,
                   const ast::Expr* pred)
    : Operator(nullptr, {}), ctx_(ctx), pred_(pred) {
  child_ = std::move(child);
  schema_ = child_->schema();
}

Status FilterOp::Open() { return child_->Open(); }

Result<bool> FilterOp::NextBatchImpl(RowBatch* out) {
  while (true) {
    GQL_ASSIGN_OR_RETURN(bool ok, child_->NextBatch(out));
    if (!ok) return false;
    keep_.clear();
    for (uint32_t i = 0; i < out->size(); ++i) {
      SchemaRowEnvironment env(schema_, out->row(i));
      GQL_ASSIGN_OR_RETURN(Tri keep,
                           EvaluatePredicate(*pred_, env, ctx_->eval));
      if (keep == Tri::kTrue) keep_.push_back(i);
    }
    if (keep_.empty()) continue;  // whole morsel filtered out; pull more
    if (keep_.size() < out->size()) out->Select(keep_);
    return true;
  }
}

std::string FilterOp::Describe() const {
  return "Filter";  // predicate text available via UnparseExpr if needed
}

// ---- ApplyOp ----------------------------------------------------------------

ApplyOp::ApplyOp(OperatorPtr child, OperatorPtr inner, ArgumentOp* argument,
                 bool optional, std::vector<std::string> schema)
    : Operator(nullptr, std::move(schema)),
      inner_(std::move(inner)),
      argument_(argument),
      optional_(optional) {
  child_ = std::move(child);
}

Status ApplyOp::Open() {
  input_.Reset();
  inner_open_ = false;
  return child_->Open();
}

Result<bool> ApplyOp::NextBatchImpl(RowBatch* out) {
  // Streams the inner pipeline's morsels straight through (no
  // re-buffering): each return carries one inner morsel of the current
  // driving row. Morsels from an Apply may therefore run smaller than
  // the configured capacity — the batch contract only requires >= 1 row.
  while (true) {
    GQL_ASSIGN_OR_RETURN(const ValueList* in,
                         input_.Current(child_.get(), out->capacity()));
    if (in == nullptr) return false;
    if (!inner_open_) {
      // One-row correlation: the Argument leaf replays this driving row.
      argument_->BindRow(in);
      GQL_RETURN_IF_ERROR(inner_->Open());
      inner_open_ = true;
      inner_matched_ = false;
    }
    GQL_ASSIGN_OR_RETURN(bool ok, inner_->NextBatch(out));
    if (ok) {
      inner_matched_ = true;
      return true;
    }
    inner_open_ = false;
    input_.Advance();
    if (optional_ && !inner_matched_) {
      // OPTIONAL MATCH null-padding (Figure 7's rule).
      out->AppendFrom(*in).resize(schema_.size(), Value::Null());
      return true;
    }
  }
}

// ---- UnwindOp ---------------------------------------------------------------

UnwindOp::UnwindOp(OperatorPtr child, const ExecContext* ctx,
                   const ast::Expr* expr, std::string var)
    : Operator(nullptr, {}), ctx_(ctx), expr_(expr), var_(var) {
  child_ = std::move(child);
  schema_ = Extend(child_->schema(), {var});
}

Status UnwindOp::Open() {
  input_.Reset();
  row_ready_ = false;
  return child_->Open();
}

Result<bool> UnwindOp::NextBatchImpl(RowBatch* out) {
  while (!out->full()) {
    GQL_ASSIGN_OR_RETURN(const ValueList* in,
                         input_.Current(child_.get(), out->capacity()));
    if (in == nullptr) break;
    if (!row_ready_) {
      SchemaRowEnvironment env(child_->schema(), *in);
      GQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*expr_, env, ctx_->eval));
      item_pos_ = 0;
      single_pending_ = false;
      if (v.is_list()) {
        items_ = std::move(v);  // share the payload; no element copies
      } else {
        static const Value kSharedEmptyList = Value::EmptyList();
        items_ = kSharedEmptyList;  // refcount bump, no allocation
        single_pending_ = true;
        single_value_ = std::move(v);
      }
      row_ready_ = true;
    }
    if (single_pending_) {
      single_pending_ = false;
      out->AppendFrom(*in).push_back(single_value_);
    }
    const ValueList& items = items_.AsList();
    while (item_pos_ < items.size() && !out->full()) {
      out->AppendFrom(*in).push_back(items[item_pos_++]);
    }
    if (!single_pending_ && item_pos_ >= items.size()) {
      input_.Advance();
      row_ready_ = false;
    }
  }
  return !out->empty();
}

// ---- ProjectionOp -----------------------------------------------------------

ProjectionOp::ProjectionOp(OperatorPtr child, const ExecContext* ctx,
                           const ast::ProjectionBody* body,
                           const ast::Expr* where,
                           std::vector<std::string> schema)
    : Operator(nullptr, std::move(schema)), ctx_(ctx), body_(body),
      where_(where) {
  child_ = std::move(child);
}

Result<Table> ProjectionOp::FilterWhere(Table result) const {
  if (where_ == nullptr) return result;
  Table filtered(result.fields());
  for (auto& r : result.mutable_rows()) {
    RowEnvironment env(result, r);
    GQL_ASSIGN_OR_RETURN(Tri keep,
                         EvaluatePredicate(*where_, env, ctx_->eval));
    if (keep == Tri::kTrue) filtered.AddRow(std::move(r));
  }
  return filtered;
}

namespace {

/// `*` must not expose planner-hidden columns ('#...'): strip them before
/// delegating to the shared projection machinery.
Table StripHiddenColumns(Table input) {
  bool has_hidden = false;
  for (const auto& f : input.fields()) {
    if (!f.empty() && f[0] == '#') has_hidden = true;
  }
  if (!has_hidden) return input;
  std::vector<std::string> keep_fields;
  std::vector<size_t> keep_idx;
  for (size_t i = 0; i < input.fields().size(); ++i) {
    if (input.fields()[i].empty() || input.fields()[i][0] != '#') {
      keep_fields.push_back(input.fields()[i]);
      keep_idx.push_back(i);
    }
  }
  Table stripped(keep_fields);
  for (auto& r : input.mutable_rows()) {
    ValueList row;
    row.reserve(keep_idx.size());
    for (size_t i : keep_idx) row.push_back(std::move(r[i]));
    stripped.AddRow(std::move(row));
  }
  return stripped;
}

}  // namespace

Result<Table> ProjectionOp::ProjectTable(Table input) const {
  if (body_->star) input = StripHiddenColumns(std::move(input));
  GQL_ASSIGN_OR_RETURN(Table result,
                       EvaluateProjection(*body_, input, ctx_->eval));
  return FilterWhere(std::move(result));
}

Result<Table> ProjectionOp::ProjectChunk(Table input,
                                         std::vector<ValueList>* keys) const {
  if (body_->star) input = StripHiddenColumns(std::move(input));
  return ProjectRows(*body_, input, ctx_->eval, keys);
}

void ProjectionOp::PreloadResult(Table result) {
  result_ = std::move(result);
  has_preloaded_ = true;
}

Status ProjectionOp::Open() {
  if (has_preloaded_) {
    // The parallel merge stages already produced this breaker's output
    // (projection, tail and WHERE included); stream it without touching
    // the child — the child's pipelines already ran, range by range, on
    // the workers. One-shot: a later Open() recomputes normally.
    has_preloaded_ = false;
    pos_ = 0;
    return Status::OK();
  }
  GQL_RETURN_IF_ERROR(child_->Open());
  if (ProjectionAggregates(*body_)) {
    // Aggregating projection: stream the child's morsels straight into
    // the aggregation state — the pre-aggregation table (often the whole
    // join) never materializes. AggregationState::Plan skips planner-
    // hidden '#' columns for `*`, so no stripping pass is needed here.
    GQL_ASSIGN_OR_RETURN(AggregationState state,
                         AggregationState::Plan(*body_, child_->schema()));
    RowBatch batch(ctx_->batch_size);
    while (true) {
      GQL_ASSIGN_OR_RETURN(bool ok, child_->NextBatch(&batch));
      if (!ok) break;
      for (size_t i = 0; i < batch.size(); ++i) {
        GQL_RETURN_IF_ERROR(state.AccumulateRow(batch.row(i), ctx_->eval));
      }
    }
    GQL_ASSIGN_OR_RETURN(Table grouped, state.Finish(ctx_->eval));
    GQL_ASSIGN_OR_RETURN(
        grouped, ApplyProjectionTail(*body_, std::move(grouped), nullptr,
                                     nullptr, ctx_->eval));
    GQL_ASSIGN_OR_RETURN(result_, FilterWhere(std::move(grouped)));
  } else {
    GQL_ASSIGN_OR_RETURN(Table input,
                         DrainPlan(child_.get(), ctx_->batch_size));
    GQL_ASSIGN_OR_RETURN(result_, ProjectTable(std::move(input)));
  }
  pos_ = 0;
  return Status::OK();
}

Result<bool> ProjectionOp::NextBatchImpl(RowBatch* out) {
  // Streams the materialized result; rows move out (Open rebuilds).
  while (pos_ < result_.NumRows() && !out->full()) {
    out->Append(std::move(result_.mutable_rows()[pos_++]));
  }
  return !out->empty();
}

std::string ProjectionOp::Describe() const {
  std::string out = "Projection(";
  bool agg = false;
  for (const auto& item : body_->items) {
    if (ContainsAggregate(*item.expr)) agg = true;
  }
  if (agg) out = "EagerAggregation(";
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (i) out += ", ";
    out += schema_[i];
  }
  if (body_->distinct) out += " DISTINCT";
  if (!body_->order_by.empty()) out += " ORDER BY";
  if (body_->skip) out += " SKIP";
  if (body_->limit) out += " LIMIT";
  return out + ")";
}

// ---- UnionOp ----------------------------------------------------------------

UnionOp::UnionOp(std::vector<OperatorPtr> parts, bool all,
                 std::vector<std::string> schema, size_t batch_size)
    : Operator(nullptr, std::move(schema)), parts_(std::move(parts)),
      all_(all), batch_size_(batch_size) {}

Status UnionOp::Open() {
  materialized_ = Table(schema_);
  for (auto& p : parts_) {
    GQL_RETURN_IF_ERROR(p->Open());
    GQL_ASSIGN_OR_RETURN(Table t, DrainPlan(p.get(), batch_size_));
    for (auto& r : t.mutable_rows()) {
      materialized_.AddRow(std::move(r));  // NextBatch moves them out again
    }
  }
  if (!all_) materialized_ = materialized_.Deduplicated();
  pos_ = 0;
  return Status::OK();
}

Result<bool> UnionOp::NextBatchImpl(RowBatch* out) {
  while (pos_ < materialized_.NumRows() && !out->full()) {
    out->Append(std::move(materialized_.mutable_rows()[pos_++]));
  }
  return !out->empty();
}

// ---- MatcherOp --------------------------------------------------------------

MatcherOp::MatcherOp(OperatorPtr child, const ExecContext* ctx,
                     const ast::Pattern* pattern,
                     std::vector<std::string> new_cols)
    : Operator(nullptr, {}), ctx_(ctx), pattern_(pattern),
      new_cols_(std::move(new_cols)) {
  child_ = std::move(child);
  schema_ = child_->schema();
  for (const auto& c : new_cols_) schema_.push_back(c);
}

Status MatcherOp::Open() {
  input_.Reset();
  row_ready_ = false;
  buffered_.clear();
  pos_ = 0;
  return child_->Open();
}

Result<bool> MatcherOp::NextBatchImpl(RowBatch* out) {
  while (!out->full()) {
    GQL_ASSIGN_OR_RETURN(const ValueList* in,
                         input_.Current(child_.get(), out->capacity()));
    if (in == nullptr) break;
    if (!row_ready_) {
      buffered_.clear();
      pos_ = 0;
      SchemaRowEnvironment env(child_->schema(), *in);
      Status st = MatchPattern(*pattern_, *ctx_->graph, env, ctx_->eval,
                               ctx_->match, new_cols_,
                               [&](const BindingRow& b) -> Result<bool> {
                                 ValueList row = *in;
                                 for (const Value& v : b) row.push_back(v);
                                 buffered_.push_back(std::move(row));
                                 return true;
                               });
      GQL_RETURN_IF_ERROR(st);
      row_ready_ = true;
    }
    while (pos_ < buffered_.size() && !out->full()) {
      out->Append(std::move(buffered_[pos_++]));
    }
    if (pos_ >= buffered_.size()) {
      input_.Advance();
      row_ready_ = false;
    }
  }
  return !out->empty();
}

// ---- Helpers ----------------------------------------------------------------

void Operator::AbsorbCounters(const Operator& other) {
  rows_produced_ += other.rows_produced_;
  batches_produced_ += other.batches_produced_;
  std::vector<const Operator*> mine = children();
  std::vector<const Operator*> theirs = other.children();
  for (size_t i = 0; i < mine.size() && i < theirs.size(); ++i) {
    // children() exposes const views for EXPLAIN; the counters being
    // folded belong to this (mutable) tree.
    const_cast<Operator*>(mine[i])->AbsorbCounters(*theirs[i]);
  }
}

Result<Table> DrainPlan(Operator* root, size_t batch_size,
                        BatchStats* stats) {
  Table out(root->schema());
  RowBatch batch(batch_size);
  while (true) {
    GQL_ASSIGN_OR_RETURN(bool ok, root->NextBatch(&batch));
    if (!ok) break;
    if (stats != nullptr) {
      ++stats->batches;
      stats->rows += static_cast<int64_t>(batch.size());
    }
    out.AddBatch(&batch);
  }
  return out;
}

namespace {

void ExplainRec(const Operator& op, int depth, bool with_rows,
                std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += "+ " + op.Describe();
  if (op.est_rows() >= 0) {
    // %.1f below 10 keeps sub-row selectivities visible; whole numbers
    // above.
    double est = op.est_rows();
    char buf[32];
    if (est < 10) {
      std::snprintf(buf, sizeof(buf), "%.1f", est);
    } else {
      std::snprintf(buf, sizeof(buf), "%.0f", est);
    }
    *out += "  (est. rows: " + std::string(buf) + ")";
  }
  if (with_rows) {
    *out += "  (rows: " + std::to_string(op.rows_produced()) +
            ", batches: " + std::to_string(op.batches_produced()) + ")";
  }
  *out += "\n";
  for (const Operator* c : op.children()) {
    if (c != nullptr) ExplainRec(*c, depth + 1, with_rows, out);
  }
}

}  // namespace

std::string ExplainPlan(const Operator& root) {
  std::string out;
  ExplainRec(root, 0, /*with_rows=*/false, &out);
  return out;
}

std::string ProfilePlan(const Operator& root) {
  std::string out;
  ExplainRec(root, 0, /*with_rows=*/true, &out);
  return out;
}

}  // namespace gqlite
