#include "src/plan/operators.h"

#include "src/frontend/analyzer.h"
#include "src/value/value_compare.h"

namespace gqlite {

namespace {

/// Environment over an operator row (schema + values).
class SchemaEnvironment : public Environment {
 public:
  SchemaEnvironment(const std::vector<std::string>& schema,
                    const ValueList& row)
      : schema_(schema), row_(row) {}
  std::optional<Value> Lookup(const std::string& name) const override {
    for (size_t i = 0; i < schema_.size() && i < row_.size(); ++i) {
      if (schema_[i] == name) return row_[i];
    }
    return std::nullopt;
  }

 private:
  const std::vector<std::string>& schema_;
  const ValueList& row_;
};

std::vector<std::string> Extend(const std::vector<std::string>& base,
                                std::initializer_list<std::string> extra) {
  std::vector<std::string> out = base;
  for (const auto& e : extra) {
    if (!e.empty()) out.push_back(e);
  }
  return out;
}

/// True if relationship `r` already occurs in one of the uniqueness
/// columns (single relationships or relationship lists) of `row` — the
/// relationship-isomorphism check.
bool RelAlreadyUsed(RelId r, const ValueList& row,
                    const std::vector<int>& cols) {
  for (int c : cols) {
    const Value& v = row[c];
    if (v.is_relationship() && v.AsRelationship() == r) return true;
    if (v.is_list()) {
      for (const Value& e : v.AsList()) {
        if (e.is_relationship() && e.AsRelationship() == r) return true;
      }
    }
  }
  return false;
}

bool TypeOk(const PropertyGraph& g, const std::vector<std::string>& types,
            RelId r) {
  if (types.empty()) return true;
  const std::string& t = g.RelType(r);
  for (const auto& want : types) {
    if (want == t) return true;
  }
  return false;
}

/// Fused relationship property constraints: evaluated against the driving
/// row (pattern property expressions reference outer bindings, not the
/// candidate relationship).
Result<bool> RelPropsOk(const ExecContext& ctx, const ExpandSpec& spec,
                        RelId r, const std::vector<std::string>& schema,
                        const ValueList& row) {
  if (spec.rel_props == nullptr) return true;
  SchemaEnvironment env(schema, row);
  for (const auto& [key, expr] : *spec.rel_props) {
    GQL_ASSIGN_OR_RETURN(Value want, EvaluateExpr(*expr, env, ctx.eval));
    if (ValueEquals(ctx.graph->RelProperty(r, key), want) != Tri::kTrue) {
      return false;
    }
  }
  return true;
}

}  // namespace

// ---- ArgumentOp -------------------------------------------------------------

Result<bool> ArgumentOp::Next(ValueList* row) {
  if (single_row_ != nullptr) {
    if (done_single_) return false;
    done_single_ = true;
    *row = *single_row_;
    ++rows_produced_;
    return true;
  }
  if (source_ == nullptr || pos_ >= source_->NumRows()) return false;
  *row = source_->rows()[pos_++];
  ++rows_produced_;
  return true;
}

// ---- AllNodesScanOp ---------------------------------------------------------

AllNodesScanOp::AllNodesScanOp(OperatorPtr child, const ExecContext* ctx,
                               std::string var)
    : Operator(nullptr, {}), ctx_(ctx), var_(var) {
  child_ = std::move(child);
  schema_ = Extend(child_->schema(), {var});
}

Status AllNodesScanOp::Open() {
  have_row_ = false;
  node_pos_ = 0;
  return child_->Open();
}

Result<bool> AllNodesScanOp::Next(ValueList* row) {
  const PropertyGraph& g = *ctx_->graph;
  while (true) {
    if (!have_row_) {
      GQL_ASSIGN_OR_RETURN(bool ok, child_->Next(&current_));
      if (!ok) return false;
      have_row_ = true;
      node_pos_ = 0;
    }
    while (node_pos_ < g.NumNodeSlots()) {
      NodeId n{node_pos_++};
      if (!g.IsNodeAlive(n)) continue;
      *row = current_;
      row->push_back(Value::Node(n));
      ++rows_produced_;
      return true;
    }
    have_row_ = false;
  }
}

// ---- NodeByLabelScanOp ------------------------------------------------------

NodeByLabelScanOp::NodeByLabelScanOp(OperatorPtr child, const ExecContext* ctx,
                                     std::string var, std::string label)
    : Operator(nullptr, {}), ctx_(ctx), var_(var), label_(label) {
  child_ = std::move(child);
  schema_ = Extend(child_->schema(), {var});
}

Status NodeByLabelScanOp::Open() {
  have_row_ = false;
  idx_pos_ = 0;
  return child_->Open();
}

Result<bool> NodeByLabelScanOp::Next(ValueList* row) {
  const auto& idx = ctx_->graph->NodesWithLabel(label_);
  while (true) {
    if (!have_row_) {
      GQL_ASSIGN_OR_RETURN(bool ok, child_->Next(&current_));
      if (!ok) return false;
      have_row_ = true;
      idx_pos_ = 0;
    }
    if (idx_pos_ < idx.size()) {
      *row = current_;
      row->push_back(Value::Node(idx[idx_pos_++]));
      ++rows_produced_;
      return true;
    }
    have_row_ = false;
  }
}

// ---- ExpandOp ---------------------------------------------------------------

ExpandOp::ExpandOp(OperatorPtr child, const ExecContext* ctx, ExpandSpec spec)
    : Operator(nullptr, {}), ctx_(ctx), spec_(std::move(spec)) {
  child_ = std::move(child);
  schema_ = child_->schema();
  if (!spec_.rel_var.empty()) schema_.push_back(spec_.rel_var);
  if (spec_.to_col < 0) schema_.push_back(spec_.to_var);
}

Status ExpandOp::Open() {
  have_row_ = false;
  adj_pos_ = 0;
  return child_->Open();
}

Result<bool> ExpandOp::RelMatches(RelId r, const ValueList& row,
                                  NodeId* next) const {
  const PropertyGraph& g = *ctx_->graph;
  if (!TypeOk(g, spec_.types, r)) return false;
  if (ctx_->match.morphism != Morphism::kHomomorphism &&
      RelAlreadyUsed(r, row, spec_.uniqueness_cols)) {
    return false;
  }
  GQL_ASSIGN_OR_RETURN(bool props_ok,
                       RelPropsOk(*ctx_, spec_, r, child_->schema(), row));
  if (!props_ok) return false;
  if (spec_.bound_rel_col >= 0) {
    const Value& bound = row[spec_.bound_rel_col];
    if (!bound.is_relationship() || !(bound.AsRelationship() == r)) {
      return false;
    }
  }
  NodeId from = row[spec_.from_col].AsNode();
  NodeId src = g.Source(r);
  NodeId tgt = g.Target(r);
  switch (spec_.direction) {
    case ast::Direction::kRight:
      if (src != from) return false;
      *next = tgt;
      break;
    case ast::Direction::kLeft:
      if (tgt != from) return false;
      *next = src;
      break;
    case ast::Direction::kBoth:
      *next = (src == from) ? tgt : src;
      break;
  }
  if (spec_.to_col >= 0) {
    const Value& want = row[spec_.to_col];
    if (!want.is_node() || !(want.AsNode() == *next)) return false;
  }
  return true;
}

Result<bool> ExpandOp::Next(ValueList* row) {
  const PropertyGraph& g = *ctx_->graph;
  while (true) {
    if (!have_row_) {
      GQL_ASSIGN_OR_RETURN(bool ok, child_->Next(&current_));
      if (!ok) return false;
      have_row_ = true;
      adj_pos_ = 0;
    }
    const Value& from_v = current_[spec_.from_col];
    if (!from_v.is_node() || !g.IsNodeAlive(from_v.AsNode())) {
      have_row_ = false;
      continue;
    }
    NodeId from = from_v.AsNode();
    const auto& out = g.OutRels(from);
    const auto& in = g.InRels(from);
    // Conceptual adjacency sequence: out rels then (when direction allows)
    // in rels. Self-loops are skipped in the `in` half so undirected
    // traversal sees them once.
    size_t total = out.size() + in.size();
    while (adj_pos_ < total) {
      size_t i = adj_pos_++;
      RelId r;
      bool from_out = i < out.size();
      if (from_out) {
        r = out[i];
        if (spec_.direction == ast::Direction::kLeft &&
            g.Source(r) == g.Target(r)) {
          // A self-loop also appears in `in`; let the `in` half handle it
          // for left-pointing patterns.
          continue;
        }
        if (spec_.direction == ast::Direction::kLeft &&
            g.Target(r) != from) {
          continue;
        }
      } else {
        r = in[i - out.size()];
        if (spec_.direction != ast::Direction::kLeft &&
            g.Source(r) == g.Target(r)) {
          continue;  // self-loop handled in the `out` half
        }
        if (spec_.direction == ast::Direction::kRight) continue;
      }
      NodeId next;
      GQL_ASSIGN_OR_RETURN(bool rel_ok, RelMatches(r, current_, &next));
      if (!rel_ok) continue;
      *row = current_;
      if (!spec_.rel_var.empty()) row->push_back(Value::Relationship(r));
      if (spec_.to_col < 0) row->push_back(Value::Node(next));
      ++rows_produced_;
      return true;
    }
    have_row_ = false;
  }
}

std::string ExpandOp::Describe() const {
  std::string arrow = spec_.direction == ast::Direction::kRight   ? "->"
                      : spec_.direction == ast::Direction::kLeft ? "<-"
                                                                  : "--";
  std::string out = spec_.to_col >= 0 ? "ExpandInto(" : "Expand(";
  out += schema_[spec_.from_col] + arrow;
  for (size_t i = 0; i < spec_.types.size(); ++i) {
    out += (i ? "|" : ":") + spec_.types[i];
  }
  out += arrow;
  out += spec_.to_col >= 0 ? schema_[spec_.to_col] : spec_.to_var;
  return out + ")";
}

// ---- HashJoinExpandOp -------------------------------------------------------

HashJoinExpandOp::HashJoinExpandOp(OperatorPtr child, const ExecContext* ctx,
                                   ExpandSpec spec)
    : Operator(nullptr, {}), ctx_(ctx), spec_(std::move(spec)) {
  child_ = std::move(child);
  schema_ = child_->schema();
  if (!spec_.rel_var.empty()) schema_.push_back(spec_.rel_var);
  if (spec_.to_col < 0) schema_.push_back(spec_.to_var);
}

Status HashJoinExpandOp::Open() {
  have_row_ = false;
  if (!built_) {
    // Build side: scan the entire relationship store (the indirection the
    // adjacency-based Expand avoids).
    const PropertyGraph& g = *ctx_->graph;
    for (size_t i = 0; i < g.NumRelSlots(); ++i) {
      RelId r{i};
      if (!g.IsRelAlive(r)) continue;
      if (!TypeOk(g, spec_.types, r)) continue;
      switch (spec_.direction) {
        case ast::Direction::kRight:
          index_.emplace(g.Source(r).id, r.id);
          break;
        case ast::Direction::kLeft:
          index_.emplace(g.Target(r).id, r.id);
          break;
        case ast::Direction::kBoth:
          index_.emplace(g.Source(r).id, r.id);
          if (!(g.Source(r) == g.Target(r))) {
            index_.emplace(g.Target(r).id, r.id);
          }
          break;
      }
    }
    built_ = true;
  }
  range_ = {index_.end(), index_.end()};
  return child_->Open();
}

Result<bool> HashJoinExpandOp::Next(ValueList* row) {
  const PropertyGraph& g = *ctx_->graph;
  while (true) {
    if (!have_row_) {
      GQL_ASSIGN_OR_RETURN(bool ok, child_->Next(&current_));
      if (!ok) return false;
      have_row_ = true;
      const Value& from_v = current_[spec_.from_col];
      if (!from_v.is_node()) {
        have_row_ = false;
        continue;
      }
      range_ = index_.equal_range(from_v.AsNode().id);
    }
    while (range_.first != range_.second) {
      RelId r{range_.first->second};
      ++range_.first;
      if (ctx_->match.morphism != Morphism::kHomomorphism &&
          RelAlreadyUsed(r, current_, spec_.uniqueness_cols)) {
        continue;
      }
      if (spec_.bound_rel_col >= 0) {
        const Value& bound = current_[spec_.bound_rel_col];
        if (!bound.is_relationship() || !(bound.AsRelationship() == r)) {
          continue;
        }
      }
      GQL_ASSIGN_OR_RETURN(
          bool props_ok,
          RelPropsOk(*ctx_, spec_, r, child_->schema(), current_));
      if (!props_ok) continue;
      NodeId from = current_[spec_.from_col].AsNode();
      NodeId next = g.OtherEnd(r, from);
      if (spec_.direction == ast::Direction::kRight) next = g.Target(r);
      if (spec_.direction == ast::Direction::kLeft) next = g.Source(r);
      if (spec_.to_col >= 0) {
        const Value& want = current_[spec_.to_col];
        if (!want.is_node() || !(want.AsNode() == next)) continue;
      }
      *row = current_;
      if (!spec_.rel_var.empty()) row->push_back(Value::Relationship(r));
      if (spec_.to_col < 0) row->push_back(Value::Node(next));
      ++rows_produced_;
      return true;
    }
    have_row_ = false;
  }
}

std::string HashJoinExpandOp::Describe() const {
  return "HashJoinExpand(" + schema_[spec_.from_col] + "," +
         (spec_.to_col >= 0 ? schema_[spec_.to_col] : spec_.to_var) + ")";
}

// ---- VarLengthExpandOp ------------------------------------------------------

VarLengthExpandOp::VarLengthExpandOp(OperatorPtr child, const ExecContext* ctx,
                                     ExpandSpec spec, int64_t min, int64_t max)
    : Operator(nullptr, {}), ctx_(ctx), spec_(std::move(spec)), min_(min),
      max_(max) {
  child_ = std::move(child);
  schema_ = child_->schema();
  if (!spec_.rel_var.empty()) schema_.push_back(spec_.rel_var);
  if (spec_.to_col < 0) schema_.push_back(spec_.to_var);
}

Status VarLengthExpandOp::Open() {
  have_row_ = false;
  pending_.clear();
  return child_->Open();
}

Status VarLengthExpandOp::StartRow() {
  const PropertyGraph& g = *ctx_->graph;
  pending_.clear();
  const Value& from_v = current_[spec_.from_col];
  if (!from_v.is_node() || !g.IsNodeAlive(from_v.AsNode())) {
    return Status::OK();
  }
  NodeId from = from_v.AsNode();

  auto emit = [&](NodeId target, const std::vector<RelId>& rels) {
    if (spec_.to_col >= 0) {
      const Value& want = current_[spec_.to_col];
      if (!want.is_node() || !(want.AsNode() == target)) return;
    }
    ValueList row = current_;
    if (!spec_.rel_var.empty()) {
      ValueList list;
      for (RelId r : rels) list.push_back(Value::Relationship(r));
      row.push_back(Value::MakeList(std::move(list)));
    }
    if (spec_.to_col < 0) row.push_back(Value::Node(target));
    pending_.push_back(std::move(row));
  };

  if (min_ == 0) emit(from, {});

  // DFS enumerating each relationship sequence of length in [max(1,min),
  // max]: every depth in range produces its own row (rigid refinements).
  std::vector<RelId> rels;
  std::function<Status(NodeId, int64_t)> dfs =
      [&](NodeId cur, int64_t depth) -> Status {
    if (depth >= max_) return Status::OK();
    auto consider = [&](RelId r, bool from_out) -> Status {
      if (!TypeOk(g, spec_.types, r)) return Status::OK();
      // Within-hop uniqueness plus clause-level uniqueness columns.
      if (ctx_->match.morphism != Morphism::kHomomorphism) {
        for (RelId used : rels) {
          if (used == r) return Status::OK();
        }
        if (RelAlreadyUsed(r, current_, spec_.uniqueness_cols)) {
          return Status::OK();
        }
      }
      GQL_ASSIGN_OR_RETURN(
          bool props_ok,
          RelPropsOk(*ctx_, spec_, r, child_->schema(), current_));
      if (!props_ok) return Status::OK();
      NodeId src = g.Source(r);
      NodeId tgt = g.Target(r);
      NodeId next;
      switch (spec_.direction) {
        case ast::Direction::kRight:
          if (src != cur) return Status::OK();
          next = tgt;
          break;
        case ast::Direction::kLeft:
          if (tgt != cur) return Status::OK();
          next = src;
          break;
        case ast::Direction::kBoth:
          if (src == tgt && !from_out) return Status::OK();  // once
          next = (src == cur) ? tgt : src;
          break;
      }
      rels.push_back(r);
      if (depth + 1 >= min_) emit(next, rels);
      Status st = dfs(next, depth + 1);
      rels.pop_back();
      return st;
    };
    if (spec_.direction != ast::Direction::kLeft) {
      for (RelId r : g.OutRels(cur)) {
        GQL_RETURN_IF_ERROR(consider(r, true));
      }
    }
    if (spec_.direction != ast::Direction::kRight) {
      for (RelId r : g.InRels(cur)) {
        GQL_RETURN_IF_ERROR(consider(r, false));
      }
    }
    return Status::OK();
  };
  if (max_ >= 1) GQL_RETURN_IF_ERROR(dfs(from, 0));
  return Status::OK();
}

Result<bool> VarLengthExpandOp::Next(ValueList* row) {
  while (true) {
    if (!have_row_) {
      GQL_ASSIGN_OR_RETURN(bool ok, child_->Next(&current_));
      if (!ok) return false;
      have_row_ = true;
      GQL_RETURN_IF_ERROR(StartRow());
      pos_in_pending_ = 0;
    }
    if (pos_in_pending_ < pending_.size()) {
      *row = pending_[pos_in_pending_++];
      ++rows_produced_;
      return true;
    }
    have_row_ = false;
  }
}

std::string VarLengthExpandOp::Describe() const {
  std::string out = "VarLengthExpand(" + schema_[spec_.from_col] + "-";
  for (size_t i = 0; i < spec_.types.size(); ++i) {
    out += (i ? "|" : ":") + spec_.types[i];
  }
  out += "*" + std::to_string(min_) + ".." + std::to_string(max_) + "->";
  out += spec_.to_col >= 0 ? schema_[spec_.to_col] : spec_.to_var;
  return out + ")";
}

// ---- FilterOp ---------------------------------------------------------------

FilterOp::FilterOp(OperatorPtr child, const ExecContext* ctx,
                   const ast::Expr* pred)
    : Operator(nullptr, {}), ctx_(ctx), pred_(pred) {
  child_ = std::move(child);
  schema_ = child_->schema();
}

Status FilterOp::Open() { return child_->Open(); }

Result<bool> FilterOp::Next(ValueList* row) {
  while (true) {
    GQL_ASSIGN_OR_RETURN(bool ok, child_->Next(row));
    if (!ok) return false;
    SchemaEnvironment env(schema_, *row);
    GQL_ASSIGN_OR_RETURN(Tri keep, EvaluatePredicate(*pred_, env, ctx_->eval));
    if (keep == Tri::kTrue) {
      ++rows_produced_;
      return true;
    }
  }
}

std::string FilterOp::Describe() const {
  return "Filter";  // predicate text available via UnparseExpr if needed
}

// ---- ApplyOp ----------------------------------------------------------------

ApplyOp::ApplyOp(OperatorPtr child, OperatorPtr inner, ArgumentOp* argument,
                 bool optional, std::vector<std::string> schema)
    : Operator(nullptr, std::move(schema)),
      inner_(std::move(inner)),
      argument_(argument),
      optional_(optional) {
  child_ = std::move(child);
}

Status ApplyOp::Open() {
  have_row_ = false;
  inner_open_ = false;
  return child_->Open();
}

Result<bool> ApplyOp::Next(ValueList* row) {
  while (true) {
    if (!have_row_) {
      GQL_ASSIGN_OR_RETURN(bool ok, child_->Next(&current_));
      if (!ok) return false;
      have_row_ = true;
      inner_matched_ = false;
      argument_->BindRow(&current_);
      GQL_RETURN_IF_ERROR(inner_->Open());
      inner_open_ = true;
    }
    GQL_ASSIGN_OR_RETURN(bool ok, inner_->Next(row));
    if (ok) {
      inner_matched_ = true;
      ++rows_produced_;
      return true;
    }
    have_row_ = false;
    inner_open_ = false;
    if (optional_ && !inner_matched_) {
      *row = current_;
      row->resize(schema_.size(), Value::Null());
      ++rows_produced_;
      return true;
    }
  }
}

// ---- UnwindOp ---------------------------------------------------------------

UnwindOp::UnwindOp(OperatorPtr child, const ExecContext* ctx,
                   const ast::Expr* expr, std::string var)
    : Operator(nullptr, {}), ctx_(ctx), expr_(expr), var_(var) {
  child_ = std::move(child);
  schema_ = Extend(child_->schema(), {var});
}

Status UnwindOp::Open() {
  have_row_ = false;
  return child_->Open();
}

Result<bool> UnwindOp::Next(ValueList* row) {
  while (true) {
    if (!have_row_) {
      GQL_ASSIGN_OR_RETURN(bool ok, child_->Next(&current_));
      if (!ok) return false;
      have_row_ = true;
      SchemaEnvironment env(child_->schema(), current_);
      GQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*expr_, env, ctx_->eval));
      items_.clear();
      item_pos_ = 0;
      single_pending_ = false;
      if (v.is_list()) {
        items_ = v.AsList();
      } else {
        single_pending_ = true;
        single_value_ = std::move(v);
      }
    }
    if (single_pending_) {
      single_pending_ = false;
      *row = current_;
      row->push_back(single_value_);
      ++rows_produced_;
      return true;
    }
    if (item_pos_ < items_.size()) {
      *row = current_;
      row->push_back(items_[item_pos_++]);
      ++rows_produced_;
      return true;
    }
    have_row_ = false;
  }
}

// ---- ProjectionOp -----------------------------------------------------------

ProjectionOp::ProjectionOp(OperatorPtr child, const ExecContext* ctx,
                           const ast::ProjectionBody* body,
                           const ast::Expr* where,
                           std::vector<std::string> schema)
    : Operator(nullptr, std::move(schema)), ctx_(ctx), body_(body),
      where_(where) {
  child_ = std::move(child);
}

Status ProjectionOp::Open() {
  GQL_RETURN_IF_ERROR(child_->Open());
  GQL_ASSIGN_OR_RETURN(Table input, DrainPlan(child_.get()));
  // `*` must not expose planner-hidden columns ('#...'): strip them before
  // delegating to the shared projection machinery.
  bool has_hidden = false;
  for (const auto& f : input.fields()) {
    if (!f.empty() && f[0] == '#') has_hidden = true;
  }
  if (has_hidden && body_->star) {
    std::vector<std::string> keep_fields;
    std::vector<size_t> keep_idx;
    for (size_t i = 0; i < input.fields().size(); ++i) {
      if (input.fields()[i].empty() || input.fields()[i][0] != '#') {
        keep_fields.push_back(input.fields()[i]);
        keep_idx.push_back(i);
      }
    }
    Table stripped(keep_fields);
    for (const auto& r : input.rows()) {
      ValueList row;
      row.reserve(keep_idx.size());
      for (size_t i : keep_idx) row.push_back(r[i]);
      stripped.AddRow(std::move(row));
    }
    input = std::move(stripped);
  }
  GQL_ASSIGN_OR_RETURN(result_, EvaluateProjection(*body_, input, ctx_->eval));
  if (where_ != nullptr) {
    Table filtered(result_.fields());
    for (const auto& r : result_.rows()) {
      RowEnvironment env(result_, r);
      GQL_ASSIGN_OR_RETURN(Tri keep,
                           EvaluatePredicate(*where_, env, ctx_->eval));
      if (keep == Tri::kTrue) filtered.AddRow(r);
    }
    result_ = std::move(filtered);
  }
  pos_ = 0;
  return Status::OK();
}

Result<bool> ProjectionOp::Next(ValueList* row) {
  if (pos_ >= result_.NumRows()) return false;
  *row = result_.rows()[pos_++];
  ++rows_produced_;
  return true;
}

std::string ProjectionOp::Describe() const {
  std::string out = "Projection(";
  bool agg = false;
  for (const auto& item : body_->items) {
    if (ContainsAggregate(*item.expr)) agg = true;
  }
  if (agg) out = "EagerAggregation(";
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (i) out += ", ";
    out += schema_[i];
  }
  if (body_->distinct) out += " DISTINCT";
  if (!body_->order_by.empty()) out += " ORDER BY";
  if (body_->skip) out += " SKIP";
  if (body_->limit) out += " LIMIT";
  return out + ")";
}

// ---- UnionOp ----------------------------------------------------------------

UnionOp::UnionOp(std::vector<OperatorPtr> parts, bool all,
                 std::vector<std::string> schema)
    : Operator(nullptr, std::move(schema)), parts_(std::move(parts)),
      all_(all) {}

Status UnionOp::Open() {
  materialized_ = Table(schema_);
  for (auto& p : parts_) {
    GQL_RETURN_IF_ERROR(p->Open());
    GQL_ASSIGN_OR_RETURN(Table t, DrainPlan(p.get()));
    materialized_.Append(t);
  }
  if (!all_) materialized_ = materialized_.Deduplicated();
  pos_ = 0;
  return Status::OK();
}

Result<bool> UnionOp::Next(ValueList* row) {
  if (pos_ >= materialized_.NumRows()) return false;
  *row = materialized_.rows()[pos_++];
  ++rows_produced_;
  return true;
}

// ---- MatcherOp --------------------------------------------------------------

MatcherOp::MatcherOp(OperatorPtr child, const ExecContext* ctx,
                     const ast::Pattern* pattern,
                     std::vector<std::string> new_cols)
    : Operator(nullptr, {}), ctx_(ctx), pattern_(pattern),
      new_cols_(std::move(new_cols)) {
  child_ = std::move(child);
  schema_ = child_->schema();
  for (const auto& c : new_cols_) schema_.push_back(c);
}

Status MatcherOp::Open() {
  have_row_ = false;
  buffered_.clear();
  pos_ = 0;
  return child_->Open();
}

Result<bool> MatcherOp::Next(ValueList* row) {
  while (true) {
    if (!have_row_) {
      GQL_ASSIGN_OR_RETURN(bool ok, child_->Next(&current_));
      if (!ok) return false;
      have_row_ = true;
      buffered_.clear();
      pos_ = 0;
      SchemaEnvironment env(child_->schema(), current_);
      Status st = MatchPattern(*pattern_, *ctx_->graph, env, ctx_->eval,
                               ctx_->match, new_cols_,
                               [&](const BindingRow& b) -> Result<bool> {
                                 ValueList out = current_;
                                 for (const Value& v : b) out.push_back(v);
                                 buffered_.push_back(std::move(out));
                                 return true;
                               });
      GQL_RETURN_IF_ERROR(st);
    }
    if (pos_ < buffered_.size()) {
      *row = buffered_[pos_++];
      ++rows_produced_;
      return true;
    }
    have_row_ = false;
  }
}

// ---- Helpers ----------------------------------------------------------------

Result<Table> DrainPlan(Operator* root) {
  Table out(root->schema());
  ValueList row;
  while (true) {
    GQL_ASSIGN_OR_RETURN(bool ok, root->Next(&row));
    if (!ok) break;
    out.AddRow(row);
  }
  return out;
}

namespace {

void ExplainRec(const Operator& op, int depth, bool with_rows,
                std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += "+ " + op.Describe();
  if (with_rows) {
    *out += "  (rows: " + std::to_string(op.rows_produced()) + ")";
  }
  *out += "\n";
  for (const Operator* c : op.children()) {
    if (c != nullptr) ExplainRec(*c, depth + 1, with_rows, out);
  }
}

}  // namespace

std::string ExplainPlan(const Operator& root) {
  std::string out;
  ExplainRec(root, 0, /*with_rows=*/false, &out);
  return out;
}

std::string ProfilePlan(const Operator& root) {
  std::string out;
  ExplainRec(root, 0, /*with_rows=*/true, &out);
  return out;
}

}  // namespace gqlite
