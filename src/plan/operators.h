#ifndef GQLITE_PLAN_OPERATORS_H_
#define GQLITE_PLAN_OPERATORS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/frontend/ast.h"
#include "src/interp/projection.h"
#include "src/interp/row_batch.h"
#include "src/interp/table.h"
#include "src/pattern/matcher.h"

namespace gqlite {

class Operator;

/// Cursor over a child operator's output: pulls one morsel at a time and
/// hands out row references, preserving per-row resume state for
/// operators (scans, expands, unwind) that produce many output rows per
/// input row. The referenced row stays valid until Advance() moves past
/// the end of the current morsel and the next Current() pulls a new one.
class BatchCursor {
 public:
  void Reset() {
    batch_.Clear();
    pos_ = 0;
    done_ = false;
  }
  /// The current input row, pulling the next batch from `child` as
  /// needed (`capacity` sizes the internal morsel). nullptr at end of
  /// stream.
  Result<const ValueList*> Current(Operator* child, size_t capacity);
  void Advance() { ++pos_; }

 private:
  RowBatch batch_{1};
  size_t pos_ = 0;
  bool done_ = false;
};

/// Batched Volcano operators. §2 describes Neo4j's "simple
/// tuple-at-a-time iterator-based execution model"; this runtime keeps
/// the same pull-based operator tree but moves a *morsel* of rows per
/// NextBatch call (RowBatch, default 1024 rows, selection vector for
/// filters), amortizing virtual dispatch and per-row bookkeeping across
/// the batch. Rows flow bottom-up; each operator introduces zero or more
/// columns. Operators are single-use pipelines: Open() resets, NextBatch()
/// fills a caller-provided morsel.
///
/// The signature operator is Expand (its own class below): "Semantically
/// Expand is very similar to a relational join. It finds pairs of nodes
/// that are connected through an edge … it utilizes the fact that the data
/// representation contains direct references from each node via its edges
/// to the related nodes." A hash-join-based baseline (HashJoinExpand) that
/// scans the relationship store instead is provided for experiment E14.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Resets the operator (and its inputs) to the start of its stream.
  virtual Status Open() = 0;

  /// Clears `out` and fills it with up to out->capacity() rows. Returns
  /// false at end of stream (and only then — a true return carries at
  /// least one live row). Correlated subplans keep one-row semantics by
  /// driving the pipeline from a single-row ArgumentOp; everything else
  /// streams whole morsels.
  Result<bool> NextBatch(RowBatch* out) {
    out->Clear();
    GQL_ASSIGN_OR_RETURN(bool ok, NextBatchImpl(out));
    if (ok) {
      ++batches_produced_;
      rows_produced_ += static_cast<int64_t>(out->size());
    }
    return ok;
  }

  /// Output schema: column names (hidden planner columns start with '#').
  const std::vector<std::string>& schema() const { return schema_; }

  /// One line of EXPLAIN output for this operator (children indented by
  /// the caller).
  virtual std::string Describe() const = 0;
  Operator* child() const { return child_.get(); }

  /// Children for EXPLAIN tree rendering (Apply/Union override).
  virtual std::vector<const Operator*> children() const {
    std::vector<const Operator*> out;
    if (child_) out.push_back(child_.get());
    return out;
  }

  /// Cumulative rows / batches produced (PROFILE-style counters).
  int64_t rows_produced() const { return rows_produced_; }
  int64_t batches_produced() const { return batches_produced_; }

  /// Planner-estimated output rows (cost-model cardinality at plan
  /// time, against the executing snapshot's statistics); negative when
  /// the planner did not estimate this operator. EXPLAIN prints it as
  /// `est. rows`.
  double est_rows() const { return est_rows_; }
  void set_est_rows(double rows) { est_rows_ = rows; }

  /// Adds `other`'s counters into this tree, operator by operator — the
  /// trees must be structurally identical (per-worker instances of the
  /// same plan). PROFILE of a parallel run folds every worker's counters
  /// into the printed tree.
  void AbsorbCounters(const Operator& other);

 protected:
  Operator(std::unique_ptr<Operator> child, std::vector<std::string> schema)
      : child_(std::move(child)), schema_(std::move(schema)) {}

  /// The per-operator batch producer (NextBatch handles clearing and
  /// counter bookkeeping).
  virtual Result<bool> NextBatchImpl(RowBatch* out) = 0;

  std::unique_ptr<Operator> child_;
  std::vector<std::string> schema_;
  int64_t rows_produced_ = 0;
  int64_t batches_produced_ = 0;
  double est_rows_ = -1;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Shared runtime state for a plan. Execution-scoped fields
/// (eval.parameters, eval.rand_state) are REBOUND by the engine before
/// each execution of a cached plan — everything that reads them must go
/// through this struct at call time rather than copying them at plan
/// time.
struct ExecContext {
  const PropertyGraph* graph = nullptr;
  /// Keeps `graph` alive while a cached plan outlives the query (and, for
  /// FROM GRAPH plans, while the catalog drops a named graph).
  std::shared_ptr<const PropertyGraph> graph_owner;
  EvalContext eval;
  MatchOptions match;
  /// Morsel capacity for pipeline breakers that drain a subplan
  /// themselves (ProjectionOp); leaf-to-root morsels are sized by the
  /// caller of NextBatch.
  size_t batch_size = RowBatch::kDefaultCapacity;
};

/// Implemented by scan leaves whose domain (node slots, label-index
/// entries) the parallel runtime can split into contiguous morsel ranges
/// claimed by workers (src/exec/parallel.h). A range restriction applies
/// from the next Open(); SetScanRange(0, SIZE_MAX) restores the full
/// domain (the serial default).
class PartitionedScan {
 public:
  virtual ~PartitionedScan() = default;
  /// Current size of the scan domain (positions, not live entries).
  virtual size_t ScanDomainSize() const = 0;
  /// Restricts the scan to domain positions [begin, end).
  virtual void SetScanRange(size_t begin, size_t end) = 0;
};

/// Leaf: emits the rows of a driving table (the argument of an Apply, or
/// the unit table at the top of a query). When bound to a single row
/// (Apply-style correlation) it produces a one-row batch — the thin
/// adapter that keeps one-row semantics for correlated subplans.
class ArgumentOp : public Operator {
 public:
  ArgumentOp(std::vector<std::string> schema, const Table* source)
      : Operator(nullptr, std::move(schema)), source_(source) {}
  /// True when this leaf replays a fixed table (the unit table at the top
  /// of a pipeline) rather than an Apply-bound row — the anchor the
  /// parallel-safety analysis looks for.
  bool has_table_source() const { return source_ != nullptr; }
  /// Rebinds to a single row (Apply-style correlation).
  void BindRow(const ValueList* row) { single_row_ = row; }
  Status Open() override {
    pos_ = 0;
    done_single_ = false;
    return Status::OK();
  }
  Result<bool> NextBatchImpl(RowBatch* out) override;
  std::string Describe() const override { return "Argument"; }

 private:
  const Table* source_;
  const ValueList* single_row_ = nullptr;
  size_t pos_ = 0;
  bool done_single_ = false;
};

/// Scans all live nodes, binding `var`. Domain = node slot space.
class AllNodesScanOp : public Operator, public PartitionedScan {
 public:
  AllNodesScanOp(OperatorPtr child, const ExecContext* ctx, std::string var);
  Status Open() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  std::string Describe() const override { return "AllNodesScan(" + var_ + ")"; }
  size_t ScanDomainSize() const override;
  void SetScanRange(size_t begin, size_t end) override {
    range_begin_ = begin;
    range_end_ = end;
  }

 private:
  const ExecContext* ctx_;
  std::string var_;
  BatchCursor input_;
  size_t node_pos_ = 0;
  size_t range_begin_ = 0;
  size_t range_end_ = SIZE_MAX;
};

/// Scans the label index, binding `var` (the planner's preferred access
/// path when the pattern constrains the label). Domain = index entries.
class NodeByLabelScanOp : public Operator, public PartitionedScan {
 public:
  NodeByLabelScanOp(OperatorPtr child, const ExecContext* ctx,
                    std::string var, std::string label);
  Status Open() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  std::string Describe() const override {
    return "NodeByLabelScan(" + var_ + ":" + label_ + ")";
  }
  size_t ScanDomainSize() const override;
  void SetScanRange(size_t begin, size_t end) override {
    range_begin_ = begin;
    range_end_ = end;
  }

 private:
  const ExecContext* ctx_;
  std::string var_;
  std::string label_;
  BatchCursor input_;
  size_t idx_pos_ = 0;
  size_t range_begin_ = 0;
  size_t range_end_ = SIZE_MAX;
};

/// Common configuration of the expand family: traverse one relationship
/// pattern hop from a bound node column.
struct ExpandSpec {
  int from_col = -1;               // bound source column
  int to_col = -1;                 // bound target column (ExpandInto) or -1
  std::string to_var;              // name of new target column (if unbound)
  std::string rel_var;             // rel column name (may be hidden "#...")
  int bound_rel_col = -1;          // rel variable already bound, must equal
  std::vector<std::string> types;  // empty = any
  /// `types` resolved against the bound graph's type interner (filled by
  /// each expand operator's Open) so the per-candidate type check is an
  /// integer compare, not a string compare. A type the graph has never
  /// seen resolves to kNoSymbol, which no live relationship carries.
  std::vector<SymbolId> type_ids;
  ast::Direction direction = ast::Direction::kRight;
  /// Relationship columns of the same MATCH clause bound before this hop —
  /// relationship-isomorphism check targets (single rels and rel lists).
  std::vector<int> uniqueness_cols;
  /// Property constraints of the relationship pattern, evaluated against
  /// the driving row (fused into the expand; a candidate relationship must
  /// carry equal values). Not owned.
  const std::vector<std::pair<std::string, ast::ExprPtr>>* rel_props = nullptr;
};

/// Lazily-hoisted relationship-property constraint values for one
/// driving row: the pattern's property expressions reference outer
/// bindings (the driving row), never the candidate relationship, so each
/// key's value is evaluated at the FIRST candidate that reaches that key
/// (i.e. survives the earlier keys) and reused for the row's remaining
/// candidates. Lazy per key, not eager: the reference check evaluates a
/// key's expression only when some candidate gets that far, so a row
/// with no candidates — or whose candidates all fail an earlier key —
/// must not evaluate (and possibly error on) the later expressions.
/// Call Reset() whenever the driving row changes.
///
/// Deliberate tradeoff: a non-deterministic constraint expression (e.g.
/// `{w: rand()}`) samples once per driving row here, while the
/// reference matcher samples per candidate. Cypher leaves the
/// evaluation count of such expressions unspecified; the hoist trades
/// that freedom for not re-evaluating per candidate.
class LazyPropWants {
 public:
  void Reset() { wants_.clear(); }
  /// True if candidate `r` satisfies the constraints of `spec` for
  /// `row`; evaluates constraint values on first use per row and key.
  Result<bool> Ok(const ExecContext& ctx, const ExpandSpec& spec,
                  const std::vector<std::string>& schema,
                  const ValueList& row, RelId r);

 private:
  std::vector<Value> wants_;  // values for keys 0..wants_.size()-1
};

/// Adjacency-based expand: direct node→edge→node references. Batched:
/// the relationship-property constraint expressions are evaluated ONCE
/// per driving row (hoisted out of the per-relationship loop).
class ExpandOp : public Operator {
 public:
  ExpandOp(OperatorPtr child, const ExecContext* ctx, ExpandSpec spec);
  Status Open() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  std::string Describe() const override;

 private:
  Result<bool> RelMatches(RelId r, const ValueList& row, NodeId* next);
  const ExecContext* ctx_;
  ExpandSpec spec_;
  BatchCursor input_;
  size_t adj_pos_ = 0;  // position in the (conceptual) adjacency sequence
  LazyPropWants props_;
};

/// Baseline expand for experiment E14: builds a hash table over the whole
/// relationship store at Open (src → rel for the requested types) and
/// probes it per row — a classic hash join between the driving table and
/// the edge table, paying the full edge scan the paper says Expand avoids.
class HashJoinExpandOp : public Operator {
 public:
  HashJoinExpandOp(OperatorPtr child, const ExecContext* ctx, ExpandSpec spec);
  Status Open() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  std::string Describe() const override;

 private:
  const ExecContext* ctx_;
  ExpandSpec spec_;
  std::unordered_multimap<uint64_t, uint64_t> index_;  // node id → rel id
  BatchCursor input_;
  bool probing_ = false;
  LazyPropWants props_;
  std::pair<std::unordered_multimap<uint64_t, uint64_t>::const_iterator,
            std::unordered_multimap<uint64_t, uint64_t>::const_iterator>
      range_;
  bool built_ = false;
};

/// Variable-length expand: enumerates relationship sequences of length
/// [min, max], one row per (length, sequence) — preserving the bag
/// semantics of rigid-pattern refinements. Batched as a
/// frontier-per-morsel BFS: all driving rows of a batch expand one level
/// at a time over a shared frontier of owned contiguous paths. Working
/// memory is therefore the whole morsel's in-flight level plus its
/// buffered expansion rows (the per-tuple DFS held one row's worth);
/// lowering EngineOptions::batch_size bounds it when a dense graph with
/// a high `min` makes that a concern.
class VarLengthExpandOp : public Operator {
 public:
  VarLengthExpandOp(OperatorPtr child, const ExecContext* ctx,
                    ExpandSpec spec, int64_t min, int64_t max);
  Status Open() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  std::string Describe() const override;

 private:
  /// Runs the level-synchronous BFS for the whole input batch, buffering
  /// its expansion rows in pending_; streaming resumes from the buffer.
  Status ExpandBatch();

  /// Next reusable pending-row slot (cleared). Slots keep their ValueList
  /// allocations across batches, so a refill costs element assignments,
  /// not a malloc per emitted row.
  ValueList& NextPendingSlot();

  const ExecContext* ctx_;
  ExpandSpec spec_;
  int64_t min_;
  int64_t max_;

  RowBatch input_{1};
  std::vector<ValueList> pending_;  // slot pool of rows ready to emit
  size_t pending_size_ = 0;         // live prefix of pending_
  size_t pos_in_pending_ = 0;

  /// An in-flight BFS path head. The path itself lives in the level's
  /// flat arena (cur_paths_/next_paths_), not in the entry: the
  /// level-synchronous BFS keeps every path of one level the same
  /// length, so entry i's relationships are the contiguous stride at
  /// [i * level_len, (i + 1) * level_len).
  struct FrontierEntry {
    uint32_t row;
    NodeId node;
  };
  /// Pooled per-level path arenas and frontier vectors: extending a path
  /// appends its prefix + the new relationship to next_paths_ (amortized
  /// chunk growth), replacing the per-extension std::vector<RelId>
  /// allocation of the old representation. Capacity persists across
  /// batches — a refill costs element copies, not mallocs — and the
  /// trail-uniqueness probe stays one linear scan of contiguous memory.
  std::vector<RelId> cur_paths_;
  std::vector<RelId> next_paths_;
  std::vector<FrontierEntry> frontier_;
  std::vector<FrontierEntry> next_frontier_;
};

/// σ: keeps rows whose predicate is true (3VL: null drops the row).
/// Batched: marks survivors in the morsel's selection vector — no row is
/// copied or moved by a filter.
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, const ExecContext* ctx, const ast::Expr* pred);
  Status Open() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  std::string Describe() const override;

 private:
  const ExecContext* ctx_;
  const ast::Expr* pred_;
  std::vector<uint32_t> keep_;
};

/// Correlated nested-loop apply: for every input row, re-opens the inner
/// pipeline with the row as its argument (a one-row ArgumentOp batch) and
/// streams the inner output into the caller's morsel. `optional` adds
/// OPTIONAL MATCH null-padding when the inner pipeline produces nothing
/// for a row (Figure 7's rule).
class ApplyOp : public Operator {
 public:
  ApplyOp(OperatorPtr child, OperatorPtr inner, ArgumentOp* argument,
          bool optional, std::vector<std::string> schema);
  Status Open() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  std::string Describe() const override {
    return optional_ ? "OptionalApply" : "Apply";
  }
  std::vector<const Operator*> children() const override {
    std::vector<const Operator*> out;
    if (child_) out.push_back(child_.get());
    out.push_back(inner_.get());
    return out;
  }
  /// Correlated inner pipeline / OPTIONAL flag (parallel-safety analysis).
  Operator* inner() const { return inner_.get(); }
  bool optional() const { return optional_; }

 private:
  OperatorPtr inner_;
  ArgumentOp* argument_;  // leaf of inner_ (owned by inner_)
  bool optional_;
  BatchCursor input_;
  bool inner_open_ = false;
  bool inner_matched_ = false;
};

/// UNWIND (Figure 7 rule, including the single-row non-list case).
class UnwindOp : public Operator {
 public:
  UnwindOp(OperatorPtr child, const ExecContext* ctx, const ast::Expr* expr,
           std::string var);
  Status Open() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  std::string Describe() const override { return "Unwind(" + var_ + ")"; }

 private:
  const ExecContext* ctx_;
  const ast::Expr* expr_;
  std::string var_;
  BatchCursor input_;
  bool row_ready_ = false;
  /// The evaluated list being unwound (the payload is shared with the
  /// evaluation result, never copied element-wise).
  Value items_ = Value::EmptyList();
  size_t item_pos_ = 0;
  bool single_pending_ = false;
  Value single_value_;
};

/// RETURN/WITH projection. A pipeline breaker: materializes its input and
/// delegates to the shared projection/aggregation machinery (eager
/// aggregation, DISTINCT, ORDER BY, SKIP/LIMIT), then streams the result
/// in morsels. `where` (WITH ... WHERE) filters the projected rows.
class ProjectionOp : public Operator {
 public:
  ProjectionOp(OperatorPtr child, const ExecContext* ctx,
               const ast::ProjectionBody* body, const ast::Expr* where,
               std::vector<std::string> schema);
  Status Open() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  std::string Describe() const override;

  /// Applies this operator's projection (hidden-column stripping for `*`,
  /// EvaluateProjection, the WITH ... WHERE filter) to an
  /// already-materialized input — the same transformation Open() applies
  /// to the drained child. The parallel runtime merges per-worker rows
  /// and runs this once, serially, as the pipeline-breaker barrier that
  /// keeps ORDER BY / DISTINCT / SKIP / LIMIT deterministic.
  Result<Table> ProjectTable(Table input) const;

  /// The map stage only — hidden-column stripping for `*` plus the
  /// per-row projection, WITHOUT the tail (DISTINCT / ORDER BY / SKIP /
  /// LIMIT) or the WHERE filter. The parallel runtime calls this on each
  /// worker's scan-range rows; `keys` (optional) receives each output
  /// row's ORDER BY key row, computed in the same pass while the source
  /// rows are still in reach. Only valid for non-aggregating bodies.
  Result<Table> ProjectChunk(Table input, std::vector<ValueList>* keys) const;

  /// Applies the WITH ... WHERE filter to projected rows (no-op without a
  /// WHERE). Shared with the parallel runtime, which runs the breaker
  /// tail itself and must filter the merged rows identically.
  Result<Table> FilterWhere(Table result) const;

  /// Hands this breaker its already-computed result: the next Open()
  /// consumes `result` directly instead of draining the child. The
  /// parallel runtime uses this to resume the serial plan ABOVE a merged
  /// breaker — the breaker's output is computed by the parallel merge
  /// stages, then the remaining serial operators stream it as usual.
  void PreloadResult(Table result);

  const ast::ProjectionBody* body() const { return body_; }
  const ast::Expr* where() const { return where_; }
  const ExecContext* exec_context() const { return ctx_; }

 private:
  const ExecContext* ctx_;
  const ast::ProjectionBody* body_;
  const ast::Expr* where_;
  Table result_;
  size_t pos_ = 0;
  bool has_preloaded_ = false;
};

/// UNION [ALL] of complete sub-plans (pipeline breaker for the DISTINCT
/// variant).
class UnionOp : public Operator {
 public:
  UnionOp(std::vector<OperatorPtr> parts, bool all,
          std::vector<std::string> schema,
          size_t batch_size = RowBatch::kDefaultCapacity);
  Status Open() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  std::string Describe() const override {
    return all_ ? "UnionAll" : "Union";
  }
  std::vector<const Operator*> children() const override {
    std::vector<const Operator*> out;
    for (const auto& p : parts_) out.push_back(p.get());
    return out;
  }

 private:
  std::vector<OperatorPtr> parts_;
  bool all_;
  size_t batch_size_;
  Table materialized_;
  size_t pos_ = 0;
};

/// Fallback operator for pattern shapes the specialized pipeline does not
/// cover (named paths, repeated variable-length variables): runs the
/// reference matcher per input row (one-row correlation semantics).
/// Keeps the runtime complete while the common shapes stay on the fast
/// path.
class MatcherOp : public Operator {
 public:
  MatcherOp(OperatorPtr child, const ExecContext* ctx,
            const ast::Pattern* pattern, std::vector<std::string> new_cols);
  Status Open() override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  std::string Describe() const override { return "PatternMatch(fallback)"; }

 private:
  const ExecContext* ctx_;
  const ast::Pattern* pattern_;
  std::vector<std::string> new_cols_;
  BatchCursor input_;
  bool row_ready_ = false;
  std::vector<ValueList> buffered_;
  size_t pos_ = 0;
};

/// Drains a plan into a table, morsel by morsel. `stats` (optional)
/// accumulates the rows/batches the root produced.
Result<Table> DrainPlan(Operator* root,
                        size_t batch_size = RowBatch::kDefaultCapacity,
                        BatchStats* stats = nullptr);

/// Renders an EXPLAIN tree.
std::string ExplainPlan(const Operator& root);

/// Renders the tree with per-operator row/batch counters (PROFILE) —
/// call after executing the plan.
std::string ProfilePlan(const Operator& root);

}  // namespace gqlite

#endif  // GQLITE_PLAN_OPERATORS_H_
