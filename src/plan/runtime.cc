#include "src/plan/runtime.h"

#include <cstdlib>

namespace gqlite {

size_t EffectiveBatchSize(size_t configured) {
  constexpr size_t kMaxBatchSize = size_t{1} << 20;
  if (const char* env = std::getenv("GQLITE_BATCH_SIZE")) {
    char* end = nullptr;
    long long v = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      configured = static_cast<size_t>(v);
    }
  }
  if (configured == 0) configured = 1;
  if (configured > kMaxBatchSize) configured = kMaxBatchSize;
  return configured;
}

Result<Table> ExecutePlan(Plan* plan, size_t batch_size, BatchStats* stats) {
  GQL_RETURN_IF_ERROR(plan->root->Open());
  return DrainPlan(plan->root.get(), batch_size, stats);
}

Result<Table> RunPlanned(GraphCatalog* catalog, GraphPtr graph,
                         const ValueMap* params, const PlannerOptions& options,
                         uint64_t* rand_state, const ast::Query& q,
                         BatchStats* stats) {
  Planner planner(catalog, std::move(graph), params, options, rand_state);
  GQL_ASSIGN_OR_RETURN(Plan plan, planner.PlanQuery(q));
  return ExecutePlan(&plan, options.batch_size, stats);
}

Result<std::string> ExplainQuery(GraphCatalog* catalog, GraphPtr graph,
                                 const ValueMap* params,
                                 const PlannerOptions& options,
                                 uint64_t* rand_state, const ast::Query& q) {
  Planner planner(catalog, std::move(graph), params, options, rand_state);
  GQL_ASSIGN_OR_RETURN(Plan plan, planner.PlanQuery(q));
  std::string out = "Batched Volcano runtime (morsel size " +
                    std::to_string(options.batch_size) + ")\n";
  out += ExplainPlan(*plan.root);
  return out;
}

}  // namespace gqlite
