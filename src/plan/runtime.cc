#include "src/plan/runtime.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "src/exec/parallel.h"

namespace gqlite {

namespace {

/// Parses a positive size_t override from the environment. The override
/// must be a clean decimal in [1, max]: trailing junk, signs of
/// non-numeric input, values the variable cannot mean (0, negatives,
/// out-of-range) are InvalidArgument errors naming the variable — a
/// garbage override silently clamped is a misconfiguration nobody
/// notices until results are wrong or the CI leg stops testing what it
/// claims to.
Result<size_t> ParseEnvOverride(const char* name, const char* text,
                                size_t max) {
  // strtoll would skip leading whitespace; an override with stray spaces
  // is as suspect as any other garbage.
  if (text[0] == '\0' || (!std::isdigit(static_cast<unsigned char>(text[0])) &&
                          text[0] != '-' && text[0] != '+')) {
    return Status::InvalidArgument(std::string(name) + ": \"" + text +
                                   "\" is not an integer");
  }
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') {
    return Status::InvalidArgument(std::string(name) + ": \"" + text +
                                   "\" is not an integer");
  }
  if (errno == ERANGE) {
    return Status::InvalidArgument(std::string(name) + ": \"" + text +
                                   "\" overflows");
  }
  if (v <= 0) {
    return Status::InvalidArgument(std::string(name) + ": must be >= 1, got " +
                                   std::string(text));
  }
  if (static_cast<unsigned long long>(v) > max) {
    return Status::InvalidArgument(std::string(name) + ": " +
                                   std::string(text) + " exceeds the cap of " +
                                   std::to_string(max));
  }
  return static_cast<size_t>(v);
}

}  // namespace

Result<size_t> EffectiveBatchSize(size_t configured) {
  constexpr size_t kMaxBatchSize = size_t{1} << 20;
  const char* env = std::getenv("GQLITE_BATCH_SIZE");
  if (env != nullptr && env[0] != '\0') {  // empty means unset, per custom
    return ParseEnvOverride("GQLITE_BATCH_SIZE", env, kMaxBatchSize);
  }
  if (configured == 0) configured = 1;
  if (configured > kMaxBatchSize) configured = kMaxBatchSize;
  return configured;
}

Result<size_t> EffectiveNumThreads(size_t configured) {
  constexpr size_t kMaxThreads = 256;
  const char* env = std::getenv("GQLITE_THREADS");
  if (env != nullptr && env[0] != '\0') {  // empty means unset, per custom
    return ParseEnvOverride("GQLITE_THREADS", env, kMaxThreads);
  }
  if (configured == 0) configured = 1;
  if (configured > kMaxThreads) configured = kMaxThreads;
  return configured;
}

Result<Table> ExecutePlan(Plan* plan, size_t batch_size, BatchStats* stats) {
  GQL_RETURN_IF_ERROR(plan->root->Open());
  return DrainPlan(plan->root.get(), batch_size, stats);
}

Result<Table> RunPlanned(CatalogRef catalog, GraphPtr graph,
                         const ValueMap* params, const PlannerOptions& options,
                         uint64_t* rand_state, const ast::Query& q,
                         BatchStats* stats, WorkerPool* pool,
                         ParallelRunStats* pstats, std::string* serial_reason) {
  Planner planner(std::move(catalog), std::move(graph), params, options, rand_state);
  GQL_ASSIGN_OR_RETURN(Plan plan, planner.PlanQuery(q));
  if (options.num_threads > 1 && pool != nullptr) {
    if (plan.parallel.safe) {
      return ExecutePlanParallel(&plan, pool, options.batch_size, stats,
                                 pstats);
    }
    if (serial_reason != nullptr) *serial_reason = plan.parallel.reason;
  }
  return ExecutePlan(&plan, options.batch_size, stats);
}

Result<std::string> ExplainQuery(CatalogRef catalog, GraphPtr graph,
                                 const ValueMap* params,
                                 const PlannerOptions& options,
                                 uint64_t* rand_state, const ast::Query& q) {
  Planner planner(std::move(catalog), std::move(graph), params, options, rand_state);
  GQL_ASSIGN_OR_RETURN(Plan plan, planner.PlanQuery(q));
  std::string out = "Batched Volcano runtime (morsel size " +
                    std::to_string(options.batch_size) + ")\n";
  if (options.num_threads > 1) {
    if (plan.parallel.safe) {
      out += "Parallel: " + std::to_string(options.num_threads) +
             " workers, morsel-partitioned scan, " +
             plan.parallel.merge_shape + "\n";
    } else {
      out += "Parallel: serial (" + plan.parallel.reason + ")\n";
    }
  }
  out += ExplainPlan(*plan.root);
  return out;
}

}  // namespace gqlite
