#include "src/plan/runtime.h"

namespace gqlite {

Result<Table> ExecutePlan(Plan* plan) {
  GQL_RETURN_IF_ERROR(plan->root->Open());
  return DrainPlan(plan->root.get());
}

Result<Table> RunPlanned(GraphCatalog* catalog, GraphPtr graph,
                         const ValueMap* params, const PlannerOptions& options,
                         uint64_t* rand_state, const ast::Query& q) {
  Planner planner(catalog, std::move(graph), params, options, rand_state);
  GQL_ASSIGN_OR_RETURN(Plan plan, planner.PlanQuery(q));
  return ExecutePlan(&plan);
}

Result<std::string> ExplainQuery(GraphCatalog* catalog, GraphPtr graph,
                                 const ValueMap* params,
                                 const PlannerOptions& options,
                                 uint64_t* rand_state, const ast::Query& q) {
  Planner planner(catalog, std::move(graph), params, options, rand_state);
  GQL_ASSIGN_OR_RETURN(Plan plan, planner.PlanQuery(q));
  return ExplainPlan(*plan.root);
}

}  // namespace gqlite
