#include "src/plan/logical_plan.h"

#include <set>

namespace gqlite {

using namespace ast;  // NOLINT(build/namespaces)

bool PipelinePlannable(const Pattern& pattern) {
  std::set<std::string> var_length_vars;
  for (const auto& path : pattern.paths) {
    if (path.path_var) return false;  // path values need full traversal info
    for (const auto& hop : path.hops) {
      if (hop.rel.var && hop.rel.length) {
        // A repeated var-length variable requires list-equality joins the
        // pipeline does not implement.
        if (!var_length_vars.insert(*hop.rel.var).second) return false;
      }
    }
  }
  return true;
}

namespace {

void CollectVars(const Expr& e, std::set<std::string>* skip,
                 std::vector<std::string>* out) {
  switch (e.kind) {
    case Expr::Kind::kVariable: {
      const auto& v = static_cast<const VariableExpr&>(e);
      if (!skip->contains(v.name)) out->push_back(v.name);
      return;
    }
    case Expr::Kind::kProperty:
      CollectVars(*static_cast<const PropertyExpr&>(e).object, skip, out);
      return;
    case Expr::Kind::kLabelCheck:
      CollectVars(*static_cast<const LabelCheckExpr&>(e).object, skip, out);
      return;
    case Expr::Kind::kListLiteral:
      for (const auto& i : static_cast<const ListLiteralExpr&>(e).items) {
        CollectVars(*i, skip, out);
      }
      return;
    case Expr::Kind::kMapLiteral:
      for (const auto& [k, v] : static_cast<const MapLiteralExpr&>(e).entries) {
        CollectVars(*v, skip, out);
      }
      return;
    case Expr::Kind::kFunctionCall:
      for (const auto& a : static_cast<const FunctionCallExpr&>(e).args) {
        CollectVars(*a, skip, out);
      }
      return;
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      CollectVars(*b.lhs, skip, out);
      CollectVars(*b.rhs, skip, out);
      return;
    }
    case Expr::Kind::kUnary:
      CollectVars(*static_cast<const UnaryExpr&>(e).operand, skip, out);
      return;
    case Expr::Kind::kIndex: {
      const auto& i = static_cast<const IndexExpr&>(e);
      CollectVars(*i.object, skip, out);
      CollectVars(*i.index, skip, out);
      return;
    }
    case Expr::Kind::kSlice: {
      const auto& s = static_cast<const SliceExpr&>(e);
      CollectVars(*s.object, skip, out);
      if (s.from) CollectVars(*s.from, skip, out);
      if (s.to) CollectVars(*s.to, skip, out);
      return;
    }
    case Expr::Kind::kCase: {
      const auto& c = static_cast<const CaseExpr&>(e);
      if (c.operand) CollectVars(*c.operand, skip, out);
      for (const auto& [w, t] : c.whens) {
        CollectVars(*w, skip, out);
        CollectVars(*t, skip, out);
      }
      if (c.otherwise) CollectVars(*c.otherwise, skip, out);
      return;
    }
    case Expr::Kind::kListComprehension: {
      const auto& c = static_cast<const ListComprehensionExpr&>(e);
      CollectVars(*c.list, skip, out);
      bool added = skip->insert(c.var).second;
      if (c.where) CollectVars(*c.where, skip, out);
      if (c.project) CollectVars(*c.project, skip, out);
      if (added) skip->erase(c.var);
      return;
    }
    case Expr::Kind::kQuantifier: {
      const auto& q = static_cast<const QuantifierExpr&>(e);
      CollectVars(*q.list, skip, out);
      bool added = skip->insert(q.var).second;
      CollectVars(*q.where, skip, out);
      if (added) skip->erase(q.var);
      return;
    }
    case Expr::Kind::kReduce: {
      const auto& r = static_cast<const ReduceExpr&>(e);
      CollectVars(*r.init, skip, out);
      CollectVars(*r.list, skip, out);
      bool added_acc = skip->insert(r.acc).second;
      bool added_var = skip->insert(r.var).second;
      CollectVars(*r.body, skip, out);
      if (added_acc) skip->erase(r.acc);
      if (added_var) skip->erase(r.var);
      return;
    }
    case Expr::Kind::kPatternPredicate: {
      const auto& p = static_cast<const PatternPredicateExpr&>(e);
      for (const auto& path : p.pattern.paths) {
        if (path.start.var && !skip->contains(*path.start.var)) {
          out->push_back(*path.start.var);
        }
        for (const auto& hop : path.hops) {
          if (hop.rel.var && !skip->contains(*hop.rel.var)) {
            out->push_back(*hop.rel.var);
          }
          if (hop.node.var && !skip->contains(*hop.node.var)) {
            out->push_back(*hop.node.var);
          }
        }
      }
      return;
    }
    default:
      return;
  }
}

}  // namespace

std::vector<std::string> ExprVariables(const Expr& e) {
  std::vector<std::string> out;
  std::set<std::string> skip;
  CollectVars(e, &skip, &out);
  return out;
}

std::vector<const Expr*> SplitConjuncts(const Expr& e) {
  if (e.kind == Expr::Kind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(e);
    if (b.op == BinaryOp::kAnd) {
      std::vector<const Expr*> out = SplitConjuncts(*b.lhs);
      for (const Expr* c : SplitConjuncts(*b.rhs)) out.push_back(c);
      return out;
    }
  }
  return {&e};
}

}  // namespace gqlite
