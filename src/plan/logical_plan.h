#ifndef GQLITE_PLAN_LOGICAL_PLAN_H_
#define GQLITE_PLAN_LOGICAL_PLAN_H_

#include <string>
#include <vector>

#include "src/frontend/ast.h"

namespace gqlite {

/// Logical view of one path pattern for planning: the chain of node and
/// relationship positions with the columns assigned to them. Anonymous
/// positions get fresh hidden columns ("#nK"/"#rK") so relationship
/// isomorphism can be enforced across the whole MATCH tuple and label/
/// property constraints can be expressed as filters on real columns.
struct ChainPlan {
  struct NodePos {
    const ast::NodePattern* pattern = nullptr;
    std::string column;
    bool bound = false;  // already a column of the driving schema
  };
  struct RelPos {
    const ast::RelPattern* pattern = nullptr;
    std::string column;  // holds a relationship or (var-length) a list
    bool bound = false;  // rel variable bound by an earlier clause
  };
  std::vector<NodePos> nodes;  // size = hops + 1
  std::vector<RelPos> rels;    // size = hops
};

/// True if the pattern can be compiled to the scan/expand pipeline. Named
/// paths and repeated variable-length variables fall back to the
/// reference-matcher operator.
bool PipelinePlannable(const ast::Pattern& pattern);

/// Variables referenced by an expression (free variables, not counting
/// list-comprehension iteration variables). Used for filter placement.
std::vector<std::string> ExprVariables(const ast::Expr& e);

/// Splits a predicate into its top-level AND conjuncts.
std::vector<const ast::Expr*> SplitConjuncts(const ast::Expr& e);

}  // namespace gqlite

#endif  // GQLITE_PLAN_LOGICAL_PLAN_H_
