#include "src/plan/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gqlite {

namespace {

/// Equality selectivity for property keys with no NDV sketch.
constexpr double kPropertySelectivity = 0.1;
/// Cardinality floor: keeps products from collapsing to exact zero and
/// erasing later cost differences.
constexpr double kMinRows = 0.001;
/// Var-length estimates saturate here instead of overflowing; an
/// explicit user maximum is honored up to this ceiling.
constexpr double kSaturatedPaths = 1e15;
/// Per-hop iteration cap for very long explicit ranges; the geometric
/// tail beyond it is summed in closed form.
constexpr int64_t kVarLengthIterations = 256;

NodeConstraint FromPattern(const ast::NodePattern& np) {
  NodeConstraint nc;
  nc.labels = np.labels;
  for (const auto& kv : np.properties) nc.eq_props.push_back(kv.first);
  return nc;
}

/// The direction the traversal's source node sees: traversing a hop
/// right-to-left flips the pattern arrow.
ast::Direction EffectiveDirection(const ast::RelPattern& rp, bool reversed) {
  if (!reversed) return rp.direction;
  switch (rp.direction) {
    case ast::Direction::kRight:
      return ast::Direction::kLeft;
    case ast::Direction::kLeft:
      return ast::Direction::kRight;
    default:
      return ast::Direction::kBoth;
  }
}

}  // namespace

double CostModel::NodeSelectivity(const NodeConstraint& nc) const {
  double n = std::max(stats_.NodeCount(), 1.0);
  double sel = 1.0;
  // One formula for scans and filters alike: a product over label
  // fractions (not a min) and property equalities, so anchor ranking
  // stays consistent on multi-label patterns.
  for (const auto& label : nc.labels) {
    sel *= std::min(stats_.NodesWithLabel(label) / n, 1.0);
  }
  for (const auto& key : nc.eq_props) {
    double ndv = stats_.NodePropertyNdv(key);
    sel *= ndv >= 1 ? 1.0 / ndv : kPropertySelectivity;
  }
  return sel;
}

double CostModel::ScanCardinality(const NodeConstraint& nc) const {
  return std::max(stats_.NodeCount() * NodeSelectivity(nc), kMinRows);
}

double CostModel::ScanCardinality(const ast::NodePattern& np) const {
  return ScanCardinality(FromPattern(np));
}

double CostModel::NodeFilterSelectivity(const ast::NodePattern& np) const {
  return NodeSelectivity(FromPattern(np));
}

double CostModel::HopFan(const ast::RelPattern& rp, bool reversed,
                         const NodeConstraint& from) const {
  ast::Direction dir = EffectiveDirection(rp, reversed);
  auto fan_for = [&](std::string_view type, std::string_view label) {
    switch (dir) {
      case ast::Direction::kRight:
        return stats_.OutDegree(type, label);
      case ast::Direction::kLeft:
        return stats_.InDegree(type, label);
      default:
        return stats_.OutDegree(type, label) + stats_.InDegree(type, label);
    }
  };
  auto fan_with_label = [&](std::string_view label) {
    if (rp.types.empty()) return fan_for({}, label);
    double f = 0;
    for (const auto& t : rp.types) f += fan_for(t, label);
    return f;
  };
  if (from.labels.empty()) return fan_with_label({});
  // Condition on the source's lowest-fan label (the most specific
  // available distribution).
  double best = -1;
  for (const auto& l : from.labels) {
    double f = fan_with_label(l);
    if (best < 0 || f < best) best = f;
  }
  return best;
}

double CostModel::CondFan(const ast::RelPattern& rp, bool reversed) const {
  ast::Direction dir = EffectiveDirection(rp, reversed);
  auto cond_for = [&](std::string_view type) {
    switch (dir) {
      case ast::Direction::kRight:
        return stats_.CondOutDegree(type);
      case ast::Direction::kLeft:
        return stats_.CondInDegree(type);
      default:
        return stats_.CondOutDegree(type) + stats_.CondInDegree(type);
    }
  };
  if (rp.types.empty()) return cond_for({});
  double f = 0;
  for (const auto& t : rp.types) f += cond_for(t);
  return f;
}

double CostModel::ExpandFactor(const ast::RelPattern& rp,
                               bool reversed) const {
  return ExpandFactor(rp, reversed, NodeConstraint{});
}

double CostModel::ExpandFactor(const ast::RelPattern& rp, bool reversed,
                               const NodeConstraint& from) const {
  double prop_sel = 1.0;
  for (const auto& kv : rp.properties) {
    double ndv = stats_.RelPropertyNdv(kv.first);
    prop_sel *= ndv >= 1 ? 1.0 / ndv : kPropertySelectivity;
  }
  double first = HopFan(rp, reversed, from) * prop_sel;
  if (!rp.length) return std::max(first, 0.01);

  // Variable length: sum of expected path counts over the admissible
  // lengths. The first level fans out from the (possibly
  // label-constrained) source; deeper levels fan from frontier nodes
  // KNOWN to participate in the relationship type, so they use the
  // conditional fan. An explicit user maximum is honored (estimates
  // saturate at kSaturatedPaths); an unbounded `*lo..` uses a lo+8
  // default horizon.
  int64_t lo = std::max<int64_t>(rp.length->min.value_or(1), 0);
  int64_t hi = rp.length->max.value_or(lo + 8);
  if (hi < lo) return 0.01;
  double cond = std::max(CondFan(rp, reversed) * prop_sel, 0.01);
  double total = 0;
  double f = 1;  // expected paths of the current length
  int64_t len = 0;
  for (; len <= hi && len <= kVarLengthIterations; ++len) {
    if (len >= lo) total += f;
    if (total >= kSaturatedPaths) return kSaturatedPaths;
    f *= len == 0 ? std::max(first, 0.01) : cond;
    f = std::min(f, kSaturatedPaths);
  }
  if (len <= hi && len > lo) {
    // Geometric tail of the remaining lengths in closed form.
    double remaining = static_cast<double>(hi - len + 1);
    double tail = std::abs(cond - 1.0) < 1e-9
                      ? f * remaining
                      : f * (std::pow(cond, remaining) - 1.0) / (cond - 1.0);
    total += tail;
  }
  return std::min(std::max(total, 0.1), kSaturatedPaths);
}

double CostModel::AdjacencyScanFan(const ast::RelPattern& rp, bool reversed,
                                   const NodeConstraint& from) const {
  // ExpandOp walks the source's whole adjacency list in the scanned
  // direction(s) and filters by type — the scan cost is the UNTYPED fan.
  ast::Direction dir = EffectiveDirection(rp, reversed);
  auto fan = [&](std::string_view label) {
    switch (dir) {
      case ast::Direction::kRight:
        return stats_.OutDegree({}, label);
      case ast::Direction::kLeft:
        return stats_.InDegree({}, label);
      default:
        return stats_.OutDegree({}, label) + stats_.InDegree({}, label);
    }
  };
  if (from.labels.empty()) return fan({});
  double best = -1;
  for (const auto& l : from.labels) {
    double f = fan(l);
    if (best < 0 || f < best) best = f;
  }
  return best;
}

CostModel::ChainDecision CostModel::DecideChain(
    const ast::PathPattern& path, const std::vector<NodeConstraint>& nodes,
    const std::vector<bool>& bound, ExpandStrategy strategy,
    DirectionPolicy direction) const {
  const size_t n = path.hops.size() + 1;
  const size_t hops = path.hops.size();
  const double rel_count = stats_.RelCount();
  const double node_n = std::max(stats_.NodeCount(), 1.0);
  const double inf = std::numeric_limits<double>::infinity();

  // Directional per-hop fans and adjacency scan widths, computed once.
  std::vector<double> fwd_fan(hops), rev_fan(hops);
  std::vector<double> fwd_scan(hops), rev_scan(hops);
  for (size_t h = 0; h < hops; ++h) {
    fwd_fan[h] = ExpandFactor(path.hops[h].rel, false, nodes[h]);
    rev_fan[h] = ExpandFactor(path.hops[h].rel, true, nodes[h + 1]);
    fwd_scan[h] = AdjacencyScanFan(path.hops[h].rel, false, nodes[h]);
    rev_scan[h] = AdjacencyScanFan(path.hops[h].rel, true, nodes[h + 1]);
  }

  // Row multiplier for reaching node `i` (rightward uses hop i-1
  // forward, leftward uses hop i reversed): the fan into the node times
  // its residual selectivity — or, for an already-bound node, the
  // ExpandInto collapse (chance the reached endpoint IS the bound one).
  auto reach_mult = [&](size_t i, bool to_right) {
    double fan = to_right ? fwd_fan[i - 1] : rev_fan[i];
    double sel = bound[i] ? 1.0 / node_n : NodeSelectivity(nodes[i]);
    return fan * sel;
  };

  // Physical-operator cost of one expand step. Adjacency Expand touches
  // rows_in * scan_fan adjacency entries and emits rows_out; the hash
  // join builds over the WHOLE relationship store at Open, then probes.
  // Var-length hops always run the adjacency frontier BFS.
  auto step_cost = [&](double rows_in, size_t hop, bool to_right,
                       double rows_out, bool* hash_join) {
    double scan = to_right ? fwd_scan[hop] : rev_scan[hop];
    double adj = rows_in * scan + rows_out;
    *hash_join = false;
    if (path.hops[hop].rel.length ||
        strategy == ExpandStrategy::kAdjacency) {
      return adj;
    }
    double join = rel_count + rows_in + rows_out;
    if (strategy == ExpandStrategy::kHashJoin) {
      *hash_join = true;
      return join;
    }
    *hash_join = join < adj;
    return std::min(adj, join);
  };

  size_t a_lo = 0;
  size_t a_hi = n - 1;
  if (direction == DirectionPolicy::kForceRight) a_hi = 0;
  if (direction == DirectionPolicy::kForceLeft) a_lo = n - 1;

  ChainDecision best;
  bool have_best = false;
  std::vector<std::vector<double>> card(n, std::vector<double>(n, 0));
  std::vector<std::vector<double>> cost(n, std::vector<double>(n, inf));
  std::vector<std::vector<char>> went_right(n, std::vector<char>(n, 0));
  std::vector<std::vector<char>> used_join(n, std::vector<char>(n, 0));

  for (size_t a = a_lo; a <= a_hi; ++a) {
    double anchor_scan = 0;  // rows the scan operator itself emits
    double anchor_rows = 1;  // rows after the anchor's residual filters
    if (!bound[a]) {
      anchor_scan = stats_.NodeCount();
      for (const auto& l : nodes[a].labels) {
        anchor_scan = std::min(anchor_scan, stats_.NodesWithLabel(l));
      }
      anchor_rows = ScanCardinality(nodes[a]);
    }
    card[a][a] = anchor_rows;
    cost[a][a] = anchor_scan + anchor_rows;

    // Interval DP: state = the contiguous expanded interval [l..r]
    // containing the anchor; each transition extends it one hop.
    for (size_t span = 1; span < n; ++span) {
      for (size_t l = 0; l + span < n; ++l) {
        size_t r = l + span;
        if (a < l || a > r) continue;
        double c = r > a ? card[l][r - 1] * reach_mult(r, true)
                         : card[l + 1][r] * reach_mult(l, false);
        c = std::max(c, kMinRows);
        card[l][r] = c;
        double best_total = inf;
        char chose_right = 0;
        char chose_join = 0;
        if (r > a) {
          bool hj = false;
          double total =
              cost[l][r - 1] + step_cost(card[l][r - 1], r - 1, true, c, &hj);
          if (total < best_total) {
            best_total = total;
            chose_right = 1;
            chose_join = hj ? 1 : 0;
          }
        }
        if (l < a) {
          bool hj = false;
          double total =
              cost[l + 1][r] + step_cost(card[l + 1][r], l, false, c, &hj);
          if (total < best_total) {
            best_total = total;
            chose_right = 0;
            chose_join = hj ? 1 : 0;
          }
        }
        cost[l][r] = best_total;
        went_right[l][r] = chose_right;
        used_join[l][r] = chose_join;
      }
    }

    if (have_best && cost[0][n - 1] >= best.cost) continue;
    // Backtrack the chosen interleaving (collected tip-first, reversed
    // into emission order).
    std::vector<ChainStep> steps;
    size_t l = 0;
    size_t r = n - 1;
    while (l < a || r > a) {
      ChainStep s;
      s.out_rows = card[l][r];
      s.hash_join = used_join[l][r] != 0;
      if (went_right[l][r] != 0) {
        s.hop = r - 1;
        s.to_right = true;
        --r;
      } else {
        s.hop = l;
        s.to_right = false;
        ++l;
      }
      steps.push_back(s);
    }
    std::reverse(steps.begin(), steps.end());
    best.anchor = a;
    best.anchor_rows = card[a][a];
    best.cost = cost[0][n - 1];
    best.steps = std::move(steps);
    have_best = true;
  }
  return best;
}

}  // namespace gqlite
