#include "src/plan/cost_model.h"

#include <algorithm>

namespace gqlite {

namespace {
constexpr double kPropertySelectivity = 0.1;
constexpr double kMinCardinality = 1.0;
}  // namespace

double CostModel::ScanCardinality(const ast::NodePattern& np) const {
  double card = stats_.NodeCount();
  for (const auto& label : np.labels) {
    card = std::min(card, stats_.NodesWithLabel(label));
  }
  for (size_t i = 0; i < np.properties.size(); ++i) {
    card *= kPropertySelectivity;
  }
  return std::max(card, kMinCardinality);
}

double CostModel::ExpandFactor(const ast::RelPattern& rp,
                               bool reversed) const {
  (void)reversed;  // degree statistics are symmetric in this model
  double factor = 0;
  if (rp.types.empty()) {
    factor = stats_.AvgDegree("");
  } else {
    for (const auto& t : rp.types) factor += stats_.AvgDegree(t);
  }
  if (rp.direction == ast::Direction::kBoth) factor *= 2;
  for (size_t i = 0; i < rp.properties.size(); ++i) {
    factor *= kPropertySelectivity;
  }
  if (rp.length) {
    // Variable-length amplification: sum of factor^len over the range,
    // truncated at a small horizon to keep estimates finite.
    int64_t lo = rp.length->min.value_or(1);
    int64_t hi = rp.length->max.value_or(lo + 4);
    hi = std::min(hi, lo + 8);
    double total = 0;
    double f = 1;
    for (int64_t len = 0; len <= hi; ++len) {
      if (len >= lo) total += f;
      f *= std::max(factor, 0.1);
    }
    return std::max(total, 0.1);
  }
  return std::max(factor, 0.01);
}

double CostModel::NodeFilterSelectivity(const ast::NodePattern& np) const {
  double n = std::max(stats_.NodeCount(), 1.0);
  double sel = 1.0;
  for (const auto& label : np.labels) {
    sel *= std::max(stats_.NodesWithLabel(label), kMinCardinality) / n;
  }
  for (size_t i = 0; i < np.properties.size(); ++i) {
    sel *= kPropertySelectivity;
  }
  return sel;
}

double CostModel::ChainCost(const ast::PathPattern& path, size_t anchor,
                            const std::vector<bool>& node_bound) const {
  size_t n = path.hops.size() + 1;
  auto node_at = [&](size_t i) -> const ast::NodePattern& {
    return i == 0 ? path.start : path.hops[i - 1].node;
  };
  double card = node_bound[anchor] ? 1.0 : ScanCardinality(node_at(anchor));
  double cost = card;
  // Expand right then left (the executed order differs per mode but the
  // estimate is order-insensitive for chains under this model).
  for (size_t i = anchor; i + 1 < n; ++i) {
    card *= ExpandFactor(path.hops[i].rel, /*reversed=*/false);
    card *= NodeFilterSelectivity(node_at(i + 1));
    card = std::max(card, kMinCardinality * 0.001);
    cost += card;
  }
  for (size_t i = anchor; i > 0; --i) {
    card *= ExpandFactor(path.hops[i - 1].rel, /*reversed=*/true);
    card *= NodeFilterSelectivity(node_at(i - 1));
    card = std::max(card, kMinCardinality * 0.001);
    cost += card;
  }
  return cost;
}

}  // namespace gqlite
