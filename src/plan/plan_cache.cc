#include "src/plan/plan_cache.h"

namespace gqlite {

PlanCache::Entry* PlanCache::Lookup(const std::string& key,
                                    uint64_t catalog_version) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  Entry& e = *it->second;
  bool valid = e.catalog_version == catalog_version;
  for (const auto& [graph, version] : e.graph_guards) {
    if (graph->stats_version() != version) {
      valid = false;
      break;
    }
  }
  if (!valid) {
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.invalidations;
    ++stats_.misses;
    return nullptr;
  }
  // Promote to most-recently-used.
  lru_.splice(lru_.begin(), lru_, it->second);
  it->second = lru_.begin();
  ++stats_.hits;
  return &lru_.front();
}

PlanCache::Entry* PlanCache::Insert(
    std::string key, PreparedPtr prepared, Plan plan, uint64_t catalog_version,
    std::vector<std::pair<std::shared_ptr<const PropertyGraph>, uint64_t>>
        graph_guards) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{std::move(key), std::move(prepared), std::move(plan),
                        catalog_version, std::move(graph_guards)});
  index_.emplace(lru_.front().key, lru_.begin());
  EvictToCapacity();
  return lru_.empty() ? nullptr : &lru_.front();
}

void PlanCache::SweepStale(uint64_t catalog_version) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    bool valid = it->catalog_version == catalog_version;
    for (const auto& [graph, version] : it->graph_guards) {
      if (!valid) break;
      valid = graph->stats_version() == version;
    }
    if (valid) {
      ++it;
    } else {
      index_.erase(it->key);
      it = lru_.erase(it);
      ++stats_.invalidations;
    }
  }
}

void PlanCache::Clear() {
  lru_.clear();
  index_.clear();
}

void PlanCache::set_capacity(size_t capacity) {
  capacity_ = capacity;
  EvictToCapacity();
}

void PlanCache::EvictToCapacity() {
  while (index_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

}  // namespace gqlite
