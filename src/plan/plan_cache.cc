#include "src/plan/plan_cache.h"

namespace gqlite {

bool PlanCache::Valid(const Entry& e, uint64_t catalog_version,
                      uint64_t default_stats_version,
                      uint64_t default_data_version) {
  if (e.catalog_version != catalog_version) return false;
  for (size_t i = 0; i < e.graph_guards.size(); ++i) {
    // Default-graph contexts are rebound to the executing snapshot, so
    // they validate against ITS versions — never the live graph's, which
    // a concurrent writer may be moving.
    bool is_default = i < e.default_ctx.size() && e.default_ctx[i];
    const GraphGuard& g = e.graph_guards[i];
    uint64_t stats = is_default ? default_stats_version
                                : g.graph->stats_version();
    if (stats != g.stats_version) return false;
    // Structure unchanged — but enough pure property writes move the NDV
    // sketches (and the equality selectivities baked into a
    // cost-sensitive plan) to make the cached choice wrong.
    uint64_t data = is_default ? default_data_version
                               : g.graph->data_version();
    uint64_t drift = data >= g.data_version ? data - g.data_version
                                            : g.data_version - data;
    if (drift >= kDataDriftThreshold) return false;
  }
  return true;
}

PlanCache::EntryPtr PlanCache::Acquire(const std::string& key,
                                       uint64_t catalog_version,
                                       uint64_t default_stats_version,
                                       uint64_t default_data_version,
                                       bool* busy) {
  MutexLock lock(&mu_);
  if (busy != nullptr) *busy = false;
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  EntryPtr e = *it->second;
  if (!Valid(*e, catalog_version, default_stats_version,
             default_data_version)) {
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.invalidations;
    ++stats_.misses;
    return nullptr;
  }
  if (e->in_use) {
    // Another session is mid-execution on this plan's (stateful)
    // operator tree. Caller plans fresh and runs uncached.
    if (busy != nullptr) *busy = true;
    ++stats_.misses;
    return nullptr;
  }
  // Promote to most-recently-used.
  lru_.splice(lru_.begin(), lru_, it->second);
  it->second = lru_.begin();
  e->in_use = true;
  ++stats_.hits;
  return e;
}

PlanCache::EntryPtr PlanCache::InsertAcquire(
    std::string key, PreparedPtr prepared, Plan plan, uint64_t catalog_version,
    std::vector<GraphGuard> graph_guards, std::vector<bool> default_ctx) {
  MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Displaced entry may still be pinned by an executor; dropping it
    // from the index is enough — the executor's shared_ptr owns it.
    lru_.erase(it->second);
    index_.erase(it);
  }
  auto e = std::make_shared<Entry>();
  e->key = std::move(key);
  e->prepared = std::move(prepared);
  e->plan = std::move(plan);
  e->catalog_version = catalog_version;
  e->graph_guards = std::move(graph_guards);
  e->default_ctx = std::move(default_ctx);
  e->in_use = true;
  lru_.push_front(e);
  index_.emplace(e->key, lru_.begin());
  EvictToCapacity();
  return e;
}

void PlanCache::Release(const EntryPtr& entry) {
  if (entry == nullptr) return;
  MutexLock lock(&mu_);
  entry->in_use = false;
}

void PlanCache::SweepStale(uint64_t catalog_version,
                           uint64_t default_stats_version,
                           uint64_t default_data_version) {
  MutexLock lock(&mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (Valid(**it, catalog_version, default_stats_version,
              default_data_version)) {
      ++it;
    } else {
      index_.erase((*it)->key);
      it = lru_.erase(it);
      ++stats_.invalidations;
    }
  }
}

void PlanCache::Clear() {
  MutexLock lock(&mu_);
  lru_.clear();
  index_.clear();
}

void PlanCache::set_capacity(size_t capacity) {
  MutexLock lock(&mu_);
  capacity_ = capacity;
  EvictToCapacity();
}

void PlanCache::EvictToCapacity() {
  while (index_.size() > capacity_) {
    index_.erase(lru_.back()->key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

}  // namespace gqlite
