#include "src/plan/planner.h"

#include <algorithm>
#include <set>

#include "src/exec/parallel.h"
#include "src/frontend/analyzer.h"
#include "src/plan/logical_plan.h"

namespace gqlite {

using namespace ast;  // NOLINT(build/namespaces)

/// Mutable state while building one MATCH pipeline: the operator tip, the
/// pending WHERE conjuncts, and the relationship columns bound so far in
/// this clause (relationship-isomorphism scope).
struct Planner::PipelineState {
  OperatorPtr tip;
  std::vector<const Expr*> pending_filters;
  std::vector<int> clause_rel_cols;
  const ast::MatchClause* clause = nullptr;

  bool Bound(const std::string& name) const {
    const auto& s = tip->schema();
    return std::find(s.begin(), s.end(), name) != s.end();
  }
  int ColIndex(const std::string& name) const {
    const auto& s = tip->schema();
    for (size_t i = 0; i < s.size(); ++i) {
      if (s[i] == name) return static_cast<int>(i);
    }
    return -1;
  }
};

ExecContext* Planner::MakeContext(Plan* plan, GraphPtr graph) {
  auto ctx = std::make_unique<ExecContext>();
  ExecContext* raw = ctx.get();
  ctx->graph = graph.get();
  ctx->graph_owner = std::move(graph);
  ctx->match = options_.match;
  ctx->batch_size = options_.batch_size;
  ctx->eval.graph = raw->graph;
  ctx->eval.parameters = params_;
  ctx->eval.rand_state = rand_state_;
  MatchOptions match = options_.match;
  // Capture the context (stable: heap-allocated, owned by the plan) and
  // read parameters/rand_state through it at call time — the engine
  // rebinds them on every execution of a cached plan.
  ctx->eval.pattern_predicate = [raw, match](
                                    const Pattern& p,
                                    const Environment& env) -> Result<bool> {
    EvalContext inner;
    inner.graph = raw->graph;
    inner.parameters = raw->eval.parameters;
    inner.rand_state = raw->eval.rand_state;
    return ExistsMatch(p, *raw->graph, env, inner, match);
  };
  plan->contexts.push_back(std::move(ctx));
  return plan->contexts.back().get();
}

Status Planner::BuildParallelInstances(const Query& q, Plan* plan) {
  if (options_.num_threads <= 1) return Status::OK();
  ParallelCandidate first = AnalyzeParallelCandidate(plan->root.get());
  if (!first.ok) {
    plan->parallel.reason = std::move(first.reason);
    return Status::OK();
  }
  if (QueryCallsNondeterministicFunction(q)) {
    plan->parallel.reason = "rand() requires the serial runtime";
    return Status::OK();
  }
  plan->parallel.merge_shape = std::move(first.merge_shape);
  plan->parallel.projections.push_back(first.projection);
  plan->parallel.scans.push_back(first.scan);
  // One structurally identical pipeline instance per extra worker —
  // operators are stateful single-use pipelines, so workers cannot share
  // them. Planning is deterministic over an unchanged graph; only the
  // fresh-column counter differs (hidden '#' names), which the merge
  // concatenates positionally.
  for (size_t i = 1; i < options_.num_threads; ++i) {
    GQL_ASSIGN_OR_RETURN(OperatorPtr instance, PlanSingle(q.parts[0], plan));
    ParallelCandidate c = AnalyzeParallelCandidate(instance.get());
    if (!c.ok) {
      return Status::Internal("parallel instance diverged from the plan: " +
                              c.reason);
    }
    if (c.merge_shape != plan->parallel.merge_shape) {
      return Status::Internal(
          "parallel instance diverged from the plan: merge shape '" +
          c.merge_shape + "'");
    }
    plan->parallel.projections.push_back(c.projection);
    plan->parallel.scans.push_back(c.scan);
    plan->extra_roots.push_back(std::move(instance));
  }
  plan->parallel.safe = true;
  return Status::OK();
}

Result<Plan> Planner::PlanQuery(const Query& q) {
  Plan plan;
  if (q.parts.size() == 1) {
    GQL_ASSIGN_OR_RETURN(plan.root, PlanSingle(q.parts[0], &plan));
    GQL_RETURN_IF_ERROR(BuildParallelInstances(q, &plan));
    return plan;
  }
  if (options_.num_threads > 1) {
    plan.parallel.reason = "UNION materializes whole sub-plans";
  }
  std::vector<OperatorPtr> parts;
  for (const auto& part : q.parts) {
    GQL_ASSIGN_OR_RETURN(OperatorPtr p, PlanSingle(part, &plan));
    parts.push_back(std::move(p));
  }
  // Mixed UNION/UNION ALL: fold left. ALL appends; DISTINCT deduplicates
  // the accumulated result (mirrors the interpreter's left fold).
  std::vector<std::string> schema = parts[0]->schema();
  OperatorPtr acc = std::move(parts[0]);
  for (size_t i = 1; i < parts.size(); ++i) {
    std::vector<OperatorPtr> two;
    two.push_back(std::move(acc));
    two.push_back(std::move(parts[i]));
    acc = std::make_unique<UnionOp>(std::move(two), q.union_all[i - 1],
                                    schema, options_.batch_size);
  }
  plan.root = std::move(acc);
  return plan;
}

Result<OperatorPtr> Planner::PlanSingle(const SingleQuery& q, Plan* plan) {
  GraphPtr saved_graph = graph_;
  ExecContext* ctx = MakeContext(plan, graph_);
  // Unit driving table (Figure 6).
  static const Table* kUnit = new Table(Table::Unit());
  OperatorPtr tip = std::make_unique<ArgumentOp>(std::vector<std::string>{},
                                                 kUnit);
  Status st = Status::OK();
  for (const auto& clause : q.clauses) {
    switch (clause->kind) {
      case Clause::Kind::kMatch: {
        auto r = PlanMatch(static_cast<const MatchClause&>(*clause),
                           std::move(tip), plan, ctx);
        if (!r.ok()) {
          st = r.status();
          break;
        }
        tip = std::move(r).value();
        break;
      }
      case Clause::Kind::kWith: {
        const auto& w = static_cast<const WithClause&>(*clause);
        std::vector<std::string> schema;
        if (w.body.star) {
          schema = tip->schema();
          // Hidden planner columns are internal; drop them at projections.
          schema.erase(std::remove_if(schema.begin(), schema.end(),
                                      [](const std::string& s) {
                                        return !s.empty() && s[0] == '#';
                                      }),
                       schema.end());
        }
        for (const auto& item : w.body.items) {
          schema.push_back(item.alias ? *item.alias
                                      : DerivedColumnName(*item.expr));
        }
        tip = std::make_unique<ProjectionOp>(std::move(tip), ctx, &w.body,
                                             w.where.get(), schema);
        break;
      }
      case Clause::Kind::kReturn: {
        const auto& r = static_cast<const ReturnClause&>(*clause);
        std::vector<std::string> schema;
        if (r.body.star) {
          schema = tip->schema();
          schema.erase(std::remove_if(schema.begin(), schema.end(),
                                      [](const std::string& s) {
                                        return !s.empty() && s[0] == '#';
                                      }),
                       schema.end());
        }
        for (const auto& item : r.body.items) {
          schema.push_back(item.alias ? *item.alias
                                      : DerivedColumnName(*item.expr));
        }
        tip = std::make_unique<ProjectionOp>(std::move(tip), ctx, &r.body,
                                             nullptr, schema);
        break;
      }
      case Clause::Kind::kUnwind: {
        const auto& u = static_cast<const UnwindClause&>(*clause);
        tip = std::make_unique<UnwindOp>(std::move(tip), ctx, u.expr.get(),
                                         u.var);
        break;
      }
      case Clause::Kind::kFromGraph: {
        const auto& f = static_cast<const FromGraphClause&>(*clause);
        GraphPtr g;
        // The catalog locks internally; FROM GRAPH resolution is its only
        // planner touchpoint.
        if (f.url) {
          auto rg = catalog_.ResolveUrl(*f.url);
          if (!rg.ok()) {
            st = rg.status();
            break;
          }
          g = *rg;
          catalog_.RegisterGraph(f.name, g);
        } else {
          auto rg = catalog_.Resolve(f.name);
          if (!rg.ok()) {
            st = rg.status();
            break;
          }
          g = *rg;
        }
        graph_ = g;
        ctx = MakeContext(plan, g);
        break;
      }
      default:
        st = Status::Unimplemented(
            "the Volcano runtime only executes read queries; updating "
            "clauses and RETURN GRAPH run on the interpreter");
        break;
    }
    GQL_RETURN_IF_ERROR(st);
  }
  graph_ = saved_graph;

  // RETURN * in the runtime keeps the projection of visible columns; but a
  // RETURN-less read query cannot reach here (analyzer guarantees).
  return tip;
}

Result<OperatorPtr> Planner::PlanMatch(const MatchClause& m,
                                       OperatorPtr input, Plan* plan,
                                       ExecContext* ctx) {
  std::vector<std::string> input_schema = input->schema();
  auto argument =
      std::make_unique<ArgumentOp>(input_schema, /*source=*/nullptr);
  ArgumentOp* argument_ptr = argument.get();

  PipelineState state;
  state.tip = std::move(argument);
  state.clause = &m;
  if (m.where) state.pending_filters = SplitConjuncts(*m.where);

  PlaceReadyFilters(&state, ctx, nullptr, nullptr, nullptr);

  // A variable-length relationship variable bound by an earlier clause
  // requires a list-equality join the pipeline does not implement.
  bool bound_varlength = false;
  for (const auto& path : m.pattern.paths) {
    for (const auto& hop : path.hops) {
      if (hop.rel.var && hop.rel.length &&
          std::find(input_schema.begin(), input_schema.end(),
                    *hop.rel.var) != input_schema.end()) {
        bound_varlength = true;
      }
    }
  }

  // Node isomorphism (§8) constrains node repetition *per matched path*,
  // including variable-length interior nodes — state that individual
  // Expand operators cannot see. Those patterns run on the reference
  // matcher operator.
  bool needs_matcher =
      options_.match.morphism == Morphism::kNodeIsomorphism;

  if (!PipelinePlannable(m.pattern) || bound_varlength || needs_matcher) {
    // Fallback: reference matcher as an operator.
    std::vector<std::string> new_cols;
    {
      std::set<std::string> bound(input_schema.begin(), input_schema.end());
      for (const std::string& v : PatternVariables(m.pattern)) {
        if (!bound.contains(v)) new_cols.push_back(v);
      }
    }
    state.tip = std::make_unique<MatcherOp>(std::move(state.tip), ctx,
                                            &m.pattern, new_cols);
    PlaceReadyFilters(&state, ctx, nullptr, nullptr, nullptr);
  } else {
    // PlanChain places ready filters itself, after the anchor and after
    // every expand step (pushdown) — including cross-path conjuncts that
    // become ready at the end of a later chain.
    for (const auto& path : m.pattern.paths) {
      GQL_RETURN_IF_ERROR(PlanChain(path, &state, plan, ctx));
    }
  }
  // Any conjunct still pending references unbound variables — the
  // analyzer should have rejected it; fail loudly rather than silently
  // dropping a predicate.
  if (!state.pending_filters.empty()) {
    return Status::PlanError("WHERE predicate references unbound variables");
  }

  std::vector<std::string> out_schema = state.tip->schema();
  // The Apply's output estimate is its RHS chain's (exact for the common
  // unit driving table); the Argument replays one driving row at a time.
  double chain_est = state.tip->est_rows();
  argument_ptr->set_est_rows(1.0);
  auto apply = std::make_unique<ApplyOp>(std::move(input),
                                         std::move(state.tip), argument_ptr,
                                         m.optional, out_schema);
  if (chain_est >= 0) apply->set_est_rows(chain_est);
  return OperatorPtr(std::move(apply));
}

namespace {

/// Estimated selectivity of one placed filter for the EXPLAIN `est.
/// rows` annotations — the same per-constraint factors the cost model
/// uses: label checks multiply label fractions, property equalities
/// against a variable-free expression use 1/NDV from the snapshot's
/// sketches, anything else a fixed 0.25.
double FilterSelectivity(const Expr& e, const GraphStatistics& stats,
                         const std::set<std::string>& rel_vars) {
  double n = std::max<double>(stats.NodeCount(), 1.0);
  if (e.kind == Expr::Kind::kLabelCheck) {
    const auto& lc = static_cast<const LabelCheckExpr&>(e);
    double sel = 1.0;
    for (const auto& l : lc.labels) {
      sel *= std::min(static_cast<double>(stats.NodesWithLabel(l)) / n, 1.0);
    }
    return sel;
  }
  if (e.kind == Expr::Kind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(e);
    if (b.op == BinaryOp::kEq) {
      const Expr* prop = nullptr;
      const Expr* other = nullptr;
      if (b.lhs->kind == Expr::Kind::kProperty) {
        prop = b.lhs.get();
        other = b.rhs.get();
      } else if (b.rhs->kind == Expr::Kind::kProperty) {
        prop = b.rhs.get();
        other = b.lhs.get();
      }
      if (prop != nullptr && ExprVariables(*other).empty()) {
        const auto& pe = static_cast<const PropertyExpr&>(*prop);
        if (pe.object->kind == Expr::Kind::kVariable) {
          const auto& var = static_cast<const VariableExpr&>(*pe.object);
          double ndv = rel_vars.contains(var.name)
                           ? stats.RelPropertyNdv(pe.key)
                           : stats.NodePropertyNdv(pe.key);
          return ndv >= 1.0 ? 1.0 / ndv : 0.1;
        }
      }
    }
  }
  return 0.25;
}

/// Folds WHERE-visible constraints into the per-position chain
/// constraints so anchor/direction choice sees them *before* the
/// filters are placed: top-level `n:Label` conjuncts add labels (also
/// making them eligible for the label-index scan), top-level
/// `n.k = <variable-free expr>` conjuncts add equality keys.
void AugmentFromWhere(const std::vector<const Expr*>& conjuncts,
                      const std::vector<std::string>& node_cols,
                      std::vector<NodeConstraint>* constraints) {
  auto each_position = [&](const std::string& var, auto&& fn) {
    for (size_t i = 0; i < node_cols.size(); ++i) {
      if (node_cols[i] == var) fn((*constraints)[i]);
    }
  };
  for (const Expr* e : conjuncts) {
    if (e->kind == Expr::Kind::kLabelCheck) {
      const auto& lc = static_cast<const LabelCheckExpr&>(*e);
      if (lc.object->kind != Expr::Kind::kVariable) continue;
      const auto& var = static_cast<const VariableExpr&>(*lc.object);
      each_position(var.name, [&](NodeConstraint& nc) {
        for (const auto& l : lc.labels) {
          if (std::find(nc.labels.begin(), nc.labels.end(), l) ==
              nc.labels.end()) {
            nc.labels.push_back(l);
          }
        }
      });
      continue;
    }
    if (e->kind != Expr::Kind::kBinary) continue;
    const auto& b = static_cast<const BinaryExpr&>(*e);
    if (b.op != BinaryOp::kEq) continue;
    const Expr* prop = nullptr;
    const Expr* other = nullptr;
    if (b.lhs->kind == Expr::Kind::kProperty) {
      prop = b.lhs.get();
      other = b.rhs.get();
    } else if (b.rhs->kind == Expr::Kind::kProperty) {
      prop = b.rhs.get();
      other = b.lhs.get();
    }
    if (prop == nullptr || !ExprVariables(*other).empty()) continue;
    const auto& pe = static_cast<const PropertyExpr&>(*prop);
    if (pe.object->kind != Expr::Kind::kVariable) continue;
    const auto& var = static_cast<const VariableExpr&>(*pe.object);
    each_position(var.name,
                  [&](NodeConstraint& nc) { nc.eq_props.push_back(pe.key); });
  }
}

/// Greedy chain decision (kGreedy, and the kLeftToRight baseline with a
/// forced anchor): anchor at a bound node or the cheapest scan, then
/// expand whichever frontier has the smaller fan, choosing the per-hop
/// physical operator by comparing the adjacency scan against the
/// relationship-store hash-join build (unless `strategy` forces a side).
CostModel::ChainDecision GreedyDecision(
    const PathPattern& path, const std::vector<NodeConstraint>& nodes,
    const std::vector<bool>& bound, ExpandStrategy strategy,
    DirectionPolicy direction, const CostModel& cost,
    const GraphStatistics& stats) {
  size_t n = nodes.size();
  CostModel::ChainDecision d;
  if (direction == DirectionPolicy::kForceRight) {
    d.anchor = 0;
  } else if (direction == DirectionPolicy::kForceLeft) {
    d.anchor = n - 1;
  } else {
    double best = -1;
    for (size_t i = 0; i < n; ++i) {
      double c = bound[i] ? 0.0 : cost.ScanCardinality(nodes[i]);
      if (best < 0 || c < best) {
        best = c;
        d.anchor = i;
      }
    }
  }
  double node_n = std::max<double>(stats.NodeCount(), 1.0);
  double rows = bound[d.anchor]
                    ? 1.0
                    : std::max(cost.ScanCardinality(nodes[d.anchor]), 0.001);
  d.anchor_rows = rows;
  d.cost = rows;
  size_t right = d.anchor;
  size_t left = d.anchor;
  while (right + 1 < n || left > 0) {
    bool can_right = right + 1 < n;
    bool can_left = left > 0;
    bool go_right;
    if (can_right && can_left) {
      double fr =
          cost.ExpandFactor(path.hops[right].rel, false, nodes[right]);
      double fl =
          cost.ExpandFactor(path.hops[left - 1].rel, true, nodes[left]);
      go_right = fr <= fl;
    } else {
      go_right = can_right;
    }
    CostModel::ChainStep s;
    s.hop = go_right ? right : left - 1;
    s.to_right = go_right;
    const RelPattern& rp = path.hops[s.hop].rel;
    size_t from_i = go_right ? right : left;
    size_t to_i = go_right ? right + 1 : left - 1;
    double fan = cost.ExpandFactor(rp, !go_right, nodes[from_i]);
    double out = bound[to_i] ? rows * fan / node_n
                             : rows * fan * cost.NodeSelectivity(nodes[to_i]);
    out = std::max(out, 0.001);
    double adj =
        rows * cost.AdjacencyScanFan(rp, !go_right, nodes[from_i]) + out;
    double join = static_cast<double>(stats.RelCount()) + rows + out;
    if (rp.length) {
      s.hash_join = false;  // var-length is always the adjacency walk
      d.cost += adj;
    } else {
      switch (strategy) {
        case ExpandStrategy::kAdjacency:
          s.hash_join = false;
          d.cost += adj;
          break;
        case ExpandStrategy::kHashJoin:
          s.hash_join = true;
          d.cost += join;
          break;
        case ExpandStrategy::kCost:
          s.hash_join = join < adj;
          d.cost += s.hash_join ? join : adj;
          break;
      }
    }
    s.out_rows = out;
    d.steps.push_back(s);
    rows = out;
    if (go_right) {
      ++right;
    } else {
      --left;
    }
  }
  return d;
}

}  // namespace

void Planner::PlaceReadyFilters(PipelineState* state, ExecContext* ctx,
                                const GraphStatistics* stats,
                                const std::set<std::string>* rel_vars,
                                double* est) {
  static const std::set<std::string> kNoRelVars;
  for (auto it = state->pending_filters.begin();
       it != state->pending_filters.end();) {
    bool ready = true;
    for (const std::string& v : ExprVariables(**it)) {
      if (!state->Bound(v)) {
        ready = false;
        break;
      }
    }
    if (!ready) {
      ++it;
      continue;
    }
    state->tip = std::make_unique<FilterOp>(std::move(state->tip), ctx, *it);
    if (est != nullptr && stats != nullptr) {
      *est *= FilterSelectivity(**it, *stats,
                                rel_vars ? *rel_vars : kNoRelVars);
      *est = std::max(*est, 0.001);
      state->tip->set_est_rows(*est);
    }
    it = state->pending_filters.erase(it);
  }
}

Status Planner::PlanChain(const PathPattern& path, PipelineState* state,
                          Plan* plan, ExecContext* ctx) {
  GraphStatistics stats(*graph_);
  CostModel cost(stats);
  size_t num_nodes = path.hops.size() + 1;

  auto node_at = [&](size_t i) -> const NodePattern& {
    return i == 0 ? path.start : path.hops[i - 1].node;
  };

  // Column assignment.
  std::vector<std::string> node_cols(num_nodes);
  std::vector<std::string> rel_cols(path.hops.size());
  std::vector<bool> node_bound(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    const NodePattern& np = node_at(i);
    node_cols[i] = np.var ? *np.var
                          : "#n" + std::to_string(fresh_counter_++);
    node_bound[i] = np.var && state->Bound(*np.var);
  }
  for (size_t i = 0; i < path.hops.size(); ++i) {
    const RelPattern& rp = path.hops[i].rel;
    rel_cols[i] = rp.var ? *rp.var : "#r" + std::to_string(fresh_counter_++);
  }
  // Shared node variables within this chain: a later occurrence of the
  // same column is planned as ExpandInto, which the per-position bound
  // flags below track dynamically.

  // Per-position constraints for costing: pattern labels and inline
  // property keys, augmented with WHERE-visible label checks and
  // equality conjuncts.
  std::vector<NodeConstraint> constraints(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    const NodePattern& np = node_at(i);
    constraints[i].labels = np.labels;
    for (const auto& kv : np.properties) {
      constraints[i].eq_props.push_back(kv.first);
    }
  }
  AugmentFromWhere(state->pending_filters, node_cols, &constraints);

  std::set<std::string> rel_vars(rel_cols.begin(), rel_cols.end());

  // Effective per-hop operator policy: the legacy E14 use_join_expand
  // toggle is the hash-join force.
  ExpandStrategy strategy = options_.use_join_expand
                                ? ExpandStrategy::kHashJoin
                                : options_.expand_strategy;
  DirectionPolicy dirpol = options_.direction_policy;

  // Decide the whole chain up front: anchor, per-hop direction, and
  // per-hop physical operator.
  CostModel::ChainDecision decision;
  switch (options_.mode) {
    case PlannerOptions::Mode::kLeftToRight: {
      // Naive baseline: first node, left to right, adjacency expands —
      // explicit overrides still pin their side.
      ExpandStrategy s = strategy == ExpandStrategy::kCost
                             ? ExpandStrategy::kAdjacency
                             : strategy;
      DirectionPolicy dp = dirpol == DirectionPolicy::kCost
                               ? DirectionPolicy::kForceRight
                               : dirpol;
      decision = GreedyDecision(path, constraints, node_bound, s, dp, cost,
                                stats);
      break;
    }
    case PlannerOptions::Mode::kGreedy:
      decision = GreedyDecision(path, constraints, node_bound, strategy,
                                dirpol, cost, stats);
      break;
    case PlannerOptions::Mode::kDpStarts:
      decision =
          cost.DecideChain(path, constraints, node_bound, strategy, dirpol);
      break;
  }
  size_t anchor = decision.anchor;

  // Constraint helpers: synthesized filters are owned by the plan.
  auto add_node_constraints = [&](size_t i, bool skip_label_index_label,
                                  const std::string& scanned_label) {
    const NodePattern& np = node_at(i);
    std::vector<std::string> labels = np.labels;
    if (skip_label_index_label) {
      labels.erase(std::remove(labels.begin(), labels.end(), scanned_label),
                   labels.end());
    }
    if (!labels.empty()) {
      auto check = std::make_unique<LabelCheckExpr>(
          std::make_unique<VariableExpr>(node_cols[i]), labels);
      state->pending_filters.push_back(check.get());
      plan->synthesized.push_back(std::move(check));
    }
    for (const auto& [key, expr] : np.properties) {
      auto eq = std::make_unique<BinaryExpr>(
          BinaryOp::kEq,
          std::make_unique<PropertyExpr>(
              std::make_unique<VariableExpr>(node_cols[i]), key),
          CloneExpr(*expr));
      state->pending_filters.push_back(eq.get());
      plan->synthesized.push_back(std::move(eq));
    }
  };

  // Emit the anchor. The label index scan picks the cheapest label among
  // the pattern's AND the WHERE-augmented ones (label pushdown into the
  // scan); any remaining checks stay as filters.
  double cur_est;
  if (!node_bound[anchor]) {
    std::string scanned_label;
    double scan_rows = static_cast<double>(stats.NodeCount());
    for (const auto& l : constraints[anchor].labels) {
      double c = static_cast<double>(stats.NodesWithLabel(l));
      if (scanned_label.empty() || c < scan_rows) {
        scan_rows = c;
        scanned_label = l;
      }
    }
    if (!scanned_label.empty()) {
      state->tip = std::make_unique<NodeByLabelScanOp>(
          std::move(state->tip), ctx, node_cols[anchor], scanned_label);
    } else {
      state->tip = std::make_unique<AllNodesScanOp>(std::move(state->tip),
                                                    ctx, node_cols[anchor]);
    }
    state->tip->set_est_rows(scan_rows);
    cur_est = std::max(scan_rows, 0.001);
    node_bound[anchor] = true;
    add_node_constraints(anchor, !scanned_label.empty(), scanned_label);
  } else {
    // Bound from the driving table: re-check this occurrence's
    // constraints.
    add_node_constraints(anchor, false, "");
    cur_est = 1.0;
  }
  PlaceReadyFilters(state, ctx, &stats, &rel_vars, &cur_est);

  auto expand_step = [&](const CostModel::ChainStep& cs) -> Status {
    size_t hop_idx = cs.hop;
    bool to_right = cs.to_right;
    const RelPattern& rp = path.hops[hop_idx].rel;
    size_t from_i = to_right ? hop_idx : hop_idx + 1;
    size_t to_i = to_right ? hop_idx + 1 : hop_idx;

    ExpandSpec spec;
    spec.from_col = state->ColIndex(node_cols[from_i]);
    if (spec.from_col < 0) {
      return Status::Internal("planner lost track of a bound column");
    }
    spec.types = rp.types;
    spec.direction = rp.direction;
    if (!to_right) {
      // Traversing the hop right-to-left flips the pattern arrow.
      if (rp.direction == Direction::kRight) {
        spec.direction = Direction::kLeft;
      } else if (rp.direction == Direction::kLeft) {
        spec.direction = Direction::kRight;
      }
    }
    spec.uniqueness_cols = state->clause_rel_cols;
    spec.rel_props = rp.properties.empty() ? nullptr : &rp.properties;

    bool rel_bound = state->Bound(rel_cols[hop_idx]);
    if (rel_bound && !rp.length) {
      // The hop must bind exactly the pre-bound relationship; it joins
      // this clause's isomorphism scope for *later* hops (via
      // clause_rel_cols below) but must not conflict with itself.
      spec.bound_rel_col = state->ColIndex(rel_cols[hop_idx]);
      spec.rel_var.clear();
    } else {
      spec.rel_var = rel_cols[hop_idx];
    }

    bool target_bound = node_bound[to_i] ||
                        state->Bound(node_cols[to_i]);
    if (target_bound) {
      spec.to_col = state->ColIndex(node_cols[to_i]);
    } else {
      spec.to_var = node_cols[to_i];
    }

    // Expected rows out of this operator alone (target-node filters are
    // annotated on their own FilterOps): the directional typed fan,
    // collapsed by 1/N when expanding into an already-bound node.
    double mult = cost.ExpandFactor(rp, !to_right, constraints[from_i]);
    if (target_bound) {
      mult /= std::max<double>(stats.NodeCount(), 1.0);
    }
    cur_est = std::max(cur_est * mult, 0.001);

    if (rp.length) {
      HopRange range = EffectiveRange(rp, options_.match.max_var_length);
      int64_t hi = range.hi;
      if (range.unbounded &&
          options_.match.morphism != Morphism::kHomomorphism) {
        // Edge isomorphism bounds path length by the relationship count.
        hi = std::min<int64_t>(hi,
                               static_cast<int64_t>(graph_->NumRels()));
      }
      state->tip = std::make_unique<VarLengthExpandOp>(
          std::move(state->tip), ctx, std::move(spec), range.lo, hi);
    } else if (cs.hash_join) {
      state->tip = std::make_unique<HashJoinExpandOp>(std::move(state->tip),
                                                      ctx, std::move(spec));
    } else {
      state->tip = std::make_unique<ExpandOp>(std::move(state->tip), ctx,
                                              std::move(spec));
    }
    state->tip->set_est_rows(cur_est);
    // Track the relationship column for isomorphism (named, hidden or
    // pre-bound).
    int rel_col_idx = state->ColIndex(rel_cols[hop_idx]);
    if (rel_col_idx >= 0) state->clause_rel_cols.push_back(rel_col_idx);

    if (!target_bound) {
      node_bound[to_i] = true;
      add_node_constraints(to_i, false, "");
    } else if (!node_bound[to_i]) {
      // Bound from the driving table (ExpandInto): re-check constraints.
      node_bound[to_i] = true;
      add_node_constraints(to_i, false, "");
    }
    return Status::OK();
  };

  for (const CostModel::ChainStep& cs : decision.steps) {
    GQL_RETURN_IF_ERROR(expand_step(cs));
    PlaceReadyFilters(state, ctx, &stats, &rel_vars, &cur_est);
  }
  return Status::OK();
}

}  // namespace gqlite
