#ifndef GQLITE_PLAN_PLAN_CACHE_H_
#define GQLITE_PLAN_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/sync.h"
#include "src/frontend/analyzer.h"
#include "src/plan/planner.h"

namespace gqlite {

/// A parsed, analyzed and auto-parameterized query, shared between
/// PreparedQuery handles and plan-cache entries. Immutable once built;
/// cached plans borrow its AST, so entries keep it alive via shared_ptr.
struct PreparedStatement {
  /// The canonicalized AST (literals replaced by synthetic parameters).
  ast::Query query;
  /// Values of the extracted literals, keyed by their synthetic `$_pN`
  /// names. Overlaid on the user's parameter map at execution time.
  ValueMap constants;
  /// Analysis result (computed on the original query text).
  QueryInfo info;
  /// True if any clause is RETURN GRAPH (routes to the interpreter).
  bool has_return_graph = false;
  /// Normalized query text — the structural part of the cache key.
  std::string text_key;
};

using PreparedPtr = std::shared_ptr<const PreparedStatement>;

/// Hit/miss accounting, surfaced through CypherEngine::plan_cache_stats().
struct PlanCacheStats {
  uint64_t hits = 0;           // valid cached plan reused
  uint64_t misses = 0;         // no usable plan (includes invalidations
                               // and busy entries pinned by another session)
  uint64_t evictions = 0;      // LRU capacity evictions
  uint64_t invalidations = 0;  // entries dropped because the graph catalog
                               // or statistics changed since planning
};

/// A bounded LRU cache of compiled physical plans keyed on the normalized
/// (auto-parameterized) query text plus an engine-options fingerprint.
///
/// Validity is generation-based: an entry records, for every graph its
/// plan touches, the graph's stats_version at planning time (plans bake
/// in cardinality statistics and the relationship-count bound for
/// unbounded variable-length patterns), plus the catalog version (FROM
/// GRAPH resolves names at planning time). A lookup that finds a stale
/// entry drops it and reports a miss.
///
/// Thread-safety: INTERNALLY LOCKED — every method takes mu_ itself, so
/// any number of sessions may call concurrently (the PR-6 annotations
/// planned exactly this flip). Entries are handed out PINNED: a plan's
/// operator tree is a stateful single-use pipeline, so two executions
/// must never share one entry. Acquire marks the entry in-use and a
/// concurrent Acquire of the same key reports `busy` (the caller plans
/// fresh and executes uncached); Release un-pins. Eviction, replacement,
/// Clear and SweepStale may remove a pinned entry from the cache — the
/// executing session's shared_ptr keeps it alive until Release.
class PlanCache {
 public:
  /// Per-context validity guard: the graph a plan context was compiled
  /// against and the versions observed at plan time. The shared_ptr also
  /// pins graphs a stale catalog may have dropped, so borrowed pointers
  /// inside the plan never dangle.
  struct GraphGuard {
    std::shared_ptr<const PropertyGraph> graph;
    /// Structural version at plan time: exact-match validated (label/
    /// type/degree statistics moved → the plan's operator and order
    /// choices may be wrong).
    uint64_t stats_version = 0;
    /// Data version at plan time: drift-validated (|now - then| >=
    /// kDataDriftThreshold invalidates). Pure property SETs move the
    /// NDV sketches — and with them the equality selectivities a
    /// cost-sensitive plan baked in — WITHOUT bumping stats_version, so
    /// enough of them must re-plan even though the structure is
    /// unchanged.
    uint64_t data_version = 0;
  };

  struct Entry {
    std::string key;
    PreparedPtr prepared;
    Plan plan;
    uint64_t catalog_version = 0;
    std::vector<GraphGuard> graph_guards;
    /// guards[i] planned against the session's DEFAULT graph (as opposed
    /// to a named/URL graph). Default-graph contexts are validated
    /// against the *executing snapshot's* stats_version and rebound to it
    /// per execution; named graphs are validated against the guard graph
    /// itself.
    std::vector<bool> default_ctx;
    /// True while a session executes this plan (guarded by the cache
    /// mutex; never touch outside the cache).
    bool in_use = false;
  };
  using EntryPtr = std::shared_ptr<Entry>;

  explicit PlanCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  static constexpr size_t kDefaultCapacity = 128;

  /// How many data_version increments (mutations that do NOT move
  /// stats_version, i.e. pure property writes) an entry tolerates before
  /// it re-plans. Each write can move a property NDV sketch — and with
  /// it the 1/NDV equality selectivities a cost-sensitive plan choice
  /// was based on. One write cannot flip a sane plan; re-planning every
  /// statement would defeat the cache; 16 bounds the staleness while
  /// keeping single-SET workloads (the common case) on the cached plan.
  static constexpr uint64_t kDataDriftThreshold = 16;

  /// Looks up `key` and pins the entry for execution. Returns null when:
  ///  * absent (miss);
  ///  * stale against `catalog_version` / its graph guards — default-graph
  ///    contexts compare against `default_stats_version` and
  ///    `default_data_version`, the executing snapshot's values (the
  ///    entry is erased; invalidation + miss);
  ///  * present and valid but pinned by another session (`*busy` set to
  ///    true; miss) — the caller should plan fresh and skip InsertAcquire.
  /// On success the entry is promoted to most-recently-used, marked
  /// in-use, and counted as a hit; the caller MUST Release it.
  EntryPtr Acquire(const std::string& key, uint64_t catalog_version,
                   uint64_t default_stats_version,
                   uint64_t default_data_version, bool* busy) EXCLUDES(mu_);

  /// Inserts (or replaces) the entry for `key`, pinned for the caller's
  /// execution; evicts the least recently used entry if over capacity.
  /// A displaced or evicted entry that is currently pinned simply drops
  /// out of the index — its executor still owns it. Caller MUST Release.
  EntryPtr InsertAcquire(std::string key, PreparedPtr prepared, Plan plan,
                         uint64_t catalog_version,
                         std::vector<GraphGuard> graph_guards,
                         std::vector<bool> default_ctx) EXCLUDES(mu_);

  /// Un-pins an entry returned by Acquire/InsertAcquire.
  void Release(const EntryPtr& entry) EXCLUDES(mu_);

  /// Drops every entry that can no longer validate against
  /// `catalog_version` or its graph guards, releasing the graphs those
  /// entries pin. Counted as invalidations. The engine calls this when
  /// the catalog version moves, so replaced graphs are freed promptly
  /// instead of lingering until their exact key is looked up again or
  /// LRU-evicted. Default-graph contexts compare against
  /// `default_stats_version` / `default_data_version` (the committed
  /// head's values).
  void SweepStale(uint64_t catalog_version, uint64_t default_stats_version,
                  uint64_t default_data_version) EXCLUDES(mu_);

  /// Drops all entries (stats are kept; use ResetStats to clear them).
  void Clear() EXCLUDES(mu_);

  /// Changes the bound; evicts LRU entries immediately if shrinking.
  void set_capacity(size_t capacity) EXCLUDES(mu_);
  size_t capacity() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return capacity_;
  }
  size_t size() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return index_.size();
  }

  PlanCacheStats stats() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }
  void ResetStats() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    stats_ = PlanCacheStats();
  }

 private:
  static bool Valid(const Entry& e, uint64_t catalog_version,
                    uint64_t default_stats_version,
                    uint64_t default_data_version);
  void EvictToCapacity() REQUIRES(mu_);

  /// Mutable so const reads (size, stats) lock through the same
  /// capability as writers.
  mutable Mutex mu_;
  size_t capacity_ GUARDED_BY(mu_);
  /// MRU at the front; eviction pops from the back.
  std::list<EntryPtr> lru_ GUARDED_BY(mu_);
  std::unordered_map<std::string, std::list<EntryPtr>::iterator> index_
      GUARDED_BY(mu_);
  PlanCacheStats stats_ GUARDED_BY(mu_);
};

}  // namespace gqlite

#endif  // GQLITE_PLAN_PLAN_CACHE_H_
