#ifndef GQLITE_PLAN_PLAN_CACHE_H_
#define GQLITE_PLAN_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/sync.h"
#include "src/frontend/analyzer.h"
#include "src/plan/planner.h"

namespace gqlite {

/// A parsed, analyzed and auto-parameterized query, shared between
/// PreparedQuery handles and plan-cache entries. Immutable once built;
/// cached plans borrow its AST, so entries keep it alive via shared_ptr.
struct PreparedStatement {
  /// The canonicalized AST (literals replaced by synthetic parameters).
  ast::Query query;
  /// Values of the extracted literals, keyed by their synthetic `$_pN`
  /// names. Overlaid on the user's parameter map at execution time.
  ValueMap constants;
  /// Analysis result (computed on the original query text).
  QueryInfo info;
  /// True if any clause is RETURN GRAPH (routes to the interpreter).
  bool has_return_graph = false;
  /// Normalized query text — the structural part of the cache key.
  std::string text_key;
};

using PreparedPtr = std::shared_ptr<const PreparedStatement>;

/// Hit/miss accounting, surfaced through CypherEngine::plan_cache_stats().
struct PlanCacheStats {
  uint64_t hits = 0;           // valid cached plan reused
  uint64_t misses = 0;         // no usable plan (includes invalidations)
  uint64_t evictions = 0;      // LRU capacity evictions
  uint64_t invalidations = 0;  // entries dropped because the graph catalog
                               // or statistics changed since planning
};

/// A bounded LRU cache of compiled physical plans keyed on the normalized
/// (auto-parameterized) query text plus an engine-options fingerprint.
///
/// Validity is generation-based: an entry records, for every graph its
/// plan touches, the graph's stats_version at planning time (plans bake
/// in cardinality statistics and the relationship-count bound for
/// unbounded variable-length patterns), plus the catalog version (FROM
/// GRAPH resolves names at planning time). A lookup that finds a stale
/// entry drops it and reports a miss.
///
/// Thread-safety: EXTERNALLY SYNCHRONIZED. The cache does not lock;
/// every method REQUIRES(mu()) and callers hold the lock across each
/// call (plus, for Lookup/Insert, for as long as they use the returned
/// Entry*). Today the engine is the only caller and queries are
/// single-session, so the lock is uncontended; the MVCC/session PR flips
/// the class to internal locking by moving the MutexLock into the method
/// bodies — no interface change, and every field is already GUARDED_BY.
class PlanCache {
 public:
  struct Entry {
    std::string key;
    PreparedPtr prepared;
    Plan plan;
    uint64_t catalog_version = 0;
    /// (graph, stats_version at plan time) for every execution context of
    /// the plan. The shared_ptr also pins graphs a stale catalog may have
    /// dropped, so borrowed pointers inside the plan never dangle.
    std::vector<std::pair<std::shared_ptr<const PropertyGraph>, uint64_t>>
        graph_guards;
  };

  explicit PlanCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  static constexpr size_t kDefaultCapacity = 128;

  /// The capability callers must hold around every method below.
  Mutex* mu() const RETURN_CAPABILITY(mu_) { return &mu_; }

  /// Looks up `key`. Returns the entry (promoted to most-recently-used)
  /// if present and still valid against `catalog_version` and its graph
  /// guards; otherwise null. Counts a hit, a miss, or an invalidation
  /// (stale entries are erased and also counted as misses). The returned
  /// pointer is owned by the cache and valid until the next non-const
  /// cache operation.
  Entry* Lookup(const std::string& key, uint64_t catalog_version)
      REQUIRES(mu_);

  /// Inserts (or replaces) the entry for `key`, evicting the least
  /// recently used entry if over capacity. Returns the stored entry.
  Entry* Insert(std::string key, PreparedPtr prepared, Plan plan,
                uint64_t catalog_version,
                std::vector<std::pair<std::shared_ptr<const PropertyGraph>,
                                      uint64_t>>
                    graph_guards) REQUIRES(mu_);

  /// Drops every entry that can no longer validate against
  /// `catalog_version` or its graph guards, releasing the graphs those
  /// entries pin. Counted as invalidations. The engine calls this when
  /// the catalog version moves, so replaced graphs are freed promptly
  /// instead of lingering until their exact key is looked up again or
  /// LRU-evicted.
  void SweepStale(uint64_t catalog_version) REQUIRES(mu_);

  /// Drops all entries (stats are kept; use ResetStats to clear them).
  void Clear() REQUIRES(mu_);

  /// Changes the bound; evicts LRU entries immediately if shrinking.
  void set_capacity(size_t capacity) REQUIRES(mu_);
  size_t capacity() const REQUIRES(mu_) { return capacity_; }
  size_t size() const REQUIRES(mu_) { return index_.size(); }

  const PlanCacheStats& stats() const REQUIRES(mu_) { return stats_; }
  void ResetStats() REQUIRES(mu_) { stats_ = PlanCacheStats(); }

 private:
  void EvictToCapacity() REQUIRES(mu_);

  /// Mutable so const reads (size, stats) lock through the same
  /// capability as writers.
  mutable Mutex mu_;
  size_t capacity_ GUARDED_BY(mu_);
  /// MRU at the front; eviction pops from the back.
  std::list<Entry> lru_ GUARDED_BY(mu_);
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      GUARDED_BY(mu_);
  PlanCacheStats stats_ GUARDED_BY(mu_);
};

}  // namespace gqlite

#endif  // GQLITE_PLAN_PLAN_CACHE_H_
