#ifndef GQLITE_PLAN_COST_MODEL_H_
#define GQLITE_PLAN_COST_MODEL_H_

#include "src/frontend/ast.h"
#include "src/graph/graph_statistics.h"
#include "src/pattern/pattern.h"

namespace gqlite {

/// Cardinality-based cost model for pattern planning (§2: Neo4j plans
/// "based on the IDP algorithm, using a cost model"). Estimates are
/// derived from exact maintained statistics: node/relationship counts,
/// per-label node counts, per-type relationship counts.
class CostModel {
 public:
  explicit CostModel(const GraphStatistics& stats) : stats_(stats) {}

  /// Estimated rows produced by scanning candidates for a node pattern:
  /// the most selective label index, or the all-nodes count. Property
  /// equality predicates apply a fixed selectivity factor.
  double ScanCardinality(const ast::NodePattern& np) const;

  /// Estimated fan-out of expanding one hop (per input row): average
  /// degree of the relationship type(s) in the traversal direction,
  /// doubled for undirected patterns. Variable-length hops multiply by
  /// the expected path-count amplification.
  double ExpandFactor(const ast::RelPattern& rp, bool reversed) const;

  /// Selectivity of a node pattern applied as a post-expand filter.
  double NodeFilterSelectivity(const ast::NodePattern& np) const;

  /// Estimated total intermediate-row cost of planning a chain
  /// `nodes[0] r[0] nodes[1] … ` anchored at `anchor` (expanding outward
  /// both ways). `bound` marks nodes already bound by the driving table
  /// (anchoring there costs nothing). Used by the greedy and DP planner
  /// modes to pick anchors.
  double ChainCost(const ast::PathPattern& path, size_t anchor,
                   const std::vector<bool>& node_bound) const;

 private:
  const GraphStatistics& stats_;
};

}  // namespace gqlite

#endif  // GQLITE_PLAN_COST_MODEL_H_
