#ifndef GQLITE_PLAN_COST_MODEL_H_
#define GQLITE_PLAN_COST_MODEL_H_

#include <string>
#include <vector>

#include "src/frontend/ast.h"
#include "src/graph/graph_statistics.h"
#include "src/pattern/pattern.h"

namespace gqlite {

/// Physical-operator override for each hop of a chain. kCost picks the
/// cheaper of adjacency Expand and relationship-store HashJoinExpand per
/// step; the forced values pin one side so the differential harness can
/// exercise both regardless of what the statistics prefer
/// (GQLITE_PLAN_MODE tokens `adjacency` / `hashjoin` / `cost-expand`).
enum class ExpandStrategy { kCost, kAdjacency, kHashJoin };

/// Expand-direction override. kCost searches anchors/interleavings by
/// estimated cost; kForceRight anchors at the chain's first node and
/// expands left-to-right, kForceLeft anchors at the last node and
/// expands right-to-left (GQLITE_PLAN_MODE tokens `force-right` /
/// `force-left` / `cost-direction`).
enum class DirectionPolicy { kCost, kForceRight, kForceLeft };

/// A node's local constraints in copyable form (ast::NodePattern holds
/// non-copyable ExprPtr property values): labels plus the keys of
/// equality-constrained properties — inline `{k: v}` map entries and
/// WHERE-derived `n.k = <literal/parameter>` conjuncts the planner
/// recognizes. The cost model only needs the keys: equality selectivity
/// is 1/NDV(key) from the statistics' sketches.
struct NodeConstraint {
  std::vector<std::string> labels;
  std::vector<std::string> eq_props;
};

/// Cardinality-based cost model for pattern planning (§2: Neo4j plans
/// "based on the IDP algorithm, using a cost model"). Inputs are the
/// maintained statistics of the executing snapshot: label/type counts,
/// per-type directional degree distributions (label-conditioned fans),
/// and property NDV sketches.
///
/// One selectivity formula backs every estimate (scans and post-expand
/// filters use the same product over label fractions and property
/// equalities), so anchor ranking is consistent on multi-label patterns.
class CostModel {
 public:
  explicit CostModel(const GraphStatistics& stats) : stats_(stats) {}

  /// Fraction of all nodes satisfying the constraints: product of label
  /// fractions times 1/NDV per equality-constrained property (0.1 per
  /// property when the key has no sketch).
  double NodeSelectivity(const NodeConstraint& nc) const;

  /// Estimated rows from scanning candidates for the constraints:
  /// NodeCount() * NodeSelectivity.
  double ScanCardinality(const NodeConstraint& nc) const;
  double ScanCardinality(const ast::NodePattern& np) const;

  /// NodeSelectivity over a raw pattern node (labels + inline property
  /// map) — identical formula to ScanCardinality / NodeCount().
  double NodeFilterSelectivity(const ast::NodePattern& np) const;

  /// Estimated fan-out of one hop per input row, DIRECTIONAL: the typed
  /// degree in the actual traversal direction, conditioned on the
  /// source node's most selective label when `from` is given. `reversed`
  /// means the hop is traversed right-to-left (a `-[:T]->` hop entered
  /// from its target follows IN-edges). Variable-length hops multiply
  /// by the path-count amplification over the hop's length range — an
  /// explicit user maximum is honored (saturating at ~1e15), an
  /// unbounded `*lo..` uses a lo+8 horizon.
  double ExpandFactor(const ast::RelPattern& rp, bool reversed) const;
  double ExpandFactor(const ast::RelPattern& rp, bool reversed,
                      const NodeConstraint& from) const;

  /// Rows scanned per input row by an adjacency ExpandOp for this hop:
  /// the UNTYPED fan in the scanned direction(s) — the operator walks
  /// the whole adjacency list and filters by type.
  double AdjacencyScanFan(const ast::RelPattern& rp, bool reversed,
                          const NodeConstraint& from) const;

  /// One planned step of a chain: which hop, which direction it is
  /// traversed, which physical operator, and the estimated rows after
  /// the step (surfaced as `est. rows` in EXPLAIN).
  struct ChainStep {
    size_t hop = 0;
    bool to_right = true;
    bool hash_join = false;
    double out_rows = 1;
  };
  struct ChainDecision {
    size_t anchor = 0;
    double anchor_rows = 1;  // rows after the anchor's filters
    double cost = 0;
    std::vector<ChainStep> steps;  // in emission order
  };

  /// Full chain planning: for every admissible anchor (restricted by
  /// `direction`), an exact interval DP over interleavings — the state
  /// is the contiguous expanded interval around the anchor, each
  /// transition extends it one hop left or right and pays the cheaper
  /// (or forced) operator's cost: adjacency ≈ rows_in * scan_fan +
  /// rows_out, hash join ≈ RelCount + rows_in + rows_out. Chains are
  /// exactly the shape where this search is optimal under the model —
  /// the IDP chain specialization the paper cites. `nodes` carries the
  /// augmented constraints per chain position (size hops+1), `bound`
  /// marks positions already bound by the driving table.
  ChainDecision DecideChain(const ast::PathPattern& path,
                            const std::vector<NodeConstraint>& nodes,
                            const std::vector<bool>& bound,
                            ExpandStrategy strategy,
                            DirectionPolicy direction) const;

 private:
  /// Typed directional fan of the hop (no var-length amplification).
  double HopFan(const ast::RelPattern& rp, bool reversed,
                const NodeConstraint& from) const;
  /// Fan conditioned on the frontier already having one such rel
  /// (levels >= 2 of a var-length expand).
  double CondFan(const ast::RelPattern& rp, bool reversed) const;

  const GraphStatistics& stats_;
};

}  // namespace gqlite

#endif  // GQLITE_PLAN_COST_MODEL_H_
