#include "src/common/status.h"

namespace gqlite {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kSyntaxError:
      return "SyntaxError";
    case StatusCode::kSemanticError:
      return "SemanticError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kEvaluationError:
      return "EvaluationError";
    case StatusCode::kPlanError:
      return "PlanError";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kCorruption:
      return "Corruption";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace gqlite
