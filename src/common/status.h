#ifndef GQLITE_COMMON_STATUS_H_
#define GQLITE_COMMON_STATUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace gqlite {

/// Error categories used across the engine. The frontend reports
/// kSyntaxError / kSemanticError; the evaluator reports kTypeError /
/// kEvaluationError; the planner reports kPlanError.
enum class StatusCode : uint8_t {
  kOk = 0,
  kSyntaxError,
  kSemanticError,
  kTypeError,
  kEvaluationError,
  kPlanError,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kUnimplemented,
  kInternal,
  /// A transactional conflict the caller can retry (e.g. attempting to
  /// begin a write transaction while another writer is active).
  kConflict,
  /// On-disk state failed validation (bad magic, CRC mismatch, truncated
  /// section): the storage layer refuses to load it.
  kCorruption,
};

/// Returns a human-readable name for a status code ("SyntaxError", ...).
const char* StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style status object. Ok status carries no allocation;
/// error statuses carry a code and a message. gqlite never throws across
/// public API boundaries; fallible operations return Status or Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(message)});
    }
  }

  static Status OK() { return Status(); }
  static Status SyntaxError(std::string msg) {
    return Status(StatusCode::kSyntaxError, std::move(msg));
  }
  static Status SemanticError(std::string msg) {
    return Status(StatusCode::kSemanticError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status EvaluationError(std::string msg) {
    return Status(StatusCode::kEvaluationError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  /// "SemanticError: variable `x` not defined" (or "OK").
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<State> state_;  // nullptr == OK
};

/// Propagates an error Status from a fallible expression.
#define GQL_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::gqlite::Status _st = (expr);             \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace gqlite

#endif  // GQLITE_COMMON_STATUS_H_
