#ifndef GQLITE_COMMON_THREAD_ANNOTATIONS_H_
#define GQLITE_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety annotations (-Wthread-safety).
///
/// These macros attach Clang's capability-analysis attributes to mutexes,
/// lock guards and the data they protect, so lock discipline is proven at
/// COMPILE TIME for every call path — not just the interleavings the TSan
/// CI leg happens to execute. On non-Clang compilers (the tier-1 GCC
/// build) every macro expands to nothing.
///
/// Usage map (see src/common/sync.h for the annotated primitives):
///  * GUARDED_BY(mu)      — field may only be read/written while `mu` is
///                          held. The workhorse annotation: every mutex-
///                          protected field in the engine carries it.
///  * PT_GUARDED_BY(mu)   — the POINTED-TO data is protected (the pointer
///                          itself may be read freely).
///  * REQUIRES(mu)        — function may only be CALLED while `mu` is
///                          held. Used to document externally-synchronized
///                          interfaces (PlanCache, GraphCatalog): callers
///                          must lock, the class does not.
///  * ACQUIRE/RELEASE(mu) — function acquires/releases the capability
///                          (Mutex::Lock/Unlock, scoped guards).
///  * EXCLUDES(mu)        — function must NOT be called with `mu` held
///                          (anti-deadlock documentation, e.g. a function
///                          that acquires `mu` itself).
///  * CAPABILITY / SCOPED_CAPABILITY — class-level markers for mutex and
///                          RAII-guard types.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && (!defined(SWIG))
#define GQLITE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GQLITE_THREAD_ANNOTATION(x)  // no-op on GCC/MSVC
#endif

#define CAPABILITY(x) GQLITE_THREAD_ANNOTATION(capability(x))

#define SCOPED_CAPABILITY GQLITE_THREAD_ANNOTATION(scoped_lockable)

#define GUARDED_BY(x) GQLITE_THREAD_ANNOTATION(guarded_by(x))

#define PT_GUARDED_BY(x) GQLITE_THREAD_ANNOTATION(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  GQLITE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  GQLITE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  GQLITE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  GQLITE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  GQLITE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  GQLITE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  GQLITE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  GQLITE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  GQLITE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  GQLITE_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) GQLITE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) GQLITE_THREAD_ANNOTATION(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  GQLITE_THREAD_ANNOTATION(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) GQLITE_THREAD_ANNOTATION(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  GQLITE_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // GQLITE_COMMON_THREAD_ANNOTATIONS_H_
