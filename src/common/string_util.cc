#include "src/common/string_util.h"

#include <cctype>

namespace gqlite {

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool AsciiEqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitBy(std::string_view s, std::string_view sep) {
  // Byte-exact separator matching is UTF-8 clean: a valid UTF-8 separator
  // can only match at code-point boundaries, so the pieces stay valid.
  std::vector<std::string> out;
  if (sep.empty()) {
    out.emplace_back(s);
    return out;
  }
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + sep.size();
  }
  return out;
}

std::string_view LTrimView(std::string_view s) {
  size_t i = 0;
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return s.substr(i);
}

std::string_view RTrimView(std::string_view s) {
  size_t n = s.size();
  while (n > 0 && std::isspace(static_cast<unsigned char>(s[n - 1]))) --n;
  return s.substr(0, n);
}

std::string_view TrimView(std::string_view s) { return RTrimView(LTrimView(s)); }

std::string EscapeSingleQuoted(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\'') out += "\\'";
    else out += c;
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view piece) {
  return s.size() >= piece.size() && s.substr(0, piece.size()) == piece;
}

bool EndsWith(std::string_view s, std::string_view piece) {
  return s.size() >= piece.size() && s.substr(s.size() - piece.size()) == piece;
}

bool Contains(std::string_view s, std::string_view piece) {
  return s.find(piece) != std::string_view::npos;
}

namespace {

/// True if `b` is a UTF-8 continuation byte (10xxxxxx).
inline bool IsUtf8Continuation(unsigned char b) { return (b & 0xC0) == 0x80; }

/// Byte length of the code point starting at `s[i]`. An invalid lead byte
/// (or a truncated sequence) yields 1 so malformed input advances byte by
/// byte instead of looping or overrunning.
size_t Utf8SeqLen(std::string_view s, size_t i) {
  unsigned char b = static_cast<unsigned char>(s[i]);
  size_t len = 1;
  if ((b & 0x80) == 0x00) len = 1;
  else if ((b & 0xE0) == 0xC0) len = 2;
  else if ((b & 0xF0) == 0xE0) len = 3;
  else if ((b & 0xF8) == 0xF0) len = 4;
  else return 1;  // stray continuation or invalid lead byte
  if (i + len > s.size()) return 1;
  for (size_t k = 1; k < len; ++k) {
    if (!IsUtf8Continuation(static_cast<unsigned char>(s[i + k]))) return 1;
  }
  return len;
}

}  // namespace

size_t Utf8Length(std::string_view s) {
  size_t count = 0;
  for (size_t i = 0; i < s.size(); i += Utf8SeqLen(s, i)) ++count;
  return count;
}

size_t Utf8OffsetOf(std::string_view s, size_t cp_index) {
  size_t i = 0;
  while (cp_index > 0 && i < s.size()) {
    i += Utf8SeqLen(s, i);
    --cp_index;
  }
  return i;
}

std::string Utf8Substr(std::string_view s, size_t start, size_t len) {
  size_t from = Utf8OffsetOf(s, start);
  std::string_view rest = s.substr(from);
  size_t to = Utf8OffsetOf(rest, len);
  return std::string(rest.substr(0, to));
}

namespace {

/// Decodes the code point starting at `s[i]` (caller guarantees a valid
/// sequence per Utf8SeqLen; `len` is its byte length).
uint32_t DecodeUtf8(std::string_view s, size_t i, size_t len) {
  unsigned char b0 = static_cast<unsigned char>(s[i]);
  switch (len) {
    case 1:
      return b0;
    case 2:
      return ((b0 & 0x1Fu) << 6) |
             (static_cast<unsigned char>(s[i + 1]) & 0x3Fu);
    case 3:
      return ((b0 & 0x0Fu) << 12) |
             ((static_cast<unsigned char>(s[i + 1]) & 0x3Fu) << 6) |
             (static_cast<unsigned char>(s[i + 2]) & 0x3Fu);
    default:
      return ((b0 & 0x07u) << 18) |
             ((static_cast<unsigned char>(s[i + 1]) & 0x3Fu) << 12) |
             ((static_cast<unsigned char>(s[i + 2]) & 0x3Fu) << 6) |
             (static_cast<unsigned char>(s[i + 3]) & 0x3Fu);
  }
}

void EncodeUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

// ---- Case-folding table ------------------------------------------------
// Generated from the UnicodeData simple case mappings for the blocks the
// engine supports without ICU: Latin-1 Supplement, Latin Extended-A,
// Greek and Coptic (letters), Cyrillic (basic + Ё-range). Three range
// shapes cover nearly everything; the rest are explicit exceptions.

/// An [lo, hi] run of UPPERCASE code points whose lowercase partner sits
/// at a fixed positive offset (Δ = lower − upper).
struct OffsetRange {
  uint32_t lo;
  uint32_t hi;
  uint32_t delta;
};

constexpr OffsetRange kOffsetRanges[] = {
    {0x00C0, 0x00D6, 0x20},  // À–Ö ↔ à–ö  (× at 00D7 is not a letter)
    {0x00D8, 0x00DE, 0x20},  // Ø–Þ ↔ ø–þ
    {0x0391, 0x03A1, 0x20},  // Α–Ρ ↔ α–ρ  (03A2 is unassigned)
    {0x03A3, 0x03AB, 0x20},  // Σ–Ϋ ↔ σ–ϋ
    {0x0400, 0x040F, 0x50},  // Ѐ–Џ ↔ ѐ–џ
    {0x0410, 0x042F, 0x20},  // А–Я ↔ а–я
};

/// An [lo, hi] run of alternating UPPER/lower pairs. `upper_even` tells
/// whether the uppercase partner of each pair is the even code point.
struct PairRange {
  uint32_t lo;
  uint32_t hi;
  bool upper_even;
};

constexpr PairRange kPairRanges[] = {
    {0x0100, 0x012F, true},   // Ā..į  (İ/ı at 0130/0131 are exceptions)
    {0x0132, 0x0137, true},   // Ĳ..ķ  (0138 ĸ is caseless)
    {0x0139, 0x0148, false},  // Ĺ..ň  (0149 ŉ is caseless/deprecated)
    {0x014A, 0x0177, true},   // Ŋ..ŷ
    {0x0179, 0x017E, false},  // Ź..ž
};

/// Asymmetric mappings the ranges cannot express.
struct CaseException {
  uint32_t cp;
  uint32_t upper;
  uint32_t lower;
};

constexpr CaseException kCaseExceptions[] = {
    {0x00B5, 0x039C, 0x00B5},  // µ (micro) uppercases to Μ
    {0x00FF, 0x0178, 0x00FF},  // ÿ ↔ Ÿ
    {0x0130, 0x0130, 0x0069},  // İ lowercases to plain i
    {0x0131, 0x0049, 0x0131},  // ı uppercases to plain I
    {0x0178, 0x0178, 0x00FF},  // Ÿ ↔ ÿ
    {0x017F, 0x0053, 0x017F},  // ſ (long s) uppercases to S
    // Greek with tonos/dialytika: the upper block (0386, 0388–038F) and
    // the lower block (03AC–03AF, 03CC–03CE) sit at irregular offsets.
    {0x0386, 0x0386, 0x03AC},  // Ά ↔ ά
    {0x0388, 0x0388, 0x03AD},  // Έ ↔ έ
    {0x0389, 0x0389, 0x03AE},  // Ή ↔ ή
    {0x038A, 0x038A, 0x03AF},  // Ί ↔ ί
    {0x038C, 0x038C, 0x03CC},  // Ό ↔ ό
    {0x038E, 0x038E, 0x03CD},  // Ύ ↔ ύ
    {0x038F, 0x038F, 0x03CE},  // Ώ ↔ ώ
    {0x03AC, 0x0386, 0x03AC},
    {0x03AD, 0x0388, 0x03AD},
    {0x03AE, 0x0389, 0x03AE},
    {0x03AF, 0x038A, 0x03AF},
    {0x03C2, 0x03A3, 0x03C2},  // ς (final sigma) uppercases to Σ
    {0x03CC, 0x038C, 0x03CC},
    {0x03CD, 0x038E, 0x03CD},
    {0x03CE, 0x038F, 0x03CE},
    // ΐ (0390) and ΰ (03B0) have no 1:1 simple mapping; they pass through.
};

uint32_t CaseMap(uint32_t cp, bool to_upper) {
  if (cp < 0x80) {
    if (to_upper && cp >= 'a' && cp <= 'z') return cp - 0x20;
    if (!to_upper && cp >= 'A' && cp <= 'Z') return cp + 0x20;
    return cp;
  }
  for (const CaseException& e : kCaseExceptions) {
    if (e.cp == cp) return to_upper ? e.upper : e.lower;
  }
  for (const OffsetRange& r : kOffsetRanges) {
    if (to_upper && cp >= r.lo + r.delta && cp <= r.hi + r.delta) {
      return cp - r.delta;
    }
    if (!to_upper && cp >= r.lo && cp <= r.hi) return cp + r.delta;
  }
  for (const PairRange& r : kPairRanges) {
    if (cp < r.lo || cp > r.hi) continue;
    bool is_upper = (cp % 2 == 0) == r.upper_even;
    if (to_upper && !is_upper) return cp - 1;
    if (!to_upper && is_upper) return cp + 1;
    return cp;
  }
  return cp;
}

std::string Utf8CaseMap(std::string_view s, bool to_upper) {
  // ASCII fast path: map bytes in place, no decoding.
  bool ascii = true;
  for (char c : s) {
    if (static_cast<unsigned char>(c) >= 0x80) {
      ascii = false;
      break;
    }
  }
  if (ascii) return to_upper ? AsciiToUpper(s) : AsciiToLower(s);
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size();) {
    size_t len = Utf8SeqLen(s, i);
    if (len == 1 && static_cast<unsigned char>(s[i]) >= 0x80) {
      out.push_back(s[i]);  // invalid byte passes through untouched
      ++i;
      continue;
    }
    uint32_t cp = DecodeUtf8(s, i, len);
    // Overlong encodings (e.g. C1 A1 for 'a') decode to a code point
    // whose canonical encoding is shorter; re-encoding would silently
    // rewrite the bytes. Invalid input passes through byte-identical,
    // like every other Utf8* helper here.
    size_t canonical =
        cp < 0x80 ? 1 : cp < 0x800 ? 2 : cp < 0x10000 ? 3 : 4;
    if (canonical != len) {
      out.append(s.substr(i, len));
    } else {
      EncodeUtf8(CaseMap(cp, to_upper), &out);
    }
    i += len;
  }
  return out;
}

}  // namespace

std::string Utf8ToUpper(std::string_view s) { return Utf8CaseMap(s, true); }

std::string Utf8ToLower(std::string_view s) { return Utf8CaseMap(s, false); }

std::string Utf8Reverse(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t i = s.size();
  while (i > 0) {
    // A UTF-8 sequence is at most 4 bytes, so the back-scan for the lead
    // byte is bounded; long invalid continuation runs must stay O(n).
    size_t start = i - 1;
    while (start > 0 && i - start < 4 &&
           IsUtf8Continuation(static_cast<unsigned char>(s[start]))) {
      --start;
    }
    if (IsUtf8Continuation(static_cast<unsigned char>(s[start]))) {
      out.push_back(s[i - 1]);
      --i;
      continue;
    }
    // Only keep the run together if it really is one code point; otherwise
    // emit the trailing bytes individually (invalid input stays byte-wise).
    if (Utf8SeqLen(s, start) == i - start) {
      out.append(s.substr(start, i - start));
      i = start;
    } else {
      out.push_back(s[i - 1]);
      --i;
    }
  }
  return out;
}

}  // namespace gqlite
