#include "src/common/string_util.h"

#include <cctype>

namespace gqlite {

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool AsciiEqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitBy(std::string_view s, std::string_view sep) {
  std::vector<std::string> out;
  if (sep.empty()) {
    out.emplace_back(s);
    return out;
  }
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + sep.size();
  }
  return out;
}

std::string_view LTrimView(std::string_view s) {
  size_t i = 0;
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return s.substr(i);
}

std::string_view RTrimView(std::string_view s) {
  size_t n = s.size();
  while (n > 0 && std::isspace(static_cast<unsigned char>(s[n - 1]))) --n;
  return s.substr(0, n);
}

std::string_view TrimView(std::string_view s) { return RTrimView(LTrimView(s)); }

std::string EscapeSingleQuoted(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\'') out += "\\'";
    else out += c;
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view piece) {
  return s.size() >= piece.size() && s.substr(0, piece.size()) == piece;
}

bool EndsWith(std::string_view s, std::string_view piece) {
  return s.size() >= piece.size() && s.substr(s.size() - piece.size()) == piece;
}

bool Contains(std::string_view s, std::string_view piece) {
  return s.find(piece) != std::string_view::npos;
}

}  // namespace gqlite
