#include "src/common/string_util.h"

#include <cctype>

namespace gqlite {

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool AsciiEqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitBy(std::string_view s, std::string_view sep) {
  // Byte-exact separator matching is UTF-8 clean: a valid UTF-8 separator
  // can only match at code-point boundaries, so the pieces stay valid.
  std::vector<std::string> out;
  if (sep.empty()) {
    out.emplace_back(s);
    return out;
  }
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + sep.size();
  }
  return out;
}

std::string_view LTrimView(std::string_view s) {
  size_t i = 0;
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return s.substr(i);
}

std::string_view RTrimView(std::string_view s) {
  size_t n = s.size();
  while (n > 0 && std::isspace(static_cast<unsigned char>(s[n - 1]))) --n;
  return s.substr(0, n);
}

std::string_view TrimView(std::string_view s) { return RTrimView(LTrimView(s)); }

std::string EscapeSingleQuoted(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\'') out += "\\'";
    else out += c;
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view piece) {
  return s.size() >= piece.size() && s.substr(0, piece.size()) == piece;
}

bool EndsWith(std::string_view s, std::string_view piece) {
  return s.size() >= piece.size() && s.substr(s.size() - piece.size()) == piece;
}

bool Contains(std::string_view s, std::string_view piece) {
  return s.find(piece) != std::string_view::npos;
}

namespace {

/// True if `b` is a UTF-8 continuation byte (10xxxxxx).
inline bool IsUtf8Continuation(unsigned char b) { return (b & 0xC0) == 0x80; }

/// Byte length of the code point starting at `s[i]`. An invalid lead byte
/// (or a truncated sequence) yields 1 so malformed input advances byte by
/// byte instead of looping or overrunning.
size_t Utf8SeqLen(std::string_view s, size_t i) {
  unsigned char b = static_cast<unsigned char>(s[i]);
  size_t len = 1;
  if ((b & 0x80) == 0x00) len = 1;
  else if ((b & 0xE0) == 0xC0) len = 2;
  else if ((b & 0xF0) == 0xE0) len = 3;
  else if ((b & 0xF8) == 0xF0) len = 4;
  else return 1;  // stray continuation or invalid lead byte
  if (i + len > s.size()) return 1;
  for (size_t k = 1; k < len; ++k) {
    if (!IsUtf8Continuation(static_cast<unsigned char>(s[i + k]))) return 1;
  }
  return len;
}

}  // namespace

size_t Utf8Length(std::string_view s) {
  size_t count = 0;
  for (size_t i = 0; i < s.size(); i += Utf8SeqLen(s, i)) ++count;
  return count;
}

size_t Utf8OffsetOf(std::string_view s, size_t cp_index) {
  size_t i = 0;
  while (cp_index > 0 && i < s.size()) {
    i += Utf8SeqLen(s, i);
    --cp_index;
  }
  return i;
}

std::string Utf8Substr(std::string_view s, size_t start, size_t len) {
  size_t from = Utf8OffsetOf(s, start);
  std::string_view rest = s.substr(from);
  size_t to = Utf8OffsetOf(rest, len);
  return std::string(rest.substr(0, to));
}

std::string Utf8Reverse(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t i = s.size();
  while (i > 0) {
    // A UTF-8 sequence is at most 4 bytes, so the back-scan for the lead
    // byte is bounded; long invalid continuation runs must stay O(n).
    size_t start = i - 1;
    while (start > 0 && i - start < 4 &&
           IsUtf8Continuation(static_cast<unsigned char>(s[start]))) {
      --start;
    }
    if (IsUtf8Continuation(static_cast<unsigned char>(s[start]))) {
      out.push_back(s[i - 1]);
      --i;
      continue;
    }
    // Only keep the run together if it really is one code point; otherwise
    // emit the trailing bytes individually (invalid input stays byte-wise).
    if (Utf8SeqLen(s, start) == i - start) {
      out.append(s.substr(start, i - start));
      i = start;
    } else {
      out.push_back(s[i - 1]);
      --i;
    }
  }
  return out;
}

}  // namespace gqlite
