#ifndef GQLITE_COMMON_SYNC_H_
#define GQLITE_COMMON_SYNC_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "src/common/thread_annotations.h"

namespace gqlite {

/// Annotated synchronization primitives — the ONLY way to lock in this
/// codebase. Raw std::mutex / std::condition_variable are banned outside
/// this header (enforced by bench/tools/lint_banned.py and reviewed
/// against Clang's -Wthread-safety analysis in CI): a mutex that exists
/// only as a `Mutex` member with `GUARDED_BY` fields is a mutex whose
/// discipline the compiler proves on every call path.
///
/// Policy for new concurrency:
///  * every new mutex is a `Mutex` member named for what it protects,
///    with GUARDED_BY(mu) on each protected field;
///  * internally-locked classes keep `mu_` private, take MutexLock in
///    the method bodies, and annotate the interface EXCLUDES(mu_) (see
///    PlanCache, GraphCatalog) — methods hand out copies or shared
///    ownership, never references into guarded state;
///  * lock-free atomics go through AtomicCounter below (or add a new
///    wrapper here) so the banned-API lint keeps a single inventory of
///    every concurrency primitive in the engine.

/// A std::mutex carrying the Clang `capability` attribute. Non-reentrant.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;
  /// "Moving" a Mutex constructs a FRESH, UNLOCKED mutex — no lock state
  /// transfers. This exists so single-owner aggregates that embed one
  /// (CypherEngine, PlanCache, GraphCatalog) stay movable for by-value
  /// factory returns. Precondition: neither side is held.
  Mutex(Mutex&&) noexcept : Mutex() {}
  Mutex& operator=(Mutex&&) noexcept { return *this; }

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII guard: locks on construction, unlocks on destruction (the
/// `scoped_lockable` attribute tells the analysis the capability is held
/// between the two). The only sanctioned way to hold a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with Mutex. Wait() takes the Mutex the
/// caller already holds (REQUIRES documents it; the wait releases and
/// reacquires it internally). Spurious wakeups are possible — always wait
/// in a `while (!condition)` loop; a raw loop keeps every read of the
/// guarded condition visible to the analysis (predicate lambdas are
/// analyzed as lock-free functions and would warn).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;
  /// Same contract as Mutex's move: a fresh condition variable with no
  /// waiters. Precondition: nothing is blocked on either side.
  CondVar(CondVar&&) noexcept : CondVar() {}
  CondVar& operator=(CondVar&&) noexcept { return *this; }

  /// Blocks until notified (or spuriously woken). The caller must hold
  /// `mu`; it is released while blocked and reacquired before returning.
  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's MutexLock still owns the mutex
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Monotonic lock-free counter (morsel claim counters, test probes).
/// Relaxed ordering: callers must not use it to publish other memory —
/// it orders nothing but itself. For anything fancier, add an explicit
/// wrapper here rather than reaching for std::atomic at the use site.
class AtomicCounter {
 public:
  constexpr AtomicCounter() = default;
  constexpr explicit AtomicCounter(size_t initial) : v_(initial) {}
  AtomicCounter(const AtomicCounter&) = delete;
  AtomicCounter& operator=(const AtomicCounter&) = delete;

  /// Returns the pre-increment value.
  size_t FetchAdd(size_t d = 1) { return v_.fetch_add(d, kRelaxed); }
  size_t Load() const { return v_.load(kRelaxed); }
  void Store(size_t v) { v_.store(v, kRelaxed); }

 private:
  static constexpr std::memory_order kRelaxed = std::memory_order_relaxed;
  std::atomic<size_t> v_{0};
};

}  // namespace gqlite

#endif  // GQLITE_COMMON_SYNC_H_
