#ifndef GQLITE_COMMON_STRING_UTIL_H_
#define GQLITE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace gqlite {

/// ASCII-only lowercase (Cypher keywords are case-insensitive ASCII).
std::string AsciiToLower(std::string_view s);

/// ASCII-only uppercase.
std::string AsciiToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool AsciiEqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on the single character `sep`; keeps empty parts.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on the (non-empty) separator string, Cypher split() semantics.
std::vector<std::string> SplitBy(std::string_view s, std::string_view sep);

/// Trims ASCII whitespace from both ends.
std::string_view TrimView(std::string_view s);
std::string_view LTrimView(std::string_view s);
std::string_view RTrimView(std::string_view s);

/// Escapes a string for display inside single quotes ('It''s').
std::string EscapeSingleQuoted(std::string_view s);

/// True if `s` starts with / ends with / contains `piece`.
bool StartsWith(std::string_view s, std::string_view piece);
bool EndsWith(std::string_view s, std::string_view piece);
bool Contains(std::string_view s, std::string_view piece);

}  // namespace gqlite

#endif  // GQLITE_COMMON_STRING_UTIL_H_
