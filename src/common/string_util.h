#ifndef GQLITE_COMMON_STRING_UTIL_H_
#define GQLITE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace gqlite {

/// ASCII-only lowercase (Cypher keywords are case-insensitive ASCII).
std::string AsciiToLower(std::string_view s);

/// ASCII-only uppercase.
std::string AsciiToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool AsciiEqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on the single character `sep`; keeps empty parts.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on the (non-empty) separator string, Cypher split() semantics.
std::vector<std::string> SplitBy(std::string_view s, std::string_view sep);

/// Trims ASCII whitespace from both ends.
std::string_view TrimView(std::string_view s);
std::string_view LTrimView(std::string_view s);
std::string_view RTrimView(std::string_view s);

/// Escapes a string for display inside single quotes ('It''s').
std::string EscapeSingleQuoted(std::string_view s);

/// True if `s` starts with / ends with / contains `piece`.
bool StartsWith(std::string_view s, std::string_view piece);
bool EndsWith(std::string_view s, std::string_view piece);
bool Contains(std::string_view s, std::string_view piece);

// --- UTF-8 code-point helpers -------------------------------------------
// Cypher string functions are specified over characters, not bytes
// (openCypher; Francis et al. §3.1 treat strings as character sequences).
// These helpers treat a string as a sequence of UTF-8 code points. Bytes
// that do not form valid UTF-8 degrade gracefully: every invalid byte
// counts as one unit, so operations never split a valid multi-byte
// sequence and never read out of bounds.

/// Number of UTF-8 code points in `s`.
size_t Utf8Length(std::string_view s);

/// Byte offset of the `cp_index`-th code point; `s.size()` when `cp_index`
/// is at or past the end.
size_t Utf8OffsetOf(std::string_view s, size_t cp_index);

/// Substring of `len` code points starting at code point `start`.
std::string Utf8Substr(std::string_view s, size_t start, size_t len);

/// `s` with its code points in reverse order (bytes inside each code
/// point keep their order, so the result is valid UTF-8).
std::string Utf8Reverse(std::string_view s);

/// Unicode simple (1:1) case mapping over UTF-8 for toUpper()/toLower().
/// Covers ASCII, Latin-1 Supplement, Latin Extended-A, Greek and basic
/// Cyrillic via a generated case-folding table (the container has no
/// ICU); code points outside the table pass through unchanged, as do
/// caseless letters (ß, ĸ, ŉ). ASCII-only strings take a byte-loop fast
/// path. One-to-many full mappings (ß → "SS") are intentionally not
/// applied — the mapping is length-preserving in code points.
std::string Utf8ToUpper(std::string_view s);
std::string Utf8ToLower(std::string_view s);

}  // namespace gqlite

#endif  // GQLITE_COMMON_STRING_UTIL_H_
