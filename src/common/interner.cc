#include "src/common/interner.h"

namespace gqlite {

SymbolId StringInterner::Intern(std::string_view s) {
  if (s.empty()) return kNoSymbol;
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(std::string_view(strings_.back()), id);
  return id;
}

SymbolId StringInterner::Lookup(std::string_view s) const {
  auto it = index_.find(s);
  return it == index_.end() ? kNoSymbol : it->second;
}

}  // namespace gqlite
