#ifndef GQLITE_COMMON_INTERNER_H_
#define GQLITE_COMMON_INTERNER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace gqlite {

/// Symbol id produced by StringInterner. 0 is reserved for "no symbol".
using SymbolId = uint32_t;

inline constexpr SymbolId kNoSymbol = 0;

/// Interns strings (labels ℒ, relationship types 𝒯, property keys 𝒦) to
/// dense integer ids so graph records store 4-byte ids and comparisons are
/// integer compares. Ids are stable for the lifetime of the interner.
/// Strings live in a deque so their addresses are stable and the index can
/// key on string_views into them.
class StringInterner {
 public:
  StringInterner() { strings_.emplace_back(); /* id 0 = empty */ }

  /// Copying clones the symbol table with identical ids (the index is
  /// rebuilt to view the copy's own strings). Graph snapshots rely on
  /// this: a snapshot's interner answers Lookup/ToString without touching
  /// the live graph's (growing) table. Cost is O(interned strings) —
  /// labels, types and property keys, i.e. schema-sized, not data-sized.
  StringInterner(const StringInterner& other) : strings_(other.strings_) {
    index_.reserve(strings_.size());
    for (size_t id = 1; id < strings_.size(); ++id) {
      index_.emplace(std::string_view(strings_[id]),
                     static_cast<SymbolId>(id));
    }
  }
  StringInterner& operator=(const StringInterner&) = delete;

  /// Returns the id for `s`, interning it if new. Never returns kNoSymbol
  /// for a non-empty string.
  SymbolId Intern(std::string_view s);

  /// Returns the id for `s` or kNoSymbol if not interned.
  SymbolId Lookup(std::string_view s) const;

  /// Returns the string for `id`. Precondition: id was produced by Intern.
  const std::string& ToString(SymbolId id) const { return strings_[id]; }

  size_t size() const { return strings_.size(); }

 private:
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, SymbolId> index_;
};

}  // namespace gqlite

#endif  // GQLITE_COMMON_INTERNER_H_
