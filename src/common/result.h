#ifndef GQLITE_COMMON_RESULT_H_
#define GQLITE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace gqlite {

/// Result<T> carries either a value or an error Status (Arrow-style).
/// Use GQL_ASSIGN_OR_RETURN to unwrap in fallible code.
template <typename T>
class Result {
 public:
  /// Implicit from value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status; must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define GQL_CONCAT_IMPL(a, b) a##b
#define GQL_CONCAT(a, b) GQL_CONCAT_IMPL(a, b)

/// GQL_ASSIGN_OR_RETURN(auto x, FallibleExpr()) — on error, propagates the
/// Status; otherwise binds the unwrapped value to `x`.
#define GQL_ASSIGN_OR_RETURN(decl, expr)                        \
  GQL_ASSIGN_OR_RETURN_IMPL(GQL_CONCAT(_res_, __LINE__), decl, expr)

#define GQL_ASSIGN_OR_RETURN_IMPL(tmp, decl, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  decl = std::move(tmp).value()

}  // namespace gqlite

#endif  // GQLITE_COMMON_RESULT_H_
