#include "src/storage/storage_engine.h"

#include <utility>

#include "src/storage/checkpoint.h"
#include "src/storage/io_file.h"

namespace gqlite {

namespace {

std::string CheckpointPath(const std::string& dir) {
  return dir + "/checkpoint.gql";
}
std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }

}  // namespace

Result<std::unique_ptr<DurableStorageEngine>> DurableStorageEngine::Open(
    const std::string& dir) {
  GQL_RETURN_IF_ERROR(EnsureDirectory(dir));

  // 1. Baseline: the latest checkpoint, or a fresh graph.
  std::shared_ptr<PropertyGraph> graph;
  uint64_t last_lsn = 0;
  Result<RecoveredGraph> ckpt = ReadCheckpointFile(CheckpointPath(dir));
  if (ckpt.ok()) {
    graph = std::move(ckpt->graph);
    last_lsn = ckpt->last_lsn;
  } else if (ckpt.status().code() == StatusCode::kNotFound) {
    graph = std::make_shared<PropertyGraph>();
  } else {
    return ckpt.status();
  }

  // 2. WAL tail: replay batches newer than the checkpoint. Batches at
  // or below last_lsn were already folded into the checkpoint —
  // skipping them makes replay idempotent.
  GQL_ASSIGN_OR_RETURN(WalContents wal, ReadWal(WalPath(dir)));
  for (const WalBatch& batch : wal.batches) {
    if (batch.lsn <= last_lsn) continue;
    GQL_RETURN_IF_ERROR(ApplyWalBatch(graph.get(), batch));
    last_lsn = batch.lsn;
  }

  // 3. Resume appending after the last valid frame, dropping any torn
  // or corrupt tail a crashed writer left behind. valid_bytes is 0 when
  // the crash landed inside the initial header write; TruncateTo clamps
  // to the fresh header WalWriter::Open just wrote, never below it.
  GQL_ASSIGN_OR_RETURN(std::unique_ptr<WalWriter> writer,
                       WalWriter::Open(WalPath(dir)));
  if (wal.valid_bytes < wal.file_bytes) {
    GQL_RETURN_IF_ERROR(writer->TruncateTo(wal.valid_bytes));
  }

  return std::unique_ptr<DurableStorageEngine>(new DurableStorageEngine(
      dir, std::move(writer), std::move(graph), last_lsn));
}

Result<std::shared_ptr<PropertyGraph>> DurableStorageEngine::Recover() {
  if (recovered_ == nullptr) {
    return Status::Internal("Recover() called twice on durable storage");
  }
  return std::move(recovered_);
}

Status DurableStorageEngine::AppendCommit(std::vector<WalOp> ops) {
  if (ops.empty()) return Status::OK();
  if (wal_ == nullptr) return Status::Internal("storage engine closed");
  WalBatch batch;
  batch.lsn = last_lsn_ + 1;
  batch.ops = std::move(ops);
  GQL_RETURN_IF_ERROR(wal_->Append(batch));
  ++last_lsn_;
  return Status::OK();
}

Status DurableStorageEngine::WriteCheckpoint(const PropertyGraph& snapshot) {
  if (wal_ == nullptr) return Status::Internal("storage engine closed");
  // The snapshot contains every batch appended so far, so the new
  // checkpoint claims last_lsn_ and the log becomes redundant. Order
  // matters: the checkpoint is durable (atomic replace) BEFORE the WAL
  // shrinks — a crash between the two replays a prefix the checkpoint
  // already contains, which the lsn filter skips.
  GQL_RETURN_IF_ERROR(
      WriteCheckpointFile(CheckpointPath(dir_), snapshot, last_lsn_));
  return wal_->TruncateToHeader();
}

Status DurableStorageEngine::Close() {
  wal_.reset();
  return Status::OK();
}

}  // namespace gqlite
