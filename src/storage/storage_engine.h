#ifndef GQLITE_STORAGE_STORAGE_ENGINE_H_
#define GQLITE_STORAGE_STORAGE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/graph/property_graph.h"
#include "src/storage/wal.h"

namespace gqlite {

/// The persistence boundary PropertyGraph's COW paged slot store plugs
/// into. The in-memory engine is one implementation (everything a
/// no-op); the durable engine backs a directory with a write-ahead log
/// and checkpoint files. CypherEngine drives it at exactly three
/// points: Recover() at open, AppendCommit() inside the commit path
/// (before the commit is acknowledged), and WriteCheckpoint() on
/// demand.
class StorageEngine {
 public:
  virtual ~StorageEngine() = default;

  /// True when commits must be appended to this engine before being
  /// acknowledged (i.e. the engine attaches a WalRecorder).
  virtual bool durable() const = 0;

  /// Produces the starting graph: a fresh one for in-memory, the
  /// latest checkpoint plus the replayed WAL tail for durable storage.
  /// Called once, before any AppendCommit.
  virtual Result<std::shared_ptr<PropertyGraph>> Recover() = 0;

  /// Durably appends one committed batch; on OK the batch survives any
  /// crash. An empty batch is a no-op.
  virtual Status AppendCommit(std::vector<WalOp> ops) = 0;

  /// Serializes `snapshot` (the frozen committed state, whose WAL
  /// position is "everything appended so far") as the new recovery
  /// baseline and drops the now-redundant log.
  virtual Status WriteCheckpoint(const PropertyGraph& snapshot) = 0;

  virtual Status Close() = 0;
};

/// No durability: Recover hands out a fresh graph; appends and
/// checkpoints succeed without doing anything.
class InMemoryStorageEngine : public StorageEngine {
 public:
  bool durable() const override { return false; }
  Result<std::shared_ptr<PropertyGraph>> Recover() override {
    return std::make_shared<PropertyGraph>();
  }
  Status AppendCommit(std::vector<WalOp> /*ops*/) override {
    return Status::OK();
  }
  Status WriteCheckpoint(const PropertyGraph& /*snapshot*/) override {
    return Status::OK();
  }
  Status Close() override { return Status::OK(); }
};

/// Directory-backed durability:
///
///   <dir>/checkpoint.gql  — latest checkpoint (atomic-replace)
///   <dir>/wal.log         — WAL tail since that checkpoint
///
/// Open() performs recovery eagerly: load the checkpoint if present,
/// replay WAL batches with lsn above the checkpoint's, truncate any
/// torn/corrupt tail the crashed writer left, and resume appending
/// after the last valid frame.
class DurableStorageEngine : public StorageEngine {
 public:
  static Result<std::unique_ptr<DurableStorageEngine>> Open(
      const std::string& dir);

  bool durable() const override { return true; }
  Result<std::shared_ptr<PropertyGraph>> Recover() override;
  Status AppendCommit(std::vector<WalOp> ops) override;
  Status WriteCheckpoint(const PropertyGraph& snapshot) override;
  Status Close() override;

  /// LSN of the last durable batch (checkpointed or appended).
  uint64_t last_lsn() const { return last_lsn_; }
  const std::string& dir() const { return dir_; }

 private:
  DurableStorageEngine(std::string dir, std::unique_ptr<WalWriter> wal,
                       std::shared_ptr<PropertyGraph> recovered,
                       uint64_t last_lsn)
      : dir_(std::move(dir)),
        wal_(std::move(wal)),
        recovered_(std::move(recovered)),
        last_lsn_(last_lsn) {}

  std::string dir_;
  std::unique_ptr<WalWriter> wal_;
  /// Held between Open() and Recover(); handed to the engine exactly
  /// once.
  std::shared_ptr<PropertyGraph> recovered_;
  uint64_t last_lsn_ = 0;
};

}  // namespace gqlite

#endif  // GQLITE_STORAGE_STORAGE_ENGINE_H_
