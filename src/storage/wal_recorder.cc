#include "src/storage/wal_recorder.h"

#include <utility>

namespace gqlite {

void WalRecorder::Rebind(const PropertyGraph* g) {
  graph_ = g;
  labels_seen_ = g->labels().size();
  types_seen_ = g->types().size();
  keys_seen_ = g->keys().size();
  pending_.clear();
}

bool WalRecorder::HasPending() const {
  return !pending_.empty() || labels_seen_ < graph_->labels().size() ||
         types_seen_ < graph_->types().size() ||
         keys_seen_ < graph_->keys().size();
}

std::vector<WalOp> WalRecorder::TakePending() {
  // Catch symbols interned since the last recorded op (including ones
  // interned by data-neutral calls after it).
  SyncInterners();
  std::vector<WalOp> out = std::move(pending_);
  pending_.clear();
  return out;
}

void WalRecorder::DiscardPending() { pending_.clear(); }

void WalRecorder::SyncInterners() {
  auto sync = [this](const StringInterner& interner, size_t* seen,
                     WalOpType type) {
    for (size_t id = *seen; id < interner.size(); ++id) {
      WalOp op;
      op.type = type;
      op.id = id;
      op.name = interner.ToString(static_cast<SymbolId>(id));
      pending_.push_back(std::move(op));
    }
    *seen = interner.size();
  };
  sync(graph_->labels(), &labels_seen_, WalOpType::kInternLabel);
  sync(graph_->types(), &types_seen_, WalOpType::kInternType);
  sync(graph_->keys(), &keys_seen_, WalOpType::kInternKey);
}

void WalRecorder::OnCreateNode(NodeId id,
                               const std::vector<std::string>& labels,
                               const PropertyList& props) {
  SyncInterners();
  WalOp op;
  op.type = WalOpType::kCreateNode;
  op.id = id.id;
  op.labels = labels;
  op.props = props;
  pending_.push_back(std::move(op));
}

void WalRecorder::OnCreateRelationship(RelId id, NodeId src, NodeId tgt,
                                       std::string_view type,
                                       const PropertyList& props) {
  SyncInterners();
  WalOp op;
  op.type = WalOpType::kCreateRelationship;
  op.id = id.id;
  op.src = src.id;
  op.tgt = tgt.id;
  op.name = std::string(type);
  op.props = props;
  pending_.push_back(std::move(op));
}

void WalRecorder::OnAddLabel(NodeId n, std::string_view label) {
  SyncInterners();
  WalOp op;
  op.type = WalOpType::kAddLabel;
  op.id = n.id;
  op.name = std::string(label);
  pending_.push_back(std::move(op));
}

void WalRecorder::OnRemoveLabel(NodeId n, std::string_view label) {
  SyncInterners();
  WalOp op;
  op.type = WalOpType::kRemoveLabel;
  op.id = n.id;
  op.name = std::string(label);
  pending_.push_back(std::move(op));
}

void WalRecorder::OnSetNodeProperty(NodeId n, std::string_view key,
                                    const Value& v) {
  SyncInterners();
  WalOp op;
  op.type = WalOpType::kSetNodeProperty;
  op.id = n.id;
  op.name = std::string(key);
  op.value = v;
  pending_.push_back(std::move(op));
}

void WalRecorder::OnSetRelProperty(RelId r, std::string_view key,
                                   const Value& v) {
  SyncInterners();
  WalOp op;
  op.type = WalOpType::kSetRelProperty;
  op.id = r.id;
  op.name = std::string(key);
  op.value = v;
  pending_.push_back(std::move(op));
}

void WalRecorder::OnDeleteRelationship(RelId r) {
  SyncInterners();
  WalOp op;
  op.type = WalOpType::kDeleteRelationship;
  op.id = r.id;
  pending_.push_back(std::move(op));
}

void WalRecorder::OnDeleteNode(NodeId n) {
  SyncInterners();
  WalOp op;
  op.type = WalOpType::kDeleteNode;
  op.id = n.id;
  pending_.push_back(std::move(op));
}

}  // namespace gqlite
