#include "src/storage/io_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gqlite {

namespace {

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

/// Directory of `path` ("." when it has no slash).
std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// fsync on a directory makes preceding renames/unlinks in it durable.
Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("open dir", dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoStatus("fsync dir", dir);
  return Status::OK();
}

}  // namespace

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status EnsureDirectory(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty directory path");
  // Walk the components, creating each missing prefix.
  for (size_t i = 1; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') continue;
    std::string prefix = path.substr(0, i);
    if (::mkdir(prefix.c_str(), 0755) == 0 || errno == EEXIST) continue;
    return ErrnoStatus("mkdir", prefix);
  }
  struct stat st;
  if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument("not a directory: " + path);
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return ErrnoStatus("open", path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus("read", path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

namespace {

Status WriteAll(int fd, std::string_view data, const std::string& path) {
  while (!data.empty()) {
    ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

}  // namespace

Status AtomicWriteFile(const std::string& path, std::string_view data) {
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoStatus("open", tmp);
  Status st = WriteAll(fd, data, tmp);
  if (st.ok() && ::fsync(fd) != 0) st = ErrnoStatus("fsync", tmp);
  ::close(fd);
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status err = ErrnoStatus("rename", tmp);
    ::unlink(tmp.c_str());
    return err;
  }
  return SyncDir(ParentDir(path));
}

Status RemoveFileDurably(const std::string& path) {
  if (::unlink(path.c_str()) != 0) {
    if (errno == ENOENT) return Status::OK();
    return ErrnoStatus("unlink", path);
  }
  return SyncDir(ParentDir(path));
}

Result<std::unique_ptr<AppendFile>> AppendFile::Open(const std::string& path) {
  int fd =
      ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoStatus("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status err = ErrnoStatus("fstat", path);
    ::close(fd);
    return err;
  }
  return std::unique_ptr<AppendFile>(
      new AppendFile(fd, static_cast<uint64_t>(st.st_size), path));
}

AppendFile::~AppendFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status AppendFile::Append(std::string_view data) {
  GQL_RETURN_IF_ERROR(WriteAll(fd_, data, path_));
  size_ += data.size();
  return Status::OK();
}

Status AppendFile::Sync() {
  if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync", path_);
  return Status::OK();
}

Status AppendFile::TruncateTo(uint64_t new_size) {
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    return ErrnoStatus("ftruncate", path_);
  }
  size_ = new_size;
  return Sync();
}

Status AppendFile::Close() {
  if (fd_ < 0) return Status::OK();
  int rc = ::close(fd_);
  fd_ = -1;
  if (rc != 0) return ErrnoStatus("close", path_);
  return Status::OK();
}

}  // namespace gqlite
