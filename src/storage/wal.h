#ifndef GQLITE_STORAGE_WAL_H_
#define GQLITE_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/graph/property_graph.h"
#include "src/storage/io_file.h"
#include "src/value/value.h"

namespace gqlite {

/// ## WAL file format
///
/// A single append-only file:
///
///   header:  8-byte magic "GQLWAL1\n", u32 format version (1)
///   frames:  [u32 payload_len][u32 crc32c(payload)][payload]*
///   payload: [u64 lsn][u32 op_count][op]*
///
/// One frame per committed transaction (plus one per flushed run of
/// non-transactional setup writes). The writer appends the frame and
/// fdatasyncs BEFORE the commit is acknowledged; recovery accepts the
/// longest prefix of frames whose length fits and whose CRC matches,
/// and discards everything after the first torn/corrupt frame — which
/// is exactly the possibly-partial last write of a crashed process.
///
/// LSNs are assigned contiguously per batch. A checkpoint records the
/// last LSN it contains; replay skips batches at or below it, which
/// makes replay idempotent (applying checkpoint + the same WAL twice
/// yields the same graph).

/// Logical operation kinds. Intern ops pre-assign symbol ids so a
/// recovered graph's interners are bit-identical to the writer's
/// (including symbols interned by writes that changed nothing); entity
/// ops carry strings, never symbol ids, so each op is self-describing.
enum class WalOpType : uint8_t {
  kInternLabel = 1,
  kInternType = 2,
  kInternKey = 3,
  kCreateNode = 4,
  kCreateRelationship = 5,
  kAddLabel = 6,
  kRemoveLabel = 7,
  kSetNodeProperty = 8,
  kSetRelProperty = 9,
  kDeleteRelationship = 10,
  kDeleteNode = 11,
};

/// One logical operation. A single flat struct (rather than a variant)
/// keeps the codec and the applier simple; unused fields stay empty.
struct WalOp {
  WalOpType type{};
  /// Entity id the mutation produced/targeted; for intern ops, the
  /// SymbolId the writer assigned (replay verifies it re-assigns the
  /// same one).
  uint64_t id = 0;
  uint64_t src = 0;  // kCreateRelationship
  uint64_t tgt = 0;  // kCreateRelationship
  /// Label / relationship type / property key / interned string.
  std::string name;
  std::vector<std::string> labels;  // kCreateNode
  PropertyList props;               // kCreateNode, kCreateRelationship
  Value value;                      // kSet*Property (null == removal)
};

/// One committed record batch.
struct WalBatch {
  uint64_t lsn = 0;
  std::vector<WalOp> ops;
};

/// Appends framed batches to the log. Single-writer (the engine's
/// transaction slot serializes commits).
class WalWriter {
 public:
  /// Opens or creates the log; a fresh file gets the header written and
  /// synced immediately. Honors GQLITE_WAL_CRASH_AFTER_BYTES (see
  /// Append).
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path);

  /// Serializes, appends and fdatasyncs one batch; on return the batch
  /// is durable.
  ///
  /// On an I/O failure (partial write, failed fdatasync — ENOSPC, EIO)
  /// the writer truncates the file back to the pre-append size so no
  /// torn frame bytes linger mid-log; if even that restore fails, the
  /// writer poisons itself and every later Append returns the poison
  /// status. Either way the log never accepts a new frame after
  /// garbage — recovery stops at the first bad frame, so a frame behind
  /// torn bytes would be an acknowledged-then-lost commit.
  ///
  /// Crash injection for recovery tests: when the environment variable
  /// GQLITE_WAL_CRASH_AFTER_BYTES is set, the writer only persists log
  /// bytes up to that absolute file offset — a frame crossing the limit
  /// is written as a prefix, synced, and the process _exit(137)s,
  /// simulating power loss at an arbitrary point of a commit's write.
  Status Append(const WalBatch& batch);

  /// Drops every frame (after a checkpoint made them redundant),
  /// keeping the header. On success this also clears an Append poison:
  /// the checkpoint holds everything and the log is a clean header
  /// again.
  Status TruncateToHeader();
  /// Drops a corrupt/torn tail found by ReadWal (recovery path).
  /// Clamped to never drop the header — ReadWal reports valid_bytes=0
  /// for a file shorter than the header, but by the time recovery calls
  /// this, Open has already (re)written and synced a fresh header that
  /// must survive (a headerless log makes every later commit unreadable
  /// at the next recovery).
  Status TruncateTo(uint64_t size);

  uint64_t size() const { return file_->size(); }

 private:
  explicit WalWriter(std::unique_ptr<AppendFile> file, int64_t crash_after)
      : file_(std::move(file)), crash_after_bytes_(crash_after) {}

  /// Appends `data` and fdatasyncs, honoring crash injection; on
  /// failure restores the pre-append file size (or poisons the writer
  /// when the restore fails too).
  Status AppendDurably(std::string_view data);

  std::unique_ptr<AppendFile> file_;
  /// Absolute file offset beyond which writes crash the process; < 0
  /// means injection is off.
  int64_t crash_after_bytes_ = -1;
  /// Non-OK once an append failure left the file in an unknown state;
  /// every later Append fails with this until a checkpoint resets the
  /// log (TruncateToHeader).
  Status poison_;
};

/// Everything a log file yields at recovery.
struct WalContents {
  std::vector<WalBatch> batches;
  /// Bytes of the valid prefix (header + intact frames). When less than
  /// `file_bytes`, the tail after it is torn or corrupt and must be
  /// truncated before appending resumes.
  uint64_t file_bytes = 0;
  uint64_t valid_bytes = 0;
};

/// Reads and validates the log. A missing file reads as empty contents;
/// a torn or CRC-corrupt tail is dropped (reported via valid_bytes <
/// file_bytes), matching the crash contract. Corruption is only
/// returned for a file that cannot be a WAL at all (bad magic/version).
Result<WalContents> ReadWal(const std::string& path);

/// Replays one batch against `graph` by invoking the same primitive
/// mutators the original writer used, verifying that every assigned
/// node/relationship/symbol id matches the logged one (the append-only
/// id invariant). Any mismatch or mutator failure is Corruption: the
/// log does not match the graph state it is being applied to.
Status ApplyWalBatch(PropertyGraph* graph, const WalBatch& batch);

// Codec entry points, exposed for the format unit tests.
void EncodeWalBatchPayload(const WalBatch& batch, std::string* out);
Result<WalBatch> DecodeWalBatchPayload(std::string_view payload);

}  // namespace gqlite

#endif  // GQLITE_STORAGE_WAL_H_
