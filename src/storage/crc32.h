#ifndef GQLITE_STORAGE_CRC32_H_
#define GQLITE_STORAGE_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gqlite {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected) over `data`,
/// continuing from `seed` (pass the previous return value to checksum a
/// buffer in pieces; 0 starts a fresh checksum). This is the frame
/// checksum of the WAL and the body checksum of checkpoint files: its
/// error-detection properties for short records are better than the
/// zlib polynomial's, and hardware implementations agree on the same
/// bit ordering, so files stay portable if the loop is ever swapped for
/// SSE4.2 intrinsics.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

}  // namespace gqlite

#endif  // GQLITE_STORAGE_CRC32_H_
