#ifndef GQLITE_STORAGE_RECORD_CODEC_H_
#define GQLITE_STORAGE_RECORD_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/value/value.h"

namespace gqlite {

/// Binary encoding primitives shared by the WAL and checkpoint formats.
/// Integers are fixed-width little-endian, written byte by byte so the
/// files are identical across host endianness; strings are u32 length +
/// raw bytes. No varints: the WAL hot path is dominated by fdatasync,
/// and fixed widths keep torn-frame detection trivial.
class BinaryWriter {
 public:
  /// Appends to `*out`; the caller owns the buffer.
  explicit BinaryWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }
  /// Full Value codec: every ValueType round-trips, including nested
  /// lists/maps and the temporal types. Node/relationship/path values
  /// encode their ids (they are only meaningful against the same graph,
  /// which is exactly the WAL/checkpoint situation).
  void PutValue(const Value& v);

 private:
  std::string* out_;
};

/// Bounds-checked reader over an encoded buffer. Every accessor returns
/// Corruption instead of reading past the end — torn WAL frames and
/// truncated checkpoint sections surface as Status, never as UB.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int32_t> I32();
  Result<int64_t> I64();
  Result<double> Double();
  Result<std::string> String();
  Result<Value> ReadValue() { return ReadValueAtDepth(0); }

 private:
  Result<Value> ReadValueAtDepth(int depth);

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace gqlite

#endif  // GQLITE_STORAGE_RECORD_CODEC_H_
