#include "src/storage/record_codec.h"

#include <cstring>
#include <utility>

namespace gqlite {

namespace {

/// Containers nest at most this deep in an encoded value. Deeper data
/// is rejected as corrupt rather than recursed into — a malformed
/// length field must not be able to blow the stack.
constexpr int kMaxValueDepth = 64;

}  // namespace

void BinaryWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  PutU64(bits);
}

void BinaryWriter::PutValue(const Value& v) {
  PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      PutU8(v.AsBool() ? 1 : 0);
      break;
    case ValueType::kInt:
      PutI64(v.AsInt());
      break;
    case ValueType::kFloat:
      PutDouble(v.AsFloat());
      break;
    case ValueType::kString:
      PutString(v.AsString());
      break;
    case ValueType::kList: {
      const ValueList& items = v.AsList();
      PutU32(static_cast<uint32_t>(items.size()));
      for (const Value& item : items) PutValue(item);
      break;
    }
    case ValueType::kMap: {
      const ValueMap& m = v.AsMap();
      PutU32(static_cast<uint32_t>(m.size()));
      for (const auto& [k, item] : m) {
        PutString(k);
        PutValue(item);
      }
      break;
    }
    case ValueType::kNode:
      PutU64(v.AsNode().id);
      break;
    case ValueType::kRelationship:
      PutU64(v.AsRelationship().id);
      break;
    case ValueType::kPath: {
      const Path& p = v.AsPath();
      PutU32(static_cast<uint32_t>(p.nodes.size()));
      for (NodeId n : p.nodes) PutU64(n.id);
      PutU32(static_cast<uint32_t>(p.rels.size()));
      for (RelId r : p.rels) PutU64(r.id);
      break;
    }
    case ValueType::kDate:
      PutI64(v.AsDate().days_since_epoch);
      break;
    case ValueType::kLocalTime:
      PutI64(v.AsLocalTime().nanos_since_midnight);
      break;
    case ValueType::kTime:
      PutI64(v.AsTime().local.nanos_since_midnight);
      PutI32(v.AsTime().offset_seconds);
      break;
    case ValueType::kLocalDateTime:
      PutI64(v.AsLocalDateTime().date.days_since_epoch);
      PutI64(v.AsLocalDateTime().time.nanos_since_midnight);
      break;
    case ValueType::kDateTime:
      PutI64(v.AsDateTime().local.date.days_since_epoch);
      PutI64(v.AsDateTime().local.time.nanos_since_midnight);
      PutI32(v.AsDateTime().offset_seconds);
      break;
    case ValueType::kDuration: {
      Duration d = v.AsDuration();
      PutI64(d.months);
      PutI64(d.days);
      PutI64(d.seconds);
      PutI64(d.nanos);
      break;
    }
  }
}

Result<uint8_t> BinaryReader::U8() {
  if (remaining() < 1) return Status::Corruption("record truncated (u8)");
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> BinaryReader::U32() {
  if (remaining() < 4) return Status::Corruption("record truncated (u32)");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> BinaryReader::U64() {
  if (remaining() < 8) return Status::Corruption("record truncated (u64)");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int32_t> BinaryReader::I32() {
  GQL_ASSIGN_OR_RETURN(uint32_t v, U32());
  return static_cast<int32_t>(v);
}

Result<int64_t> BinaryReader::I64() {
  GQL_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

Result<double> BinaryReader::Double() {
  GQL_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

Result<std::string> BinaryReader::String() {
  GQL_ASSIGN_OR_RETURN(uint32_t len, U32());
  if (remaining() < len) return Status::Corruption("record truncated (string)");
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

Result<Value> BinaryReader::ReadValueAtDepth(int depth) {
  if (depth > kMaxValueDepth) {
    return Status::Corruption("value nesting exceeds limit");
  }
  GQL_ASSIGN_OR_RETURN(uint8_t tag, U8());
  if (tag > static_cast<uint8_t>(ValueType::kDuration)) {
    return Status::Corruption("unknown value tag " + std::to_string(tag));
  }
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      GQL_ASSIGN_OR_RETURN(uint8_t b, U8());
      return Value::Bool(b != 0);
    }
    case ValueType::kInt: {
      GQL_ASSIGN_OR_RETURN(int64_t i, I64());
      return Value::Int(i);
    }
    case ValueType::kFloat: {
      GQL_ASSIGN_OR_RETURN(double d, Double());
      return Value::Float(d);
    }
    case ValueType::kString: {
      GQL_ASSIGN_OR_RETURN(std::string s, String());
      return Value::String(std::move(s));
    }
    case ValueType::kList: {
      GQL_ASSIGN_OR_RETURN(uint32_t n, U32());
      // Each element is at least a 1-byte tag; a count beyond the
      // remaining bytes is corrupt, not a reason to pre-reserve 4 GiB.
      if (n > remaining()) return Status::Corruption("list count too large");
      ValueList items;
      items.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        GQL_ASSIGN_OR_RETURN(Value item, ReadValueAtDepth(depth + 1));
        items.push_back(std::move(item));
      }
      return Value::MakeList(std::move(items));
    }
    case ValueType::kMap: {
      GQL_ASSIGN_OR_RETURN(uint32_t n, U32());
      if (n > remaining()) return Status::Corruption("map count too large");
      ValueMap m;
      for (uint32_t i = 0; i < n; ++i) {
        GQL_ASSIGN_OR_RETURN(std::string k, String());
        GQL_ASSIGN_OR_RETURN(Value item, ReadValueAtDepth(depth + 1));
        m.emplace(std::move(k), std::move(item));
      }
      return Value::MakeMap(std::move(m));
    }
    case ValueType::kNode: {
      GQL_ASSIGN_OR_RETURN(uint64_t id, U64());
      return Value::Node(NodeId{id});
    }
    case ValueType::kRelationship: {
      GQL_ASSIGN_OR_RETURN(uint64_t id, U64());
      return Value::Relationship(RelId{id});
    }
    case ValueType::kPath: {
      GQL_ASSIGN_OR_RETURN(uint32_t num_nodes, U32());
      if (num_nodes > remaining()) {
        return Status::Corruption("path node count too large");
      }
      Path p;
      p.nodes.reserve(num_nodes);
      for (uint32_t i = 0; i < num_nodes; ++i) {
        GQL_ASSIGN_OR_RETURN(uint64_t id, U64());
        p.nodes.push_back(NodeId{id});
      }
      GQL_ASSIGN_OR_RETURN(uint32_t num_rels, U32());
      if (num_rels > remaining()) {
        return Status::Corruption("path rel count too large");
      }
      p.rels.reserve(num_rels);
      for (uint32_t i = 0; i < num_rels; ++i) {
        GQL_ASSIGN_OR_RETURN(uint64_t id, U64());
        p.rels.push_back(RelId{id});
      }
      if (p.nodes.size() != p.rels.size() + 1) {
        return Status::Corruption("path shape invalid");
      }
      return Value::MakePath(std::move(p));
    }
    case ValueType::kDate: {
      GQL_ASSIGN_OR_RETURN(int64_t days, I64());
      return Value::Temporal(Date{days});
    }
    case ValueType::kLocalTime: {
      GQL_ASSIGN_OR_RETURN(int64_t nanos, I64());
      return Value::Temporal(LocalTime{nanos});
    }
    case ValueType::kTime: {
      GQL_ASSIGN_OR_RETURN(int64_t nanos, I64());
      GQL_ASSIGN_OR_RETURN(int32_t off, I32());
      return Value::Temporal(ZonedTime{LocalTime{nanos}, off});
    }
    case ValueType::kLocalDateTime: {
      GQL_ASSIGN_OR_RETURN(int64_t days, I64());
      GQL_ASSIGN_OR_RETURN(int64_t nanos, I64());
      return Value::Temporal(LocalDateTime{Date{days}, LocalTime{nanos}});
    }
    case ValueType::kDateTime: {
      GQL_ASSIGN_OR_RETURN(int64_t days, I64());
      GQL_ASSIGN_OR_RETURN(int64_t nanos, I64());
      GQL_ASSIGN_OR_RETURN(int32_t off, I32());
      return Value::Temporal(
          ZonedDateTime{LocalDateTime{Date{days}, LocalTime{nanos}}, off});
    }
    case ValueType::kDuration: {
      GQL_ASSIGN_OR_RETURN(int64_t months, I64());
      GQL_ASSIGN_OR_RETURN(int64_t days, I64());
      GQL_ASSIGN_OR_RETURN(int64_t seconds, I64());
      GQL_ASSIGN_OR_RETURN(int64_t nanos, I64());
      // Bypass Duration::Make's normalization: the writer stored the
      // exact component values, and replay must reproduce them.
      Duration d;
      d.months = months;
      d.days = days;
      d.seconds = seconds;
      d.nanos = nanos;
      return Value::Temporal(d);
    }
  }
  return Status::Corruption("unreachable value tag");
}

}  // namespace gqlite
