#include "src/storage/crc32.h"

#include <array>

namespace gqlite {

namespace {

/// Byte-at-a-time table for reflected CRC-32C, built at compile time.
constexpr std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = BuildTable();

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xFF];
  }
  return ~crc;
}

}  // namespace gqlite
