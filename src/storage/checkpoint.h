#ifndef GQLITE_STORAGE_CHECKPOINT_H_
#define GQLITE_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/interner.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/graph/property_graph.h"

namespace gqlite {

/// A graph restored from disk plus the LSN of the last WAL batch its
/// state includes (replay skips batches at or below it).
struct RecoveredGraph {
  std::shared_ptr<PropertyGraph> graph;
  uint64_t last_lsn = 0;
};

/// PropertyGraph's single serialization friend (see the friend
/// declaration in property_graph.h). Checkpoints are a verbatim dump of
/// the private state — record pages including tombstones and property
/// order, all three interners in id order, label-index postings, and
/// every statistic (degree histograms, label/type counts, KMV NDV
/// sketches — the sketches are insert-only and NOT derivable from live
/// records, so reloading them verbatim is what keeps cached-plan
/// estimates identical across a restart).
class StorageInternals {
 public:
  /// Appends the checkpoint body (no file header/CRC) to `*out`.
  static void EncodeGraph(const PropertyGraph& g, uint64_t last_lsn,
                          std::string* out);
  /// Inverse of EncodeGraph over exactly one body.
  static Result<RecoveredGraph> DecodeGraph(std::string_view body);

  // WAL-replay backdoors (the applier pre-interns symbols so a
  // recovered interner is bit-identical to the writer's).
  static SymbolId InternLabel(PropertyGraph* g, std::string_view s);
  static SymbolId InternType(PropertyGraph* g, std::string_view s);
  static SymbolId InternKey(PropertyGraph* g, std::string_view s);
};

/// Writes `g` (typically a frozen committed snapshot) as a checkpoint
/// file at `path` via crash-atomic replace. The file is self-validating
/// (magic, version, CRC32C over the body).
Status WriteCheckpointFile(const std::string& path, const PropertyGraph& g,
                           uint64_t last_lsn);

/// Loads and validates a checkpoint file. NotFound when absent,
/// Corruption when it fails validation.
Result<RecoveredGraph> ReadCheckpointFile(const std::string& path);

}  // namespace gqlite

#endif  // GQLITE_STORAGE_CHECKPOINT_H_
