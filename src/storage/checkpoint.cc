#include "src/storage/checkpoint.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/storage/crc32.h"
#include "src/storage/io_file.h"
#include "src/storage/record_codec.h"

namespace gqlite {

namespace {

constexpr std::string_view kCkptMagic = "GQLCKP1\n";
constexpr uint32_t kCkptVersion = 1;

/// Sorted keys of an unordered_map, so sections serialize
/// deterministically (same graph state => byte-identical checkpoint).
template <typename Map>
std::vector<typename Map::key_type> SortedKeys(const Map& m) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(m.size());
  for (const auto& [k, v] : m) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}

void EncodeInterner(const StringInterner& interner, BinaryWriter* w) {
  // Id 0 is the reserved empty symbol; persisted ids start at 1.
  w->PutU32(static_cast<uint32_t>(interner.size() - 1));
  for (SymbolId id = 1; id < interner.size(); ++id) {
    w->PutString(interner.ToString(id));
  }
}

Status DecodeInterner(BinaryReader* r, StringInterner* interner) {
  GQL_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  for (uint32_t i = 1; i <= n; ++i) {
    GQL_ASSIGN_OR_RETURN(std::string s, r->String());
    SymbolId got = interner->Intern(s);
    if (got != i) {
      return Status::Corruption("interner id drift at symbol " +
                                std::to_string(i));
    }
  }
  return Status::OK();
}

void EncodeProps(const std::vector<std::pair<SymbolId, Value>>& props,
                 BinaryWriter* w) {
  w->PutU32(static_cast<uint32_t>(props.size()));
  for (const auto& [k, v] : props) {
    w->PutU32(k);
    w->PutValue(v);
  }
}

Status DecodeProps(BinaryReader* r,
                   std::vector<std::pair<SymbolId, Value>>* props) {
  GQL_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  if (n > r->remaining()) return Status::Corruption("prop count too large");
  props->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    GQL_ASSIGN_OR_RETURN(uint32_t k, r->U32());
    GQL_ASSIGN_OR_RETURN(Value v, r->ReadValue());
    props->emplace_back(k, std::move(v));
  }
  return Status::OK();
}

}  // namespace

void StorageInternals::EncodeGraph(const PropertyGraph& g, uint64_t last_lsn,
                                   std::string* out) {
  BinaryWriter w(out);
  w.PutU64(last_lsn);
  w.PutU64(g.node_slots_);
  w.PutU64(g.rel_slots_);
  w.PutU64(g.num_nodes_);
  w.PutU64(g.num_rels_);
  w.PutU64(g.stats_version_);
  w.PutU64(g.data_version_);

  EncodeInterner(g.labels_, &w);
  EncodeInterner(g.types_, &w);
  EncodeInterner(g.keys_, &w);

  // Records, in slot order, tombstones included — slot ids ARE the
  // entity ids, so the dump preserves them by construction.
  for (size_t i = 0; i < g.node_slots_; ++i) {
    const PropertyGraph::NodeRecord& rec = g.node(NodeId{i});
    w.PutU8(rec.deleted ? 1 : 0);
    w.PutU32(static_cast<uint32_t>(rec.labels.size()));
    for (SymbolId s : rec.labels) w.PutU32(s);
    EncodeProps(rec.props, &w);
    w.PutU32(static_cast<uint32_t>(rec.out.size()));
    for (RelId r : rec.out) w.PutU64(r.id);
    w.PutU32(static_cast<uint32_t>(rec.in.size()));
    for (RelId r : rec.in) w.PutU64(r.id);
  }
  for (size_t i = 0; i < g.rel_slots_; ++i) {
    const PropertyGraph::RelRecord& rec = g.rel(RelId{i});
    w.PutU8(rec.deleted ? 1 : 0);
    w.PutU64(rec.src.id);
    w.PutU64(rec.tgt.id);
    w.PutU32(rec.type);
    EncodeProps(rec.props, &w);
  }

  // Label-index postings, verbatim (posting order is observable via
  // NodeByLabelScan row order).
  {
    std::vector<SymbolId> keys = SortedKeys(g.label_index_);
    w.PutU32(static_cast<uint32_t>(keys.size()));
    for (SymbolId s : keys) {
      const auto& entry = g.label_index_.at(s);
      w.PutU32(s);
      if (!entry.payload) {
        w.PutU32(0);
        continue;
      }
      w.PutU32(static_cast<uint32_t>(entry.payload->size()));
      for (NodeId n : *entry.payload) w.PutU64(n.id);
    }
  }

  // Statistics. The KMV sketches are insert-only (deletes never
  // retract), so they cannot be recomputed from live records — they are
  // persisted exactly.
  auto encode_sym_count = [&w](const std::unordered_map<SymbolId, size_t>& m) {
    std::vector<SymbolId> keys = SortedKeys(m);
    w.PutU32(static_cast<uint32_t>(keys.size()));
    for (SymbolId s : keys) {
      w.PutU32(s);
      w.PutU64(m.at(s));
    }
  };
  encode_sym_count(g.label_counts_);
  encode_sym_count(g.type_counts_);
  auto encode_pair_count = [&w](const std::unordered_map<uint64_t, size_t>& m) {
    std::vector<uint64_t> keys = SortedKeys(m);
    w.PutU32(static_cast<uint32_t>(keys.size()));
    for (uint64_t k : keys) {
      w.PutU64(k);
      w.PutU64(m.at(k));
    }
  };
  encode_pair_count(g.label_type_out_counts_);
  encode_pair_count(g.label_type_in_counts_);
  {
    std::vector<SymbolId> keys = SortedKeys(g.type_degree_stats_);
    w.PutU32(static_cast<uint32_t>(keys.size()));
    for (SymbolId s : keys) {
      const PropertyGraph::TypeDegreeStats& ds = g.type_degree_stats_.at(s);
      w.PutU32(s);
      w.PutU64(ds.distinct_sources);
      w.PutU64(ds.distinct_targets);
      for (size_t b : ds.out_hist) w.PutU64(b);
      for (size_t b : ds.in_hist) w.PutU64(b);
    }
  }
  auto encode_ndv =
      [&w](const std::unordered_map<SymbolId, PropertyGraph::KmvSketch>& m) {
        std::vector<SymbolId> keys = SortedKeys(m);
        w.PutU32(static_cast<uint32_t>(keys.size()));
        for (SymbolId s : keys) {
          const auto& sketch = m.at(s);
          w.PutU32(s);
          w.PutU32(static_cast<uint32_t>(sketch.mins.size()));
          for (uint64_t h : sketch.mins) w.PutU64(h);
        }
      };
  encode_ndv(g.node_ndv_);
  encode_ndv(g.rel_ndv_);
}

Result<RecoveredGraph> StorageInternals::DecodeGraph(std::string_view body) {
  BinaryReader r(body);
  RecoveredGraph out;
  out.graph = std::make_shared<PropertyGraph>();
  PropertyGraph& g = *out.graph;

  GQL_ASSIGN_OR_RETURN(out.last_lsn, r.U64());
  GQL_ASSIGN_OR_RETURN(uint64_t node_slots, r.U64());
  GQL_ASSIGN_OR_RETURN(uint64_t rel_slots, r.U64());
  GQL_ASSIGN_OR_RETURN(g.num_nodes_, r.U64());
  GQL_ASSIGN_OR_RETURN(g.num_rels_, r.U64());
  GQL_ASSIGN_OR_RETURN(g.stats_version_, r.U64());
  GQL_ASSIGN_OR_RETURN(g.data_version_, r.U64());
  // Each record costs at least one byte; reject absurd counts before
  // looping (a corrupt length must not allocate unboundedly).
  if (node_slots > r.remaining() || rel_slots > r.remaining()) {
    return Status::Corruption("slot count too large");
  }

  GQL_RETURN_IF_ERROR(DecodeInterner(&r, &g.labels_));
  GQL_RETURN_IF_ERROR(DecodeInterner(&r, &g.types_));
  GQL_RETURN_IF_ERROR(DecodeInterner(&r, &g.keys_));

  for (uint64_t i = 0; i < node_slots; ++i) {
    PropertyGraph::NodeRecord* rec =
        g.AppendSlot(&g.node_pages_, &g.node_slots_);
    GQL_ASSIGN_OR_RETURN(uint8_t deleted, r.U8());
    rec->deleted = deleted != 0;
    GQL_ASSIGN_OR_RETURN(uint32_t nl, r.U32());
    if (nl > r.remaining()) return Status::Corruption("label set too large");
    rec->labels.reserve(nl);
    for (uint32_t j = 0; j < nl; ++j) {
      GQL_ASSIGN_OR_RETURN(uint32_t s, r.U32());
      rec->labels.push_back(s);
    }
    GQL_RETURN_IF_ERROR(DecodeProps(&r, &rec->props));
    GQL_ASSIGN_OR_RETURN(uint32_t nout, r.U32());
    if (nout > r.remaining()) return Status::Corruption("adjacency too large");
    rec->out.reserve(nout);
    for (uint32_t j = 0; j < nout; ++j) {
      GQL_ASSIGN_OR_RETURN(uint64_t id, r.U64());
      rec->out.push_back(RelId{id});
    }
    GQL_ASSIGN_OR_RETURN(uint32_t nin, r.U32());
    if (nin > r.remaining()) return Status::Corruption("adjacency too large");
    rec->in.reserve(nin);
    for (uint32_t j = 0; j < nin; ++j) {
      GQL_ASSIGN_OR_RETURN(uint64_t id, r.U64());
      rec->in.push_back(RelId{id});
    }
  }
  for (uint64_t i = 0; i < rel_slots; ++i) {
    PropertyGraph::RelRecord* rec = g.AppendSlot(&g.rel_pages_, &g.rel_slots_);
    GQL_ASSIGN_OR_RETURN(uint8_t deleted, r.U8());
    rec->deleted = deleted != 0;
    GQL_ASSIGN_OR_RETURN(uint64_t src, r.U64());
    GQL_ASSIGN_OR_RETURN(uint64_t tgt, r.U64());
    rec->src = NodeId{src};
    rec->tgt = NodeId{tgt};
    GQL_ASSIGN_OR_RETURN(rec->type, r.U32());
    GQL_RETURN_IF_ERROR(DecodeProps(&r, &rec->props));
  }

  {
    GQL_ASSIGN_OR_RETURN(uint32_t n, r.U32());
    if (n > r.remaining()) return Status::Corruption("label index too large");
    for (uint32_t i = 0; i < n; ++i) {
      GQL_ASSIGN_OR_RETURN(uint32_t s, r.U32());
      GQL_ASSIGN_OR_RETURN(uint32_t count, r.U32());
      if (count > r.remaining()) {
        return Status::Corruption("posting list too large");
      }
      auto posting = std::make_shared<std::vector<NodeId>>();
      posting->reserve(count);
      for (uint32_t j = 0; j < count; ++j) {
        GQL_ASSIGN_OR_RETURN(uint64_t id, r.U64());
        posting->push_back(NodeId{id});
      }
      auto& entry = g.label_index_[s];
      entry.payload = std::move(posting);
      entry.epoch = g.epoch_;
    }
  }

  auto decode_sym_count = [&r](std::unordered_map<SymbolId, size_t>* m)
      -> Status {
    GQL_ASSIGN_OR_RETURN(uint32_t n, r.U32());
    if (n > r.remaining()) return Status::Corruption("count map too large");
    for (uint32_t i = 0; i < n; ++i) {
      GQL_ASSIGN_OR_RETURN(uint32_t s, r.U32());
      GQL_ASSIGN_OR_RETURN(uint64_t count, r.U64());
      (*m)[s] = count;
    }
    return Status::OK();
  };
  GQL_RETURN_IF_ERROR(decode_sym_count(&g.label_counts_));
  GQL_RETURN_IF_ERROR(decode_sym_count(&g.type_counts_));
  auto decode_pair_count = [&r](std::unordered_map<uint64_t, size_t>* m)
      -> Status {
    GQL_ASSIGN_OR_RETURN(uint32_t n, r.U32());
    if (n > r.remaining()) return Status::Corruption("count map too large");
    for (uint32_t i = 0; i < n; ++i) {
      GQL_ASSIGN_OR_RETURN(uint64_t k, r.U64());
      GQL_ASSIGN_OR_RETURN(uint64_t count, r.U64());
      (*m)[k] = count;
    }
    return Status::OK();
  };
  GQL_RETURN_IF_ERROR(decode_pair_count(&g.label_type_out_counts_));
  GQL_RETURN_IF_ERROR(decode_pair_count(&g.label_type_in_counts_));
  {
    GQL_ASSIGN_OR_RETURN(uint32_t n, r.U32());
    if (n > r.remaining()) return Status::Corruption("degree stats too large");
    for (uint32_t i = 0; i < n; ++i) {
      GQL_ASSIGN_OR_RETURN(uint32_t s, r.U32());
      PropertyGraph::TypeDegreeStats& ds = g.type_degree_stats_[s];
      GQL_ASSIGN_OR_RETURN(uint64_t srcs, r.U64());
      GQL_ASSIGN_OR_RETURN(uint64_t tgts, r.U64());
      ds.distinct_sources = srcs;
      ds.distinct_targets = tgts;
      for (size_t& b : ds.out_hist) {
        GQL_ASSIGN_OR_RETURN(uint64_t v, r.U64());
        b = v;
      }
      for (size_t& b : ds.in_hist) {
        GQL_ASSIGN_OR_RETURN(uint64_t v, r.U64());
        b = v;
      }
    }
  }
  auto decode_ndv =
      [&r](std::unordered_map<SymbolId, PropertyGraph::KmvSketch>* m)
      -> Status {
    GQL_ASSIGN_OR_RETURN(uint32_t n, r.U32());
    if (n > r.remaining()) return Status::Corruption("NDV map too large");
    for (uint32_t i = 0; i < n; ++i) {
      GQL_ASSIGN_OR_RETURN(uint32_t s, r.U32());
      GQL_ASSIGN_OR_RETURN(uint32_t count, r.U32());
      if (count > r.remaining()) {
        return Status::Corruption("NDV sketch too large");
      }
      auto& sketch = (*m)[s];
      sketch.mins.reserve(count);
      for (uint32_t j = 0; j < count; ++j) {
        GQL_ASSIGN_OR_RETURN(uint64_t h, r.U64());
        sketch.mins.push_back(h);
      }
    }
    return Status::OK();
  };
  GQL_RETURN_IF_ERROR(decode_ndv(&g.node_ndv_));
  GQL_RETURN_IF_ERROR(decode_ndv(&g.rel_ndv_));

  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes in checkpoint body");
  }
  if (g.node_slots_ != node_slots || g.rel_slots_ != rel_slots) {
    return Status::Corruption("slot count mismatch after decode");
  }
  return out;
}

SymbolId StorageInternals::InternLabel(PropertyGraph* g, std::string_view s) {
  return g->labels_.Intern(s);
}
SymbolId StorageInternals::InternType(PropertyGraph* g, std::string_view s) {
  return g->types_.Intern(s);
}
SymbolId StorageInternals::InternKey(PropertyGraph* g, std::string_view s) {
  return g->keys_.Intern(s);
}

Status WriteCheckpointFile(const std::string& path, const PropertyGraph& g,
                           uint64_t last_lsn) {
  std::string body;
  StorageInternals::EncodeGraph(g, last_lsn, &body);
  std::string file(kCkptMagic);
  BinaryWriter w(&file);
  w.PutU32(kCkptVersion);
  w.PutU32(Crc32c(body));
  w.PutU64(body.size());
  file += body;
  return AtomicWriteFile(path, file);
}

Result<RecoveredGraph> ReadCheckpointFile(const std::string& path) {
  GQL_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  constexpr size_t kHeader = 8 + 4 + 4 + 8;
  if (data.size() < kHeader ||
      std::string_view(data).substr(0, kCkptMagic.size()) != kCkptMagic) {
    return Status::Corruption("not a checkpoint file: " + path);
  }
  BinaryReader header(std::string_view(data).substr(kCkptMagic.size(), 16));
  GQL_ASSIGN_OR_RETURN(uint32_t version, header.U32());
  if (version != kCkptVersion) {
    return Status::Corruption("unsupported checkpoint version " +
                              std::to_string(version) + " in " + path);
  }
  GQL_ASSIGN_OR_RETURN(uint32_t crc, header.U32());
  GQL_ASSIGN_OR_RETURN(uint64_t body_len, header.U64());
  if (data.size() != kHeader + body_len) {
    return Status::Corruption("checkpoint size mismatch: " + path);
  }
  std::string_view body = std::string_view(data).substr(kHeader);
  if (Crc32c(body) != crc) {
    return Status::Corruption("checkpoint CRC mismatch: " + path);
  }
  Result<RecoveredGraph> decoded = StorageInternals::DecodeGraph(body);
  if (!decoded.ok()) {
    return Status::Corruption("checkpoint " + path +
                              " failed to decode: " +
                              decoded.status().message());
  }
  return decoded;
}

}  // namespace gqlite
