#include "src/storage/wal.h"

#include <unistd.h>

#include <cstdlib>
#include <string_view>
#include <utility>

#include "src/storage/checkpoint.h"
#include "src/storage/crc32.h"
#include "src/storage/record_codec.h"

namespace gqlite {

namespace {

constexpr std::string_view kWalMagic = "GQLWAL1\n";
constexpr uint32_t kWalVersion = 1;
/// magic + u32 version.
constexpr uint64_t kWalHeaderSize = 12;

void EncodeWalOp(const WalOp& op, BinaryWriter* w) {
  w->PutU8(static_cast<uint8_t>(op.type));
  switch (op.type) {
    case WalOpType::kInternLabel:
    case WalOpType::kInternType:
    case WalOpType::kInternKey:
      w->PutU64(op.id);
      w->PutString(op.name);
      break;
    case WalOpType::kCreateNode:
      w->PutU64(op.id);
      w->PutU32(static_cast<uint32_t>(op.labels.size()));
      for (const std::string& l : op.labels) w->PutString(l);
      w->PutU32(static_cast<uint32_t>(op.props.size()));
      for (const auto& [k, v] : op.props) {
        w->PutString(k);
        w->PutValue(v);
      }
      break;
    case WalOpType::kCreateRelationship:
      w->PutU64(op.id);
      w->PutU64(op.src);
      w->PutU64(op.tgt);
      w->PutString(op.name);
      w->PutU32(static_cast<uint32_t>(op.props.size()));
      for (const auto& [k, v] : op.props) {
        w->PutString(k);
        w->PutValue(v);
      }
      break;
    case WalOpType::kAddLabel:
    case WalOpType::kRemoveLabel:
      w->PutU64(op.id);
      w->PutString(op.name);
      break;
    case WalOpType::kSetNodeProperty:
    case WalOpType::kSetRelProperty:
      w->PutU64(op.id);
      w->PutString(op.name);
      w->PutValue(op.value);
      break;
    case WalOpType::kDeleteRelationship:
    case WalOpType::kDeleteNode:
      w->PutU64(op.id);
      break;
  }
}

Result<WalOp> DecodeWalOp(BinaryReader* r) {
  GQL_ASSIGN_OR_RETURN(uint8_t tag, r->U8());
  if (tag < static_cast<uint8_t>(WalOpType::kInternLabel) ||
      tag > static_cast<uint8_t>(WalOpType::kDeleteNode)) {
    return Status::Corruption("unknown WAL op tag " + std::to_string(tag));
  }
  WalOp op;
  op.type = static_cast<WalOpType>(tag);
  switch (op.type) {
    case WalOpType::kInternLabel:
    case WalOpType::kInternType:
    case WalOpType::kInternKey: {
      GQL_ASSIGN_OR_RETURN(op.id, r->U64());
      GQL_ASSIGN_OR_RETURN(op.name, r->String());
      break;
    }
    case WalOpType::kCreateNode: {
      GQL_ASSIGN_OR_RETURN(op.id, r->U64());
      GQL_ASSIGN_OR_RETURN(uint32_t nl, r->U32());
      if (nl > r->remaining()) {
        return Status::Corruption("label count too large");
      }
      op.labels.reserve(nl);
      for (uint32_t i = 0; i < nl; ++i) {
        GQL_ASSIGN_OR_RETURN(std::string l, r->String());
        op.labels.push_back(std::move(l));
      }
      GQL_ASSIGN_OR_RETURN(uint32_t np, r->U32());
      if (np > r->remaining()) {
        return Status::Corruption("property count too large");
      }
      op.props.reserve(np);
      for (uint32_t i = 0; i < np; ++i) {
        GQL_ASSIGN_OR_RETURN(std::string k, r->String());
        GQL_ASSIGN_OR_RETURN(Value v, r->ReadValue());
        op.props.emplace_back(std::move(k), std::move(v));
      }
      break;
    }
    case WalOpType::kCreateRelationship: {
      GQL_ASSIGN_OR_RETURN(op.id, r->U64());
      GQL_ASSIGN_OR_RETURN(op.src, r->U64());
      GQL_ASSIGN_OR_RETURN(op.tgt, r->U64());
      GQL_ASSIGN_OR_RETURN(op.name, r->String());
      GQL_ASSIGN_OR_RETURN(uint32_t np, r->U32());
      if (np > r->remaining()) {
        return Status::Corruption("property count too large");
      }
      op.props.reserve(np);
      for (uint32_t i = 0; i < np; ++i) {
        GQL_ASSIGN_OR_RETURN(std::string k, r->String());
        GQL_ASSIGN_OR_RETURN(Value v, r->ReadValue());
        op.props.emplace_back(std::move(k), std::move(v));
      }
      break;
    }
    case WalOpType::kAddLabel:
    case WalOpType::kRemoveLabel: {
      GQL_ASSIGN_OR_RETURN(op.id, r->U64());
      GQL_ASSIGN_OR_RETURN(op.name, r->String());
      break;
    }
    case WalOpType::kSetNodeProperty:
    case WalOpType::kSetRelProperty: {
      GQL_ASSIGN_OR_RETURN(op.id, r->U64());
      GQL_ASSIGN_OR_RETURN(op.name, r->String());
      GQL_ASSIGN_OR_RETURN(op.value, r->ReadValue());
      break;
    }
    case WalOpType::kDeleteRelationship:
    case WalOpType::kDeleteNode: {
      GQL_ASSIGN_OR_RETURN(op.id, r->U64());
      break;
    }
  }
  return op;
}

int64_t CrashAfterBytesFromEnv() {
  const char* env = std::getenv("GQLITE_WAL_CRASH_AFTER_BYTES");
  if (env == nullptr || *env == '\0') return -1;
  return std::strtoll(env, nullptr, 10);
}

}  // namespace

void EncodeWalBatchPayload(const WalBatch& batch, std::string* out) {
  BinaryWriter w(out);
  w.PutU64(batch.lsn);
  w.PutU32(static_cast<uint32_t>(batch.ops.size()));
  for (const WalOp& op : batch.ops) EncodeWalOp(op, &w);
}

Result<WalBatch> DecodeWalBatchPayload(std::string_view payload) {
  BinaryReader r(payload);
  WalBatch batch;
  GQL_ASSIGN_OR_RETURN(batch.lsn, r.U64());
  GQL_ASSIGN_OR_RETURN(uint32_t n, r.U32());
  if (n > r.remaining()) return Status::Corruption("op count too large");
  batch.ops.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    GQL_ASSIGN_OR_RETURN(WalOp op, DecodeWalOp(&r));
    batch.ops.push_back(std::move(op));
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in WAL payload");
  return batch;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path) {
  GQL_ASSIGN_OR_RETURN(std::unique_ptr<AppendFile> file,
                       AppendFile::Open(path));
  auto writer = std::unique_ptr<WalWriter>(
      new WalWriter(std::move(file), CrashAfterBytesFromEnv()));
  if (writer->file_->size() < kWalHeaderSize) {
    // Fresh log, or a crash landed inside the initial header write:
    // (re)write the header. ReadWal vetted the magic of anything longer,
    // so this never clobbers a foreign file.
    GQL_RETURN_IF_ERROR(writer->file_->TruncateTo(0));
    std::string header(kWalMagic);
    BinaryWriter w(&header);
    w.PutU32(kWalVersion);
    GQL_RETURN_IF_ERROR(writer->AppendDurably(header));
  }
  return writer;
}

Status WalWriter::AppendDurably(std::string_view data) {
  if (crash_after_bytes_ >= 0) {
    uint64_t limit = static_cast<uint64_t>(crash_after_bytes_);
    uint64_t at = file_->size();
    if (at + data.size() > limit) {
      // Simulated power loss mid-write: persist only the allowed prefix
      // of the write, make it reach the disk, and die without returning.
      uint64_t allowed = at < limit ? limit - at : 0;
      Status st = file_->Append(data.substr(0, allowed));
      if (st.ok()) st = file_->Sync();
      ::_exit(137);
    }
  }

  uint64_t before = file_->size();
  Status st = file_->Append(data);
  if (st.ok()) st = file_->Sync();
  if (!st.ok()) {
    // The failed write (or sync of unknown effect) may have left torn
    // bytes at the tail. Cut back to the pre-append size so the next
    // frame lands after a clean prefix; if even that fails, poison the
    // writer — appending after garbage would acknowledge commits that
    // recovery silently discards.
    Status restore = file_->TruncateTo(before);
    if (!restore.ok()) {
      poison_ = Status::Internal("WAL unusable after failed append (" +
                                 st.message() +
                                 "; restore failed: " + restore.message() +
                                 "); checkpoint to reset the log");
    }
    return st;
  }
  return Status::OK();
}

Status WalWriter::Append(const WalBatch& batch) {
  if (!poison_.ok()) return poison_;
  std::string payload;
  EncodeWalBatchPayload(batch, &payload);
  std::string frame;
  BinaryWriter w(&frame);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(Crc32c(payload));
  frame += payload;
  return AppendDurably(frame);
}

Status WalWriter::TruncateToHeader() {
  GQL_RETURN_IF_ERROR(file_->TruncateTo(kWalHeaderSize));
  poison_ = Status::OK();
  return Status::OK();
}

Status WalWriter::TruncateTo(uint64_t size) {
  if (size < kWalHeaderSize) size = kWalHeaderSize;
  return file_->TruncateTo(size);
}

Result<WalContents> ReadWal(const std::string& path) {
  WalContents out;
  Result<std::string> data = ReadFileToString(path);
  if (!data.ok()) {
    if (data.status().code() == StatusCode::kNotFound) return out;
    return data.status();
  }
  const std::string& bytes = *data;
  out.file_bytes = bytes.size();
  if (bytes.size() < kWalHeaderSize) {
    // A crash during the very first header write; everything goes.
    return out;
  }
  if (std::string_view(bytes).substr(0, kWalMagic.size()) != kWalMagic) {
    return Status::Corruption("not a WAL file: " + path);
  }
  {
    BinaryReader header(std::string_view(bytes).substr(kWalMagic.size(), 4));
    GQL_ASSIGN_OR_RETURN(uint32_t version, header.U32());
    if (version != kWalVersion) {
      return Status::Corruption("unsupported WAL version " +
                                std::to_string(version) + " in " + path);
    }
  }
  uint64_t pos = kWalHeaderSize;
  out.valid_bytes = pos;
  uint64_t last_lsn = 0;
  while (pos + 8 <= bytes.size()) {
    BinaryReader frame(std::string_view(bytes).substr(pos, 8));
    uint32_t len = frame.U32().value();
    uint32_t crc = frame.U32().value();
    if (pos + 8 + len > bytes.size()) break;  // torn final frame
    std::string_view payload = std::string_view(bytes).substr(pos + 8, len);
    if (Crc32c(payload) != crc) break;  // corrupt frame: stop here
    Result<WalBatch> batch = DecodeWalBatchPayload(payload);
    // A CRC-valid but undecodable or out-of-order payload means the
    // writer never produced it; treat it like any other bad tail.
    if (!batch.ok()) break;
    if (batch->lsn <= last_lsn) break;
    last_lsn = batch->lsn;
    out.batches.push_back(std::move(*batch));
    pos += 8 + len;
    out.valid_bytes = pos;
  }
  return out;
}

namespace {

Status IdMismatch(const char* what, uint64_t logged, uint64_t got) {
  return Status::Corruption(std::string("WAL replay assigned ") + what + " " +
                            std::to_string(got) + " where the log recorded " +
                            std::to_string(logged));
}

}  // namespace

Status ApplyWalBatch(PropertyGraph* graph, const WalBatch& batch) {
  for (const WalOp& op : batch.ops) {
    switch (op.type) {
      case WalOpType::kInternLabel: {
        SymbolId got = StorageInternals::InternLabel(graph, op.name);
        if (got != op.id) return IdMismatch("label symbol", op.id, got);
        break;
      }
      case WalOpType::kInternType: {
        SymbolId got = StorageInternals::InternType(graph, op.name);
        if (got != op.id) return IdMismatch("type symbol", op.id, got);
        break;
      }
      case WalOpType::kInternKey: {
        SymbolId got = StorageInternals::InternKey(graph, op.name);
        if (got != op.id) return IdMismatch("key symbol", op.id, got);
        break;
      }
      case WalOpType::kCreateNode: {
        NodeId got = graph->CreateNode(op.labels, op.props);
        if (got.id != op.id) return IdMismatch("node id", op.id, got.id);
        break;
      }
      case WalOpType::kCreateRelationship: {
        Result<RelId> got = graph->CreateRelationship(
            NodeId{op.src}, NodeId{op.tgt}, op.name, op.props);
        if (!got.ok()) {
          return Status::Corruption("WAL replay: " + got.status().message());
        }
        if (got->id != op.id) return IdMismatch("rel id", op.id, got->id);
        break;
      }
      case WalOpType::kAddLabel: {
        if (!graph->AddLabel(NodeId{op.id}, op.name)) {
          return Status::Corruption("WAL replay: AddLabel was a no-op");
        }
        break;
      }
      case WalOpType::kRemoveLabel: {
        if (!graph->RemoveLabel(NodeId{op.id}, op.name)) {
          return Status::Corruption("WAL replay: RemoveLabel was a no-op");
        }
        break;
      }
      case WalOpType::kSetNodeProperty: {
        if (graph->SetNodeProperty(NodeId{op.id}, op.name, op.value) == 0) {
          return Status::Corruption("WAL replay: node SET was a no-op");
        }
        break;
      }
      case WalOpType::kSetRelProperty: {
        if (graph->SetRelProperty(RelId{op.id}, op.name, op.value) == 0) {
          return Status::Corruption("WAL replay: rel SET was a no-op");
        }
        break;
      }
      case WalOpType::kDeleteRelationship: {
        Status st = graph->DeleteRelationship(RelId{op.id});
        if (!st.ok()) {
          return Status::Corruption("WAL replay: " + st.message());
        }
        break;
      }
      case WalOpType::kDeleteNode: {
        Status st = graph->DeleteNode(NodeId{op.id});
        if (!st.ok()) {
          return Status::Corruption("WAL replay: " + st.message());
        }
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace gqlite
