#ifndef GQLITE_STORAGE_WAL_RECORDER_H_
#define GQLITE_STORAGE_WAL_RECORDER_H_

#include <cstddef>
#include <vector>

#include "src/graph/property_graph.h"
#include "src/graph/write_observer.h"
#include "src/storage/wal.h"

namespace gqlite {

/// Accumulates a live graph's primitive mutations into a WAL op batch.
/// The engine attaches one recorder to its live graph and harvests the
/// pending ops at each commit (TakePending), appending them as one
/// durable WAL frame before the commit is acknowledged.
///
/// Interner tracking: before recording an op, the recorder emits one
/// kIntern* op for every symbol the graph interned since the last
/// harvest. This covers symbols the op's own strings would re-intern
/// anyway AND symbols interned by calls that logged nothing (a null
/// write to an absent key interns its property key but changes no
/// data) — so replay reconstructs the interners bit-identically and the
/// id-verification in ApplyWalBatch stays exact.
///
/// Not thread-safe on its own: the engine's single-writer transaction
/// slot serializes all mutations and harvests.
class WalRecorder : public GraphWriteObserver {
 public:
  /// Starts observing `g` from its current interner state.
  explicit WalRecorder(const PropertyGraph* g) { Rebind(g); }

  /// Re-targets the recorder after the engine swapped its live graph
  /// (transaction rollback restores a clone): pending ops are dropped
  /// and interner watermarks snap to the restored graph's state.
  void Rebind(const PropertyGraph* g);

  /// True when ops (or unsynced interner additions) await a harvest.
  bool HasPending() const;

  /// Returns the accumulated batch (interner syncs included) and clears
  /// it. The caller owns making it durable.
  std::vector<WalOp> TakePending();

  /// Drops accumulated ops without advancing watermarks beyond the
  /// graph's current state (rollback of an explicit transaction —
  /// callers must Rebind to the restored graph right after).
  void DiscardPending();

  // GraphWriteObserver:
  void OnCreateNode(NodeId id, const std::vector<std::string>& labels,
                    const PropertyList& props) override;
  void OnCreateRelationship(RelId id, NodeId src, NodeId tgt,
                            std::string_view type,
                            const PropertyList& props) override;
  void OnAddLabel(NodeId n, std::string_view label) override;
  void OnRemoveLabel(NodeId n, std::string_view label) override;
  void OnSetNodeProperty(NodeId n, std::string_view key,
                         const Value& v) override;
  void OnSetRelProperty(RelId r, std::string_view key,
                        const Value& v) override;
  void OnDeleteRelationship(RelId r) override;
  void OnDeleteNode(NodeId n) override;

 private:
  /// Emits kIntern* ops for symbols added since the watermarks.
  void SyncInterners();

  const PropertyGraph* graph_ = nullptr;
  size_t labels_seen_ = 0;
  size_t types_seen_ = 0;
  size_t keys_seen_ = 0;
  std::vector<WalOp> pending_;
};

}  // namespace gqlite

#endif  // GQLITE_STORAGE_WAL_RECORDER_H_
