#ifndef GQLITE_STORAGE_IO_FILE_H_
#define GQLITE_STORAGE_IO_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/common/status.h"

namespace gqlite {

/// POSIX file primitives with the durability discipline the WAL and
/// checkpoint writers rely on. Everything here reports failures as
/// Status — the storage layer treats any IO error as "the commit is not
/// durable" and surfaces it to the caller instead of pretending.

/// True iff `path` names an existing file or directory.
bool FileExists(const std::string& path);

/// Creates `path` (and missing parents) as a directory; ok if it
/// already exists as one.
Status EnsureDirectory(const std::string& path);

/// Whole-file read. NotFound when the file does not exist.
Result<std::string> ReadFileToString(const std::string& path);

/// Crash-atomic replace: writes `data` to `path + ".tmp"`, fsyncs it,
/// renames over `path`, then fsyncs the parent directory so the rename
/// itself is durable. After a crash the file holds either the old or
/// the new contents, never a mix.
Status AtomicWriteFile(const std::string& path, std::string_view data);

/// Durably removes `path` if present (unlink + parent-directory fsync);
/// ok when the file does not exist.
Status RemoveFileDurably(const std::string& path);

/// An append-only file handle with an explicitly tracked end offset —
/// the WAL's backing file. Opening an existing file resumes at its
/// current size.
class AppendFile {
 public:
  static Result<std::unique_ptr<AppendFile>> Open(const std::string& path);
  ~AppendFile();
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Bytes in the file (tracked; equals the on-disk size while this
  /// handle is the only writer, which the engine's single-writer
  /// transaction slot guarantees).
  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// Appends all of `data` at the end (retrying short writes).
  Status Append(std::string_view data);
  /// Flushes file data to stable storage (fdatasync).
  Status Sync();
  /// Shrinks the file to `new_size` bytes and syncs the truncation.
  Status TruncateTo(uint64_t new_size);
  Status Close();

 private:
  AppendFile(int fd, uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {}

  int fd_ = -1;
  uint64_t size_ = 0;
  std::string path_;
};

}  // namespace gqlite

#endif  // GQLITE_STORAGE_IO_FILE_H_
