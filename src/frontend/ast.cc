#include "src/frontend/ast.h"

#include <cassert>

namespace gqlite {
namespace ast {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kXor:
      return "XOR";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNeq:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kPow:
      return "^";
    case BinaryOp::kIn:
      return "IN";
    case BinaryOp::kStartsWith:
      return "STARTS WITH";
    case BinaryOp::kEndsWith:
      return "ENDS WITH";
    case BinaryOp::kContains:
      return "CONTAINS";
    case BinaryOp::kRegexMatch:
      return "=~";
  }
  return "?";
}

const char* UnaryOpName(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNot:
      return "NOT";
    case UnaryOp::kMinus:
      return "-";
    case UnaryOp::kPlus:
      return "+";
    case UnaryOp::kIsNull:
      return "IS NULL";
    case UnaryOp::kIsNotNull:
      return "IS NOT NULL";
  }
  return "?";
}

namespace {

std::vector<std::pair<std::string, ExprPtr>> CloneProps(
    const std::vector<std::pair<std::string, ExprPtr>>& props) {
  std::vector<std::pair<std::string, ExprPtr>> out;
  out.reserve(props.size());
  for (const auto& [k, v] : props) out.emplace_back(k, CloneExpr(*v));
  return out;
}

}  // namespace

ExprPtr CloneExpr(const Expr& e) {
  ExprPtr out;
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      out = std::make_unique<LiteralExpr>(
          static_cast<const LiteralExpr&>(e).value);
      break;
    case Expr::Kind::kVariable:
      out = std::make_unique<VariableExpr>(
          static_cast<const VariableExpr&>(e).name);
      break;
    case Expr::Kind::kParameter:
      out = std::make_unique<ParameterExpr>(
          static_cast<const ParameterExpr&>(e).name);
      break;
    case Expr::Kind::kProperty: {
      const auto& p = static_cast<const PropertyExpr&>(e);
      out = std::make_unique<PropertyExpr>(CloneExpr(*p.object), p.key);
      break;
    }
    case Expr::Kind::kLabelCheck: {
      const auto& p = static_cast<const LabelCheckExpr&>(e);
      out = std::make_unique<LabelCheckExpr>(CloneExpr(*p.object), p.labels);
      break;
    }
    case Expr::Kind::kListLiteral: {
      const auto& p = static_cast<const ListLiteralExpr&>(e);
      std::vector<ExprPtr> items;
      items.reserve(p.items.size());
      for (const auto& i : p.items) items.push_back(CloneExpr(*i));
      out = std::make_unique<ListLiteralExpr>(std::move(items));
      break;
    }
    case Expr::Kind::kMapLiteral: {
      const auto& p = static_cast<const MapLiteralExpr&>(e);
      out = std::make_unique<MapLiteralExpr>(CloneProps(p.entries));
      break;
    }
    case Expr::Kind::kFunctionCall: {
      const auto& p = static_cast<const FunctionCallExpr&>(e);
      std::vector<ExprPtr> args;
      args.reserve(p.args.size());
      for (const auto& a : p.args) args.push_back(CloneExpr(*a));
      out = std::make_unique<FunctionCallExpr>(p.name, p.distinct,
                                               std::move(args));
      break;
    }
    case Expr::Kind::kCountStar:
      out = std::make_unique<CountStarExpr>();
      break;
    case Expr::Kind::kBinary: {
      const auto& p = static_cast<const BinaryExpr&>(e);
      out = std::make_unique<BinaryExpr>(p.op, CloneExpr(*p.lhs),
                                         CloneExpr(*p.rhs));
      break;
    }
    case Expr::Kind::kUnary: {
      const auto& p = static_cast<const UnaryExpr&>(e);
      out = std::make_unique<UnaryExpr>(p.op, CloneExpr(*p.operand));
      break;
    }
    case Expr::Kind::kIndex: {
      const auto& p = static_cast<const IndexExpr&>(e);
      out = std::make_unique<IndexExpr>(CloneExpr(*p.object),
                                        CloneExpr(*p.index));
      break;
    }
    case Expr::Kind::kSlice: {
      const auto& p = static_cast<const SliceExpr&>(e);
      out = std::make_unique<SliceExpr>(CloneExpr(*p.object),
                                        p.from ? CloneExpr(*p.from) : nullptr,
                                        p.to ? CloneExpr(*p.to) : nullptr);
      break;
    }
    case Expr::Kind::kCase: {
      const auto& p = static_cast<const CaseExpr&>(e);
      auto c = std::make_unique<CaseExpr>();
      c->operand = p.operand ? CloneExpr(*p.operand) : nullptr;
      for (const auto& [w, t] : p.whens) {
        c->whens.emplace_back(CloneExpr(*w), CloneExpr(*t));
      }
      c->otherwise = p.otherwise ? CloneExpr(*p.otherwise) : nullptr;
      out = std::move(c);
      break;
    }
    case Expr::Kind::kListComprehension: {
      const auto& p = static_cast<const ListComprehensionExpr&>(e);
      auto c = std::make_unique<ListComprehensionExpr>();
      c->var = p.var;
      c->list = CloneExpr(*p.list);
      c->where = p.where ? CloneExpr(*p.where) : nullptr;
      c->project = p.project ? CloneExpr(*p.project) : nullptr;
      out = std::move(c);
      break;
    }
    case Expr::Kind::kQuantifier: {
      const auto& p = static_cast<const QuantifierExpr&>(e);
      auto c = std::make_unique<QuantifierExpr>();
      c->quantifier = p.quantifier;
      c->var = p.var;
      c->list = CloneExpr(*p.list);
      c->where = CloneExpr(*p.where);
      out = std::move(c);
      break;
    }
    case Expr::Kind::kReduce: {
      const auto& p = static_cast<const ReduceExpr&>(e);
      auto c = std::make_unique<ReduceExpr>();
      c->acc = p.acc;
      c->init = CloneExpr(*p.init);
      c->var = p.var;
      c->list = CloneExpr(*p.list);
      c->body = CloneExpr(*p.body);
      out = std::move(c);
      break;
    }
    case Expr::Kind::kPatternPredicate: {
      const auto& p = static_cast<const PatternPredicateExpr&>(e);
      auto c = std::make_unique<PatternPredicateExpr>();
      c->pattern = ClonePattern(p.pattern);
      out = std::move(c);
      break;
    }
  }
  assert(out != nullptr);
  out->line = e.line;
  out->col = e.col;
  return out;
}

NodePattern ClonePattern(const NodePattern& p) {
  NodePattern out;
  out.var = p.var;
  out.labels = p.labels;
  out.properties = CloneProps(p.properties);
  return out;
}

RelPattern ClonePattern(const RelPattern& p) {
  RelPattern out;
  out.direction = p.direction;
  out.var = p.var;
  out.types = p.types;
  out.properties = CloneProps(p.properties);
  out.length = p.length;
  return out;
}

PathPattern ClonePattern(const PathPattern& p) {
  PathPattern out;
  out.path_var = p.path_var;
  out.start = ClonePattern(p.start);
  for (const auto& hop : p.hops) {
    out.hops.push_back(
        PathPattern::Hop{ClonePattern(hop.rel), ClonePattern(hop.node)});
  }
  return out;
}

Pattern ClonePattern(const Pattern& p) {
  Pattern out;
  for (const auto& path : p.paths) out.paths.push_back(ClonePattern(path));
  return out;
}

}  // namespace ast
}  // namespace gqlite
