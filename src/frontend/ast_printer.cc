#include "src/frontend/ast_printer.h"

#include "src/common/string_util.h"

namespace gqlite {

using namespace ast;  // NOLINT(build/namespaces)

namespace {

std::string UnparseProps(
    const std::vector<std::pair<std::string, ExprPtr>>& props) {
  if (props.empty()) return "";
  std::string out = " {";
  bool first = true;
  for (const auto& [k, v] : props) {
    if (!first) out += ", ";
    first = false;
    out += k + ": " + UnparseExpr(*v);
  }
  return out + "}";
}

std::string UnparseNode(const NodePattern& n) {
  std::string out = "(";
  if (n.var) out += *n.var;
  for (const auto& l : n.labels) out += ":" + l;
  out += UnparseProps(n.properties);
  return out + ")";
}

std::string UnparseRel(const RelPattern& r) {
  std::string out = r.direction == Direction::kLeft ? "<-" : "-";
  bool need_brackets = r.var || !r.types.empty() || r.length ||
                       !r.properties.empty();
  if (need_brackets) {
    out += "[";
    if (r.var) out += *r.var;
    for (size_t i = 0; i < r.types.size(); ++i) {
      out += (i == 0 ? ":" : "|") + r.types[i];
    }
    if (r.length) {
      out += "*";
      if (r.length->min) out += std::to_string(*r.length->min);
      if (!(r.length->min && r.length->max &&
            *r.length->min == *r.length->max)) {
        out += "..";
        if (r.length->max) out += std::to_string(*r.length->max);
      }
    }
    out += UnparseProps(r.properties);
    out += "]";
  }
  out += r.direction == Direction::kRight ? "->" : "-";
  return out;
}

std::string UnparseProjection(const ProjectionBody& b) {
  std::string out;
  if (b.distinct) out += "DISTINCT ";
  if (b.star) {
    out += "*";
    for (const auto& item : b.items) {
      out += ", " + UnparseExpr(*item.expr);
      if (item.alias) out += " AS " + *item.alias;
    }
  } else {
    bool first = true;
    for (const auto& item : b.items) {
      if (!first) out += ", ";
      first = false;
      out += UnparseExpr(*item.expr);
      if (item.alias) out += " AS " + *item.alias;
    }
  }
  if (!b.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < b.order_by.size(); ++i) {
      if (i) out += ", ";
      out += UnparseExpr(*b.order_by[i].expr);
      if (!b.order_by[i].ascending) out += " DESC";
    }
  }
  if (b.skip) out += " SKIP " + UnparseExpr(*b.skip);
  if (b.limit) out += " LIMIT " + UnparseExpr(*b.limit);
  return out;
}

std::string UnparseSetItems(const std::vector<SetItem>& items) {
  std::string out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out += ", ";
    first = false;
    switch (item.kind) {
      case SetItem::Kind::kProperty:
        out += UnparseExpr(*item.target) + " = " + UnparseExpr(*item.value);
        break;
      case SetItem::Kind::kReplaceProps:
        out += item.var + " = " + UnparseExpr(*item.value);
        break;
      case SetItem::Kind::kMergeProps:
        out += item.var + " += " + UnparseExpr(*item.value);
        break;
      case SetItem::Kind::kLabels:
        out += item.var;
        for (const auto& l : item.labels) out += ":" + l;
        break;
    }
  }
  return out;
}

}  // namespace

std::string UnparseExpr(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return static_cast<const LiteralExpr&>(e).value.ToString();
    case Expr::Kind::kVariable:
      return static_cast<const VariableExpr&>(e).name;
    case Expr::Kind::kParameter:
      return "$" + static_cast<const ParameterExpr&>(e).name;
    case Expr::Kind::kProperty: {
      const auto& p = static_cast<const PropertyExpr&>(e);
      return UnparseExpr(*p.object) + "." + p.key;
    }
    case Expr::Kind::kLabelCheck: {
      const auto& p = static_cast<const LabelCheckExpr&>(e);
      std::string out = UnparseExpr(*p.object);
      for (const auto& l : p.labels) out += ":" + l;
      return out;
    }
    case Expr::Kind::kListLiteral: {
      const auto& p = static_cast<const ListLiteralExpr&>(e);
      std::string out = "[";
      for (size_t i = 0; i < p.items.size(); ++i) {
        if (i) out += ", ";
        out += UnparseExpr(*p.items[i]);
      }
      return out + "]";
    }
    case Expr::Kind::kMapLiteral: {
      const auto& p = static_cast<const MapLiteralExpr&>(e);
      std::string out = "{";
      for (size_t i = 0; i < p.entries.size(); ++i) {
        if (i) out += ", ";
        out += p.entries[i].first + ": " + UnparseExpr(*p.entries[i].second);
      }
      return out + "}";
    }
    case Expr::Kind::kFunctionCall: {
      const auto& p = static_cast<const FunctionCallExpr&>(e);
      std::string out = p.name + "(";
      if (p.distinct) out += "DISTINCT ";
      for (size_t i = 0; i < p.args.size(); ++i) {
        if (i) out += ", ";
        out += UnparseExpr(*p.args[i]);
      }
      return out + ")";
    }
    case Expr::Kind::kCountStar:
      return "count(*)";
    case Expr::Kind::kBinary: {
      const auto& p = static_cast<const BinaryExpr&>(e);
      return "(" + UnparseExpr(*p.lhs) + " " + BinaryOpName(p.op) + " " +
             UnparseExpr(*p.rhs) + ")";
    }
    case Expr::Kind::kUnary: {
      const auto& p = static_cast<const UnaryExpr&>(e);
      if (p.op == UnaryOp::kIsNull || p.op == UnaryOp::kIsNotNull) {
        return "(" + UnparseExpr(*p.operand) + " " + UnaryOpName(p.op) + ")";
      }
      return "(" + std::string(UnaryOpName(p.op)) + " " +
             UnparseExpr(*p.operand) + ")";
    }
    case Expr::Kind::kIndex: {
      const auto& p = static_cast<const IndexExpr&>(e);
      return UnparseExpr(*p.object) + "[" + UnparseExpr(*p.index) + "]";
    }
    case Expr::Kind::kSlice: {
      const auto& p = static_cast<const SliceExpr&>(e);
      return UnparseExpr(*p.object) + "[" +
             (p.from ? UnparseExpr(*p.from) : "") + ".." +
             (p.to ? UnparseExpr(*p.to) : "") + "]";
    }
    case Expr::Kind::kCase: {
      const auto& p = static_cast<const CaseExpr&>(e);
      std::string out = "CASE";
      if (p.operand) out += " " + UnparseExpr(*p.operand);
      for (const auto& [w, t] : p.whens) {
        out += " WHEN " + UnparseExpr(*w) + " THEN " + UnparseExpr(*t);
      }
      if (p.otherwise) out += " ELSE " + UnparseExpr(*p.otherwise);
      return out + " END";
    }
    case Expr::Kind::kListComprehension: {
      const auto& p = static_cast<const ListComprehensionExpr&>(e);
      std::string out = "[" + p.var + " IN " + UnparseExpr(*p.list);
      if (p.where) out += " WHERE " + UnparseExpr(*p.where);
      if (p.project) out += " | " + UnparseExpr(*p.project);
      return out + "]";
    }
    case Expr::Kind::kQuantifier: {
      const auto& p = static_cast<const QuantifierExpr&>(e);
      const char* q = p.quantifier == QuantifierExpr::Quantifier::kAll
                          ? "all"
                          : p.quantifier == QuantifierExpr::Quantifier::kAny
                                ? "any"
                                : p.quantifier ==
                                          QuantifierExpr::Quantifier::kNone
                                      ? "none"
                                      : "single";
      return std::string(q) + "(" + p.var + " IN " + UnparseExpr(*p.list) +
             " WHERE " + UnparseExpr(*p.where) + ")";
    }
    case Expr::Kind::kReduce: {
      const auto& p = static_cast<const ReduceExpr&>(e);
      return "reduce(" + p.acc + " = " + UnparseExpr(*p.init) + ", " + p.var +
             " IN " + UnparseExpr(*p.list) + " | " + UnparseExpr(*p.body) +
             ")";
    }
    case Expr::Kind::kPatternPredicate: {
      const auto& p = static_cast<const PatternPredicateExpr&>(e);
      return UnparsePattern(p.pattern);
    }
  }
  return "?";
}

std::string UnparsePathPattern(const PathPattern& p) {
  std::string out;
  if (p.path_var) out += *p.path_var + " = ";
  out += UnparseNode(p.start);
  for (const auto& hop : p.hops) {
    out += UnparseRel(hop.rel) + UnparseNode(hop.node);
  }
  return out;
}

std::string UnparsePattern(const Pattern& p) {
  std::string out;
  for (size_t i = 0; i < p.paths.size(); ++i) {
    if (i) out += ", ";
    out += UnparsePathPattern(p.paths[i]);
  }
  return out;
}

std::string UnparseClause(const Clause& c) {
  switch (c.kind) {
    case Clause::Kind::kMatch: {
      const auto& m = static_cast<const MatchClause&>(c);
      std::string out = m.optional ? "OPTIONAL MATCH " : "MATCH ";
      out += UnparsePattern(m.pattern);
      if (m.where) out += " WHERE " + UnparseExpr(*m.where);
      return out;
    }
    case Clause::Kind::kWith: {
      const auto& w = static_cast<const WithClause&>(c);
      std::string out = "WITH " + UnparseProjection(w.body);
      if (w.where) out += " WHERE " + UnparseExpr(*w.where);
      return out;
    }
    case Clause::Kind::kReturn: {
      const auto& r = static_cast<const ReturnClause&>(c);
      return "RETURN " + UnparseProjection(r.body);
    }
    case Clause::Kind::kUnwind: {
      const auto& u = static_cast<const UnwindClause&>(c);
      return "UNWIND " + UnparseExpr(*u.expr) + " AS " + u.var;
    }
    case Clause::Kind::kCreate: {
      const auto& cr = static_cast<const CreateClause&>(c);
      return "CREATE " + UnparsePattern(cr.pattern);
    }
    case Clause::Kind::kDelete: {
      const auto& d = static_cast<const DeleteClause&>(c);
      std::string out = d.detach ? "DETACH DELETE " : "DELETE ";
      for (size_t i = 0; i < d.exprs.size(); ++i) {
        if (i) out += ", ";
        out += UnparseExpr(*d.exprs[i]);
      }
      return out;
    }
    case Clause::Kind::kSet: {
      const auto& s = static_cast<const SetClause&>(c);
      return "SET " + UnparseSetItems(s.items);
    }
    case Clause::Kind::kRemove: {
      const auto& r = static_cast<const RemoveClause&>(c);
      std::string out = "REMOVE ";
      for (size_t i = 0; i < r.items.size(); ++i) {
        if (i) out += ", ";
        const RemoveItem& item = r.items[i];
        if (item.kind == RemoveItem::Kind::kProperty) {
          out += item.var + "." + item.key;
        } else {
          out += item.var;
          for (const auto& l : item.labels) out += ":" + l;
        }
      }
      return out;
    }
    case Clause::Kind::kMerge: {
      const auto& m = static_cast<const MergeClause&>(c);
      std::string out = "MERGE " + UnparsePathPattern(m.pattern);
      if (!m.on_create.empty()) {
        out += " ON CREATE SET " + UnparseSetItems(m.on_create);
      }
      if (!m.on_match.empty()) {
        out += " ON MATCH SET " + UnparseSetItems(m.on_match);
      }
      return out;
    }
    case Clause::Kind::kFromGraph: {
      const auto& f = static_cast<const FromGraphClause&>(c);
      std::string out = "FROM GRAPH " + f.name;
      if (f.url) out += " AT '" + *f.url + "'";
      return out;
    }
    case Clause::Kind::kReturnGraph: {
      const auto& r = static_cast<const ReturnGraphClause&>(c);
      return "RETURN GRAPH " + r.graph_name + " OF " +
             UnparsePattern(r.pattern);
    }
  }
  return "?";
}

std::string UnparseQuery(const Query& q) {
  std::string out;
  for (size_t i = 0; i < q.parts.size(); ++i) {
    if (i) {
      out += q.union_all[i - 1] ? " UNION ALL " : " UNION ";
    }
    for (size_t j = 0; j < q.parts[i].clauses.size(); ++j) {
      if (j) out += " ";
      out += UnparseClause(*q.parts[i].clauses[j]);
    }
  }
  return out;
}

}  // namespace gqlite
