#ifndef GQLITE_FRONTEND_LEXER_H_
#define GQLITE_FRONTEND_LEXER_H_

#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/frontend/token.h"

namespace gqlite {

/// Tokenizes Cypher query text. Handles:
///  * identifiers (letters/digits/underscore, not starting with a digit)
///    and backtick-quoted identifiers;
///  * `$param` query parameters (§2 "built-in support for query
///    parameters");
///  * integer and float literals (including exponents and `.5` forms);
///  * single- and double-quoted strings with \\ \' \" \n \t \r escapes;
///  * line comments `// ...` and block comments `/* ... */`;
///  * all punctuation/operators of Figures 3 and 5.
/// Returns a token vector ending with a kEof token, or a SyntaxError with
/// line:col on malformed input.
Result<std::vector<Token>> Tokenize(std::string_view src);

}  // namespace gqlite

#endif  // GQLITE_FRONTEND_LEXER_H_
