#ifndef GQLITE_FRONTEND_CANONICALIZE_H_
#define GQLITE_FRONTEND_CANONICALIZE_H_

#include <string>
#include <vector>

#include "src/frontend/ast.h"

namespace gqlite {

/// Auto-parameterization (§2: built-in parameters exist "so plans can be
/// reused"): rewrites literal expressions in a parsed query into synthetic
/// `$_p0, $_p1, ...` parameters and collects their values, so queries that
/// differ only in literal constants (`{id: 1}` vs `{id: 42}`) canonicalize
/// to the same text and can share one cached plan.
///
/// Literals are extracted everywhere they are evaluated at runtime —
/// MATCH/WITH WHERE predicates, pattern property maps, UNWIND lists,
/// SKIP/LIMIT, update-clause right-hand sides — EXCEPT inside projection
/// items and ORDER BY expressions. Those two positions contribute to
/// observable output: un-aliased return items derive their column name
/// from the expression text (the paper's injective α function), and ORDER
/// BY resolves against projected columns by that same text, so rewriting
/// them would change results.
struct AutoParameterization {
  /// Synthetic parameter names (in extraction order) and their values.
  /// Execute-time bindings are `extracted` overlaid on the user's map;
  /// names are chosen to never collide with a `$param` already used in
  /// the query.
  ValueMap extracted;
  /// Number of literals extracted.
  int count = 0;
};

/// Rewrites `q` in place. Deterministic: the same query text always
/// produces the same rewritten tree and the same synthetic names.
AutoParameterization AutoParameterize(ast::Query* q);

/// The normalized plan-cache key of an (already auto-parameterized)
/// query: its canonical unparse. Two queries share a key iff they are the
/// same query modulo extracted literal values.
std::string NormalizedQueryKey(const ast::Query& q);

}  // namespace gqlite

#endif  // GQLITE_FRONTEND_CANONICALIZE_H_
