#include "src/frontend/canonicalize.h"

#include <cstdio>
#include <set>
#include <utility>

#include "src/frontend/ast_printer.h"

namespace gqlite {

using namespace ast;  // NOLINT(build/namespaces)

namespace {

/// Read-only AST walk collecting the names of `$param` references already
/// present in the query (so synthetic names can avoid them), with a hook
/// on every literal (the cache-key digest below reuses the walk).
class ParamNameCollector {
 public:
  virtual ~ParamNameCollector() = default;

  std::set<std::string> names;

  virtual void OnLiteral(const Value& value) { (void)value; }

  void Visit(const Expr* e) {
    if (e == nullptr) return;
    switch (e->kind) {
      case Expr::Kind::kParameter:
        names.insert(static_cast<const ParameterExpr&>(*e).name);
        break;
      case Expr::Kind::kLiteral:
        OnLiteral(static_cast<const LiteralExpr&>(*e).value);
        break;
      case Expr::Kind::kVariable:
      case Expr::Kind::kCountStar:
        break;
      case Expr::Kind::kProperty:
        Visit(static_cast<const PropertyExpr&>(*e).object.get());
        break;
      case Expr::Kind::kLabelCheck:
        Visit(static_cast<const LabelCheckExpr&>(*e).object.get());
        break;
      case Expr::Kind::kListLiteral:
        for (const auto& it : static_cast<const ListLiteralExpr&>(*e).items) {
          Visit(it.get());
        }
        break;
      case Expr::Kind::kMapLiteral:
        for (const auto& [k, v] :
             static_cast<const MapLiteralExpr&>(*e).entries) {
          Visit(v.get());
        }
        break;
      case Expr::Kind::kFunctionCall:
        for (const auto& a : static_cast<const FunctionCallExpr&>(*e).args) {
          Visit(a.get());
        }
        break;
      case Expr::Kind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(*e);
        Visit(b.lhs.get());
        Visit(b.rhs.get());
        break;
      }
      case Expr::Kind::kUnary:
        Visit(static_cast<const UnaryExpr&>(*e).operand.get());
        break;
      case Expr::Kind::kIndex: {
        const auto& ix = static_cast<const IndexExpr&>(*e);
        Visit(ix.object.get());
        Visit(ix.index.get());
        break;
      }
      case Expr::Kind::kSlice: {
        const auto& s = static_cast<const SliceExpr&>(*e);
        Visit(s.object.get());
        Visit(s.from.get());
        Visit(s.to.get());
        break;
      }
      case Expr::Kind::kCase: {
        const auto& c = static_cast<const CaseExpr&>(*e);
        Visit(c.operand.get());
        for (const auto& [w, t] : c.whens) {
          Visit(w.get());
          Visit(t.get());
        }
        Visit(c.otherwise.get());
        break;
      }
      case Expr::Kind::kListComprehension: {
        const auto& lc = static_cast<const ListComprehensionExpr&>(*e);
        Visit(lc.list.get());
        Visit(lc.where.get());
        Visit(lc.project.get());
        break;
      }
      case Expr::Kind::kQuantifier: {
        const auto& q = static_cast<const QuantifierExpr&>(*e);
        Visit(q.list.get());
        Visit(q.where.get());
        break;
      }
      case Expr::Kind::kReduce: {
        const auto& r = static_cast<const ReduceExpr&>(*e);
        Visit(r.init.get());
        Visit(r.list.get());
        Visit(r.body.get());
        break;
      }
      case Expr::Kind::kPatternPredicate:
        VisitPattern(static_cast<const PatternPredicateExpr&>(*e).pattern);
        break;
    }
  }

  void VisitPattern(const Pattern& p) {
    for (const auto& path : p.paths) VisitPath(path);
  }
  void VisitPath(const PathPattern& path) {
    for (const auto& [k, v] : path.start.properties) Visit(v.get());
    for (const auto& hop : path.hops) {
      for (const auto& [k, v] : hop.rel.properties) Visit(v.get());
      for (const auto& [k, v] : hop.node.properties) Visit(v.get());
    }
  }

  void VisitBody(const ProjectionBody& body) {
    for (const auto& it : body.items) Visit(it.expr.get());
    for (const auto& o : body.order_by) Visit(o.expr.get());
    Visit(body.skip.get());
    Visit(body.limit.get());
  }

  void VisitSetItems(const std::vector<SetItem>& items) {
    for (const auto& it : items) {
      Visit(it.target.get());
      Visit(it.value.get());
    }
  }

  void VisitClause(const Clause& c) {
    switch (c.kind) {
      case Clause::Kind::kMatch: {
        const auto& m = static_cast<const MatchClause&>(c);
        VisitPattern(m.pattern);
        Visit(m.where.get());
        break;
      }
      case Clause::Kind::kWith: {
        const auto& w = static_cast<const WithClause&>(c);
        VisitBody(w.body);
        Visit(w.where.get());
        break;
      }
      case Clause::Kind::kReturn:
        VisitBody(static_cast<const ReturnClause&>(c).body);
        break;
      case Clause::Kind::kUnwind:
        Visit(static_cast<const UnwindClause&>(c).expr.get());
        break;
      case Clause::Kind::kCreate:
        VisitPattern(static_cast<const CreateClause&>(c).pattern);
        break;
      case Clause::Kind::kDelete:
        for (const auto& e : static_cast<const DeleteClause&>(c).exprs) {
          Visit(e.get());
        }
        break;
      case Clause::Kind::kSet:
        VisitSetItems(static_cast<const SetClause&>(c).items);
        break;
      case Clause::Kind::kRemove:
        break;
      case Clause::Kind::kMerge: {
        const auto& m = static_cast<const MergeClause&>(c);
        VisitPath(m.pattern);
        VisitSetItems(m.on_create);
        VisitSetItems(m.on_match);
        break;
      }
      case Clause::Kind::kFromGraph:
        break;
      case Clause::Kind::kReturnGraph:
        VisitPattern(static_cast<const ReturnGraphClause&>(c).pattern);
        break;
    }
  }
};

/// The rewriting pass: replaces literal sub-expressions with synthetic
/// parameters, bottom-up through every runtime-evaluated position.
class Extractor {
 public:
  Extractor(std::set<std::string> reserved, AutoParameterization* out)
      : reserved_(std::move(reserved)), out_(out) {}

  /// Rewrites the expression slot `*e` (which may hold null).
  void Rewrite(ExprPtr* e) {
    if (e == nullptr || *e == nullptr) return;
    Expr& x = **e;
    switch (x.kind) {
      case Expr::Kind::kLiteral: {
        auto& lit = static_cast<LiteralExpr&>(x);
        std::string name = FreshName();
        out_->extracted.emplace(name, std::move(lit.value));
        auto param = std::make_unique<ParameterExpr>(std::move(name));
        param->line = x.line;
        param->col = x.col;
        *e = std::move(param);
        ++out_->count;
        break;
      }
      case Expr::Kind::kVariable:
      case Expr::Kind::kParameter:
      case Expr::Kind::kCountStar:
        break;
      case Expr::Kind::kProperty:
        Rewrite(&static_cast<PropertyExpr&>(x).object);
        break;
      case Expr::Kind::kLabelCheck:
        Rewrite(&static_cast<LabelCheckExpr&>(x).object);
        break;
      case Expr::Kind::kListLiteral:
        for (auto& it : static_cast<ListLiteralExpr&>(x).items) Rewrite(&it);
        break;
      case Expr::Kind::kMapLiteral:
        for (auto& [k, v] : static_cast<MapLiteralExpr&>(x).entries) {
          Rewrite(&v);
        }
        break;
      case Expr::Kind::kFunctionCall:
        for (auto& a : static_cast<FunctionCallExpr&>(x).args) Rewrite(&a);
        break;
      case Expr::Kind::kBinary: {
        auto& b = static_cast<BinaryExpr&>(x);
        Rewrite(&b.lhs);
        Rewrite(&b.rhs);
        break;
      }
      case Expr::Kind::kUnary:
        Rewrite(&static_cast<UnaryExpr&>(x).operand);
        break;
      case Expr::Kind::kIndex: {
        auto& ix = static_cast<IndexExpr&>(x);
        Rewrite(&ix.object);
        Rewrite(&ix.index);
        break;
      }
      case Expr::Kind::kSlice: {
        auto& s = static_cast<SliceExpr&>(x);
        Rewrite(&s.object);
        Rewrite(&s.from);
        Rewrite(&s.to);
        break;
      }
      case Expr::Kind::kCase: {
        auto& c = static_cast<CaseExpr&>(x);
        Rewrite(&c.operand);
        for (auto& [w, t] : c.whens) {
          Rewrite(&w);
          Rewrite(&t);
        }
        Rewrite(&c.otherwise);
        break;
      }
      case Expr::Kind::kListComprehension: {
        auto& lc = static_cast<ListComprehensionExpr&>(x);
        Rewrite(&lc.list);
        Rewrite(&lc.where);
        Rewrite(&lc.project);
        break;
      }
      case Expr::Kind::kQuantifier: {
        auto& q = static_cast<QuantifierExpr&>(x);
        Rewrite(&q.list);
        Rewrite(&q.where);
        break;
      }
      case Expr::Kind::kReduce: {
        auto& r = static_cast<ReduceExpr&>(x);
        Rewrite(&r.init);
        Rewrite(&r.list);
        Rewrite(&r.body);
        break;
      }
      case Expr::Kind::kPatternPredicate:
        RewritePattern(&static_cast<PatternPredicateExpr&>(x).pattern);
        break;
    }
  }

  void RewritePattern(Pattern* p) {
    for (auto& path : p->paths) RewritePath(&path);
  }
  void RewritePath(PathPattern* path) {
    for (auto& [k, v] : path->start.properties) Rewrite(&v);
    for (auto& hop : path->hops) {
      for (auto& [k, v] : hop.rel.properties) Rewrite(&v);
      for (auto& [k, v] : hop.node.properties) Rewrite(&v);
    }
  }

  /// Projection bodies: SKIP/LIMIT are runtime-evaluated and safe to
  /// extract; items and ORDER BY stay untouched (they feed derived column
  /// names and ORDER BY's column resolution — see header).
  void RewriteBody(ProjectionBody* body) {
    Rewrite(&body->skip);
    Rewrite(&body->limit);
  }

  void RewriteSetItems(std::vector<SetItem>* items) {
    for (auto& it : *items) {
      // `it.target` is the n.k property target; its object is a variable,
      // never a literal, but recurse for uniformity (e.g. map indexing).
      Rewrite(&it.target);
      Rewrite(&it.value);
    }
  }

  void RewriteClause(Clause* c) {
    switch (c->kind) {
      case Clause::Kind::kMatch: {
        auto& m = static_cast<MatchClause&>(*c);
        RewritePattern(&m.pattern);
        Rewrite(&m.where);
        break;
      }
      case Clause::Kind::kWith: {
        auto& w = static_cast<WithClause&>(*c);
        RewriteBody(&w.body);
        Rewrite(&w.where);
        break;
      }
      case Clause::Kind::kReturn:
        RewriteBody(&static_cast<ReturnClause&>(*c).body);
        break;
      case Clause::Kind::kUnwind:
        Rewrite(&static_cast<UnwindClause&>(*c).expr);
        break;
      case Clause::Kind::kCreate:
        RewritePattern(&static_cast<CreateClause&>(*c).pattern);
        break;
      case Clause::Kind::kDelete:
        for (auto& e : static_cast<DeleteClause&>(*c).exprs) Rewrite(&e);
        break;
      case Clause::Kind::kSet:
        RewriteSetItems(&static_cast<SetClause&>(*c).items);
        break;
      case Clause::Kind::kRemove:
        break;
      case Clause::Kind::kMerge: {
        auto& m = static_cast<MergeClause&>(*c);
        RewritePath(&m.pattern);
        RewriteSetItems(&m.on_create);
        RewriteSetItems(&m.on_match);
        break;
      }
      case Clause::Kind::kFromGraph:
        break;
      case Clause::Kind::kReturnGraph:
        RewritePattern(&static_cast<ReturnGraphClause&>(*c).pattern);
        break;
    }
  }

 private:
  std::string FreshName() {
    while (true) {
      std::string name = "_p" + std::to_string(next_++);
      if (!reserved_.contains(name)) return name;
    }
  }

  std::set<std::string> reserved_;
  AutoParameterization* out_;
  int next_ = 0;
};

}  // namespace

namespace {

/// Exact, unambiguous serialization of a literal value for the cache
/// key. The unparsed query text alone is NOT injective: FormatValue
/// prints strings unescaped (`'a' + 'b'` vs the single literal
/// `a' + 'b` unparse identically) and floats at display precision, so
/// literals that survive canonicalization (projection items, ORDER BY)
/// could collide. Length-prefixed strings and round-trip float
/// formatting close both holes.
void AppendValueDigest(const Value& v, std::string* out) {
  switch (v.type()) {
    case ValueType::kNull:
      *out += 'n';
      return;
    case ValueType::kBool:
      *out += v.AsBool() ? 'T' : 'F';
      return;
    case ValueType::kInt:
      *out += 'i';
      *out += std::to_string(v.AsInt());
      return;
    case ValueType::kFloat: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "f%.17g", v.AsFloat());
      *out += buf;
      return;
    }
    case ValueType::kString:
      *out += 's';
      *out += std::to_string(v.AsString().size());
      *out += ':';
      *out += v.AsString();
      return;
    case ValueType::kList:
      *out += 'l';
      *out += std::to_string(v.AsList().size());
      *out += ':';
      for (const Value& e : v.AsList()) AppendValueDigest(e, out);
      return;
    default:
      // Remaining types (maps, temporal, entities) cannot appear as
      // parser literals; ToString keeps the digest total just in case.
      *out += 'o';
      *out += v.ToString();
      return;
  }
}

/// Collects the literals still present after canonicalization, in a
/// deterministic left-to-right walk (reusing the read-only visitor with
/// a literal hook).
class LiteralDigest : public ParamNameCollector {
 public:
  std::string digest;

  void VisitQuery(const ast::Query& q) {
    for (const auto& part : q.parts) {
      for (const auto& c : part.clauses) VisitClause(*c);
    }
  }

  void OnLiteral(const Value& v) override {
    digest += '|';
    AppendValueDigest(v, &digest);
  }
};

}  // namespace

AutoParameterization AutoParameterize(ast::Query* q) {
  ParamNameCollector collector;
  for (const auto& part : q->parts) {
    for (const auto& c : part.clauses) collector.VisitClause(*c);
  }
  AutoParameterization out;
  Extractor extractor(std::move(collector.names), &out);
  for (auto& part : q->parts) {
    for (auto& c : part.clauses) extractor.RewriteClause(c.get());
  }
  return out;
}

std::string NormalizedQueryKey(const ast::Query& q) {
  std::string key = UnparseQuery(q);
  LiteralDigest digest;
  digest.VisitQuery(q);
  // Unit separator: query text cannot contain it, so text + digest stay
  // unambiguous as a pair.
  key += '\x1f';
  key += digest.digest;
  return key;
}

}  // namespace gqlite
