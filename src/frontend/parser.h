#ifndef GQLITE_FRONTEND_PARSER_H_
#define GQLITE_FRONTEND_PARSER_H_

#include <string_view>

#include "src/common/result.h"
#include "src/frontend/ast.h"

namespace gqlite {

/// Parses a complete Cypher query (Figure 5 grammar plus the update
/// language and the Cypher 10 graph clauses). Keywords are matched
/// case-insensitively; labels, types, variables and property keys are
/// case-sensitive, as in Cypher.
Result<ast::Query> ParseQuery(std::string_view text);

/// Parses a standalone expression (used by tests and the REPL example).
Result<ast::ExprPtr> ParseExpression(std::string_view text);

}  // namespace gqlite

#endif  // GQLITE_FRONTEND_PARSER_H_
