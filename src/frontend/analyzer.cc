#include "src/frontend/analyzer.h"

#include <set>

#include "src/frontend/ast_printer.h"

namespace gqlite {

using namespace ast;  // NOLINT(build/namespaces)

bool IsAggregateFunction(const std::string& name) {
  return name == "count" || name == "sum" || name == "avg" || name == "min" ||
         name == "max" || name == "collect";
}

bool ContainsAggregate(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kCountStar:
      return true;
    case Expr::Kind::kFunctionCall: {
      const auto& f = static_cast<const FunctionCallExpr&>(e);
      if (IsAggregateFunction(f.name)) return true;
      for (const auto& a : f.args) {
        if (ContainsAggregate(*a)) return true;
      }
      return false;
    }
    case Expr::Kind::kProperty:
      return ContainsAggregate(
          *static_cast<const PropertyExpr&>(e).object);
    case Expr::Kind::kLabelCheck:
      return ContainsAggregate(
          *static_cast<const LabelCheckExpr&>(e).object);
    case Expr::Kind::kListLiteral: {
      for (const auto& i : static_cast<const ListLiteralExpr&>(e).items) {
        if (ContainsAggregate(*i)) return true;
      }
      return false;
    }
    case Expr::Kind::kMapLiteral: {
      for (const auto& [k, v] : static_cast<const MapLiteralExpr&>(e).entries) {
        if (ContainsAggregate(*v)) return true;
      }
      return false;
    }
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      return ContainsAggregate(*b.lhs) || ContainsAggregate(*b.rhs);
    }
    case Expr::Kind::kUnary:
      return ContainsAggregate(*static_cast<const UnaryExpr&>(e).operand);
    case Expr::Kind::kIndex: {
      const auto& i = static_cast<const IndexExpr&>(e);
      return ContainsAggregate(*i.object) || ContainsAggregate(*i.index);
    }
    case Expr::Kind::kSlice: {
      const auto& s = static_cast<const SliceExpr&>(e);
      if (ContainsAggregate(*s.object)) return true;
      if (s.from && ContainsAggregate(*s.from)) return true;
      if (s.to && ContainsAggregate(*s.to)) return true;
      return false;
    }
    case Expr::Kind::kCase: {
      const auto& c = static_cast<const CaseExpr&>(e);
      if (c.operand && ContainsAggregate(*c.operand)) return true;
      for (const auto& [w, t] : c.whens) {
        if (ContainsAggregate(*w) || ContainsAggregate(*t)) return true;
      }
      if (c.otherwise && ContainsAggregate(*c.otherwise)) return true;
      return false;
    }
    case Expr::Kind::kListComprehension: {
      const auto& c = static_cast<const ListComprehensionExpr&>(e);
      if (ContainsAggregate(*c.list)) return true;
      if (c.where && ContainsAggregate(*c.where)) return true;
      if (c.project && ContainsAggregate(*c.project)) return true;
      return false;
    }
    case Expr::Kind::kQuantifier: {
      const auto& q = static_cast<const QuantifierExpr&>(e);
      return ContainsAggregate(*q.list) || ContainsAggregate(*q.where);
    }
    case Expr::Kind::kReduce: {
      const auto& r = static_cast<const ReduceExpr&>(e);
      return ContainsAggregate(*r.init) || ContainsAggregate(*r.list) ||
             ContainsAggregate(*r.body);
    }
    default:
      return false;
  }
}

std::string DerivedColumnName(const Expr& e) { return UnparseExpr(e); }

namespace {

using Scope = std::map<std::string, VarKind>;

const char* VarKindName(VarKind k) {
  switch (k) {
    case VarKind::kNode:
      return "node";
    case VarKind::kRelationship:
      return "relationship";
    case VarKind::kPath:
      return "path";
    case VarKind::kValue:
      return "value";
  }
  return "?";
}

class Analyzer {
 public:
  Result<QueryInfo> Run(const Query& q) {
    QueryInfo info;
    std::vector<std::string> first_columns;
    for (size_t i = 0; i < q.parts.size(); ++i) {
      GQL_ASSIGN_OR_RETURN(QueryInfo part, AnalyzeSingle(q.parts[i]));
      if (part.updating && q.parts.size() > 1) {
        return Status::SemanticError(
            "updating clauses are not allowed in UNION queries");
      }
      info.updating |= part.updating;
      if (i == 0) {
        first_columns = part.columns;
        info.columns = part.columns;
      } else if (part.columns != first_columns) {
        return Status::SemanticError(
            "all UNION parts must have the same column names");
      }
    }
    return info;
  }

 private:
  Result<QueryInfo> AnalyzeSingle(const SingleQuery& q) {
    QueryInfo info;
    Scope scope;
    bool saw_return = false;
    bool saw_updating = false;
    for (size_t i = 0; i < q.clauses.size(); ++i) {
      const Clause& c = *q.clauses[i];
      if (saw_return) {
        return Status::SemanticError("no clause may follow RETURN");
      }
      switch (c.kind) {
        case Clause::Kind::kMatch: {
          const auto& m = static_cast<const MatchClause&>(c);
          GQL_RETURN_IF_ERROR(CheckMatchPattern(m.pattern, &scope));
          if (m.where) {
            GQL_RETURN_IF_ERROR(CheckExpr(*m.where, scope, false));
          }
          break;
        }
        case Clause::Kind::kWith: {
          const auto& w = static_cast<const WithClause&>(c);
          GQL_ASSIGN_OR_RETURN(Scope next,
                               CheckProjection(w.body, scope, "WITH"));
          if (w.where) {
            GQL_RETURN_IF_ERROR(CheckExpr(*w.where, next, false));
          }
          scope = std::move(next);
          break;
        }
        case Clause::Kind::kReturn: {
          const auto& r = static_cast<const ReturnClause&>(c);
          GQL_ASSIGN_OR_RETURN(Scope out,
                               CheckProjection(r.body, scope, "RETURN"));
          GQL_ASSIGN_OR_RETURN(info.columns, ProjectionColumns(r.body, scope));
          (void)out;
          saw_return = true;
          break;
        }
        case Clause::Kind::kReturnGraph: {
          const auto& r = static_cast<const ReturnGraphClause&>(c);
          GQL_RETURN_IF_ERROR(CheckGraphProjectionPattern(r.pattern, scope));
          saw_return = true;
          break;
        }
        case Clause::Kind::kUnwind: {
          const auto& u = static_cast<const UnwindClause&>(c);
          GQL_RETURN_IF_ERROR(CheckExpr(*u.expr, scope, false));
          if (scope.contains(u.var)) {
            return Status::SemanticError("variable `" + u.var +
                                         "` already bound");
          }
          scope[u.var] = VarKind::kValue;
          break;
        }
        case Clause::Kind::kCreate: {
          const auto& cr = static_cast<const CreateClause&>(c);
          GQL_RETURN_IF_ERROR(CheckCreatePattern(cr.pattern, &scope));
          saw_updating = true;
          break;
        }
        case Clause::Kind::kDelete: {
          const auto& d = static_cast<const DeleteClause&>(c);
          for (const auto& e : d.exprs) {
            GQL_RETURN_IF_ERROR(CheckExpr(*e, scope, false));
          }
          saw_updating = true;
          break;
        }
        case Clause::Kind::kSet: {
          const auto& s = static_cast<const SetClause&>(c);
          GQL_RETURN_IF_ERROR(CheckSetItems(s.items, scope));
          saw_updating = true;
          break;
        }
        case Clause::Kind::kRemove: {
          const auto& r = static_cast<const RemoveClause&>(c);
          for (const auto& item : r.items) {
            GQL_RETURN_IF_ERROR(RequireVar(item.var, scope));
          }
          saw_updating = true;
          break;
        }
        case Clause::Kind::kMerge: {
          const auto& m = static_cast<const MergeClause&>(c);
          GQL_RETURN_IF_ERROR(CheckMergePattern(m.pattern, &scope));
          GQL_RETURN_IF_ERROR(CheckSetItems(m.on_create, scope));
          GQL_RETURN_IF_ERROR(CheckSetItems(m.on_match, scope));
          saw_updating = true;
          break;
        }
        case Clause::Kind::kFromGraph:
          // Graph reference resolution is an execution-time concern.
          break;
      }
    }
    info.updating = saw_updating;
    if (!saw_return && !saw_updating) {
      return Status::SemanticError(
          "query must conclude with RETURN (or an update clause)");
    }
    return info;
  }

  Status RequireVar(const std::string& name, const Scope& scope) {
    if (!scope.contains(name)) {
      return Status::SemanticError("variable `" + name + "` not defined");
    }
    return Status::OK();
  }

  Status BindOrCheck(const std::string& name, VarKind kind, Scope* scope) {
    auto it = scope->find(name);
    if (it == scope->end()) {
      (*scope)[name] = kind;
      return Status::OK();
    }
    if (it->second != kind) {
      return Status::SemanticError(
          "variable `" + name + "` already bound as a " +
          VarKindName(it->second) + ", cannot rebind as a " +
          VarKindName(kind));
    }
    return Status::OK();
  }

  Status CheckMatchPattern(const Pattern& p, Scope* scope) {
    for (const auto& path : p.paths) {
      if (path.path_var) {
        if (scope->contains(*path.path_var)) {
          return Status::SemanticError("path variable `" + *path.path_var +
                                       "` already bound");
        }
        (*scope)[*path.path_var] = VarKind::kPath;
      }
      GQL_RETURN_IF_ERROR(CheckNodePattern(path.start, scope));
      for (const auto& hop : path.hops) {
        const RelPattern& r = hop.rel;
        if (r.var) {
          // A variable-length relationship variable binds to a LIST of
          // relationships (§4.2 satisfaction item (a')).
          VarKind kind = r.length ? VarKind::kValue : VarKind::kRelationship;
          GQL_RETURN_IF_ERROR(BindOrCheck(*r.var, kind, scope));
        }
        for (const auto& [k, v] : r.properties) {
          GQL_RETURN_IF_ERROR(CheckExpr(*v, *scope, false));
        }
        if (r.length && r.length->min && r.length->max &&
            *r.length->min > *r.length->max) {
          return Status::SemanticError(
              "variable-length range has min > max");
        }
        GQL_RETURN_IF_ERROR(CheckNodePattern(hop.node, scope));
      }
    }
    return Status::OK();
  }

  Status CheckNodePattern(const NodePattern& n, Scope* scope) {
    if (n.var) {
      GQL_RETURN_IF_ERROR(BindOrCheck(*n.var, VarKind::kNode, scope));
    }
    for (const auto& [k, v] : n.properties) {
      GQL_RETURN_IF_ERROR(CheckExpr(*v, *scope, false));
    }
    return Status::OK();
  }

  Status CheckCreatePattern(const Pattern& p, Scope* scope) {
    for (const auto& path : p.paths) {
      if (path.path_var) {
        if (scope->contains(*path.path_var)) {
          return Status::SemanticError("path variable `" + *path.path_var +
                                       "` already bound");
        }
        (*scope)[*path.path_var] = VarKind::kPath;
      }
      // Node variables may be bound (attach to existing node) or fresh.
      GQL_RETURN_IF_ERROR(CheckNodePattern(path.start, scope));
      for (const auto& hop : path.hops) {
        const RelPattern& r = hop.rel;
        if (r.length) {
          return Status::SemanticError(
              "variable-length relationships cannot be used in CREATE");
        }
        if (r.direction == Direction::kBoth) {
          return Status::SemanticError(
              "CREATE requires a directed relationship");
        }
        if (r.types.size() != 1) {
          return Status::SemanticError(
              "CREATE requires exactly one relationship type");
        }
        if (r.var) {
          if (scope->contains(*r.var)) {
            return Status::SemanticError("relationship variable `" + *r.var +
                                         "` already bound");
          }
          (*scope)[*r.var] = VarKind::kRelationship;
        }
        for (const auto& [k, v] : r.properties) {
          GQL_RETURN_IF_ERROR(CheckExpr(*v, *scope, false));
        }
        GQL_RETURN_IF_ERROR(CheckNodePattern(hop.node, scope));
      }
    }
    return Status::OK();
  }

  Status CheckMergePattern(const PathPattern& path, Scope* scope) {
    if (path.path_var) {
      return Status::SemanticError("MERGE does not support path variables");
    }
    GQL_RETURN_IF_ERROR(CheckNodePattern(path.start, scope));
    for (const auto& hop : path.hops) {
      const RelPattern& r = hop.rel;
      if (r.length) {
        return Status::SemanticError(
            "variable-length relationships cannot be used in MERGE");
      }
      if (r.types.size() != 1) {
        return Status::SemanticError(
            "MERGE requires exactly one relationship type");
      }
      if (r.var) {
        if (scope->contains(*r.var)) {
          return Status::SemanticError("relationship variable `" + *r.var +
                                       "` already bound");
        }
        (*scope)[*r.var] = VarKind::kRelationship;
      }
      for (const auto& [k, v] : r.properties) {
        GQL_RETURN_IF_ERROR(CheckExpr(*v, *scope, false));
      }
      GQL_RETURN_IF_ERROR(CheckNodePattern(hop.node, scope));
    }
    return Status::OK();
  }

  Status CheckGraphProjectionPattern(const Pattern& p, const Scope& scope) {
    for (const auto& path : p.paths) {
      if (path.start.var) {
        GQL_RETURN_IF_ERROR(RequireVar(*path.start.var, scope));
      }
      for (const auto& hop : path.hops) {
        if (hop.rel.types.size() != 1 ||
            hop.rel.direction == Direction::kBoth || hop.rel.length) {
          return Status::SemanticError(
              "RETURN GRAPH patterns must use single-type directed "
              "relationships");
        }
        if (hop.node.var) {
          GQL_RETURN_IF_ERROR(RequireVar(*hop.node.var, scope));
        }
      }
    }
    return Status::OK();
  }

  Status CheckSetItems(const std::vector<SetItem>& items, const Scope& scope) {
    for (const auto& item : items) {
      switch (item.kind) {
        case SetItem::Kind::kProperty: {
          GQL_RETURN_IF_ERROR(CheckExpr(*item.target, scope, false));
          GQL_RETURN_IF_ERROR(CheckExpr(*item.value, scope, false));
          break;
        }
        case SetItem::Kind::kReplaceProps:
        case SetItem::Kind::kMergeProps:
          GQL_RETURN_IF_ERROR(RequireVar(item.var, scope));
          GQL_RETURN_IF_ERROR(CheckExpr(*item.value, scope, false));
          break;
        case SetItem::Kind::kLabels:
          GQL_RETURN_IF_ERROR(RequireVar(item.var, scope));
          break;
      }
    }
    return Status::OK();
  }

  /// Validates a WITH/RETURN body and returns the scope it exports.
  Result<Scope> CheckProjection(const ProjectionBody& body, const Scope& in,
                                const char* what) {
    Scope out;
    if (body.star) {
      if (in.empty()) {
        return Status::SemanticError(std::string(what) +
                                     " * requires at least one variable in "
                                     "scope");
      }
      out = in;
    } else if (body.items.empty()) {
      return Status::SemanticError(std::string(what) +
                                   " requires at least one item");
    }
    std::set<std::string> names;
    for (const auto& [name, kind] : out) names.insert(name);
    bool aggregating = false;
    for (const auto& item : body.items) {
      if (ContainsAggregate(*item.expr)) aggregating = true;
    }
    for (const auto& item : body.items) {
      GQL_RETURN_IF_ERROR(CheckExpr(*item.expr, in, true));
      std::string name =
          item.alias ? *item.alias : DerivedColumnName(*item.expr);
      // Un-aliased non-variable items in WITH must have an alias to be
      // addressable downstream; Cypher requires this for WITH but not
      // RETURN. Enforce like Neo4j.
      if (!item.alias && std::string(what) == "WITH" &&
          item.expr->kind != Expr::Kind::kVariable) {
        return Status::SemanticError(
            "expression in WITH must be aliased (use AS)");
      }
      if (!names.insert(name).second) {
        return Status::SemanticError("duplicate column name `" + name + "`");
      }
      VarKind kind = VarKind::kValue;
      if (item.expr->kind == Expr::Kind::kVariable) {
        auto it = in.find(static_cast<const VariableExpr&>(*item.expr).name);
        if (it != in.end()) kind = it->second;
      }
      out[name] = kind;
    }
    // ORDER BY sees the output scope; for non-aggregating projections it
    // may also reference the input scope (Cypher allows ORDER BY on
    // underlying variables).
    Scope order_scope = out;
    if (!aggregating) {
      for (const auto& [k, v] : in) order_scope.emplace(k, v);
    }
    for (const auto& o : body.order_by) {
      // ORDER BY may name a projected column by its derived text (e.g.
      // ORDER BY p.acmid after RETURN p.acmid, count(*)).
      if (names.contains(DerivedColumnName(*o.expr))) continue;
      GQL_RETURN_IF_ERROR(CheckExpr(*o.expr, order_scope, false));
    }
    if (body.skip) {
      GQL_RETURN_IF_ERROR(CheckExpr(*body.skip, {}, false));
    }
    if (body.limit) {
      GQL_RETURN_IF_ERROR(CheckExpr(*body.limit, {}, false));
    }
    return out;
  }

  Result<std::vector<std::string>> ProjectionColumns(
      const ProjectionBody& body, const Scope& in) {
    std::vector<std::string> cols;
    if (body.star) {
      for (const auto& [name, kind] : in) cols.push_back(name);
    }
    for (const auto& item : body.items) {
      cols.push_back(item.alias ? *item.alias
                                : DerivedColumnName(*item.expr));
    }
    return cols;
  }

  Status CheckExpr(const Expr& e, const Scope& scope, bool allow_aggregates) {
    switch (e.kind) {
      case Expr::Kind::kLiteral:
      case Expr::Kind::kParameter:
        return Status::OK();
      case Expr::Kind::kVariable:
        return RequireVar(static_cast<const VariableExpr&>(e).name, scope);
      case Expr::Kind::kProperty:
        return CheckExpr(*static_cast<const PropertyExpr&>(e).object, scope,
                         allow_aggregates);
      case Expr::Kind::kLabelCheck:
        return CheckExpr(*static_cast<const LabelCheckExpr&>(e).object, scope,
                         allow_aggregates);
      case Expr::Kind::kListLiteral: {
        for (const auto& i : static_cast<const ListLiteralExpr&>(e).items) {
          GQL_RETURN_IF_ERROR(CheckExpr(*i, scope, allow_aggregates));
        }
        return Status::OK();
      }
      case Expr::Kind::kMapLiteral: {
        for (const auto& [k, v] :
             static_cast<const MapLiteralExpr&>(e).entries) {
          GQL_RETURN_IF_ERROR(CheckExpr(*v, scope, allow_aggregates));
        }
        return Status::OK();
      }
      case Expr::Kind::kCountStar:
        if (!allow_aggregates) {
          return Status::SemanticError(
              "aggregation is only allowed in RETURN and WITH projections");
        }
        return Status::OK();
      case Expr::Kind::kFunctionCall: {
        const auto& f = static_cast<const FunctionCallExpr&>(e);
        if (IsAggregateFunction(f.name)) {
          if (!allow_aggregates) {
            return Status::SemanticError(
                "aggregation is only allowed in RETURN and WITH projections");
          }
          for (const auto& a : f.args) {
            // No nested aggregation.
            if (ContainsAggregate(*a)) {
              return Status::SemanticError(
                  "aggregate functions cannot be nested");
            }
            GQL_RETURN_IF_ERROR(CheckExpr(*a, scope, false));
          }
          return Status::OK();
        }
        for (const auto& a : f.args) {
          GQL_RETURN_IF_ERROR(CheckExpr(*a, scope, allow_aggregates));
        }
        return Status::OK();
      }
      case Expr::Kind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        GQL_RETURN_IF_ERROR(CheckExpr(*b.lhs, scope, allow_aggregates));
        return CheckExpr(*b.rhs, scope, allow_aggregates);
      }
      case Expr::Kind::kUnary:
        return CheckExpr(*static_cast<const UnaryExpr&>(e).operand, scope,
                         allow_aggregates);
      case Expr::Kind::kIndex: {
        const auto& i = static_cast<const IndexExpr&>(e);
        GQL_RETURN_IF_ERROR(CheckExpr(*i.object, scope, allow_aggregates));
        return CheckExpr(*i.index, scope, allow_aggregates);
      }
      case Expr::Kind::kSlice: {
        const auto& s = static_cast<const SliceExpr&>(e);
        GQL_RETURN_IF_ERROR(CheckExpr(*s.object, scope, allow_aggregates));
        if (s.from) GQL_RETURN_IF_ERROR(CheckExpr(*s.from, scope, false));
        if (s.to) GQL_RETURN_IF_ERROR(CheckExpr(*s.to, scope, false));
        return Status::OK();
      }
      case Expr::Kind::kCase: {
        const auto& c = static_cast<const CaseExpr&>(e);
        if (c.operand) {
          GQL_RETURN_IF_ERROR(CheckExpr(*c.operand, scope, allow_aggregates));
        }
        for (const auto& [w, t] : c.whens) {
          GQL_RETURN_IF_ERROR(CheckExpr(*w, scope, allow_aggregates));
          GQL_RETURN_IF_ERROR(CheckExpr(*t, scope, allow_aggregates));
        }
        if (c.otherwise) {
          GQL_RETURN_IF_ERROR(
              CheckExpr(*c.otherwise, scope, allow_aggregates));
        }
        return Status::OK();
      }
      case Expr::Kind::kListComprehension: {
        const auto& c = static_cast<const ListComprehensionExpr&>(e);
        GQL_RETURN_IF_ERROR(CheckExpr(*c.list, scope, allow_aggregates));
        Scope inner = scope;
        inner[c.var] = VarKind::kValue;
        if (c.where) GQL_RETURN_IF_ERROR(CheckExpr(*c.where, inner, false));
        if (c.project) {
          GQL_RETURN_IF_ERROR(CheckExpr(*c.project, inner, false));
        }
        return Status::OK();
      }
      case Expr::Kind::kQuantifier: {
        const auto& q = static_cast<const QuantifierExpr&>(e);
        GQL_RETURN_IF_ERROR(CheckExpr(*q.list, scope, allow_aggregates));
        Scope inner = scope;
        inner[q.var] = VarKind::kValue;
        return CheckExpr(*q.where, inner, false);
      }
      case Expr::Kind::kReduce: {
        const auto& r = static_cast<const ReduceExpr&>(e);
        GQL_RETURN_IF_ERROR(CheckExpr(*r.init, scope, allow_aggregates));
        GQL_RETURN_IF_ERROR(CheckExpr(*r.list, scope, allow_aggregates));
        Scope inner = scope;
        inner[r.acc] = VarKind::kValue;
        inner[r.var] = VarKind::kValue;
        return CheckExpr(*r.body, inner, false);
      }
      case Expr::Kind::kPatternPredicate: {
        const auto& p = static_cast<const PatternPredicateExpr&>(e);
        // Pattern predicates may not introduce new variables: every named
        // variable must already be bound.
        for (const auto& path : p.pattern.paths) {
          if (path.start.var) {
            GQL_RETURN_IF_ERROR(RequireVar(*path.start.var, scope));
          }
          for (const auto& hop : path.hops) {
            if (hop.rel.var) {
              GQL_RETURN_IF_ERROR(RequireVar(*hop.rel.var, scope));
            }
            if (hop.node.var) {
              GQL_RETURN_IF_ERROR(RequireVar(*hop.node.var, scope));
            }
          }
        }
        return Status::OK();
      }
    }
    return Status::OK();
  }
};

}  // namespace

Result<QueryInfo> Analyze(const Query& q) { return Analyzer().Run(q); }

}  // namespace gqlite
