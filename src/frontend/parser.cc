#include "src/frontend/parser.h"

#include <utility>

#include "src/common/string_util.h"
#include "src/frontend/lexer.h"

namespace gqlite {

namespace {

using namespace ast;  // NOLINT(build/namespaces) — the parser is all AST

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<Query> ParseQueryTop() {
    Query q;
    GQL_ASSIGN_OR_RETURN(SingleQuery first, ParseSingleQuery());
    q.parts.push_back(std::move(first));
    while (IsKw("UNION")) {
      Bump();
      bool all = false;
      if (IsKw("ALL")) {
        Bump();
        all = true;
      }
      GQL_ASSIGN_OR_RETURN(SingleQuery next, ParseSingleQuery());
      q.parts.push_back(std::move(next));
      q.union_all.push_back(all);
    }
    if (Peek().kind == TokenKind::kSemicolon) Bump();
    if (Peek().kind != TokenKind::kEof) {
      return ErrorHere("unexpected input after query");
    }
    return q;
  }

  Result<ExprPtr> ParseExpressionTop() {
    GQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (Peek().kind != TokenKind::kEof) {
      return ErrorHere("unexpected input after expression");
    }
    return e;
  }

 private:
  // ---- Token helpers -------------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& Bump() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool At(TokenKind k) const { return Peek().kind == k; }
  bool Eat(TokenKind k) {
    if (!At(k)) return false;
    Bump();
    return true;
  }

  /// True if the current token is the (case-insensitive) keyword `kw`.
  bool IsKw(std::string_view kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kIdentifier &&
           AsciiEqualsIgnoreCase(t.text, kw);
  }
  bool EatKw(std::string_view kw) {
    if (!IsKw(kw)) return false;
    Bump();
    return true;
  }

  Status ErrorHere(const std::string& msg) const {
    const Token& t = Peek();
    std::string got = t.kind == TokenKind::kIdentifier
                          ? "'" + t.text + "'"
                          : TokenKindName(t.kind);
    return Status::SyntaxError(msg + " (got " + got + " at " + t.Pos() + ")");
  }

  Status ExpectKw(std::string_view kw) {
    if (!EatKw(kw)) return ErrorHere("expected " + std::string(kw));
    return Status::OK();
  }
  Status Expect(TokenKind k) {
    if (!Eat(k)) {
      return ErrorHere(std::string("expected ") + TokenKindName(k));
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (!At(TokenKind::kIdentifier)) {
      return ErrorHere(std::string("expected ") + what);
    }
    return Bump().text;
  }

  /// Clause-starting keywords act as clause boundaries.
  bool AtClauseStart() const {
    return IsKw("MATCH") || IsKw("OPTIONAL") || IsKw("WITH") ||
           IsKw("RETURN") || IsKw("UNWIND") || IsKw("CREATE") ||
           IsKw("DELETE") || IsKw("DETACH") || IsKw("SET") || IsKw("REMOVE") ||
           IsKw("MERGE") || IsKw("UNION") || IsKw("FROM") || IsKw("QUERY") ||
           At(TokenKind::kEof) || At(TokenKind::kSemicolon);
  }

  // ---- Queries & clauses ---------------------------------------------------

  Result<SingleQuery> ParseSingleQuery() {
    SingleQuery q;
    if (AtClauseStart() && (At(TokenKind::kEof) || At(TokenKind::kSemicolon))) {
      return ErrorHere("empty query");
    }
    while (!At(TokenKind::kEof) && !At(TokenKind::kSemicolon) &&
           !IsKw("UNION")) {
      GQL_ASSIGN_OR_RETURN(ClausePtr c, ParseClause());
      bool is_return = c->kind == Clause::Kind::kReturn ||
                       c->kind == Clause::Kind::kReturnGraph;
      q.clauses.push_back(std::move(c));
      if (is_return) break;  // RETURN terminates a single query
    }
    if (q.clauses.empty()) return ErrorHere("expected a clause");
    return q;
  }

  Result<ClausePtr> ParseClause() {
    if (IsKw("OPTIONAL")) {
      Bump();
      GQL_RETURN_IF_ERROR(ExpectKw("MATCH"));
      return ParseMatch(/*optional=*/true);
    }
    if (EatKw("MATCH")) return ParseMatch(false);
    if (EatKw("WITH")) return ParseWith();
    if (IsKw("RETURN") && IsKw("GRAPH", 1)) {
      Bump();
      return ParseReturnGraph();
    }
    if (EatKw("RETURN")) return ParseReturn();
    if (EatKw("UNWIND")) return ParseUnwind();
    if (EatKw("CREATE")) return ParseCreate();
    if (IsKw("DETACH")) {
      Bump();
      GQL_RETURN_IF_ERROR(ExpectKw("DELETE"));
      return ParseDelete(/*detach=*/true);
    }
    if (EatKw("DELETE")) return ParseDelete(false);
    if (EatKw("SET")) return ParseSet();
    if (EatKw("REMOVE")) return ParseRemove();
    if (EatKw("MERGE")) return ParseMerge();
    if (IsKw("FROM") || IsKw("QUERY")) return ParseFromGraph();
    return ErrorHere("expected a clause keyword");
  }

  Result<ClausePtr> ParseMatch(bool optional) {
    auto m = std::make_unique<MatchClause>();
    m->optional = optional;
    GQL_ASSIGN_OR_RETURN(m->pattern, ParsePattern());
    if (EatKw("WHERE")) {
      GQL_ASSIGN_OR_RETURN(m->where, ParseExpr());
    }
    return ClausePtr(std::move(m));
  }

  Result<ClausePtr> ParseWith() {
    auto w = std::make_unique<WithClause>();
    GQL_ASSIGN_OR_RETURN(w->body, ParseProjectionBody());
    if (EatKw("WHERE")) {
      GQL_ASSIGN_OR_RETURN(w->where, ParseExpr());
    }
    return ClausePtr(std::move(w));
  }

  Result<ClausePtr> ParseReturn() {
    auto r = std::make_unique<ReturnClause>();
    GQL_ASSIGN_OR_RETURN(r->body, ParseProjectionBody());
    return ClausePtr(std::move(r));
  }

  Result<ClausePtr> ParseReturnGraph() {
    GQL_RETURN_IF_ERROR(ExpectKw("GRAPH"));
    auto r = std::make_unique<ReturnGraphClause>();
    GQL_ASSIGN_OR_RETURN(r->graph_name, ExpectIdentifier("graph name"));
    GQL_RETURN_IF_ERROR(ExpectKw("OF"));
    GQL_ASSIGN_OR_RETURN(r->pattern, ParsePattern());
    return ClausePtr(std::move(r));
  }

  Result<ClausePtr> ParseUnwind() {
    auto u = std::make_unique<UnwindClause>();
    GQL_ASSIGN_OR_RETURN(u->expr, ParseExpr());
    GQL_RETURN_IF_ERROR(ExpectKw("AS"));
    GQL_ASSIGN_OR_RETURN(u->var, ExpectIdentifier("variable name"));
    return ClausePtr(std::move(u));
  }

  Result<ClausePtr> ParseCreate() {
    auto c = std::make_unique<CreateClause>();
    GQL_ASSIGN_OR_RETURN(c->pattern, ParsePattern());
    return ClausePtr(std::move(c));
  }

  Result<ClausePtr> ParseDelete(bool detach) {
    auto d = std::make_unique<DeleteClause>();
    d->detach = detach;
    do {
      GQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      d->exprs.push_back(std::move(e));
    } while (Eat(TokenKind::kComma));
    return ClausePtr(std::move(d));
  }

  Result<ClausePtr> ParseSet() {
    auto s = std::make_unique<SetClause>();
    GQL_ASSIGN_OR_RETURN(s->items, ParseSetItems());
    return ClausePtr(std::move(s));
  }

  Result<std::vector<SetItem>> ParseSetItems() {
    std::vector<SetItem> items;
    do {
      GQL_ASSIGN_OR_RETURN(SetItem item, ParseSetItem());
      items.push_back(std::move(item));
    } while (Eat(TokenKind::kComma));
    return items;
  }

  /// SET forms: n.k = e | n = e | n += e | n:Label1:Label2.
  Result<SetItem> ParseSetItem() {
    SetItem item;
    GQL_ASSIGN_OR_RETURN(std::string var, ExpectIdentifier("variable"));
    if (At(TokenKind::kColon)) {
      item.kind = SetItem::Kind::kLabels;
      item.var = std::move(var);
      GQL_ASSIGN_OR_RETURN(item.labels, ParseLabelList());
      return item;
    }
    if (At(TokenKind::kDot)) {
      // Property chain; the last key is the assignment target.
      ExprPtr obj = std::make_unique<VariableExpr>(var);
      std::string key;
      while (Eat(TokenKind::kDot)) {
        GQL_ASSIGN_OR_RETURN(std::string k, ExpectIdentifier("property key"));
        if (At(TokenKind::kDot)) {
          obj = std::make_unique<PropertyExpr>(std::move(obj), std::move(k));
        } else {
          key = std::move(k);
        }
      }
      GQL_RETURN_IF_ERROR(Expect(TokenKind::kEq));
      item.kind = SetItem::Kind::kProperty;
      item.target = std::make_unique<PropertyExpr>(std::move(obj), key);
      GQL_ASSIGN_OR_RETURN(item.value, ParseExpr());
      return item;
    }
    if (Eat(TokenKind::kPlusEq)) {
      item.kind = SetItem::Kind::kMergeProps;
      item.var = std::move(var);
      GQL_ASSIGN_OR_RETURN(item.value, ParseExpr());
      return item;
    }
    if (Eat(TokenKind::kEq)) {
      item.kind = SetItem::Kind::kReplaceProps;
      item.var = std::move(var);
      GQL_ASSIGN_OR_RETURN(item.value, ParseExpr());
      return item;
    }
    return ErrorHere("expected '.', ':', '=' or '+=' in SET item");
  }

  Result<ClausePtr> ParseRemove() {
    auto r = std::make_unique<RemoveClause>();
    do {
      RemoveItem item;
      GQL_ASSIGN_OR_RETURN(item.var, ExpectIdentifier("variable"));
      if (At(TokenKind::kColon)) {
        item.kind = RemoveItem::Kind::kLabels;
        GQL_ASSIGN_OR_RETURN(item.labels, ParseLabelList());
      } else if (Eat(TokenKind::kDot)) {
        item.kind = RemoveItem::Kind::kProperty;
        GQL_ASSIGN_OR_RETURN(item.key, ExpectIdentifier("property key"));
      } else {
        return ErrorHere("expected '.' or ':' in REMOVE item");
      }
      r->items.push_back(std::move(item));
    } while (Eat(TokenKind::kComma));
    return ClausePtr(std::move(r));
  }

  Result<ClausePtr> ParseMerge() {
    auto m = std::make_unique<MergeClause>();
    GQL_ASSIGN_OR_RETURN(Pattern p, ParsePattern());
    if (p.paths.size() != 1) {
      return ErrorHere("MERGE takes a single path pattern");
    }
    m->pattern = std::move(p.paths[0]);
    while (IsKw("ON")) {
      Bump();
      if (EatKw("CREATE")) {
        GQL_RETURN_IF_ERROR(ExpectKw("SET"));
        GQL_ASSIGN_OR_RETURN(auto items, ParseSetItems());
        for (auto& i : items) m->on_create.push_back(std::move(i));
      } else if (EatKw("MATCH")) {
        GQL_RETURN_IF_ERROR(ExpectKw("SET"));
        GQL_ASSIGN_OR_RETURN(auto items, ParseSetItems());
        for (auto& i : items) m->on_match.push_back(std::move(i));
      } else {
        return ErrorHere("expected CREATE or MATCH after ON");
      }
    }
    return ClausePtr(std::move(m));
  }

  /// FROM GRAPH name [AT "url"] — and the Example 6.1 alias QUERY GRAPH name.
  Result<ClausePtr> ParseFromGraph() {
    if (EatKw("QUERY")) {
      GQL_RETURN_IF_ERROR(ExpectKw("GRAPH"));
      auto f = std::make_unique<FromGraphClause>();
      GQL_ASSIGN_OR_RETURN(f->name, ExpectIdentifier("graph name"));
      return ClausePtr(std::move(f));
    }
    GQL_RETURN_IF_ERROR(ExpectKw("FROM"));
    GQL_RETURN_IF_ERROR(ExpectKw("GRAPH"));
    auto f = std::make_unique<FromGraphClause>();
    GQL_ASSIGN_OR_RETURN(f->name, ExpectIdentifier("graph name"));
    if (EatKw("AT")) {
      if (!At(TokenKind::kString)) return ErrorHere("expected URL string");
      f->url = Bump().text;
    }
    return ClausePtr(std::move(f));
  }

  Result<ProjectionBody> ParseProjectionBody() {
    ProjectionBody body;
    if (EatKw("DISTINCT")) body.distinct = true;
    if (Eat(TokenKind::kStar)) {
      body.star = true;
      while (Eat(TokenKind::kComma)) {
        GQL_ASSIGN_OR_RETURN(ReturnItem item, ParseReturnItem());
        body.items.push_back(std::move(item));
      }
    } else {
      do {
        GQL_ASSIGN_OR_RETURN(ReturnItem item, ParseReturnItem());
        body.items.push_back(std::move(item));
      } while (Eat(TokenKind::kComma));
    }
    if (IsKw("ORDER")) {
      Bump();
      GQL_RETURN_IF_ERROR(ExpectKw("BY"));
      do {
        OrderItem item;
        GQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (EatKw("DESC") || EatKw("DESCENDING")) {
          item.ascending = false;
        } else if (EatKw("ASC") || EatKw("ASCENDING")) {
          item.ascending = true;
        }
        body.order_by.push_back(std::move(item));
      } while (Eat(TokenKind::kComma));
    }
    if (EatKw("SKIP")) {
      GQL_ASSIGN_OR_RETURN(body.skip, ParseExpr());
    }
    if (EatKw("LIMIT")) {
      GQL_ASSIGN_OR_RETURN(body.limit, ParseExpr());
    }
    return body;
  }

  Result<ReturnItem> ParseReturnItem() {
    ReturnItem item;
    GQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (EatKw("AS")) {
      GQL_ASSIGN_OR_RETURN(std::string a, ExpectIdentifier("alias"));
      item.alias = std::move(a);
    }
    return item;
  }

  // ---- Patterns (Figure 3) -------------------------------------------------

  Result<Pattern> ParsePattern() {
    Pattern p;
    do {
      GQL_ASSIGN_OR_RETURN(PathPattern path, ParsePathPattern());
      p.paths.push_back(std::move(path));
    } while (Eat(TokenKind::kComma));
    return p;
  }

  Result<PathPattern> ParsePathPattern() {
    PathPattern path;
    // `a = pattern◦`
    if (At(TokenKind::kIdentifier) && Peek(1).kind == TokenKind::kEq) {
      path.path_var = Bump().text;
      Bump();  // =
    }
    GQL_ASSIGN_OR_RETURN(path.start, ParseNodePattern());
    while (At(TokenKind::kMinus) || At(TokenKind::kLt)) {
      GQL_ASSIGN_OR_RETURN(RelPattern rel, ParseRelPattern());
      GQL_ASSIGN_OR_RETURN(NodePattern node, ParseNodePattern());
      path.hops.push_back(PathPattern::Hop{std::move(rel), std::move(node)});
    }
    return path;
  }

  Result<NodePattern> ParseNodePattern() {
    NodePattern n;
    GQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    if (At(TokenKind::kIdentifier)) n.var = Bump().text;
    if (At(TokenKind::kColon)) {
      GQL_ASSIGN_OR_RETURN(n.labels, ParseLabelList());
    }
    if (At(TokenKind::kLBrace)) {
      GQL_ASSIGN_OR_RETURN(n.properties, ParsePropertyMap());
    }
    GQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return n;
  }

  Result<std::vector<std::string>> ParseLabelList() {
    std::vector<std::string> labels;
    while (Eat(TokenKind::kColon)) {
      GQL_ASSIGN_OR_RETURN(std::string l, ExpectIdentifier("label"));
      labels.push_back(std::move(l));
    }
    return labels;
  }

  Result<std::vector<std::pair<std::string, ExprPtr>>> ParsePropertyMap() {
    std::vector<std::pair<std::string, ExprPtr>> props;
    GQL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    if (!At(TokenKind::kRBrace)) {
      do {
        GQL_ASSIGN_OR_RETURN(std::string key,
                             ExpectIdentifier("property key"));
        GQL_RETURN_IF_ERROR(Expect(TokenKind::kColon));
        GQL_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
        props.emplace_back(std::move(key), std::move(v));
      } while (Eat(TokenKind::kComma));
    }
    GQL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    return props;
  }

  Result<RelPattern> ParseRelPattern() {
    RelPattern rel;
    bool left_arrow = false;
    if (Eat(TokenKind::kLt)) {
      left_arrow = true;
    }
    GQL_RETURN_IF_ERROR(Expect(TokenKind::kMinus));
    if (At(TokenKind::kLBracket)) {
      Bump();
      if (At(TokenKind::kIdentifier)) rel.var = Bump().text;
      if (At(TokenKind::kColon)) {
        // type_list ::= :t | type_list | t  — accept `:A|B` and `:A|:B`.
        Bump();
        GQL_ASSIGN_OR_RETURN(std::string t, ExpectIdentifier("type"));
        rel.types.push_back(std::move(t));
        while (Eat(TokenKind::kPipe)) {
          Eat(TokenKind::kColon);
          GQL_ASSIGN_OR_RETURN(std::string t2, ExpectIdentifier("type"));
          rel.types.push_back(std::move(t2));
        }
      }
      if (Eat(TokenKind::kStar)) {
        VarLength vl;
        bool has_min = false;
        if (At(TokenKind::kInteger)) {
          if (Peek().int_is_min_magnitude) {
            return ErrorHere("integer literal out of range");
          }
          vl.min = Bump().int_value;
          has_min = true;
        }
        if (Eat(TokenKind::kDotDot)) {
          if (At(TokenKind::kInteger)) {
            if (Peek().int_is_min_magnitude) {
              return ErrorHere("integer literal out of range");
            }
            vl.max = Bump().int_value;
          }
        } else if (has_min) {
          vl.max = vl.min;  // *d means exactly d (§4.2: I = (d, d))
        }
        rel.length = vl;
      }
      if (At(TokenKind::kLBrace)) {
        GQL_ASSIGN_OR_RETURN(rel.properties, ParsePropertyMap());
      }
      GQL_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
    }
    GQL_RETURN_IF_ERROR(Expect(TokenKind::kMinus));
    bool right_arrow = Eat(TokenKind::kGt);
    if (left_arrow && right_arrow) {
      return ErrorHere("relationship pattern cannot point both ways");
    }
    rel.direction = left_arrow ? Direction::kLeft
                               : (right_arrow ? Direction::kRight
                                              : Direction::kBoth);
    return rel;
  }

  // ---- Expressions (Figure 5) ----------------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    GQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseXor());
    while (IsKw("OR")) {
      Bump();
      GQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseXor());
      lhs = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(lhs),
                                         std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseXor() {
    GQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (IsKw("XOR")) {
      Bump();
      GQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = std::make_unique<BinaryExpr>(BinaryOp::kXor, std::move(lhs),
                                         std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    GQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (IsKw("AND")) {
      Bump();
      GQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(lhs),
                                         std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (IsKw("NOT")) {
      Bump();
      GQL_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return ExprPtr(std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(e)));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    GQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    while (true) {
      BinaryOp op;
      if (Eat(TokenKind::kEq)) {
        op = BinaryOp::kEq;
      } else if (Eat(TokenKind::kNeq)) {
        op = BinaryOp::kNeq;
      } else if (Eat(TokenKind::kLt)) {
        op = BinaryOp::kLt;
      } else if (Eat(TokenKind::kLe)) {
        op = BinaryOp::kLe;
      } else if (Eat(TokenKind::kGt)) {
        op = BinaryOp::kGt;
      } else if (Eat(TokenKind::kGe)) {
        op = BinaryOp::kGe;
      } else if (Eat(TokenKind::kRegexMatch)) {
        op = BinaryOp::kRegexMatch;
      } else if (IsKw("IN")) {
        Bump();
        op = BinaryOp::kIn;
      } else if (IsKw("STARTS")) {
        Bump();
        GQL_RETURN_IF_ERROR(ExpectKw("WITH"));
        op = BinaryOp::kStartsWith;
      } else if (IsKw("ENDS")) {
        Bump();
        GQL_RETURN_IF_ERROR(ExpectKw("WITH"));
        op = BinaryOp::kEndsWith;
      } else if (IsKw("CONTAINS")) {
        Bump();
        op = BinaryOp::kContains;
      } else if (IsKw("IS")) {
        // IS NULL / IS NOT NULL (postfix).
        Bump();
        bool negated = EatKw("NOT");
        GQL_RETURN_IF_ERROR(ExpectKw("NULL"));
        lhs = std::make_unique<UnaryExpr>(
            negated ? UnaryOp::kIsNotNull : UnaryOp::kIsNull, std::move(lhs));
        continue;
      } else {
        break;
      }
      GQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    GQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (At(TokenKind::kPlus) || At(TokenKind::kMinus)) {
      BinaryOp op =
          Bump().kind == TokenKind::kPlus ? BinaryOp::kAdd : BinaryOp::kSub;
      GQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    GQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParsePower());
    while (At(TokenKind::kStar) || At(TokenKind::kSlash) ||
           At(TokenKind::kPercent)) {
      TokenKind k = Bump().kind;
      BinaryOp op = k == TokenKind::kStar
                        ? BinaryOp::kMul
                        : (k == TokenKind::kSlash ? BinaryOp::kDiv
                                                  : BinaryOp::kMod);
      GQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePower());
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParsePower() {
    GQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    if (At(TokenKind::kCaret)) {
      Bump();
      GQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePower());  // right-associative
      return ExprPtr(std::make_unique<BinaryExpr>(BinaryOp::kPow,
                                                  std::move(lhs),
                                                  std::move(rhs)));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (At(TokenKind::kMinus)) {
      // `-9223372036854775808` must fold to the INT64_MIN literal here:
      // the magnitude alone does not fit in int64, so it cannot survive
      // as `-(literal)`.
      if (Peek(1).kind == TokenKind::kInteger &&
          Peek(1).int_is_min_magnitude) {
        Bump();  // -
        Bump();  // |INT64_MIN|
        return ExprPtr(
            std::make_unique<LiteralExpr>(Value::Int(INT64_MIN)));
      }
      Bump();
      GQL_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return ExprPtr(
          std::make_unique<UnaryExpr>(UnaryOp::kMinus, std::move(e)));
    }
    if (At(TokenKind::kPlus)) {
      Bump();
      GQL_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return ExprPtr(std::make_unique<UnaryExpr>(UnaryOp::kPlus, std::move(e)));
    }
    return ParsePostfix();
  }

  Result<ExprPtr> ParsePostfix() {
    GQL_ASSIGN_OR_RETURN(ExprPtr e, ParseAtom());
    while (true) {
      if (At(TokenKind::kDot)) {
        Bump();
        GQL_ASSIGN_OR_RETURN(std::string key,
                             ExpectIdentifier("property key"));
        e = std::make_unique<PropertyExpr>(std::move(e), std::move(key));
      } else if (At(TokenKind::kLBracket)) {
        Bump();
        // list[i], list[a..b], list[..b], list[a..].
        if (Eat(TokenKind::kDotDot)) {
          ExprPtr to;
          if (!At(TokenKind::kRBracket)) {
            GQL_ASSIGN_OR_RETURN(to, ParseExpr());
          }
          GQL_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
          e = std::make_unique<SliceExpr>(std::move(e), nullptr,
                                          std::move(to));
        } else {
          GQL_ASSIGN_OR_RETURN(ExprPtr idx, ParseExpr());
          if (Eat(TokenKind::kDotDot)) {
            ExprPtr to;
            if (!At(TokenKind::kRBracket)) {
              GQL_ASSIGN_OR_RETURN(to, ParseExpr());
            }
            GQL_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
            e = std::make_unique<SliceExpr>(std::move(e), std::move(idx),
                                            std::move(to));
          } else {
            GQL_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
            e = std::make_unique<IndexExpr>(std::move(e), std::move(idx));
          }
        }
      } else if (At(TokenKind::kColon) &&
                 Peek(1).kind == TokenKind::kIdentifier) {
        // Label predicate `x:Person` (used in WHERE, §3 fraud query).
        GQL_ASSIGN_OR_RETURN(auto labels, ParseLabelList());
        e = std::make_unique<LabelCheckExpr>(std::move(e), std::move(labels));
      } else {
        break;
      }
    }
    return e;
  }

  Result<ExprPtr> ParseAtom() {
    const Token& t = Peek();
    int line = t.line, col = t.col;
    ExprPtr out;
    switch (t.kind) {
      case TokenKind::kInteger:
        if (t.int_is_min_magnitude) {
          return ErrorHere("integer literal out of range");
        }
        out = std::make_unique<LiteralExpr>(Value::Int(Bump().int_value));
        break;
      case TokenKind::kFloat:
        out = std::make_unique<LiteralExpr>(Value::Float(Bump().float_value));
        break;
      case TokenKind::kString:
        out = std::make_unique<LiteralExpr>(Value::String(Bump().text));
        break;
      case TokenKind::kParameter:
        out = std::make_unique<ParameterExpr>(Bump().text);
        break;
      case TokenKind::kLBracket: {
        GQL_ASSIGN_OR_RETURN(out, ParseListAtom());
        break;
      }
      case TokenKind::kLBrace: {
        GQL_ASSIGN_OR_RETURN(auto entries, ParsePropertyMap());
        out = std::make_unique<MapLiteralExpr>(std::move(entries));
        break;
      }
      case TokenKind::kLParen: {
        GQL_ASSIGN_OR_RETURN(out, ParseParenOrPattern());
        break;
      }
      case TokenKind::kIdentifier: {
        if (AsciiEqualsIgnoreCase(t.text, "true")) {
          Bump();
          out = std::make_unique<LiteralExpr>(Value::Bool(true));
          break;
        }
        if (AsciiEqualsIgnoreCase(t.text, "false")) {
          Bump();
          out = std::make_unique<LiteralExpr>(Value::Bool(false));
          break;
        }
        if (AsciiEqualsIgnoreCase(t.text, "null")) {
          Bump();
          out = std::make_unique<LiteralExpr>(Value::Null());
          break;
        }
        if (AsciiEqualsIgnoreCase(t.text, "case")) {
          GQL_ASSIGN_OR_RETURN(out, ParseCase());
          break;
        }
        if (Peek(1).kind == TokenKind::kLParen) {
          GQL_ASSIGN_OR_RETURN(out, ParseFunctionCall());
          break;
        }
        out = std::make_unique<VariableExpr>(Bump().text);
        break;
      }
      default:
        return ErrorHere("expected an expression");
    }
    out->line = line;
    out->col = col;
    return out;
  }

  /// `[` … either a list comprehension `[x IN list WHERE p | e]` or a list
  /// literal. Lookahead `ident IN` selects the comprehension (Cypher's
  /// grammar gives it priority).
  Result<ExprPtr> ParseListAtom() {
    GQL_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
    if (At(TokenKind::kIdentifier) && IsKw("IN", 1)) {
      auto comp = std::make_unique<ListComprehensionExpr>();
      comp->var = Bump().text;
      Bump();  // IN
      GQL_ASSIGN_OR_RETURN(comp->list, ParseExpr());
      if (EatKw("WHERE")) {
        GQL_ASSIGN_OR_RETURN(comp->where, ParseExpr());
      }
      if (Eat(TokenKind::kPipe)) {
        GQL_ASSIGN_OR_RETURN(comp->project, ParseExpr());
      }
      GQL_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
      return ExprPtr(std::move(comp));
    }
    std::vector<ExprPtr> items;
    if (!At(TokenKind::kRBracket)) {
      do {
        GQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        items.push_back(std::move(e));
      } while (Eat(TokenKind::kComma));
    }
    GQL_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
    return ExprPtr(std::make_unique<ListLiteralExpr>(std::move(items)));
  }

  /// `(` … either a parenthesized expression or a path-pattern predicate
  /// like (a)-[:T]->(b) (the "existential subqueries" of §2). We try the
  /// pattern parse first and fall back on expression parse (backtracking
  /// over the token buffer).
  Result<ExprPtr> ParseParenOrPattern() {
    size_t save = pos_;
    {
      // Attempt: node pattern with at least one hop.
      auto try_pattern = [&]() -> Result<ExprPtr> {
        GQL_ASSIGN_OR_RETURN(PathPattern path, ParsePathPattern());
        if (path.hops.empty()) {
          return Status::SyntaxError("not a pattern");
        }
        auto p = std::make_unique<PatternPredicateExpr>();
        p->pattern.paths.push_back(std::move(path));
        return ExprPtr(std::move(p));
      };
      Result<ExprPtr> r = try_pattern();
      if (r.ok()) return std::move(r).value();
      pos_ = save;
    }
    GQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    GQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    GQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return e;
  }

  Result<ExprPtr> ParseCase() {
    GQL_RETURN_IF_ERROR(ExpectKw("CASE"));
    auto c = std::make_unique<CaseExpr>();
    if (!IsKw("WHEN")) {
      GQL_ASSIGN_OR_RETURN(c->operand, ParseExpr());
    }
    while (EatKw("WHEN")) {
      GQL_ASSIGN_OR_RETURN(ExprPtr w, ParseExpr());
      GQL_RETURN_IF_ERROR(ExpectKw("THEN"));
      GQL_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
      c->whens.emplace_back(std::move(w), std::move(v));
    }
    if (c->whens.empty()) return ErrorHere("CASE requires at least one WHEN");
    if (EatKw("ELSE")) {
      GQL_ASSIGN_OR_RETURN(c->otherwise, ParseExpr());
    }
    GQL_RETURN_IF_ERROR(ExpectKw("END"));
    return ExprPtr(std::move(c));
  }

  Result<ExprPtr> ParseFunctionCall() {
    std::string name = AsciiToLower(Bump().text);
    GQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    if (name == "count" && At(TokenKind::kStar)) {
      Bump();
      GQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return ExprPtr(std::make_unique<CountStarExpr>());
    }
    // List-predicate quantifiers: all/any/none/single(x IN list WHERE p).
    if ((name == "all" || name == "any" || name == "none" ||
         name == "single") &&
        At(TokenKind::kIdentifier) && IsKw("IN", 1)) {
      auto q = std::make_unique<QuantifierExpr>();
      q->quantifier = name == "all"    ? QuantifierExpr::Quantifier::kAll
                      : name == "any"  ? QuantifierExpr::Quantifier::kAny
                      : name == "none" ? QuantifierExpr::Quantifier::kNone
                                       : QuantifierExpr::Quantifier::kSingle;
      q->var = Bump().text;
      Bump();  // IN
      GQL_ASSIGN_OR_RETURN(q->list, ParseExpr());
      GQL_RETURN_IF_ERROR(ExpectKw("WHERE"));
      GQL_ASSIGN_OR_RETURN(q->where, ParseExpr());
      GQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return ExprPtr(std::move(q));
    }
    // reduce(acc = init, x IN list | expr).
    if (name == "reduce" && At(TokenKind::kIdentifier) &&
        Peek(1).kind == TokenKind::kEq) {
      auto r = std::make_unique<ReduceExpr>();
      r->acc = Bump().text;
      Bump();  // =
      GQL_ASSIGN_OR_RETURN(r->init, ParseExpr());
      GQL_RETURN_IF_ERROR(Expect(TokenKind::kComma));
      GQL_ASSIGN_OR_RETURN(r->var, ExpectIdentifier("variable"));
      GQL_RETURN_IF_ERROR(ExpectKw("IN"));
      GQL_ASSIGN_OR_RETURN(r->list, ParseExpr());
      GQL_RETURN_IF_ERROR(Expect(TokenKind::kPipe));
      GQL_ASSIGN_OR_RETURN(r->body, ParseExpr());
      GQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return ExprPtr(std::move(r));
    }
    bool distinct = false;
    if (EatKw("DISTINCT")) distinct = true;
    std::vector<ExprPtr> args;
    if (!At(TokenKind::kRParen)) {
      do {
        GQL_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
        args.push_back(std::move(a));
      } while (Eat(TokenKind::kComma));
    }
    GQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return ExprPtr(std::make_unique<FunctionCallExpr>(
        std::move(name), distinct, std::move(args)));
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<ast::Query> ParseQuery(std::string_view text) {
  GQL_ASSIGN_OR_RETURN(std::vector<Token> toks, Tokenize(text));
  return Parser(std::move(toks)).ParseQueryTop();
}

Result<ast::ExprPtr> ParseExpression(std::string_view text) {
  GQL_ASSIGN_OR_RETURN(std::vector<Token> toks, Tokenize(text));
  return Parser(std::move(toks)).ParseExpressionTop();
}

}  // namespace gqlite
