#ifndef GQLITE_FRONTEND_ANALYZER_H_
#define GQLITE_FRONTEND_ANALYZER_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/frontend/ast.h"

namespace gqlite {

/// What a variable in scope denotes. Node/relationship/path variables come
/// from patterns; kValue covers projections, UNWIND aliases and
/// variable-length relationship lists.
enum class VarKind : uint8_t { kNode, kRelationship, kPath, kValue };

/// True for Cypher's aggregating functions (count, sum, avg, min, max,
/// collect). The projection semantics of WITH/RETURN treats items
/// containing these as aggregates and the rest as grouping keys (§3).
bool IsAggregateFunction(const std::string& lowercase_name);

/// True if `e` contains an aggregate function call (at any depth).
bool ContainsAggregate(const ast::Expr& e);

/// The column name assigned to an un-aliased return item — the paper's
/// injective α function from expressions to names. We use the unparsed
/// expression text.
std::string DerivedColumnName(const ast::Expr& e);

/// Result of semantic analysis.
struct QueryInfo {
  /// True if any clause mutates the graph (CREATE/DELETE/SET/REMOVE/MERGE).
  bool updating = false;
  /// Output column names (empty for queries ending in an update clause or
  /// RETURN GRAPH).
  std::vector<std::string> columns;
};

/// Validates a parsed query: variable scoping through the linear clause
/// flow (variables not projected by WITH go out of scope, §3), pattern
/// variable kind consistency, aggregation placement, clause ordering,
/// UNION column compatibility, and the restrictions on update-clause
/// patterns. Returns metadata used by the executors.
Result<QueryInfo> Analyze(const ast::Query& q);

}  // namespace gqlite

#endif  // GQLITE_FRONTEND_ANALYZER_H_
