#ifndef GQLITE_FRONTEND_TOKEN_H_
#define GQLITE_FRONTEND_TOKEN_H_

#include <cstdint>
#include <string>

namespace gqlite {

/// Lexical token kinds. Keywords are NOT distinguished here: Cypher
/// keywords are case-insensitive and mostly non-reserved, so the parser
/// matches identifier text case-insensitively where the grammar expects a
/// keyword. Multi-character pattern punctuation (`-[`, `]->`, `<-`) is
/// assembled by the parser from these primitive tokens.
enum class TokenKind : uint8_t {
  kEof = 0,
  kIdentifier,   // foo, `quoted id`
  kParameter,    // $name
  kInteger,      // 42
  kFloat,        // 3.14, 6.022e23
  kString,       // 'abc' or "abc"
  kLParen,       // (
  kRParen,       // )
  kLBracket,     // [
  kRBracket,     // ]
  kLBrace,       // {
  kRBrace,       // }
  kComma,        // ,
  kColon,        // :
  kSemicolon,    // ;
  kDot,          // .
  kDotDot,       // ..
  kPipe,         // |
  kPlus,         // +
  kPlusEq,       // +=
  kMinus,        // -
  kStar,         // *
  kSlash,        // /
  kPercent,      // %
  kCaret,        // ^
  kEq,           // =
  kRegexMatch,   // =~
  kNeq,          // <>
  kLt,           // <
  kLe,           // <=
  kGt,           // >
  kGe,           // >=
};

const char* TokenKindName(TokenKind k);

/// A lexical token. `text` holds the identifier/keyword spelling, the
/// decoded string-literal contents, or the parameter name; numeric tokens
/// carry their value in `int_value`/`float_value`.
struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  int64_t int_value = 0;
  double float_value = 0;
  /// True for the integer literal 9223372036854775808 (= |INT64_MIN|,
  /// one past INT64_MAX). It is only legal directly under a unary minus —
  /// `-9223372036854775808` is INT64_MIN — and a syntax error elsewhere;
  /// the parser decides which. `int_value` holds INT64_MIN.
  bool int_is_min_magnitude = false;
  int line = 1;
  int col = 1;

  /// Position string "line:col" for error messages.
  std::string Pos() const {
    return std::to_string(line) + ":" + std::to_string(col);
  }
};

}  // namespace gqlite

#endif  // GQLITE_FRONTEND_TOKEN_H_
