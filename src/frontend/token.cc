#include "src/frontend/token.h"

namespace gqlite {

const char* TokenKindName(TokenKind k) {
  switch (k) {
    case TokenKind::kEof:
      return "end of input";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kParameter:
      return "parameter";
    case TokenKind::kInteger:
      return "integer";
    case TokenKind::kFloat:
      return "float";
    case TokenKind::kString:
      return "string";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kDotDot:
      return "'..'";
    case TokenKind::kPipe:
      return "'|'";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kPlusEq:
      return "'+='";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kPercent:
      return "'%'";
    case TokenKind::kCaret:
      return "'^'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kRegexMatch:
      return "'=~'";
    case TokenKind::kNeq:
      return "'<>'";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
  }
  return "?";
}

}  // namespace gqlite
