#ifndef GQLITE_FRONTEND_AST_H_
#define GQLITE_FRONTEND_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/value/value.h"

namespace gqlite {
namespace ast {

// ---------------------------------------------------------------------------
// Expressions (Figure 5, "expressions" production, plus the standard
// arithmetic operators — elements of the base-function set ℱ — and the
// extensions §2 advertises: CASE, list comprehensions, pattern predicates).
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinaryOp : uint8_t {
  kOr,
  kXor,
  kAnd,
  kEq,
  kNeq,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kPow,
  kIn,
  kStartsWith,
  kEndsWith,
  kContains,
  kRegexMatch,
};

enum class UnaryOp : uint8_t {
  kNot,
  kMinus,
  kPlus,
  kIsNull,
  kIsNotNull,
};

const char* BinaryOpName(BinaryOp op);
const char* UnaryOpName(UnaryOp op);

struct Expr {
  enum class Kind : uint8_t {
    kLiteral,
    kVariable,
    kParameter,
    kProperty,        // expr.key
    kLabelCheck,      // expr:Label1:Label2 (predicate form, e.g. in WHERE)
    kListLiteral,     // [e1, ...]
    kMapLiteral,      // {k: e, ...}
    kFunctionCall,    // f(args) / f(DISTINCT args); includes aggregates
    kCountStar,       // count(*)
    kBinary,
    kUnary,
    kIndex,              // list[e]
    kSlice,              // list[from..to]
    kCase,               // CASE ... END
    kListComprehension,  // [x IN list WHERE p | e]
    kQuantifier,         // all/any/none/single(x IN list WHERE p)
    kReduce,             // reduce(acc = init, x IN list | expr)
    kPatternPredicate,   // exists((a)-[:T]->(b)) / bare pattern in WHERE
  };

  Kind kind;
  int line = 0;
  int col = 0;

  explicit Expr(Kind k) : kind(k) {}
  virtual ~Expr() = default;
};

struct LiteralExpr : Expr {
  Value value;
  explicit LiteralExpr(Value v) : Expr(Kind::kLiteral), value(std::move(v)) {}
};

struct VariableExpr : Expr {
  std::string name;
  explicit VariableExpr(std::string n)
      : Expr(Kind::kVariable), name(std::move(n)) {}
};

struct ParameterExpr : Expr {
  std::string name;
  explicit ParameterExpr(std::string n)
      : Expr(Kind::kParameter), name(std::move(n)) {}
};

struct PropertyExpr : Expr {
  ExprPtr object;
  std::string key;
  PropertyExpr(ExprPtr obj, std::string k)
      : Expr(Kind::kProperty), object(std::move(obj)), key(std::move(k)) {}
};

struct LabelCheckExpr : Expr {
  ExprPtr object;
  std::vector<std::string> labels;
  LabelCheckExpr(ExprPtr obj, std::vector<std::string> ls)
      : Expr(Kind::kLabelCheck), object(std::move(obj)), labels(std::move(ls)) {}
};

struct ListLiteralExpr : Expr {
  std::vector<ExprPtr> items;
  explicit ListLiteralExpr(std::vector<ExprPtr> xs)
      : Expr(Kind::kListLiteral), items(std::move(xs)) {}
};

struct MapLiteralExpr : Expr {
  std::vector<std::pair<std::string, ExprPtr>> entries;
  explicit MapLiteralExpr(std::vector<std::pair<std::string, ExprPtr>> es)
      : Expr(Kind::kMapLiteral), entries(std::move(es)) {}
};

struct FunctionCallExpr : Expr {
  std::string name;  // lowercased at parse time (function names are case-
                     // insensitive in Cypher)
  bool distinct = false;
  std::vector<ExprPtr> args;
  FunctionCallExpr(std::string n, bool d, std::vector<ExprPtr> a)
      : Expr(Kind::kFunctionCall),
        name(std::move(n)),
        distinct(d),
        args(std::move(a)) {}
};

struct CountStarExpr : Expr {
  CountStarExpr() : Expr(Kind::kCountStar) {}
};

struct BinaryExpr : Expr {
  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
  BinaryExpr(BinaryOp o, ExprPtr l, ExprPtr r)
      : Expr(Kind::kBinary), op(o), lhs(std::move(l)), rhs(std::move(r)) {}
};

struct UnaryExpr : Expr {
  UnaryOp op;
  ExprPtr operand;
  UnaryExpr(UnaryOp o, ExprPtr e)
      : Expr(Kind::kUnary), op(o), operand(std::move(e)) {}
};

struct IndexExpr : Expr {
  ExprPtr object;
  ExprPtr index;
  IndexExpr(ExprPtr obj, ExprPtr idx)
      : Expr(Kind::kIndex), object(std::move(obj)), index(std::move(idx)) {}
};

struct SliceExpr : Expr {
  ExprPtr object;
  ExprPtr from;  // may be null (open start)
  ExprPtr to;    // may be null (open end)
  SliceExpr(ExprPtr obj, ExprPtr f, ExprPtr t)
      : Expr(Kind::kSlice),
        object(std::move(obj)),
        from(std::move(f)),
        to(std::move(t)) {}
};

struct CaseExpr : Expr {
  ExprPtr operand;  // null for searched CASE
  std::vector<std::pair<ExprPtr, ExprPtr>> whens;
  ExprPtr otherwise;  // may be null (defaults to null)
  CaseExpr() : Expr(Kind::kCase) {}
};

struct ListComprehensionExpr : Expr {
  std::string var;
  ExprPtr list;
  ExprPtr where;    // may be null
  ExprPtr project;  // may be null (then the element itself)
  ListComprehensionExpr() : Expr(Kind::kListComprehension) {}
};

/// List-predicate quantifiers (part of §2's "powerful features" family):
/// all/any/none/single(x IN list WHERE predicate), with SQL-style 3VL over
/// the element results.
struct QuantifierExpr : Expr {
  enum class Quantifier : uint8_t { kAll, kAny, kNone, kSingle };
  Quantifier quantifier = Quantifier::kAll;
  std::string var;
  ExprPtr list;
  ExprPtr where;
  QuantifierExpr() : Expr(Kind::kQuantifier) {}
};

/// reduce(acc = init, x IN list | expr): left fold over a list.
struct ReduceExpr : Expr {
  std::string acc;
  ExprPtr init;
  std::string var;
  ExprPtr list;
  ExprPtr body;
  ReduceExpr() : Expr(Kind::kReduce) {}
};

// ---------------------------------------------------------------------------
// Patterns (Figure 3).
// ---------------------------------------------------------------------------

/// node_pattern ::= (a? label_list? map?)
struct NodePattern {
  std::optional<std::string> var;
  std::vector<std::string> labels;
  std::vector<std::pair<std::string, ExprPtr>> properties;
};

/// Direction of a relationship pattern: -->, <--, or undirected.
enum class Direction : uint8_t { kRight, kLeft, kBoth };

/// len ::= * | *d | *d1.. | *..d2 | *d1..d2 — nullopt min/max mean the
/// defaults (1 and ∞ per §4.2's range rule).
struct VarLength {
  std::optional<int64_t> min;
  std::optional<int64_t> max;
};

/// rel_pattern ::= -[a? type_list? len? map?]-> etc.
struct RelPattern {
  Direction direction = Direction::kBoth;
  std::optional<std::string> var;
  std::vector<std::string> types;
  std::vector<std::pair<std::string, ExprPtr>> properties;
  std::optional<VarLength> length;  // nullopt == rigid single hop (I = nil)
};

/// pattern◦ ::= node_pattern (rel_pattern node_pattern)*
struct PathPattern {
  std::optional<std::string> path_var;  // pattern ::= a = pattern◦
  NodePattern start;
  struct Hop {
    RelPattern rel;
    NodePattern node;
  };
  std::vector<Hop> hops;
};

/// pattern_tuple ::= pattern (, pattern)*
struct Pattern {
  std::vector<PathPattern> paths;
};

struct PatternPredicateExpr : Expr {
  Pattern pattern;
  PatternPredicateExpr() : Expr(Kind::kPatternPredicate) {}
};

// ---------------------------------------------------------------------------
// Clauses (Figure 5 plus the update language of §2 and the Cypher 10
// multiple-graph clauses of §6).
// ---------------------------------------------------------------------------

struct Clause {
  enum class Kind : uint8_t {
    kMatch,
    kWith,
    kReturn,
    kUnwind,
    kCreate,
    kDelete,
    kSet,
    kRemove,
    kMerge,
    kFromGraph,
    kReturnGraph,
  };
  Kind kind;
  explicit Clause(Kind k) : kind(k) {}
  virtual ~Clause() = default;
};

using ClausePtr = std::unique_ptr<Clause>;

/// One item of a RETURN/WITH projection list: expr [AS alias].
struct ReturnItem {
  ExprPtr expr;
  std::optional<std::string> alias;
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

/// Shared body of RETURN and WITH: [DISTINCT] items [ORDER BY ...]
/// [SKIP e] [LIMIT e]; `star` for `*` (optionally with extra items).
struct ProjectionBody {
  bool distinct = false;
  bool star = false;
  std::vector<ReturnItem> items;
  std::vector<OrderItem> order_by;
  ExprPtr skip;
  ExprPtr limit;
};

struct MatchClause : Clause {
  bool optional = false;
  Pattern pattern;
  ExprPtr where;  // may be null
  MatchClause() : Clause(Kind::kMatch) {}
};

struct WithClause : Clause {
  ProjectionBody body;
  ExprPtr where;  // may be null; applies after projection
  WithClause() : Clause(Kind::kWith) {}
};

struct ReturnClause : Clause {
  ProjectionBody body;
  ReturnClause() : Clause(Kind::kReturn) {}
};

struct UnwindClause : Clause {
  ExprPtr expr;
  std::string var;
  UnwindClause() : Clause(Kind::kUnwind) {}
};

struct CreateClause : Clause {
  Pattern pattern;
  CreateClause() : Clause(Kind::kCreate) {}
};

struct DeleteClause : Clause {
  bool detach = false;
  std::vector<ExprPtr> exprs;
  DeleteClause() : Clause(Kind::kDelete) {}
};

/// SET item forms: n.k = e | n = {map} | n += {map} | n:Label1:Label2.
struct SetItem {
  enum class Kind : uint8_t { kProperty, kReplaceProps, kMergeProps, kLabels };
  Kind kind;
  ExprPtr target;                   // kProperty: the PropertyExpr target
  std::string var;                  // entity variable (other forms)
  ExprPtr value;                    // RHS for property/map forms
  std::vector<std::string> labels;  // kLabels
};

struct SetClause : Clause {
  std::vector<SetItem> items;
  SetClause() : Clause(Kind::kSet) {}
};

/// REMOVE item forms: n.k | n:Label1:Label2.
struct RemoveItem {
  enum class Kind : uint8_t { kProperty, kLabels };
  Kind kind;
  std::string var;
  std::string key;                  // kProperty
  std::vector<std::string> labels;  // kLabels
};

struct RemoveClause : Clause {
  std::vector<RemoveItem> items;
  RemoveClause() : Clause(Kind::kRemove) {}
};

struct MergeClause : Clause {
  PathPattern pattern;
  std::vector<SetItem> on_create;
  std::vector<SetItem> on_match;
  MergeClause() : Clause(Kind::kMerge) {}
};

/// Cypher 10 (§6): FROM GRAPH name [AT "url"] — switches the working graph
/// for the following reading clauses; Example 6.1.
struct FromGraphClause : Clause {
  std::string name;
  std::optional<std::string> url;
  FromGraphClause() : Clause(Kind::kFromGraph) {}
};

/// Cypher 10 (§6): RETURN GRAPH name OF pattern — projects a new graph
/// built from the pattern instantiated over the driving table.
struct ReturnGraphClause : Clause {
  std::string graph_name;
  Pattern pattern;
  ReturnGraphClause() : Clause(Kind::kReturnGraph) {}
};

// ---------------------------------------------------------------------------
// Queries (Figure 5 "queries": sequences of clauses, UNION [ALL]).
// ---------------------------------------------------------------------------

/// query◦ ::= clause* RETURN ... (read queries) — update queries may end
/// with an updating clause instead of RETURN.
struct SingleQuery {
  std::vector<ClausePtr> clauses;
};

/// query ::= query◦ (UNION [ALL] query◦)*
struct Query {
  std::vector<SingleQuery> parts;
  std::vector<bool> union_all;  // separator i joins parts[i] and parts[i+1]
};

/// Deep-copy helpers (the planner rewrites expression trees).
ExprPtr CloneExpr(const Expr& e);
NodePattern ClonePattern(const NodePattern& p);
RelPattern ClonePattern(const RelPattern& p);
PathPattern ClonePattern(const PathPattern& p);
Pattern ClonePattern(const Pattern& p);

}  // namespace ast
}  // namespace gqlite

#endif  // GQLITE_FRONTEND_AST_H_
