#include "src/frontend/lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace gqlite {

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      GQL_RETURN_IF_ERROR(SkipSpaceAndComments());
      Token t;
      t.line = line_;
      t.col = col_;
      if (AtEnd()) {
        t.kind = TokenKind::kEof;
        out.push_back(std::move(t));
        return out;
      }
      GQL_RETURN_IF_ERROR(Next(&t));
      out.push_back(std::move(t));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  Status Error(const std::string& msg) const {
    return Status::SyntaxError(msg + " at " + std::to_string(line_) + ":" +
                               std::to_string(col_));
  }

  Status SkipSpaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '/' && Peek(1) == '/') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else if (c == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) Advance();
        if (AtEnd()) return Error("unterminated block comment");
        Advance();
        Advance();
      } else {
        break;
      }
    }
    return Status::OK();
  }

  Status Next(Token* t) {
    char c = Peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return LexIdentifier(t);
    }
    if (c == '`') return LexQuotedIdentifier(t);
    if (std::isdigit(static_cast<unsigned char>(c))) return LexNumber(t);
    if (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      return LexNumber(t);
    }
    if (c == '\'' || c == '"') return LexString(t);
    if (c == '$') return LexParameter(t);
    return LexPunct(t);
  }

  Status LexIdentifier(Token* t) {
    size_t start = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      Advance();
    }
    t->kind = TokenKind::kIdentifier;
    t->text = std::string(src_.substr(start, pos_ - start));
    return Status::OK();
  }

  Status LexQuotedIdentifier(Token* t) {
    Advance();  // `
    std::string text;
    while (!AtEnd() && Peek() != '`') text += Advance();
    if (AtEnd()) return Error("unterminated quoted identifier");
    Advance();  // `
    if (text.empty()) return Error("empty quoted identifier");
    t->kind = TokenKind::kIdentifier;
    t->text = std::move(text);
    return Status::OK();
  }

  Status LexNumber(Token* t) {
    size_t start = pos_;
    bool is_float = false;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
    // A '.' is part of the number only if followed by a digit — `a.b` and
    // range `1..2` must not swallow the dot.
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_float = true;
      Advance();
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      size_t save = pos_;
      int save_line = line_, save_col = col_;
      Advance();
      if (Peek() == '+' || Peek() == '-') Advance();
      if (std::isdigit(static_cast<unsigned char>(Peek()))) {
        is_float = true;
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          Advance();
        }
      } else {
        pos_ = save;  // not an exponent (e.g. `1eX`); rewind
        line_ = save_line;
        col_ = save_col;
      }
    }
    std::string text(src_.substr(start, pos_ - start));
    if (is_float) {
      t->kind = TokenKind::kFloat;
      t->float_value = std::strtod(text.c_str(), nullptr);
    } else {
      t->kind = TokenKind::kInteger;
      errno = 0;
      unsigned long long u = std::strtoull(text.c_str(), nullptr, 10);
      constexpr unsigned long long kMinMagnitude = 9223372036854775808ULL;
      if (errno == ERANGE || u > kMinMagnitude) {
        return Error("integer literal out of range");
      }
      if (u == kMinMagnitude) {
        // |INT64_MIN| survives lexing so `-9223372036854775808` can parse;
        // the parser rejects it without a preceding unary minus.
        t->int_value = INT64_MIN;
        t->int_is_min_magnitude = true;
      } else {
        t->int_value = static_cast<int64_t>(u);
      }
    }
    t->text = std::move(text);
    return Status::OK();
  }

  Status LexString(Token* t) {
    char quote = Advance();
    std::string text;
    while (!AtEnd() && Peek() != quote) {
      char c = Advance();
      if (c == '\\') {
        if (AtEnd()) return Error("unterminated string literal");
        char e = Advance();
        switch (e) {
          case 'n':
            text += '\n';
            break;
          case 't':
            text += '\t';
            break;
          case 'r':
            text += '\r';
            break;
          case 'b':
            text += '\b';
            break;
          case 'f':
            text += '\f';
            break;
          case '\\':
          case '\'':
          case '"':
          case '`':
            text += e;
            break;
          default:
            return Error(std::string("unknown escape '\\") + e + "'");
        }
      } else {
        text += c;
      }
    }
    if (AtEnd()) return Error("unterminated string literal");
    Advance();  // closing quote
    t->kind = TokenKind::kString;
    t->text = std::move(text);
    return Status::OK();
  }

  Status LexParameter(Token* t) {
    Advance();  // $
    if (AtEnd() || !(std::isalpha(static_cast<unsigned char>(Peek())) ||
                     Peek() == '_' ||
                     std::isdigit(static_cast<unsigned char>(Peek())))) {
      return Error("expected parameter name after '$'");
    }
    size_t start = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      Advance();
    }
    t->kind = TokenKind::kParameter;
    t->text = std::string(src_.substr(start, pos_ - start));
    return Status::OK();
  }

  Status LexPunct(Token* t) {
    char c = Advance();
    switch (c) {
      case '(':
        t->kind = TokenKind::kLParen;
        return Status::OK();
      case ')':
        t->kind = TokenKind::kRParen;
        return Status::OK();
      case '[':
        t->kind = TokenKind::kLBracket;
        return Status::OK();
      case ']':
        t->kind = TokenKind::kRBracket;
        return Status::OK();
      case '{':
        t->kind = TokenKind::kLBrace;
        return Status::OK();
      case '}':
        t->kind = TokenKind::kRBrace;
        return Status::OK();
      case ',':
        t->kind = TokenKind::kComma;
        return Status::OK();
      case ':':
        t->kind = TokenKind::kColon;
        return Status::OK();
      case ';':
        t->kind = TokenKind::kSemicolon;
        return Status::OK();
      case '|':
        t->kind = TokenKind::kPipe;
        return Status::OK();
      case '.':
        if (Peek() == '.') {
          Advance();
          t->kind = TokenKind::kDotDot;
        } else {
          t->kind = TokenKind::kDot;
        }
        return Status::OK();
      case '+':
        if (Peek() == '=') {
          Advance();
          t->kind = TokenKind::kPlusEq;
        } else {
          t->kind = TokenKind::kPlus;
        }
        return Status::OK();
      case '-':
        t->kind = TokenKind::kMinus;
        return Status::OK();
      case '*':
        t->kind = TokenKind::kStar;
        return Status::OK();
      case '/':
        t->kind = TokenKind::kSlash;
        return Status::OK();
      case '%':
        t->kind = TokenKind::kPercent;
        return Status::OK();
      case '^':
        t->kind = TokenKind::kCaret;
        return Status::OK();
      case '=':
        if (Peek() == '~') {
          Advance();
          t->kind = TokenKind::kRegexMatch;
        } else {
          t->kind = TokenKind::kEq;
        }
        return Status::OK();
      case '<':
        if (Peek() == '>') {
          Advance();
          t->kind = TokenKind::kNeq;
        } else if (Peek() == '=') {
          Advance();
          t->kind = TokenKind::kLe;
        } else {
          t->kind = TokenKind::kLt;
        }
        return Status::OK();
      case '>':
        if (Peek() == '=') {
          Advance();
          t->kind = TokenKind::kGe;
        } else {
          t->kind = TokenKind::kGt;
        }
        return Status::OK();
      case '!':
        if (Peek() == '=') {
          Advance();
          t->kind = TokenKind::kNeq;  // tolerated alias for <>
          return Status::OK();
        }
        return Error("unexpected character '!'");
      default:
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view src) {
  return Lexer(src).Run();
}

}  // namespace gqlite
