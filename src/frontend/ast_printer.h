#ifndef GQLITE_FRONTEND_AST_PRINTER_H_
#define GQLITE_FRONTEND_AST_PRINTER_H_

#include <string>

#include "src/frontend/ast.h"

namespace gqlite {

/// Unparses AST nodes back to canonical Cypher text. Round-trip property:
/// Unparse(Parse(Unparse(Parse(q)))) == Unparse(Parse(q)). Used by tests,
/// EXPLAIN output and error messages.
std::string UnparseExpr(const ast::Expr& e);
std::string UnparsePattern(const ast::Pattern& p);
std::string UnparsePathPattern(const ast::PathPattern& p);
std::string UnparseClause(const ast::Clause& c);
std::string UnparseQuery(const ast::Query& q);

}  // namespace gqlite

#endif  // GQLITE_FRONTEND_AST_PRINTER_H_
