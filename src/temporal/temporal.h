#ifndef GQLITE_TEMPORAL_TEMPORAL_H_
#define GQLITE_TEMPORAL_TEMPORAL_H_

#include <cstdint>
#include <string>

namespace gqlite {

/// Temporal instant and duration types per the Cypher 10 temporal-types
/// proposal referenced in §6 of the paper (CIP2015-08-06): DateTime,
/// LocalDateTime, Date, Time, LocalTime and Duration.
///
/// Representation choices:
///  * Date            — days since 1970-01-01 (proleptic Gregorian).
///  * LocalTime       — nanoseconds since midnight.
///  * Time            — LocalTime plus a UTC offset in seconds.
///  * LocalDateTime   — Date + LocalTime (no zone).
///  * DateTime        — LocalDateTime plus a UTC offset in seconds.
///  * Duration        — (months, days, seconds, nanos), the four-component
///                      model: months and days don't have a fixed length,
///                      so they are tracked separately.

/// Civil-calendar helpers (Howard Hinnant's algorithms).
/// Days since 1970-01-01 for a proleptic Gregorian date.
int64_t DaysFromCivil(int64_t y, int64_t m, int64_t d);
/// Inverse of DaysFromCivil.
void CivilFromDays(int64_t days, int64_t* y, int64_t* m, int64_t* d);
/// Day of week, 0 = Monday ... 6 = Sunday (ISO).
int DayOfWeek(int64_t days_since_epoch);
/// True if `y` is a leap year (proleptic Gregorian).
bool IsLeapYear(int64_t y);
/// Number of days in month `m` (1..12) of year `y`.
int DaysInMonth(int64_t y, int64_t m);

inline constexpr int64_t kNanosPerSecond = 1000000000LL;
inline constexpr int64_t kSecondsPerDay = 86400LL;
inline constexpr int64_t kNanosPerDay = kNanosPerSecond * kSecondsPerDay;
/// Average Gregorian month in seconds (used only for Duration ordering).
inline constexpr int64_t kAvgSecondsPerMonth = 2629746LL;

struct Date {
  int64_t days_since_epoch = 0;

  static Date FromYmd(int64_t y, int64_t m, int64_t d) {
    return Date{DaysFromCivil(y, m, d)};
  }
  int64_t year() const;
  int64_t month() const;
  int64_t day() const;
  /// ISO "YYYY-MM-DD".
  std::string ToString() const;
  auto operator<=>(const Date&) const = default;
};

struct LocalTime {
  int64_t nanos_since_midnight = 0;

  static LocalTime FromHms(int64_t h, int64_t m, int64_t s, int64_t nanos = 0) {
    return LocalTime{((h * 60 + m) * 60 + s) * kNanosPerSecond + nanos};
  }
  int64_t hour() const { return nanos_since_midnight / (3600 * kNanosPerSecond); }
  int64_t minute() const {
    return (nanos_since_midnight / (60 * kNanosPerSecond)) % 60;
  }
  int64_t second() const { return (nanos_since_midnight / kNanosPerSecond) % 60; }
  int64_t nanosecond() const { return nanos_since_midnight % kNanosPerSecond; }
  /// ISO "hh:mm:ss[.fffffffff]".
  std::string ToString() const;
  auto operator<=>(const LocalTime&) const = default;
};

struct ZonedTime {
  LocalTime local;
  int32_t offset_seconds = 0;

  /// Instant-on-an-abstract-day used for comparisons: local minus offset.
  int64_t NormalizedNanos() const {
    return local.nanos_since_midnight -
           static_cast<int64_t>(offset_seconds) * kNanosPerSecond;
  }
  /// ISO "hh:mm:ss[.f]±hh:mm" (or trailing "Z" for zero offset).
  std::string ToString() const;
  friend bool operator==(const ZonedTime& a, const ZonedTime& b) {
    return a.local == b.local && a.offset_seconds == b.offset_seconds;
  }
};

struct LocalDateTime {
  Date date;
  LocalTime time;

  int64_t EpochSeconds() const {
    return date.days_since_epoch * kSecondsPerDay +
           time.nanos_since_midnight / kNanosPerSecond;
  }
  /// ISO "YYYY-MM-DDThh:mm:ss[.f]".
  std::string ToString() const;
  auto operator<=>(const LocalDateTime&) const = default;
};

struct ZonedDateTime {
  LocalDateTime local;
  int32_t offset_seconds = 0;

  /// Absolute instant in nanoseconds since the epoch.
  int64_t InstantNanos() const {
    return (local.EpochSeconds() - offset_seconds) * kNanosPerSecond +
           local.time.nanosecond();
  }
  /// ISO "YYYY-MM-DDThh:mm:ss[.f]±hh:mm" (or "Z").
  std::string ToString() const;
  friend bool operator==(const ZonedDateTime& a, const ZonedDateTime& b) {
    return a.local == b.local && a.offset_seconds == b.offset_seconds;
  }
};

struct Duration {
  int64_t months = 0;
  int64_t days = 0;
  int64_t seconds = 0;
  int64_t nanos = 0;  // |nanos| < 1e9, same sign handling as Neo4j (carried)

  /// Normalizes nanos into seconds so |nanos| < 1e9 and seconds/nanos have
  /// consistent carry.
  static Duration Make(int64_t months, int64_t days, int64_t seconds,
                       int64_t nanos);

  /// Approximate total length used only for global ordering of durations
  /// (months use the average Gregorian month).
  int64_t ComparableNanos() const {
    return (months * kAvgSecondsPerMonth + days * kSecondsPerDay + seconds) *
               kNanosPerSecond +
           nanos;
  }

  Duration operator+(const Duration& o) const {
    return Make(months + o.months, days + o.days, seconds + o.seconds,
                nanos + o.nanos);
  }
  Duration operator-(const Duration& o) const {
    return Make(months - o.months, days - o.days, seconds - o.seconds,
                nanos - o.nanos);
  }
  Duration Negated() const { return Make(-months, -days, -seconds, -nanos); }
  /// Scales all components by `k` (integer factor).
  Duration ScaledBy(int64_t k) const {
    return Make(months * k, days * k, seconds * k, nanos * k);
  }

  /// ISO-8601 "PnYnMnDTnHnMnS" (canonical: P0D for zero).
  std::string ToString() const;
  friend bool operator==(const Duration& a, const Duration& b) {
    return a.months == b.months && a.days == b.days && a.seconds == b.seconds &&
           a.nanos == b.nanos;
  }
};

/// Calendar-aware addition: months first (clamping day-of-month), then days,
/// then the time part.
Date AddDuration(Date d, const Duration& dur);
LocalDateTime AddDuration(LocalDateTime dt, const Duration& dur);
ZonedDateTime AddDuration(ZonedDateTime dt, const Duration& dur);
LocalTime AddDuration(LocalTime t, const Duration& dur);

/// duration.between semantics: exact difference expressed in
/// days/seconds/nanos (no month component) for instants; for Dates, days.
Duration DurationBetween(const Date& a, const Date& b);
Duration DurationBetween(const LocalDateTime& a, const LocalDateTime& b);
Duration DurationBetween(const ZonedDateTime& a, const ZonedDateTime& b);

}  // namespace gqlite

#endif  // GQLITE_TEMPORAL_TEMPORAL_H_
