#include "src/temporal/temporal_parse.h"

#include <cctype>
#include <cstdlib>
#include <string>

namespace gqlite {

namespace {

bool TakeInt(std::string_view& s, int width, int64_t* out) {
  if (static_cast<int>(s.size()) < width) return false;
  int64_t v = 0;
  for (int i = 0; i < width; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
    v = v * 10 + (s[i] - '0');
  }
  s.remove_prefix(width);
  *out = v;
  return true;
}

bool TakeChar(std::string_view& s, char c) {
  if (s.empty() || s.front() != c) return false;
  s.remove_prefix(1);
  return true;
}

/// Parses the fraction digits after a '.', returning nanoseconds.
bool TakeFractionNanos(std::string_view& s, int64_t* nanos) {
  *nanos = 0;
  if (!TakeChar(s, '.')) return true;  // no fraction
  int digits = 0;
  int64_t v = 0;
  while (!s.empty() && std::isdigit(static_cast<unsigned char>(s.front())) &&
         digits < 9) {
    v = v * 10 + (s.front() - '0');
    s.remove_prefix(1);
    ++digits;
  }
  if (digits == 0) return false;
  while (digits < 9) {
    v *= 10;
    ++digits;
  }
  // Ignore extra sub-nanosecond digits.
  while (!s.empty() && std::isdigit(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  *nanos = v;
  return true;
}

bool TakeOffset(std::string_view& s, int32_t* offset_seconds) {
  *offset_seconds = 0;
  if (s.empty()) return true;
  if (TakeChar(s, 'Z') || TakeChar(s, 'z')) return true;
  int sign = 0;
  if (s.front() == '+') sign = 1;
  else if (s.front() == '-') sign = -1;
  else return false;
  s.remove_prefix(1);
  int64_t hh = 0, mm = 0;
  if (!TakeInt(s, 2, &hh)) return false;
  if (!s.empty()) {
    TakeChar(s, ':');
    if (!s.empty() && std::isdigit(static_cast<unsigned char>(s.front()))) {
      if (!TakeInt(s, 2, &mm)) return false;
    }
  }
  *offset_seconds = static_cast<int32_t>(sign * (hh * 3600 + mm * 60));
  return true;
}

Status BadFormat(std::string_view what, std::string_view s) {
  return Status::InvalidArgument("cannot parse " + std::string(what) +
                                 " from '" + std::string(s) + "'");
}

Result<LocalTime> ParseLocalTimePrefix(std::string_view& s,
                                       std::string_view orig) {
  int64_t h = 0, m = 0, sec = 0, nanos = 0;
  if (!TakeInt(s, 2, &h) || h > 23) return BadFormat("time", orig);
  if (TakeChar(s, ':')) {
    if (!TakeInt(s, 2, &m) || m > 59) return BadFormat("time", orig);
    if (TakeChar(s, ':')) {
      if (!TakeInt(s, 2, &sec) || sec > 59) return BadFormat("time", orig);
      if (!TakeFractionNanos(s, &nanos)) return BadFormat("time", orig);
    }
  }
  return LocalTime::FromHms(h, m, sec, nanos);
}

Result<Date> ParseDatePrefix(std::string_view& s, std::string_view orig) {
  bool neg = TakeChar(s, '-');
  int64_t y = 0, m = 0, d = 0;
  if (!TakeInt(s, 4, &y)) return BadFormat("date", orig);
  if (neg) y = -y;
  if (!TakeChar(s, '-')) return BadFormat("date", orig);
  if (!TakeInt(s, 2, &m) || m < 1 || m > 12) return BadFormat("date", orig);
  if (!TakeChar(s, '-')) return BadFormat("date", orig);
  if (!TakeInt(s, 2, &d) || d < 1 || d > DaysInMonth(y, m)) {
    return BadFormat("date", orig);
  }
  return Date::FromYmd(y, m, d);
}

}  // namespace

Result<Date> ParseDate(std::string_view s) {
  std::string_view orig = s;
  GQL_ASSIGN_OR_RETURN(Date d, ParseDatePrefix(s, orig));
  if (!s.empty()) return BadFormat("date", orig);
  return d;
}

Result<LocalTime> ParseLocalTime(std::string_view s) {
  std::string_view orig = s;
  GQL_ASSIGN_OR_RETURN(LocalTime t, ParseLocalTimePrefix(s, orig));
  if (!s.empty()) return BadFormat("time", orig);
  return t;
}

Result<ZonedTime> ParseZonedTime(std::string_view s) {
  std::string_view orig = s;
  GQL_ASSIGN_OR_RETURN(LocalTime t, ParseLocalTimePrefix(s, orig));
  int32_t off = 0;
  if (!TakeOffset(s, &off) || !s.empty()) return BadFormat("time", orig);
  return ZonedTime{t, off};
}

Result<LocalDateTime> ParseLocalDateTime(std::string_view s) {
  std::string_view orig = s;
  GQL_ASSIGN_OR_RETURN(Date d, ParseDatePrefix(s, orig));
  if (!TakeChar(s, 'T') && !TakeChar(s, 't')) {
    return BadFormat("datetime", orig);
  }
  GQL_ASSIGN_OR_RETURN(LocalTime t, ParseLocalTimePrefix(s, orig));
  if (!s.empty()) return BadFormat("datetime", orig);
  return LocalDateTime{d, t};
}

Result<ZonedDateTime> ParseZonedDateTime(std::string_view s) {
  std::string_view orig = s;
  GQL_ASSIGN_OR_RETURN(Date d, ParseDatePrefix(s, orig));
  if (!TakeChar(s, 'T') && !TakeChar(s, 't')) {
    return BadFormat("datetime", orig);
  }
  GQL_ASSIGN_OR_RETURN(LocalTime t, ParseLocalTimePrefix(s, orig));
  int32_t off = 0;
  if (!TakeOffset(s, &off) || !s.empty()) return BadFormat("datetime", orig);
  return ZonedDateTime{LocalDateTime{d, t}, off};
}

Result<Duration> ParseDuration(std::string_view s) {
  std::string_view orig = s;
  bool neg = TakeChar(s, '-');
  if (!TakeChar(s, 'P')) return BadFormat("duration", orig);
  int64_t months = 0, days = 0, seconds = 0, nanos = 0;
  bool in_time = false;
  bool any = false;
  while (!s.empty()) {
    if (s.front() == 'T' || s.front() == 't') {
      in_time = true;
      s.remove_prefix(1);
      continue;
    }
    bool comp_neg = TakeChar(s, '-');
    int64_t v = 0;
    int digits = 0;
    while (!s.empty() && std::isdigit(static_cast<unsigned char>(s.front()))) {
      v = v * 10 + (s.front() - '0');
      s.remove_prefix(1);
      ++digits;
    }
    if (digits == 0) return BadFormat("duration", orig);
    int64_t frac_nanos = 0;
    if (!s.empty() && s.front() == '.') {
      if (!TakeFractionNanos(s, &frac_nanos)) return BadFormat("duration", orig);
    }
    if (s.empty()) return BadFormat("duration", orig);
    if (comp_neg) {
      v = -v;
      frac_nanos = -frac_nanos;
    }
    char unit = s.front();
    s.remove_prefix(1);
    any = true;
    switch (unit) {
      case 'Y':
      case 'y':
        months += v * 12;
        break;
      case 'M':
      case 'm':
        if (in_time) seconds += v * 60;
        else months += v;
        break;
      case 'W':
      case 'w':
        days += v * 7;
        break;
      case 'D':
      case 'd':
        days += v;
        break;
      case 'H':
      case 'h':
        if (!in_time) return BadFormat("duration", orig);
        seconds += v * 3600;
        break;
      case 'S':
      case 's':
        if (!in_time) return BadFormat("duration", orig);
        seconds += v;
        nanos += frac_nanos;
        break;
      default:
        return BadFormat("duration", orig);
    }
  }
  if (!any) return BadFormat("duration", orig);
  Duration d = Duration::Make(months, days, seconds, nanos);
  return neg ? d.Negated() : d;
}

}  // namespace gqlite
