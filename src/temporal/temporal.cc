#include "src/temporal/temporal.h"

#include <cstdio>
#include <cstdlib>

namespace gqlite {

int64_t DaysFromCivil(int64_t y, int64_t m, int64_t d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;                                  // [0,399]
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0,365]
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;        // [0,146096]
  return era * 146097 + doe - 719468;
}

void CivilFromDays(int64_t z, int64_t* y, int64_t* m, int64_t* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;  // [0, 146096]
  const int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const int64_t mp = (5 * doy + 2) / 153;                       // [0, 11]
  *d = doy - (153 * mp + 2) / 5 + 1;                            // [1, 31]
  *m = mp + (mp < 10 ? 3 : -9);                                 // [1, 12]
  *y = yy + (*m <= 2);
}

int DayOfWeek(int64_t days_since_epoch) {
  // 1970-01-01 was a Thursday (ISO weekday 3, counting Monday=0).
  int64_t wd = (days_since_epoch + 3) % 7;
  if (wd < 0) wd += 7;
  return static_cast<int>(wd);
}

bool IsLeapYear(int64_t y) {
  return (y % 4 == 0 && y % 100 != 0) || (y % 400 == 0);
}

int DaysInMonth(int64_t y, int64_t m) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeapYear(y)) return 29;
  return kDays[m - 1];
}

int64_t Date::year() const {
  int64_t y, m, d;
  CivilFromDays(days_since_epoch, &y, &m, &d);
  return y;
}
int64_t Date::month() const {
  int64_t y, m, d;
  CivilFromDays(days_since_epoch, &y, &m, &d);
  return m;
}
int64_t Date::day() const {
  int64_t y, m, d;
  CivilFromDays(days_since_epoch, &y, &m, &d);
  return d;
}

std::string Date::ToString() const {
  int64_t y, m, d;
  CivilFromDays(days_since_epoch, &y, &m, &d);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04lld-%02lld-%02lld",
                static_cast<long long>(y), static_cast<long long>(m),
                static_cast<long long>(d));
  return buf;
}

namespace {

std::string FormatTimeNanos(int64_t nanos_since_midnight) {
  int64_t h = nanos_since_midnight / (3600 * kNanosPerSecond);
  int64_t min = (nanos_since_midnight / (60 * kNanosPerSecond)) % 60;
  int64_t s = (nanos_since_midnight / kNanosPerSecond) % 60;
  int64_t ns = nanos_since_midnight % kNanosPerSecond;
  char buf[48];
  if (ns == 0) {
    std::snprintf(buf, sizeof(buf), "%02lld:%02lld:%02lld",
                  static_cast<long long>(h), static_cast<long long>(min),
                  static_cast<long long>(s));
    return buf;
  }
  std::snprintf(buf, sizeof(buf), "%02lld:%02lld:%02lld.%09lld",
                static_cast<long long>(h), static_cast<long long>(min),
                static_cast<long long>(s), static_cast<long long>(ns));
  // Trim trailing zeros of the fraction.
  std::string out = buf;
  while (out.back() == '0') out.pop_back();
  return out;
}

std::string FormatOffset(int32_t offset_seconds) {
  if (offset_seconds == 0) return "Z";
  char sign = offset_seconds < 0 ? '-' : '+';
  int32_t abs = offset_seconds < 0 ? -offset_seconds : offset_seconds;
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%c%02d:%02d", sign, abs / 3600,
                (abs % 3600) / 60);
  return buf;
}

}  // namespace

std::string LocalTime::ToString() const {
  return FormatTimeNanos(nanos_since_midnight);
}

std::string ZonedTime::ToString() const {
  return local.ToString() + FormatOffset(offset_seconds);
}

std::string LocalDateTime::ToString() const {
  return date.ToString() + "T" + time.ToString();
}

std::string ZonedDateTime::ToString() const {
  return local.ToString() + FormatOffset(offset_seconds);
}

Duration Duration::Make(int64_t months, int64_t days, int64_t seconds,
                        int64_t nanos) {
  // Carry nanos into seconds keeping |nanos| < 1e9 and sign-consistent with
  // seconds where possible.
  seconds += nanos / kNanosPerSecond;
  nanos %= kNanosPerSecond;
  if (seconds > 0 && nanos < 0) {
    seconds -= 1;
    nanos += kNanosPerSecond;
  } else if (seconds < 0 && nanos > 0) {
    seconds += 1;
    nanos -= kNanosPerSecond;
  }
  return Duration{months, days, seconds, nanos};
}

std::string Duration::ToString() const {
  if (months == 0 && days == 0 && seconds == 0 && nanos == 0) return "P0D";
  std::string out = "P";
  int64_t y = months / 12;
  int64_t mo = months % 12;
  if (y != 0) out += std::to_string(y) + "Y";
  if (mo != 0) out += std::to_string(mo) + "M";
  if (days != 0) out += std::to_string(days) + "D";
  if (seconds != 0 || nanos != 0) {
    out += "T";
    int64_t s = seconds;
    int64_t h = s / 3600;
    s %= 3600;
    int64_t mi = s / 60;
    s %= 60;
    if (h != 0) out += std::to_string(h) + "H";
    if (mi != 0) out += std::to_string(mi) + "M";
    if (s != 0 || nanos != 0) {
      if (nanos == 0) {
        out += std::to_string(s) + "S";
      } else {
        // Combine seconds and the fraction; handle negative fraction with
        // positive seconds display via Make's normalization invariants.
        double frac = static_cast<double>(s) +
                      static_cast<double>(nanos) / kNanosPerSecond;
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.9f", frac);
        std::string fs = buf;
        while (fs.back() == '0') fs.pop_back();
        if (fs.back() == '.') fs.pop_back();
        out += fs + "S";
      }
    }
  }
  return out;
}

namespace {

Date AddMonthsThenDays(Date d, int64_t add_months, int64_t add_days) {
  int64_t y, m, day;
  CivilFromDays(d.days_since_epoch, &y, &m, &day);
  int64_t total_months = (y * 12 + (m - 1)) + add_months;
  int64_t ny = total_months >= 0 ? total_months / 12
                                 : (total_months - 11) / 12;
  int64_t nm = total_months - ny * 12 + 1;  // [1,12]
  int64_t dim = DaysInMonth(ny, nm);
  if (day > dim) day = dim;  // clamp like Neo4j / java.time
  return Date{DaysFromCivil(ny, nm, day) + add_days};
}

}  // namespace

Date AddDuration(Date d, const Duration& dur) {
  // The time components of the duration are truncated for pure dates
  // (whole days only), matching the CIP.
  int64_t extra_days = dur.seconds / kSecondsPerDay;
  return AddMonthsThenDays(d, dur.months, dur.days + extra_days);
}

LocalDateTime AddDuration(LocalDateTime dt, const Duration& dur) {
  Date nd = AddMonthsThenDays(dt.date, dur.months, dur.days);
  int64_t nanos = dt.time.nanos_since_midnight +
                  dur.seconds * kNanosPerSecond + dur.nanos;
  int64_t day_carry = nanos >= 0 ? nanos / kNanosPerDay
                                 : (nanos - (kNanosPerDay - 1)) / kNanosPerDay;
  nanos -= day_carry * kNanosPerDay;
  return LocalDateTime{Date{nd.days_since_epoch + day_carry},
                       LocalTime{nanos}};
}

ZonedDateTime AddDuration(ZonedDateTime dt, const Duration& dur) {
  return ZonedDateTime{AddDuration(dt.local, dur), dt.offset_seconds};
}

LocalTime AddDuration(LocalTime t, const Duration& dur) {
  int64_t nanos = t.nanos_since_midnight + dur.seconds * kNanosPerSecond +
                  dur.nanos;
  nanos %= kNanosPerDay;
  if (nanos < 0) nanos += kNanosPerDay;
  return LocalTime{nanos};
}

Duration DurationBetween(const Date& a, const Date& b) {
  return Duration::Make(0, b.days_since_epoch - a.days_since_epoch, 0, 0);
}

Duration DurationBetween(const LocalDateTime& a, const LocalDateTime& b) {
  int64_t sec = b.EpochSeconds() - a.EpochSeconds();
  int64_t nanos = b.time.nanosecond() - a.time.nanosecond();
  int64_t days = sec / kSecondsPerDay;
  sec -= days * kSecondsPerDay;
  return Duration::Make(0, days, sec, nanos);
}

Duration DurationBetween(const ZonedDateTime& a, const ZonedDateTime& b) {
  int64_t nanos = b.InstantNanos() - a.InstantNanos();
  int64_t days = nanos / kNanosPerDay;
  nanos -= days * kNanosPerDay;
  return Duration::Make(0, days, nanos / kNanosPerSecond,
                        nanos % kNanosPerSecond);
}

}  // namespace gqlite
