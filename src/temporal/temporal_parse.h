#ifndef GQLITE_TEMPORAL_TEMPORAL_PARSE_H_
#define GQLITE_TEMPORAL_TEMPORAL_PARSE_H_

#include <string_view>

#include "src/common/result.h"
#include "src/temporal/temporal.h"

namespace gqlite {

/// ISO-8601 parsers backing the Cypher temporal constructor functions
/// date(), localtime(), time(), localdatetime(), datetime(), duration().
/// All parsers accept the extended ISO format only (dashes and colons),
/// which is what the CIP examples use.

/// "YYYY-MM-DD".
Result<Date> ParseDate(std::string_view s);

/// "hh[:mm[:ss[.fffffffff]]]".
Result<LocalTime> ParseLocalTime(std::string_view s);

/// Local time followed by offset "Z" | "±hh[:mm]". A missing offset parses
/// as UTC.
Result<ZonedTime> ParseZonedTime(std::string_view s);

/// "YYYY-MM-DDThh:mm[:ss[.f]]".
Result<LocalDateTime> ParseLocalDateTime(std::string_view s);

/// Local date-time followed by optional offset (default UTC).
Result<ZonedDateTime> ParseZonedDateTime(std::string_view s);

/// "PnYnMnWnDTnHnMnS" with any subset of components; fractional seconds
/// allowed in the seconds position. A leading '-' negates everything.
Result<Duration> ParseDuration(std::string_view s);

}  // namespace gqlite

#endif  // GQLITE_TEMPORAL_TEMPORAL_PARSE_H_
