#ifndef GQLITE_WORKLOAD_GENERATORS_H_
#define GQLITE_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>

#include "src/graph/graph_catalog.h"

namespace gqlite {
namespace workload {

/// Deterministic synthetic graph generators (all seeded) standing in for
/// the production datasets the paper's §3 industry examples run on; see
/// the substitution table in DESIGN.md.

/// A directed chain n0 -[:NEXT]-> n1 -> ... of `n` nodes labeled `label`,
/// each with property idx = i. Used by variable-length path sweeps (E16).
GraphPtr MakeChain(size_t n, const std::string& label = "Node",
                   const std::string& type = "NEXT");

/// A directed cycle of `n` nodes (chain plus a closing edge).
GraphPtr MakeCycle(size_t n, const std::string& label = "Node",
                   const std::string& type = "NEXT");

/// rows × cols grid, edges RIGHT and DOWN. Node property: row, col.
GraphPtr MakeGrid(size_t rows, size_t cols);

/// Complete directed graph on n nodes (both directions, no self loops),
/// type KNOWS. Worst case for homomorphic var-length matching (E13).
GraphPtr MakeClique(size_t n);

/// Citation-style graph generalizing Figure 1: researchers author
/// publications; publications cite earlier publications (a DAG);
/// researchers supervise students. Types AUTHORS / CITES / SUPERVISES,
/// labels Researcher / Publication / Student. Properties: name, acmid.
struct CitationConfig {
  size_t num_researchers = 100;
  size_t pubs_per_researcher = 3;
  size_t students_per_researcher = 2;
  double avg_cites_per_pub = 2.0;
  uint64_t seed = 42;
};
GraphPtr MakeCitationGraph(const CitationConfig& cfg);

/// Layered data-center dependency network for the §3 network-management
/// query: `layers` tiers of `per_layer` Service nodes; every service
/// depends on `fanout` services of the next tier down (DEPENDS_ON points
/// from dependent to dependency). Node 0 of the bottom tier is the "core
/// switch" everything transitively depends on.
struct DependencyConfig {
  size_t layers = 4;
  size_t per_layer = 50;
  size_t fanout = 2;
  uint64_t seed = 7;
};
GraphPtr MakeDependencyNetwork(const DependencyConfig& cfg);

/// Fraud-ring graph for the §3 fraud-detection query: AccountHolder nodes
/// HAS-linked to personal-information nodes labeled SSN / PhoneNumber /
/// Address. `num_rings` rings of `ring_size` holders share a single SSN
/// (and some shared phones/addresses); the remaining holders have private
/// information. AccountHolder property: uniqueId.
struct FraudConfig {
  size_t num_holders = 1000;
  size_t num_rings = 10;
  size_t ring_size = 3;
  uint64_t seed = 99;
};
GraphPtr MakeFraudGraph(const FraudConfig& cfg);

/// Social network for E14/E18: Person nodes with FRIEND relationships
/// carrying a `since` year property, and City nodes with IN edges
/// (person lives in city). Degree distribution is uniform around
/// avg_friends.
struct SocialConfig {
  size_t num_people = 1000;
  double avg_friends = 8.0;
  size_t num_cities = 20;
  uint64_t seed = 1234;
};
GraphPtr MakeSocialNetwork(const SocialConfig& cfg);

/// Erdős–Rényi style random directed graph: n nodes, m edges of type T,
/// labels drawn from {A, B, C}. Used by the interpreter/runtime parity
/// property tests.
GraphPtr MakeRandomGraph(size_t n, size_t m, uint64_t seed);

}  // namespace workload
}  // namespace gqlite

#endif  // GQLITE_WORKLOAD_GENERATORS_H_
