#ifndef GQLITE_WORKLOAD_PAPER_GRAPHS_H_
#define GQLITE_WORKLOAD_PAPER_GRAPHS_H_

#include "src/graph/graph_catalog.h"

namespace gqlite {
namespace workload {

/// The paper's Figure 1 data graph (researchers, students, publications,
/// supervision and citation data), with the exact node/relationship
/// numbering of the paper: `n[1]`..`n[10]` and `r[1]`..`r[11]` (index 0
/// unused). Labels follow Figure 1 / the §3 walkthrough (Example 4.1 in
/// the paper contains a label-swap erratum; see DESIGN.md). Relationship
/// types are uppercase (AUTHORS, SUPERVISES, CITES) as used by the paper's
/// queries.
struct PaperFigure1 {
  GraphPtr graph;
  NodeId n[11];
  RelId r[12];
};
PaperFigure1 MakePaperFigure1Graph();

/// The paper's Figure 4 graph (teachers/students, KNOWS chain):
/// n1:Teacher -r1-> n2:Student -r2-> n3:Teacher -r3-> n4:Teacher.
struct PaperFigure4 {
  GraphPtr graph;
  NodeId n[5];
  RelId r[4];
};
PaperFigure4 MakePaperFigure4Graph();

/// The §4.2 complexity example: a single node with a single self-loop
/// relationship. Under Cypher's relationship-isomorphism semantics the
/// pattern (x)-[*0..]->(x) has exactly two matches here.
struct SelfLoop {
  GraphPtr graph;
  NodeId node;
  RelId rel;
};
SelfLoop MakeSelfLoopGraph();

}  // namespace workload
}  // namespace gqlite

#endif  // GQLITE_WORKLOAD_PAPER_GRAPHS_H_
