#include "src/workload/generators.h"

#include <random>

namespace gqlite {
namespace workload {

namespace {

PropertyList IdxProp(size_t i) {
  return {{"idx", Value::Int(static_cast<int64_t>(i))}};
}

}  // namespace

GraphPtr MakeChain(size_t n, const std::string& label,
                   const std::string& type) {
  auto g = std::make_shared<PropertyGraph>();
  std::vector<NodeId> ids;
  ids.reserve(n);
  for (size_t i = 0; i < n; ++i) ids.push_back(g->CreateNode({label}, IdxProp(i)));
  for (size_t i = 0; i + 1 < n; ++i) {
    g->CreateRelationship(ids[i], ids[i + 1], type).value();
  }
  return g;
}

GraphPtr MakeCycle(size_t n, const std::string& label,
                   const std::string& type) {
  auto g = std::make_shared<PropertyGraph>();
  std::vector<NodeId> ids;
  ids.reserve(n);
  for (size_t i = 0; i < n; ++i) ids.push_back(g->CreateNode({label}, IdxProp(i)));
  for (size_t i = 0; i < n; ++i) {
    g->CreateRelationship(ids[i], ids[(i + 1) % n], type).value();
  }
  return g;
}

GraphPtr MakeGrid(size_t rows, size_t cols) {
  auto g = std::make_shared<PropertyGraph>();
  std::vector<NodeId> ids(rows * cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      ids[r * cols + c] = g->CreateNode(
          {"Cell"}, {{"row", Value::Int(static_cast<int64_t>(r))},
                     {"col", Value::Int(static_cast<int64_t>(c))}});
    }
  }
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        g->CreateRelationship(ids[r * cols + c], ids[r * cols + c + 1], "RIGHT")
            .value();
      }
      if (r + 1 < rows) {
        g->CreateRelationship(ids[r * cols + c], ids[(r + 1) * cols + c], "DOWN")
            .value();
      }
    }
  }
  return g;
}

GraphPtr MakeClique(size_t n) {
  auto g = std::make_shared<PropertyGraph>();
  std::vector<NodeId> ids;
  ids.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ids.push_back(g->CreateNode({"Person"}, IdxProp(i)));
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j) g->CreateRelationship(ids[i], ids[j], "KNOWS").value();
    }
  }
  return g;
}

GraphPtr MakeCitationGraph(const CitationConfig& cfg) {
  auto g = std::make_shared<PropertyGraph>();
  std::mt19937_64 rng(cfg.seed);
  std::vector<NodeId> pubs;
  int64_t acmid = 100;
  size_t student_no = 0;
  for (size_t i = 0; i < cfg.num_researchers; ++i) {
    NodeId r = g->CreateNode(
        {"Researcher"}, {{"name", Value::String("R" + std::to_string(i))}});
    for (size_t s = 0; s < cfg.students_per_researcher; ++s) {
      // Every other researcher supervises; mirrors Figure 1 where one
      // researcher has no students.
      if (i % 2 == 0) {
        NodeId st = g->CreateNode(
            {"Student"},
            {{"name", Value::String("S" + std::to_string(student_no++))}});
        g->CreateRelationship(r, st, "SUPERVISES").value();
      }
    }
    for (size_t p = 0; p < cfg.pubs_per_researcher; ++p) {
      NodeId pub =
          g->CreateNode({"Publication"}, {{"acmid", Value::Int(acmid++)}});
      g->CreateRelationship(r, pub, "AUTHORS").value();
      // Cite earlier publications only: a DAG, like real citations.
      if (!pubs.empty()) {
        std::poisson_distribution<int> ncites(cfg.avg_cites_per_pub);
        int k = ncites(rng);
        std::uniform_int_distribution<size_t> pick(0, pubs.size() - 1);
        for (int c = 0; c < k; ++c) {
          g->CreateRelationship(pub, pubs[pick(rng)], "CITES").value();
        }
      }
      pubs.push_back(pub);
    }
  }
  return g;
}

GraphPtr MakeDependencyNetwork(const DependencyConfig& cfg) {
  auto g = std::make_shared<PropertyGraph>();
  std::mt19937_64 rng(cfg.seed);
  std::vector<std::vector<NodeId>> tiers(cfg.layers);
  for (size_t l = 0; l < cfg.layers; ++l) {
    for (size_t i = 0; i < cfg.per_layer; ++i) {
      tiers[l].push_back(g->CreateNode(
          {"Service"},
          {{"name", Value::String("svc-" + std::to_string(l) + "-" +
                                  std::to_string(i))},
           {"tier", Value::Int(static_cast<int64_t>(l))}}));
    }
  }
  // Tier l services depend on tier l-1 services; everything in tier l-1
  // index 0 position funnels to node 0 so one component dominates.
  for (size_t l = 1; l < cfg.layers; ++l) {
    for (size_t i = 0; i < cfg.per_layer; ++i) {
      std::uniform_int_distribution<size_t> pick(0, cfg.per_layer - 1);
      // Always depend on the tier's "core" service plus random others.
      g->CreateRelationship(tiers[l][i], tiers[l - 1][0], "DEPENDS_ON").value();
      for (size_t f = 1; f < cfg.fanout; ++f) {
        g->CreateRelationship(tiers[l][i], tiers[l - 1][pick(rng)],
                              "DEPENDS_ON")
            .value();
      }
    }
  }
  return g;
}

GraphPtr MakeFraudGraph(const FraudConfig& cfg) {
  auto g = std::make_shared<PropertyGraph>();
  std::mt19937_64 rng(cfg.seed);
  size_t holder_no = 0;
  auto make_holder = [&] {
    return g->CreateNode(
        {"AccountHolder"},
        {{"uniqueId", Value::String("H" + std::to_string(holder_no++))}});
  };
  auto pii = [&](const char* label, const char* prefix, size_t i) {
    return g->CreateNode({label},
                         {{"value", Value::String(std::string(prefix) +
                                                  std::to_string(i))}});
  };
  // Fraud rings: ring_size holders share one SSN; half the rings also
  // share a phone number.
  for (size_t ring = 0; ring < cfg.num_rings; ++ring) {
    NodeId ssn = pii("SSN", "ssn-ring-", ring);
    NodeId phone = pii("PhoneNumber", "phone-ring-", ring);
    for (size_t m = 0; m < cfg.ring_size; ++m) {
      NodeId h = make_holder();
      g->CreateRelationship(h, ssn, "HAS").value();
      if (ring % 2 == 0) g->CreateRelationship(h, phone, "HAS").value();
      // Plus a private address each.
      NodeId addr = pii("Address", "addr-", holder_no);
      g->CreateRelationship(h, addr, "HAS").value();
    }
  }
  // Honest holders with private PII.
  while (holder_no < cfg.num_holders) {
    NodeId h = make_holder();
    size_t i = holder_no;
    g->CreateRelationship(h, pii("SSN", "ssn-", i), "HAS").value();
    g->CreateRelationship(h, pii("PhoneNumber", "phone-", i), "HAS").value();
    g->CreateRelationship(h, pii("Address", "addr-", i), "HAS").value();
  }
  return g;
}

GraphPtr MakeSocialNetwork(const SocialConfig& cfg) {
  auto g = std::make_shared<PropertyGraph>();
  std::mt19937_64 rng(cfg.seed);
  std::vector<NodeId> people;
  people.reserve(cfg.num_people);
  for (size_t i = 0; i < cfg.num_people; ++i) {
    people.push_back(g->CreateNode(
        {"Person"}, {{"name", Value::String("P" + std::to_string(i))}}));
  }
  std::vector<NodeId> cities;
  for (size_t c = 0; c < cfg.num_cities; ++c) {
    cities.push_back(g->CreateNode(
        {"City"}, {{"name", Value::String("City" + std::to_string(c))}}));
  }
  std::uniform_int_distribution<size_t> pick_person(0, cfg.num_people - 1);
  std::uniform_int_distribution<size_t> pick_city(0, cfg.num_cities - 1);
  std::uniform_int_distribution<int64_t> pick_year(1990, 2017);
  size_t num_friend_edges =
      static_cast<size_t>(cfg.avg_friends * cfg.num_people / 2.0);
  for (size_t e = 0; e < num_friend_edges; ++e) {
    size_t a = pick_person(rng);
    size_t b = pick_person(rng);
    if (a == b) continue;
    g->CreateRelationship(people[a], people[b], "FRIEND",
                          {{"since", Value::Int(pick_year(rng))}})
        .value();
  }
  for (size_t i = 0; i < cfg.num_people; ++i) {
    g->CreateRelationship(people[i], cities[pick_city(rng)], "IN").value();
  }
  return g;
}

GraphPtr MakeRandomGraph(size_t n, size_t m, uint64_t seed) {
  auto g = std::make_shared<PropertyGraph>();
  std::mt19937_64 rng(seed);
  static const char* kLabels[] = {"A", "B", "C"};
  static const char* kTypes[] = {"T", "U"};
  std::vector<NodeId> ids;
  ids.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::string> labels;
    labels.push_back(kLabels[rng() % 3]);
    if (rng() % 4 == 0) labels.push_back(kLabels[rng() % 3]);
    ids.push_back(g->CreateNode(
        labels, {{"v", Value::Int(static_cast<int64_t>(rng() % 10))}}));
  }
  if (n == 0) return g;
  for (size_t e = 0; e < m; ++e) {
    NodeId a = ids[rng() % n];
    NodeId b = ids[rng() % n];
    g->CreateRelationship(a, b, kTypes[rng() % 2],
                          {{"w", Value::Int(static_cast<int64_t>(rng() % 5))}})
        .value();
  }
  return g;
}

}  // namespace workload
}  // namespace gqlite
