#include "src/workload/paper_graphs.h"

namespace gqlite {
namespace workload {

PaperFigure1 MakePaperFigure1Graph() {
  PaperFigure1 out;
  out.graph = std::make_shared<PropertyGraph>();
  PropertyGraph& g = *out.graph;

  auto name = [](const char* v) {
    return PropertyList{{"name", Value::String(v)}};
  };
  auto acmid = [](int64_t v) {
    return PropertyList{{"acmid", Value::Int(v)}};
  };

  out.n[1] = g.CreateNode({"Researcher"}, name("Nils"));
  out.n[2] = g.CreateNode({"Publication"}, acmid(220));
  out.n[3] = g.CreateNode({"Publication"}, acmid(190));
  out.n[4] = g.CreateNode({"Publication"}, acmid(235));
  out.n[5] = g.CreateNode({"Publication"}, acmid(240));
  out.n[6] = g.CreateNode({"Researcher"}, name("Elin"));
  out.n[7] = g.CreateNode({"Student"}, name("Sten"));
  out.n[8] = g.CreateNode({"Student"}, name("Linda"));
  out.n[9] = g.CreateNode({"Publication"}, acmid(269));
  out.n[10] = g.CreateNode({"Researcher"}, name("Thor"));

  // src/tgt per Example 4.1 (and consistent with the §3 walkthrough).
  auto rel = [&](int i, int s, int t, const char* type) {
    out.r[i] = g.CreateRelationship(out.n[s], out.n[t], type).value();
  };
  rel(1, 1, 2, "AUTHORS");
  rel(2, 2, 3, "CITES");
  rel(3, 4, 2, "CITES");
  rel(4, 5, 2, "CITES");
  rel(5, 6, 5, "AUTHORS");
  rel(6, 6, 7, "SUPERVISES");
  rel(7, 6, 8, "SUPERVISES");
  rel(8, 10, 7, "SUPERVISES");
  rel(9, 9, 4, "CITES");
  rel(10, 6, 9, "AUTHORS");
  rel(11, 9, 5, "CITES");
  return out;
}

PaperFigure4 MakePaperFigure4Graph() {
  PaperFigure4 out;
  out.graph = std::make_shared<PropertyGraph>();
  PropertyGraph& g = *out.graph;
  out.n[1] = g.CreateNode({"Teacher"});
  out.n[2] = g.CreateNode({"Student"});
  out.n[3] = g.CreateNode({"Teacher"});
  out.n[4] = g.CreateNode({"Teacher"});
  out.r[1] = g.CreateRelationship(out.n[1], out.n[2], "KNOWS").value();
  out.r[2] = g.CreateRelationship(out.n[2], out.n[3], "KNOWS").value();
  out.r[3] = g.CreateRelationship(out.n[3], out.n[4], "KNOWS").value();
  return out;
}

SelfLoop MakeSelfLoopGraph() {
  SelfLoop out;
  out.graph = std::make_shared<PropertyGraph>();
  out.node = out.graph->CreateNode({"Node"});
  out.rel = out.graph->CreateRelationship(out.node, out.node, "LOOP").value();
  return out;
}

}  // namespace workload
}  // namespace gqlite
