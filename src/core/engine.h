#ifndef GQLITE_CORE_ENGINE_H_
#define GQLITE_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>

#include "src/common/sync.h"
#include "src/core/query_result.h"
#include "src/plan/plan_cache.h"
#include "src/plan/planner.h"
#include "src/update/update_executor.h"

namespace gqlite {

class WorkerPool;
struct ParallelRunStats;

/// How read queries execute (experiment E15 ablates the two):
///  * kInterpreter — the reference implementation of the paper's formal
///    semantics (clause-by-clause table functions, naive matching);
///  * kVolcano     — cost-based planning to batched (morsel-at-a-time)
///    Volcano operators (§2 "Neo4j implementation", vectorized: see
///    src/plan/runtime.h and EngineOptions::batch_size), with the
///    MatcherOp fallback for pattern shapes outside the pipeline subset.
/// Updating queries and RETURN GRAPH always run on the interpreter path.
enum class ExecutionMode : uint8_t { kInterpreter, kVolcano };

struct EngineOptions {
  ExecutionMode mode = ExecutionMode::kVolcano;
  PlannerOptions::Mode planner = PlannerOptions::Mode::kGreedy;
  /// Pattern-matching morphism (§8 configurable morphisms).
  Morphism morphism = Morphism::kEdgeIsomorphism;
  /// Cap substituted for ∞ in unbounded variable-length patterns (only
  /// binding under homomorphism; see MatchOptions).
  int64_t max_var_length = 1000000;
  /// E14 baseline: execute Expand as a relationship-store hash join.
  bool use_join_expand = false;
  /// Seed for rand() (deterministic runs).
  uint64_t rand_seed = 0x5EEDC0FFEEULL;
  /// Reuse compiled plans across executions of read queries that differ
  /// only in literal constants (auto-parameterization). Disable to get
  /// plan-per-query behavior, e.g. when benchmarking the planner itself.
  bool use_plan_cache = true;
  /// Bound on cached plans (LRU beyond it). 0 disables caching.
  size_t plan_cache_capacity = PlanCache::kDefaultCapacity;
  /// Morsel capacity of the batched Volcano runtime: how many rows each
  /// NextBatch call moves between operators. 1 restores tuple-at-a-time
  /// execution (the benches' `--no-batch` escape hatch). The environment
  /// variable GQLITE_BATCH_SIZE overrides this at engine construction —
  /// CI runs the whole test suite at batch size 1 under ASan to shake
  /// out batch-boundary bugs. A garbage override surfaces as an error
  /// from Prepare/Execute rather than a silent clamp.
  size_t batch_size = RowBatch::kDefaultCapacity;
  /// Worker count of the morsel-driven parallel runtime (src/exec/):
  /// parallel-safe read plans partition their driving scan across this
  /// many workers (a fixed pool of num_threads - 1 threads plus the
  /// calling thread). 1 = today's serial path. The environment variable
  /// GQLITE_THREADS overrides this at engine construction (the TSan CI
  /// leg runs the whole suite at 4). Part of the plan-cache options
  /// fingerprint: plans bake in per-worker pipeline instances.
  size_t num_threads = 1;
};

/// A parsed, analyzed and auto-parameterized query handle returned by
/// CypherEngine::Prepare. Cheap to copy (shared immutable state); execute
/// it repeatedly with different `$param` bindings via
/// CypherEngine::Execute(prepared, params). Literals from the original
/// text participate as synthetic parameters, so
/// `Prepare("MATCH (n {id: 1}) RETURN n")` and the same query with
/// `id: 42` share one cached plan.
class PreparedQuery {
 public:
  PreparedQuery() = default;

  bool valid() const { return state_ != nullptr; }
  /// True for queries containing CREATE/DELETE/SET/REMOVE/MERGE.
  bool updating() const { return state_ != nullptr && state_->info.updating; }
  /// The normalized (auto-parameterized) query text — the structural part
  /// of the plan-cache key. Empty for statements that bypass the cache
  /// (updating queries, RETURN GRAPH, or prepared while caching was off).
  const std::string& normalized_text() const {
    static const std::string kEmpty;
    return state_ ? state_->text_key : kEmpty;
  }
  /// Extracted literal values, keyed by synthetic parameter name.
  const ValueMap& constants() const {
    static const ValueMap kNone;
    return state_ ? state_->constants : kNone;
  }

 private:
  friend class CypherEngine;
  explicit PreparedQuery(PreparedPtr state) : state_(std::move(state)) {}
  PreparedPtr state_;
};

/// The public entry point of gqlite: parse → analyze → execute Cypher
/// over an in-memory property graph (plus the Cypher 10 named-graph
/// catalog).
///
/// ```
/// CypherEngine engine;
/// engine.Execute("CREATE (:Person {name: 'Ada'})");
/// auto result = engine.Execute("MATCH (p:Person) RETURN p.name");
/// std::cout << result->ToString();
/// ```
///
/// Read queries on the Volcano path go through a plan cache: the query is
/// auto-parameterized, and the compiled plan is reused for later queries
/// with the same normalized text (hit/miss/eviction counters via
/// plan_cache_stats()). For repeated queries, skip re-parsing entirely:
///
/// ```
/// auto stmt = engine.Prepare("MATCH (p:Person {id: $id}) RETURN p.name");
/// auto r1 = engine.Execute(*stmt, {{"id", Value::Int(1)}});
/// auto r2 = engine.Execute(*stmt, {{"id", Value::Int(2)}});
/// ```
class CypherEngine {
 public:
  explicit CypherEngine(EngineOptions options = {});
  // Out-of-line (WorkerPool is incomplete here); moves keep working for
  // factory helpers that return an engine by value.
  ~CypherEngine();
  CypherEngine(CypherEngine&&) noexcept;

  /// The implicit Cypher 9 global graph.
  PropertyGraph& graph() { return *graph_; }
  GraphPtr graph_ptr() { return graph_; }
  /// Rebinds the implicit default graph (the engine snapshots it at
  /// construction, so registering a new "default" in the catalog alone
  /// does NOT change what queries see). Also registers it in the
  /// catalog; cached plans against the old graph are invalidated through
  /// the catalog version bump.
  void set_default_graph(GraphPtr g) {
    MutexLock lock(catalog_.mu());
    catalog_.RegisterGraph(GraphCatalog::kDefaultGraphName, g);
    graph_ = std::move(g);
  }
  /// Registers a named graph in the catalog. Equivalent to locking
  /// catalog().mu() and calling the catalog method — the convenience form
  /// for setup code (examples, benches, tests).
  void RegisterGraph(const std::string& name, GraphPtr g) {
    MutexLock lock(catalog_.mu());
    catalog_.RegisterGraph(name, std::move(g));
  }
  /// Registers a graph under an external URL (FROM GRAPH ... AT "url").
  void RegisterUrl(const std::string& url, GraphPtr g) {
    MutexLock lock(catalog_.mu());
    catalog_.RegisterUrl(url, std::move(g));
  }
  /// Named-graph catalog (Cypher 10, §6). Externally synchronized: its
  /// methods REQUIRE catalog().mu() — hold a MutexLock across calls.
  GraphCatalog& catalog() { return catalog_; }

  /// Parses, validates and runs a query. `params` supplies `$name`
  /// parameters (§2: built-in parameter support).
  Result<QueryResult> Execute(std::string_view query,
                              const ValueMap& params = {});

  /// Parses, validates and auto-parameterizes a query without running
  /// it. The handle is engine-independent and never stales: executing it
  /// re-plans through the plan cache as needed.
  Result<PreparedQuery> Prepare(std::string_view query);

  /// Runs a prepared query. `params` supplies user `$name` parameters;
  /// literals extracted at Prepare time are bound automatically (their
  /// synthetic `$_pN` names never collide with user parameters).
  Result<QueryResult> Execute(const PreparedQuery& prepared,
                              const ValueMap& params = {});

  /// Renders the physical plan for a read query (Volcano operators).
  Result<std::string> Explain(std::string_view query,
                              const ValueMap& params = {});

  /// Executes a read query on the Volcano runtime and renders the plan
  /// with per-operator row counters (PROFILE).
  Result<std::string> Profile(std::string_view query,
                              const ValueMap& params = {});

  const EngineOptions& options() const { return options_; }
  void set_options(EngineOptions options) {
    options_ = options;
    options_status_ = ApplyEnvOverrides(&options_);
    MutexLock lock(plan_cache_.mu());
    plan_cache_.set_capacity(options.plan_cache_capacity);
  }

  /// The plan cache (tests/tools may Clear(), resize or reset stats —
  /// holding plan_cache().mu(), which its methods REQUIRE).
  PlanCache& plan_cache() { return plan_cache_; }
  /// Hit/miss/eviction/invalidation counters (snapshot by value: safe to
  /// call from a monitoring thread while queries execute).
  PlanCacheStats plan_cache_stats() const {
    MutexLock lock(plan_cache_.mu());
    return plan_cache_.stats();
  }
  /// Number of cached plans / configured bound, snapshot under the cache
  /// lock (same contract as plan_cache_stats()).
  size_t plan_cache_size() const {
    MutexLock lock(plan_cache_.mu());
    return plan_cache_.size();
  }
  size_t plan_cache_capacity() const {
    MutexLock lock(plan_cache_.mu());
    return plan_cache_.capacity();
  }

  /// Cumulative rows/batches the batched runtime's root drain produced
  /// across this engine's Volcano executions (gqlsh :stats). Snapshot by
  /// value: safe to call from a monitoring thread while queries execute
  /// (counters fold in under stats_mu_ when each execution finishes).
  BatchStats exec_stats() const EXCLUDES(stats_mu_) {
    MutexLock lock(&stats_mu_);
    return exec_stats_;
  }
  /// Number of Volcano executions behind exec_stats().
  uint64_t exec_queries() const EXCLUDES(stats_mu_) {
    MutexLock lock(&stats_mu_);
    return exec_queries_;
  }

  /// Cumulative morsel-driven parallel execution counters (gqlsh :stats).
  struct ParallelStats {
    uint64_t queries = 0;  // executions that ran on the parallel runtime
    uint64_t morsels = 0;  // scan morsels dispatched across them
  };
  ParallelStats parallel_stats() const EXCLUDES(stats_mu_) {
    MutexLock lock(&stats_mu_);
    return parallel_stats_;
  }

 private:
  /// Applies the GQLITE_BATCH_SIZE / GQLITE_THREADS environment
  /// overrides and clamps programmatic values — shared by the
  /// constructor and set_options so reconfiguring an engine cannot
  /// silently drop the overrides CI relies on. A garbage override is
  /// remembered and surfaced as the error of every later
  /// Prepare/Execute.
  static Status ApplyEnvOverrides(EngineOptions* options);
  /// (Re)creates the fixed worker pool to match num_threads.
  WorkerPool* EnsureWorkerPool() EXCLUDES(pool_mu_);
  /// Folds one execution's counters into the cumulative stats.
  void FoldRunStats(const BatchStats& run, const ParallelRunStats& prun)
      EXCLUDES(stats_mu_);
  MatchOptions MakeMatchOptions() const;
  PlannerOptions MakePlannerOptions() const;
  /// Cache key suffix encoding every option that changes the compiled
  /// plan (mode, planner, morphism, bounds, expand strategy).
  std::string OptionsFingerprint() const;
  /// The interpreter path: reference semantics; the only executor for
  /// updating queries and RETURN GRAPH.
  Result<QueryResult> RunInterpreter(const ast::Query& q,
                                     const ValueMap& params);
  /// The Volcano path with plan-cache consultation.
  Result<QueryResult> RunVolcano(const PreparedPtr& prepared,
                                 const ValueMap& params);

  EngineOptions options_;
  /// Error from parsing the environment overrides (OK when clean).
  Status options_status_ = Status::OK();
  GraphCatalog catalog_;
  GraphPtr graph_;
  uint64_t rand_state_;
  PlanCache plan_cache_;
  /// Guards the cumulative execution counters below. Executions
  /// accumulate into locals and fold in here once per query, so a
  /// monitoring thread reading exec_stats()/parallel_stats() mid-query
  /// never races the runtime (pinned by a TSan-run test).
  mutable Mutex stats_mu_;
  BatchStats exec_stats_ GUARDED_BY(stats_mu_);
  uint64_t exec_queries_ GUARDED_BY(stats_mu_) = 0;
  ParallelStats parallel_stats_ GUARDED_BY(stats_mu_);
  /// Guards the lazy (re)construction of the worker pool. The returned
  /// raw pointer stays valid until the next set_options/num_threads
  /// change — a single-owner operation today; the session PR makes
  /// reconfiguration quiesce in-flight queries first.
  Mutex pool_mu_;
  /// Fixed worker pool for the parallel runtime (num_threads - 1
  /// threads; the query thread is worker 0). Created lazily on the first
  /// parallel-eligible execution.
  std::unique_ptr<WorkerPool> pool_ GUARDED_BY(pool_mu_);
  /// Catalog version at the last stale-entry sweep (see RunVolcano).
  uint64_t swept_catalog_version_ = 0;
};

}  // namespace gqlite

#endif  // GQLITE_CORE_ENGINE_H_
