#ifndef GQLITE_CORE_ENGINE_H_
#define GQLITE_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>

#include "src/core/query_result.h"
#include "src/plan/planner.h"
#include "src/update/update_executor.h"

namespace gqlite {

/// How read queries execute (experiment E15 ablates the two):
///  * kInterpreter — the reference implementation of the paper's formal
///    semantics (clause-by-clause table functions, naive matching);
///  * kVolcano     — cost-based planning to tuple-at-a-time operators
///    (§2 "Neo4j implementation"), with the MatcherOp fallback for
///    pattern shapes outside the pipeline subset.
/// Updating queries and RETURN GRAPH always run on the interpreter path.
enum class ExecutionMode : uint8_t { kInterpreter, kVolcano };

struct EngineOptions {
  ExecutionMode mode = ExecutionMode::kVolcano;
  PlannerOptions::Mode planner = PlannerOptions::Mode::kGreedy;
  /// Pattern-matching morphism (§8 configurable morphisms).
  Morphism morphism = Morphism::kEdgeIsomorphism;
  /// Cap substituted for ∞ in unbounded variable-length patterns (only
  /// binding under homomorphism; see MatchOptions).
  int64_t max_var_length = 1000000;
  /// E14 baseline: execute Expand as a relationship-store hash join.
  bool use_join_expand = false;
  /// Seed for rand() (deterministic runs).
  uint64_t rand_seed = 0x5EEDC0FFEEULL;
};

/// The public entry point of gqlite: parse → analyze → execute Cypher
/// over an in-memory property graph (plus the Cypher 10 named-graph
/// catalog).
///
/// ```
/// CypherEngine engine;
/// engine.Execute("CREATE (:Person {name: 'Ada'})");
/// auto result = engine.Execute("MATCH (p:Person) RETURN p.name");
/// std::cout << result->ToString();
/// ```
class CypherEngine {
 public:
  explicit CypherEngine(EngineOptions options = {});

  /// The implicit Cypher 9 global graph.
  PropertyGraph& graph() { return *graph_; }
  GraphPtr graph_ptr() { return graph_; }
  /// Named-graph catalog (Cypher 10, §6).
  GraphCatalog& catalog() { return catalog_; }

  /// Parses, validates and runs a query. `params` supplies `$name`
  /// parameters (§2: built-in parameter support).
  Result<QueryResult> Execute(std::string_view query,
                              const ValueMap& params = {});

  /// Renders the physical plan for a read query (Volcano operators).
  Result<std::string> Explain(std::string_view query,
                              const ValueMap& params = {});

  /// Executes a read query on the Volcano runtime and renders the plan
  /// with per-operator row counters (PROFILE).
  Result<std::string> Profile(std::string_view query,
                              const ValueMap& params = {});

  const EngineOptions& options() const { return options_; }
  void set_options(EngineOptions options) { options_ = options; }

 private:
  MatchOptions MakeMatchOptions() const;

  EngineOptions options_;
  GraphCatalog catalog_;
  GraphPtr graph_;
  uint64_t rand_state_;
};

}  // namespace gqlite

#endif  // GQLITE_CORE_ENGINE_H_
