#ifndef GQLITE_CORE_ENGINE_H_
#define GQLITE_CORE_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/sync.h"
#include "src/core/query_result.h"
#include "src/plan/plan_cache.h"
#include "src/plan/planner.h"
#include "src/update/update_executor.h"

namespace gqlite {

class WorkerPool;
class Session;
class Database;
class StorageEngine;
class WalRecorder;
struct ParallelRunStats;

/// How read queries execute (experiment E15 ablates the two):
///  * kInterpreter — the reference implementation of the paper's formal
///    semantics (clause-by-clause table functions, naive matching);
///  * kVolcano     — cost-based planning to batched (morsel-at-a-time)
///    Volcano operators (§2 "Neo4j implementation", vectorized: see
///    src/plan/runtime.h and EngineOptions::batch_size), with the
///    MatcherOp fallback for pattern shapes outside the pipeline subset.
/// Updating queries and RETURN GRAPH always run on the interpreter path.
enum class ExecutionMode : uint8_t { kInterpreter, kVolcano };

struct EngineOptions {
  ExecutionMode mode = ExecutionMode::kVolcano;
  PlannerOptions::Mode planner = PlannerOptions::Mode::kGreedy;
  /// Pattern-matching morphism (§8 configurable morphisms).
  Morphism morphism = Morphism::kEdgeIsomorphism;
  /// Cap substituted for ∞ in unbounded variable-length patterns (only
  /// binding under homomorphism; see MatchOptions).
  int64_t max_var_length = 1000000;
  /// E14 baseline: execute Expand as a relationship-store hash join.
  bool use_join_expand = false;
  /// Per-hop physical operator for chain expands: kCost compares the
  /// adjacency Expand against the relationship-store hash join per step
  /// on the executing snapshot's statistics; the forced values pin one
  /// side. The environment variable GQLITE_PLAN_MODE overrides this and
  /// the two fields around it at engine construction — comma-separated
  /// tokens from {ltr, greedy, dp} (planner mode), {adjacency, hashjoin,
  /// cost-expand} (this field) and {force-right, force-left,
  /// cost-direction} (direction_policy), e.g.
  /// `GQLITE_PLAN_MODE=dp,hashjoin,force-left`. The differential
  /// harness uses it to run both sides of every cost-based choice; a
  /// garbage token surfaces as an error from Prepare/Execute.
  ExpandStrategy expand_strategy = ExpandStrategy::kCost;
  /// Chain anchor/traversal-direction choice: kCost searches by
  /// estimated cost, the forced values pin an end (see expand_strategy
  /// for the GQLITE_PLAN_MODE override).
  DirectionPolicy direction_policy = DirectionPolicy::kCost;
  /// Seed for rand() (deterministic runs).
  uint64_t rand_seed = 0x5EEDC0FFEEULL;
  /// Reuse compiled plans across executions of read queries that differ
  /// only in literal constants (auto-parameterization). Disable to get
  /// plan-per-query behavior, e.g. when benchmarking the planner itself.
  bool use_plan_cache = true;
  /// Bound on cached plans (LRU beyond it). 0 disables caching.
  size_t plan_cache_capacity = PlanCache::kDefaultCapacity;
  /// Morsel capacity of the batched Volcano runtime: how many rows each
  /// NextBatch call moves between operators. 1 restores tuple-at-a-time
  /// execution (the benches' `--no-batch` escape hatch). The environment
  /// variable GQLITE_BATCH_SIZE overrides this at engine construction —
  /// CI runs the whole test suite at batch size 1 under ASan to shake
  /// out batch-boundary bugs. A garbage override surfaces as an error
  /// from Prepare/Execute rather than a silent clamp.
  size_t batch_size = RowBatch::kDefaultCapacity;
  /// Worker count of the morsel-driven parallel runtime (src/exec/):
  /// parallel-safe read plans partition their driving scan across this
  /// many workers (a fixed pool of num_threads - 1 threads plus the
  /// calling thread). 1 = today's serial path. The environment variable
  /// GQLITE_THREADS overrides this at engine construction (the TSan CI
  /// leg runs the whole suite at 4). Part of the plan-cache options
  /// fingerprint: plans bake in per-worker pipeline instances.
  size_t num_threads = 1;
};

/// A parsed, analyzed and auto-parameterized query handle returned by
/// CypherEngine::Prepare. Cheap to copy (shared immutable state); execute
/// it repeatedly with different `$param` bindings via
/// CypherEngine::Execute(prepared, params). Literals from the original
/// text participate as synthetic parameters, so
/// `Prepare("MATCH (n {id: 1}) RETURN n")` and the same query with
/// `id: 42` share one cached plan.
class PreparedQuery {
 public:
  PreparedQuery() = default;

  bool valid() const { return state_ != nullptr; }
  /// True for queries containing CREATE/DELETE/SET/REMOVE/MERGE.
  bool updating() const { return state_ != nullptr && state_->info.updating; }
  /// The normalized (auto-parameterized) query text — the structural part
  /// of the plan-cache key. Empty for statements that bypass the cache
  /// (updating queries, RETURN GRAPH, or prepared while caching was off).
  const std::string& normalized_text() const {
    static const std::string kEmpty;
    return state_ ? state_->text_key : kEmpty;
  }
  /// Extracted literal values, keyed by synthetic parameter name.
  const ValueMap& constants() const {
    static const ValueMap kNone;
    return state_ ? state_->constants : kNone;
  }

 private:
  friend class CypherEngine;
  explicit PreparedQuery(PreparedPtr state) : state_(std::move(state)) {}
  PreparedPtr state_;
};

/// One statement execution, in structured form: the single request shape
/// behind the Execute overload set (CypherEngine::Run). Exactly one of
/// `text`/`prepared` supplies the statement — a valid `prepared` handle
/// wins and `text` is ignored. `graph` optionally pins an explicit
/// binding (a transaction's snapshot, or a registered graph to query
/// directly); when null the engine resolves the binding per its
/// auto-commit transaction rules (committed snapshot for reads, the
/// writer head for updates).
struct QueryRequest {
  std::string_view text;
  PreparedQuery prepared;
  ValueMap params;
  GraphPtr graph;
};

/// The public entry point of gqlite: parse → analyze → execute Cypher
/// over an in-memory property graph (plus the Cypher 10 named-graph
/// catalog).
///
/// ```
/// CypherEngine engine;
/// engine.Execute("CREATE (:Person {name: 'Ada'})");
/// auto result = engine.Execute("MATCH (p:Person) RETURN p.name");
/// std::cout << result->ToString();
/// ```
///
/// Read queries on the Volcano path go through a plan cache: the query is
/// auto-parameterized, and the compiled plan is reused for later queries
/// with the same normalized text (hit/miss/eviction counters via
/// plan_cache_stats()). For repeated queries, skip re-parsing entirely:
///
/// ```
/// auto stmt = engine.Prepare("MATCH (p:Person {id: $id}) RETURN p.name");
/// auto r1 = engine.Execute(*stmt, {{"id", Value::Int(1)}});
/// auto r2 = engine.Execute(*stmt, {{"id", Value::Int(2)}});
/// ```
///
/// ## Concurrency and transactions
///
/// Engine entry points are thread-safe and snapshot-isolated on the
/// DEFAULT graph (MVCC, single writer):
///  * a read statement executes against an immutable copy-on-write
///    snapshot of the last committed state — it never observes a
///    concurrent writer's partial effects;
///  * an updating statement acquires the engine-wide writer slot
///    (blocking until free), applies to the live graph, and commits on
///    completion, at which point later reads snapshot the new state.
/// For multi-statement transactions and explicit snapshot control, open
/// a Session (CreateSession): `Begin(kRead)` pins one snapshot across
/// many statements; `Begin(kWrite)` takes the writer slot without
/// blocking, surfacing Status::Conflict when a second writer exists.
/// NOT covered by snapshots: named/URL graphs (FROM GRAPH targets are
/// shared mutable state — in practice read-only after setup), and the
/// engine-level rand() stream, which overlaps across concurrent
/// engine-level statements (statements run through a Session draw from
/// that session's own seeded substream instead). The
/// graph()/graph_ptr() accessors bypass transactions entirely and stay
/// single-caller setup APIs.
class CypherEngine {
 public:
  explicit CypherEngine(EngineOptions options = {});
  // Out-of-line (WorkerPool is incomplete here); moves keep working for
  // factory helpers that return an engine by value.
  ~CypherEngine();
  CypherEngine(CypherEngine&&) noexcept;

  /// The implicit Cypher 9 global graph, bypassing the transaction layer
  /// — a single-caller setup API (loading fixtures before queries run).
  /// Mutating it concurrently with executing statements is a data race.
  PropertyGraph& graph() { return *graph_; }
  GraphPtr graph_ptr() { return graph_; }
  /// Rebinds the implicit default graph. Also registers it in the
  /// catalog; cached plans against the old graph are invalidated through
  /// the catalog version bump. Under sessions the binding is pinned per
  /// transaction: statements already running (and open transactions)
  /// keep the graph they resolved at begin; later transactions see `g`.
  /// Fails with kInvalidArgument on a durable database — its default
  /// graph IS the recovered, WAL-backed store and cannot be swapped out
  /// from under the log.
  Status set_default_graph(GraphPtr g);
  /// Registers a named graph in the catalog (convenience form for setup
  /// code — examples, benches, tests).
  void RegisterGraph(const std::string& name, GraphPtr g) {
    catalog_.RegisterGraph(name, std::move(g));
  }
  /// Registers a graph under an external URL (FROM GRAPH ... AT "url").
  void RegisterUrl(const std::string& url, GraphPtr g) {
    catalog_.RegisterUrl(url, std::move(g));
  }
  /// Named-graph catalog (Cypher 10, §6). Internally locked.
  GraphCatalog& catalog() { return catalog_; }

  /// Opens a session: a single-threaded conversation with the engine
  /// that can group statements into explicit transactions. Any number of
  /// sessions may be open (each on its own thread); the engine must
  /// outlive every session it created.
  std::unique_ptr<Session> CreateSession();

  /// Parses, validates and runs a query. `params` supplies `$name`
  /// parameters (§2: built-in parameter support).
  Result<QueryResult> Execute(std::string_view query,
                              const ValueMap& params = {});

  /// Parses, validates and auto-parameterizes a query without running
  /// it. The handle is engine-independent and never stales: executing it
  /// re-plans through the plan cache as needed.
  Result<PreparedQuery> Prepare(std::string_view query);

  /// Runs a prepared query. `params` supplies user `$name` parameters;
  /// literals extracted at Prepare time are bound automatically (their
  /// synthetic `$_pN` names never collide with user parameters).
  Result<QueryResult> Execute(const PreparedQuery& prepared,
                              const ValueMap& params = {});

  /// The structured entry point every Execute overload (and
  /// Session::Execute) funnels into: one statement by text or prepared
  /// handle, with parameters and an optional explicit graph binding.
  Result<QueryResult> Run(const QueryRequest& req);

  /// Serializes the committed state as a new recovery baseline and
  /// truncates the write-ahead log (no-op without durable storage).
  /// Takes the writer slot for the duration: waits for an active write
  /// transaction, and holds out new ones while the checkpoint file is
  /// written.
  Status Checkpoint();

  /// Flushes any setup-API writes still pending and closes the bound
  /// storage engine; later write commits fail. No-op without storage.
  Status Close();

  /// Renders the physical plan for a read query (Volcano operators).
  Result<std::string> Explain(std::string_view query,
                              const ValueMap& params = {});

  /// Executes a read query on the Volcano runtime and renders the plan
  /// with per-operator row counters (PROFILE).
  Result<std::string> Profile(std::string_view query,
                              const ValueMap& params = {});

  const EngineOptions& options() const { return options_; }
  /// Reconfigures the engine (a single-owner operation: quiesce in-flight
  /// queries first). Returns the environment-override parse status — the
  /// same error every later Prepare/Execute would surface, so callers
  /// that check it fail fast at the reconfiguration site.
  Status set_options(EngineOptions options) {
    options_ = options;
    options_status_ = ApplyEnvOverrides(&options_);
    plan_cache_.set_capacity(options.plan_cache_capacity);
    return options_status_;
  }

  /// The plan cache (tests/tools may Clear(), resize or reset stats —
  /// its methods lock internally).
  PlanCache& plan_cache() { return plan_cache_; }
  /// Hit/miss/eviction/invalidation counters (snapshot by value: safe to
  /// call from a monitoring thread while queries execute).
  PlanCacheStats plan_cache_stats() const { return plan_cache_.stats(); }
  /// Number of cached plans / configured bound (same contract as
  /// plan_cache_stats()).
  size_t plan_cache_size() const { return plan_cache_.size(); }
  size_t plan_cache_capacity() const { return plan_cache_.capacity(); }

  /// Cumulative rows/batches the batched runtime's root drain produced
  /// across this engine's Volcano executions (gqlsh :stats). Snapshot by
  /// value: safe to call from a monitoring thread while queries execute
  /// (counters fold in under stats_mu_ when each execution finishes).
  BatchStats exec_stats() const EXCLUDES(stats_mu_) {
    MutexLock lock(&stats_mu_);
    return exec_stats_;
  }
  /// Number of Volcano executions behind exec_stats().
  uint64_t exec_queries() const EXCLUDES(stats_mu_) {
    MutexLock lock(&stats_mu_);
    return exec_queries_;
  }

  /// Cumulative morsel-driven parallel execution counters (gqlsh :stats).
  struct ParallelStats {
    uint64_t queries = 0;  // executions that ran on the parallel runtime
    uint64_t morsels = 0;  // scan morsels dispatched across them
    /// Pool tasks run by merge stages (pairwise sort merges + per-
    /// partition aggregation/DISTINCT merges) across those executions.
    uint64_t merge_tasks = 0;
    uint64_t sort_merges = 0;      // executions using parallel merge sort
    uint64_t agg_merges = 0;       // ... partitioned aggregation merge
    uint64_t distinct_merges = 0;  // ... partitioned DISTINCT merge
    /// Serial fallbacks of parallel-eligible executions (num_threads > 1),
    /// keyed by the AnalyzeParallelCandidate reason. EXPLAIN shows the
    /// reason for one query; these counters make coverage regressions
    /// (a query class silently dropping off the parallel path) observable
    /// in aggregate via gqlsh :stats.
    std::map<std::string, uint64_t> serial_reasons;
  };
  ParallelStats parallel_stats() const EXCLUDES(stats_mu_) {
    MutexLock lock(&stats_mu_);
    return parallel_stats_;
  }

 private:
  friend class Session;
  /// Database is the ONE caller allowed to bind a storage engine: every
  /// other component receives an engine whose durability is already
  /// decided.
  friend class Database;

  /// Installs the persistence layer: recovers the starting graph from
  /// `storage` (checkpoint + WAL replay for the durable engine, a fresh
  /// graph in-memory), binds it as the default graph, and — when the
  /// engine is durable — attaches a WalRecorder so every committed
  /// primitive mutation is appended to the log before the commit is
  /// acknowledged. Called once, before any statement runs.
  Status BindStorage(std::unique_ptr<StorageEngine> storage);

  /// Applies the GQLITE_BATCH_SIZE / GQLITE_THREADS environment
  /// overrides and clamps programmatic values — shared by the
  /// constructor and set_options so reconfiguring an engine cannot
  /// silently drop the overrides CI relies on. A garbage override is
  /// remembered and surfaced as the error of every later
  /// Prepare/Execute.
  static Status ApplyEnvOverrides(EngineOptions* options);
  /// (Re)creates the fixed worker pool to match num_threads.
  WorkerPool* EnsureWorkerPool() EXCLUDES(pool_mu_);
  /// Folds one execution's counters into the cumulative stats.
  void FoldRunStats(const BatchStats& run, const ParallelRunStats& prun)
      EXCLUDES(stats_mu_);
  /// Counts one serial fallback of a parallel-eligible execution under
  /// its AnalyzeParallelCandidate reason (no-op on an empty reason).
  void RecordSerialFallback(const std::string& reason) EXCLUDES(stats_mu_);
  MatchOptions MakeMatchOptions() const;
  PlannerOptions MakePlannerOptions() const;
  /// Cache key suffix encoding every option that changes the compiled
  /// plan (mode, planner, morphism, bounds, expand strategy).
  std::string OptionsFingerprint() const;

  // ---- MVCC transaction core (used by Execute and by Session) ----------

  /// The committed-state snapshot read statements execute against,
  /// refreshed lazily: while no writer is active on the current head and
  /// the head's data_version moved since the last snapshot, take a fresh
  /// one. While a writer IS active on the head, returns the snapshot
  /// taken at that writer's begin — readers never observe mid-transaction
  /// state, and never touch head fields a writer may be mutating.
  GraphPtr ReadSnapshot() EXCLUDES(txn_mu_);
  GraphPtr ReadSnapshotLocked() REQUIRES(txn_mu_);
  /// Takes the engine-wide single-writer slot and returns the live head
  /// graph pinned for the transaction. With `wait`, blocks until the
  /// slot frees (auto-commit statements); without, surfaces
  /// Status::Conflict (explicit Begin(kWrite) — the caller decides
  /// whether to retry).
  Result<GraphPtr> AcquireWriter(bool wait) EXCLUDES(txn_mu_);
  /// Publishes the writer's changes (later ReadSnapshot calls see them)
  /// and frees the writer slot. With durable storage bound, the
  /// transaction's WAL batch is appended and fsync'd FIRST — an OK
  /// return means the commit survives any crash; on append failure the
  /// transaction is rolled back and the error returned (the commit never
  /// happened).
  Status CommitWriter() EXCLUDES(txn_mu_);
  /// Discards the writer's changes by re-materializing the pre-begin
  /// committed snapshot as the new live head, then frees the slot.
  void RollbackWriter() EXCLUDES(txn_mu_);

  /// Execute(prepared, params) with an explicit PRNG substream: the
  /// auto-commit transaction wrapper shared by the engine-level entry
  /// point (session_rand == nullptr → the engine-wide stream) and
  /// Session::Execute outside a transaction (the session's substream).
  Result<QueryResult> ExecuteWith(const PreparedQuery& prepared,
                                  const ValueMap& params,
                                  uint64_t* session_rand);
  /// Executes a prepared statement against an explicit graph binding —
  /// the per-transaction pinned graph (satellite of ISSUE 7: the binding
  /// is resolved ONCE, at transaction begin, so a concurrent
  /// set_default_graph cannot rebind a statement mid-flight).
  /// `session_rand` (optional) is the calling session's PRNG substream;
  /// null uses the engine-wide stream (ISSUE 8 satellite: sessions stop
  /// contending on — and perturbing — one shared stream).
  /// `pinned_catalog` (optional) is the calling transaction's catalog
  /// snapshot, captured at Begin: FROM GRAPH references resolve against
  /// it, so a concurrent RegisterGraph/RegisterUrl cannot change what a
  /// snapshot-isolated reader sees mid-transaction (this PR's
  /// snapshot-binding bugfix — resolution used to consult the live
  /// catalog at each statement's planning time).
  Result<QueryResult> ExecuteOn(
      const PreparedQuery& prepared, const ValueMap& params,
      const GraphPtr& graph, uint64_t* session_rand = nullptr,
      std::shared_ptr<const CatalogSnapshot> pinned_catalog = nullptr);
  /// The interpreter path: reference semantics; the only executor for
  /// updating queries and RETURN GRAPH.
  Result<QueryResult> RunInterpreter(
      const ast::Query& q, const ValueMap& params, const GraphPtr& graph,
      uint64_t* session_rand = nullptr,
      std::shared_ptr<const CatalogSnapshot> pinned_catalog = nullptr);
  /// The Volcano path with plan-cache consultation.
  Result<QueryResult> RunVolcano(
      const PreparedPtr& prepared, const ValueMap& params,
      const GraphPtr& graph, uint64_t* session_rand = nullptr,
      std::shared_ptr<const CatalogSnapshot> pinned_catalog = nullptr);

  /// Checks out the engine PRNG state into a local for one execution and
  /// folds it back on scope exit, so the runtime advances a plain
  /// uint64_t without holding any lock. Serial behavior is unchanged;
  /// concurrent engine-level executions overlap streams (each starts
  /// from the same checkout, last writer wins) — rand() makes no
  /// cross-session determinism promise. With a non-null `session_rand`
  /// the scope is a pass-through to that session-owned substream: no
  /// checkout, no lock (a Session is single-threaded by contract), and
  /// the substream advances statement to statement without ever touching
  /// the engine-wide state.
  class RandScope {
   public:
    RandScope(CypherEngine* e, uint64_t* session_rand = nullptr)
        : engine_(e), session_(session_rand) {
      if (session_ != nullptr) return;
      MutexLock lock(&e->stats_mu_);
      local_ = e->rand_state_;
    }
    ~RandScope() {
      if (session_ != nullptr) return;
      MutexLock lock(&engine_->stats_mu_);
      engine_->rand_state_ = local_;
    }
    RandScope(const RandScope&) = delete;
    RandScope& operator=(const RandScope&) = delete;
    uint64_t* get() { return session_ != nullptr ? session_ : &local_; }

   private:
    CypherEngine* engine_;
    uint64_t* session_;
    uint64_t local_ = 0;
  };

  EngineOptions options_;
  /// Error from parsing the environment overrides (OK when clean).
  Status options_status_ = Status::OK();
  GraphCatalog catalog_;
  /// The live head of the default graph. Unannotated because the legacy
  /// graph() accessor hands it out lock-free (setup-only contract);
  /// every transactional path reads/writes it under txn_mu_.
  GraphPtr graph_;
  PlanCache plan_cache_;

  /// Persistence layer (BindStorage). Null for engines constructed
  /// directly (legacy in-memory behavior, no recorder overhead at all).
  /// Mutating storage state is always done while HOLDING the writer
  /// slot, which serializes appends/checkpoints without a lock of its
  /// own.
  std::unique_ptr<StorageEngine> storage_;
  /// Observes the live head's primitive mutations for the WAL; non-null
  /// exactly when storage_ is durable. Harvested at commit (and at
  /// writer-acquire, for setup-API writes that bypassed a transaction).
  std::unique_ptr<WalRecorder> recorder_;

  /// Transaction coordination: the single-writer slot and the lazily
  /// refreshed committed-state snapshot.
  Mutex txn_mu_;
  CondVar txn_cv_;
  bool writer_active_ GUARDED_BY(txn_mu_) = false;
  /// The head object the active writer pinned at begin (null when none).
  /// Distinguishes "writer on this head" from "writer on a head that
  /// set_default_graph has since replaced".
  const PropertyGraph* writer_graph_ GUARDED_BY(txn_mu_) = nullptr;
  GraphPtr committed_snapshot_ GUARDED_BY(txn_mu_);
  /// Which head object / data_version committed_snapshot_ was taken from.
  const PropertyGraph* committed_src_ GUARDED_BY(txn_mu_) = nullptr;
  uint64_t committed_version_ GUARDED_BY(txn_mu_) = 0;

  /// Guards the cumulative execution counters below. Executions
  /// accumulate into locals and fold in here once per query, so a
  /// monitoring thread reading exec_stats()/parallel_stats() mid-query
  /// never races the runtime (pinned by a TSan-run test).
  mutable Mutex stats_mu_;
  BatchStats exec_stats_ GUARDED_BY(stats_mu_);
  uint64_t exec_queries_ GUARDED_BY(stats_mu_) = 0;
  ParallelStats parallel_stats_ GUARDED_BY(stats_mu_);
  /// PRNG state for rand(); checked out per execution via RandScope.
  uint64_t rand_state_ GUARDED_BY(stats_mu_);
  /// Sessions created so far — each gets a distinct seeded substream
  /// (rand_seed advanced by a per-session Weyl increment).
  uint64_t sessions_created_ GUARDED_BY(stats_mu_) = 0;
  /// Catalog version at the last stale-entry sweep (see RunVolcano).
  uint64_t swept_catalog_version_ GUARDED_BY(stats_mu_) = 0;

  /// Guards the lazy (re)construction of the worker pool. The returned
  /// raw pointer stays valid until the next set_options/num_threads
  /// change — a single-owner operation (reconfiguration must quiesce
  /// in-flight queries first).
  Mutex pool_mu_;
  /// Fixed worker pool for the parallel runtime (num_threads - 1
  /// threads; the query thread is worker 0). Created lazily on the first
  /// parallel-eligible execution.
  std::unique_ptr<WorkerPool> pool_ GUARDED_BY(pool_mu_);
  /// Serializes executions on the shared worker pool: the morsel
  /// dispatcher and per-worker pipelines handle one plan at a time, so
  /// concurrent sessions take turns on the parallel runtime (serial
  /// executions proceed unserialized).
  Mutex pool_exec_mu_;
};

}  // namespace gqlite

#endif  // GQLITE_CORE_ENGINE_H_
