#include "src/core/session.h"

namespace gqlite {

Session::~Session() {
  if (open_ && mode_ == TxnMode::kWrite) {
    engine_->RollbackWriter();
  }
}

Status Session::Begin(TxnMode mode) {
  if (open_) {
    return Status::InvalidArgument(
        "a transaction is already open in this session");
  }
  if (mode == TxnMode::kWrite) {
    // Explicit write transactions surface conflicts instead of queueing
    // behind the active writer; the caller owns the retry policy.
    GQL_ASSIGN_OR_RETURN(txn_graph_, engine_->AcquireWriter(/*wait=*/false));
  } else {
    txn_graph_ = engine_->ReadSnapshot();
    // Pin the catalog bindings too: FROM GRAPH resolution is part of
    // what the snapshot-isolated reader must see consistently.
    txn_catalog_ = engine_->catalog().Capture();
  }
  open_ = true;
  mode_ = mode;
  return Status::OK();
}

Status Session::Commit() {
  if (!open_) {
    return Status::InvalidArgument("no open transaction to commit");
  }
  Status committed = Status::OK();
  if (mode_ == TxnMode::kWrite) {
    // On failure the engine has already rolled the transaction back
    // (durable commit could not be appended); the session closes either
    // way and the caller decides whether to retry.
    committed = engine_->CommitWriter();
  }
  open_ = false;
  txn_graph_.reset();
  txn_catalog_.reset();
  return committed;
}

Status Session::Rollback() {
  if (!open_) {
    return Status::InvalidArgument("no open transaction to roll back");
  }
  if (mode_ == TxnMode::kWrite) {
    engine_->RollbackWriter();
  }
  open_ = false;
  txn_graph_.reset();
  txn_catalog_.reset();
  return Status::OK();
}

Result<QueryResult> Session::Execute(std::string_view query,
                                     const ValueMap& params) {
  GQL_ASSIGN_OR_RETURN(PreparedQuery prepared, engine_->Prepare(query));
  return Execute(prepared, params);
}

Result<QueryResult> Session::Execute(const PreparedQuery& prepared,
                                     const ValueMap& params) {
  if (!open_) {
    // No explicit transaction: per-statement auto-commit, exactly the
    // engine-level contract — but on this session's rand() substream.
    return engine_->ExecuteWith(prepared, params, &rand_state_);
  }
  GQL_RETURN_IF_ERROR(engine_->options_status_);
  if (!prepared.valid()) {
    return Status::InvalidArgument("executing an empty PreparedQuery");
  }
  if (mode_ == TxnMode::kRead && prepared.updating()) {
    return Status::InvalidArgument(
        "updating statement in a read transaction; Begin(TxnMode::kWrite)");
  }
  // Bind to the transaction's pinned graph (the kRead snapshot, or the
  // live head the kWrite transaction owns — it sees its own writes) and,
  // for read transactions, the catalog bindings pinned at Begin.
  return engine_->ExecuteOn(prepared, params, txn_graph_, &rand_state_,
                            txn_catalog_);
}

}  // namespace gqlite
