#include "src/core/database.h"

#include <utility>

#include "src/storage/storage_engine.h"

namespace gqlite {

Result<Database> Database::Open(const std::string& path,
                                EngineOptions options) {
  GQL_ASSIGN_OR_RETURN(std::unique_ptr<DurableStorageEngine> storage,
                       DurableStorageEngine::Open(path));
  Database db(options);
  GQL_RETURN_IF_ERROR(db.engine_->BindStorage(std::move(storage)));
  return db;
}

Result<Database> Database::OpenInMemory(EngineOptions options) {
  Database db(options);
  GQL_RETURN_IF_ERROR(
      db.engine_->BindStorage(std::make_unique<InMemoryStorageEngine>()));
  return db;
}

Status Database::Close() {
  if (engine_ == nullptr) return Status::OK();  // moved-from handle
  return engine_->Close();
}

Database::~Database() {
  // Best-effort final flush; use Close() to observe the status.
  (void)Close();
}

}  // namespace gqlite
