#include "src/core/query_result.h"

namespace gqlite {

std::string QueryResult::ToString(const PropertyGraph* graph) const {
  std::string out;
  if (!table.fields().empty() || table.NumRows() > 0) {
    out += table.ToString(graph);
  }
  if (stats.Any()) {
    out += stats.ToString() + "\n";
  }
  for (const auto& [name, g] : graphs) {
    out += "graph `" + name + "`: " + std::to_string(g->NumNodes()) +
           " nodes, " + std::to_string(g->NumRels()) + " relationships\n";
  }
  return out;
}

}  // namespace gqlite
