#ifndef GQLITE_CORE_QUERY_RESULT_H_
#define GQLITE_CORE_QUERY_RESULT_H_

#include <string>
#include <utility>
#include <vector>

#include "src/graph/graph_catalog.h"
#include "src/interp/table.h"
#include "src/update/update_executor.h"

namespace gqlite {

/// Result of CypherEngine::Execute: the output table, update counters for
/// updating queries, and any graphs produced by RETURN GRAPH (the
/// "table-graphs" result of §6).
struct QueryResult {
  Table table;
  UpdateStats stats;
  std::vector<std::pair<std::string, GraphPtr>> graphs;

  /// Pretty-prints the table (graph-aware when `graph` is supplied) and
  /// the update summary.
  std::string ToString(const PropertyGraph* graph = nullptr) const;
};

}  // namespace gqlite

#endif  // GQLITE_CORE_QUERY_RESULT_H_
