#ifndef GQLITE_CORE_SESSION_H_
#define GQLITE_CORE_SESSION_H_

#include <string_view>

#include "src/core/engine.h"

namespace gqlite {

/// Transaction mode of Session::Begin.
enum class TxnMode : uint8_t {
  /// Snapshot-isolated reads: every statement in the transaction sees
  /// the same committed state, regardless of concurrent commits.
  kRead,
  /// Exclusive write transaction on the engine's single-writer slot.
  kWrite,
};

/// A single-threaded conversation with a CypherEngine that can group
/// statements into explicit transactions (obtained via
/// CypherEngine::CreateSession; the engine must outlive the session).
///
/// ```
/// auto session = engine.CreateSession();
/// session->Begin(TxnMode::kRead);           // pin a snapshot
/// auto r1 = session->Execute("MATCH (n) RETURN count(n)");
/// auto r2 = session->Execute("MATCH (n) RETURN count(n)");  // same value
/// session->Commit();
/// ```
///
/// Isolation (MVCC, single writer):
///  * a kRead transaction pins the committed-state snapshot at Begin;
///    every statement until Commit/Rollback reads that snapshot, seeing
///    none of a concurrently committing writer's changes;
///  * a kWrite transaction takes the engine-wide writer slot at Begin
///    WITHOUT blocking — a second concurrent writer gets
///    Status::Conflict (code kConflict) and decides whether to retry.
///    Statements inside it read and write the live head (a transaction
///    sees its own writes); Commit publishes them to later snapshots,
///    Rollback restores the pre-Begin state;
///  * outside any transaction, Execute behaves exactly like
///    CypherEngine::Execute — per-statement auto-commit (writes WAIT for
///    the writer slot instead of surfacing a conflict).
///
/// The default-graph binding is pinned at Begin (and per statement in
/// auto-commit): a concurrent set_default_graph never rebinds a
/// transaction mid-flight. QueryResult tables are plain values and stay
/// valid after Commit/Rollback and after the session is destroyed.
///
/// A Session object itself is single-threaded (not locked); concurrency
/// comes from many sessions on many threads. Destroying a session with
/// an open write transaction rolls it back.
class Session {
 public:
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Opens a transaction. Fails with kInvalidArgument if one is already
  /// open, or kConflict for kWrite when another writer is active.
  Status Begin(TxnMode mode = TxnMode::kRead);
  /// Commits the open transaction (publishes writes; read transactions
  /// just release their snapshot pin). On a durable database the write
  /// batch is fsync'd to the WAL before OK is returned; if the append
  /// fails, the transaction is rolled back and the error returned — the
  /// commit never happened.
  Status Commit();
  /// Rolls the open transaction back (write transactions restore the
  /// pre-Begin state; read transactions just release the pin).
  Status Rollback();

  bool in_transaction() const { return open_; }
  TxnMode mode() const { return mode_; }
  /// The graph this session's statements currently execute against: the
  /// pinned snapshot (kRead), the live head (kWrite), or null outside a
  /// transaction (auto-commit statements pin per statement).
  const GraphPtr& graph() const { return txn_graph_; }

  /// Executes one statement under the session's transaction state (see
  /// class comment). An updating statement inside a kRead transaction
  /// fails with kInvalidArgument.
  Result<QueryResult> Execute(std::string_view query,
                              const ValueMap& params = {});
  Result<QueryResult> Execute(const PreparedQuery& prepared,
                              const ValueMap& params = {});

 private:
  friend class CypherEngine;
  Session(CypherEngine* engine, uint64_t rand_seed)
      : engine_(engine), rand_state_(rand_seed) {}

  CypherEngine* engine_;
  bool open_ = false;
  TxnMode mode_ = TxnMode::kRead;
  GraphPtr txn_graph_;
  /// Catalog bindings pinned at Begin(kRead): FROM GRAPH (named and AT
  /// "url") references resolve against this snapshot for the whole
  /// transaction, so a concurrent RegisterGraph/RegisterUrl cannot
  /// change what a snapshot-isolated reader sees between statements.
  std::shared_ptr<const CatalogSnapshot> txn_catalog_;
  /// This session's seeded rand() substream (ISSUE 8 satellite, PR 7
  /// follow-up): derived from the engine seed and the session ordinal at
  /// CreateSession, advanced statement to statement by this session
  /// alone. Concurrent sessions no longer contend on — or perturb — the
  /// engine-wide stream, and a session's rand() sequence is reproducible
  /// given the engine seed and session creation order.
  uint64_t rand_state_;
};

}  // namespace gqlite

#endif  // GQLITE_CORE_SESSION_H_
