#include "src/core/engine.h"

#include "src/exec/parallel.h"
#include "src/exec/worker_pool.h"
#include "src/frontend/analyzer.h"
#include "src/frontend/canonicalize.h"
#include "src/frontend/parser.h"
#include "src/interp/interpreter.h"
#include "src/plan/runtime.h"

namespace gqlite {

Status CypherEngine::ApplyEnvOverrides(EngineOptions* options) {
  GQL_ASSIGN_OR_RETURN(options->batch_size,
                       EffectiveBatchSize(options->batch_size));
  GQL_ASSIGN_OR_RETURN(options->num_threads,
                       EffectiveNumThreads(options->num_threads));
  return Status::OK();
}

CypherEngine::CypherEngine(EngineOptions options)
    : options_(options),
      rand_state_(options.rand_seed),
      plan_cache_(options.plan_cache_capacity) {
  options_status_ = ApplyEnvOverrides(&options_);
  MutexLock lock(catalog_.mu());
  graph_ = catalog_.default_graph();
}

CypherEngine::~CypherEngine() = default;
CypherEngine::CypherEngine(CypherEngine&&) noexcept = default;

WorkerPool* CypherEngine::EnsureWorkerPool() {
  MutexLock lock(&pool_mu_);
  size_t extra = options_.num_threads - 1;
  if (pool_ == nullptr || pool_->size() != extra) {
    pool_ = std::make_unique<WorkerPool>(extra);
  }
  return pool_.get();
}

void CypherEngine::FoldRunStats(const BatchStats& run,
                                const ParallelRunStats& prun) {
  MutexLock lock(&stats_mu_);
  exec_stats_.rows += run.rows;
  exec_stats_.batches += run.batches;
  if (prun.workers > 0) {
    ++parallel_stats_.queries;
    parallel_stats_.morsels += prun.morsels;
  }
}

MatchOptions CypherEngine::MakeMatchOptions() const {
  MatchOptions m;
  m.morphism = options_.morphism;
  m.max_var_length = options_.max_var_length;
  return m;
}

PlannerOptions CypherEngine::MakePlannerOptions() const {
  PlannerOptions popts;
  popts.mode = options_.planner;
  popts.use_join_expand = options_.use_join_expand;
  popts.batch_size = options_.batch_size;
  popts.num_threads = options_.num_threads;
  popts.match = MakeMatchOptions();
  return popts;
}

std::string CypherEngine::OptionsFingerprint() const {
  // Every option that changes the compiled plan. The unit separator keeps
  // the suffix from colliding with query text.
  std::string f = "\x1f";
  f += 'p';
  f += std::to_string(static_cast<int>(options_.planner));
  f += 'm';
  f += std::to_string(static_cast<int>(options_.morphism));
  f += 'v';
  f += std::to_string(options_.max_var_length);
  f += 'j';
  f += options_.use_join_expand ? '1' : '0';
  // Morsel size is baked into the plan's ExecContext (pipeline-breaker
  // drains), so it is part of the key.
  f += 'b';
  f += std::to_string(options_.batch_size);
  // Worker count is baked in as per-worker pipeline instances.
  f += 't';
  f += std::to_string(options_.num_threads);
  return f;
}

Result<PreparedQuery> CypherEngine::Prepare(std::string_view query) {
  GQL_RETURN_IF_ERROR(options_status_);
  auto state = std::make_shared<PreparedStatement>();
  GQL_ASSIGN_OR_RETURN(state->query, ParseQuery(query));
  // Analysis runs on the original tree so diagnostics mention the
  // literals the user wrote, not synthetic parameters.
  GQL_ASSIGN_OR_RETURN(state->info, Analyze(state->query));
  for (const auto& part : state->query.parts) {
    for (const auto& c : part.clauses) {
      if (c->kind == ast::Clause::Kind::kReturnGraph) {
        state->has_return_graph = true;
      }
    }
  }
  // Canonicalize only when a cached plan can actually use it: updating
  // and RETURN GRAPH queries run on the interpreter (where keeping the
  // user's literals also keeps diagnostics in their terms), and with the
  // cache off the rewrite+unparse would be pure overhead on every
  // Execute(text) call. A statement prepared while the cache is off
  // stays uncached (text_key empty) even if the cache is enabled later.
  size_t cache_capacity;
  {
    MutexLock lock(plan_cache_.mu());
    cache_capacity = plan_cache_.capacity();
  }
  bool cacheable = !state->info.updating && !state->has_return_graph &&
                   options_.mode == ExecutionMode::kVolcano &&
                   options_.use_plan_cache && cache_capacity > 0;
  if (cacheable) {
    state->constants = AutoParameterize(&state->query).extracted;
    state->text_key = NormalizedQueryKey(state->query);
  }
  return PreparedQuery(PreparedPtr(std::move(state)));
}

Result<QueryResult> CypherEngine::Execute(std::string_view query,
                                          const ValueMap& params) {
  GQL_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(query));
  return Execute(prepared, params);
}

Result<QueryResult> CypherEngine::Execute(const PreparedQuery& prepared,
                                          const ValueMap& params) {
  GQL_RETURN_IF_ERROR(options_status_);
  if (!prepared.valid()) {
    return Status::InvalidArgument("executing an empty PreparedQuery");
  }
  const PreparedStatement& st = *prepared.state_;
  bool interpreted = st.info.updating || st.has_return_graph ||
                     options_.mode == ExecutionMode::kInterpreter;
  if (st.constants.empty()) {
    // Nothing was extracted — run on the caller's map directly (the
    // common case for fully-parameterized and non-cacheable statements).
    if (interpreted) return RunInterpreter(st.query, params);
    return RunVolcano(prepared.state_, params);
  }
  // User parameters first, then the literals extracted at Prepare time.
  // Synthetic names never collide with parameters referenced by the
  // query, so the overlay cannot shadow a binding the query can see.
  ValueMap merged = params;
  for (const auto& [name, value] : st.constants) {
    merged[name] = value;
  }
  if (interpreted) return RunInterpreter(st.query, merged);
  return RunVolcano(prepared.state_, merged);
}

Result<QueryResult> CypherEngine::RunVolcano(const PreparedPtr& prepared,
                                             const ValueMap& params) {
  QueryResult result;
  {
    MutexLock lock(&stats_mu_);
    ++exec_queries_;  // counts attempts, like the serial-era counter
  }
  WorkerPool* pool =
      options_.num_threads > 1 ? EnsureWorkerPool() : nullptr;
  // Per-execution counters accumulate into locals and fold into the
  // guarded cumulative stats once at the end, so a monitoring thread can
  // read exec_stats()/parallel_stats() while the query runs.
  BatchStats run_stats;
  ParallelRunStats prun;
  size_t cache_capacity;
  {
    MutexLock lock(plan_cache_.mu());
    cache_capacity = plan_cache_.capacity();
  }
  if (!options_.use_plan_cache || cache_capacity == 0 ||
      prepared->text_key.empty()) {
    GQL_ASSIGN_OR_RETURN(
        result.table, RunPlanned(&catalog_, graph_, &params,
                                 MakePlannerOptions(), &rand_state_,
                                 prepared->query, &run_stats, pool, &prun));
    FoldRunStats(run_stats, prun);
    return result;
  }
  // Snapshot the catalog version, then release its lock: planning below
  // may re-enter the catalog (FROM GRAPH ... AT registers names).
  uint64_t cat_version;
  {
    MutexLock lock(catalog_.mu());
    cat_version = catalog_.version();
  }
  // A catalog-version move strands every older entry (they can never
  // validate again); sweep them now so the graphs they pin are released
  // promptly rather than on LRU eviction.
  if (cat_version != swept_catalog_version_) {
    MutexLock lock(plan_cache_.mu());
    plan_cache_.SweepStale(cat_version);
    swept_catalog_version_ = cat_version;
  }
  std::string key = prepared->text_key + OptionsFingerprint();
  PlanCache::Entry* entry;
  {
    MutexLock lock(plan_cache_.mu());
    entry = plan_cache_.Lookup(key, cat_version);
  }
  if (entry == nullptr) {
    Planner planner(&catalog_, graph_, &params, MakePlannerOptions(),
                    &rand_state_);
    GQL_ASSIGN_OR_RETURN(Plan plan, planner.PlanQuery(prepared->query));
    // Snapshot generations AFTER planning: FROM GRAPH ... AT "url" may
    // register a graph name while planning, bumping the catalog version.
    std::vector<std::pair<std::shared_ptr<const PropertyGraph>, uint64_t>>
        guards;
    guards.reserve(plan.contexts.size());
    for (const auto& ctx : plan.contexts) {
      guards.emplace_back(ctx->graph_owner, ctx->graph_owner->stats_version());
    }
    {
      MutexLock lock(catalog_.mu());
      cat_version = catalog_.version();
    }
    MutexLock lock(plan_cache_.mu());
    entry = plan_cache_.Insert(std::move(key), prepared, std::move(plan),
                               cat_version, std::move(guards));
  }
  // The Entry* outlives the lock scopes above: under today's
  // single-session contract no other cache operation can intervene
  // before this execution finishes (the MVCC PR pins entries instead).
  // Rebind execution-scoped state: this execution's parameter bindings
  // and the engine's PRNG stream.
  for (auto& ctx : entry->plan.contexts) {
    ctx->eval.parameters = &params;
    ctx->eval.rand_state = &rand_state_;
  }
  if (pool != nullptr && entry->plan.parallel.safe) {
    GQL_ASSIGN_OR_RETURN(result.table,
                         ExecutePlanParallel(&entry->plan, pool,
                                             options_.batch_size,
                                             &run_stats, &prun));
    FoldRunStats(run_stats, prun);
    return result;
  }
  GQL_ASSIGN_OR_RETURN(result.table,
                       ExecutePlan(&entry->plan, options_.batch_size,
                                   &run_stats));
  FoldRunStats(run_stats, prun);
  return result;
}

Result<QueryResult> CypherEngine::RunInterpreter(const ast::Query& q,
                                                 const ValueMap& params) {
  QueryResult result;
  Interpreter::Options iopts;
  iopts.match = MakeMatchOptions();
  Interpreter interp(&catalog_, graph_, &params, iopts, &rand_state_);
  MatchOptions match = MakeMatchOptions();
  interp.set_update_handler([&](const ast::Clause& c,
                                Table t) -> Result<Table> {
    UpdateExecutor upd(interp.current_graph().get(), &params, match,
                       &rand_state_, &result.stats);
    return upd.Execute(c, std::move(t));
  });
  GQL_ASSIGN_OR_RETURN(result.table, interp.ExecuteQuery(q));
  result.graphs = interp.produced_graphs();
  return result;
}

Result<std::string> CypherEngine::Profile(std::string_view query,
                                          const ValueMap& params) {
  GQL_RETURN_IF_ERROR(options_status_);
  GQL_ASSIGN_OR_RETURN(ast::Query q, ParseQuery(query));
  GQL_ASSIGN_OR_RETURN(QueryInfo info, Analyze(q));
  if (info.updating) {
    return Status::Unimplemented(
        "PROFILE of updating queries is not supported");
  }
  Planner planner(&catalog_, graph_, &params, MakePlannerOptions(),
                  &rand_state_);
  GQL_ASSIGN_OR_RETURN(Plan plan, planner.PlanQuery(q));
  {
    MutexLock lock(&stats_mu_);
    ++exec_queries_;
  }
  Table t;
  std::string head;
  BatchStats run_stats;
  ParallelRunStats prun;
  if (options_.num_threads > 1 && plan.parallel.safe) {
    GQL_ASSIGN_OR_RETURN(t, ExecutePlanParallel(&plan, EnsureWorkerPool(),
                                                options_.batch_size,
                                                &run_stats, &prun));
    // Fold every worker instance's counters into the printed tree.
    for (const OperatorPtr& instance : plan.extra_roots) {
      plan.root->AbsorbCounters(*instance);
    }
    head = "Parallel: " + std::to_string(prun.workers) + " workers, " +
           std::to_string(prun.morsels) +
           " morsels dispatched (the root projection runs in the merge "
           "stage; its tree counters stay 0)\n";
  } else {
    GQL_ASSIGN_OR_RETURN(
        t, ExecutePlan(&plan, options_.batch_size, &run_stats));
    if (options_.num_threads > 1) {
      head = "Parallel: serial (" + plan.parallel.reason + ")\n";
    }
  }
  FoldRunStats(run_stats, prun);
  std::string out = head + ProfilePlan(*plan.root);
  out += "result: " + std::to_string(t.NumRows()) + " rows\n";
  return out;
}

Result<std::string> CypherEngine::Explain(std::string_view query,
                                          const ValueMap& params) {
  GQL_RETURN_IF_ERROR(options_status_);
  GQL_ASSIGN_OR_RETURN(ast::Query q, ParseQuery(query));
  GQL_ASSIGN_OR_RETURN(QueryInfo info, Analyze(q));
  if (info.updating) {
    return Status::Unimplemented(
        "EXPLAIN of updating queries is not supported (they run on the "
        "clause interpreter)");
  }
  return ExplainQuery(&catalog_, graph_, &params, MakePlannerOptions(),
                      &rand_state_, q);
}

}  // namespace gqlite
