#include "src/core/engine.h"

#include <cstdlib>

#include "src/core/session.h"
#include "src/exec/parallel.h"
#include "src/exec/worker_pool.h"
#include "src/frontend/analyzer.h"
#include "src/frontend/canonicalize.h"
#include "src/frontend/parser.h"
#include "src/interp/interpreter.h"
#include "src/plan/runtime.h"
#include "src/storage/storage_engine.h"
#include "src/storage/wal_recorder.h"

namespace gqlite {

namespace {

/// Un-pins a plan-cache entry on scope exit, including error returns
/// mid-execution.
struct EntryReleaser {
  PlanCache* cache;
  PlanCache::EntryPtr entry;
  ~EntryReleaser() {
    if (entry != nullptr) cache->Release(entry);
  }
};

/// Applies the GQLITE_PLAN_MODE override: comma-separated tokens, each
/// setting the planner mode, the expand strategy or the direction
/// policy. Strict by the same rule as the numeric overrides — an
/// unknown token is an error naming the variable, not a silent default
/// (a misspelled forced-plan token would quietly test nothing).
Status ApplyPlanModeEnv(EngineOptions* options) {
  const char* env = std::getenv("GQLITE_PLAN_MODE");
  if (env == nullptr || env[0] == '\0') return Status::OK();
  std::string_view rest = env;
  bool more = true;
  while (more) {
    size_t comma = rest.find(',');
    std::string_view tok = rest.substr(0, comma);
    more = comma != std::string_view::npos;
    if (more) rest = rest.substr(comma + 1);
    if (tok == "ltr") {
      options->planner = PlannerOptions::Mode::kLeftToRight;
    } else if (tok == "greedy") {
      options->planner = PlannerOptions::Mode::kGreedy;
    } else if (tok == "dp") {
      options->planner = PlannerOptions::Mode::kDpStarts;
    } else if (tok == "adjacency") {
      options->expand_strategy = ExpandStrategy::kAdjacency;
    } else if (tok == "hashjoin") {
      options->expand_strategy = ExpandStrategy::kHashJoin;
    } else if (tok == "cost-expand") {
      options->expand_strategy = ExpandStrategy::kCost;
    } else if (tok == "force-right") {
      options->direction_policy = DirectionPolicy::kForceRight;
    } else if (tok == "force-left") {
      options->direction_policy = DirectionPolicy::kForceLeft;
    } else if (tok == "cost-direction") {
      options->direction_policy = DirectionPolicy::kCost;
    } else {
      return Status::InvalidArgument("GQLITE_PLAN_MODE: unknown token \"" +
                                     std::string(tok) + "\"");
    }
  }
  return Status::OK();
}

}  // namespace

Status CypherEngine::ApplyEnvOverrides(EngineOptions* options) {
  GQL_ASSIGN_OR_RETURN(options->batch_size,
                       EffectiveBatchSize(options->batch_size));
  GQL_ASSIGN_OR_RETURN(options->num_threads,
                       EffectiveNumThreads(options->num_threads));
  GQL_RETURN_IF_ERROR(ApplyPlanModeEnv(options));
  return Status::OK();
}

CypherEngine::CypherEngine(EngineOptions options)
    : options_(options),
      plan_cache_(options.plan_cache_capacity),
      rand_state_(options.rand_seed) {
  options_status_ = ApplyEnvOverrides(&options_);
  graph_ = catalog_.default_graph();
}

CypherEngine::~CypherEngine() {
  // The graph may outlive the engine (shared_ptr handed out via
  // graph_ptr()); never leave it pointing at the dying recorder.
  if (recorder_ != nullptr && graph_ != nullptr) {
    graph_->set_write_observer(nullptr);
  }
}
CypherEngine::CypherEngine(CypherEngine&&) noexcept = default;

Status CypherEngine::BindStorage(std::unique_ptr<StorageEngine> storage) {
  GQL_ASSIGN_OR_RETURN(std::shared_ptr<PropertyGraph> recovered,
                       storage->Recover());
  storage_ = std::move(storage);
  if (storage_->durable()) {
    recorder_ = std::make_unique<WalRecorder>(recovered.get());
    recovered->set_write_observer(recorder_.get());
  }
  catalog_.RegisterGraph(GraphCatalog::kDefaultGraphName, recovered);
  MutexLock lock(&txn_mu_);
  graph_ = std::move(recovered);
  committed_snapshot_ = nullptr;
  committed_src_ = nullptr;
  committed_version_ = 0;
  return Status::OK();
}

Status CypherEngine::Checkpoint() {
  if (storage_ == nullptr) return Status::OK();
  // Hold the writer slot across the whole checkpoint: an active write
  // transaction finishes first, new ones wait, and AcquireWriter has
  // already flushed any pending setup-API batch — so the pinned
  // committed snapshot matches "every WAL batch appended so far",
  // exactly what WriteCheckpoint claims.
  GQL_RETURN_IF_ERROR(AcquireWriter(/*wait=*/true).status());
  GraphPtr snapshot;
  {
    MutexLock lock(&txn_mu_);
    snapshot = ReadSnapshotLocked();
  }
  Status written = storage_->WriteCheckpoint(*snapshot);
  // Nothing was mutated, so releasing the slot cannot append a batch.
  Status released = CommitWriter();
  return written.ok() ? released : written;
}

Status CypherEngine::Close() {
  if (storage_ == nullptr) return Status::OK();
  Status flushed = Status::OK();
  if (recorder_ != nullptr) {
    // Taking the writer slot waits out in-flight writers and flushes any
    // pending setup-API batch; detach the recorder before releasing so
    // no op can slip in after the final append.
    Result<GraphPtr> live = AcquireWriter(/*wait=*/true);
    if (live.ok()) {
      (*live)->set_write_observer(nullptr);
      flushed = CommitWriter();
    } else {
      flushed = live.status();
    }
    recorder_.reset();
  }
  Status closed = storage_->Close();
  return flushed.ok() ? closed : flushed;
}

std::unique_ptr<Session> CypherEngine::CreateSession() {
  uint64_t ordinal;
  {
    MutexLock lock(&stats_mu_);
    ordinal = ++sessions_created_;
  }
  // Distinct substream per session: the engine seed advanced by a
  // per-session Weyl increment (the splitmix64 constant), then mixed so
  // nearby ordinals do not yield nearby rand() sequences. Deterministic
  // given the seed and session creation order.
  uint64_t seed = options_.rand_seed + ordinal * 0x9E3779B97F4A7C15ULL;
  seed ^= seed >> 30;
  seed *= 0xBF58476D1CE4E5B9ULL;
  seed ^= seed >> 27;
  return std::unique_ptr<Session>(new Session(this, seed));
}

WorkerPool* CypherEngine::EnsureWorkerPool() {
  MutexLock lock(&pool_mu_);
  size_t extra = options_.num_threads - 1;
  if (pool_ == nullptr || pool_->size() != extra) {
    pool_ = std::make_unique<WorkerPool>(extra);
  }
  return pool_.get();
}

void CypherEngine::FoldRunStats(const BatchStats& run,
                                const ParallelRunStats& prun) {
  MutexLock lock(&stats_mu_);
  exec_stats_.rows += run.rows;
  exec_stats_.batches += run.batches;
  if (prun.workers > 0) {
    ++parallel_stats_.queries;
    parallel_stats_.morsels += prun.morsels;
    parallel_stats_.merge_tasks += prun.merge_tasks;
    if (prun.sort_merge) ++parallel_stats_.sort_merges;
    if (prun.partitioned_agg) ++parallel_stats_.agg_merges;
    if (prun.partitioned_distinct) ++parallel_stats_.distinct_merges;
  }
}

void CypherEngine::RecordSerialFallback(const std::string& reason) {
  if (reason.empty()) return;
  MutexLock lock(&stats_mu_);
  ++parallel_stats_.serial_reasons[reason];
}

MatchOptions CypherEngine::MakeMatchOptions() const {
  MatchOptions m;
  m.morphism = options_.morphism;
  m.max_var_length = options_.max_var_length;
  return m;
}

PlannerOptions CypherEngine::MakePlannerOptions() const {
  PlannerOptions popts;
  popts.mode = options_.planner;
  popts.use_join_expand = options_.use_join_expand;
  popts.expand_strategy = options_.expand_strategy;
  popts.direction_policy = options_.direction_policy;
  popts.batch_size = options_.batch_size;
  popts.num_threads = options_.num_threads;
  popts.match = MakeMatchOptions();
  return popts;
}

std::string CypherEngine::OptionsFingerprint() const {
  // Every option that changes the compiled plan. The unit separator keeps
  // the suffix from colliding with query text.
  std::string f = "\x1f";
  f += 'p';
  f += std::to_string(static_cast<int>(options_.planner));
  f += 'm';
  f += std::to_string(static_cast<int>(options_.morphism));
  f += 'v';
  f += std::to_string(options_.max_var_length);
  f += 'j';
  f += options_.use_join_expand ? '1' : '0';
  f += 'x';
  f += std::to_string(static_cast<int>(options_.expand_strategy));
  f += 'd';
  f += std::to_string(static_cast<int>(options_.direction_policy));
  // Morsel size is baked into the plan's ExecContext (pipeline-breaker
  // drains), so it is part of the key.
  f += 'b';
  f += std::to_string(options_.batch_size);
  // Worker count is baked in as per-worker pipeline instances.
  f += 't';
  f += std::to_string(options_.num_threads);
  return f;
}

// ---- MVCC transaction core -------------------------------------------------

Status CypherEngine::set_default_graph(GraphPtr g) {
  if (recorder_ != nullptr) {
    // The durable default graph IS the recovered, WAL-backed store;
    // swapping it out from under the log would desynchronize recovery.
    return Status::InvalidArgument(
        "set_default_graph: a durable database owns its default graph; "
        "register additional graphs by name instead");
  }
  catalog_.RegisterGraph(GraphCatalog::kDefaultGraphName, g);
  MutexLock lock(&txn_mu_);
  graph_ = std::move(g);
  // Invalidate the committed snapshot: the next read snapshots the new
  // head. An active writer keeps the (old) head it pinned at begin;
  // writer_graph_ no longer matches graph_, so readers are not deferred
  // to that writer's begin snapshot.
  committed_snapshot_ = nullptr;
  committed_src_ = nullptr;
  committed_version_ = 0;
  return Status::OK();
}

GraphPtr CypherEngine::ReadSnapshot() {
  MutexLock lock(&txn_mu_);
  return ReadSnapshotLocked();
}

GraphPtr CypherEngine::ReadSnapshotLocked() {
  if (writer_active_ && graph_.get() == writer_graph_) {
    // A writer owns the head: serve the snapshot taken at its begin and
    // do not touch head fields it may be mutating right now.
    return committed_snapshot_;
  }
  if (graph_->frozen()) {
    // The default graph is itself a frozen snapshot (e.g. an oracle
    // engine bound to another engine's snapshot): it cannot change, so
    // it IS the committed state. Copying here would also race — frozen
    // graphs are shared across engines and Snapshot() is a mutation.
    return graph_;
  }
  if (committed_snapshot_ == nullptr || committed_src_ != graph_.get() ||
      committed_version_ != graph_->data_version()) {
    committed_snapshot_ = graph_->Snapshot();
    committed_src_ = graph_.get();
    committed_version_ = graph_->data_version();
  }
  return committed_snapshot_;
}

Result<GraphPtr> CypherEngine::AcquireWriter(bool wait) {
  // Durable storage whose recorder is gone has been Close()d: writes
  // could no longer be logged, so refuse them instead of silently
  // diverging memory from disk.
  if (storage_ != nullptr && storage_->durable() && recorder_ == nullptr) {
    return Status::InvalidArgument("database is closed for writes");
  }
  GraphPtr head;
  {
    MutexLock lock(&txn_mu_);
    while (writer_active_) {
      if (!wait) {
        return Status::Conflict(
            "write-write conflict: another write transaction is in progress");
      }
      txn_cv_.Wait(&txn_mu_);
    }
    // Pin the pre-transaction committed state BEFORE any dirty write:
    // readers starting during the transaction are served this snapshot,
    // and Rollback restores it.
    ReadSnapshotLocked();
    writer_active_ = true;
    writer_graph_ = graph_.get();
    head = graph_;
  }
  // Holding the writer slot (appends are serialized by it, not by a
  // lock), flush ops from setup-API writes that bypassed a transaction
  // (graph() fixture loads) as their own batch. They are part of the
  // snapshot pinned above, so a rollback — which discards only pending
  // ops — stays consistent with the log.
  if (recorder_ != nullptr && recorder_->HasPending()) {
    Status st = storage_->AppendCommit(recorder_->TakePending());
    if (!st.ok()) {
      MutexLock lock(&txn_mu_);
      writer_active_ = false;
      writer_graph_ = nullptr;
      txn_cv_.NotifyAll();
      return st;
    }
  }
  return head;
}

Status CypherEngine::CommitWriter() {
  // Durability first: the batch is on disk (fsync'd) before the commit
  // is acknowledged — still holding the writer slot, so batches hit the
  // log in commit order. On failure the transaction rolls back: OK from
  // this function is the moment the commit exists.
  if (recorder_ != nullptr && recorder_->HasPending()) {
    Status st = storage_->AppendCommit(recorder_->TakePending());
    if (!st.ok()) {
      RollbackWriter();
      return st;
    }
  }
  MutexLock lock(&txn_mu_);
  // Publishing is lazy: with the writer slot free, the next
  // ReadSnapshotLocked sees the head's data_version moved and takes a
  // fresh snapshot.
  writer_active_ = false;
  writer_graph_ = nullptr;
  txn_cv_.NotifyAll();
  return Status::OK();
}

void CypherEngine::RollbackWriter() {
  GraphPtr restored;
  {
    MutexLock lock(&txn_mu_);
    if (graph_.get() == writer_graph_) {
      // Re-materialize the pre-begin state as a fresh live head. The
      // committed snapshot stays (it is content-equal to the new head).
      restored = committed_snapshot_->Clone();
      if (recorder_ != nullptr) {
        // Drop the transaction's unlogged ops and observe the restored
        // head from its (rolled-back) interner state — which matches
        // what the log contains, since AcquireWriter flushed everything
        // older.
        recorder_->Rebind(restored.get());
        restored->set_write_observer(recorder_.get());
      }
      graph_ = restored;
      committed_src_ = restored.get();
      committed_version_ = restored->data_version();
    }
    // else: set_default_graph replaced the head mid-transaction, so the
    // writer's graph is already unbound; releasing the slot suffices.
    writer_active_ = false;
    writer_graph_ = nullptr;
    txn_cv_.NotifyAll();
  }
  if (restored != nullptr) {
    // Bumps the catalog version, invalidating cached plans bound to the
    // abandoned head.
    catalog_.RegisterGraph(GraphCatalog::kDefaultGraphName, restored);
  }
}

// ---- Statement execution ---------------------------------------------------

Result<PreparedQuery> CypherEngine::Prepare(std::string_view query) {
  GQL_RETURN_IF_ERROR(options_status_);
  auto state = std::make_shared<PreparedStatement>();
  GQL_ASSIGN_OR_RETURN(state->query, ParseQuery(query));
  // Analysis runs on the original tree so diagnostics mention the
  // literals the user wrote, not synthetic parameters.
  GQL_ASSIGN_OR_RETURN(state->info, Analyze(state->query));
  for (const auto& part : state->query.parts) {
    for (const auto& c : part.clauses) {
      if (c->kind == ast::Clause::Kind::kReturnGraph) {
        state->has_return_graph = true;
      }
    }
  }
  // Canonicalize only when a cached plan can actually use it: updating
  // and RETURN GRAPH queries run on the interpreter (where keeping the
  // user's literals also keeps diagnostics in their terms), and with the
  // cache off the rewrite+unparse would be pure overhead on every
  // Execute(text) call. A statement prepared while the cache is off
  // stays uncached (text_key empty) even if the cache is enabled later.
  bool cacheable = !state->info.updating && !state->has_return_graph &&
                   options_.mode == ExecutionMode::kVolcano &&
                   options_.use_plan_cache && plan_cache_.capacity() > 0;
  if (cacheable) {
    state->constants = AutoParameterize(&state->query).extracted;
    state->text_key = NormalizedQueryKey(state->query);
  }
  return PreparedQuery(PreparedPtr(std::move(state)));
}

Result<QueryResult> CypherEngine::Execute(std::string_view query,
                                          const ValueMap& params) {
  GQL_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(query));
  return Execute(prepared, params);
}

Result<QueryResult> CypherEngine::Execute(const PreparedQuery& prepared,
                                          const ValueMap& params) {
  return ExecuteWith(prepared, params, /*session_rand=*/nullptr);
}

Result<QueryResult> CypherEngine::Run(const QueryRequest& req) {
  PreparedQuery prepared = req.prepared;
  if (!prepared.valid()) {
    GQL_ASSIGN_OR_RETURN(prepared, Prepare(req.text));
  }
  if (req.graph != nullptr) {
    // Caller-pinned binding: execute directly against it, outside the
    // auto-commit transaction wrapper (the caller owns the pin's
    // consistency story, as Session does for transactions).
    return ExecuteOn(prepared, req.params, req.graph);
  }
  return ExecuteWith(prepared, req.params, /*session_rand=*/nullptr);
}

Result<QueryResult> CypherEngine::ExecuteWith(const PreparedQuery& prepared,
                                              const ValueMap& params,
                                              uint64_t* session_rand) {
  GQL_RETURN_IF_ERROR(options_status_);
  if (!prepared.valid()) {
    return Status::InvalidArgument("executing an empty PreparedQuery");
  }
  if (prepared.state_->info.updating) {
    // Auto-commit write: wait for the single-writer slot, apply to the
    // live head, commit. Commit also on error — a failed statement may
    // have applied partial effects (pre-session behavior); explicit
    // Session transactions get Rollback instead.
    GQL_ASSIGN_OR_RETURN(GraphPtr live, AcquireWriter(/*wait=*/true));
    Result<QueryResult> result = ExecuteOn(prepared, params, live,
                                           session_rand);
    Status committed = CommitWriter();
    if (result.ok() && !committed.ok()) return committed;
    return result;
  }
  // Read statement: execute against the committed-state snapshot. The
  // binding is resolved here, once — a concurrent set_default_graph
  // cannot rebind the statement mid-flight.
  return ExecuteOn(prepared, params, ReadSnapshot(), session_rand);
}

Result<QueryResult> CypherEngine::ExecuteOn(
    const PreparedQuery& prepared, const ValueMap& params,
    const GraphPtr& graph, uint64_t* session_rand,
    std::shared_ptr<const CatalogSnapshot> pinned_catalog) {
  const PreparedStatement& st = *prepared.state_;
  bool interpreted = st.info.updating || st.has_return_graph ||
                     options_.mode == ExecutionMode::kInterpreter;
  if (st.constants.empty()) {
    // Nothing was extracted — run on the caller's map directly (the
    // common case for fully-parameterized and non-cacheable statements).
    if (interpreted) {
      return RunInterpreter(st.query, params, graph, session_rand,
                            std::move(pinned_catalog));
    }
    return RunVolcano(prepared.state_, params, graph, session_rand,
                      std::move(pinned_catalog));
  }
  // User parameters first, then the literals extracted at Prepare time.
  // Synthetic names never collide with parameters referenced by the
  // query, so the overlay cannot shadow a binding the query can see.
  ValueMap merged = params;
  for (const auto& [name, value] : st.constants) {
    merged[name] = value;
  }
  if (interpreted) {
    return RunInterpreter(st.query, merged, graph, session_rand,
                          std::move(pinned_catalog));
  }
  return RunVolcano(prepared.state_, merged, graph, session_rand,
                    std::move(pinned_catalog));
}

Result<QueryResult> CypherEngine::RunVolcano(
    const PreparedPtr& prepared, const ValueMap& params,
    const GraphPtr& graph, uint64_t* session_rand,
    std::shared_ptr<const CatalogSnapshot> pinned_catalog) {
  CatalogRef cref(&catalog_, pinned_catalog);
  QueryResult result;
  {
    MutexLock lock(&stats_mu_);
    ++exec_queries_;  // counts attempts, like the serial-era counter
  }
  WorkerPool* pool = options_.num_threads > 1 ? EnsureWorkerPool() : nullptr;
  // Per-execution counters accumulate into locals and fold into the
  // guarded cumulative stats once at the end, so a monitoring thread can
  // read exec_stats()/parallel_stats() while the query runs.
  BatchStats run_stats;
  ParallelRunStats prun;
  std::string serial_reason;
  RandScope rand(this, session_rand);
  if (!options_.use_plan_cache || plan_cache_.capacity() == 0 ||
      prepared->text_key.empty()) {
    if (pool != nullptr) {
      // RunPlanned may take the parallel runtime internally; sessions
      // take turns on the shared pool.
      MutexLock plock(&pool_exec_mu_);
      GQL_ASSIGN_OR_RETURN(
          result.table,
          RunPlanned(cref, graph, &params, MakePlannerOptions(),
                     rand.get(), prepared->query, &run_stats, pool, &prun,
                     &serial_reason));
    } else {
      GQL_ASSIGN_OR_RETURN(
          result.table,
          RunPlanned(cref, graph, &params, MakePlannerOptions(),
                     rand.get(), prepared->query, &run_stats, nullptr, &prun));
    }
    FoldRunStats(run_stats, prun);
    RecordSerialFallback(serial_reason);
    return result;
  }
  // Transactions with a pinned catalog validate (and insert) against the
  // snapshot's version: a plan cached under a newer binding is never
  // served to an older-pinned reader, and vice versa.
  uint64_t cat_version = cref.version();
  // A catalog-version move strands every older entry (they can never
  // validate again); sweep them now so the graphs they pin are released
  // promptly rather than on LRU eviction. Skipped under a pinned
  // catalog: the pinned version may legitimately trail the live one, and
  // sweeping by it would evict entries current transactions still
  // validate.
  bool sweep = false;
  if (!cref.pinned()) {
    MutexLock lock(&stats_mu_);
    if (cat_version != swept_catalog_version_) {
      swept_catalog_version_ = cat_version;
      sweep = true;
    }
  }
  if (sweep) {
    plan_cache_.SweepStale(cat_version, graph->stats_version(),
                           graph->data_version());
  }
  std::string key = prepared->text_key + OptionsFingerprint();
  bool busy = false;
  PlanCache::EntryPtr entry =
      plan_cache_.Acquire(key, cat_version, graph->stats_version(),
                          graph->data_version(), &busy);
  EntryReleaser releaser{&plan_cache_, entry};
  Plan local_plan;
  if (entry == nullptr) {
    Planner planner(cref, graph, &params, MakePlannerOptions(), rand.get());
    GQL_ASSIGN_OR_RETURN(local_plan, planner.PlanQuery(prepared->query));
    if (!busy) {
      // Snapshot generations AFTER planning: FROM GRAPH ... AT "url" may
      // register a graph name while planning, bumping the catalog
      // version. Contexts planned against this execution's default-graph
      // snapshot are flagged: later executions validate them against
      // (and rebind them to) THEIR snapshot.
      std::vector<PlanCache::GraphGuard> guards;
      std::vector<bool> default_ctx;
      guards.reserve(local_plan.contexts.size());
      default_ctx.reserve(local_plan.contexts.size());
      for (const auto& ctx : local_plan.contexts) {
        guards.push_back({ctx->graph_owner, ctx->graph_owner->stats_version(),
                          ctx->graph_owner->data_version()});
        default_ctx.push_back(ctx->graph_owner == graph);
      }
      cat_version = cref.version();
      entry = plan_cache_.InsertAcquire(std::move(key), prepared,
                                        std::move(local_plan), cat_version,
                                        std::move(guards),
                                        std::move(default_ctx));
      releaser.entry = entry;
    }
    // else: the cached entry is mid-execution in another session; run
    // the fresh plan uncached (its contexts are already bound to this
    // execution's graph, params and PRNG).
  }
  Plan* plan = &local_plan;
  if (entry != nullptr) {
    plan = &entry->plan;
    // Rebind execution-scoped state: this execution's parameter
    // bindings, PRNG checkout, and — for default-graph contexts — this
    // transaction's snapshot. The pin guarantees exclusivity.
    for (size_t i = 0; i < entry->plan.contexts.size(); ++i) {
      auto& ctx = entry->plan.contexts[i];
      ctx->eval.parameters = &params;
      ctx->eval.rand_state = rand.get();
      if (i < entry->default_ctx.size() && entry->default_ctx[i]) {
        ctx->graph = graph.get();
        ctx->graph_owner = graph;
        ctx->eval.graph = graph.get();
      }
    }
  }
  if (pool != nullptr && plan->parallel.safe) {
    MutexLock plock(&pool_exec_mu_);
    GQL_ASSIGN_OR_RETURN(result.table,
                         ExecutePlanParallel(plan, pool, options_.batch_size,
                                             &run_stats, &prun));
  } else {
    if (pool != nullptr) serial_reason = plan->parallel.reason;
    GQL_ASSIGN_OR_RETURN(
        result.table, ExecutePlan(plan, options_.batch_size, &run_stats));
  }
  FoldRunStats(run_stats, prun);
  RecordSerialFallback(serial_reason);
  return result;
}

Result<QueryResult> CypherEngine::RunInterpreter(
    const ast::Query& q, const ValueMap& params, const GraphPtr& graph,
    uint64_t* session_rand,
    std::shared_ptr<const CatalogSnapshot> pinned_catalog) {
  QueryResult result;
  RandScope rand(this, session_rand);
  Interpreter::Options iopts;
  iopts.match = MakeMatchOptions();
  Interpreter interp(CatalogRef(&catalog_, std::move(pinned_catalog)), graph,
                     &params, iopts, rand.get());
  MatchOptions match = MakeMatchOptions();
  uint64_t* rand_state = rand.get();
  interp.set_update_handler([&interp, &params, &result, match, rand_state](
                                const ast::Clause& c,
                                Table t) -> Result<Table> {
    UpdateExecutor upd(interp.current_graph().get(), &params, match,
                       rand_state, &result.stats);
    return upd.Execute(c, std::move(t));
  });
  GQL_ASSIGN_OR_RETURN(result.table, interp.ExecuteQuery(q));
  result.graphs = interp.produced_graphs();
  return result;
}

Result<std::string> CypherEngine::Profile(std::string_view query,
                                          const ValueMap& params) {
  GQL_RETURN_IF_ERROR(options_status_);
  GQL_ASSIGN_OR_RETURN(ast::Query q, ParseQuery(query));
  GQL_ASSIGN_OR_RETURN(QueryInfo info, Analyze(q));
  if (info.updating) {
    return Status::Unimplemented(
        "PROFILE of updating queries is not supported");
  }
  GraphPtr snapshot = ReadSnapshot();
  RandScope rand(this);
  Planner planner(&catalog_, snapshot, &params, MakePlannerOptions(),
                  rand.get());
  GQL_ASSIGN_OR_RETURN(Plan plan, planner.PlanQuery(q));
  {
    MutexLock lock(&stats_mu_);
    ++exec_queries_;
  }
  Table t;
  std::string head;
  BatchStats run_stats;
  ParallelRunStats prun;
  if (options_.num_threads > 1 && plan.parallel.safe) {
    WorkerPool* pool = EnsureWorkerPool();
    {
      MutexLock plock(&pool_exec_mu_);
      GQL_ASSIGN_OR_RETURN(t, ExecutePlanParallel(&plan, pool,
                                                  options_.batch_size,
                                                  &run_stats, &prun));
    }
    // Fold every worker instance's counters into the printed tree.
    for (const OperatorPtr& instance : plan.extra_roots) {
      plan.root->AbsorbCounters(*instance);
    }
    head = "Parallel: " + std::to_string(prun.workers) + " workers, " +
           std::to_string(prun.morsels) + " morsels dispatched, " +
           std::to_string(prun.merge_tasks) + " merge tasks, " +
           plan.parallel.merge_shape +
           " (the merge-point projection runs in the merge stage; its "
           "tree counters stay 0)\n";
  } else {
    GQL_ASSIGN_OR_RETURN(
        t, ExecutePlan(&plan, options_.batch_size, &run_stats));
    if (options_.num_threads > 1) {
      head = "Parallel: serial (" + plan.parallel.reason + ")\n";
      RecordSerialFallback(plan.parallel.reason);
    }
  }
  FoldRunStats(run_stats, prun);
  std::string out = head + ProfilePlan(*plan.root);
  out += "result: " + std::to_string(t.NumRows()) + " rows\n";
  return out;
}

Result<std::string> CypherEngine::Explain(std::string_view query,
                                          const ValueMap& params) {
  GQL_RETURN_IF_ERROR(options_status_);
  GQL_ASSIGN_OR_RETURN(ast::Query q, ParseQuery(query));
  GQL_ASSIGN_OR_RETURN(QueryInfo info, Analyze(q));
  if (info.updating) {
    return Status::Unimplemented(
        "EXPLAIN of updating queries is not supported (they run on the "
        "clause interpreter)");
  }
  RandScope rand(this);
  return ExplainQuery(&catalog_, ReadSnapshot(), &params,
                      MakePlannerOptions(), rand.get(), q);
}

}  // namespace gqlite
