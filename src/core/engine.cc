#include "src/core/engine.h"

#include "src/frontend/analyzer.h"
#include "src/frontend/parser.h"
#include "src/interp/interpreter.h"
#include "src/plan/runtime.h"

namespace gqlite {

CypherEngine::CypherEngine(EngineOptions options)
    : options_(options), rand_state_(options.rand_seed) {
  graph_ = catalog_.default_graph();
}

MatchOptions CypherEngine::MakeMatchOptions() const {
  MatchOptions m;
  m.morphism = options_.morphism;
  m.max_var_length = options_.max_var_length;
  return m;
}

Result<QueryResult> CypherEngine::Execute(std::string_view query,
                                          const ValueMap& params) {
  GQL_ASSIGN_OR_RETURN(ast::Query q, ParseQuery(query));
  GQL_ASSIGN_OR_RETURN(QueryInfo info, Analyze(q));

  QueryResult result;

  bool has_return_graph = false;
  for (const auto& part : q.parts) {
    for (const auto& c : part.clauses) {
      if (c->kind == ast::Clause::Kind::kReturnGraph) has_return_graph = true;
    }
  }

  if (!info.updating && !has_return_graph &&
      options_.mode == ExecutionMode::kVolcano) {
    PlannerOptions popts;
    popts.mode = options_.planner;
    popts.use_join_expand = options_.use_join_expand;
    popts.match = MakeMatchOptions();
    GQL_ASSIGN_OR_RETURN(result.table,
                         RunPlanned(&catalog_, graph_, &params, popts,
                                    &rand_state_, q));
    return result;
  }

  // Interpreter path: the reference semantics; also the only executor for
  // updating queries and graph projections.
  Interpreter::Options iopts;
  iopts.match = MakeMatchOptions();
  Interpreter interp(&catalog_, graph_, &params, iopts, &rand_state_);
  MatchOptions match = MakeMatchOptions();
  interp.set_update_handler([&](const ast::Clause& c,
                                Table t) -> Result<Table> {
    UpdateExecutor upd(interp.current_graph().get(), &params, match,
                       &rand_state_, &result.stats);
    return upd.Execute(c, std::move(t));
  });
  GQL_ASSIGN_OR_RETURN(result.table, interp.ExecuteQuery(q));
  result.graphs = interp.produced_graphs();
  return result;
}

Result<std::string> CypherEngine::Profile(std::string_view query,
                                          const ValueMap& params) {
  GQL_ASSIGN_OR_RETURN(ast::Query q, ParseQuery(query));
  GQL_ASSIGN_OR_RETURN(QueryInfo info, Analyze(q));
  if (info.updating) {
    return Status::Unimplemented(
        "PROFILE of updating queries is not supported");
  }
  PlannerOptions popts;
  popts.mode = options_.planner;
  popts.use_join_expand = options_.use_join_expand;
  popts.match = MakeMatchOptions();
  Planner planner(&catalog_, graph_, &params, popts, &rand_state_);
  GQL_ASSIGN_OR_RETURN(Plan plan, planner.PlanQuery(q));
  GQL_ASSIGN_OR_RETURN(Table t, ExecutePlan(&plan));
  std::string out = ProfilePlan(*plan.root);
  out += "result: " + std::to_string(t.NumRows()) + " rows\n";
  return out;
}

Result<std::string> CypherEngine::Explain(std::string_view query,
                                          const ValueMap& params) {
  GQL_ASSIGN_OR_RETURN(ast::Query q, ParseQuery(query));
  GQL_ASSIGN_OR_RETURN(QueryInfo info, Analyze(q));
  if (info.updating) {
    return Status::Unimplemented(
        "EXPLAIN of updating queries is not supported (they run on the "
        "clause interpreter)");
  }
  PlannerOptions popts;
  popts.mode = options_.planner;
  popts.use_join_expand = options_.use_join_expand;
  popts.match = MakeMatchOptions();
  return ExplainQuery(&catalog_, graph_, &params, popts, &rand_state_, q);
}

}  // namespace gqlite
