#ifndef GQLITE_CORE_DATABASE_H_
#define GQLITE_CORE_DATABASE_H_

#include <memory>
#include <string>
#include <string_view>

#include "src/core/engine.h"
#include "src/core/session.h"

namespace gqlite {

/// The public entry point of gqlite: a database handle that owns the
/// query engine and decides where the data lives.
///
/// ```
/// GQL_ASSIGN_OR_RETURN(Database db, Database::Open("/path/to/db"));
/// db.Execute("CREATE (:Person {name: 'Ada'})");  // durable on return
/// auto result = db.Execute("MATCH (p:Person) RETURN p.name");
/// db.Checkpoint();  // fold the log into a fast-loading baseline
/// ```
///
/// Open(path) backs the database with a directory: every committed
/// write is appended to a write-ahead log and fsync'd before the call
/// returns, and reopening the same path recovers the exact committed
/// state (latest checkpoint plus WAL replay; torn tails from a crash
/// are discarded). OpenInMemory() keeps everything in RAM — same API,
/// no files, Checkpoint() a no-op.
///
/// The engine underneath (CypherEngine) is an internal layer: sessions,
/// transactions, plan caching and parallel execution all behave exactly
/// as documented there, and engine() exposes it for introspection
/// (stats, plan cache, catalog). Constructing a CypherEngine directly
/// is reserved to src/core/ and tests (lint-enforced) — everything
/// else opens a Database.
///
/// A Database is movable, not copyable. Destruction closes it (flushing
/// any setup-API writes that bypassed a transaction); call Close()
/// explicitly to observe the final flush status. The Database must
/// outlive every Session it created.
class Database {
 public:
  /// Opens (creating on first use) a durable database rooted at the
  /// directory `path` and recovers its committed state.
  static Result<Database> Open(const std::string& path,
                               EngineOptions options = {});
  /// Opens a database with no persistence at all.
  static Result<Database> OpenInMemory(EngineOptions options = {});

  Database(Database&&) noexcept = default;
  /// Move-assignment closes the database being replaced first (same
  /// best-effort flush as the destructor; use Close() beforehand to
  /// observe its status).
  Database& operator=(Database&& other) noexcept {
    if (this != &other) {
      (void)Close();
      engine_ = std::move(other.engine_);
    }
    return *this;
  }
  ~Database();

  /// Opens a session for multi-statement transactions (see Session).
  std::unique_ptr<Session> CreateSession() { return engine_->CreateSession(); }

  /// Parses, validates and runs a statement (auto-commit: an updating
  /// statement is durable when the call returns OK).
  Result<QueryResult> Execute(std::string_view query,
                              const ValueMap& params = {}) {
    return engine_->Execute(query, params);
  }
  Result<QueryResult> Execute(const PreparedQuery& prepared,
                              const ValueMap& params = {}) {
    return engine_->Execute(prepared, params);
  }
  /// Parses, validates and auto-parameterizes a statement without
  /// running it.
  Result<PreparedQuery> Prepare(std::string_view query) {
    return engine_->Prepare(query);
  }
  /// Structured single-statement execution (see QueryRequest).
  Result<QueryResult> Run(const QueryRequest& req) {
    return engine_->Run(req);
  }
  /// Renders the physical plan for a read query.
  Result<std::string> Explain(std::string_view query,
                              const ValueMap& params = {}) {
    return engine_->Explain(query, params);
  }
  /// Executes a read query and renders the plan with row counters.
  Result<std::string> Profile(std::string_view query,
                              const ValueMap& params = {}) {
    return engine_->Profile(query, params);
  }

  /// Registers a named graph in the catalog (`FROM GRAPH name ...`).
  /// Named graphs are NOT persisted — only the default graph is WAL-
  /// backed; re-register them after reopening.
  void RegisterGraph(const std::string& name, GraphPtr g) {
    engine_->RegisterGraph(name, std::move(g));
  }
  /// Registers a graph under an external URL (FROM GRAPH ... AT "url").
  /// Like named graphs, URL bindings are not persisted.
  void RegisterUrl(const std::string& url, GraphPtr g) {
    engine_->RegisterUrl(url, std::move(g));
  }

  /// Serializes the committed state as a new recovery baseline and
  /// truncates the write-ahead log, making the next Open load the
  /// checkpoint instead of replaying history. No-op in memory.
  Status Checkpoint() { return engine_->Checkpoint(); }
  /// Flushes and closes the storage layer; later writes fail. The
  /// handle stays valid for reads of the in-memory state.
  Status Close();

  /// The engine underneath — introspection (stats, plan cache, catalog,
  /// options) and named-graph registration.
  CypherEngine& engine() { return *engine_; }
  /// Direct access to the default graph: a single-caller setup API that
  /// bypasses transactions (fixture loading). Writes made through it
  /// become durable at the next transaction boundary (or Checkpoint/
  /// Close), not immediately.
  PropertyGraph& graph() { return engine_->graph(); }

 private:
  explicit Database(EngineOptions options)
      : engine_(std::make_unique<CypherEngine>(options)) {}

  std::unique_ptr<CypherEngine> engine_;
};

}  // namespace gqlite

#endif  // GQLITE_CORE_DATABASE_H_
