#ifndef GQLITE_UPDATE_UPDATE_EXECUTOR_H_
#define GQLITE_UPDATE_UPDATE_EXECUTOR_H_

#include <cstdint>
#include <string>

#include "src/interp/table.h"
#include "src/pattern/matcher.h"

namespace gqlite {

/// Counters reported after an updating query (the familiar "Added 3
/// nodes, created 2 relationships…" summary).
struct UpdateStats {
  int64_t nodes_created = 0;
  int64_t nodes_deleted = 0;
  int64_t rels_created = 0;
  int64_t rels_deleted = 0;
  int64_t properties_set = 0;
  int64_t labels_added = 0;
  int64_t labels_removed = 0;

  bool Any() const {
    return nodes_created || nodes_deleted || rels_created || rels_deleted ||
           properties_set || labels_added || labels_removed;
  }
  std::string ToString() const;
};

/// Executes the update language of §2 ("Data modification"): CREATE,
/// DELETE / DETACH DELETE, SET, REMOVE and MERGE. Update clauses re-use
/// the visual graph-pattern language and the same top-down table-driven
/// model as read clauses: each takes the driving table and processes it
/// row by row, extending rows with newly created entities.
class UpdateExecutor {
 public:
  UpdateExecutor(PropertyGraph* graph, const ValueMap* params,
                 const MatchOptions& match_opts, uint64_t* rand_state,
                 UpdateStats* stats)
      : graph_(graph),
        params_(params),
        match_opts_(match_opts),
        rand_state_(rand_state),
        stats_(stats) {}

  /// Dispatches one updating clause (plugs into
  /// Interpreter::set_update_handler).
  Result<Table> Execute(const ast::Clause& c, Table input);

 private:
  EvalContext MakeEvalContext() const;

  Result<Table> ExecCreate(const ast::CreateClause& c, Table input);
  Result<Table> ExecDelete(const ast::DeleteClause& c, Table input);
  Result<Table> ExecSet(const ast::SetClause& c, Table input);
  Result<Table> ExecRemove(const ast::RemoveClause& c, Table input);
  Result<Table> ExecMerge(const ast::MergeClause& c, Table input);

  /// Instantiates a pattern tuple for one row, creating nodes and
  /// relationships (variables shared across the tuple's paths resolve to
  /// the same entity); appends values for `new_cols` to `row`.
  Status CreatePattern(const ast::Pattern& pattern, const Table& table,
                       ValueList* row,
                       const std::vector<std::string>& new_cols);

  Status ApplySetItems(const std::vector<ast::SetItem>& items,
                       const Table& table, const ValueList& row);

  Status DeleteValue(const Value& v, bool detach);

  PropertyGraph* graph_;
  const ValueMap* params_;
  MatchOptions match_opts_;
  uint64_t* rand_state_;
  UpdateStats* stats_;
};

}  // namespace gqlite

#endif  // GQLITE_UPDATE_UPDATE_EXECUTOR_H_
