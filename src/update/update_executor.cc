#include "src/update/update_executor.h"

#include <map>

namespace gqlite {

using namespace ast;  // NOLINT(build/namespaces)

std::string UpdateStats::ToString() const {
  std::string out;
  auto add = [&](int64_t n, const char* what) {
    if (n == 0) return;
    if (!out.empty()) out += ", ";
    out += std::to_string(n) + " " + what;
  };
  add(nodes_created, "nodes created");
  add(rels_created, "relationships created");
  add(properties_set, "properties set");
  add(labels_added, "labels added");
  add(nodes_deleted, "nodes deleted");
  add(rels_deleted, "relationships deleted");
  add(labels_removed, "labels removed");
  if (out.empty()) out = "no changes";
  return out;
}

EvalContext UpdateExecutor::MakeEvalContext() const {
  EvalContext ctx;
  ctx.graph = graph_;
  ctx.parameters = params_;
  ctx.rand_state = rand_state_;
  const PropertyGraph* g = graph_;
  const MatchOptions* opts = &match_opts_;
  const ValueMap* params = params_;
  uint64_t* rand_state = rand_state_;
  ctx.pattern_predicate = [g, opts, params, rand_state](
                              const Pattern& p,
                              const Environment& env) -> Result<bool> {
    EvalContext inner;
    inner.graph = g;
    inner.parameters = params;
    inner.rand_state = rand_state;
    return ExistsMatch(p, *g, env, inner, *opts);
  };
  return ctx;
}

Result<Table> UpdateExecutor::Execute(const Clause& c, Table input) {
  switch (c.kind) {
    case Clause::Kind::kCreate:
      return ExecCreate(static_cast<const CreateClause&>(c),
                        std::move(input));
    case Clause::Kind::kDelete:
      return ExecDelete(static_cast<const DeleteClause&>(c),
                        std::move(input));
    case Clause::Kind::kSet:
      return ExecSet(static_cast<const SetClause&>(c), std::move(input));
    case Clause::Kind::kRemove:
      return ExecRemove(static_cast<const RemoveClause&>(c),
                        std::move(input));
    case Clause::Kind::kMerge:
      return ExecMerge(static_cast<const MergeClause&>(c), std::move(input));
    default:
      return Status::Internal("not an updating clause");
  }
}

namespace {

/// Evaluates the properties of a node/relationship pattern into a
/// PropertyList (each key has its own expression).
Result<PropertyList> EvalProps(
    const std::vector<std::pair<std::string, ExprPtr>>& props,
    const Environment& env, const EvalContext& ctx) {
  PropertyList out;
  for (const auto& [k, e] : props) {
    GQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*e, env, ctx));
    out.emplace_back(k, std::move(v));
  }
  return out;
}

/// Collects the variables a CREATE/MERGE pattern would newly bind.
std::vector<std::string> NewVars(const Pattern& p, const Table& table) {
  std::vector<std::string> out;
  for (const std::string& v : PatternVariables(p)) {
    if (table.FieldIndex(v) < 0) out.push_back(v);
  }
  return out;
}

}  // namespace

Status UpdateExecutor::CreatePattern(const Pattern& pattern,
                                     const Table& table, ValueList* row,
                                     const std::vector<std::string>& new_cols) {
  EvalContext ctx = MakeEvalContext();
  // Local bindings: the row's fields plus entities created so far in this
  // pattern instantiation (shared across paths, so CREATE (a)-[:T]->(b),
  // (b)-[:U]->(c) wires b once).
  std::map<std::string, Value> locals;
  class Env : public Environment {
   public:
    Env(const Table& t, const ValueList& r,
        const std::map<std::string, Value>& l)
        : t_(t), r_(r), l_(l) {}
    const Value* Lookup(const std::string& name) const override {
      auto it = l_.find(name);
      if (it != l_.end()) return &it->second;
      int i = t_.FieldIndex(name);
      if (i < 0) return nullptr;
      return &r_[i];
    }

   private:
    const Table& t_;
    const ValueList& r_;
    const std::map<std::string, Value>& l_;
  } env(table, *row, locals);

  auto resolve_node = [&](const NodePattern& np) -> Result<NodeId> {
    if (np.var) {
      const Value* bound = env.Lookup(*np.var);
      if (bound != nullptr) {
        if (!bound->is_node()) {
          return Status::TypeError("CREATE endpoint `" + *np.var +
                                   "` is not a node");
        }
        if (!graph_->IsNodeAlive(bound->AsNode())) {
          return Status::EvaluationError(
              "cannot create relationship to a deleted node");
        }
        return bound->AsNode();
      }
    }
    GQL_ASSIGN_OR_RETURN(PropertyList props,
                         EvalProps(np.properties, env, ctx));
    NodeId n = graph_->CreateNode(np.labels, props);
    ++stats_->nodes_created;
    stats_->properties_set += static_cast<int64_t>(props.size());
    stats_->labels_added += static_cast<int64_t>(np.labels.size());
    if (np.var) locals[*np.var] = Value::Node(n);
    return n;
  };

  for (const auto& path : pattern.paths) {
    Path path_value;
    GQL_ASSIGN_OR_RETURN(NodeId prev, resolve_node(path.start));
    path_value.nodes.push_back(prev);
    for (const auto& hop : path.hops) {
      GQL_ASSIGN_OR_RETURN(NodeId next, resolve_node(hop.node));
      GQL_ASSIGN_OR_RETURN(PropertyList props,
                           EvalProps(hop.rel.properties, env, ctx));
      NodeId from = prev;
      NodeId to = next;
      if (hop.rel.direction == Direction::kLeft) std::swap(from, to);
      GQL_ASSIGN_OR_RETURN(
          RelId r,
          graph_->CreateRelationship(from, to, hop.rel.types[0], props));
      ++stats_->rels_created;
      stats_->properties_set += static_cast<int64_t>(props.size());
      if (hop.rel.var) locals[*hop.rel.var] = Value::Relationship(r);
      path_value.nodes.push_back(next);
      path_value.rels.push_back(r);
      prev = next;
    }
    if (path.path_var) {
      locals[*path.path_var] = Value::MakePath(std::move(path_value));
    }
  }

  for (const std::string& col : new_cols) {
    auto it = locals.find(col);
    if (it != locals.end()) {
      row->push_back(it->second);
    } else {
      return Status::Internal("CREATE did not bind `" + col + "`");
    }
  }
  return Status::OK();
}

Result<Table> UpdateExecutor::ExecCreate(const CreateClause& c, Table input) {
  std::vector<std::string> new_cols = NewVars(c.pattern, input);
  std::vector<std::string> fields = input.fields();
  for (const auto& v : new_cols) fields.push_back(v);
  Table output(fields);
  for (const auto& row : input.rows()) {
    ValueList out_row = row;
    GQL_RETURN_IF_ERROR(CreatePattern(c.pattern, input, &out_row, new_cols));
    output.AddRow(std::move(out_row));
  }
  return output;
}

Status UpdateExecutor::DeleteValue(const Value& v, bool detach) {
  if (v.is_null()) return Status::OK();
  if (v.is_node()) {
    NodeId n = v.AsNode();
    if (!graph_->IsNodeAlive(n)) return Status::OK();  // already deleted
    if (!detach && graph_->Degree(n) > 0) {
      return Status::EvaluationError(
          "cannot delete node with relationships; use DETACH DELETE");
    }
    if (detach) {
      // Count what DetachDeleteNode actually removes — the pre-delete
      // Degree over-counted self-loops (they appear in both adjacency
      // directions) and relationships already removed when the other
      // endpoint was DETACH DELETEd earlier in the same statement.
      GQL_ASSIGN_OR_RETURN(int64_t removed, graph_->DetachDeleteNode(n));
      stats_->rels_deleted += removed;
    } else {
      GQL_RETURN_IF_ERROR(graph_->DeleteNode(n));
    }
    ++stats_->nodes_deleted;
    return Status::OK();
  }
  if (v.is_relationship()) {
    RelId r = v.AsRelationship();
    if (!graph_->IsRelAlive(r)) return Status::OK();
    GQL_RETURN_IF_ERROR(graph_->DeleteRelationship(r));
    ++stats_->rels_deleted;
    return Status::OK();
  }
  if (v.is_path()) {
    const Path& p = v.AsPath();
    for (RelId r : p.rels) {
      if (graph_->IsRelAlive(r)) {
        GQL_RETURN_IF_ERROR(graph_->DeleteRelationship(r));
        ++stats_->rels_deleted;
      }
    }
    for (NodeId n : p.nodes) {
      GQL_RETURN_IF_ERROR(DeleteValue(Value::Node(n), detach));
    }
    return Status::OK();
  }
  return Status::TypeError("DELETE requires nodes, relationships or paths");
}

Result<Table> UpdateExecutor::ExecDelete(const DeleteClause& c, Table input) {
  EvalContext ctx = MakeEvalContext();
  for (const auto& row : input.rows()) {
    RowEnvironment env(input, row);
    for (const auto& e : c.exprs) {
      GQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*e, env, ctx));
      GQL_RETURN_IF_ERROR(DeleteValue(v, c.detach));
    }
  }
  return input;
}

Status UpdateExecutor::ApplySetItems(const std::vector<SetItem>& items,
                                     const Table& table,
                                     const ValueList& row) {
  EvalContext ctx = MakeEvalContext();
  RowEnvironment env(table, row);
  for (const auto& item : items) {
    switch (item.kind) {
      case SetItem::Kind::kProperty: {
        const auto& target = static_cast<const PropertyExpr&>(*item.target);
        GQL_ASSIGN_OR_RETURN(Value obj,
                             EvaluateExpr(*target.object, env, ctx));
        if (obj.is_null()) break;  // SET on null is a no-op
        GQL_ASSIGN_OR_RETURN(Value val, EvaluateExpr(*item.value, env, ctx));
        if (obj.is_node()) {
          stats_->properties_set +=
              graph_->SetNodeProperty(obj.AsNode(), target.key, val);
        } else if (obj.is_relationship()) {
          stats_->properties_set += graph_->SetRelProperty(
              obj.AsRelationship(), target.key, val);
        } else {
          return Status::TypeError(
              "SET property target must be a node or relationship");
        }
        break;
      }
      case SetItem::Kind::kReplaceProps:
      case SetItem::Kind::kMergeProps: {
        const Value* obj = env.Lookup(item.var);
        if (obj == nullptr || obj->is_null()) break;
        GQL_ASSIGN_OR_RETURN(Value val, EvaluateExpr(*item.value, env, ctx));
        ValueMap new_props;
        if (val.is_map()) {
          new_props = val.AsMap();
        } else if (val.is_node()) {
          new_props = graph_->NodeProperties(val.AsNode());
        } else if (val.is_relationship()) {
          new_props = graph_->RelProperties(val.AsRelationship());
        } else {
          return Status::TypeError(
              "SET " + item.var +
              " = ... requires a map, node or relationship value");
        }
        auto apply = [&](auto setter, auto current_keys) {
          if (item.kind == SetItem::Kind::kReplaceProps) {
            for (const std::string& k : current_keys) {
              if (new_props.find(k) == new_props.end()) {
                stats_->properties_set += setter(k, Value::Null());
              }
            }
          }
          for (const auto& [k, v] : new_props) {
            stats_->properties_set += setter(k, v);
          }
        };
        if (obj->is_node()) {
          NodeId n = obj->AsNode();
          apply(
              [&](const std::string& k, const Value& v) {
                return graph_->SetNodeProperty(n, k, v);
              },
              graph_->NodePropertyKeys(n));
        } else if (obj->is_relationship()) {
          RelId r = obj->AsRelationship();
          apply(
              [&](const std::string& k, const Value& v) {
                return graph_->SetRelProperty(r, k, v);
              },
              graph_->RelPropertyKeys(r));
        } else {
          return Status::TypeError(
              "SET target must be a node or relationship");
        }
        break;
      }
      case SetItem::Kind::kLabels: {
        const Value* obj = env.Lookup(item.var);
        if (obj == nullptr || obj->is_null()) break;
        if (!obj->is_node()) {
          return Status::TypeError("SET :Label target must be a node");
        }
        for (const auto& l : item.labels) {
          if (graph_->AddLabel(obj->AsNode(), l)) ++stats_->labels_added;
        }
        break;
      }
    }
  }
  return Status::OK();
}

Result<Table> UpdateExecutor::ExecSet(const SetClause& c, Table input) {
  for (const auto& row : input.rows()) {
    GQL_RETURN_IF_ERROR(ApplySetItems(c.items, input, row));
  }
  return input;
}

Result<Table> UpdateExecutor::ExecRemove(const RemoveClause& c, Table input) {
  EvalContext ctx = MakeEvalContext();
  (void)ctx;
  for (const auto& row : input.rows()) {
    RowEnvironment env(input, row);
    for (const auto& item : c.items) {
      const Value* obj = env.Lookup(item.var);
      if (obj == nullptr || obj->is_null()) continue;
      if (item.kind == RemoveItem::Kind::kProperty) {
        if (obj->is_node()) {
          stats_->properties_set +=
              graph_->SetNodeProperty(obj->AsNode(), item.key, Value::Null());
        } else if (obj->is_relationship()) {
          stats_->properties_set += graph_->SetRelProperty(
              obj->AsRelationship(), item.key, Value::Null());
        } else {
          return Status::TypeError(
              "REMOVE property target must be a node or relationship");
        }
      } else {
        if (!obj->is_node()) {
          return Status::TypeError("REMOVE :Label target must be a node");
        }
        for (const auto& l : item.labels) {
          if (graph_->RemoveLabel(obj->AsNode(), l)) {
            ++stats_->labels_removed;
          }
        }
      }
    }
  }
  return input;
}

Result<Table> UpdateExecutor::ExecMerge(const MergeClause& c, Table input) {
  EvalContext ctx = MakeEvalContext();
  Pattern as_tuple;
  as_tuple.paths.push_back(ClonePattern(c.pattern));

  std::vector<std::string> new_cols;
  {
    ValueList empty_row(input.NumFields(), Value::Null());
    RowEnvironment env(input, empty_row);
    new_cols = NewPatternColumns(as_tuple, env);
  }
  std::vector<std::string> fields = input.fields();
  for (const auto& v : new_cols) fields.push_back(v);
  Table output(fields);

  for (const auto& row : input.rows()) {
    RowEnvironment env(input, row);
    size_t before = output.NumRows();
    Status st = MatchPattern(as_tuple, *graph_, env, ctx, match_opts_,
                             new_cols,
                             [&](const BindingRow& bindings) -> Result<bool> {
                               ValueList out_row = row;
                               for (const Value& v : bindings) {
                                 out_row.push_back(v);
                               }
                               output.AddRow(std::move(out_row));
                               return true;
                             });
    GQL_RETURN_IF_ERROR(st);
    if (output.NumRows() == before) {
      // No match: create the pattern (MERGE's "tries to match … and
      // creates the pattern if no match was found", §2), then ON CREATE.
      ValueList out_row = row;
      GQL_RETURN_IF_ERROR(
          CreatePattern(as_tuple, input, &out_row, new_cols));
      output.AddRow(std::move(out_row));
      if (!c.on_create.empty()) {
        GQL_RETURN_IF_ERROR(
            ApplySetItems(c.on_create, output, output.rows().back()));
      }
    } else if (!c.on_match.empty()) {
      for (size_t i = before; i < output.NumRows(); ++i) {
        GQL_RETURN_IF_ERROR(
            ApplySetItems(c.on_match, output, output.rows()[i]));
      }
    }
  }
  return output;
}

}  // namespace gqlite
