#include "src/value/value_format.h"

#include <cmath>
#include <cstdio>

namespace gqlite {

std::string FormatFloat(double d) {
  if (std::isnan(d)) return "NaN";
  if (std::isinf(d)) return d > 0 ? "Infinity" : "-Infinity";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", d);
  std::string s = buf;
  // Ensure a float marker so 2.0 doesn't print as "2".
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
    s += ".0";
  }
  return s;
}

std::string FormatValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return v.AsBool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(v.AsInt());
    case ValueType::kFloat:
      return FormatFloat(v.AsFloat());
    case ValueType::kString: {
      std::string_view s = v.AsString();
      std::string out;
      out.reserve(s.size() + 2);
      out += '\'';
      out += s;
      out += '\'';
      return out;
    }
    case ValueType::kList: {
      std::string out = "[";
      bool first = true;
      for (const Value& e : v.AsList()) {
        if (!first) out += ", ";
        first = false;
        out += FormatValue(e);
      }
      return out + "]";
    }
    case ValueType::kMap: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, val] : v.AsMap()) {
        if (!first) out += ", ";
        first = false;
        out += k + ": " + FormatValue(val);
      }
      return out + "}";
    }
    case ValueType::kNode:
      return "(" + std::to_string(v.AsNode().id) + ")";
    case ValueType::kRelationship:
      return "[:" + std::to_string(v.AsRelationship().id) + "]";
    case ValueType::kPath: {
      const Path& p = v.AsPath();
      std::string out = "<(" + std::to_string(p.nodes[0].id) + ")";
      for (size_t i = 0; i < p.rels.size(); ++i) {
        out += "-[:" + std::to_string(p.rels[i].id) + "]-(" +
               std::to_string(p.nodes[i + 1].id) + ")";
      }
      return out + ">";
    }
    case ValueType::kDate:
      return v.AsDate().ToString();
    case ValueType::kLocalTime:
      return v.AsLocalTime().ToString();
    case ValueType::kTime:
      return v.AsTime().ToString();
    case ValueType::kLocalDateTime:
      return v.AsLocalDateTime().ToString();
    case ValueType::kDateTime:
      return v.AsDateTime().ToString();
    case ValueType::kDuration:
      return v.AsDuration().ToString();
  }
  return "?";
}

}  // namespace gqlite
