#include "src/value/value.h"

#include "src/value/value_format.h"

namespace gqlite {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOLEAN";
    case ValueType::kInt:
      return "INTEGER";
    case ValueType::kFloat:
      return "FLOAT";
    case ValueType::kString:
      return "STRING";
    case ValueType::kList:
      return "LIST";
    case ValueType::kMap:
      return "MAP";
    case ValueType::kNode:
      return "NODE";
    case ValueType::kRelationship:
      return "RELATIONSHIP";
    case ValueType::kPath:
      return "PATH";
    case ValueType::kDate:
      return "DATE";
    case ValueType::kLocalTime:
      return "LOCALTIME";
    case ValueType::kTime:
      return "TIME";
    case ValueType::kLocalDateTime:
      return "LOCALDATETIME";
    case ValueType::kDateTime:
      return "DATETIME";
    case ValueType::kDuration:
      return "DURATION";
  }
  return "UNKNOWN";
}

std::string Value::ToString() const { return FormatValue(*this); }

}  // namespace gqlite
