#ifndef GQLITE_VALUE_VALUE_H_
#define GQLITE_VALUE_VALUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "src/common/status.h"
#include "src/temporal/temporal.h"

namespace gqlite {

/// Strongly-typed node identifier (an element of 𝒩 in the paper's model).
struct NodeId {
  uint64_t id = 0;
  auto operator<=>(const NodeId&) const = default;
};

/// Strongly-typed relationship identifier (an element of ℛ).
struct RelId {
  uint64_t id = 0;
  auto operator<=>(const RelId&) const = default;
};

/// A path value path(n1, r1, n2, ..., r_{m-1}, n_m) per §4.1: alternating
/// node and relationship ids; `nodes.size() == rels.size() + 1`. A
/// single-node path has an empty `rels`.
struct Path {
  std::vector<NodeId> nodes;
  std::vector<RelId> rels;

  size_t length() const { return rels.size(); }
  friend bool operator==(const Path& a, const Path& b) {
    return a.nodes == b.nodes && a.rels == b.rels;
  }
};

/// Discriminator for Value. The order here is NOT the orderability order
/// (see value_compare.h for that).
enum class ValueType : uint8_t {
  kNull = 0,
  kBool,
  kInt,
  kFloat,
  kString,
  kList,
  kMap,
  kNode,
  kRelationship,
  kPath,
  kDate,
  kLocalTime,
  kTime,
  kLocalDateTime,
  kDateTime,
  kDuration,
};

/// Human-readable type name ("INTEGER", "LIST", ...), used in error messages.
const char* ValueTypeName(ValueType t);

class Value;
using ValueList = std::vector<Value>;
/// Maps use std::map for deterministic iteration (printing, comparison).
using ValueMap = std::map<std::string, Value>;

/// A Cypher value (the set 𝒱 of §4.1): null, booleans, integers, strings
/// (we also carry floats as a base type, like every real implementation),
/// lists, maps, node/relationship identifiers, paths, and the Cypher 10
/// temporal types. Lists, maps and paths are shared_ptr-backed so copying
/// a Value is cheap; values are immutable once constructed.
class Value {
 public:
  /// Constructs null.
  Value() : rep_(NullRep{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Rep(b)); }
  static Value Int(int64_t i) { return Value(Rep(i)); }
  static Value Float(double d) { return Value(Rep(d)); }
  static Value String(std::string s) {
    return Value(Rep(std::make_shared<std::string>(std::move(s))));
  }
  static Value MakeList(ValueList items) {
    return Value(Rep(std::make_shared<ValueList>(std::move(items))));
  }
  static Value EmptyList() { return MakeList({}); }
  static Value MakeMap(ValueMap m) {
    return Value(Rep(std::make_shared<ValueMap>(std::move(m))));
  }
  static Value Node(NodeId n) { return Value(Rep(n)); }
  static Value Relationship(RelId r) { return Value(Rep(r)); }
  static Value MakePath(Path p) {
    return Value(Rep(std::make_shared<Path>(std::move(p))));
  }
  static Value Temporal(Date d) { return Value(Rep(d)); }
  static Value Temporal(LocalTime t) { return Value(Rep(t)); }
  static Value Temporal(ZonedTime t) { return Value(Rep(t)); }
  static Value Temporal(LocalDateTime t) { return Value(Rep(t)); }
  static Value Temporal(ZonedDateTime t) { return Value(Rep(t)); }
  static Value Temporal(Duration d) { return Value(Rep(d)); }

  ValueType type() const;

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_float() const { return type() == ValueType::kFloat; }
  bool is_number() const { return is_int() || is_float(); }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_list() const { return type() == ValueType::kList; }
  bool is_map() const { return type() == ValueType::kMap; }
  bool is_node() const { return type() == ValueType::kNode; }
  bool is_relationship() const { return type() == ValueType::kRelationship; }
  bool is_path() const { return type() == ValueType::kPath; }
  bool is_temporal() const {
    ValueType t = type();
    return t >= ValueType::kDate && t <= ValueType::kDuration;
  }

  /// Typed accessors. Preconditions: the value holds that type.
  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsFloat() const { return std::get<double>(rep_); }
  /// Numeric value widened to double (int or float).
  double AsNumber() const {
    return is_int() ? static_cast<double>(AsInt()) : AsFloat();
  }
  const std::string& AsString() const {
    return *std::get<std::shared_ptr<std::string>>(rep_);
  }
  const ValueList& AsList() const {
    return *std::get<std::shared_ptr<ValueList>>(rep_);
  }
  const ValueMap& AsMap() const {
    return *std::get<std::shared_ptr<ValueMap>>(rep_);
  }
  NodeId AsNode() const { return std::get<NodeId>(rep_); }
  RelId AsRelationship() const { return std::get<RelId>(rep_); }
  const Path& AsPath() const { return *std::get<std::shared_ptr<Path>>(rep_); }
  Date AsDate() const { return std::get<Date>(rep_); }
  LocalTime AsLocalTime() const { return std::get<LocalTime>(rep_); }
  ZonedTime AsTime() const { return std::get<ZonedTime>(rep_); }
  LocalDateTime AsLocalDateTime() const {
    return std::get<LocalDateTime>(rep_);
  }
  ZonedDateTime AsDateTime() const { return std::get<ZonedDateTime>(rep_); }
  Duration AsDuration() const { return std::get<Duration>(rep_); }

  /// Display form: `null`, `true`, `'abc'`, `[1, 2]`, `{k: 1}`, `(3)`,
  /// `[:42]`, `<(1)-[:0]->(2)>`, `1984-06-10`. Graph-aware rendering (with
  /// labels and properties) lives in graph/property_graph.h.
  std::string ToString() const;

 private:
  struct NullRep {};

  using Rep = std::variant<NullRep, bool, int64_t, double,
                           std::shared_ptr<std::string>,
                           std::shared_ptr<ValueList>,
                           std::shared_ptr<ValueMap>, NodeId, RelId,
                           std::shared_ptr<Path>, Date, LocalTime, ZonedTime,
                           LocalDateTime, ZonedDateTime, Duration>;

  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

}  // namespace gqlite

#endif  // GQLITE_VALUE_VALUE_H_
