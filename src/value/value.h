#ifndef GQLITE_VALUE_VALUE_H_
#define GQLITE_VALUE_VALUE_H_

#include <compare>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "src/common/status.h"
#include "src/temporal/temporal.h"

namespace gqlite {

/// Strongly-typed node identifier (an element of 𝒩 in the paper's model).
struct NodeId {
  uint64_t id = 0;
  auto operator<=>(const NodeId&) const = default;
};

/// Strongly-typed relationship identifier (an element of ℛ).
struct RelId {
  uint64_t id = 0;
  auto operator<=>(const RelId&) const = default;
};

/// A path value path(n1, r1, n2, ..., r_{m-1}, n_m) per §4.1: alternating
/// node and relationship ids; `nodes.size() == rels.size() + 1`. A
/// single-node path has an empty `rels`.
///
/// Equality and ordering are the defaulted lexicographic member
/// comparison; the Cypher ORDER BY ordering of paths (length first) lives
/// in ValueOrder, not here — hash/equality (value_compare.h) must agree
/// with THIS operator==, which the property test in test_value.cc pins.
struct Path {
  std::vector<NodeId> nodes;
  std::vector<RelId> rels;

  size_t length() const { return rels.size(); }
  friend auto operator<=>(const Path&, const Path&) = default;
};

/// Discriminator for Value. The order here is NOT the orderability order
/// (see value_compare.h for that).
enum class ValueType : uint8_t {
  kNull = 0,
  kBool,
  kInt,
  kFloat,
  kString,
  kList,
  kMap,
  kNode,
  kRelationship,
  kPath,
  kDate,
  kLocalTime,
  kTime,
  kLocalDateTime,
  kDateTime,
  kDuration,
};

/// Human-readable type name ("INTEGER", "LIST", ...), used in error messages.
const char* ValueTypeName(ValueType t);

class Value;
using ValueList = std::vector<Value>;
/// Maps use std::map for deterministic iteration (printing, comparison).
/// The transparent comparator lets string_view keys (e.g. a Value's
/// inline string) probe the map without materializing a std::string.
using ValueMap = std::map<std::string, Value, std::less<>>;

/// A Cypher value (the set 𝒱 of §4.1): null, booleans, integers, strings
/// (we also carry floats as a base type, like every real implementation),
/// lists, maps, node/relationship identifiers, paths, and the Cypher 10
/// temporal types.
///
/// Values are IMMUTABLE once constructed, and every non-trivial payload is
/// either stored inline or behind a shared, const, reference-counted
/// allocation — so copying any Value is O(1):
///  * strings of <= kInlineStringCapacity bytes live inline in the
///    variant (copy = memcpy, no allocation, no refcount traffic);
///  * longer strings are shared_ptr<const std::string>;
///  * lists, maps and paths are shared_ptr<const T>.
/// "Copy-on-write" degenerates to "copy-never": since payloads are const,
/// building a modified value always constructs a new payload (see e.g.
/// list concatenation in eval/evaluator.cc) and sharing is always safe —
/// including across the parallel runtime's worker threads.
class Value {
 public:
  /// Longest string stored inline (chosen so the inline alternative does
  /// not grow the variant beyond its largest existing member, Duration).
  static constexpr size_t kInlineStringCapacity = 31;

  /// Constructs null.
  Value() : rep_(NullRep{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Rep(b)); }
  static Value Int(int64_t i) { return Value(Rep(i)); }
  static Value Float(double d) { return Value(Rep(d)); }
  static Value String(std::string_view s) {
    if (s.size() <= kInlineStringCapacity) return Value(Rep(InlineString(s)));
    return Value(Rep(std::make_shared<const std::string>(s)));
  }
  static Value String(std::string&& s) {
    if (s.size() <= kInlineStringCapacity) {
      return Value(Rep(InlineString(std::string_view(s))));
    }
    return Value(Rep(std::make_shared<const std::string>(std::move(s))));
  }
  static Value String(const char* s) { return String(std::string_view(s)); }
  /// Adopts an already-shared string (re-sharing an existing handle never
  /// allocates, whatever its length).
  static Value String(std::shared_ptr<const std::string> s) {
    return Value(Rep(std::move(s)));
  }
  static Value MakeList(ValueList items) {
    return Value(Rep(std::make_shared<const ValueList>(std::move(items))));
  }
  static Value EmptyList() { return MakeList({}); }
  static Value MakeMap(ValueMap m) {
    return Value(Rep(std::make_shared<const ValueMap>(std::move(m))));
  }
  static Value Node(NodeId n) { return Value(Rep(n)); }
  static Value Relationship(RelId r) { return Value(Rep(r)); }
  static Value MakePath(Path p) {
    return Value(Rep(std::make_shared<const Path>(std::move(p))));
  }
  static Value Temporal(Date d) { return Value(Rep(d)); }
  static Value Temporal(LocalTime t) { return Value(Rep(t)); }
  static Value Temporal(ZonedTime t) { return Value(Rep(t)); }
  static Value Temporal(LocalDateTime t) { return Value(Rep(t)); }
  static Value Temporal(ZonedDateTime t) { return Value(Rep(t)); }
  static Value Temporal(Duration d) { return Value(Rep(d)); }

  ValueType type() const {
    size_t i = rep_.index();
    // The variant alternative order matches ValueType's declaration order;
    // the inline-string alternative is appended past the end and maps back
    // to kString.
    if (i == kInlineStringIndex) return ValueType::kString;
    return static_cast<ValueType>(i);
  }

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_float() const { return type() == ValueType::kFloat; }
  bool is_number() const { return is_int() || is_float(); }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_list() const { return type() == ValueType::kList; }
  bool is_map() const { return type() == ValueType::kMap; }
  bool is_node() const { return type() == ValueType::kNode; }
  bool is_relationship() const { return type() == ValueType::kRelationship; }
  bool is_path() const { return type() == ValueType::kPath; }
  bool is_temporal() const {
    ValueType t = type();
    return t >= ValueType::kDate && t <= ValueType::kDuration;
  }

  /// Typed accessors. Preconditions: the value holds that type.
  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsFloat() const { return std::get<double>(rep_); }
  /// Numeric value widened to double (int or float).
  double AsNumber() const {
    return is_int() ? static_cast<double>(AsInt()) : AsFloat();
  }
  /// View into this value's string payload — valid while this Value (or
  /// any copy sharing its representation) is alive. Never materializes.
  std::string_view AsString() const {
    if (const InlineString* s = std::get_if<InlineString>(&rep_)) {
      return s->view();
    }
    return *std::get<SharedString>(rep_);
  }
  /// Shared handle to the string payload; inline strings are promoted to
  /// a fresh allocation (use only where ownership must outlive the Value).
  std::shared_ptr<const std::string> AsSharedString() const {
    if (const InlineString* s = std::get_if<InlineString>(&rep_)) {
      return std::make_shared<const std::string>(s->view());
    }
    return std::get<SharedString>(rep_);
  }
  const ValueList& AsList() const {
    return *std::get<std::shared_ptr<const ValueList>>(rep_);
  }
  const ValueMap& AsMap() const {
    return *std::get<std::shared_ptr<const ValueMap>>(rep_);
  }
  NodeId AsNode() const { return std::get<NodeId>(rep_); }
  RelId AsRelationship() const { return std::get<RelId>(rep_); }
  const Path& AsPath() const {
    return *std::get<std::shared_ptr<const Path>>(rep_);
  }
  Date AsDate() const { return std::get<Date>(rep_); }
  LocalTime AsLocalTime() const { return std::get<LocalTime>(rep_); }
  ZonedTime AsTime() const { return std::get<ZonedTime>(rep_); }
  LocalDateTime AsLocalDateTime() const {
    return std::get<LocalDateTime>(rep_);
  }
  ZonedDateTime AsDateTime() const { return std::get<ZonedDateTime>(rep_); }
  Duration AsDuration() const { return std::get<Duration>(rep_); }

  /// Address of the shared heap payload (long string, list, map, path), or
  /// nullptr for every other representation. Two values with the same
  /// non-null shared_rep() are identical by construction — the O(1)
  /// short-circuit for equivalence/ordering (NOT for 3VL ValueEquals:
  /// a list that contains null is not `=` to itself).
  const void* shared_rep() const {
    switch (rep_.index()) {
      case static_cast<size_t>(ValueType::kString):
        return std::get<SharedString>(rep_).get();
      case static_cast<size_t>(ValueType::kList):
        return std::get<std::shared_ptr<const ValueList>>(rep_).get();
      case static_cast<size_t>(ValueType::kMap):
        return std::get<std::shared_ptr<const ValueMap>>(rep_).get();
      case static_cast<size_t>(ValueType::kPath):
        return std::get<std::shared_ptr<const Path>>(rep_).get();
      default:
        return nullptr;
    }
  }

  /// Display form: `null`, `true`, `'abc'`, `[1, 2]`, `{k: 1}`, `(3)`,
  /// `[:42]`, `<(1)-[:0]->(2)>`, `1984-06-10`. Graph-aware rendering (with
  /// labels and properties) lives in graph/property_graph.h.
  std::string ToString() const;

 private:
  struct NullRep {};

  /// Small-string fast path: the bytes live inside the variant, so short
  /// strings (property values, names, keys — the overwhelmingly common
  /// case) cost no allocation to create and no atomics to copy.
  struct InlineString {
    char data[kInlineStringCapacity];
    uint8_t size;

    explicit InlineString(std::string_view s)
        : size(static_cast<uint8_t>(s.size())) {
      if (!s.empty()) std::memcpy(data, s.data(), s.size());
    }
    std::string_view view() const { return std::string_view(data, size); }
  };

  using SharedString = std::shared_ptr<const std::string>;

  using Rep = std::variant<NullRep, bool, int64_t, double, SharedString,
                           std::shared_ptr<const ValueList>,
                           std::shared_ptr<const ValueMap>, NodeId, RelId,
                           std::shared_ptr<const Path>, Date, LocalTime,
                           ZonedTime, LocalDateTime, ZonedDateTime, Duration,
                           InlineString>;

  /// Variant index of the appended InlineString alternative.
  static constexpr size_t kInlineStringIndex =
      std::variant_size_v<Rep> - 1;

  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

}  // namespace gqlite

#endif  // GQLITE_VALUE_VALUE_H_
