#ifndef GQLITE_VALUE_VALUE_COMPARE_H_
#define GQLITE_VALUE_VALUE_COMPARE_H_

#include <cstddef>

#include "src/value/value.h"

namespace gqlite {

/// Three-valued logic truth values. Cypher uses SQL's 3VL (§4.3 "Logic:
/// Just like SQL, Cypher uses 3-value logic for dealing with nulls").
enum class Tri : uint8_t { kFalse = 0, kNull = 1, kTrue = 2 };

inline Tri TriFromBool(bool b) { return b ? Tri::kTrue : Tri::kFalse; }

/// SQL truth tables for the connectives of Figure 5 (OR/AND/XOR/NOT).
Tri TriAnd(Tri a, Tri b);
Tri TriOr(Tri a, Tri b);
Tri TriXor(Tri a, Tri b);
Tri TriNot(Tri a);

/// Converts a Value to Tri for use in WHERE: true→kTrue, false→kFalse,
/// null→kNull. Any other type is a type error signalled by the caller; this
/// helper returns kNull for non-bool non-null values so callers can decide.
Tri TriFromValue(const Value& v);

/// Cypher *equality* (the `=` operator): 3VL.
///  * null = anything  → null
///  * numbers compare numerically across int/float; NaN ≠ everything
///  * lists/maps recurse with 3VL (null inside propagates)
///  * values of different (non-numeric-coercible) types → false
Tri ValueEquals(const Value& a, const Value& b);

/// Cypher *ordering* comparison (`<`): 3VL. Only numbers-with-numbers,
/// strings, booleans, lists (lexicographic), and same-family temporals are
/// comparable; anything else (including any null operand) yields kNull.
/// Returns the truth of `a < b`; other comparators derive from it plus
/// equality.
Tri ValueLess(const Value& a, const Value& b);

/// Cypher *equivalence*, used for grouping keys, DISTINCT and UNION
/// de-duplication: like equality but null ≡ null and NaN ≡ NaN.
bool ValueEquivalent(const Value& a, const Value& b);

/// Global orderability: a total order over *all* values, used by ORDER BY.
/// Ascending type order (openCypher CIP2016-06-14): MAP < NODE <
/// RELATIONSHIP < LIST < PATH < DATETIME < LOCALDATETIME < DATE < TIME <
/// LOCALTIME < DURATION < STRING < BOOLEAN < NUMBER < null. Within numbers,
/// ints and floats interleave numerically and NaN sorts after +inf.
/// Returns <0, 0, >0.
int ValueOrder(const Value& a, const Value& b);

/// Hash consistent with ValueEquivalent (for grouping/DISTINCT hash maps).
size_t ValueHash(const Value& v);

/// Functor pair for unordered containers keyed by equivalence.
struct ValueEquivalenceHash {
  size_t operator()(const Value& v) const { return ValueHash(v); }
};
struct ValueEquivalenceEq {
  bool operator()(const Value& a, const Value& b) const {
    return ValueEquivalent(a, b);
  }
};

/// Hash/equivalence over rows (vectors of values), used for DISTINCT,
/// grouping and UNION.
size_t RowHash(const ValueList& row);
bool RowEquivalent(const ValueList& a, const ValueList& b);

struct RowEquivalenceHash {
  size_t operator()(const ValueList& r) const { return RowHash(r); }
};
struct RowEquivalenceEq {
  bool operator()(const ValueList& a, const ValueList& b) const {
    return RowEquivalent(a, b);
  }
};

}  // namespace gqlite

#endif  // GQLITE_VALUE_VALUE_COMPARE_H_
