#ifndef GQLITE_VALUE_VALUE_FORMAT_H_
#define GQLITE_VALUE_VALUE_FORMAT_H_

#include <string>

#include "src/value/value.h"

namespace gqlite {

/// Renders a value for display. Nodes and relationships render as bare ids
/// ("(3)", "[:7]") because a Value does not know its graph; the
/// graph-aware pretty printer lives next to PropertyGraph.
std::string FormatValue(const Value& v);

/// Renders a float like Cypher does: integral floats get a trailing ".0".
std::string FormatFloat(double d);

}  // namespace gqlite

#endif  // GQLITE_VALUE_VALUE_FORMAT_H_
