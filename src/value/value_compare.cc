#include "src/value/value_compare.h"

#include <cmath>
#include <cstring>
#include <functional>

namespace gqlite {

Tri TriAnd(Tri a, Tri b) {
  if (a == Tri::kFalse || b == Tri::kFalse) return Tri::kFalse;
  if (a == Tri::kNull || b == Tri::kNull) return Tri::kNull;
  return Tri::kTrue;
}

Tri TriOr(Tri a, Tri b) {
  if (a == Tri::kTrue || b == Tri::kTrue) return Tri::kTrue;
  if (a == Tri::kNull || b == Tri::kNull) return Tri::kNull;
  return Tri::kFalse;
}

Tri TriXor(Tri a, Tri b) {
  if (a == Tri::kNull || b == Tri::kNull) return Tri::kNull;
  return TriFromBool((a == Tri::kTrue) != (b == Tri::kTrue));
}

Tri TriNot(Tri a) {
  if (a == Tri::kNull) return Tri::kNull;
  return a == Tri::kTrue ? Tri::kFalse : Tri::kTrue;
}

Tri TriFromValue(const Value& v) {
  if (v.is_null()) return Tri::kNull;
  if (v.is_bool()) return TriFromBool(v.AsBool());
  return Tri::kNull;
}

namespace {

/// Exact three-way comparison of an int64 against a non-NaN double.
/// Casting the int to double (what AsNumber() does) rounds above 2^53 and
/// made e.g. 9007199254740993 = 9007199254740992.0 come out true; Cypher
/// compares the mathematical values. The caller screens out NaN.
int CompareIntFloat(int64_t i, double d) {
  // 2^63 is exactly representable as a double, so these two tests bracket
  // exactly the doubles outside int64's range (±inf included).
  if (d >= 9223372036854775808.0) return -1;
  if (d < -9223372036854775808.0) return 1;
  int64_t t = static_cast<int64_t>(d);  // truncation; in range by the above
  if (i != t) return i < t ? -1 : 1;
  // Equal integral parts: the fraction decides. Exact, because any double
  // with a nonzero fraction has |d| < 2^53 where (double)t is lossless,
  // and above that every double is integral (frac == 0).
  double frac = d - static_cast<double>(t);
  if (frac > 0) return -1;  // d just above i
  if (frac < 0) return 1;   // d just below i (negative values)
  return 0;
}

/// Compares two numbers (int/float mix) exactly like Cypher: mathematical
/// value comparison; NaN is unequal to and not less than anything.
Tri NumberEquals(const Value& a, const Value& b) {
  if (a.is_int() && b.is_int()) return TriFromBool(a.AsInt() == b.AsInt());
  double x = a.AsNumber();
  double y = b.AsNumber();
  if (std::isnan(x) || std::isnan(y)) return Tri::kFalse;
  if (a.is_int()) return TriFromBool(CompareIntFloat(a.AsInt(), y) == 0);
  if (b.is_int()) return TriFromBool(CompareIntFloat(b.AsInt(), x) == 0);
  return TriFromBool(x == y);
}

Tri NumberLess(const Value& a, const Value& b) {
  if (a.is_int() && b.is_int()) return TriFromBool(a.AsInt() < b.AsInt());
  double x = a.AsNumber();
  double y = b.AsNumber();
  if (std::isnan(x) || std::isnan(y)) return Tri::kNull;
  if (a.is_int()) return TriFromBool(CompareIntFloat(a.AsInt(), y) < 0);
  if (b.is_int()) return TriFromBool(CompareIntFloat(b.AsInt(), x) > 0);
  return TriFromBool(x < y);
}

}  // namespace

Tri ValueEquals(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Tri::kNull;
  if (a.is_number() && b.is_number()) return NumberEquals(a, b);
  if (a.type() != b.type()) {
    // Temporal values only equal values of their exact temporal type.
    return Tri::kFalse;
  }
  switch (a.type()) {
    case ValueType::kBool:
      return TriFromBool(a.AsBool() == b.AsBool());
    case ValueType::kString:
      return TriFromBool(a.AsString() == b.AsString());
    case ValueType::kNode:
      return TriFromBool(a.AsNode() == b.AsNode());
    case ValueType::kRelationship:
      return TriFromBool(a.AsRelationship() == b.AsRelationship());
    case ValueType::kPath:
      return TriFromBool(a.AsPath() == b.AsPath());
    case ValueType::kDate:
      return TriFromBool(a.AsDate() == b.AsDate());
    case ValueType::kLocalTime:
      return TriFromBool(a.AsLocalTime() == b.AsLocalTime());
    case ValueType::kTime:
      return TriFromBool(a.AsTime().NormalizedNanos() ==
                         b.AsTime().NormalizedNanos());
    case ValueType::kLocalDateTime:
      return TriFromBool(a.AsLocalDateTime() == b.AsLocalDateTime());
    case ValueType::kDateTime:
      return TriFromBool(a.AsDateTime().InstantNanos() ==
                         b.AsDateTime().InstantNanos());
    case ValueType::kDuration:
      return TriFromBool(a.AsDuration() == b.AsDuration());
    case ValueType::kList: {
      const ValueList& la = a.AsList();
      const ValueList& lb = b.AsList();
      if (la.size() != lb.size()) return Tri::kFalse;
      Tri acc = Tri::kTrue;
      for (size_t i = 0; i < la.size(); ++i) {
        Tri e = ValueEquals(la[i], lb[i]);
        if (e == Tri::kFalse) return Tri::kFalse;
        acc = TriAnd(acc, e);
      }
      return acc;
    }
    case ValueType::kMap: {
      const ValueMap& ma = a.AsMap();
      const ValueMap& mb = b.AsMap();
      if (ma.size() != mb.size()) return Tri::kFalse;
      Tri acc = Tri::kTrue;
      auto ia = ma.begin();
      auto ib = mb.begin();
      for (; ia != ma.end(); ++ia, ++ib) {
        if (ia->first != ib->first) return Tri::kFalse;
        Tri e = ValueEquals(ia->second, ib->second);
        if (e == Tri::kFalse) return Tri::kFalse;
        acc = TriAnd(acc, e);
      }
      return acc;
    }
    default:
      return Tri::kFalse;
  }
}

Tri ValueLess(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Tri::kNull;
  if (a.is_number() && b.is_number()) return NumberLess(a, b);
  if (a.is_string() && b.is_string()) {
    return TriFromBool(a.AsString() < b.AsString());
  }
  if (a.is_bool() && b.is_bool()) {
    return TriFromBool(!a.AsBool() && b.AsBool());
  }
  if (a.is_list() && b.is_list()) {
    // Lexicographic with 3VL element comparison; an incomparable element
    // pair makes the whole comparison null.
    const ValueList& la = a.AsList();
    const ValueList& lb = b.AsList();
    size_t n = la.size() < lb.size() ? la.size() : lb.size();
    for (size_t i = 0; i < n; ++i) {
      Tri eq = ValueEquals(la[i], lb[i]);
      if (eq == Tri::kNull) return Tri::kNull;
      if (eq == Tri::kFalse) return ValueLess(la[i], lb[i]);
    }
    return TriFromBool(la.size() < lb.size());
  }
  if (a.type() != b.type()) return Tri::kNull;
  switch (a.type()) {
    case ValueType::kDate:
      return TriFromBool(a.AsDate() < b.AsDate());
    case ValueType::kLocalTime:
      return TriFromBool(a.AsLocalTime() < b.AsLocalTime());
    case ValueType::kTime:
      return TriFromBool(a.AsTime().NormalizedNanos() <
                         b.AsTime().NormalizedNanos());
    case ValueType::kLocalDateTime:
      return TriFromBool(a.AsLocalDateTime() < b.AsLocalDateTime());
    case ValueType::kDateTime:
      return TriFromBool(a.AsDateTime().InstantNanos() <
                         b.AsDateTime().InstantNanos());
    case ValueType::kDuration:
      // Durations are not comparable with `<` in openCypher; yield null.
      return Tri::kNull;
    default:
      return Tri::kNull;
  }
}

bool ValueEquivalent(const Value& a, const Value& b) {
  // Values sharing one heap payload are identical by construction — the
  // common case after the pipeline copies a row without rewriting it.
  const void* shared = a.shared_rep();
  if (shared != nullptr && shared == b.shared_rep()) return true;
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.is_number() && b.is_number()) {
    if (a.is_int() && b.is_int()) return a.AsInt() == b.AsInt();
    double x = a.AsNumber();
    double y = b.AsNumber();
    if (std::isnan(x) || std::isnan(y)) return std::isnan(x) && std::isnan(y);
    if (a.is_int()) return CompareIntFloat(a.AsInt(), y) == 0;
    if (b.is_int()) return CompareIntFloat(b.AsInt(), x) == 0;
    return x == y;
  }
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::kList: {
      const ValueList& la = a.AsList();
      const ValueList& lb = b.AsList();
      if (la.size() != lb.size()) return false;
      for (size_t i = 0; i < la.size(); ++i) {
        if (!ValueEquivalent(la[i], lb[i])) return false;
      }
      return true;
    }
    case ValueType::kMap: {
      const ValueMap& ma = a.AsMap();
      const ValueMap& mb = b.AsMap();
      if (ma.size() != mb.size()) return false;
      auto ia = ma.begin();
      auto ib = mb.begin();
      for (; ia != ma.end(); ++ia, ++ib) {
        if (ia->first != ib->first) return false;
        if (!ValueEquivalent(ia->second, ib->second)) return false;
      }
      return true;
    }
    default:
      return ValueEquals(a, b) == Tri::kTrue;
  }
}

namespace {

/// Rank of a type in the global orderability order (ascending).
int OrderabilityRank(const Value& v) {
  switch (v.type()) {
    case ValueType::kMap:
      return 0;
    case ValueType::kNode:
      return 1;
    case ValueType::kRelationship:
      return 2;
    case ValueType::kList:
      return 3;
    case ValueType::kPath:
      return 4;
    case ValueType::kDateTime:
      return 5;
    case ValueType::kLocalDateTime:
      return 6;
    case ValueType::kDate:
      return 7;
    case ValueType::kTime:
      return 8;
    case ValueType::kLocalTime:
      return 9;
    case ValueType::kDuration:
      return 10;
    case ValueType::kString:
      return 11;
    case ValueType::kBool:
      return 12;
    case ValueType::kInt:
    case ValueType::kFloat:
      return 13;
    case ValueType::kNull:
      return 14;
  }
  return 15;
}

template <typename T>
int Cmp3(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

int NumberOrder(const Value& a, const Value& b) {
  if (a.is_int() && b.is_int()) return Cmp3(a.AsInt(), b.AsInt());
  double x = a.AsNumber();
  double y = b.AsNumber();
  bool nx = std::isnan(x), ny = std::isnan(y);
  if (nx || ny) {
    // NaN sorts after +infinity; NaN == NaN for ordering purposes.
    if (nx && ny) return 0;
    return nx ? 1 : -1;
  }
  if (a.is_int()) {
    int c = CompareIntFloat(a.AsInt(), y);
    if (c != 0) return c;
  } else if (b.is_int()) {
    int c = CompareIntFloat(b.AsInt(), x);
    if (c != 0) return -c;
  } else if (x != y) {
    return x < y ? -1 : 1;
  }
  // Equal numeric value: int sorts before float for a deterministic order.
  return Cmp3(static_cast<int>(a.type()), static_cast<int>(b.type()));
}

}  // namespace

int ValueOrder(const Value& a, const Value& b) {
  int ra = OrderabilityRank(a);
  int rb = OrderabilityRank(b);
  if (ra != rb) return ra < rb ? -1 : 1;
  const void* shared = a.shared_rep();
  if (shared != nullptr && shared == b.shared_rep()) return 0;
  switch (a.type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return Cmp3(a.AsBool(), b.AsBool());
    case ValueType::kInt:
    case ValueType::kFloat:
      return NumberOrder(a, b);
    case ValueType::kString:
      return Cmp3(a.AsString(), b.AsString());
    case ValueType::kNode:
      return Cmp3(a.AsNode().id, b.AsNode().id);
    case ValueType::kRelationship:
      return Cmp3(a.AsRelationship().id, b.AsRelationship().id);
    case ValueType::kDate:
      return Cmp3(a.AsDate().days_since_epoch, b.AsDate().days_since_epoch);
    case ValueType::kLocalTime:
      return Cmp3(a.AsLocalTime().nanos_since_midnight,
                  b.AsLocalTime().nanos_since_midnight);
    case ValueType::kTime:
      return Cmp3(a.AsTime().NormalizedNanos(), b.AsTime().NormalizedNanos());
    case ValueType::kLocalDateTime: {
      int c = Cmp3(a.AsLocalDateTime().EpochSeconds(),
                   b.AsLocalDateTime().EpochSeconds());
      if (c != 0) return c;
      return Cmp3(a.AsLocalDateTime().time.nanosecond(),
                  b.AsLocalDateTime().time.nanosecond());
    }
    case ValueType::kDateTime:
      return Cmp3(a.AsDateTime().InstantNanos(), b.AsDateTime().InstantNanos());
    case ValueType::kDuration:
      return Cmp3(a.AsDuration().ComparableNanos(),
                  b.AsDuration().ComparableNanos());
    case ValueType::kList: {
      const ValueList& la = a.AsList();
      const ValueList& lb = b.AsList();
      size_t n = la.size() < lb.size() ? la.size() : lb.size();
      for (size_t i = 0; i < n; ++i) {
        int c = ValueOrder(la[i], lb[i]);
        if (c != 0) return c;
      }
      return Cmp3(la.size(), lb.size());
    }
    case ValueType::kMap: {
      const ValueMap& ma = a.AsMap();
      const ValueMap& mb = b.AsMap();
      auto ia = ma.begin();
      auto ib = mb.begin();
      for (; ia != ma.end() && ib != mb.end(); ++ia, ++ib) {
        int c = Cmp3(ia->first, ib->first);
        if (c != 0) return c;
        c = ValueOrder(ia->second, ib->second);
        if (c != 0) return c;
      }
      return Cmp3(ma.size(), mb.size());
    }
    case ValueType::kPath: {
      const Path& pa = a.AsPath();
      const Path& pb = b.AsPath();
      int c = Cmp3(pa.nodes.size(), pb.nodes.size());
      if (c != 0) return c;
      for (size_t i = 0; i < pa.nodes.size(); ++i) {
        c = Cmp3(pa.nodes[i].id, pb.nodes[i].id);
        if (c != 0) return c;
      }
      for (size_t i = 0; i < pa.rels.size(); ++i) {
        c = Cmp3(pa.rels[i].id, pb.rels[i].id);
        if (c != 0) return c;
      }
      return 0;
    }
  }
  return 0;
}

namespace {

inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

size_t ValueHash(const Value& v) {
  size_t seed = static_cast<size_t>(OrderabilityRank(v)) * 1000003u;
  switch (v.type()) {
    case ValueType::kNull:
      return seed;
    case ValueType::kBool:
      return HashCombine(seed, v.AsBool() ? 2u : 1u);
    case ValueType::kInt:
      return HashCombine(seed, std::hash<double>{}(
                                   static_cast<double>(v.AsInt())));
    case ValueType::kFloat: {
      double d = v.AsFloat();
      if (std::isnan(d)) return HashCombine(seed, 0xDEADu);
      // Hash int-valued floats like ints so 1 and 1.0 collide (they are
      // equivalent).
      return HashCombine(seed, std::hash<double>{}(d));
    }
    case ValueType::kString:
      return HashCombine(seed, std::hash<std::string_view>{}(v.AsString()));
    case ValueType::kNode:
      return HashCombine(seed, v.AsNode().id);
    case ValueType::kRelationship:
      return HashCombine(seed, v.AsRelationship().id);
    case ValueType::kDate:
      return HashCombine(seed, v.AsDate().days_since_epoch);
    case ValueType::kLocalTime:
      return HashCombine(seed, v.AsLocalTime().nanos_since_midnight);
    case ValueType::kTime:
      return HashCombine(seed, v.AsTime().NormalizedNanos());
    case ValueType::kLocalDateTime:
      return HashCombine(seed, v.AsLocalDateTime().EpochSeconds());
    case ValueType::kDateTime:
      return HashCombine(seed, v.AsDateTime().InstantNanos());
    case ValueType::kDuration: {
      const Duration& d = v.AsDuration();
      size_t h = HashCombine(seed, d.months);
      h = HashCombine(h, d.days);
      h = HashCombine(h, d.seconds);
      return HashCombine(h, d.nanos);
    }
    case ValueType::kList: {
      size_t h = HashCombine(seed, v.AsList().size());
      for (const Value& e : v.AsList()) h = HashCombine(h, ValueHash(e));
      return h;
    }
    case ValueType::kMap: {
      size_t h = HashCombine(seed, v.AsMap().size());
      for (const auto& [k, val] : v.AsMap()) {
        h = HashCombine(h, std::hash<std::string_view>{}(std::string_view(k)));
        h = HashCombine(h, ValueHash(val));
      }
      return h;
    }
    case ValueType::kPath: {
      const Path& p = v.AsPath();
      size_t h = HashCombine(seed, p.nodes.size());
      for (NodeId n : p.nodes) h = HashCombine(h, n.id);
      for (RelId r : p.rels) h = HashCombine(h, r.id);
      return h;
    }
  }
  return seed;
}

size_t RowHash(const ValueList& row) {
  size_t h = row.size();
  for (const Value& v : row) h = HashCombine(h, ValueHash(v));
  return h;
}

bool RowEquivalent(const ValueList& a, const ValueList& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!ValueEquivalent(a[i], b[i])) return false;
  }
  return true;
}

}  // namespace gqlite
