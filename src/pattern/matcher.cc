#include "src/pattern/matcher.h"

#include <unordered_set>

#include "src/value/value_compare.h"

namespace gqlite {

namespace {

using ast::Direction;
using ast::NodePattern;
using ast::PathPattern;
using ast::Pattern;
using ast::RelPattern;

/// Depth-first enumerator implementing Equation (1): it explores, for each
/// path pattern in the tuple, every (rigid refinement, path) combination.
/// Variable-length hops enumerate each target length in the range
/// separately, which realizes the bag multiplicities of Examples 4.5 and
/// the §3 † rows.
class Matcher {
 public:
  Matcher(const Pattern& pattern, const PropertyGraph& graph,
          const Environment& env, const EvalContext& ctx,
          const MatchOptions& opts, const std::vector<std::string>& columns,
          const MatchSink& sink)
      : pattern_(pattern),
        graph_(graph),
        env_(env),
        ctx_(ctx),
        opts_(opts),
        columns_(columns),
        sink_(sink),
        local_env_(*this) {}

  Status Run() {
    GQL_ASSIGN_OR_RETURN(bool keep_going, MatchPath(0));
    (void)keep_going;
    return Status::OK();
  }

 private:
  /// Environment view: pattern-local bindings shadow the input bindings.
  class LocalEnv : public Environment {
   public:
    explicit LocalEnv(const Matcher& m) : m_(m) {}
    const Value* Lookup(const std::string& name) const override {
      return m_.LookupVar(name);
    }

   private:
    const Matcher& m_;
  };

  const Value* LookupVar(const std::string& name) const {
    for (auto it = locals_.rbegin(); it != locals_.rend(); ++it) {
      if (it->first == name) return &it->second;
    }
    return env_.Lookup(name);
  }

  /// Binds `name` to `v`, or checks equivalence if already bound. Returns
  /// true if the binding is consistent. The caller restores locals_ to its
  /// saved size on backtrack.
  bool BindVar(const std::string& name, Value v) {
    const Value* existing = LookupVar(name);
    if (existing != nullptr) return ValueEquivalent(*existing, v);
    locals_.emplace_back(name, std::move(v));
    return true;
  }

  /// Checks a node pattern against a concrete node and binds its variable.
  /// Returns false (no error) on mismatch.
  Result<bool> CheckAndBindNode(const NodePattern& np, NodeId n) {
    if (!graph_.IsNodeAlive(n)) return false;
    for (const auto& label : np.labels) {
      if (!graph_.NodeHasLabel(n, label)) return false;
    }
    for (const auto& [key, expr] : np.properties) {
      GQL_ASSIGN_OR_RETURN(Value want, EvaluateExpr(*expr, local_env_, ctx_));
      if (ValueEquals(graph_.NodeProperty(n, key), want) != Tri::kTrue) {
        return false;
      }
    }
    if (np.var && !BindVar(*np.var, Value::Node(n))) return false;
    return true;
  }

  /// Checks a relationship's type and property constraints.
  Result<bool> RelConstraintsOk(const RelPattern& rp, RelId r) {
    if (!rp.types.empty()) {
      const std::string& t = graph_.RelType(r);
      bool any = false;
      for (const auto& want : rp.types) {
        if (want == t) {
          any = true;
          break;
        }
      }
      if (!any) return false;
    }
    for (const auto& [key, expr] : rp.properties) {
      GQL_ASSIGN_OR_RETURN(Value want, EvaluateExpr(*expr, local_env_, ctx_));
      if (ValueEquals(graph_.RelProperty(r, key), want) != Tri::kTrue) {
        return false;
      }
    }
    return true;
  }

  /// Candidate step along `r` from `cur` honoring the pattern direction
  /// (§4.2 condition (e′)). Returns the next node, or nullopt if `r` does
  /// not connect in the required way. `from_out` says whether `r` was
  /// found in cur's outgoing adjacency.
  std::optional<NodeId> Step(const RelPattern& rp, RelId r, NodeId cur,
                             bool from_out) {
    NodeId src = graph_.Source(r);
    NodeId tgt = graph_.Target(r);
    switch (rp.direction) {
      case Direction::kRight:
        if (src == cur) return tgt;
        return std::nullopt;
      case Direction::kLeft:
        if (tgt == cur) return src;
        return std::nullopt;
      case Direction::kBoth:
        // Self loops appear in both adjacency lists; count them once (the
        // (e′) condition is a set membership, satisfied one way).
        if (src == tgt) {
          if (!from_out) return std::nullopt;
          return tgt;
        }
        return from_out ? tgt : src;
    }
    return std::nullopt;
  }

  bool RelUsable(RelId r) {
    if (opts_.morphism == Morphism::kHomomorphism) return true;
    return used_rels_.find(r.id) == used_rels_.end();
  }

  bool NodeUsable(NodeId n) {
    if (opts_.morphism != Morphism::kNodeIsomorphism) return true;
    return path_nodes_.find(n.id) == path_nodes_.end();
  }

  // ---- Tuple / path / chain recursion -------------------------------------

  Result<bool> MatchPath(size_t path_idx) {
    if (path_idx == pattern_.paths.size()) return Emit();
    const PathPattern& path = pattern_.paths[path_idx];

    // Save per-path traversal state.
    std::vector<NodeId> saved_nodes = std::move(cur_nodes_);
    std::vector<RelId> saved_rels = std::move(cur_rels_);
    std::unordered_set<uint64_t> saved_path_nodes = std::move(path_nodes_);
    cur_nodes_.clear();
    cur_rels_.clear();
    path_nodes_.clear();

    auto restore = [&]() {
      cur_nodes_ = std::move(saved_nodes);
      cur_rels_ = std::move(saved_rels);
      path_nodes_ = std::move(saved_path_nodes);
    };

    Result<bool> result = MatchPathStart(path_idx, path);
    restore();
    return result;
  }

  Result<bool> MatchPathStart(size_t path_idx, const PathPattern& path) {
    // Determine candidate start nodes.
    if (path.start.var) {
      const Value* bound = LookupVar(*path.start.var);
      if (bound != nullptr) {
        if (!bound->is_node()) return true;  // bound to non-node: no match
        return TryStart(path_idx, path, bound->AsNode());
      }
    }
    if (!path.start.labels.empty()) {
      // Use the most selective label index.
      const std::vector<NodeId>* best = nullptr;
      for (const auto& l : path.start.labels) {
        const auto& idx = graph_.NodesWithLabel(l);
        if (best == nullptr || idx.size() < best->size()) best = &idx;
      }
      for (NodeId n : *best) {
        GQL_ASSIGN_OR_RETURN(bool cont, TryStart(path_idx, path, n));
        if (!cont) return false;
      }
      return true;
    }
    for (size_t i = 0; i < graph_.NumNodeSlots(); ++i) {
      NodeId n{i};
      if (!graph_.IsNodeAlive(n)) continue;
      GQL_ASSIGN_OR_RETURN(bool cont, TryStart(path_idx, path, n));
      if (!cont) return false;
    }
    return true;
  }

  Result<bool> TryStart(size_t path_idx, const PathPattern& path, NodeId n) {
    size_t frame = locals_.size();
    GQL_ASSIGN_OR_RETURN(bool ok, CheckAndBindNode(path.start, n));
    bool cont = true;
    if (ok) {
      cur_nodes_.push_back(n);
      path_nodes_.insert(n.id);
      GQL_ASSIGN_OR_RETURN(cont, MatchChain(path_idx, path, 0, n));
      path_nodes_.erase(n.id);
      cur_nodes_.pop_back();
    }
    locals_.resize(frame);
    return cont;
  }

  Result<bool> MatchChain(size_t path_idx, const PathPattern& path,
                          size_t hop_idx, NodeId cur) {
    if (hop_idx == path.hops.size()) {
      // Path complete: bind the path name if present, then next path.
      size_t frame = locals_.size();
      if (path.path_var) {
        Path p;
        p.nodes = cur_nodes_;
        p.rels = cur_rels_;
        if (!BindVar(*path.path_var, Value::MakePath(std::move(p)))) {
          locals_.resize(frame);
          return true;
        }
      }
      Result<bool> r = MatchPath(path_idx + 1);
      locals_.resize(frame);
      return r;
    }

    const PathPattern::Hop& hop = path.hops[hop_idx];
    HopRange range = EffectiveRange(hop.rel, opts_.max_var_length);

    // Zero-length refinement: the hop collapses; the next node pattern
    // must hold at the current node, and a named relationship variable
    // binds to list() (§4.2 case m = 0).
    if (range.lo == 0) {
      size_t frame = locals_.size();
      bool ok = true;
      if (hop.rel.var) ok = BindVar(*hop.rel.var, Value::EmptyList());
      if (ok) {
        GQL_ASSIGN_OR_RETURN(bool node_ok, CheckAndBindNode(hop.node, cur));
        if (node_ok) {
          GQL_ASSIGN_OR_RETURN(bool cont,
                               MatchChain(path_idx, path, hop_idx + 1, cur));
          if (!cont) {
            locals_.resize(frame);
            return false;
          }
        }
      }
      locals_.resize(frame);
    }

    if (range.hi < 1) return true;
    int64_t lo = std::max<int64_t>(range.lo, 1);
    return Walk(path_idx, path, hop_idx, cur, 0, lo, range.hi);
  }

  /// DFS over relationship sequences for one hop: at each depth d in
  /// [lo, hi] where the next node pattern holds, complete the hop (one
  /// rigid refinement); keep extending while d < hi.
  Result<bool> Walk(size_t path_idx, const PathPattern& path, size_t hop_idx,
                    NodeId cur, int64_t depth, int64_t lo, int64_t hi) {
    if (depth >= hi) return true;
    const RelPattern& rp = path.hops[hop_idx].rel;

    auto try_rel = [&](RelId r, bool from_out) -> Result<bool> {
      std::optional<NodeId> next = Step(rp, r, cur, from_out);
      if (!next) return true;
      if (!RelUsable(r)) return true;
      if (!NodeUsable(*next)) return true;
      GQL_ASSIGN_OR_RETURN(bool ok, RelConstraintsOk(rp, r));
      if (!ok) return true;

      used_rels_.insert(r.id);
      path_nodes_.insert(next->id);
      cur_nodes_.push_back(*next);
      cur_rels_.push_back(r);
      int64_t d = depth + 1;

      bool cont = true;
      if (d >= lo) {
        GQL_ASSIGN_OR_RETURN(
            cont, CompleteHop(path_idx, path, hop_idx, *next, d));
      }
      if (cont && d < hi) {
        GQL_ASSIGN_OR_RETURN(cont,
                             Walk(path_idx, path, hop_idx, *next, d, lo, hi));
      }

      cur_rels_.pop_back();
      cur_nodes_.pop_back();
      path_nodes_.erase(next->id);
      used_rels_.erase(r.id);
      return cont;
    };

    // A self-loop sits in both adjacency lists of its node; iterating only
    // the direction-relevant list(s) (plus the from_out dedup in Step)
    // guarantees it is considered exactly once per hop step.
    if (rp.direction != Direction::kLeft) {
      for (RelId r : graph_.OutRels(cur)) {
        GQL_ASSIGN_OR_RETURN(bool cont, try_rel(r, true));
        if (!cont) return false;
      }
    }
    if (rp.direction != Direction::kRight) {
      for (RelId r : graph_.InRels(cur)) {
        GQL_ASSIGN_OR_RETURN(bool cont, try_rel(r, false));
        if (!cont) return false;
      }
    }
    return true;
  }

  /// The hop's relationship sequence is cur_rels_[seg_start..]; bind the
  /// relationship variable, check the hop's target node pattern, recurse.
  Result<bool> CompleteHop(size_t path_idx, const PathPattern& path,
                           size_t hop_idx, NodeId target, int64_t seg_len) {
    const PathPattern::Hop& hop = path.hops[hop_idx];
    size_t frame = locals_.size();
    bool ok = true;
    if (hop.rel.var) {
      if (hop.rel.length) {
        ValueList rels;
        for (size_t i = cur_rels_.size() - seg_len; i < cur_rels_.size();
             ++i) {
          rels.push_back(Value::Relationship(cur_rels_[i]));
        }
        ok = BindVar(*hop.rel.var, Value::MakeList(std::move(rels)));
      } else {
        ok = BindVar(*hop.rel.var, Value::Relationship(cur_rels_.back()));
      }
    }
    bool cont = true;
    if (ok) {
      GQL_ASSIGN_OR_RETURN(bool node_ok, CheckAndBindNode(hop.node, target));
      if (node_ok) {
        GQL_ASSIGN_OR_RETURN(cont,
                             MatchChain(path_idx, path, hop_idx + 1, target));
      }
    }
    locals_.resize(frame);
    return cont;
  }

  Result<bool> Emit() {
    BindingRow row;
    row.reserve(columns_.size());
    for (const std::string& col : columns_) {
      const Value* v = LookupVar(col);
      if (v == nullptr) {
        return Status::Internal("pattern variable `" + col +
                                "` unbound at emit");
      }
      row.push_back(*v);
    }
    return sink_(row);
  }

  const Pattern& pattern_;
  const PropertyGraph& graph_;
  const Environment& env_;
  const EvalContext& ctx_;
  const MatchOptions& opts_;
  const std::vector<std::string>& columns_;
  const MatchSink& sink_;
  LocalEnv local_env_;

  std::vector<std::pair<std::string, Value>> locals_;
  std::unordered_set<uint64_t> used_rels_;  // across the whole tuple
  // Per-path traversal state (for path values and node isomorphism).
  std::vector<NodeId> cur_nodes_;
  std::vector<RelId> cur_rels_;
  std::unordered_set<uint64_t> path_nodes_;
};

}  // namespace

Status MatchPattern(const Pattern& pattern, const PropertyGraph& graph,
                    const Environment& env, const EvalContext& ctx,
                    const MatchOptions& opts,
                    const std::vector<std::string>& columns,
                    const MatchSink& sink) {
  return Matcher(pattern, graph, env, ctx, opts, columns, sink).Run();
}

std::vector<std::string> NewPatternColumns(const Pattern& pattern,
                                           const Environment& env) {
  std::vector<std::string> out;
  for (const std::string& v : PatternVariables(pattern)) {
    if (!env.Lookup(v)) out.push_back(v);
  }
  return out;
}

Result<bool> ExistsMatch(const Pattern& pattern, const PropertyGraph& graph,
                         const Environment& env, const EvalContext& ctx,
                         const MatchOptions& opts) {
  bool found = false;
  std::vector<std::string> columns;  // no bindings needed
  Status st = MatchPattern(pattern, graph, env, ctx, opts, columns,
                           [&](const BindingRow&) -> Result<bool> {
                             found = true;
                             return false;  // stop at first match
                           });
  GQL_RETURN_IF_ERROR(st);
  return found;
}

}  // namespace gqlite
