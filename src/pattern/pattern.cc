#include "src/pattern/pattern.h"

#include <set>

namespace gqlite {

namespace {

void AddVar(const std::optional<std::string>& var,
            std::vector<std::string>* out, std::set<std::string>* seen) {
  if (!var) return;
  if (seen->insert(*var).second) out->push_back(*var);
}

void Collect(const ast::PathPattern& p, std::vector<std::string>* out,
             std::set<std::string>* seen) {
  AddVar(p.path_var, out, seen);
  AddVar(p.start.var, out, seen);
  for (const auto& hop : p.hops) {
    AddVar(hop.rel.var, out, seen);
    AddVar(hop.node.var, out, seen);
  }
}

}  // namespace

std::vector<std::string> PatternVariables(const ast::Pattern& p) {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const auto& path : p.paths) Collect(path, &out, &seen);
  return out;
}

std::vector<std::string> PatternVariables(const ast::PathPattern& p) {
  std::vector<std::string> out;
  std::set<std::string> seen;
  Collect(p, &out, &seen);
  return out;
}

HopRange EffectiveRange(const ast::RelPattern& rel, int64_t max_cap) {
  HopRange r;
  if (!rel.length) return r;  // rigid single hop [1,1]
  r.lo = rel.length->min.value_or(1);
  if (rel.length->max) {
    r.hi = *rel.length->max;
  } else {
    r.hi = max_cap;
    r.unbounded = true;
  }
  return r;
}

}  // namespace gqlite
