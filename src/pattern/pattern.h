#ifndef GQLITE_PATTERN_PATTERN_H_
#define GQLITE_PATTERN_PATTERN_H_

#include <string>
#include <vector>

#include "src/frontend/ast.h"

namespace gqlite {

/// free(π̄): the named variables of a pattern tuple in order of first
/// appearance (path name, start node, then per hop: relationship, node).
/// Deduplicated.
std::vector<std::string> PatternVariables(const ast::Pattern& p);
std::vector<std::string> PatternVariables(const ast::PathPattern& p);

/// Effective variable-length range of a relationship pattern per §4.2:
/// I = nil ⇒ [1,1]; * ⇒ [1,∞); *d ⇒ [d,d]; *d1.. ⇒ [d1,∞); *..d2 ⇒ [1,d2].
/// ∞ is represented by `max_cap` (the matcher's traversal cap).
struct HopRange {
  int64_t lo = 1;
  int64_t hi = 1;
  bool unbounded = false;  // true when the pattern had no upper bound
};
HopRange EffectiveRange(const ast::RelPattern& rel, int64_t max_cap);

}  // namespace gqlite

#endif  // GQLITE_PATTERN_PATTERN_H_
