#ifndef GQLITE_PATTERN_MATCHER_H_
#define GQLITE_PATTERN_MATCHER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/eval/evaluator.h"
#include "src/graph/property_graph.h"
#include "src/pattern/pattern.h"

namespace gqlite {

/// Pattern-matching morphism (§8 "Configurable morphisms"). Cypher 9's
/// default is relationship (edge) isomorphism: within one match of a
/// pattern tuple, no relationship id is used twice (§4.2: "all
/// relationships in p are distinct"). Node isomorphism additionally
/// forbids repeated nodes within each matched path; homomorphism drops
/// uniqueness entirely (and therefore needs the traversal cap to keep
/// variable-length matching finite — exactly the blow-up §4.2 discusses).
enum class Morphism : uint8_t {
  kEdgeIsomorphism,
  kNodeIsomorphism,
  kHomomorphism,
};

struct MatchOptions {
  Morphism morphism = Morphism::kEdgeIsomorphism;
  /// Upper bound substituted for ∞ in unbounded variable-length ranges.
  /// Under edge isomorphism the graph itself bounds path length (each
  /// relationship used once), so this only matters for homomorphism; it
  /// also guards against pathological graphs.
  int64_t max_var_length = 1000000;
};

/// One match: values for the pattern's free variables *not* already bound
/// in the input environment, ordered like `columns` below.
using BindingRow = std::vector<Value>;

/// Streaming sink for matches. Return false to stop enumeration early
/// (used by pattern predicates / existential subqueries).
using MatchSink = std::function<Result<bool>(const BindingRow&)>;

/// Enumerates match(π̄, G, u) per Equation (1) of the paper with **bag**
/// semantics: one sink invocation per (rigid pattern, path tuple)
/// combination, so a single path may be reported several times when it
/// satisfies several rigid refinements (Example 4.5), and identical rows
/// from different paths occur once each (the † rows of §3).
///
/// `columns` must be PatternVariables(pattern) minus the names bound in
/// `env` (helper NewPatternColumns below). Property expressions inside the
/// pattern are evaluated under `env` extended with the pattern's own local
/// bindings made so far (left to right).
Status MatchPattern(const ast::Pattern& pattern, const PropertyGraph& graph,
                    const Environment& env, const EvalContext& ctx,
                    const MatchOptions& opts,
                    const std::vector<std::string>& columns,
                    const MatchSink& sink);

/// free(π̄) − dom(u): the new columns a MATCH with this pattern adds.
std::vector<std::string> NewPatternColumns(const ast::Pattern& pattern,
                                           const Environment& env);

/// True if the pattern has at least one match under `env` (early-exit).
Result<bool> ExistsMatch(const ast::Pattern& pattern,
                         const PropertyGraph& graph, const Environment& env,
                         const EvalContext& ctx, const MatchOptions& opts);

}  // namespace gqlite

#endif  // GQLITE_PATTERN_MATCHER_H_
