#include "src/interp/interpreter.h"

#include "src/interp/projection.h"

namespace gqlite {

using namespace ast;  // NOLINT(build/namespaces)

EvalContext Interpreter::MakeEvalContext() const {
  EvalContext ctx;
  ctx.graph = graph_.get();
  ctx.parameters = params_;
  ctx.rand_state = rand_state_;
  // Pattern predicates (existential subqueries) re-enter the matcher with
  // early exit. Captured by value where needed: the context must outlive
  // only the clause evaluation.
  const PropertyGraph* g = graph_.get();
  const MatchOptions* opts = &options_.match;
  const ValueMap* params = params_;
  uint64_t* rand_state = rand_state_;
  ctx.pattern_predicate = [g, opts, params, rand_state](
                              const Pattern& p,
                              const Environment& env) -> Result<bool> {
    EvalContext inner;
    inner.graph = g;
    inner.parameters = params;
    inner.rand_state = rand_state;
    // Nested pattern predicates inside pattern property maps are
    // disallowed (no hook installed).
    return ExistsMatch(p, *g, env, inner, *opts);
  };
  return ctx;
}

Result<Table> Interpreter::ExecuteQuery(const Query& q) {
  GQL_ASSIGN_OR_RETURN(Table result, ExecuteSingle(q.parts[0]));
  for (size_t i = 1; i < q.parts.size(); ++i) {
    GQL_ASSIGN_OR_RETURN(Table next, ExecuteSingle(q.parts[i]));
    if (result.fields() != next.fields()) {
      return Status::SemanticError(
          "UNION parts must produce the same columns");
    }
    result.Append(next);
    if (!q.union_all[i - 1]) result = result.Deduplicated();
  }
  return result;
}

Result<Table> Interpreter::ExecuteSingle(const SingleQuery& q) {
  // output(Q, G) = ⟦Q⟧G(T()) — start from the unit table (Figure 6).
  Table t = Table::Unit();
  for (const auto& clause : q.clauses) {
    GQL_ASSIGN_OR_RETURN(t, ExecuteClause(*clause, std::move(t)));
  }
  return t;
}

Result<Table> Interpreter::ExecuteClause(const Clause& c, Table input) {
  switch (c.kind) {
    case Clause::Kind::kMatch:
      return ExecMatch(static_cast<const MatchClause&>(c), input);
    case Clause::Kind::kWith: {
      const auto& w = static_cast<const WithClause&>(c);
      EvalContext ctx = MakeEvalContext();
      GQL_ASSIGN_OR_RETURN(Table projected,
                           EvaluateProjection(w.body, input, ctx));
      if (!w.where) return projected;
      // [[WITH ret WHERE expr]] = [[WHERE expr]]([[WITH ret]](T)).
      Table filtered(projected.fields());
      for (const auto& row : projected.rows()) {
        RowEnvironment env(projected, row);
        GQL_ASSIGN_OR_RETURN(Tri keep, EvaluatePredicate(*w.where, env, ctx));
        if (keep == Tri::kTrue) filtered.AddRow(row);
      }
      return filtered;
    }
    case Clause::Kind::kReturn: {
      const auto& r = static_cast<const ReturnClause&>(c);
      EvalContext ctx = MakeEvalContext();
      return EvaluateProjection(r.body, input, ctx);
    }
    case Clause::Kind::kUnwind:
      return ExecUnwind(static_cast<const UnwindClause&>(c), input);
    case Clause::Kind::kFromGraph:
      return ExecFromGraph(static_cast<const FromGraphClause&>(c),
                           std::move(input));
    case Clause::Kind::kReturnGraph:
      return ExecReturnGraph(static_cast<const ReturnGraphClause&>(c), input);
    case Clause::Kind::kCreate:
    case Clause::Kind::kDelete:
    case Clause::Kind::kSet:
    case Clause::Kind::kRemove:
    case Clause::Kind::kMerge:
      if (!update_handler_) {
        return Status::Unimplemented(
            "updating clauses are not enabled in this interpreter");
      }
      return update_handler_(c, std::move(input));
  }
  return Status::Internal("unhandled clause kind");
}

Result<Table> Interpreter::ExecMatch(const MatchClause& m,
                                     const Table& input) {
  EvalContext ctx = MakeEvalContext();

  // free(π̄) − dom(u): new fields introduced by this MATCH (identical for
  // every input row because tables are uniform).
  Table probe(input.fields());
  std::vector<std::string> new_cols;
  {
    ValueList empty_row(input.NumFields(), Value::Null());
    RowEnvironment env(input, empty_row);
    new_cols = NewPatternColumns(m.pattern, env);
  }
  std::vector<std::string> out_fields = input.fields();
  for (const auto& c : new_cols) out_fields.push_back(c);
  Table output(out_fields);

  for (const auto& row : input.rows()) {
    RowEnvironment env(input, row);
    size_t before = output.NumRows();
    Status st = MatchPattern(
        m.pattern, *graph_, env, ctx, options_.match, new_cols,
        [&](const BindingRow& bindings) -> Result<bool> {
          ValueList out_row = row;
          for (const Value& v : bindings) out_row.push_back(v);
          if (m.where) {
            RowEnvironment where_env(output, out_row);
            GQL_ASSIGN_OR_RETURN(Tri keep,
                                 EvaluatePredicate(*m.where, where_env, ctx));
            if (keep != Tri::kTrue) return true;
          }
          output.AddRow(std::move(out_row));
          return true;
        });
    GQL_RETURN_IF_ERROR(st);
    if (m.optional && output.NumRows() == before) {
      // OPTIONAL MATCH (Figure 7): pad the unmatched row with nulls for
      // all variables the pattern would have introduced.
      ValueList out_row = row;
      for (size_t i = 0; i < new_cols.size(); ++i) {
        out_row.push_back(Value::Null());
      }
      output.AddRow(std::move(out_row));
    }
  }
  return output;
}

Result<Table> Interpreter::ExecUnwind(const UnwindClause& u,
                                      const Table& input) {
  EvalContext ctx = MakeEvalContext();
  std::vector<std::string> out_fields = input.fields();
  out_fields.push_back(u.var);
  Table output(out_fields);
  for (const auto& row : input.rows()) {
    RowEnvironment env(input, row);
    GQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*u.expr, env, ctx));
    // Figure 7's rule: a list unwinds element-wise (empty list → no rows);
    // any non-list value (including null — a deliberate fidelity choice,
    // see DESIGN.md) yields a single row.
    if (v.is_list()) {
      for (const Value& e : v.AsList()) {
        ValueList out_row = row;
        out_row.push_back(e);
        output.AddRow(std::move(out_row));
      }
    } else {
      ValueList out_row = row;
      out_row.push_back(v);
      output.AddRow(std::move(out_row));
    }
  }
  return output;
}

Result<Table> Interpreter::ExecFromGraph(const FromGraphClause& f,
                                         Table input) {
  // The catalog locks internally.
  if (f.url) {
    // FROM GRAPH g AT "url": resolve through the URL registry and bind the
    // name (simulating an external graph store; see DESIGN.md).
    GQL_ASSIGN_OR_RETURN(GraphPtr g, catalog_.ResolveUrl(*f.url));
    catalog_.RegisterGraph(f.name, g);
    graph_ = std::move(g);
    return input;
  }
  GQL_ASSIGN_OR_RETURN(GraphPtr g, catalog_.Resolve(f.name));
  graph_ = std::move(g);
  return input;
}

Result<Table> Interpreter::ExecReturnGraph(const ReturnGraphClause& r,
                                           const Table& input) {
  EvalContext ctx = MakeEvalContext();
  auto out_graph = std::make_shared<PropertyGraph>();
  // Each driving row instantiates the pattern once; bound node variables
  // map to nodes in the new graph (copying labels and properties),
  // de-duplicated by source node id.
  std::map<uint64_t, NodeId> node_map;
  auto materialize = [&](const Value& v) -> Result<NodeId> {
    if (!v.is_node()) {
      return Status::TypeError(
          "RETURN GRAPH pattern variables must be bound to nodes");
    }
    NodeId src = v.AsNode();
    auto it = node_map.find(src.id);
    if (it != node_map.end()) return it->second;
    PropertyList props;
    for (const auto& [k, val] : graph_->NodeProperties(src)) {
      props.emplace_back(k, val);
    }
    // lint: allow(graph-mutation) RETURN GRAPH builds a brand-new graph
    NodeId dst = out_graph->CreateNode(graph_->NodeLabels(src), props);
    node_map.emplace(src.id, dst);
    return dst;
  };

  for (const auto& row : input.rows()) {
    RowEnvironment env(input, row);
    for (const auto& path : r.pattern.paths) {
      Value start = Value::Null();
      if (path.start.var) {
        auto v = env.Lookup(*path.start.var);
        if (v) start = *v;
      }
      if (start.is_null()) continue;  // null rows project nothing
      GQL_ASSIGN_OR_RETURN(NodeId prev, materialize(start));
      for (const auto& hop : path.hops) {
        Value nextv = Value::Null();
        if (hop.node.var) {
          auto v = env.Lookup(*hop.node.var);
          if (v) nextv = *v;
        }
        if (nextv.is_null()) break;
        GQL_ASSIGN_OR_RETURN(NodeId next, materialize(nextv));
        PropertyList props;
        for (const auto& [k, e] : hop.rel.properties) {
          GQL_ASSIGN_OR_RETURN(Value val, EvaluateExpr(*e, env, ctx));
          props.emplace_back(k, std::move(val));
        }
        NodeId from = prev;
        NodeId to = next;
        if (hop.rel.direction == Direction::kLeft) std::swap(from, to);
        GQL_ASSIGN_OR_RETURN(
            RelId rel,
            // lint: allow(graph-mutation) RETURN GRAPH builds a new graph
            out_graph->CreateRelationship(from, to, hop.rel.types[0], props));
        (void)rel;
        prev = next;
      }
    }
  }

  catalog_.RegisterGraph(r.graph_name, out_graph);
  produced_graphs_.emplace_back(r.graph_name, out_graph);
  // RETURN GRAPH produces a graph, not a table: the table part of the
  // "table-graphs" result (§6) is empty here.
  return Table();
}

}  // namespace gqlite
