#ifndef GQLITE_INTERP_ROW_BATCH_H_
#define GQLITE_INTERP_ROW_BATCH_H_

#include <cstdint>
#include <vector>

#include "src/value/value.h"

namespace gqlite {

/// A morsel of rows flowing between physical operators. The batched
/// runtime (see src/plan/runtime.h) moves one RowBatch per virtual call
/// instead of one row, amortizing dispatch and keeping per-operator state
/// hot across the ~kDefaultCapacity rows of a morsel.
///
/// Rows are stored densely in production order; filters mark surviving
/// rows through a *selection vector* instead of copying them out, so a
/// chain of filters costs one indirection, not one materialization each.
/// All consumers see the batch through `size()`/`row(i)`, which apply the
/// selection transparently.
class RowBatch {
 public:
  /// Default morsel capacity (EngineOptions::batch_size overrides).
  static constexpr size_t kDefaultCapacity = 1024;

  /// `capacity` caps how many rows a producer may append; slot storage
  /// grows on demand (small results never pay for a full morsel).
  explicit RowBatch(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  size_t capacity() const { return capacity_; }
  /// True once the producer should stop appending (underlying rows, not
  /// the selected view — a filtered batch never regains room).
  bool full() const { return used_ >= capacity_; }
  /// Number of live rows (selection applied).
  size_t size() const { return has_selection_ ? sel_.size() : used_; }
  bool empty() const { return size() == 0; }

  /// i-th live row.
  const ValueList& row(size_t i) const {
    return rows_[has_selection_ ? sel_[i] : i];
  }
  /// Mutable access to the i-th live row (consumers may move rows out of
  /// a batch they are about to discard).
  ValueList& MutableRow(size_t i) {
    return rows_[has_selection_ ? sel_[i] : i];
  }

  /// Drops all rows and the selection; keeps the capacity AND the row
  /// slots — refilling a cleared batch reuses each slot's ValueList
  /// allocation instead of reallocating per row.
  void Clear() {
    used_ = 0;
    sel_.clear();
    has_selection_ = false;
  }

  // lint: allow(value-by-value) move sink: callers hand over the row
  void Append(ValueList row) {
    if (used_ < rows_.size()) {
      rows_[used_] = std::move(row);
    } else {
      rows_.push_back(std::move(row));
    }
    ++used_;
  }

  /// Appends a copy of `base` and returns it for in-place extension (the
  /// common produce pattern: copy the driving row, push new columns).
  ValueList& AppendFrom(const ValueList& base) {
    if (used_ < rows_.size()) {
      ValueList& slot = rows_[used_++];
      slot.assign(base.begin(), base.end());
      return slot;
    }
    rows_.push_back(base);
    ++used_;
    return rows_.back();
  }

  /// Restricts the live set to the given *live indices* (positions in
  /// 0..size()-1, ascending). Composes with an existing selection, so
  /// stacked filters narrow the same batch without copying rows.
  void Select(const std::vector<uint32_t>& live) {
    if (!has_selection_) {
      sel_.assign(live.begin(), live.end());
      has_selection_ = true;
      return;
    }
    std::vector<uint32_t> mapped;
    mapped.reserve(live.size());
    for (uint32_t i : live) mapped.push_back(sel_[i]);
    sel_ = std::move(mapped);
  }

 private:
  size_t capacity_;
  std::vector<ValueList> rows_;  // slot pool; first used_ entries are live
  size_t used_ = 0;
  std::vector<uint32_t> sel_;  // indices into rows_ when has_selection_
  bool has_selection_ = false;
};

/// Counters a drain accumulates over a plan execution (gqlsh :stats).
struct BatchStats {
  int64_t rows = 0;
  int64_t batches = 0;
};

}  // namespace gqlite

#endif  // GQLITE_INTERP_ROW_BATCH_H_
