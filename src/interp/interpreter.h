#ifndef GQLITE_INTERP_INTERPRETER_H_
#define GQLITE_INTERP_INTERPRETER_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/graph_catalog.h"
#include "src/interp/table.h"
#include "src/pattern/matcher.h"

namespace gqlite {

/// Handler for updating clauses (CREATE/DELETE/SET/REMOVE/MERGE), wired in
/// by the engine (src/update implements it; the interpreter stays
/// read-only). Receives the clause and the driving table; returns the
/// table the clause passes on.
using UpdateClauseHandler =
    std::function<Result<Table>(const ast::Clause&, Table)>;

/// The reference interpreter: a literal implementation of the paper's
/// denotational semantics. Each clause is a function from tables to
/// tables (Figure 7); a query is their composition applied to T()
/// (Figure 6): output(Q, G) = ⟦Q⟧G(T()).
///
/// FROM GRAPH (Cypher 10) switches the working graph for subsequent
/// clauses; RETURN GRAPH constructs and registers a new graph.
class Interpreter {
 public:
  struct Options {
    MatchOptions match;
  };

  Interpreter(CatalogRef catalog, GraphPtr graph, const ValueMap* params,
              Options options, uint64_t* rand_state)
      : catalog_(std::move(catalog)),
        graph_(std::move(graph)),
        params_(params),
        options_(options),
        rand_state_(rand_state) {}

  /// Sets the handler for updating clauses; without one, updating queries
  /// fail with kUnimplemented.
  void set_update_handler(UpdateClauseHandler h) {
    update_handler_ = std::move(h);
  }

  /// Runs a full query (including UNION). The result table is the query
  /// output; graphs produced by RETURN GRAPH are listed in
  /// `produced_graphs()` and registered in the catalog.
  Result<Table> ExecuteQuery(const ast::Query& q);

  /// ⟦C⟧G(T): applies a single clause to a driving table (exposed for
  /// tests that replay the paper's step-by-step walkthrough).
  Result<Table> ExecuteClause(const ast::Clause& c, Table input);

  const std::vector<std::pair<std::string, GraphPtr>>& produced_graphs()
      const {
    return produced_graphs_;
  }

  /// The graph currently queried (changed by FROM GRAPH).
  const GraphPtr& current_graph() const { return graph_; }

  /// Evaluation context bound to the current graph (pattern-predicate
  /// hook included).
  EvalContext MakeEvalContext() const;

 private:
  Result<Table> ExecuteSingle(const ast::SingleQuery& q);
  Result<Table> ExecMatch(const ast::MatchClause& m, const Table& input);
  Result<Table> ExecUnwind(const ast::UnwindClause& u, const Table& input);
  Result<Table> ExecFromGraph(const ast::FromGraphClause& f, Table input);
  Result<Table> ExecReturnGraph(const ast::ReturnGraphClause& r,
                                const Table& input);

  CatalogRef catalog_;
  GraphPtr graph_;
  const ValueMap* params_;
  Options options_;
  uint64_t* rand_state_;
  UpdateClauseHandler update_handler_;
  std::vector<std::pair<std::string, GraphPtr>> produced_graphs_;
};

}  // namespace gqlite

#endif  // GQLITE_INTERP_INTERPRETER_H_
