#include "src/interp/table.h"

#include <algorithm>
#include <unordered_set>

#include "src/graph/property_graph.h"
#include "src/interp/row_batch.h"
#include "src/value/value_compare.h"

namespace gqlite {

int Table::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void Table::Append(const Table& other) {
  for (const auto& r : other.rows_) rows_.push_back(r);
}

void Table::AddBatch(RowBatch* batch) {
  for (size_t i = 0; i < batch->size(); ++i) {
    rows_.push_back(std::move(batch->MutableRow(i)));
  }
}

Table Table::Deduplicated() const {
  Table out(fields_);
  std::unordered_set<ValueList, RowEquivalenceHash, RowEquivalenceEq> seen;
  for (const auto& r : rows_) {
    if (seen.insert(r).second) out.rows_.push_back(r);
  }
  return out;
}

Table Table::Sorted() const {
  Table out = *this;
  std::sort(out.rows_.begin(), out.rows_.end(),
            [](const ValueList& a, const ValueList& b) {
              for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
                int c = ValueOrder(a[i], b[i]);
                if (c != 0) return c < 0;
              }
              return a.size() < b.size();
            });
  return out;
}

bool Table::SameBag(const Table& other) const {
  if (fields_ != other.fields_) return false;
  if (rows_.size() != other.rows_.size()) return false;
  Table a = Sorted();
  Table b = other.Sorted();
  for (size_t i = 0; i < a.rows_.size(); ++i) {
    if (!RowEquivalent(a.rows_[i], b.rows_[i])) return false;
  }
  return true;
}

std::string Table::ToString(const PropertyGraph* graph) const {
  auto render = [&](const Value& v) {
    return graph ? graph->Render(v) : v.ToString();
  };
  // Compute column widths.
  std::vector<size_t> width(fields_.size());
  for (size_t c = 0; c < fields_.size(); ++c) width[c] = fields_[c].size();
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> line;
    for (size_t c = 0; c < row.size(); ++c) {
      line.push_back(render(row[c]));
      if (c < width.size()) width[c] = std::max(width[c], line.back().size());
    }
    cells.push_back(std::move(line));
  }
  std::string sep = "+";
  for (size_t c = 0; c < fields_.size(); ++c) {
    sep += std::string(width[c] + 2, '-') + "+";
  }
  std::string out = sep + "\n|";
  for (size_t c = 0; c < fields_.size(); ++c) {
    out += " " + fields_[c] + std::string(width[c] - fields_[c].size(), ' ') +
           " |";
  }
  out += "\n" + sep + "\n";
  for (const auto& line : cells) {
    out += "|";
    for (size_t c = 0; c < line.size(); ++c) {
      out += " " + line[c] + std::string(width[c] - line[c].size(), ' ') + " |";
    }
    out += "\n";
  }
  out += sep + "\n";
  out += std::to_string(rows_.size()) +
         (rows_.size() == 1 ? " row\n" : " rows\n");
  return out;
}

}  // namespace gqlite
