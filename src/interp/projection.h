#ifndef GQLITE_INTERP_PROJECTION_H_
#define GQLITE_INTERP_PROJECTION_H_

#include "src/common/result.h"
#include "src/frontend/ast.h"
#include "src/interp/table.h"

namespace gqlite {

/// Evaluates a RETURN/WITH projection body over a driving table
/// (Figures 6/7 rules for RETURN/WITH, extended with the standard
/// DISTINCT / ORDER BY / SKIP / LIMIT sub-clauses and aggregation).
///
/// Aggregation follows §3: projection items that contain no aggregate
/// function act as implicit grouping keys; items containing aggregates are
/// evaluated once per group, with each aggregate sub-expression replaced
/// by its accumulated result and any remaining non-aggregate
/// sub-expressions evaluated against a representative row of the group
/// (SQL-style). On an empty input with no grouping keys, one row of
/// neutral aggregate values is produced (count → 0, collect → [], sum →
/// 0, min/max/avg → null).
///
/// ORDER BY sees the projected columns; for non-aggregating projections it
/// may also reference the pre-projection variables (output shadows input).
Result<Table> EvaluateProjection(const ast::ProjectionBody& body,
                                 const Table& input, const EvalContext& ctx);

}  // namespace gqlite

#endif  // GQLITE_INTERP_PROJECTION_H_
