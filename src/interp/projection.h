#ifndef GQLITE_INTERP_PROJECTION_H_
#define GQLITE_INTERP_PROJECTION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/frontend/ast.h"
#include "src/interp/table.h"

namespace gqlite {

/// Evaluates a RETURN/WITH projection body over a driving table
/// (Figures 6/7 rules for RETURN/WITH, extended with the standard
/// DISTINCT / ORDER BY / SKIP / LIMIT sub-clauses and aggregation).
///
/// Aggregation follows §3: projection items that contain no aggregate
/// function act as implicit grouping keys; items containing aggregates are
/// evaluated once per group, with each aggregate sub-expression replaced
/// by its accumulated result and any remaining non-aggregate
/// sub-expressions evaluated against a representative row of the group
/// (SQL-style). On an empty input with no grouping keys, one row of
/// neutral aggregate values is produced (count → 0, collect → [], sum →
/// 0, min/max/avg → null).
///
/// ORDER BY sees the projected columns; for non-aggregating projections it
/// may also reference the pre-projection variables (output shadows input).
Result<Table> EvaluateProjection(const ast::ProjectionBody& body,
                                 const Table& input, const EvalContext& ctx);

/// True if any projection item contains an aggregate function call (the
/// body groups rather than maps).
bool ProjectionAggregates(const ast::ProjectionBody& body);

/// Global first-occurrence position of an aggregation group: the (scan
/// range, row-within-range) coordinates of the row that created it. The
/// partitioned parallel merge stamps every group at creation and
/// interleaves the per-partition group streams back into ascending stamp
/// order — exactly the serial first-occurrence group order.
struct GroupStamp {
  uint64_t range = 0;
  uint64_t row = 0;
};
inline bool operator<(const GroupStamp& a, const GroupStamp& b) {
  return a.range != b.range ? a.range < b.range : a.row < b.row;
}

/// Grouping/aggregation state of one aggregating projection body — the
/// machinery behind EvaluateProjection's aggregate path, exposed so the
/// morsel-driven parallel runtime can aggregate per worker and merge.
///
/// Protocol: every partition Plan()s its own state against its input
/// fields, Accumulate()s its share of the rows, and the merge stage folds
/// the partials together with MergeFrom() *in partition (input) order* —
/// that order makes collect(), DISTINCT first-occurrence, group output
/// order and representative-row choice identical to a serial run over the
/// concatenated input. Finish() then produces the grouped rows (one per
/// group, plus the neutral row for empty keyless input), to be
/// post-processed by ApplyProjectionTail.
class AggregationState {
 public:
  static Result<AggregationState> Plan(
      const ast::ProjectionBody& body,
      const std::vector<std::string>& input_fields);

  AggregationState(AggregationState&&) noexcept;
  AggregationState& operator=(AggregationState&&) noexcept;
  ~AggregationState();

  /// A fresh (empty-groups) state sharing this state's plan — item
  /// resolution and the rewritten aggregate expressions are immutable
  /// and shared, so a worker plans once and forks per partition.
  AggregationState Fork() const;

  /// Folds every row of `input` into the group accumulators. The table's
  /// columns must be positionally compatible with the fields this state
  /// was planned against.
  Status Accumulate(const Table& input, const EvalContext& ctx);

  /// Folds one row (positionally compatible with the planned input
  /// fields) into the group accumulators — the streaming entry point: the
  /// batched and parallel runtimes feed morsels straight into the state
  /// without materializing the pre-aggregation table. `stamp` records the
  /// row's global scan position on any group it creates (serial callers
  /// leave the default; only the partitioned merge reads stamps back).
  Status AccumulateRow(const ValueList& row, const EvalContext& ctx,
                       GroupStamp stamp = {});

  /// Absorbs a partial that accumulated a LATER partition of the input
  /// (merge in partition order). `other` must be planned from the same
  /// projection body; it is consumed. Groups keep the stamp of their
  /// earliest occurrence.
  Status MergeFrom(AggregationState&& other);

  /// Produces the grouped output rows (group keys in first-occurrence
  /// order). Terminal: the accumulators are consumed. When `stamps` is
  /// non-null it receives each output row's first-occurrence stamp
  /// (ascending — groups are stored in first-occurrence order).
  Result<Table> Finish(const EvalContext& ctx,
                       std::vector<GroupStamp>* stamps = nullptr);

  /// True when the planned body has non-aggregating items: rows group by
  /// key (the partitioned parallel merge applies). False = keyless global
  /// aggregation (single group; the direct-fold merge chain stays O(1)
  /// per partial).
  bool has_keys() const;

  /// Output column names (one per projection item).
  const std::vector<std::string>& out_fields() const;

 private:
  friend class PartitionedAggregationState;
  AggregationState();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// P-way hash-partitioned aggregation, the parallel runtime's keyed-merge
/// building block: rows route to one of P AggregationStates by group-key
/// hash (RowHash — the same equivalence-consistent hash the group index
/// probes with, so equivalent keys always land in the same partition).
/// Each worker keeps one of these per scan range; the merge stage then
/// folds partition p of every range in range order — P INDEPENDENT
/// MergeFrom chains running as parallel tasks instead of one serial
/// chain — and the stamps recorded at group creation let the final
/// interleave restore serial first-occurrence group order exactly.
class PartitionedAggregationState {
 public:
  /// Forks `proto` (a planned, keyed AggregationState) into `partitions`
  /// empty states sharing its plan.
  PartitionedAggregationState(const AggregationState& proto,
                              size_t partitions);

  /// Builds the row's grouping key once, routes by its hash, and folds
  /// the row into the owning partition under `stamp`.
  Status AccumulateRow(const ValueList& row, const EvalContext& ctx,
                       GroupStamp stamp);

  size_t num_partitions() const { return parts_.size(); }
  AggregationState& partition(size_t p) { return parts_[p]; }

 private:
  std::vector<AggregationState> parts_;
  ValueList key_scratch_;
};

/// The shared post-projection pipeline: DISTINCT, ORDER BY, SKIP / LIMIT
/// over already-projected rows. `source_rows` (optional, sized to
/// `output`) pairs each output row with the input row that produced it so
/// ORDER BY in non-aggregating projections can reference pre-projection
/// variables (`input` supplies their fields); aggregated output passes
/// nullptr.
Result<Table> ApplyProjectionTail(
    const ast::ProjectionBody& body, Table output,
    const std::vector<const ValueList*>* source_rows, const Table* input,
    const EvalContext& ctx);

/// The map stage of a NON-aggregating projection body over a chunk of
/// input rows: one output row per input row, with no tail (DISTINCT /
/// ORDER BY / SKIP / LIMIT) applied. When `keys` is non-null, each output
/// row's ORDER BY key row is computed in the same pass — against the
/// merged output-shadows-input environment, exactly as ApplyProjectionTail
/// computes it. Exposed so the parallel runtime can project and key scan
/// ranges on their workers and keep only sort keys (not pre-projection
/// rows) alive into the merge; ApplyProjectionTail shares the per-row key
/// helper below, so the two paths cannot drift.
Result<Table> ProjectRows(const ast::ProjectionBody& body, const Table& input,
                          const EvalContext& ctx,
                          std::vector<ValueList>* keys);

/// The ORDER BY key row of one projected row. A key expression that
/// textually matches a projected column resolves to that column (alias
/// resolution); others evaluate against the output row, with `source` /
/// `input` (both optional) supplying the pre-projection variables (output
/// shadows input). Pass source == nullptr for aggregated or
/// post-DISTINCT rows, which have no source pairing.
Result<ValueList> OrderKeysForRow(const ast::ProjectionBody& body,
                                  const Table& output, const ValueList& row,
                                  const ValueList* source, const Table* input,
                                  const EvalContext& ctx);

/// Three-way comparison of two precomputed ORDER BY key rows under
/// `body`'s sort spec (per-key ascending/descending over ValueOrder).
/// Returns <0 / 0 / >0. Ties (0) are broken by the caller on original
/// input position, which is what makes the parallel merge sort reproduce
/// std::stable_sort byte-for-byte.
int CompareOrderKeys(const ast::ProjectionBody& body, const ValueList& a,
                     const ValueList& b);

/// Evaluated SKIP/LIMIT bounds of a projection body: skip = 0 and
/// limit = -1 (unbounded) when absent. Errors carry the serial messages
/// ("SKIP must be a non-negative integer").
struct SkipLimitBounds {
  int64_t skip = 0;
  int64_t limit = -1;
};
Result<SkipLimitBounds> EvaluateSkipLimit(const ast::ProjectionBody& body,
                                          const EvalContext& ctx);

}  // namespace gqlite

#endif  // GQLITE_INTERP_PROJECTION_H_
