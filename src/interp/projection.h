#ifndef GQLITE_INTERP_PROJECTION_H_
#define GQLITE_INTERP_PROJECTION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/frontend/ast.h"
#include "src/interp/table.h"

namespace gqlite {

/// Evaluates a RETURN/WITH projection body over a driving table
/// (Figures 6/7 rules for RETURN/WITH, extended with the standard
/// DISTINCT / ORDER BY / SKIP / LIMIT sub-clauses and aggregation).
///
/// Aggregation follows §3: projection items that contain no aggregate
/// function act as implicit grouping keys; items containing aggregates are
/// evaluated once per group, with each aggregate sub-expression replaced
/// by its accumulated result and any remaining non-aggregate
/// sub-expressions evaluated against a representative row of the group
/// (SQL-style). On an empty input with no grouping keys, one row of
/// neutral aggregate values is produced (count → 0, collect → [], sum →
/// 0, min/max/avg → null).
///
/// ORDER BY sees the projected columns; for non-aggregating projections it
/// may also reference the pre-projection variables (output shadows input).
Result<Table> EvaluateProjection(const ast::ProjectionBody& body,
                                 const Table& input, const EvalContext& ctx);

/// True if any projection item contains an aggregate function call (the
/// body groups rather than maps).
bool ProjectionAggregates(const ast::ProjectionBody& body);

/// Grouping/aggregation state of one aggregating projection body — the
/// machinery behind EvaluateProjection's aggregate path, exposed so the
/// morsel-driven parallel runtime can aggregate per worker and merge.
///
/// Protocol: every partition Plan()s its own state against its input
/// fields, Accumulate()s its share of the rows, and the merge stage folds
/// the partials together with MergeFrom() *in partition (input) order* —
/// that order makes collect(), DISTINCT first-occurrence, group output
/// order and representative-row choice identical to a serial run over the
/// concatenated input. Finish() then produces the grouped rows (one per
/// group, plus the neutral row for empty keyless input), to be
/// post-processed by ApplyProjectionTail.
class AggregationState {
 public:
  static Result<AggregationState> Plan(
      const ast::ProjectionBody& body,
      const std::vector<std::string>& input_fields);

  AggregationState(AggregationState&&) noexcept;
  AggregationState& operator=(AggregationState&&) noexcept;
  ~AggregationState();

  /// A fresh (empty-groups) state sharing this state's plan — item
  /// resolution and the rewritten aggregate expressions are immutable
  /// and shared, so a worker plans once and forks per partition.
  AggregationState Fork() const;

  /// Folds every row of `input` into the group accumulators. The table's
  /// columns must be positionally compatible with the fields this state
  /// was planned against.
  Status Accumulate(const Table& input, const EvalContext& ctx);

  /// Folds one row (positionally compatible with the planned input
  /// fields) into the group accumulators — the streaming entry point: the
  /// batched and parallel runtimes feed morsels straight into the state
  /// without materializing the pre-aggregation table.
  Status AccumulateRow(const ValueList& row, const EvalContext& ctx);

  /// Absorbs a partial that accumulated a LATER partition of the input
  /// (merge in partition order). `other` must be planned from the same
  /// projection body; it is consumed.
  Status MergeFrom(AggregationState&& other);

  /// Produces the grouped output rows (group keys in first-occurrence
  /// order). Terminal: the accumulators are consumed.
  Result<Table> Finish(const EvalContext& ctx);

  /// Output column names (one per projection item).
  const std::vector<std::string>& out_fields() const;

 private:
  AggregationState();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The shared post-projection pipeline: DISTINCT, ORDER BY, SKIP / LIMIT
/// over already-projected rows. `source_rows` (optional, sized to
/// `output`) pairs each output row with the input row that produced it so
/// ORDER BY in non-aggregating projections can reference pre-projection
/// variables (`input` supplies their fields); aggregated output passes
/// nullptr.
Result<Table> ApplyProjectionTail(
    const ast::ProjectionBody& body, Table output,
    const std::vector<const ValueList*>* source_rows, const Table* input,
    const EvalContext& ctx);

}  // namespace gqlite

#endif  // GQLITE_INTERP_PROJECTION_H_
