#ifndef GQLITE_INTERP_TABLE_H_
#define GQLITE_INTERP_TABLE_H_

#include <string>
#include <vector>

#include "src/eval/evaluator.h"
#include "src/value/value.h"

namespace gqlite {

class PropertyGraph;
class RowBatch;

/// A table in the paper's sense (§4.1): a *bag* of uniform records over a
/// set of named fields. Queries are functions from tables to tables;
/// evaluation starts from Table::Unit(), the table containing the single
/// empty tuple ().
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<std::string> fields)
      : fields_(std::move(fields)) {}

  /// T(): one empty record, no fields — the input to every query.
  static Table Unit() {
    Table t;
    t.rows_.emplace_back();
    return t;
  }

  const std::vector<std::string>& fields() const { return fields_; }
  const std::vector<ValueList>& rows() const { return rows_; }
  std::vector<ValueList>& mutable_rows() { return rows_; }
  size_t NumRows() const { return rows_.size(); }
  size_t NumFields() const { return fields_.size(); }

  /// Index of `name` or -1.
  int FieldIndex(const std::string& name) const;

  // lint: allow(value-by-value) move sink: callers hand over the row
  void AddRow(ValueList row) { rows_.push_back(std::move(row)); }

  /// Moves the live rows of a morsel into the table (the batched
  /// runtime's drain step; `batch` is left in an unspecified row state).
  void AddBatch(RowBatch* batch);

  /// Bag union (⊎): appends the rows of `other` (fields must agree).
  void Append(const Table& other);

  /// ε(T): duplicate elimination by value equivalence.
  Table Deduplicated() const;

  /// Canonical row order (lexicographic ValueOrder) — for bag comparison
  /// in tests; the engine itself never sorts implicitly.
  Table Sorted() const;

  /// True if both tables have the same fields and the same bag of rows.
  bool SameBag(const Table& other) const;

  /// ASCII rendering; when `graph` is given, nodes/relationships render
  /// with labels and properties.
  std::string ToString(const PropertyGraph* graph = nullptr) const;

 private:
  std::vector<std::string> fields_;
  std::vector<ValueList> rows_;
};

/// Environment over one row of a table.
class RowEnvironment : public Environment {
 public:
  RowEnvironment(const Table& table, const ValueList& row)
      : table_(table), row_(row) {}
  const Value* Lookup(const std::string& name) const override {
    int i = table_.FieldIndex(name);
    if (i < 0) return nullptr;
    return &row_[i];
  }

 private:
  const Table& table_;
  const ValueList& row_;
};

/// Output row environment layered over an input row environment (ORDER BY
/// in non-aggregating projections sees both; output shadows input).
class MergedRowEnvironment : public Environment {
 public:
  MergedRowEnvironment(const Environment& output, const Environment& input)
      : output_(output), input_(input) {}
  const Value* Lookup(const std::string& name) const override {
    const Value* v = output_.Lookup(name);
    if (v != nullptr) return v;
    return input_.Lookup(name);
  }

 private:
  const Environment& output_;
  const Environment& input_;
};

}  // namespace gqlite

#endif  // GQLITE_INTERP_TABLE_H_
