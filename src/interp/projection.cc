#include "src/interp/projection.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>

#include "src/eval/aggregation.h"
#include "src/frontend/analyzer.h"
#include "src/value/value_compare.h"

namespace gqlite {

using namespace ast;  // NOLINT(build/namespaces)

namespace {

/// Rewrites an expression by pulling out aggregate calls: each aggregate
/// occurrence becomes a VariableExpr("#aggN") and its (argument, function,
/// distinct) triple is appended to `slots`. The returned clone is
/// evaluated per group against an environment that resolves "#aggN".
struct AggSlot {
  std::string fn;      // "count", "sum", ... or "count(*)"
  bool distinct = false;
  const Expr* arg = nullptr;  // null for count(*)
};

ExprPtr ExtractAggregates(const Expr& e, std::vector<AggSlot>* slots) {
  if (e.kind == Expr::Kind::kCountStar) {
    slots->push_back(AggSlot{"count(*)", false, nullptr});
    return std::make_unique<VariableExpr>("#agg" +
                                          std::to_string(slots->size() - 1));
  }
  if (e.kind == Expr::Kind::kFunctionCall) {
    const auto& f = static_cast<const FunctionCallExpr&>(e);
    if (IsAggregateFunction(f.name)) {
      slots->push_back(AggSlot{f.name, f.distinct, f.args[0].get()});
      return std::make_unique<VariableExpr>(
          "#agg" + std::to_string(slots->size() - 1));
    }
    std::vector<ExprPtr> args;
    for (const auto& a : f.args) args.push_back(ExtractAggregates(*a, slots));
    return std::make_unique<FunctionCallExpr>(f.name, f.distinct,
                                              std::move(args));
  }
  if (e.kind == Expr::Kind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(e);
    return std::make_unique<BinaryExpr>(b.op, ExtractAggregates(*b.lhs, slots),
                                        ExtractAggregates(*b.rhs, slots));
  }
  if (e.kind == Expr::Kind::kUnary) {
    const auto& u = static_cast<const UnaryExpr&>(e);
    return std::make_unique<UnaryExpr>(u.op,
                                       ExtractAggregates(*u.operand, slots));
  }
  if (e.kind == Expr::Kind::kListLiteral) {
    const auto& l = static_cast<const ListLiteralExpr&>(e);
    std::vector<ExprPtr> items;
    for (const auto& i : l.items) items.push_back(ExtractAggregates(*i, slots));
    return std::make_unique<ListLiteralExpr>(std::move(items));
  }
  if (e.kind == Expr::Kind::kMapLiteral) {
    const auto& m = static_cast<const MapLiteralExpr&>(e);
    std::vector<std::pair<std::string, ExprPtr>> entries;
    for (const auto& [k, v] : m.entries) {
      entries.emplace_back(k, ExtractAggregates(*v, slots));
    }
    return std::make_unique<MapLiteralExpr>(std::move(entries));
  }
  // Other node kinds cannot contain aggregates per the analyzer (or are
  // leaves); clone as-is.
  return CloneExpr(e);
}

/// Environment that resolves "#aggN" placeholders, falling back to a base.
class AggEnvironment : public Environment {
 public:
  AggEnvironment(const Environment& base, const ValueList& agg_values)
      : base_(base), agg_values_(agg_values) {}
  const Value* Lookup(const std::string& name) const override {
    if (name.size() > 4 && name.compare(0, 4, "#agg") == 0) {
      size_t i = std::stoul(name.substr(4));
      if (i < agg_values_.size()) return &agg_values_[i];
    }
    return base_.Lookup(name);
  }

 private:
  const Environment& base_;
  const ValueList& agg_values_;
};

Result<int64_t> EvalCount(const Expr& e, const EvalContext& ctx,
                          const char* what) {
  MapEnvironment empty;
  GQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(e, empty, ctx));
  if (!v.is_int() || v.AsInt() < 0) {
    return Status::EvaluationError(std::string(what) +
                                   " must be a non-negative integer");
  }
  return v.AsInt();
}

}  // namespace

bool ProjectionAggregates(const ProjectionBody& body) {
  for (const auto& item : body.items) {
    if (ContainsAggregate(*item.expr)) return true;
  }
  return false;
}

// ---- AggregationState -------------------------------------------------------

struct AggregationState::Impl {
  struct Item {
    std::string name;
    const Expr* expr = nullptr;  // original expression (null: copy field)
    int field_index = -1;        // input column when expr == nullptr
    bool aggregating = false;
    ExprPtr rewritten;           // with aggregates extracted (if aggregating)
    std::vector<AggSlot> slots;  // this item's aggregate sub-expressions
  };
  /// The immutable part of the plan (item resolution, the rewritten
  /// aggregate expressions, the output schema) — shared between Fork()ed
  /// states so per-partition states pay no re-planning.
  struct Shape {
    std::vector<std::string> input_fields;
    std::vector<Item> items;
    std::vector<std::string> out_fields;
    bool has_keys = false;
  };
  /// One group, in first-occurrence order. The representative row is
  /// owned (partitions outlive their input tables under the parallel
  /// merge) and is the group's FIRST input row, as in the serial run.
  struct Group {
    ValueList key;
    ValueList representative;
    std::vector<std::unique_ptr<Aggregator>> aggs;
    GroupStamp stamp;  // global scan position of the creating row
  };

  std::shared_ptr<const Shape> shape;
  std::vector<Group> groups;
  std::unordered_map<ValueList, size_t, RowEquivalenceHash, RowEquivalenceEq>
      index;
  ValueList key_scratch;  // reused per row; copied only on new groups

  Result<std::vector<std::unique_ptr<Aggregator>>> MakeGroupAggs() const {
    std::vector<std::unique_ptr<Aggregator>> aggs;
    for (const auto& it : shape->items) {
      for (const auto& slot : it.slots) {
        GQL_ASSIGN_OR_RETURN(std::unique_ptr<Aggregator> agg,
                             MakeAggregator(slot.fn, slot.distinct));
        aggs.push_back(std::move(agg));
      }
    }
    return aggs;
  }

  /// Builds the row's grouping key (the values of the non-aggregating
  /// items) into `key`. Static so the partitioned wrapper can build the
  /// key ONCE, route on its hash, and hand it to the owning partition.
  static Status BuildKey(const Shape& shape, const ValueList& row,
                         const Environment& env, const EvalContext& ctx,
                         ValueList* key) {
    key->clear();
    for (const auto& it : shape.items) {
      if (it.aggregating) continue;
      if (it.expr == nullptr) {
        key->push_back(row[it.field_index]);
      } else {
        GQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*it.expr, env, ctx));
        key->push_back(std::move(v));
      }
    }
    return Status::OK();
  }

  /// Folds one row's aggregate arguments into a group's accumulators.
  Status AccumulateSlots(Group& g, const Environment& env,
                         const EvalContext& ctx) {
    size_t slot_idx = 0;
    for (const auto& it : shape->items) {
      for (const auto& slot : it.slots) {
        Value v = Value::Bool(true);  // row marker for count(*)
        if (slot.arg != nullptr) {
          GQL_ASSIGN_OR_RETURN(v, EvaluateExpr(*slot.arg, env, ctx));
        }
        GQL_RETURN_IF_ERROR(g.aggs[slot_idx]->Accumulate(v));
        ++slot_idx;
      }
    }
    return Status::OK();
  }

  /// Probes/creates the group for an already-built key and folds the row
  /// in. New groups record `stamp` (their global first occurrence).
  Status AccumulateKeyed(const ValueList& key, const ValueList& row,
                         const Environment& env, const EvalContext& ctx,
                         GroupStamp stamp) {
    auto pos = index.find(key);
    if (pos == index.end()) {
      Group g;
      g.key = key;
      g.representative = row;
      g.stamp = stamp;
      GQL_ASSIGN_OR_RETURN(g.aggs, MakeGroupAggs());
      pos = index.emplace(key, groups.size()).first;
      groups.push_back(std::move(g));
    }
    return AccumulateSlots(groups[pos->second], env, ctx);
  }
};

AggregationState::AggregationState() : impl_(std::make_unique<Impl>()) {}
AggregationState::AggregationState(AggregationState&&) noexcept = default;
AggregationState& AggregationState::operator=(AggregationState&&) noexcept =
    default;
AggregationState::~AggregationState() = default;

const std::vector<std::string>& AggregationState::out_fields() const {
  return impl_->shape->out_fields;
}

Result<AggregationState> AggregationState::Plan(
    const ProjectionBody& body, const std::vector<std::string>& input_fields) {
  AggregationState state;
  auto shape = std::make_shared<Impl::Shape>();
  shape->input_fields = input_fields;
  // `*` expands to the visible input fields, in order (planner-hidden
  // '#...' columns are internal and never projected).
  if (body.star) {
    for (size_t i = 0; i < input_fields.size(); ++i) {
      const std::string& f = input_fields[i];
      if (!f.empty() && f[0] == '#') continue;
      Impl::Item it;
      it.name = f;
      it.field_index = static_cast<int>(i);
      shape->items.push_back(std::move(it));  // expr == nullptr: copy field
    }
  }
  for (const auto& item : body.items) {
    Impl::Item it;
    it.name = item.alias ? *item.alias : DerivedColumnName(*item.expr);
    it.expr = item.expr.get();
    it.aggregating = ContainsAggregate(*item.expr);
    if (it.aggregating) {
      it.rewritten = ExtractAggregates(*item.expr, &it.slots);
    }
    shape->items.push_back(std::move(it));
  }
  for (const auto& it : shape->items) {
    shape->out_fields.push_back(it.name);
    if (!it.aggregating) shape->has_keys = true;
  }
  state.impl_->shape = std::move(shape);
  return state;
}

AggregationState AggregationState::Fork() const {
  AggregationState state;
  state.impl_->shape = impl_->shape;  // planning is shared, groups are not
  return state;
}

Status AggregationState::Accumulate(const Table& input,
                                    const EvalContext& ctx) {
  for (const auto& row : input.rows()) {
    GQL_RETURN_IF_ERROR(AccumulateRow(row, ctx));
  }
  return Status::OK();
}

Status AggregationState::AccumulateRow(const ValueList& row,
                                       const EvalContext& ctx,
                                       GroupStamp stamp) {
  Impl& im = *impl_;
  SchemaRowEnvironment env(im.shape->input_fields, row);
  if (!im.shape->has_keys) {
    // Global aggregation: every row lands in the single group — no key to
    // build, hash or probe.
    if (im.groups.empty()) {
      Impl::Group g;
      g.representative = row;
      g.stamp = stamp;
      GQL_ASSIGN_OR_RETURN(g.aggs, im.MakeGroupAggs());
      im.groups.push_back(std::move(g));
    }
    return im.AccumulateSlots(im.groups[0], env, ctx);
  }
  // Group by the values of the non-aggregating items (§3: "the first
  // expression, r, is a non-aggregating expression and therefore acts
  // as an implicit grouping key"). The key is built in a reused scratch
  // buffer; the existing-group path allocates nothing.
  GQL_RETURN_IF_ERROR(
      Impl::BuildKey(*im.shape, row, env, ctx, &im.key_scratch));
  return im.AccumulateKeyed(im.key_scratch, row, env, ctx, stamp);
}

Status AggregationState::MergeFrom(AggregationState&& other) {
  Impl& im = *impl_;
  Impl& oim = *other.impl_;
  if (!im.shape->has_keys) {
    // Keyless states bypass the group index (single group, no keys); fold
    // the other state's accumulators directly.
    if (!oim.groups.empty()) {
      if (im.groups.empty()) {
        im.groups = std::move(oim.groups);
      } else {
        Impl::Group& g = im.groups[0];
        Impl::Group& og = oim.groups[0];
        if (og.stamp < g.stamp) g.stamp = og.stamp;
        for (size_t a = 0; a < g.aggs.size(); ++a) {
          GQL_ASSIGN_OR_RETURN(Value partial, og.aggs[a]->ExportPartial());
          GQL_RETURN_IF_ERROR(g.aggs[a]->MergePartial(partial));
        }
      }
    }
    oim.groups.clear();
    oim.index.clear();
    return Status::OK();
  }
  // Walking the later partition's groups in ITS first-occurrence order
  // keeps the merged group order equal to first occurrence over the
  // concatenated input; an already-known group keeps its (earlier)
  // representative.
  for (Impl::Group& og : oim.groups) {
    auto [pos, inserted] = im.index.try_emplace(og.key, im.groups.size());
    if (inserted) {
      im.groups.push_back(std::move(og));
      continue;
    }
    Impl::Group& g = im.groups[pos->second];
    if (og.stamp < g.stamp) g.stamp = og.stamp;
    for (size_t a = 0; a < g.aggs.size(); ++a) {
      GQL_ASSIGN_OR_RETURN(Value partial, og.aggs[a]->ExportPartial());
      GQL_RETURN_IF_ERROR(g.aggs[a]->MergePartial(partial));
    }
  }
  oim.groups.clear();
  oim.index.clear();
  return Status::OK();
}

bool AggregationState::has_keys() const { return impl_->shape->has_keys; }

Result<Table> AggregationState::Finish(const EvalContext& ctx,
                                       std::vector<GroupStamp>* stamps) {
  Impl& im = *impl_;
  // Global aggregation over an empty input: one row of neutral aggregate
  // values — but only when there are no grouping keys.
  if (im.groups.empty() && !im.shape->has_keys) {
    Impl::Group g;
    GQL_ASSIGN_OR_RETURN(g.aggs, im.MakeGroupAggs());
    im.groups.push_back(std::move(g));
  }

  Table output(im.shape->out_fields);
  Table rep_fields(im.shape->input_fields);  // representative env fields
  const Table no_fields((std::vector<std::string>()));
  for (Impl::Group& g : im.groups) {
    ValueList agg_values;
    for (auto& agg : g.aggs) {
      GQL_ASSIGN_OR_RETURN(Value v, agg->Finish());
      agg_values.push_back(std::move(v));
    }
    // The neutral group of an empty keyless input has no representative;
    // its environment must resolve nothing (not index into an empty row).
    bool has_rep =
        g.representative.size() == im.shape->input_fields.size();
    RowEnvironment rep_env(has_rep ? rep_fields : no_fields,
                           g.representative);
    ValueList out_row;
    size_t key_idx = 0;
    size_t slot_base = 0;
    for (const auto& it : im.shape->items) {
      if (!it.aggregating) {
        out_row.push_back(g.key[key_idx++]);
      } else {
        // Offset this item's placeholders into the global slot vector:
        // placeholders were numbered per item starting at its base.
        ValueList local(agg_values.begin() + slot_base,
                        agg_values.begin() + slot_base + it.slots.size());
        AggEnvironment item_env(rep_env, local);
        GQL_ASSIGN_OR_RETURN(Value v,
                             EvaluateExpr(*it.rewritten, item_env, ctx));
        out_row.push_back(std::move(v));
        slot_base += it.slots.size();
      }
    }
    output.AddRow(std::move(out_row));
    if (stamps != nullptr) stamps->push_back(g.stamp);
  }
  im.groups.clear();
  im.index.clear();
  return output;
}

// ---- PartitionedAggregationState --------------------------------------------

PartitionedAggregationState::PartitionedAggregationState(
    const AggregationState& proto, size_t partitions) {
  parts_.reserve(partitions);
  for (size_t p = 0; p < partitions; ++p) parts_.push_back(proto.Fork());
}

Status PartitionedAggregationState::AccumulateRow(const ValueList& row,
                                                  const EvalContext& ctx,
                                                  GroupStamp stamp) {
  const AggregationState::Impl::Shape& shape = *parts_[0].impl_->shape;
  SchemaRowEnvironment env(shape.input_fields, row);
  GQL_RETURN_IF_ERROR(AggregationState::Impl::BuildKey(shape, row, env, ctx,
                                                       &key_scratch_));
  // RowHash is the same equivalence-consistent hash the group index
  // probes with, so equivalent keys (1 vs 1.0) cannot split across
  // partitions and create duplicate groups.
  size_t p = RowHash(key_scratch_) % parts_.size();
  return parts_[p].impl_->AccumulateKeyed(key_scratch_, row, env, ctx, stamp);
}

// ---- Post-projection tail ---------------------------------------------------

Result<ValueList> OrderKeysForRow(const ProjectionBody& body,
                                  const Table& output, const ValueList& row,
                                  const ValueList* source, const Table* input,
                                  const EvalContext& ctx) {
  RowEnvironment out_env(output, row);
  std::unique_ptr<RowEnvironment> in_env;
  std::unique_ptr<MergedRowEnvironment> merged;
  const Environment* env = &out_env;
  if (source != nullptr && input != nullptr) {
    in_env = std::make_unique<RowEnvironment>(*input, *source);
    merged = std::make_unique<MergedRowEnvironment>(out_env, *in_env);
    env = merged.get();
  }
  ValueList keys;
  keys.reserve(body.order_by.size());
  for (const auto& o : body.order_by) {
    // An ORDER BY expression that textually matches a projected column
    // (e.g. ORDER BY p.acmid after RETURN p.acmid, count(*)) refers to
    // that column, like Cypher's alias resolution.
    int col = output.FieldIndex(DerivedColumnName(*o.expr));
    if (col >= 0) {
      keys.push_back(row[col]);
      continue;
    }
    GQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*o.expr, *env, ctx));
    keys.push_back(std::move(v));
  }
  return keys;
}

int CompareOrderKeys(const ProjectionBody& body, const ValueList& a,
                     const ValueList& b) {
  for (size_t i = 0; i < body.order_by.size(); ++i) {
    int c = ValueOrder(a[i], b[i]);
    if (c != 0) return body.order_by[i].ascending ? c : -c;
  }
  return 0;
}

Result<SkipLimitBounds> EvaluateSkipLimit(const ProjectionBody& body,
                                          const EvalContext& ctx) {
  SkipLimitBounds b;
  if (body.skip) {
    GQL_ASSIGN_OR_RETURN(b.skip, EvalCount(*body.skip, ctx, "SKIP"));
  }
  if (body.limit) {
    GQL_ASSIGN_OR_RETURN(b.limit, EvalCount(*body.limit, ctx, "LIMIT"));
  }
  return b;
}

Result<Table> ApplyProjectionTail(
    const ProjectionBody& body, Table output,
    const std::vector<const ValueList*>* source_rows, const Table* input,
    const EvalContext& ctx) {
  if (body.distinct) {
    // ε after projection; source-row pairing is dropped (ORDER BY then
    // sees only the projected columns, as in Cypher).
    output = output.Deduplicated();
    source_rows = nullptr;
  }

  // ORDER BY.
  if (!body.order_by.empty()) {
    struct Keyed {
      ValueList row;
      ValueList keys;
    };
    std::vector<Keyed> keyed;
    keyed.reserve(output.NumRows());
    for (size_t i = 0; i < output.NumRows(); ++i) {
      ValueList& row = output.mutable_rows()[i];
      const ValueList* source =
          source_rows != nullptr && i < source_rows->size()
              ? (*source_rows)[i]
              : nullptr;
      GQL_ASSIGN_OR_RETURN(
          ValueList keys, OrderKeysForRow(body, output, row, source, input,
                                          ctx));
      // Keys are computed; the row itself can move out of the table.
      keyed.push_back(Keyed{std::move(row), std::move(keys)});
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&](const Keyed& a, const Keyed& b) {
                       return CompareOrderKeys(body, a.keys, b.keys) < 0;
                     });
    Table sorted(output.fields());
    for (auto& k : keyed) sorted.AddRow(std::move(k.row));
    output = std::move(sorted);
  }

  // SKIP / LIMIT.
  if (body.skip || body.limit) {
    GQL_ASSIGN_OR_RETURN(SkipLimitBounds bounds, EvaluateSkipLimit(body, ctx));
    Table limited(output.fields());
    int64_t n = static_cast<int64_t>(output.NumRows());
    int64_t end = bounds.limit < 0 ? n : std::min(n, bounds.skip + bounds.limit);
    for (int64_t i = bounds.skip; i < end; ++i) {
      limited.AddRow(std::move(output.mutable_rows()[i]));
    }
    output = std::move(limited);
  }

  return output;
}

// ---- EvaluateProjection -----------------------------------------------------

Result<Table> ProjectRows(const ProjectionBody& body, const Table& input,
                          const EvalContext& ctx,
                          std::vector<ValueList>* keys) {
  // Non-aggregating map: one output row per input row. `*` expands to all
  // input fields (in order).
  struct Item {
    std::string name;
    const Expr* expr = nullptr;  // null: copy the named input field
  };
  std::vector<Item> items;
  if (body.star) {
    for (const auto& f : input.fields()) items.push_back({f, nullptr});
  }
  for (const auto& item : body.items) {
    items.push_back(
        {item.alias ? *item.alias : DerivedColumnName(*item.expr),
         item.expr.get()});
  }
  std::vector<std::string> out_fields;
  for (const auto& it : items) out_fields.push_back(it.name);
  Table output(out_fields);

  for (const auto& row : input.rows()) {
    RowEnvironment env(input, row);
    ValueList out_row;
    out_row.reserve(items.size());
    for (const auto& it : items) {
      if (it.expr == nullptr) {
        out_row.push_back(row[input.FieldIndex(it.name)]);
      } else {
        GQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*it.expr, env, ctx));
        out_row.push_back(std::move(v));
      }
    }
    if (keys != nullptr) {
      // Same-pass keying: the output row's ORDER BY keys against the
      // merged output-shadows-input environment, before the source row
      // goes out of reach of the merge stage.
      GQL_ASSIGN_OR_RETURN(
          ValueList k,
          OrderKeysForRow(body, output, out_row, &row, &input, ctx));
      keys->push_back(std::move(k));
    }
    output.AddRow(std::move(out_row));
  }
  return output;
}

Result<Table> EvaluateProjection(const ProjectionBody& body,
                                 const Table& input, const EvalContext& ctx) {
  if (ProjectionAggregates(body)) {
    GQL_ASSIGN_OR_RETURN(AggregationState state,
                         AggregationState::Plan(body, input.fields()));
    GQL_RETURN_IF_ERROR(state.Accumulate(input, ctx));
    GQL_ASSIGN_OR_RETURN(Table output, state.Finish(ctx));
    return ApplyProjectionTail(body, std::move(output), nullptr, &input, ctx);
  }

  GQL_ASSIGN_OR_RETURN(Table output, ProjectRows(body, input, ctx, nullptr));
  // Track the input row that produced each output row (for ORDER BY on
  // pre-projection variables).
  std::vector<const ValueList*> source_rows;
  source_rows.reserve(input.NumRows());
  for (const auto& row : input.rows()) source_rows.push_back(&row);
  return ApplyProjectionTail(body, std::move(output), &source_rows, &input,
                             ctx);
}

}  // namespace gqlite
