#include "src/interp/projection.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "src/eval/aggregation.h"
#include "src/frontend/analyzer.h"
#include "src/value/value_compare.h"

namespace gqlite {

using namespace ast;  // NOLINT(build/namespaces)

namespace {

/// Rewrites an expression by pulling out aggregate calls: each aggregate
/// occurrence becomes a VariableExpr("#aggN") and its (argument, function,
/// distinct) triple is appended to `slots`. The returned clone is
/// evaluated per group against an environment that resolves "#aggN".
struct AggSlot {
  std::string fn;      // "count", "sum", ... or "count(*)"
  bool distinct = false;
  const Expr* arg = nullptr;  // null for count(*)
};

ExprPtr ExtractAggregates(const Expr& e, std::vector<AggSlot>* slots) {
  if (e.kind == Expr::Kind::kCountStar) {
    slots->push_back(AggSlot{"count(*)", false, nullptr});
    return std::make_unique<VariableExpr>("#agg" +
                                          std::to_string(slots->size() - 1));
  }
  if (e.kind == Expr::Kind::kFunctionCall) {
    const auto& f = static_cast<const FunctionCallExpr&>(e);
    if (IsAggregateFunction(f.name)) {
      slots->push_back(AggSlot{f.name, f.distinct, f.args[0].get()});
      return std::make_unique<VariableExpr>(
          "#agg" + std::to_string(slots->size() - 1));
    }
    std::vector<ExprPtr> args;
    for (const auto& a : f.args) args.push_back(ExtractAggregates(*a, slots));
    return std::make_unique<FunctionCallExpr>(f.name, f.distinct,
                                              std::move(args));
  }
  if (e.kind == Expr::Kind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(e);
    return std::make_unique<BinaryExpr>(b.op, ExtractAggregates(*b.lhs, slots),
                                        ExtractAggregates(*b.rhs, slots));
  }
  if (e.kind == Expr::Kind::kUnary) {
    const auto& u = static_cast<const UnaryExpr&>(e);
    return std::make_unique<UnaryExpr>(u.op,
                                       ExtractAggregates(*u.operand, slots));
  }
  if (e.kind == Expr::Kind::kListLiteral) {
    const auto& l = static_cast<const ListLiteralExpr&>(e);
    std::vector<ExprPtr> items;
    for (const auto& i : l.items) items.push_back(ExtractAggregates(*i, slots));
    return std::make_unique<ListLiteralExpr>(std::move(items));
  }
  if (e.kind == Expr::Kind::kMapLiteral) {
    const auto& m = static_cast<const MapLiteralExpr&>(e);
    std::vector<std::pair<std::string, ExprPtr>> entries;
    for (const auto& [k, v] : m.entries) {
      entries.emplace_back(k, ExtractAggregates(*v, slots));
    }
    return std::make_unique<MapLiteralExpr>(std::move(entries));
  }
  // Other node kinds cannot contain aggregates per the analyzer (or are
  // leaves); clone as-is.
  return CloneExpr(e);
}

/// Environment that resolves "#aggN" placeholders, falling back to a base.
class AggEnvironment : public Environment {
 public:
  AggEnvironment(const Environment& base, const ValueList& agg_values)
      : base_(base), agg_values_(agg_values) {}
  std::optional<Value> Lookup(const std::string& name) const override {
    if (name.size() > 4 && name.compare(0, 4, "#agg") == 0) {
      size_t i = std::stoul(name.substr(4));
      if (i < agg_values_.size()) return agg_values_[i];
    }
    return base_.Lookup(name);
  }

 private:
  const Environment& base_;
  const ValueList& agg_values_;
};

struct ResolvedItem {
  std::string name;
  const Expr* expr = nullptr;  // original expression
  bool aggregating = false;
  ExprPtr rewritten;           // with aggregates extracted (if aggregating)
  std::vector<AggSlot> slots;  // this item's aggregate sub-expressions
};

Result<int64_t> EvalCount(const Expr& e, const EvalContext& ctx,
                          const char* what) {
  MapEnvironment empty;
  GQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(e, empty, ctx));
  if (!v.is_int() || v.AsInt() < 0) {
    return Status::EvaluationError(std::string(what) +
                                   " must be a non-negative integer");
  }
  return v.AsInt();
}

}  // namespace

Result<Table> EvaluateProjection(const ProjectionBody& body,
                                 const Table& input, const EvalContext& ctx) {
  // Resolve the item list: `*` expands to all input fields (in order).
  std::vector<ResolvedItem> items;
  if (body.star) {
    for (const auto& f : input.fields()) {
      ResolvedItem it;
      it.name = f;
      items.push_back(std::move(it));  // expr == nullptr: copy field
    }
  }
  bool any_aggregate = false;
  for (const auto& item : body.items) {
    ResolvedItem it;
    it.name = item.alias ? *item.alias : DerivedColumnName(*item.expr);
    it.expr = item.expr.get();
    it.aggregating = ContainsAggregate(*item.expr);
    if (it.aggregating) {
      any_aggregate = true;
      it.rewritten = ExtractAggregates(*item.expr, &it.slots);
    }
    items.push_back(std::move(it));
  }

  std::vector<std::string> out_fields;
  for (const auto& it : items) out_fields.push_back(it.name);
  Table output(out_fields);

  // Track the input row that produced each output row (for ORDER BY on
  // pre-projection variables in the non-aggregating case).
  std::vector<const ValueList*> source_rows;

  if (!any_aggregate) {
    for (const auto& row : input.rows()) {
      RowEnvironment env(input, row);
      ValueList out_row;
      out_row.reserve(items.size());
      for (const auto& it : items) {
        if (it.expr == nullptr) {
          out_row.push_back(row[input.FieldIndex(it.name)]);
        } else {
          GQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*it.expr, env, ctx));
          out_row.push_back(std::move(v));
        }
      }
      output.AddRow(std::move(out_row));
      source_rows.push_back(&row);
    }
  } else {
    // Group by the values of the non-aggregating items (§3: "the first
    // expression, r, is a non-aggregating expression and therefore acts
    // as an implicit grouping key").
    struct Group {
      const ValueList* representative = nullptr;
      std::vector<std::unique_ptr<Aggregator>> aggs;
    };
    std::vector<ValueList> group_keys;
    std::vector<Group> groups;
    std::unordered_map<ValueList, size_t, RowEquivalenceHash,
                       RowEquivalenceEq>
        index;

    // Fixed slot layout: per item, per slot.
    for (const auto& row : input.rows()) {
      RowEnvironment env(input, row);
      ValueList key;
      for (const auto& it : items) {
        if (it.aggregating) continue;
        if (it.expr == nullptr) {
          key.push_back(row[input.FieldIndex(it.name)]);
        } else {
          GQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*it.expr, env, ctx));
          key.push_back(std::move(v));
        }
      }
      auto [pos, inserted] = index.try_emplace(key, groups.size());
      if (inserted) {
        group_keys.push_back(key);
        Group g;
        g.representative = &row;
        for (const auto& it : items) {
          for (const auto& slot : it.slots) {
            GQL_ASSIGN_OR_RETURN(std::unique_ptr<Aggregator> agg,
                                 MakeAggregator(slot.fn, slot.distinct));
            g.aggs.push_back(std::move(agg));
          }
        }
        groups.push_back(std::move(g));
      }
      Group& g = groups[pos->second];
      size_t slot_idx = 0;
      for (const auto& it : items) {
        for (const auto& slot : it.slots) {
          Value v = Value::Bool(true);  // row marker for count(*)
          if (slot.arg != nullptr) {
            GQL_ASSIGN_OR_RETURN(v, EvaluateExpr(*slot.arg, env, ctx));
          }
          GQL_RETURN_IF_ERROR(g.aggs[slot_idx]->Accumulate(v));
          ++slot_idx;
        }
      }
    }

    // Global aggregation over an empty input: one group with neutral
    // aggregates — but only when there are no grouping keys.
    bool has_keys = false;
    for (const auto& it : items) {
      if (!it.aggregating) has_keys = true;
    }
    if (groups.empty() && !has_keys) {
      Group g;
      for (const auto& it : items) {
        for (const auto& slot : it.slots) {
          GQL_ASSIGN_OR_RETURN(std::unique_ptr<Aggregator> agg,
                               MakeAggregator(slot.fn, slot.distinct));
          g.aggs.push_back(std::move(agg));
        }
      }
      group_keys.emplace_back();
      groups.push_back(std::move(g));
    }

    static const ValueList kEmptyRow;
    static const Table kEmptyTable;
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      Group& g = groups[gi];
      // Finish aggregates.
      ValueList agg_values;
      for (auto& agg : g.aggs) {
        GQL_ASSIGN_OR_RETURN(Value v, agg->Finish());
        agg_values.push_back(std::move(v));
      }
      const ValueList* rep = g.representative ? g.representative : &kEmptyRow;
      const Table& rep_table = g.representative ? input : kEmptyTable;
      RowEnvironment rep_env(rep_table, *rep);
      AggEnvironment env(rep_env, agg_values);
      ValueList out_row;
      size_t key_idx = 0;
      size_t slot_base = 0;
      for (const auto& it : items) {
        if (!it.aggregating) {
          out_row.push_back(group_keys[gi][key_idx++]);
        } else {
          // Offset this item's placeholders into the global slot vector:
          // placeholders were numbered per item starting at its base.
          ValueList local(agg_values.begin() + slot_base,
                          agg_values.begin() + slot_base + it.slots.size());
          AggEnvironment item_env(rep_env, local);
          GQL_ASSIGN_OR_RETURN(Value v,
                               EvaluateExpr(*it.rewritten, item_env, ctx));
          out_row.push_back(std::move(v));
          slot_base += it.slots.size();
        }
      }
      (void)env;
      output.AddRow(std::move(out_row));
      source_rows.push_back(nullptr);
    }
  }

  if (body.distinct) {
    // ε after projection; source-row pairing is dropped (ORDER BY then
    // sees only the projected columns, as in Cypher).
    output = output.Deduplicated();
    source_rows.assign(output.NumRows(), nullptr);
  }

  // ORDER BY.
  if (!body.order_by.empty()) {
    struct Keyed {
      ValueList row;
      ValueList keys;
    };
    std::vector<Keyed> keyed;
    keyed.reserve(output.NumRows());
    for (size_t i = 0; i < output.NumRows(); ++i) {
      const ValueList& row = output.rows()[i];
      RowEnvironment out_env(output, row);
      std::unique_ptr<RowEnvironment> in_env;
      std::unique_ptr<MergedRowEnvironment> merged;
      const Environment* env = &out_env;
      if (i < source_rows.size() && source_rows[i] != nullptr) {
        in_env = std::make_unique<RowEnvironment>(input, *source_rows[i]);
        merged = std::make_unique<MergedRowEnvironment>(out_env, *in_env);
        env = merged.get();
      }
      Keyed k;
      k.row = row;
      for (const auto& o : body.order_by) {
        // An ORDER BY expression that textually matches a projected column
        // (e.g. ORDER BY p.acmid after RETURN p.acmid, count(*)) refers to
        // that column, like Cypher's alias resolution.
        int col = output.FieldIndex(DerivedColumnName(*o.expr));
        if (col >= 0) {
          k.keys.push_back(row[col]);
          continue;
        }
        GQL_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*o.expr, *env, ctx));
        k.keys.push_back(std::move(v));
      }
      keyed.push_back(std::move(k));
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&](const Keyed& a, const Keyed& b) {
                       for (size_t i = 0; i < body.order_by.size(); ++i) {
                         int c = ValueOrder(a.keys[i], b.keys[i]);
                         if (c != 0) {
                           return body.order_by[i].ascending ? c < 0 : c > 0;
                         }
                       }
                       return false;
                     });
    Table sorted(output.fields());
    for (auto& k : keyed) sorted.AddRow(std::move(k.row));
    output = std::move(sorted);
  }

  // SKIP / LIMIT.
  if (body.skip || body.limit) {
    int64_t skip = 0;
    if (body.skip) {
      GQL_ASSIGN_OR_RETURN(skip, EvalCount(*body.skip, ctx, "SKIP"));
    }
    int64_t limit = -1;
    if (body.limit) {
      GQL_ASSIGN_OR_RETURN(limit, EvalCount(*body.limit, ctx, "LIMIT"));
    }
    Table limited(output.fields());
    int64_t n = static_cast<int64_t>(output.NumRows());
    int64_t end = limit < 0 ? n : std::min(n, skip + limit);
    for (int64_t i = skip; i < end; ++i) {
      limited.AddRow(output.rows()[i]);
    }
    output = std::move(limited);
  }

  return output;
}

}  // namespace gqlite
