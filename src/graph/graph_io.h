#ifndef GQLITE_GRAPH_GRAPH_IO_H_
#define GQLITE_GRAPH_GRAPH_IO_H_

#include <string>

#include "src/common/result.h"
#include "src/graph/property_graph.h"

namespace gqlite {

/// Serializes a property graph as a single Cypher CREATE statement that
/// rebuilds it (nodes with labels and properties, then relationships).
/// Executing the dump on an empty engine reproduces the graph up to
/// identifier renumbering — the natural text format for a Cypher engine,
/// and a round-trip test of the whole stack (tests/test_graph_io.cc).
///
/// Property values are emitted as parseable literals: strings escaped,
/// temporal values via their constructor functions (date('…'), …), lists
/// and maps recursively. Entities (nodes/relationships/paths) cannot be
/// property values, so every stored value is expressible.
std::string DumpToCypher(const PropertyGraph& g);

/// Renders one value as a parseable Cypher literal expression.
Result<std::string> ValueToCypherLiteral(const Value& v);

}  // namespace gqlite

#endif  // GQLITE_GRAPH_GRAPH_IO_H_
