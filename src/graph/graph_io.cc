#include "src/graph/graph_io.h"

#include <cctype>

#include "src/value/value_format.h"

namespace gqlite {

namespace {

std::string EscapeString(std::string_view s) {
  std::string out = "'";
  for (char c : s) {
    switch (c) {
      case '\'':
        out += "\\'";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out + "'";
}

/// Identifiers (labels, types, keys) need backticks unless they are plain
/// words.
std::string QuoteIdent(const std::string& s) {
  bool plain = !s.empty() && (std::isalpha(static_cast<unsigned char>(s[0])) ||
                              s[0] == '_');
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      plain = false;
    }
  }
  if (plain) return s;
  return "`" + s + "`";
}

Result<std::string> PropsToCypher(const ValueMap& props) {
  if (props.empty()) return std::string();
  std::string out = " {";
  bool first = true;
  for (const auto& [k, v] : props) {
    if (!first) out += ", ";
    first = false;
    GQL_ASSIGN_OR_RETURN(std::string lit, ValueToCypherLiteral(v));
    out += QuoteIdent(k) + ": " + lit;
  }
  return out + "}";
}

}  // namespace

Result<std::string> ValueToCypherLiteral(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return std::string("null");
    case ValueType::kBool:
      return std::string(v.AsBool() ? "true" : "false");
    case ValueType::kInt:
      return std::to_string(v.AsInt());
    case ValueType::kFloat:
      return FormatFloat(v.AsFloat());
    case ValueType::kString:
      return EscapeString(v.AsString());
    case ValueType::kList: {
      std::string out = "[";
      bool first = true;
      for (const Value& e : v.AsList()) {
        if (!first) out += ", ";
        first = false;
        GQL_ASSIGN_OR_RETURN(std::string lit, ValueToCypherLiteral(e));
        out += lit;
      }
      return out + "]";
    }
    case ValueType::kMap: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, e] : v.AsMap()) {
        if (!first) out += ", ";
        first = false;
        GQL_ASSIGN_OR_RETURN(std::string lit, ValueToCypherLiteral(e));
        out += QuoteIdent(k) + ": " + lit;
      }
      return out + "}";
    }
    case ValueType::kDate:
      return "date(" + EscapeString(v.AsDate().ToString()) + ")";
    case ValueType::kLocalTime:
      return "localtime(" + EscapeString(v.AsLocalTime().ToString()) + ")";
    case ValueType::kTime:
      return "time(" + EscapeString(v.AsTime().ToString()) + ")";
    case ValueType::kLocalDateTime:
      return "localdatetime(" + EscapeString(v.AsLocalDateTime().ToString()) +
             ")";
    case ValueType::kDateTime:
      return "datetime(" + EscapeString(v.AsDateTime().ToString()) + ")";
    case ValueType::kDuration:
      return "duration(" + EscapeString(v.AsDuration().ToString()) + ")";
    case ValueType::kNode:
    case ValueType::kRelationship:
    case ValueType::kPath:
      return Status::InvalidArgument(
          "graph entities cannot be serialized as property literals");
  }
  return Status::Internal("unhandled value type");
}

std::string DumpToCypher(const PropertyGraph& g) {
  std::string out = "CREATE ";
  bool first = true;
  // Nodes, with stable aliases n<id>.
  for (size_t i = 0; i < g.NumNodeSlots(); ++i) {
    NodeId n{i};
    if (!g.IsNodeAlive(n)) continue;
    if (!first) out += ",\n       ";
    first = false;
    out += "(n" + std::to_string(i);
    for (const std::string& l : g.NodeLabels(n)) out += ":" + QuoteIdent(l);
    auto props = PropsToCypher(g.NodeProperties(n));
    out += props.ok() ? *props : "";
    out += ")";
  }
  // Relationships.
  for (size_t i = 0; i < g.NumRelSlots(); ++i) {
    RelId r{i};
    if (!g.IsRelAlive(r)) continue;
    if (!first) out += ",\n       ";
    first = false;
    out += "(n" + std::to_string(g.Source(r).id) + ")-[:" +
           QuoteIdent(g.RelType(r));
    auto props = PropsToCypher(g.RelProperties(r));
    out += props.ok() ? *props : "";
    out += "]->(n" + std::to_string(g.Target(r).id) + ")";
  }
  if (first) return "";  // empty graph: no statement needed
  return out;
}

}  // namespace gqlite
