#ifndef GQLITE_GRAPH_GRAPH_STATISTICS_H_
#define GQLITE_GRAPH_GRAPH_STATISTICS_H_

#include <string_view>

#include "src/graph/property_graph.h"

namespace gqlite {

/// Cardinality statistics over a PropertyGraph, the inputs to the cost
/// model (§2 "Neo4j implementation": query planning "based on the IDP
/// algorithm, using a cost model"). Counts, directional degree
/// distributions and label-conditioned fans are exact and maintained
/// incrementally by the graph; property NDV comes from insert-only KMV
/// sketches (exact below 64 distinct values, estimated above). A
/// GraphStatistics view over a frozen snapshot answers for exactly that
/// snapshot's state — estimates are computed against the executing
/// snapshot, never the drifting live graph.
class GraphStatistics {
 public:
  explicit GraphStatistics(const PropertyGraph& g) : g_(g) {}

  double NodeCount() const { return static_cast<double>(g_.NumNodes()); }
  double RelCount() const { return static_cast<double>(g_.NumRels()); }

  /// Number of nodes with `label`; 0 if the label is unknown.
  double NodesWithLabel(std::string_view label) const;

  /// Number of relationships of `type`; if empty, all relationships.
  double RelsWithType(std::string_view type) const;

  /// Symmetric average fan — rels(type) / max(1, nodes). Kept for
  /// callers that don't know a direction; prefer OutDegree/InDegree.
  double AvgDegree(std::string_view type) const;

  // ---- Directional fans ----------------------------------------------------

  /// Average OUTGOING fan per candidate node for relationships of
  /// `type` (empty = any type), optionally conditioned on the source
  /// carrying `src_label`: rels(src_label, type) / nodes(src_label).
  double OutDegree(std::string_view type,
                   std::string_view src_label = {}) const;
  /// Average INCOMING fan per candidate node, optionally conditioned on
  /// the target carrying `tgt_label`.
  double InDegree(std::string_view type,
                  std::string_view tgt_label = {}) const;

  /// Nodes with at least one outgoing / incoming relationship of
  /// `type` (empty type: any relationship at all).
  double DistinctSources(std::string_view type) const;
  double DistinctTargets(std::string_view type) const;

  /// Conditional fan: rels(type) / distinct sources(type) — the
  /// expected fan from a node KNOWN to have at least one outgoing
  /// relationship of the type. Levels >= 2 of a variable-length expand
  /// use this: the frontier only contains such nodes.
  double CondOutDegree(std::string_view type) const;
  double CondInDegree(std::string_view type) const;

  /// Upper bound on any single node's outgoing / incoming fan for
  /// `type`, from the highest occupied bucket of the log2 degree
  /// histogram (2^(b+1) - 1). Empty type sums the per-type bounds.
  double MaxOutDegree(std::string_view type) const;
  double MaxInDegree(std::string_view type) const;

  // ---- Property NDV --------------------------------------------------------

  /// Estimated distinct values of the node / relationship property (0
  /// when never written; see PropertyGraph::NodePropertyNdv for the
  /// insert-only overcount caveat).
  double NodePropertyNdv(std::string_view key) const {
    return g_.NodePropertyNdv(key);
  }
  double RelPropertyNdv(std::string_view key) const {
    return g_.RelPropertyNdv(key);
  }

 private:
  /// rels of `type` whose src/tgt carries `label` (exact maintained
  /// count); `out` picks the direction.
  double LabelTypeCount(std::string_view label, std::string_view type,
                        bool out) const;

  const PropertyGraph& g_;
};

}  // namespace gqlite

#endif  // GQLITE_GRAPH_GRAPH_STATISTICS_H_
