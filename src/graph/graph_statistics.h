#ifndef GQLITE_GRAPH_GRAPH_STATISTICS_H_
#define GQLITE_GRAPH_GRAPH_STATISTICS_H_

#include <string_view>

#include "src/graph/property_graph.h"

namespace gqlite {

/// Cardinality statistics over a PropertyGraph, the inputs to the cost
/// model (§2 "Neo4j implementation": query planning "based on the IDP
/// algorithm, using a cost model"). All estimates are exact counts kept
/// incrementally by the graph; derived quantities (average degree) are
/// computed on demand.
class GraphStatistics {
 public:
  explicit GraphStatistics(const PropertyGraph& g) : g_(g) {}

  double NodeCount() const { return static_cast<double>(g_.NumNodes()); }
  double RelCount() const { return static_cast<double>(g_.NumRels()); }

  /// Number of nodes with `label`; 0 if the label is unknown.
  double NodesWithLabel(std::string_view label) const;

  /// Number of relationships of `type`; if empty, all relationships.
  double RelsWithType(std::string_view type) const;

  /// Average out-fan of a node for relationships of `type` (empty = any):
  /// rels(type) / max(1, nodes). Directed expands use this; undirected
  /// expands use twice this.
  double AvgDegree(std::string_view type) const;

 private:
  const PropertyGraph& g_;
};

}  // namespace gqlite

#endif  // GQLITE_GRAPH_GRAPH_STATISTICS_H_
