#include "src/graph/property_graph.h"

#include <algorithm>
#include <cmath>

#include "src/graph/write_observer.h"
#include "src/value/value_compare.h"
#include "src/value/value_format.h"

namespace gqlite {

namespace {

/// splitmix64 finalizer: ValueHash clusters low bits for small integers;
/// KMV needs hashes uniform over the full 64-bit range.
uint64_t MixHash(uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

// ---- Statistics plumbing ---------------------------------------------------

void PropertyGraph::KmvSketch::Insert(uint64_t h) {
  auto it = std::lower_bound(mins.begin(), mins.end(), h);
  if (it != mins.end() && *it == h) return;  // already counted
  if (mins.size() == kK) {
    if (h >= mins.back()) return;  // not among the k smallest
    mins.pop_back();
    it = std::lower_bound(mins.begin(), mins.end(), h);
  }
  mins.insert(it, h);
}

double PropertyGraph::KmvSketch::Estimate() const {
  if (mins.size() < kK) return static_cast<double>(mins.size());
  // kth-minimum estimator: k distinct hashes uniform on [0, 2^64) have
  // their kth smallest near k/NDV of the range.
  return static_cast<double>(kK - 1) * std::ldexp(1.0, 64) /
         static_cast<double>(mins.back());
}

size_t PropertyGraph::DegreeBucket(size_t d) {
  size_t b = 0;
  while (d >>= 1) ++b;
  return b < kDegreeBuckets ? b : kDegreeBuckets - 1;
}

size_t PropertyGraph::TypedDegree(const std::vector<RelId>& adj,
                                  SymbolId type) const {
  size_t d = 0;
  for (RelId r : adj) {
    if (rel(r).type == type) ++d;
  }
  return d;
}

void PropertyGraph::ShiftDegree(std::array<size_t, kDegreeBuckets>* hist,
                                size_t* distinct, size_t before, int delta) {
  size_t after = delta > 0 ? before + 1 : before - 1;
  if (before > 0) {
    --(*hist)[DegreeBucket(before)];
  } else {
    ++*distinct;  // 0 -> 1: the node gains its first typed rel
  }
  if (after > 0) {
    ++(*hist)[DegreeBucket(after)];
  } else {
    --*distinct;  // 1 -> 0: the node loses its last typed rel
  }
}

void PropertyGraph::NoteNdv(std::unordered_map<SymbolId, KmvSketch>* ndv,
                            SymbolId key, const Value& v) {
  (*ndv)[key].Insert(MixHash(static_cast<uint64_t>(ValueHash(v))));
}

const PropertyGraph::TypeDegreeStats* PropertyGraph::DegreeStatsFor(
    SymbolId type) const {
  auto it = type_degree_stats_.find(type);
  return it == type_degree_stats_.end() ? nullptr : &it->second;
}

size_t PropertyGraph::LabelTypeOutCount(SymbolId label, SymbolId type) const {
  auto it = label_type_out_counts_.find(LabelTypeKey(label, type));
  return it == label_type_out_counts_.end() ? 0 : it->second;
}

size_t PropertyGraph::LabelTypeInCount(SymbolId label, SymbolId type) const {
  auto it = label_type_in_counts_.find(LabelTypeKey(label, type));
  return it == label_type_in_counts_.end() ? 0 : it->second;
}

double PropertyGraph::NodePropertyNdv(std::string_view key) const {
  SymbolId k = keys_.Lookup(key);
  if (k == kNoSymbol) return 0;
  auto it = node_ndv_.find(k);
  return it == node_ndv_.end() ? 0 : it->second.Estimate();
}

double PropertyGraph::RelPropertyNdv(std::string_view key) const {
  SymbolId k = keys_.Lookup(key);
  if (k == kNoSymbol) return 0;
  auto it = rel_ndv_.find(k);
  return it == rel_ndv_.end() ? 0 : it->second.Estimate();
}

// ---- Copy-on-write plumbing ------------------------------------------------

template <typename Rec>
Rec* PropertyGraph::MutableSlot(PageVec<Rec>* pages, size_t id) {
  AssertMutable();
  auto& page = (*pages)[id >> kPageBits];
  if (page.epoch != epoch_) {
    // Some snapshot/clone may share this payload: write to a private copy.
    page.payload = std::make_shared<std::vector<Rec>>(*page.payload);
    page.epoch = epoch_;
  }
  return &(*page.payload)[id & kPageMask];
}

template <typename Rec>
Rec* PropertyGraph::AppendSlot(PageVec<Rec>* pages, size_t* slots) {
  AssertMutable();
  size_t id = (*slots)++;
  if ((id & kPageMask) == 0) {
    // First slot of a fresh page.
    auto& page = pages->emplace_back();
    page.payload = std::make_shared<std::vector<Rec>>();
    page.payload->reserve(kPageSize);
    page.epoch = epoch_;
    page.payload->emplace_back();
    return &page.payload->back();
  }
  auto& page = pages->back();
  if (page.epoch != epoch_) {
    page.payload = std::make_shared<std::vector<Rec>>(*page.payload);
    page.payload->reserve(kPageSize);
    page.epoch = epoch_;
  }
  page.payload->emplace_back();
  return &page.payload->back();
}

std::vector<NodeId>* PropertyGraph::MutablePosting(SymbolId s) {
  AssertMutable();
  auto& entry = label_index_[s];
  if (!entry.payload) {
    entry.payload = std::make_shared<std::vector<NodeId>>();
    entry.epoch = epoch_;
  } else if (entry.epoch != epoch_) {
    entry.payload = std::make_shared<std::vector<NodeId>>(*entry.payload);
    entry.epoch = epoch_;
  }
  return entry.payload.get();
}

PropertyGraph::PropertyGraph(const PropertyGraph& other, bool frozen)
    : node_pages_(other.node_pages_),
      rel_pages_(other.rel_pages_),
      node_slots_(other.node_slots_),
      rel_slots_(other.rel_slots_),
      num_nodes_(other.num_nodes_),
      num_rels_(other.num_rels_),
      stats_version_(other.stats_version_),
      data_version_(other.data_version_),
      // Strictly past every shared payload's epoch, so the copy's first
      // write to any page clones it instead of mutating shared state.
      epoch_(other.epoch_ + 1),
      frozen_(frozen),
      labels_(other.labels_),
      types_(other.types_),
      keys_(other.keys_),
      label_index_(other.label_index_),
      label_counts_(other.label_counts_),
      type_counts_(other.type_counts_),
      label_type_out_counts_(other.label_type_out_counts_),
      label_type_in_counts_(other.label_type_in_counts_),
      type_degree_stats_(other.type_degree_stats_),
      node_ndv_(other.node_ndv_),
      rel_ndv_(other.rel_ndv_) {}

std::shared_ptr<PropertyGraph> PropertyGraph::Snapshot() {
  // Advance our own epoch FIRST: every page we currently hold becomes
  // "shared" from our perspective, so our next write clones it and the
  // snapshot keeps observing the pre-write payload.
  ++epoch_;
  return std::shared_ptr<PropertyGraph>(
      new PropertyGraph(*this, /*frozen=*/true));
}

std::shared_ptr<PropertyGraph> PropertyGraph::Clone() const {
  return std::shared_ptr<PropertyGraph>(
      new PropertyGraph(*this, /*frozen=*/false));
}

// ---- Creation --------------------------------------------------------------

NodeId PropertyGraph::CreateNode(const std::vector<std::string>& labels,
                                 const PropertyList& props) {
  AssertMutable();
  NodeId id{node_slots_};
  NodeRecord* rec = AppendSlot(&node_pages_, &node_slots_);
  for (const std::string& l : labels) {
    SymbolId s = labels_.Intern(l);
    if (std::find(rec->labels.begin(), rec->labels.end(), s) ==
        rec->labels.end()) {
      rec->labels.push_back(s);
    }
  }
  std::sort(rec->labels.begin(), rec->labels.end());
  for (const auto& [k, v] : props) {
    if (!v.is_null()) rec->props.emplace_back(keys_.Intern(k), v);
  }
  for (const auto& [k, v] : rec->props) NoteNdv(&node_ndv_, k, v);
  ++num_nodes_;
  ++stats_version_;
  ++data_version_;
  for (SymbolId s : node(id).labels) {
    MutablePosting(s)->push_back(id);
    ++label_counts_[s];
  }
  if (observer_ != nullptr) observer_->OnCreateNode(id, labels, props);
  return id;
}

Result<RelId> PropertyGraph::CreateRelationship(NodeId src, NodeId tgt,
                                                std::string_view type,
                                                const PropertyList& props) {
  if (frozen_) {
    return Status::InvalidArgument("cannot mutate a frozen graph snapshot");
  }
  if (!IsNodeAlive(src) || !IsNodeAlive(tgt)) {
    return Status::InvalidArgument(
        "relationship endpoint does not exist or was deleted");
  }
  if (type.empty()) {
    return Status::InvalidArgument("relationship type must be non-empty");
  }
  RelId id{rel_slots_};
  RelRecord* rec = AppendSlot(&rel_pages_, &rel_slots_);
  rec->src = src;
  rec->tgt = tgt;
  rec->type = types_.Intern(type);
  for (const auto& [k, v] : props) {
    if (!v.is_null()) rec->props.emplace_back(keys_.Intern(k), v);
  }
  for (const auto& [k, v] : rec->props) NoteNdv(&rel_ndv_, k, v);
  SymbolId t = rec->type;
  ++num_rels_;
  ++stats_version_;
  ++data_version_;
  ++type_counts_[t];
  MutableNode(src)->out.push_back(id);
  MutableNode(tgt)->in.push_back(id);
  // Directional statistics: the endpoints' typed degrees just moved
  // d -> d+1 (adjacency vectors hold only live relationships).
  TypeDegreeStats& ds = type_degree_stats_[t];
  ShiftDegree(&ds.out_hist, &ds.distinct_sources,
              TypedDegree(node(src).out, t) - 1, +1);
  ShiftDegree(&ds.in_hist, &ds.distinct_targets,
              TypedDegree(node(tgt).in, t) - 1, +1);
  for (SymbolId l : node(src).labels) {
    ++label_type_out_counts_[LabelTypeKey(l, t)];
  }
  for (SymbolId l : node(tgt).labels) {
    ++label_type_in_counts_[LabelTypeKey(l, t)];
  }
  if (observer_ != nullptr) {
    observer_->OnCreateRelationship(id, src, tgt, type, props);
  }
  return id;
}

std::vector<NodeId> PropertyGraph::AllNodes() const {
  std::vector<NodeId> out;
  out.reserve(num_nodes_);
  for (size_t i = 0; i < node_slots_; ++i) {
    if (!node(NodeId{i}).deleted) out.push_back(NodeId{i});
  }
  return out;
}

// ---- Labels ----------------------------------------------------------------

std::vector<std::string> PropertyGraph::NodeLabels(NodeId n) const {
  std::vector<std::string> out;
  for (SymbolId s : node(n).labels) out.push_back(labels_.ToString(s));
  return out;
}

bool PropertyGraph::NodeHasLabel(NodeId n, std::string_view label) const {
  SymbolId s = labels_.Lookup(label);
  return s != kNoSymbol && NodeHasLabelId(n, s);
}

bool PropertyGraph::NodeHasLabelId(NodeId n, SymbolId label) const {
  const auto& ls = node(n).labels;
  return std::binary_search(ls.begin(), ls.end(), label);
}

bool PropertyGraph::AddLabel(NodeId n, std::string_view label) {
  AssertMutable();
  SymbolId s = labels_.Intern(label);
  auto& ls = MutableNode(n)->labels;
  auto it = std::lower_bound(ls.begin(), ls.end(), s);
  if (it != ls.end() && *it == s) return false;
  ls.insert(it, s);
  MutablePosting(s)->push_back(n);
  ++label_counts_[s];
  for (RelId r : node(n).out) {
    ++label_type_out_counts_[LabelTypeKey(s, rel(r).type)];
  }
  for (RelId r : node(n).in) {
    ++label_type_in_counts_[LabelTypeKey(s, rel(r).type)];
  }
  ++stats_version_;
  ++data_version_;
  if (observer_ != nullptr) observer_->OnAddLabel(n, label);
  return true;
}

bool PropertyGraph::RemoveLabel(NodeId n, std::string_view label) {
  AssertMutable();
  SymbolId s = labels_.Lookup(label);
  if (s == kNoSymbol) return false;
  auto& ls = MutableNode(n)->labels;
  auto it = std::lower_bound(ls.begin(), ls.end(), s);
  if (it == ls.end() || *it != s) return false;
  ls.erase(it);
  std::vector<NodeId>* idx = MutablePosting(s);
  idx->erase(std::remove(idx->begin(), idx->end(), n), idx->end());
  --label_counts_[s];
  for (RelId r : node(n).out) {
    --label_type_out_counts_[LabelTypeKey(s, rel(r).type)];
  }
  for (RelId r : node(n).in) {
    --label_type_in_counts_[LabelTypeKey(s, rel(r).type)];
  }
  ++stats_version_;
  ++data_version_;
  if (observer_ != nullptr) observer_->OnRemoveLabel(n, label);
  return true;
}

// ---- Properties ------------------------------------------------------------

const Value& PropertyGraph::GetProp(
    const std::vector<std::pair<SymbolId, Value>>& props, SymbolId key) {
  static const Value kAbsent;  // ι is partial: absent keys read as null
  if (key == kNoSymbol) return kAbsent;
  for (const auto& [k, v] : props) {
    if (k == key) return v;
  }
  return kAbsent;
}

int PropertyGraph::SetProp(std::vector<std::pair<SymbolId, Value>>* props,
                           SymbolId key, Value v) {
  for (auto it = props->begin(); it != props->end(); ++it) {
    if (it->first == key) {
      if (v.is_null()) {
        props->erase(it);
      } else {
        it->second = std::move(v);
      }
      return 1;
    }
  }
  if (v.is_null()) return 0;
  props->emplace_back(key, std::move(v));
  return 1;
}

const Value& PropertyGraph::NodeProperty(NodeId n,
                                         std::string_view key) const {
  return GetProp(node(n).props, keys_.Lookup(key));
}

const Value& PropertyGraph::RelProperty(RelId r,
                                        std::string_view key) const {
  return GetProp(rel(r).props, keys_.Lookup(key));
}

int PropertyGraph::SetNodeProperty(NodeId n, std::string_view key, Value v) {
  AssertMutable();
  SymbolId k = keys_.Intern(key);
  if (!v.is_null()) NoteNdv(&node_ndv_, k, v);
  Value observed;  // O(1) copy, taken before SetProp consumes v
  if (observer_ != nullptr) observed = v;
  int changed = SetProp(&MutableNode(n)->props, k, std::move(v));
  if (changed != 0) {
    ++data_version_;
    if (observer_ != nullptr) observer_->OnSetNodeProperty(n, key, observed);
  }
  return changed;
}

int PropertyGraph::SetRelProperty(RelId r, std::string_view key, Value v) {
  AssertMutable();
  SymbolId k = keys_.Intern(key);
  if (!v.is_null()) NoteNdv(&rel_ndv_, k, v);
  Value observed;  // O(1) copy, taken before SetProp consumes v
  if (observer_ != nullptr) observed = v;
  int changed = SetProp(&MutableRel(r)->props, k, std::move(v));
  if (changed != 0) {
    ++data_version_;
    if (observer_ != nullptr) observer_->OnSetRelProperty(r, key, observed);
  }
  return changed;
}

ValueMap PropertyGraph::NodeProperties(NodeId n) const {
  ValueMap out;
  for (const auto& [k, v] : node(n).props) out[keys_.ToString(k)] = v;
  return out;
}

ValueMap PropertyGraph::RelProperties(RelId r) const {
  ValueMap out;
  for (const auto& [k, v] : rel(r).props) out[keys_.ToString(k)] = v;
  return out;
}

std::vector<std::string> PropertyGraph::NodePropertyKeys(NodeId n) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : node(n).props) out.push_back(keys_.ToString(k));
  return out;
}

std::vector<std::string> PropertyGraph::RelPropertyKeys(RelId r) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : rel(r).props) out.push_back(keys_.ToString(k));
  return out;
}

const std::vector<NodeId>& PropertyGraph::NodesWithLabel(
    std::string_view label) const {
  static const std::vector<NodeId> kEmpty;
  SymbolId s = labels_.Lookup(label);
  if (s == kNoSymbol) return kEmpty;
  auto it = label_index_.find(s);
  return it == label_index_.end() || !it->second.payload
             ? kEmpty
             : *it->second.payload;
}

// ---- Deletion --------------------------------------------------------------

Status PropertyGraph::DeleteRelationship(RelId r) {
  if (frozen_) {
    return Status::InvalidArgument("cannot mutate a frozen graph snapshot");
  }
  if (!IsRelAlive(r)) {
    return Status::InvalidArgument("relationship already deleted");
  }
  RelRecord* rec = MutableRel(r);
  SymbolId t = rec->type;
  NodeId src = rec->src;
  NodeId tgt = rec->tgt;
  auto unlink = [r](std::vector<RelId>* v) {
    v->erase(std::remove(v->begin(), v->end(), r), v->end());
  };
  unlink(&MutableNode(src)->out);
  unlink(&MutableNode(tgt)->in);
  --type_counts_[t];
  // Directional statistics: endpoints' typed degrees moved d -> d-1.
  TypeDegreeStats& ds = type_degree_stats_[t];
  ShiftDegree(&ds.out_hist, &ds.distinct_sources,
              TypedDegree(node(src).out, t) + 1, -1);
  ShiftDegree(&ds.in_hist, &ds.distinct_targets,
              TypedDegree(node(tgt).in, t) + 1, -1);
  for (SymbolId l : node(src).labels) {
    --label_type_out_counts_[LabelTypeKey(l, t)];
  }
  for (SymbolId l : node(tgt).labels) {
    --label_type_in_counts_[LabelTypeKey(l, t)];
  }
  rec->deleted = true;
  rec->props.clear();
  --num_rels_;
  ++stats_version_;
  ++data_version_;
  if (observer_ != nullptr) observer_->OnDeleteRelationship(r);
  return Status::OK();
}

Status PropertyGraph::DeleteNode(NodeId n) {
  if (frozen_) {
    return Status::InvalidArgument("cannot mutate a frozen graph snapshot");
  }
  if (!IsNodeAlive(n)) return Status::InvalidArgument("node already deleted");
  if (Degree(n) > 0) {
    return Status::InvalidArgument(
        "cannot delete node with relationships; use DETACH DELETE");
  }
  NodeRecord* rec = MutableNode(n);
  for (SymbolId s : rec->labels) {
    std::vector<NodeId>* idx = MutablePosting(s);
    idx->erase(std::remove(idx->begin(), idx->end(), n), idx->end());
    --label_counts_[s];
  }
  rec->deleted = true;
  rec->labels.clear();
  rec->props.clear();
  --num_nodes_;
  ++stats_version_;
  ++data_version_;
  if (observer_ != nullptr) observer_->OnDeleteNode(n);
  return Status::OK();
}

Result<int64_t> PropertyGraph::DetachDeleteNode(NodeId n) {
  if (frozen_) {
    return Status::InvalidArgument("cannot mutate a frozen graph snapshot");
  }
  if (!IsNodeAlive(n)) return Status::InvalidArgument("node already deleted");
  // Copy: DeleteRelationship mutates the adjacency vectors.
  std::vector<RelId> incident = node(n).out;
  incident.insert(incident.end(), node(n).in.begin(), node(n).in.end());
  int64_t removed = 0;
  for (RelId r : incident) {
    // A self-loop appears in both `out` and `in`; the second occurrence
    // is no longer alive and is (correctly) counted once, not twice.
    if (IsRelAlive(r)) {
      GQL_RETURN_IF_ERROR(DeleteRelationship(r));
      ++removed;
    }
  }
  GQL_RETURN_IF_ERROR(DeleteNode(n));
  return removed;
}

// ---- Rendering -------------------------------------------------------------

namespace {

std::string RenderProps(const ValueMap& props) {
  if (props.empty()) return "";
  std::string out = " {";
  bool first = true;
  for (const auto& [k, v] : props) {
    if (!first) out += ", ";
    first = false;
    out += k + ": " + FormatValue(v);
  }
  return out + "}";
}

}  // namespace

std::string PropertyGraph::Render(const Value& v) const {
  switch (v.type()) {
    case ValueType::kNode: {
      NodeId n = v.AsNode();
      if (!IsNodeAlive(n)) return "(deleted)";
      std::string out = "(";
      for (SymbolId s : NodeLabelIds(n)) out += ":" + labels_.ToString(s);
      out += RenderProps(NodeProperties(n));
      return out + ")";
    }
    case ValueType::kRelationship: {
      RelId r = v.AsRelationship();
      if (!IsRelAlive(r)) return "[deleted]";
      return "[:" + RelType(r) + RenderProps(RelProperties(r)) + "]";
    }
    case ValueType::kPath: {
      const Path& p = v.AsPath();
      std::string out = Render(Value::Node(p.nodes[0]));
      for (size_t i = 0; i < p.rels.size(); ++i) {
        RelId r = p.rels[i];
        bool forward = IsRelAlive(r) && Source(r) == p.nodes[i];
        out += forward ? "-" : "<-";
        out += Render(Value::Relationship(r));
        out += forward ? "->" : "-";
        out += Render(Value::Node(p.nodes[i + 1]));
      }
      return out;
    }
    case ValueType::kList: {
      std::string out = "[";
      bool first = true;
      for (const Value& e : v.AsList()) {
        if (!first) out += ", ";
        first = false;
        out += Render(e);
      }
      return out + "]";
    }
    case ValueType::kMap: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, e] : v.AsMap()) {
        if (!first) out += ", ";
        first = false;
        out += k + ": " + Render(e);
      }
      return out + "}";
    }
    default:
      return FormatValue(v);
  }
}

}  // namespace gqlite

