#include "src/graph/property_graph.h"

#include <algorithm>

#include "src/value/value_format.h"

namespace gqlite {

NodeId PropertyGraph::CreateNode(const std::vector<std::string>& labels,
                                 const PropertyList& props) {
  NodeId id{nodes_.size()};
  NodeRecord rec;
  for (const std::string& l : labels) {
    SymbolId s = labels_.Intern(l);
    if (std::find(rec.labels.begin(), rec.labels.end(), s) ==
        rec.labels.end()) {
      rec.labels.push_back(s);
    }
  }
  std::sort(rec.labels.begin(), rec.labels.end());
  for (const auto& [k, v] : props) {
    if (!v.is_null()) rec.props.emplace_back(keys_.Intern(k), v);
  }
  nodes_.push_back(std::move(rec));
  ++num_nodes_;
  ++stats_version_;
  for (SymbolId s : nodes_.back().labels) {
    label_index_[s].push_back(id);
    ++label_counts_[s];
  }
  return id;
}

Result<RelId> PropertyGraph::CreateRelationship(NodeId src, NodeId tgt,
                                                std::string_view type,
                                                const PropertyList& props) {
  if (!IsNodeAlive(src) || !IsNodeAlive(tgt)) {
    return Status::InvalidArgument(
        "relationship endpoint does not exist or was deleted");
  }
  if (type.empty()) {
    return Status::InvalidArgument("relationship type must be non-empty");
  }
  RelId id{rels_.size()};
  RelRecord rec;
  rec.src = src;
  rec.tgt = tgt;
  rec.type = types_.Intern(type);
  for (const auto& [k, v] : props) {
    if (!v.is_null()) rec.props.emplace_back(keys_.Intern(k), v);
  }
  rels_.push_back(std::move(rec));
  ++num_rels_;
  ++stats_version_;
  ++type_counts_[rels_.back().type];
  nodes_[src.id].out.push_back(id);
  nodes_[tgt.id].in.push_back(id);
  return id;
}

std::vector<NodeId> PropertyGraph::AllNodes() const {
  std::vector<NodeId> out;
  out.reserve(num_nodes_);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].deleted) out.push_back(NodeId{i});
  }
  return out;
}

std::vector<std::string> PropertyGraph::NodeLabels(NodeId n) const {
  std::vector<std::string> out;
  for (SymbolId s : nodes_[n.id].labels) out.push_back(labels_.ToString(s));
  return out;
}

bool PropertyGraph::NodeHasLabel(NodeId n, std::string_view label) const {
  SymbolId s = labels_.Lookup(label);
  return s != kNoSymbol && NodeHasLabelId(n, s);
}

bool PropertyGraph::NodeHasLabelId(NodeId n, SymbolId label) const {
  const auto& ls = nodes_[n.id].labels;
  return std::binary_search(ls.begin(), ls.end(), label);
}

bool PropertyGraph::AddLabel(NodeId n, std::string_view label) {
  SymbolId s = labels_.Intern(label);
  auto& ls = nodes_[n.id].labels;
  auto it = std::lower_bound(ls.begin(), ls.end(), s);
  if (it != ls.end() && *it == s) return false;
  ls.insert(it, s);
  label_index_[s].push_back(n);
  ++label_counts_[s];
  ++stats_version_;
  return true;
}

bool PropertyGraph::RemoveLabel(NodeId n, std::string_view label) {
  SymbolId s = labels_.Lookup(label);
  if (s == kNoSymbol) return false;
  auto& ls = nodes_[n.id].labels;
  auto it = std::lower_bound(ls.begin(), ls.end(), s);
  if (it == ls.end() || *it != s) return false;
  ls.erase(it);
  auto& idx = label_index_[s];
  idx.erase(std::remove(idx.begin(), idx.end(), n), idx.end());
  --label_counts_[s];
  ++stats_version_;
  return true;
}

const Value& PropertyGraph::GetProp(
    const std::vector<std::pair<SymbolId, Value>>& props, SymbolId key) {
  static const Value kAbsent;  // ι is partial: absent keys read as null
  if (key == kNoSymbol) return kAbsent;
  for (const auto& [k, v] : props) {
    if (k == key) return v;
  }
  return kAbsent;
}

int PropertyGraph::SetProp(std::vector<std::pair<SymbolId, Value>>* props,
                           SymbolId key, Value v) {
  for (auto it = props->begin(); it != props->end(); ++it) {
    if (it->first == key) {
      if (v.is_null()) {
        props->erase(it);
      } else {
        it->second = std::move(v);
      }
      return 1;
    }
  }
  if (v.is_null()) return 0;
  props->emplace_back(key, std::move(v));
  return 1;
}

const Value& PropertyGraph::NodeProperty(NodeId n,
                                         std::string_view key) const {
  return GetProp(nodes_[n.id].props, keys_.Lookup(key));
}

const Value& PropertyGraph::RelProperty(RelId r,
                                        std::string_view key) const {
  return GetProp(rels_[r.id].props, keys_.Lookup(key));
}

int PropertyGraph::SetNodeProperty(NodeId n, std::string_view key, Value v) {
  return SetProp(&nodes_[n.id].props, keys_.Intern(key), std::move(v));
}

int PropertyGraph::SetRelProperty(RelId r, std::string_view key, Value v) {
  return SetProp(&rels_[r.id].props, keys_.Intern(key), std::move(v));
}

ValueMap PropertyGraph::NodeProperties(NodeId n) const {
  ValueMap out;
  for (const auto& [k, v] : nodes_[n.id].props) out[keys_.ToString(k)] = v;
  return out;
}

ValueMap PropertyGraph::RelProperties(RelId r) const {
  ValueMap out;
  for (const auto& [k, v] : rels_[r.id].props) out[keys_.ToString(k)] = v;
  return out;
}

std::vector<std::string> PropertyGraph::NodePropertyKeys(NodeId n) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : nodes_[n.id].props) out.push_back(keys_.ToString(k));
  return out;
}

std::vector<std::string> PropertyGraph::RelPropertyKeys(RelId r) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : rels_[r.id].props) out.push_back(keys_.ToString(k));
  return out;
}

const std::vector<NodeId>& PropertyGraph::NodesWithLabel(
    std::string_view label) const {
  static const std::vector<NodeId> kEmpty;
  SymbolId s = labels_.Lookup(label);
  if (s == kNoSymbol) return kEmpty;
  auto it = label_index_.find(s);
  return it == label_index_.end() ? kEmpty : it->second;
}

Status PropertyGraph::DeleteRelationship(RelId r) {
  if (!IsRelAlive(r)) {
    return Status::InvalidArgument("relationship already deleted");
  }
  RelRecord& rec = rels_[r.id];
  auto unlink = [r](std::vector<RelId>* v) {
    v->erase(std::remove(v->begin(), v->end(), r), v->end());
  };
  unlink(&nodes_[rec.src.id].out);
  unlink(&nodes_[rec.tgt.id].in);
  --type_counts_[rec.type];
  rec.deleted = true;
  rec.props.clear();
  --num_rels_;
  ++stats_version_;
  return Status::OK();
}

Status PropertyGraph::DeleteNode(NodeId n) {
  if (!IsNodeAlive(n)) return Status::InvalidArgument("node already deleted");
  if (Degree(n) > 0) {
    return Status::InvalidArgument(
        "cannot delete node with relationships; use DETACH DELETE");
  }
  NodeRecord& rec = nodes_[n.id];
  for (SymbolId s : rec.labels) {
    auto& idx = label_index_[s];
    idx.erase(std::remove(idx.begin(), idx.end(), n), idx.end());
    --label_counts_[s];
  }
  rec.deleted = true;
  rec.labels.clear();
  rec.props.clear();
  --num_nodes_;
  ++stats_version_;
  return Status::OK();
}

Status PropertyGraph::DetachDeleteNode(NodeId n) {
  if (!IsNodeAlive(n)) return Status::InvalidArgument("node already deleted");
  // Copy: DeleteRelationship mutates the adjacency vectors.
  std::vector<RelId> incident = nodes_[n.id].out;
  incident.insert(incident.end(), nodes_[n.id].in.begin(),
                  nodes_[n.id].in.end());
  for (RelId r : incident) {
    if (IsRelAlive(r)) GQL_RETURN_IF_ERROR(DeleteRelationship(r));
  }
  return DeleteNode(n);
}

namespace {

std::string RenderProps(const ValueMap& props) {
  if (props.empty()) return "";
  std::string out = " {";
  bool first = true;
  for (const auto& [k, v] : props) {
    if (!first) out += ", ";
    first = false;
    out += k + ": " + FormatValue(v);
  }
  return out + "}";
}

}  // namespace

std::string PropertyGraph::Render(const Value& v) const {
  switch (v.type()) {
    case ValueType::kNode: {
      NodeId n = v.AsNode();
      if (!IsNodeAlive(n)) return "(deleted)";
      std::string out = "(";
      for (SymbolId s : NodeLabelIds(n)) out += ":" + labels_.ToString(s);
      out += RenderProps(NodeProperties(n));
      return out + ")";
    }
    case ValueType::kRelationship: {
      RelId r = v.AsRelationship();
      if (!IsRelAlive(r)) return "[deleted]";
      return "[:" + RelType(r) + RenderProps(RelProperties(r)) + "]";
    }
    case ValueType::kPath: {
      const Path& p = v.AsPath();
      std::string out = Render(Value::Node(p.nodes[0]));
      for (size_t i = 0; i < p.rels.size(); ++i) {
        RelId r = p.rels[i];
        bool forward = IsRelAlive(r) && Source(r) == p.nodes[i];
        out += forward ? "-" : "<-";
        out += Render(Value::Relationship(r));
        out += forward ? "->" : "-";
        out += Render(Value::Node(p.nodes[i + 1]));
      }
      return out;
    }
    case ValueType::kList: {
      std::string out = "[";
      bool first = true;
      for (const Value& e : v.AsList()) {
        if (!first) out += ", ";
        first = false;
        out += Render(e);
      }
      return out + "]";
    }
    case ValueType::kMap: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, e] : v.AsMap()) {
        if (!first) out += ", ";
        first = false;
        out += k + ": " + Render(e);
      }
      return out + "}";
    }
    default:
      return FormatValue(v);
  }
}

}  // namespace gqlite
