#ifndef GQLITE_GRAPH_WRITE_OBSERVER_H_
#define GQLITE_GRAPH_WRITE_OBSERVER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/graph/property_graph.h"
#include "src/value/value.h"

namespace gqlite {

/// Observer of PropertyGraph's primitive mutations — the hook the
/// durability layer (src/storage/) uses to build write-ahead-log record
/// batches without the graph knowing anything about files or framing.
///
/// Contract:
///  * Callbacks fire AFTER the mutation succeeded, on the mutating
///    thread, with the id the mutation assigned. Failed mutators
///    (dead endpoint, frozen graph, ...) never fire.
///  * Compound mutations decompose into primitives: DETACH DELETE fires
///    one OnDeleteRelationship per removed relationship followed by
///    OnDeleteNode — replaying the primitive stream reproduces the
///    compound effect exactly.
///  * Id assignment is append-only (`id = slots++`), so replaying the
///    primitive stream against a graph restored to the pre-stream state
///    reassigns identical NodeId/RelId values; the WAL applier verifies
///    this invariant per record.
///  * Snapshot()/Clone() never copy the observer — frozen snapshots
///    cannot mutate, and rollback clones get a fresh observer attached
///    by the transaction layer (CypherEngine::RollbackWriter).
///
/// Argument lifetimes: string_views and references are only valid for
/// the duration of the callback; implementations copy what they keep
/// (Value copies are O(1), shared payloads).
class GraphWriteObserver {
 public:
  virtual ~GraphWriteObserver() = default;

  virtual void OnCreateNode(NodeId id, const std::vector<std::string>& labels,
                            const PropertyList& props) = 0;
  virtual void OnCreateRelationship(RelId id, NodeId src, NodeId tgt,
                                    std::string_view type,
                                    const PropertyList& props) = 0;
  virtual void OnAddLabel(NodeId n, std::string_view label) = 0;
  virtual void OnRemoveLabel(NodeId n, std::string_view label) = 0;
  /// A null `v` removes the property (Cypher SET x.k = null). Fires only
  /// when the property list actually changed (a null write to an absent
  /// key does not).
  virtual void OnSetNodeProperty(NodeId n, std::string_view key,
                                 const Value& v) = 0;
  virtual void OnSetRelProperty(RelId r, std::string_view key,
                                const Value& v) = 0;
  virtual void OnDeleteRelationship(RelId r) = 0;
  virtual void OnDeleteNode(NodeId n) = 0;
};

}  // namespace gqlite

#endif  // GQLITE_GRAPH_WRITE_OBSERVER_H_
