#ifndef GQLITE_GRAPH_PROPERTY_GRAPH_H_
#define GQLITE_GRAPH_PROPERTY_GRAPH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/interner.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/value/value.h"

namespace gqlite {

/// Property list used when creating/updating entities.
using PropertyList = std::vector<std::pair<std::string, Value>>;

/// An in-memory property graph G = ⟨N, R, src, tgt, ι, λ, τ⟩ (§4.1):
///  * N, R      — dense slots of node/relationship records (with tombstones
///                so ids stay stable under deletion);
///  * src, tgt  — stored on each relationship record;
///  * ι         — per-entity property lists (key → value);
///  * λ         — per-node label sets;
///  * τ         — per-relationship type.
///
/// The store keeps *direct adjacency references* — each node record holds
/// its outgoing and incoming relationship ids — which is the structural
/// property behind the paper's `Expand` operator ("the data representation
/// of Neo4j contains direct references from each node via its edges to the
/// related nodes", §2). A label index supports NodeByLabelScan.
///
/// Labels, relationship types and property keys are interned to dense ids.
/// The graph is single-threaded; the update language (src/update) mutates
/// it through this API.
class PropertyGraph {
 public:
  PropertyGraph() = default;
  PropertyGraph(const PropertyGraph&) = delete;
  PropertyGraph& operator=(const PropertyGraph&) = delete;

  // ---- Creation ----------------------------------------------------------

  /// Creates a node with the given labels and properties; returns its id.
  NodeId CreateNode(const std::vector<std::string>& labels = {},
                    const PropertyList& props = {});

  /// Creates a relationship src -[type]-> tgt. Fails if an endpoint is
  /// missing or deleted, or if `type` is empty (τ is total on R).
  Result<RelId> CreateRelationship(NodeId src, NodeId tgt,
                                   std::string_view type,
                                   const PropertyList& props = {});

  // ---- Existence & cardinality -------------------------------------------

  bool IsNodeAlive(NodeId n) const {
    return n.id < nodes_.size() && !nodes_[n.id].deleted;
  }
  bool IsRelAlive(RelId r) const {
    return r.id < rels_.size() && !rels_[r.id].deleted;
  }
  /// Number of live nodes / relationships.
  size_t NumNodes() const { return num_nodes_; }
  size_t NumRels() const { return num_rels_; }
  /// Slot-space upper bounds for id iteration (ids < NumNodeSlots()).
  size_t NumNodeSlots() const { return nodes_.size(); }
  size_t NumRelSlots() const { return rels_.size(); }

  /// All live node ids (materialized; prefer slot iteration in hot paths).
  std::vector<NodeId> AllNodes() const;

  // ---- λ: labels ----------------------------------------------------------

  /// Label set of a node, as interned ids (sorted ascending).
  const std::vector<SymbolId>& NodeLabelIds(NodeId n) const {
    return nodes_[n.id].labels;
  }
  std::vector<std::string> NodeLabels(NodeId n) const;
  bool NodeHasLabel(NodeId n, std::string_view label) const;
  bool NodeHasLabelId(NodeId n, SymbolId label) const;
  /// Adds/removes a label; returns true if the label set changed.
  bool AddLabel(NodeId n, std::string_view label);
  bool RemoveLabel(NodeId n, std::string_view label);

  // ---- τ: relationship types ---------------------------------------------

  SymbolId RelTypeId(RelId r) const { return rels_[r.id].type; }
  const std::string& RelType(RelId r) const {
    return types_.ToString(rels_[r.id].type);
  }

  // ---- src / tgt ----------------------------------------------------------

  NodeId Source(RelId r) const { return rels_[r.id].src; }
  NodeId Target(RelId r) const { return rels_[r.id].tgt; }
  /// The endpoint of `r` that is not `n` (for undirected traversal).
  NodeId OtherEnd(RelId r, NodeId n) const {
    return rels_[r.id].src == n ? rels_[r.id].tgt : rels_[r.id].src;
  }

  // ---- ι: properties ------------------------------------------------------

  /// ι(entity, key); a null Value when the property is absent (the partial
  /// function is undefined), matching Cypher's `x.k` semantics. Returns a
  /// reference into the record (or a static null) — hot paths compare and
  /// copy without materializing an intermediate.
  const Value& NodeProperty(NodeId n, std::string_view key) const;
  const Value& RelProperty(RelId r, std::string_view key) const;
  /// Sets (or, with a null value, removes) a property. Returns the number
  /// of properties added/changed (0 or 1).
  int SetNodeProperty(NodeId n, std::string_view key, Value v);
  int SetRelProperty(RelId r, std::string_view key, Value v);
  /// All properties as a map value (the `properties()` function).
  ValueMap NodeProperties(NodeId n) const;
  ValueMap RelProperties(RelId r) const;
  std::vector<std::string> NodePropertyKeys(NodeId n) const;
  std::vector<std::string> RelPropertyKeys(RelId r) const;

  // ---- Adjacency (the Expand substrate) -----------------------------------

  const std::vector<RelId>& OutRels(NodeId n) const { return nodes_[n.id].out; }
  const std::vector<RelId>& InRels(NodeId n) const { return nodes_[n.id].in; }
  size_t Degree(NodeId n) const {
    return nodes_[n.id].out.size() + nodes_[n.id].in.size();
  }

  // ---- Label index ---------------------------------------------------------

  /// Nodes currently carrying `label` (exact, maintained on mutation).
  const std::vector<NodeId>& NodesWithLabel(std::string_view label) const;

  // ---- Deletion -------------------------------------------------------------

  /// Deletes a relationship (unlinks it from both endpoints).
  Status DeleteRelationship(RelId r);
  /// Deletes a node; fails if it still has relationships (Cypher DELETE).
  Status DeleteNode(NodeId n);
  /// Deletes a node and all incident relationships (DETACH DELETE).
  Status DetachDeleteNode(NodeId n);

  // ---- Interners & statistics ----------------------------------------------

  /// Monotonic counter of plan-relevant structural changes: node and
  /// relationship creation/deletion and label changes — everything that
  /// moves the cardinality statistics the planner bakes into a plan (and
  /// the relationship-count bound substituted for ∞ in unbounded
  /// variable-length patterns). Property value updates do NOT bump it:
  /// plans evaluate property predicates at runtime, so cached plans stay
  /// valid across SET/REMOVE of properties. The plan cache uses this for
  /// generation-based invalidation.
  uint64_t stats_version() const { return stats_version_; }

  const StringInterner& labels() const { return labels_; }
  const StringInterner& types() const { return types_; }
  const StringInterner& keys() const { return keys_; }
  SymbolId LookupLabel(std::string_view s) const { return labels_.Lookup(s); }
  SymbolId LookupType(std::string_view s) const { return types_.Lookup(s); }

  /// Live node count per label id / rel count per type id (for the cost
  /// model). Missing entries mean zero.
  const std::unordered_map<SymbolId, size_t>& LabelCounts() const {
    return label_counts_;
  }
  const std::unordered_map<SymbolId, size_t>& TypeCounts() const {
    return type_counts_;
  }

  // ---- Rendering -------------------------------------------------------------

  /// Graph-aware display: nodes as `(:Label {k: v})`, relationships as
  /// `[:TYPE {k: v}]`, paths expanded, containers recursed.
  std::string Render(const Value& v) const;

 private:
  struct NodeRecord {
    bool deleted = false;
    std::vector<SymbolId> labels;  // sorted
    std::vector<std::pair<SymbolId, Value>> props;
    std::vector<RelId> out;
    std::vector<RelId> in;
  };
  struct RelRecord {
    bool deleted = false;
    NodeId src;
    NodeId tgt;
    SymbolId type = kNoSymbol;
    std::vector<std::pair<SymbolId, Value>> props;
  };

  static const Value& GetProp(
      const std::vector<std::pair<SymbolId, Value>>& props, SymbolId key);
  static int SetProp(std::vector<std::pair<SymbolId, Value>>* props,
                     SymbolId key, Value v);

  std::vector<NodeRecord> nodes_;
  std::vector<RelRecord> rels_;
  size_t num_nodes_ = 0;
  size_t num_rels_ = 0;
  uint64_t stats_version_ = 0;

  StringInterner labels_;
  StringInterner types_;
  StringInterner keys_;

  std::unordered_map<SymbolId, std::vector<NodeId>> label_index_;
  std::unordered_map<SymbolId, size_t> label_counts_;
  std::unordered_map<SymbolId, size_t> type_counts_;
};

}  // namespace gqlite

#endif  // GQLITE_GRAPH_PROPERTY_GRAPH_H_
