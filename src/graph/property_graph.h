#ifndef GQLITE_GRAPH_PROPERTY_GRAPH_H_
#define GQLITE_GRAPH_PROPERTY_GRAPH_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/interner.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/value/value.h"

namespace gqlite {

class GraphWriteObserver;
class StorageInternals;

/// Property list used when creating/updating entities.
using PropertyList = std::vector<std::pair<std::string, Value>>;

/// An in-memory property graph G = ⟨N, R, src, tgt, ι, λ, τ⟩ (§4.1):
///  * N, R      — dense slots of node/relationship records (with tombstones
///                so ids stay stable under deletion);
///  * src, tgt  — stored on each relationship record;
///  * ι         — per-entity property lists (key → value);
///  * λ         — per-node label sets;
///  * τ         — per-relationship type.
///
/// The store keeps *direct adjacency references* — each node record holds
/// its outgoing and incoming relationship ids — which is the structural
/// property behind the paper's `Expand` operator ("the data representation
/// of Neo4j contains direct references from each node via its edges to the
/// related nodes", §2). A label index supports NodeByLabelScan.
///
/// Labels, relationship types and property keys are interned to dense ids.
///
/// ## Versioned snapshots (MVCC substrate)
///
/// Node/relationship slots live in fixed-size copy-on-write pages
/// (kPageSize records behind a shared_ptr), and each label-index posting
/// list is likewise a shared payload. Snapshot() produces a new
/// PropertyGraph that SHARES every page with this one — O(slots/kPageSize)
/// pointer copies plus a schema-sized interner clone, independent of data
/// volume. After a snapshot, the first mutation touching a page clones
/// just that page (epoch-tagged: a page is written in place only while
/// this graph object owns it exclusively), so
///  * a snapshot is deeply immutable — reader threads traverse it without
///    any locking while the live graph keeps committing, and
///  * the live graph pays copy costs proportional to what it actually
///    writes, not to graph size.
/// Snapshots are frozen: mutators on a frozen graph fail (Status-returning
/// ones) or assert (infallible ones). The session layer (src/core/session)
/// is the intended consumer; it hands frozen snapshots to readers and
/// routes every write to the single live graph under the engine's writer
/// transaction.
///
/// Thread-safety: a PropertyGraph object is single-writer. Concurrent
/// READERS of a frozen snapshot are safe (nothing mutates shared pages);
/// the live graph must not be read while a writer mutates it — the engine
/// enforces this by running readers on snapshots.
///
/// References returned by accessors (NodeProperty, OutRels, ...) point
/// into the record's current page payload; a later mutation of ANY record
/// on the same page may copy-on-write the page and invalidate them. Copy
/// the Value (O(1), shared payload) instead of holding references across
/// mutations.
class PropertyGraph {
 public:
  PropertyGraph() = default;
  PropertyGraph(const PropertyGraph&) = delete;
  PropertyGraph& operator=(const PropertyGraph&) = delete;

  // ---- Versioned snapshots -------------------------------------------------

  /// An immutable snapshot of this graph's current state, sharing slot
  /// pages copy-on-write. Cheap (page-pointer vector + interner clone);
  /// safe to read from any number of threads while this graph keeps
  /// mutating. Marks every current page frozen, so subsequent writes to
  /// this graph clone the pages they touch.
  std::shared_ptr<PropertyGraph> Snapshot();

  /// A mutable copy sharing pages copy-on-write (the transaction-rollback
  /// restore path: re-materialize the last committed state as a fresh
  /// live graph). Content-equal to `*this` at call time.
  std::shared_ptr<PropertyGraph> Clone() const;

  /// True for graphs produced by Snapshot(): every mutator fails/asserts.
  bool frozen() const { return frozen_; }

  /// Monotonic counter of ALL mutations (structural and property). The
  /// engine compares it against the version captured at the last
  /// committed snapshot to decide whether a fresh read snapshot is
  /// needed. Unlike stats_version(), property SETs bump it.
  uint64_t data_version() const { return data_version_; }

  // ---- Creation ----------------------------------------------------------

  /// Creates a node with the given labels and properties; returns its id.
  NodeId CreateNode(const std::vector<std::string>& labels = {},
                    const PropertyList& props = {});

  /// Creates a relationship src -[type]-> tgt. Fails if an endpoint is
  /// missing or deleted, or if `type` is empty (τ is total on R).
  Result<RelId> CreateRelationship(NodeId src, NodeId tgt,
                                   std::string_view type,
                                   const PropertyList& props = {});

  // ---- Existence & cardinality -------------------------------------------

  bool IsNodeAlive(NodeId n) const {
    return n.id < node_slots_ && !node(n).deleted;
  }
  bool IsRelAlive(RelId r) const {
    return r.id < rel_slots_ && !rel(r).deleted;
  }
  /// Number of live nodes / relationships.
  size_t NumNodes() const { return num_nodes_; }
  size_t NumRels() const { return num_rels_; }
  /// Slot-space upper bounds for id iteration (ids < NumNodeSlots()).
  size_t NumNodeSlots() const { return node_slots_; }
  size_t NumRelSlots() const { return rel_slots_; }

  /// All live node ids (materialized; prefer slot iteration in hot paths).
  std::vector<NodeId> AllNodes() const;

  // ---- λ: labels ----------------------------------------------------------

  /// Label set of a node, as interned ids (sorted ascending).
  const std::vector<SymbolId>& NodeLabelIds(NodeId n) const {
    return node(n).labels;
  }
  std::vector<std::string> NodeLabels(NodeId n) const;
  bool NodeHasLabel(NodeId n, std::string_view label) const;
  bool NodeHasLabelId(NodeId n, SymbolId label) const;
  /// Adds/removes a label; returns true if the label set changed.
  bool AddLabel(NodeId n, std::string_view label);
  bool RemoveLabel(NodeId n, std::string_view label);

  // ---- τ: relationship types ---------------------------------------------

  SymbolId RelTypeId(RelId r) const { return rel(r).type; }
  const std::string& RelType(RelId r) const {
    return types_.ToString(rel(r).type);
  }

  // ---- src / tgt ----------------------------------------------------------

  NodeId Source(RelId r) const { return rel(r).src; }
  NodeId Target(RelId r) const { return rel(r).tgt; }
  /// The endpoint of `r` that is not `n` (for undirected traversal).
  NodeId OtherEnd(RelId r, NodeId n) const {
    return rel(r).src == n ? rel(r).tgt : rel(r).src;
  }

  // ---- ι: properties ------------------------------------------------------

  /// ι(entity, key); a null Value when the property is absent (the partial
  /// function is undefined), matching Cypher's `x.k` semantics. Returns a
  /// reference into the record (or a static null) — hot paths compare and
  /// copy without materializing an intermediate.
  const Value& NodeProperty(NodeId n, std::string_view key) const;
  const Value& RelProperty(RelId r, std::string_view key) const;
  /// Sets (or, with a null value, removes) a property. Returns the number
  /// of properties added/changed (0 or 1).
  int SetNodeProperty(NodeId n, std::string_view key, Value v);
  int SetRelProperty(RelId r, std::string_view key, Value v);
  /// All properties as a map value (the `properties()` function).
  ValueMap NodeProperties(NodeId n) const;
  ValueMap RelProperties(RelId r) const;
  std::vector<std::string> NodePropertyKeys(NodeId n) const;
  std::vector<std::string> RelPropertyKeys(RelId r) const;

  // ---- Adjacency (the Expand substrate) -----------------------------------

  const std::vector<RelId>& OutRels(NodeId n) const { return node(n).out; }
  const std::vector<RelId>& InRels(NodeId n) const { return node(n).in; }
  /// Incident slot count. NOTE: a self-loop appears in both `out` and
  /// `in`, so Degree counts it twice — callers counting distinct incident
  /// relationships (DETACH DELETE accounting) must not use this.
  size_t Degree(NodeId n) const {
    return node(n).out.size() + node(n).in.size();
  }

  // ---- Label index ---------------------------------------------------------

  /// Nodes currently carrying `label` (exact, maintained on mutation).
  const std::vector<NodeId>& NodesWithLabel(std::string_view label) const;

  // ---- Deletion -------------------------------------------------------------

  /// Deletes a relationship (unlinks it from both endpoints).
  Status DeleteRelationship(RelId r);
  /// Deletes a node; fails if it still has relationships (Cypher DELETE).
  Status DeleteNode(NodeId n);
  /// Deletes a node and all incident relationships (DETACH DELETE).
  /// Returns the number of relationships actually removed — a self-loop
  /// counts once (Degree would count it twice), and relationships a
  /// previous deletion already removed do not count at all. DELETE
  /// statement accounting must use this value, not a pre-delete Degree.
  Result<int64_t> DetachDeleteNode(NodeId n);

  // ---- Interners & statistics ----------------------------------------------

  /// Monotonic counter of plan-relevant structural changes: node and
  /// relationship creation/deletion and label changes — everything that
  /// moves the cardinality statistics the planner bakes into a plan (and
  /// the relationship-count bound substituted for ∞ in unbounded
  /// variable-length patterns). Property value updates do NOT bump it:
  /// plans evaluate property predicates at runtime, so cached plans stay
  /// valid across SET/REMOVE of properties. The plan cache uses this for
  /// generation-based invalidation; snapshots inherit the value at
  /// snapshot time (and, being frozen, never move it).
  uint64_t stats_version() const { return stats_version_; }

  const StringInterner& labels() const { return labels_; }
  const StringInterner& types() const { return types_; }
  const StringInterner& keys() const { return keys_; }
  SymbolId LookupLabel(std::string_view s) const { return labels_.Lookup(s); }
  SymbolId LookupType(std::string_view s) const { return types_.Lookup(s); }

  /// Live node count per label id / rel count per type id (for the cost
  /// model). Missing entries mean zero.
  const std::unordered_map<SymbolId, size_t>& LabelCounts() const {
    return label_counts_;
  }
  const std::unordered_map<SymbolId, size_t>& TypeCounts() const {
    return type_counts_;
  }

  // ---- Directional degree statistics ---------------------------------------

  /// Degree histograms are log2-bucketed: bucket b counts live nodes
  /// whose typed degree d (>= 1) has floor(log2 d) == b.
  static constexpr size_t kDegreeBuckets = 32;

  /// Per-relationship-type directional statistics, maintained
  /// incrementally by the relationship mutators (an O(degree) scan of
  /// the touched endpoint's adjacency per create/delete):
  ///  * distinct_sources/targets — live nodes with at least one
  ///    outgoing/incoming relationship of the type (conditional-fan
  ///    denominators for multi-level expands);
  ///  * out_hist/in_hist — log2-bucketed fan histograms (heavy-tail
  ///    bounds for var-length estimates).
  struct TypeDegreeStats {
    size_t distinct_sources = 0;
    size_t distinct_targets = 0;
    std::array<size_t, kDegreeBuckets> out_hist{};
    std::array<size_t, kDegreeBuckets> in_hist{};
  };

  /// Directional stats for `type`; nullptr if no relationship of that
  /// type was ever created.
  const TypeDegreeStats* DegreeStatsFor(SymbolId type) const;

  /// Live relationships of `type` whose source (out) / target (in) node
  /// currently carries `label`. Zero when the pair is absent.
  size_t LabelTypeOutCount(SymbolId label, SymbolId type) const;
  size_t LabelTypeInCount(SymbolId label, SymbolId type) const;

  /// Estimated distinct values ever written under the property key on
  /// nodes / relationships (insert-only KMV sketch: overwrites and
  /// deletes never retract, so after heavy rewriting the estimate can
  /// only overcount — which biases equality selectivity low, a safe
  /// direction for the planner). Exact while under 64 distinct values.
  /// Returns 0 when the key was never written.
  double NodePropertyNdv(std::string_view key) const;
  double RelPropertyNdv(std::string_view key) const;

  // ---- Rendering -----------------------------------------------------------

  /// Graph-aware display: nodes as `(:Label {k: v})`, relationships as
  /// `[:TYPE {k: v}]`, paths expanded, containers recursed.
  std::string Render(const Value& v) const;

  // ---- Write observation (durability hook) ---------------------------------

  /// Attaches (or, with nullptr, detaches) the observer every successful
  /// primitive mutation reports to — the WAL recorder of src/storage/.
  /// Not copied by Snapshot()/Clone(): snapshots are frozen, and clones
  /// (transaction-rollback restores) get a fresh observer attached by
  /// the transaction layer. Single-writer discipline covers the observer
  /// too: callbacks fire on the mutating thread only.
  void set_write_observer(GraphWriteObserver* observer) {
    observer_ = observer;
  }
  GraphWriteObserver* write_observer() const { return observer_; }

 private:
  /// The serialization backdoor of src/storage/ (checkpoint encode/decode
  /// and WAL replay): the ONE class allowed to touch record pages,
  /// interners and statistics directly, so the on-disk format can mirror
  /// the in-memory layout bit for bit without widening the public API.
  friend class StorageInternals;

  struct NodeRecord {
    bool deleted = false;
    std::vector<SymbolId> labels;  // sorted
    std::vector<std::pair<SymbolId, Value>> props;
    std::vector<RelId> out;
    std::vector<RelId> in;
  };
  struct RelRecord {
    bool deleted = false;
    NodeId src;
    NodeId tgt;
    SymbolId type = kNoSymbol;
    std::vector<std::pair<SymbolId, Value>> props;
  };

  /// 64 records per copy-on-write page: small enough that a point write
  /// after a snapshot copies little, large enough that the page-pointer
  /// vector (and thus Snapshot cost) stays 64x smaller than the slots.
  static constexpr size_t kPageBits = 6;
  static constexpr size_t kPageSize = size_t{1} << kPageBits;
  static constexpr size_t kPageMask = kPageSize - 1;

  /// A shared payload plus the epoch at which THIS graph object last
  /// owned it exclusively. Writable in place iff epoch == epoch_;
  /// otherwise some snapshot/clone may share the payload and the writer
  /// clones it first (see MutableSlot).
  template <typename T>
  struct Cow {
    std::shared_ptr<T> payload;
    uint64_t epoch = 0;
  };
  template <typename Rec>
  using PageVec = std::vector<Cow<std::vector<Rec>>>;

  /// Copy-on-write copy: shares every page/posting payload, clones the
  /// interners and count maps. The copy's epoch is advanced past every
  /// shared payload's, so its first write to any page clones it.
  PropertyGraph(const PropertyGraph& other, bool frozen);

  const NodeRecord& node(NodeId n) const {
    return (*node_pages_[n.id >> kPageBits].payload)[n.id & kPageMask];
  }
  const RelRecord& rel(RelId r) const {
    return (*rel_pages_[r.id >> kPageBits].payload)[r.id & kPageMask];
  }
  template <typename Rec>
  Rec* MutableSlot(PageVec<Rec>* pages, size_t id);
  NodeRecord* MutableNode(NodeId n) {
    return MutableSlot(&node_pages_, n.id);
  }
  RelRecord* MutableRel(RelId r) { return MutableSlot(&rel_pages_, r.id); }
  /// Appends one slot (cloning/creating the tail page as needed) and
  /// returns the new record.
  template <typename Rec>
  Rec* AppendSlot(PageVec<Rec>* pages, size_t* slots);
  /// The label-index posting list for `s`, writable in place.
  std::vector<NodeId>* MutablePosting(SymbolId s);

  void AssertMutable() const {
    assert(!frozen_ && "mutating a frozen graph snapshot");
  }

  static const Value& GetProp(
      const std::vector<std::pair<SymbolId, Value>>& props, SymbolId key);
  static int SetProp(std::vector<std::pair<SymbolId, Value>>* props,
                     SymbolId key, Value v);

  /// Insert-only k-minimum-values distinct-count sketch: keeps the kK
  /// smallest distinct 64-bit hashes seen. Exact below kK (it simply
  /// holds every distinct hash); at capacity the estimate is
  /// (kK-1) * 2^64 / kth-smallest.
  struct KmvSketch {
    static constexpr size_t kK = 64;
    std::vector<uint64_t> mins;  // sorted ascending, distinct
    void Insert(uint64_t h);
    double Estimate() const;
  };

  static uint64_t LabelTypeKey(SymbolId label, SymbolId type) {
    return (static_cast<uint64_t>(label) << 32) | type;
  }
  /// floor(log2 d) clamped to the histogram width; d >= 1.
  static size_t DegreeBucket(size_t d);
  /// Count of relationships of `type` in the adjacency vector.
  size_t TypedDegree(const std::vector<RelId>& adj, SymbolId type) const;
  /// Re-buckets one node whose typed degree changed from `before` to
  /// `before + delta` (delta is +1 or -1), keeping the distinct-endpoint
  /// count in sync (a node enters at degree 1, leaves at degree 0).
  static void ShiftDegree(std::array<size_t, kDegreeBuckets>* hist,
                          size_t* distinct, size_t before, int delta);
  static void NoteNdv(std::unordered_map<SymbolId, KmvSketch>* ndv,
                      SymbolId key, const Value& v);

  PageVec<NodeRecord> node_pages_;
  PageVec<RelRecord> rel_pages_;
  size_t node_slots_ = 0;
  size_t rel_slots_ = 0;
  size_t num_nodes_ = 0;
  size_t num_rels_ = 0;
  uint64_t stats_version_ = 0;
  uint64_t data_version_ = 0;
  /// Epoch for the Cow ownership test; bumped by Snapshot() so every
  /// page held at snapshot time reads as shared.
  uint64_t epoch_ = 1;
  bool frozen_ = false;
  /// Deliberately absent from the copy constructor's init list: snapshots
  /// and clones start unobserved (see set_write_observer).
  GraphWriteObserver* observer_ = nullptr;

  StringInterner labels_;
  StringInterner types_;
  StringInterner keys_;

  std::unordered_map<SymbolId, Cow<std::vector<NodeId>>> label_index_;
  std::unordered_map<SymbolId, size_t> label_counts_;
  std::unordered_map<SymbolId, size_t> type_counts_;

  // Directional statistics (schema-sized: per type / per (label, type)
  // pair / per property key — Snapshot() copies stay cheap). Keys of the
  // label-type maps are LabelTypeKey-packed pairs.
  std::unordered_map<uint64_t, size_t> label_type_out_counts_;
  std::unordered_map<uint64_t, size_t> label_type_in_counts_;
  std::unordered_map<SymbolId, TypeDegreeStats> type_degree_stats_;
  std::unordered_map<SymbolId, KmvSketch> node_ndv_;
  std::unordered_map<SymbolId, KmvSketch> rel_ndv_;
};

}  // namespace gqlite

#endif  // GQLITE_GRAPH_PROPERTY_GRAPH_H_
