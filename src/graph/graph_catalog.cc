#include "src/graph/graph_catalog.h"

namespace gqlite {

Result<GraphPtr> GraphCatalog::Resolve(std::string_view name) const {
  MutexLock lock(&mu_);
  auto it = graphs_.find(std::string(name));
  if (it == graphs_.end()) {
    return Status::NotFound("no graph named `" + std::string(name) +
                            "` in the catalog");
  }
  return it->second;
}

Result<GraphPtr> GraphCatalog::ResolveUrl(std::string_view url) const {
  MutexLock lock(&mu_);
  auto it = urls_.find(std::string(url));
  if (it == urls_.end()) {
    return Status::NotFound("no graph registered at URL '" + std::string(url) +
                            "'");
  }
  return it->second;
}

}  // namespace gqlite
