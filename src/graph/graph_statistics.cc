#include "src/graph/graph_statistics.h"

#include <algorithm>

namespace gqlite {

double GraphStatistics::NodesWithLabel(std::string_view label) const {
  SymbolId s = g_.LookupLabel(label);
  if (s == kNoSymbol) return 0;
  auto it = g_.LabelCounts().find(s);
  return it == g_.LabelCounts().end() ? 0 : static_cast<double>(it->second);
}

double GraphStatistics::RelsWithType(std::string_view type) const {
  if (type.empty()) return RelCount();
  SymbolId s = g_.LookupType(type);
  if (s == kNoSymbol) return 0;
  auto it = g_.TypeCounts().find(s);
  return it == g_.TypeCounts().end() ? 0 : static_cast<double>(it->second);
}

double GraphStatistics::AvgDegree(std::string_view type) const {
  double n = NodeCount();
  if (n < 1) n = 1;
  return RelsWithType(type) / n;
}

double GraphStatistics::LabelTypeCount(std::string_view label,
                                       std::string_view type,
                                       bool out) const {
  SymbolId l = g_.LookupLabel(label);
  if (l == kNoSymbol) return 0;
  auto count_for = [&](SymbolId t) {
    return static_cast<double>(out ? g_.LabelTypeOutCount(l, t)
                                   : g_.LabelTypeInCount(l, t));
  };
  if (!type.empty()) {
    SymbolId t = g_.LookupType(type);
    return t == kNoSymbol ? 0 : count_for(t);
  }
  double total = 0;
  for (const auto& [t, n] : g_.TypeCounts()) {
    if (n > 0) total += count_for(t);
  }
  return total;
}

double GraphStatistics::OutDegree(std::string_view type,
                                  std::string_view src_label) const {
  if (src_label.empty()) {
    return RelsWithType(type) / std::max(NodeCount(), 1.0);
  }
  return LabelTypeCount(src_label, type, /*out=*/true) /
         std::max(NodesWithLabel(src_label), 1.0);
}

double GraphStatistics::InDegree(std::string_view type,
                                 std::string_view tgt_label) const {
  if (tgt_label.empty()) {
    return RelsWithType(type) / std::max(NodeCount(), 1.0);
  }
  return LabelTypeCount(tgt_label, type, /*out=*/false) /
         std::max(NodesWithLabel(tgt_label), 1.0);
}

namespace {

double DistinctEndpoints(const PropertyGraph& g, std::string_view type,
                         bool sources) {
  auto pick = [&](const PropertyGraph::TypeDegreeStats& ds) {
    return static_cast<double>(sources ? ds.distinct_sources
                                       : ds.distinct_targets);
  };
  if (!type.empty()) {
    SymbolId t = g.LookupType(type);
    if (t == kNoSymbol) return 0;
    const auto* ds = g.DegreeStatsFor(t);
    return ds == nullptr ? 0 : pick(*ds);
  }
  // Untyped: per-type distinct sets overlap, so the sum is an upper
  // bound; clamp by the node count.
  double total = 0;
  for (const auto& [t, n] : g.TypeCounts()) {
    if (n == 0) continue;
    const auto* ds = g.DegreeStatsFor(t);
    if (ds != nullptr) total += pick(*ds);
  }
  return std::min(total, static_cast<double>(g.NumNodes()));
}

double MaxDegreeBound(const PropertyGraph& g, std::string_view type,
                      bool out) {
  auto bound_for = [&](const PropertyGraph::TypeDegreeStats& ds) -> double {
    const auto& hist = out ? ds.out_hist : ds.in_hist;
    for (size_t b = PropertyGraph::kDegreeBuckets; b-- > 0;) {
      if (hist[b] > 0) {
        // Bucket b holds degrees in [2^b, 2^(b+1) - 1].
        return static_cast<double>((size_t{2} << b) - 1);
      }
    }
    return 0;
  };
  if (!type.empty()) {
    SymbolId t = g.LookupType(type);
    if (t == kNoSymbol) return 0;
    const auto* ds = g.DegreeStatsFor(t);
    return ds == nullptr ? 0 : bound_for(*ds);
  }
  // Untyped: one node's total fan is at most the sum of its per-type
  // maxima.
  double total = 0;
  for (const auto& [t, n] : g.TypeCounts()) {
    if (n == 0) continue;
    const auto* ds = g.DegreeStatsFor(t);
    if (ds != nullptr) total += bound_for(*ds);
  }
  return total;
}

}  // namespace

double GraphStatistics::DistinctSources(std::string_view type) const {
  return DistinctEndpoints(g_, type, /*sources=*/true);
}

double GraphStatistics::DistinctTargets(std::string_view type) const {
  return DistinctEndpoints(g_, type, /*sources=*/false);
}

double GraphStatistics::CondOutDegree(std::string_view type) const {
  double sources = DistinctSources(type);
  if (sources < 1) return 0;
  return RelsWithType(type) / sources;
}

double GraphStatistics::CondInDegree(std::string_view type) const {
  double targets = DistinctTargets(type);
  if (targets < 1) return 0;
  return RelsWithType(type) / targets;
}

double GraphStatistics::MaxOutDegree(std::string_view type) const {
  return MaxDegreeBound(g_, type, /*out=*/true);
}

double GraphStatistics::MaxInDegree(std::string_view type) const {
  return MaxDegreeBound(g_, type, /*out=*/false);
}

}  // namespace gqlite
