#include "src/graph/graph_statistics.h"

namespace gqlite {

double GraphStatistics::NodesWithLabel(std::string_view label) const {
  SymbolId s = g_.LookupLabel(label);
  if (s == kNoSymbol) return 0;
  auto it = g_.LabelCounts().find(s);
  return it == g_.LabelCounts().end() ? 0 : static_cast<double>(it->second);
}

double GraphStatistics::RelsWithType(std::string_view type) const {
  if (type.empty()) return RelCount();
  SymbolId s = g_.LookupType(type);
  if (s == kNoSymbol) return 0;
  auto it = g_.TypeCounts().find(s);
  return it == g_.TypeCounts().end() ? 0 : static_cast<double>(it->second);
}

double GraphStatistics::AvgDegree(std::string_view type) const {
  double n = NodeCount();
  if (n < 1) n = 1;
  return RelsWithType(type) / n;
}

}  // namespace gqlite
