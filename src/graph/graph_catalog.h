#ifndef GQLITE_GRAPH_GRAPH_CATALOG_H_
#define GQLITE_GRAPH_GRAPH_CATALOG_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/common/result.h"
#include "src/common/sync.h"
#include "src/graph/property_graph.h"

namespace gqlite {

using GraphPtr = std::shared_ptr<PropertyGraph>;

/// Named-graph catalog for the Cypher 10 multiple-graphs feature (§6).
/// Graph references can name in-catalog graphs or be resolved from URLs
/// ("hdfs://...", "bolt://..."): the paper's Example 6.1 loads graphs AT a
/// URL. We simulate external storage with a URL→graph registry (see
/// DESIGN.md substitution table) so the resolution code path is exercised
/// without a network.
///
/// Thread-safety: INTERNALLY LOCKED — every method takes mu_ itself, as
/// the PR-6 annotations planned (the MutexLock moved from the call sites
/// into the method bodies; no interface change otherwise). Methods hand
/// out GraphPtr copies, never references into guarded state, so callers
/// hold no lock while using a resolved graph.
class GraphCatalog {
 public:
  /// Name of the implicit single global graph of Cypher 9.
  static constexpr const char* kDefaultGraphName = "default";

  // Direct field init (not RegisterGraph): constructors run before the
  // object can be shared, where holding mu_ would be meaningless.
  GraphCatalog() {
    graphs_[kDefaultGraphName] = std::make_shared<PropertyGraph>();
  }

  /// Registers (or replaces) a named graph. Bumps the catalog version
  /// only when the mapping actually changes, so re-registering the same
  /// graph (e.g. when planning FROM GRAPH ... AT re-resolves a URL) does
  /// not invalidate cached plans.
  void RegisterGraph(std::string_view name, GraphPtr graph) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    GraphPtr& slot = graphs_[std::string(name)];
    if (slot != graph) {
      slot = std::move(graph);
      ++version_;
    }
  }

  /// Registers a URL as resolving to a (new or existing) graph.
  void RegisterUrl(std::string_view url, GraphPtr graph) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    GraphPtr& slot = urls_[std::string(url)];
    if (slot != graph) {
      slot = std::move(graph);
      ++version_;
    }
  }

  /// Monotonic counter of name/URL (re)bindings. Cached plans resolve
  /// FROM GRAPH references at planning time, so any rebinding stales
  /// them (generation-based invalidation in the plan cache).
  uint64_t version() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return version_;
  }

  bool HasGraph(std::string_view name) const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return graphs_.contains(std::string(name));
  }

  /// Resolves a graph by name.
  Result<GraphPtr> Resolve(std::string_view name) const EXCLUDES(mu_);

  /// Resolves a graph by URL (FROM GRAPH g AT "url"); registers the result
  /// under `name` as a side effect when called through the engine.
  Result<GraphPtr> ResolveUrl(std::string_view url) const EXCLUDES(mu_);

  GraphPtr default_graph() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return graphs_.at(kDefaultGraphName);
  }

 private:
  /// Mutable so const reads (version, Resolve) lock through the same
  /// capability as writers.
  mutable Mutex mu_;
  std::unordered_map<std::string, GraphPtr> graphs_ GUARDED_BY(mu_);
  std::unordered_map<std::string, GraphPtr> urls_ GUARDED_BY(mu_);
  uint64_t version_ GUARDED_BY(mu_) = 0;
};

}  // namespace gqlite

#endif  // GQLITE_GRAPH_GRAPH_CATALOG_H_
