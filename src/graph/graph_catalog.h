#ifndef GQLITE_GRAPH_GRAPH_CATALOG_H_
#define GQLITE_GRAPH_GRAPH_CATALOG_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/common/result.h"
#include "src/graph/property_graph.h"

namespace gqlite {

using GraphPtr = std::shared_ptr<PropertyGraph>;

/// Named-graph catalog for the Cypher 10 multiple-graphs feature (§6).
/// Graph references can name in-catalog graphs or be resolved from URLs
/// ("hdfs://...", "bolt://..."): the paper's Example 6.1 loads graphs AT a
/// URL. We simulate external storage with a URL→graph registry (see
/// DESIGN.md substitution table) so the resolution code path is exercised
/// without a network.
class GraphCatalog {
 public:
  /// Name of the implicit single global graph of Cypher 9.
  static constexpr const char* kDefaultGraphName = "default";

  GraphCatalog() { RegisterGraph(kDefaultGraphName, std::make_shared<PropertyGraph>()); }

  /// Registers (or replaces) a named graph. Bumps the catalog version
  /// only when the mapping actually changes, so re-registering the same
  /// graph (e.g. when planning FROM GRAPH ... AT re-resolves a URL) does
  /// not invalidate cached plans.
  void RegisterGraph(std::string_view name, GraphPtr graph) {
    GraphPtr& slot = graphs_[std::string(name)];
    if (slot != graph) {
      slot = std::move(graph);
      ++version_;
    }
  }

  /// Registers a URL as resolving to a (new or existing) graph.
  void RegisterUrl(std::string_view url, GraphPtr graph) {
    GraphPtr& slot = urls_[std::string(url)];
    if (slot != graph) {
      slot = std::move(graph);
      ++version_;
    }
  }

  /// Monotonic counter of name/URL (re)bindings. Cached plans resolve
  /// FROM GRAPH references at planning time, so any rebinding stales
  /// them (generation-based invalidation in the plan cache).
  uint64_t version() const { return version_; }

  bool HasGraph(std::string_view name) const {
    return graphs_.count(std::string(name)) > 0;
  }

  /// Resolves a graph by name.
  Result<GraphPtr> Resolve(std::string_view name) const;

  /// Resolves a graph by URL (FROM GRAPH g AT "url"); registers the result
  /// under `name` as a side effect when called through the engine.
  Result<GraphPtr> ResolveUrl(std::string_view url) const;

  GraphPtr default_graph() const { return graphs_.at(kDefaultGraphName); }

 private:
  std::unordered_map<std::string, GraphPtr> graphs_;
  std::unordered_map<std::string, GraphPtr> urls_;
  uint64_t version_ = 0;
};

}  // namespace gqlite

#endif  // GQLITE_GRAPH_GRAPH_CATALOG_H_
