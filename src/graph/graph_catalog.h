#ifndef GQLITE_GRAPH_GRAPH_CATALOG_H_
#define GQLITE_GRAPH_GRAPH_CATALOG_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/common/result.h"
#include "src/common/sync.h"
#include "src/graph/property_graph.h"

namespace gqlite {

using GraphPtr = std::shared_ptr<PropertyGraph>;

/// An immutable copy of the catalog's name/URL bindings, taken at a
/// transaction's Begin (GraphCatalog::Capture). A snapshot-isolated
/// reader resolves FROM GRAPH references against this — a concurrent
/// RegisterGraph/RegisterUrl cannot change what its statements see
/// mid-transaction (it used to: graph resolution happened per
/// statement, at planning time).
struct CatalogSnapshot {
  std::unordered_map<std::string, GraphPtr> graphs;
  std::unordered_map<std::string, GraphPtr> urls;
  uint64_t version = 0;
};

/// Named-graph catalog for the Cypher 10 multiple-graphs feature (§6).
/// Graph references can name in-catalog graphs or be resolved from URLs
/// ("hdfs://...", "bolt://..."): the paper's Example 6.1 loads graphs AT a
/// URL. We simulate external storage with a URL→graph registry (see
/// DESIGN.md substitution table) so the resolution code path is exercised
/// without a network.
///
/// Thread-safety: INTERNALLY LOCKED — every method takes mu_ itself, as
/// the PR-6 annotations planned (the MutexLock moved from the call sites
/// into the method bodies; no interface change otherwise). Methods hand
/// out GraphPtr copies, never references into guarded state, so callers
/// hold no lock while using a resolved graph.
class GraphCatalog {
 public:
  /// Name of the implicit single global graph of Cypher 9.
  static constexpr const char* kDefaultGraphName = "default";

  // Direct field init (not RegisterGraph): constructors run before the
  // object can be shared, where holding mu_ would be meaningless.
  GraphCatalog() {
    graphs_[kDefaultGraphName] = std::make_shared<PropertyGraph>();
  }

  /// Registers (or replaces) a named graph. Bumps the catalog version
  /// only when the mapping actually changes, so re-registering the same
  /// graph (e.g. when planning FROM GRAPH ... AT re-resolves a URL) does
  /// not invalidate cached plans.
  void RegisterGraph(std::string_view name, GraphPtr graph) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    GraphPtr& slot = graphs_[std::string(name)];
    if (slot != graph) {
      slot = std::move(graph);
      ++version_;
    }
  }

  /// Registers a URL as resolving to a (new or existing) graph.
  void RegisterUrl(std::string_view url, GraphPtr graph) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    GraphPtr& slot = urls_[std::string(url)];
    if (slot != graph) {
      slot = std::move(graph);
      ++version_;
    }
  }

  /// Monotonic counter of name/URL (re)bindings. Cached plans resolve
  /// FROM GRAPH references at planning time, so any rebinding stales
  /// them (generation-based invalidation in the plan cache).
  uint64_t version() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return version_;
  }

  bool HasGraph(std::string_view name) const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return graphs_.contains(std::string(name));
  }

  /// Resolves a graph by name.
  Result<GraphPtr> Resolve(std::string_view name) const EXCLUDES(mu_);

  /// Resolves a graph by URL (FROM GRAPH g AT "url"); registers the result
  /// under `name` as a side effect when called through the engine.
  Result<GraphPtr> ResolveUrl(std::string_view url) const EXCLUDES(mu_);

  GraphPtr default_graph() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return graphs_.at(kDefaultGraphName);
  }

  /// Copies the current bindings for per-transaction pinning (see
  /// CatalogSnapshot). O(catalog size), taken once per Begin.
  std::shared_ptr<const CatalogSnapshot> Capture() const EXCLUDES(mu_) {
    auto snap = std::make_shared<CatalogSnapshot>();
    MutexLock lock(&mu_);
    snap->graphs = graphs_;
    snap->urls = urls_;
    snap->version = version_;
    return snap;
  }

 private:
  /// Mutable so const reads (version, Resolve) lock through the same
  /// capability as writers.
  mutable Mutex mu_;
  std::unordered_map<std::string, GraphPtr> graphs_ GUARDED_BY(mu_);
  std::unordered_map<std::string, GraphPtr> urls_ GUARDED_BY(mu_);
  uint64_t version_ GUARDED_BY(mu_) = 0;
};

/// How the planner and interpreter see the catalog: the live catalog,
/// optionally overlaid with a transaction's pinned CatalogSnapshot.
/// Implicitly constructible from GraphCatalog* so non-transactional call
/// sites pass the catalog as before (live resolution).
///
/// Resolution checks the pinned snapshot first and falls back to the
/// live catalog only for names/URLs absent at Begin — bindings that
/// existed at Begin are STABLE for the whole transaction, while a graph
/// the transaction itself registers (FROM GRAPH ... AT self-registers
/// its name) still resolves later in the same transaction.
/// Registration always writes to the live catalog.
class CatalogRef {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): deliberate adapter.
  CatalogRef(GraphCatalog* live) : live_(live) {}
  CatalogRef(GraphCatalog* live, std::shared_ptr<const CatalogSnapshot> pinned)
      : live_(live), pinned_(std::move(pinned)) {}

  Result<GraphPtr> Resolve(std::string_view name) const {
    if (pinned_ != nullptr) {
      auto it = pinned_->graphs.find(std::string(name));
      if (it != pinned_->graphs.end()) return it->second;
    }
    return live_->Resolve(name);
  }
  Result<GraphPtr> ResolveUrl(std::string_view url) const {
    if (pinned_ != nullptr) {
      auto it = pinned_->urls.find(std::string(url));
      if (it != pinned_->urls.end()) return it->second;
    }
    return live_->ResolveUrl(url);
  }
  void RegisterGraph(std::string_view name, GraphPtr graph) const {
    live_->RegisterGraph(name, std::move(graph));
  }

  /// The version cached plans validate against: the pinned snapshot's
  /// (stable for the transaction) or the live counter.
  uint64_t version() const {
    return pinned_ != nullptr ? pinned_->version : live_->version();
  }
  bool pinned() const { return pinned_ != nullptr; }
  GraphCatalog* live() const { return live_; }

 private:
  GraphCatalog* live_;
  std::shared_ptr<const CatalogSnapshot> pinned_;
};

}  // namespace gqlite

#endif  // GQLITE_GRAPH_GRAPH_CATALOG_H_
