#include "src/exec/worker_pool.h"

namespace gqlite {

WorkerPool::WorkerPool(size_t num_threads) {
  statuses_.resize(num_threads + 1, Status::OK());
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i + 1); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::WorkerLoop(size_t index) {
  uint64_t seen = 0;
  while (true) {
    const std::function<Status(size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
    }
    Status st = (*job)(index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      statuses_[index] = std::move(st);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

Status WorkerPool::RunOnAll(const std::function<Status(size_t)>& fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& s : statuses_) s = Status::OK();
    job_ = &fn;
    pending_ = threads_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  // The calling thread is worker 0 — it participates instead of idling.
  Status mine = fn(0);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    job_ = nullptr;
    statuses_[0] = std::move(mine);
    for (const Status& s : statuses_) {
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

}  // namespace gqlite
