#include "src/exec/worker_pool.h"

#include <utility>

namespace gqlite {

WorkerPool::WorkerPool(size_t num_threads) {
  statuses_.resize(num_threads + 1, Status::OK());
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i + 1); });
  }
}

WorkerPool::~WorkerPool() { Shutdown(); }

void WorkerPool::Shutdown() {
  {
    MutexLock lock(&mu_);
    if (shutdown_) return;  // idempotent: the threads are already joined
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& t : threads_) t.join();
  threads_.clear();
}

void WorkerPool::WorkerLoop(size_t index) {
  uint64_t seen = 0;
  while (true) {
    const std::function<Status(size_t)>* job = nullptr;
    {
      MutexLock lock(&mu_);
      // Raw wait loop (not a predicate lambda): every read of the
      // guarded fields stays inside this function, where the analysis
      // can see the lock is held.
      while (!shutdown_ && generation_ == seen) work_cv_.Wait(&mu_);
      if (shutdown_) return;
      seen = generation_;
      job = job_;
    }
    Status st = (*job)(index);
    {
      MutexLock lock(&mu_);
      statuses_[index] = std::move(st);
      if (--pending_ == 0) done_cv_.NotifyAll();
    }
  }
}

Status WorkerPool::RunTasks(size_t num_tasks,
                            const std::function<Status(size_t)>& fn) {
  if (num_tasks == 0) return Status::OK();
  // Task claiming and per-task statuses live outside the RunOnAll handoff
  // state, so the implementation composes with the existing barrier: one
  // job whose workers drain the task counter.
  AtomicCounter next;
  std::vector<Status> task_status(num_tasks, Status::OK());
  Status run = RunOnAll([&](size_t) -> Status {
    while (true) {
      size_t t = next.FetchAdd(1);
      if (t >= num_tasks) return Status::OK();
      // Each slot is written by exactly the worker that claimed index t
      // and read only after the RunOnAll barrier — no extra locking.
      task_status[t] = fn(t);
    }
  });
  GQL_RETURN_IF_ERROR(run);
  for (Status& st : task_status) {
    GQL_RETURN_IF_ERROR(std::move(st));
  }
  return Status::OK();
}

Status WorkerPool::RunOnAll(const std::function<Status(size_t)>& fn) {
  {
    MutexLock lock(&mu_);
    for (auto& s : statuses_) s = Status::OK();
    job_ = &fn;
    pending_ = threads_.size();
    ++generation_;
  }
  work_cv_.NotifyAll();
  // The calling thread is worker 0 — it participates instead of idling.
  Status mine = fn(0);
  {
    MutexLock lock(&mu_);
    while (pending_ != 0) done_cv_.Wait(&mu_);
    job_ = nullptr;
    statuses_[0] = std::move(mine);
    for (const Status& s : statuses_) {
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

}  // namespace gqlite
