#ifndef GQLITE_EXEC_WORKER_POOL_H_
#define GQLITE_EXEC_WORKER_POOL_H_

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/common/sync.h"

namespace gqlite {

/// A fixed pool of worker threads for morsel-driven parallel execution.
/// The pool spawns its threads once and parks them between jobs, so a
/// parallel query pays a wakeup, not a thread spawn. One job runs at a
/// time (parallelism is intra-query): RunOnAll(fn) invokes
/// `fn(worker_index)` on every pool thread (indices 1..size()) AND on the
/// calling thread (index 0), returns after all complete, and reports the
/// lowest-indexed worker's failure — a deterministic pick when several
/// workers fail.
///
/// Thread-safety: the job handoff is fully annotated (`mu_` guards every
/// handoff field; Clang's -Wthread-safety proves the discipline).
/// Construction, Shutdown and RunOnAll themselves are single-owner
/// operations — one thread drives the pool, the pool threads only ever
/// run WorkerLoop.
class WorkerPool {
 public:
  /// Spawns `num_threads` parked worker threads (0 is valid: RunOnAll
  /// then runs everything on the calling thread).
  explicit WorkerPool(size_t num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Number of pool threads (total workers a job sees = size() + 1).
  size_t size() const { return threads_.size(); }

  /// Stops and joins every pool thread. Idempotent — a second call (or
  /// the destructor after an explicit call) is a no-op. After Shutdown
  /// the pool is empty: size() is 0 and RunOnAll degenerates to running
  /// the job on the calling thread only.
  void Shutdown() EXCLUDES(mu_);

  Status RunOnAll(const std::function<Status(size_t)>& fn) EXCLUDES(mu_);

  /// Runs `num_tasks` independent tasks across the pool (and the calling
  /// thread): every worker claims task indices from a shared atomic
  /// counter until the range is exhausted. This is the submission
  /// primitive for parallel merge stages — pairwise sorted-run merges and
  /// per-partition aggregation/DISTINCT merges — where the task count
  /// comes from the data, not the worker count. Error reporting is
  /// deterministic: the failure of the LOWEST task index wins, even
  /// though the task-to-worker assignment is not deterministic.
  Status RunTasks(size_t num_tasks,
                  const std::function<Status(size_t)>& fn) EXCLUDES(mu_);

 private:
  void WorkerLoop(size_t index) EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_cv_;
  CondVar done_cv_;
  /// The in-flight job; non-null exactly while a RunOnAll is active.
  const std::function<Status(size_t)>* job_ GUARDED_BY(mu_) = nullptr;
  /// Bumped per job; workers run once per bump.
  uint64_t generation_ GUARDED_BY(mu_) = 0;
  /// Pool threads still running the current job.
  size_t pending_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
  /// Per worker index, 0 = caller.
  std::vector<Status> statuses_ GUARDED_BY(mu_);
  /// Written by the constructor and Shutdown() only (both single-owner
  /// operations; joining must not hold mu_ — WorkerLoop needs it to
  /// observe shutdown_). WorkerLoop never touches it.
  std::vector<std::thread> threads_;
};

}  // namespace gqlite

#endif  // GQLITE_EXEC_WORKER_POOL_H_
