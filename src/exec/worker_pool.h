#ifndef GQLITE_EXEC_WORKER_POOL_H_
#define GQLITE_EXEC_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/status.h"

namespace gqlite {

/// A fixed pool of worker threads for morsel-driven parallel execution.
/// The pool spawns its threads once and parks them between jobs, so a
/// parallel query pays a wakeup, not a thread spawn. One job runs at a
/// time (parallelism is intra-query): RunOnAll(fn) invokes
/// `fn(worker_index)` on every pool thread (indices 1..size()) AND on the
/// calling thread (index 0), returns after all complete, and reports the
/// lowest-indexed worker's failure — a deterministic pick when several
/// workers fail.
class WorkerPool {
 public:
  /// Spawns `num_threads` parked worker threads (0 is valid: RunOnAll
  /// then runs everything on the calling thread).
  explicit WorkerPool(size_t num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Number of pool threads (total workers a job sees = size() + 1).
  size_t size() const { return threads_.size(); }

  Status RunOnAll(const std::function<Status(size_t)>& fn);

 private:
  void WorkerLoop(size_t index);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<Status(size_t)>* job_ = nullptr;  // guarded by mu_
  uint64_t generation_ = 0;  // bumped per job; workers run once per bump
  size_t pending_ = 0;       // pool threads still running the current job
  bool shutdown_ = false;
  std::vector<Status> statuses_;  // per worker index, 0 = caller
  std::vector<std::thread> threads_;
};

}  // namespace gqlite

#endif  // GQLITE_EXEC_WORKER_POOL_H_
