#include "src/exec/parallel.h"

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/interp/projection.h"

namespace gqlite {

namespace {

using ast::Expr;

bool ExprNondet(const Expr& e);

bool PatternNondet(const ast::Pattern& p) {
  for (const auto& path : p.paths) {
    for (const auto& [k, v] : path.start.properties) {
      if (ExprNondet(*v)) return true;
    }
    for (const auto& hop : path.hops) {
      for (const auto& [k, v] : hop.rel.properties) {
        if (ExprNondet(*v)) return true;
      }
      for (const auto& [k, v] : hop.node.properties) {
        if (ExprNondet(*v)) return true;
      }
    }
  }
  return false;
}

/// Does the expression call rand()? (The parser lower-cases function
/// names.) Mirrors ContainsAggregate's traversal, plus pattern
/// predicates, whose property expressions ContainsAggregate need not
/// visit.
bool ExprNondet(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kFunctionCall: {
      const auto& f = static_cast<const ast::FunctionCallExpr&>(e);
      if (f.name == "rand") return true;
      for (const auto& a : f.args) {
        if (ExprNondet(*a)) return true;
      }
      return false;
    }
    case Expr::Kind::kProperty:
      return ExprNondet(*static_cast<const ast::PropertyExpr&>(e).object);
    case Expr::Kind::kLabelCheck:
      return ExprNondet(*static_cast<const ast::LabelCheckExpr&>(e).object);
    case Expr::Kind::kListLiteral: {
      for (const auto& i : static_cast<const ast::ListLiteralExpr&>(e).items) {
        if (ExprNondet(*i)) return true;
      }
      return false;
    }
    case Expr::Kind::kMapLiteral: {
      for (const auto& [k, v] :
           static_cast<const ast::MapLiteralExpr&>(e).entries) {
        if (ExprNondet(*v)) return true;
      }
      return false;
    }
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const ast::BinaryExpr&>(e);
      return ExprNondet(*b.lhs) || ExprNondet(*b.rhs);
    }
    case Expr::Kind::kUnary:
      return ExprNondet(*static_cast<const ast::UnaryExpr&>(e).operand);
    case Expr::Kind::kIndex: {
      const auto& i = static_cast<const ast::IndexExpr&>(e);
      return ExprNondet(*i.object) || ExprNondet(*i.index);
    }
    case Expr::Kind::kSlice: {
      const auto& s = static_cast<const ast::SliceExpr&>(e);
      if (ExprNondet(*s.object)) return true;
      if (s.from && ExprNondet(*s.from)) return true;
      if (s.to && ExprNondet(*s.to)) return true;
      return false;
    }
    case Expr::Kind::kCase: {
      const auto& c = static_cast<const ast::CaseExpr&>(e);
      if (c.operand && ExprNondet(*c.operand)) return true;
      for (const auto& [w, t] : c.whens) {
        if (ExprNondet(*w) || ExprNondet(*t)) return true;
      }
      if (c.otherwise && ExprNondet(*c.otherwise)) return true;
      return false;
    }
    case Expr::Kind::kListComprehension: {
      const auto& c = static_cast<const ast::ListComprehensionExpr&>(e);
      if (ExprNondet(*c.list)) return true;
      if (c.where && ExprNondet(*c.where)) return true;
      if (c.project && ExprNondet(*c.project)) return true;
      return false;
    }
    case Expr::Kind::kQuantifier: {
      const auto& q = static_cast<const ast::QuantifierExpr&>(e);
      return ExprNondet(*q.list) || ExprNondet(*q.where);
    }
    case Expr::Kind::kReduce: {
      const auto& r = static_cast<const ast::ReduceExpr&>(e);
      return ExprNondet(*r.init) || ExprNondet(*r.list) ||
             ExprNondet(*r.body);
    }
    case Expr::Kind::kPatternPredicate:
      return PatternNondet(
          static_cast<const ast::PatternPredicateExpr&>(e).pattern);
    case Expr::Kind::kLiteral:
    case Expr::Kind::kVariable:
    case Expr::Kind::kParameter:
    case Expr::Kind::kCountStar:
      return false;  // leaves
  }
  // A kind this walk does not know cannot be proven deterministic —
  // treat it as nondeterministic so a future Expr addition fails SAFE
  // (serial fallback) instead of racing on shared PRNG state.
  return true;
}

bool BodyNondet(const ast::ProjectionBody& body) {
  for (const auto& item : body.items) {
    if (ExprNondet(*item.expr)) return true;
  }
  for (const auto& o : body.order_by) {
    if (ExprNondet(*o.expr)) return true;
  }
  if (body.skip && ExprNondet(*body.skip)) return true;
  if (body.limit && ExprNondet(*body.limit)) return true;
  return false;
}

/// True when `op` (a non-root operator) distributes over a partition of
/// the driving scan: running it per partition and concatenating results
/// in partition order equals the serial run. Fills `why` otherwise.
bool Distributive(const Operator* op, std::string* why) {
  if (op == nullptr) return true;
  if (auto* p = dynamic_cast<const ProjectionOp*>(op)) {
    const ast::ProjectionBody& b = *p->body();
    const char* blocker = nullptr;
    if (ProjectionAggregates(b)) {
      blocker = "aggregation";
    } else if (b.distinct) {
      blocker = "DISTINCT";
    } else if (!b.order_by.empty()) {
      // A per-partition sort reorders rows the final SKIP/LIMIT (or a
      // downstream non-commutative step) could observe; keep it serial.
      blocker = "ORDER BY";
    } else if (b.skip != nullptr) {
      blocker = "SKIP";
    } else if (b.limit != nullptr) {
      blocker = "LIMIT";
    }
    if (blocker != nullptr) {
      *why = std::string("intermediate WITH ") + blocker +
             " is a serial pipeline breaker";
      return false;
    }
  } else if (dynamic_cast<const UnionOp*>(op) != nullptr) {
    *why = "UNION materializes whole sub-plans";
    return false;
  } else if (dynamic_cast<const ArgumentOp*>(op) == nullptr &&
             dynamic_cast<const AllNodesScanOp*>(op) == nullptr &&
             dynamic_cast<const NodeByLabelScanOp*>(op) == nullptr &&
             dynamic_cast<const ExpandOp*>(op) == nullptr &&
             dynamic_cast<const HashJoinExpandOp*>(op) == nullptr &&
             dynamic_cast<const VarLengthExpandOp*>(op) == nullptr &&
             dynamic_cast<const FilterOp*>(op) == nullptr &&
             dynamic_cast<const ApplyOp*>(op) == nullptr &&
             dynamic_cast<const UnwindOp*>(op) == nullptr &&
             dynamic_cast<const MatcherOp*>(op) == nullptr) {
    // Unknown operator kinds are conservatively serial.
    *why = "operator " + op->Describe() + " is not parallel-safe";
    return false;
  }
  for (const Operator* ch : op->children()) {
    if (!Distributive(ch, why)) return false;
  }
  return true;
}

}  // namespace

size_t MorselChunk(size_t domain, size_t workers) {
  // ~8 morsels per worker gives the claim counter something to steal
  // while bounding the per-range buffer count; the floor keeps tiny
  // domains from paying a pipeline re-Open per handful of positions.
  constexpr size_t kMinChunk = 16;
  if (workers == 0) workers = 1;
  size_t chunk = domain / (workers * 8);
  return chunk < kMinChunk ? kMinChunk : chunk;
}

ParallelCandidate AnalyzeParallelCandidate(Operator* root) {
  ParallelCandidate c;
  auto* proj = dynamic_cast<ProjectionOp*>(root);
  if (proj == nullptr) {
    c.reason = "plan root is not a projection (UNION runs serially)";
    return c;
  }
  if (!Distributive(proj->child(), &c.reason)) return c;

  // The driving pipeline: descend the child() chain to the unit-table
  // Argument leaf; the Apply directly above it correlates the first
  // MATCH, and the bottom of ITS inner pipeline is the scan to
  // partition.
  Operator* prev = nullptr;
  Operator* cur = proj->child();
  if (cur == nullptr) {
    c.reason = "projection has no input pipeline";
    return c;
  }
  while (cur->child() != nullptr) {
    prev = cur;
    cur = cur->child();
  }
  auto* leaf = dynamic_cast<ArgumentOp*>(cur);
  if (leaf == nullptr || !leaf->has_table_source()) {
    c.reason = "pipeline does not bottom out at the unit table";
    return c;
  }
  auto* drive = dynamic_cast<ApplyOp*>(prev);
  if (drive == nullptr) {
    c.reason = "no MATCH drives the plan (nothing to partition)";
    return c;
  }
  if (drive->optional()) {
    // OPTIONAL MATCH null-pads when the WHOLE scan finds nothing; a
    // partition that happens to be empty must not pad on its own.
    c.reason = "OPTIONAL MATCH drives the plan";
    return c;
  }
  // The DEEPEST partitionable scan of the driving pipeline anchors the
  // partition (variable-free filters may sit between it and the Argument
  // leaf; scans of later cross-product paths sit above it and iterate
  // their full domain per partitioned row).
  PartitionedScan* scan = nullptr;
  for (Operator* op = drive->inner(); op != nullptr; op = op->child()) {
    if (auto* s = dynamic_cast<PartitionedScan*>(op)) scan = s;
  }
  if (scan == nullptr) {
    c.reason = "driving pattern does not start at a partitionable scan";
    return c;
  }
  c.ok = true;
  c.projection = proj;
  c.scan = scan;
  return c;
}

bool QueryCallsNondeterministicFunction(const ast::Query& q) {
  for (const auto& part : q.parts) {
    for (const auto& clause : part.clauses) {
      switch (clause->kind) {
        case ast::Clause::Kind::kMatch: {
          const auto& m = static_cast<const ast::MatchClause&>(*clause);
          if (PatternNondet(m.pattern)) return true;
          if (m.where && ExprNondet(*m.where)) return true;
          break;
        }
        case ast::Clause::Kind::kWith: {
          const auto& w = static_cast<const ast::WithClause&>(*clause);
          if (BodyNondet(w.body)) return true;
          if (w.where && ExprNondet(*w.where)) return true;
          break;
        }
        case ast::Clause::Kind::kReturn: {
          const auto& r = static_cast<const ast::ReturnClause&>(*clause);
          if (BodyNondet(r.body)) return true;
          break;
        }
        case ast::Clause::Kind::kUnwind: {
          const auto& u = static_cast<const ast::UnwindClause&>(*clause);
          if (ExprNondet(*u.expr)) return true;
          break;
        }
        default:
          // Updating clauses and RETURN GRAPH never reach the planner.
          break;
      }
    }
  }
  return false;
}

Result<Table> ExecutePlanParallel(Plan* plan, WorkerPool* pool,
                                  size_t batch_size, BatchStats* stats,
                                  ParallelRunStats* pstats) {
  const ParallelPlanInfo& par = plan->parallel;
  if (!par.safe || par.scans.empty() ||
      par.scans.size() != par.projections.size()) {
    return Status::Internal("plan is not prepared for parallel execution");
  }
  const size_t instances = par.scans.size();
  const size_t workers =
      instances < pool->size() + 1 ? instances : pool->size() + 1;

  const size_t domain = par.scans[0]->ScanDomainSize();
  MorselDispatcher dispatcher(domain, MorselChunk(domain, workers));
  const size_t num_morsels = dispatcher.num_morsels();

  ProjectionOp* merge_proj = par.projections[0];
  const EvalContext& merge_eval = merge_proj->exec_context()->eval;
  // Aggregating roots fold each range into an AggregationState so the
  // pre-aggregation rows never materialize centrally; everything else
  // buffers rows per range (the merge concatenates them in range order —
  // the serial scan order).
  const bool partial_agg = num_morsels > 0 &&
                           ProjectionAggregates(*merge_proj->body()) &&
                           merge_proj->where() == nullptr;

  std::vector<Table> range_rows(partial_agg ? 0 : num_morsels);
  std::vector<std::unique_ptr<AggregationState>> range_aggs(
      partial_agg ? num_morsels : 0);
  std::vector<Status> range_status(num_morsels, Status::OK());
  std::vector<BatchStats> worker_stats(instances);

  auto work = [&](size_t w) -> Status {
    if (w >= instances) return Status::OK();
    Operator* root = par.projections[w]->child();
    PartitionedScan* scan = par.scans[w];
    // One aggregation plan per worker; per-range states Fork() it (the
    // item resolution and rewritten aggregate expressions are shared).
    std::optional<AggregationState> proto;
    if (partial_agg) {
      GQL_ASSIGN_OR_RETURN(
          AggregationState planned,
          AggregationState::Plan(*par.projections[w]->body(),
                                 root->schema()));
      proto.emplace(std::move(planned));
    }
    ScanMorsel morsel;
    while (dispatcher.Next(&morsel)) {
      scan->SetScanRange(morsel.begin, morsel.end);
      auto run_range = [&]() -> Status {
        GQL_RETURN_IF_ERROR(root->Open());
        if (partial_agg) {
          // Stream the range's morsels straight into the partial state:
          // the pre-aggregation rows never materialize, so a range's
          // working memory is one RowBatch, not its whole row count.
          const EvalContext& eval = par.projections[w]->exec_context()->eval;
          AggregationState st = proto->Fork();
          RowBatch batch(batch_size);
          while (true) {
            GQL_ASSIGN_OR_RETURN(bool ok, root->NextBatch(&batch));
            if (!ok) break;
            ++worker_stats[w].batches;
            worker_stats[w].rows += static_cast<int64_t>(batch.size());
            for (size_t i = 0; i < batch.size(); ++i) {
              GQL_RETURN_IF_ERROR(st.AccumulateRow(batch.row(i), eval));
            }
          }
          range_aggs[morsel.index] =
              std::make_unique<AggregationState>(std::move(st));
        } else {
          GQL_ASSIGN_OR_RETURN(Table t,
                               DrainPlan(root, batch_size, &worker_stats[w]));
          range_rows[morsel.index] = std::move(t);
        }
        return Status::OK();
      };
      Status st = run_range();
      if (!st.ok()) {
        // Record per range and stop this worker; survivors drain the
        // dispatcher, and the merge stage reports the error of the
        // FIRST range in scan order — deterministic even though the
        // worker-to-range assignment is not.
        range_status[morsel.index] = std::move(st);
        break;
      }
    }
    scan->SetScanRange(0, SIZE_MAX);  // restore the serial default
    return Status::OK();
  };
  GQL_RETURN_IF_ERROR(pool->RunOnAll(work));

  if (stats != nullptr) {
    for (const BatchStats& ws : worker_stats) {
      stats->rows += ws.rows;
      stats->batches += ws.batches;
    }
  }
  if (pstats != nullptr) {
    pstats->workers = workers;
    pstats->morsels = num_morsels;
  }
  for (const Status& st : range_status) {
    GQL_RETURN_IF_ERROR(st);
  }

  if (partial_agg) {
    AggregationState merged = std::move(*range_aggs[0]);
    for (size_t i = 1; i < num_morsels; ++i) {
      GQL_RETURN_IF_ERROR(merged.MergeFrom(std::move(*range_aggs[i])));
    }
    GQL_ASSIGN_OR_RETURN(Table grouped, merged.Finish(merge_eval));
    return ApplyProjectionTail(*merge_proj->body(), std::move(grouped),
                               nullptr, nullptr, merge_eval);
  }

  Table merged(merge_proj->child()->schema());
  for (Table& t : range_rows) {
    for (ValueList& row : t.mutable_rows()) {
      merged.AddRow(std::move(row));
    }
  }
  return merge_proj->ProjectTable(std::move(merged));
}

}  // namespace gqlite
