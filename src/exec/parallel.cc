#include "src/exec/parallel.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/frontend/analyzer.h"
#include "src/interp/projection.h"
#include "src/value/value_compare.h"

namespace gqlite {

namespace {

using ast::Expr;

bool ExprNondet(const Expr& e);

bool PatternNondet(const ast::Pattern& p) {
  for (const auto& path : p.paths) {
    for (const auto& [k, v] : path.start.properties) {
      if (ExprNondet(*v)) return true;
    }
    for (const auto& hop : path.hops) {
      for (const auto& [k, v] : hop.rel.properties) {
        if (ExprNondet(*v)) return true;
      }
      for (const auto& [k, v] : hop.node.properties) {
        if (ExprNondet(*v)) return true;
      }
    }
  }
  return false;
}

/// Does the expression call rand()? (The parser lower-cases function
/// names.) Mirrors ContainsAggregate's traversal, plus pattern
/// predicates, whose property expressions ContainsAggregate need not
/// visit.
bool ExprNondet(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kFunctionCall: {
      const auto& f = static_cast<const ast::FunctionCallExpr&>(e);
      if (f.name == "rand") return true;
      for (const auto& a : f.args) {
        if (ExprNondet(*a)) return true;
      }
      return false;
    }
    case Expr::Kind::kProperty:
      return ExprNondet(*static_cast<const ast::PropertyExpr&>(e).object);
    case Expr::Kind::kLabelCheck:
      return ExprNondet(*static_cast<const ast::LabelCheckExpr&>(e).object);
    case Expr::Kind::kListLiteral: {
      for (const auto& i : static_cast<const ast::ListLiteralExpr&>(e).items) {
        if (ExprNondet(*i)) return true;
      }
      return false;
    }
    case Expr::Kind::kMapLiteral: {
      for (const auto& [k, v] :
           static_cast<const ast::MapLiteralExpr&>(e).entries) {
        if (ExprNondet(*v)) return true;
      }
      return false;
    }
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const ast::BinaryExpr&>(e);
      return ExprNondet(*b.lhs) || ExprNondet(*b.rhs);
    }
    case Expr::Kind::kUnary:
      return ExprNondet(*static_cast<const ast::UnaryExpr&>(e).operand);
    case Expr::Kind::kIndex: {
      const auto& i = static_cast<const ast::IndexExpr&>(e);
      return ExprNondet(*i.object) || ExprNondet(*i.index);
    }
    case Expr::Kind::kSlice: {
      const auto& s = static_cast<const ast::SliceExpr&>(e);
      if (ExprNondet(*s.object)) return true;
      if (s.from && ExprNondet(*s.from)) return true;
      if (s.to && ExprNondet(*s.to)) return true;
      return false;
    }
    case Expr::Kind::kCase: {
      const auto& c = static_cast<const ast::CaseExpr&>(e);
      if (c.operand && ExprNondet(*c.operand)) return true;
      for (const auto& [w, t] : c.whens) {
        if (ExprNondet(*w) || ExprNondet(*t)) return true;
      }
      if (c.otherwise && ExprNondet(*c.otherwise)) return true;
      return false;
    }
    case Expr::Kind::kListComprehension: {
      const auto& c = static_cast<const ast::ListComprehensionExpr&>(e);
      if (ExprNondet(*c.list)) return true;
      if (c.where && ExprNondet(*c.where)) return true;
      if (c.project && ExprNondet(*c.project)) return true;
      return false;
    }
    case Expr::Kind::kQuantifier: {
      const auto& q = static_cast<const ast::QuantifierExpr&>(e);
      return ExprNondet(*q.list) || ExprNondet(*q.where);
    }
    case Expr::Kind::kReduce: {
      const auto& r = static_cast<const ast::ReduceExpr&>(e);
      return ExprNondet(*r.init) || ExprNondet(*r.list) ||
             ExprNondet(*r.body);
    }
    case Expr::Kind::kPatternPredicate:
      return PatternNondet(
          static_cast<const ast::PatternPredicateExpr&>(e).pattern);
    case Expr::Kind::kLiteral:
    case Expr::Kind::kVariable:
    case Expr::Kind::kParameter:
    case Expr::Kind::kCountStar:
      return false;  // leaves
  }
  // A kind this walk does not know cannot be proven deterministic —
  // treat it as nondeterministic so a future Expr addition fails SAFE
  // (serial fallback) instead of racing on shared PRNG state.
  return true;
}

bool BodyNondet(const ast::ProjectionBody& body) {
  for (const auto& item : body.items) {
    if (ExprNondet(*item.expr)) return true;
  }
  for (const auto& o : body.order_by) {
    if (ExprNondet(*o.expr)) return true;
  }
  if (body.skip && ExprNondet(*body.skip)) return true;
  if (body.limit && ExprNondet(*body.limit)) return true;
  return false;
}

/// True when `op` (a non-root operator) distributes over a partition of
/// the driving scan: running it per partition and concatenating results
/// in partition order equals the serial run. Fills `why` otherwise.
bool Distributive(const Operator* op, std::string* why) {
  if (op == nullptr) return true;
  if (auto* p = dynamic_cast<const ProjectionOp*>(op)) {
    const ast::ProjectionBody& b = *p->body();
    const char* blocker = nullptr;
    if (ProjectionAggregates(b)) {
      blocker = "aggregation";
    } else if (b.distinct) {
      blocker = "DISTINCT";
    } else if (!b.order_by.empty()) {
      // A per-partition sort reorders rows the final SKIP/LIMIT (or a
      // downstream non-commutative step) could observe; keep it serial.
      blocker = "ORDER BY";
    } else if (b.skip != nullptr) {
      blocker = "SKIP";
    } else if (b.limit != nullptr) {
      blocker = "LIMIT";
    }
    if (blocker != nullptr) {
      *why = std::string("intermediate WITH ") + blocker +
             " is a serial pipeline breaker";
      return false;
    }
  } else if (dynamic_cast<const UnionOp*>(op) != nullptr) {
    *why = "UNION materializes whole sub-plans";
    return false;
  } else if (dynamic_cast<const ArgumentOp*>(op) == nullptr &&
             dynamic_cast<const AllNodesScanOp*>(op) == nullptr &&
             dynamic_cast<const NodeByLabelScanOp*>(op) == nullptr &&
             dynamic_cast<const ExpandOp*>(op) == nullptr &&
             dynamic_cast<const HashJoinExpandOp*>(op) == nullptr &&
             dynamic_cast<const VarLengthExpandOp*>(op) == nullptr &&
             dynamic_cast<const FilterOp*>(op) == nullptr &&
             dynamic_cast<const ApplyOp*>(op) == nullptr &&
             dynamic_cast<const UnwindOp*>(op) == nullptr &&
             dynamic_cast<const MatcherOp*>(op) == nullptr) {
    // Unknown operator kinds are conservatively serial.
    *why = "operator " + op->Describe() + " is not parallel-safe";
    return false;
  }
  for (const Operator* ch : op->children()) {
    if (!Distributive(ch, why)) return false;
  }
  return true;
}

/// True when the body is a pipeline breaker whose tail the merge stage
/// must own (aggregation / DISTINCT / ORDER BY / SKIP / LIMIT).
bool BodyBreaks(const ast::ProjectionBody& b) {
  return ProjectionAggregates(b) || b.distinct || !b.order_by.empty() ||
         b.skip != nullptr || b.limit != nullptr;
}

/// Mirrors AggregationState::has_keys() (any non-aggregating item,
/// `*`-expanded input fields included) for the EXPLAIN shape string.
bool AggBodyHasKeys(const ast::ProjectionBody& b) {
  if (b.star) return true;
  for (const auto& item : b.items) {
    if (!ContainsAggregate(*item.expr)) return true;
  }
  return false;
}

std::string MergeShape(const ast::ProjectionBody& b) {
  if (ProjectionAggregates(b)) {
    return AggBodyHasKeys(b) ? "partitioned aggregation merge"
                             : "global aggregation fold";
  }
  if (b.distinct) {
    return b.order_by.empty() ? "partitioned DISTINCT merge"
                              : "partitioned DISTINCT + parallel merge sort";
  }
  if (!b.order_by.empty()) return "parallel merge sort";
  return "concat merge";
}

/// One projected row in a sorted run: its ORDER BY key row plus the
/// (range, row-within-range) sequence that breaks ties on original scan
/// order. The tie-break makes the comparator a STRICT total order, so
/// every merge-tree shape — and top-K truncation — reproduces the serial
/// std::stable_sort byte-for-byte.
struct SortRow {
  ValueList row;
  ValueList keys;
  uint64_t range = 0;
  uint64_t idx = 0;
};
using SortedRun = std::vector<SortRow>;

bool SortRowLess(const ast::ProjectionBody& body, const SortRow& a,
                 const SortRow& b) {
  int c = CompareOrderKeys(body, a.keys, b.keys);
  if (c != 0) return c < 0;
  return a.range != b.range ? a.range < b.range : a.idx < b.idx;
}

/// Two-way merge of sorted runs, truncated to the first `topk` rows
/// (UINT64_MAX = unbounded).
SortedRun MergeSortedRuns(const ast::ProjectionBody& body, SortedRun a,
                          SortedRun b, uint64_t topk) {
  SortedRun out;
  uint64_t total = a.size() + b.size();
  out.reserve(static_cast<size_t>(total < topk ? total : topk));
  size_t i = 0;
  size_t j = 0;
  while ((i < a.size() || j < b.size()) && out.size() < topk) {
    bool take_a =
        j >= b.size() || (i < a.size() && SortRowLess(body, a[i], b[j]));
    out.push_back(std::move(take_a ? a[i++] : b[j++]));
  }
  return out;
}

/// Tree-structured pairwise merge on the pool, leaving one run. The
/// pairing is deterministic, but under the strict total order ANY tree
/// shape yields identical output — the determinism is belt-and-braces.
Status TreeMergeRuns(WorkerPool* pool, const ast::ProjectionBody& body,
                     std::vector<SortedRun>* runs, uint64_t topk,
                     size_t* merge_tasks) {
  while (runs->size() > 1) {
    std::vector<SortedRun>& rs = *runs;
    size_t pairs = rs.size() / 2;
    std::vector<SortedRun> next(pairs + rs.size() % 2);
    GQL_RETURN_IF_ERROR(pool->RunTasks(pairs, [&](size_t t) -> Status {
      next[t] = MergeSortedRuns(body, std::move(rs[2 * t]),
                                std::move(rs[2 * t + 1]), topk);
      return Status::OK();
    }));
    if (rs.size() % 2 != 0) next[pairs] = std::move(rs.back());
    *merge_tasks += pairs;
    *runs = std::move(next);
  }
  return Status::OK();
}

/// Global (range, row-within-range) position of a projected row — the
/// interleave key that restores serial first-occurrence order after the
/// partitioned DISTINCT.
struct RowSeq {
  uint64_t range = 0;
  uint64_t idx = 0;
};
bool SeqLess(RowSeq a, RowSeq b) {
  return a.range != b.range ? a.range < b.range : a.idx < b.idx;
}

/// Seen-set over pointers into the per-range projected tables (the rows
/// stay owned by their tables; the set stores no copies). Same
/// hash/equivalence pair as Table::Deduplicated.
struct RowPtrHash {
  size_t operator()(const ValueList* r) const { return RowHash(*r); }
};
struct RowPtrEq {
  bool operator()(const ValueList* a, const ValueList* b) const {
    return RowEquivalent(*a, *b);
  }
};

/// The serial tail's SKIP/LIMIT slice (the merge stages sort/dedup
/// themselves, then slice and WHERE-filter exactly like
/// ApplyProjectionTail + FilterWhere).
Result<Table> SliceSkipLimit(const ast::ProjectionBody& body, Table t,
                             const EvalContext& ctx) {
  if (body.skip == nullptr && body.limit == nullptr) return t;
  GQL_ASSIGN_OR_RETURN(SkipLimitBounds b, EvaluateSkipLimit(body, ctx));
  Table limited(t.fields());
  int64_t n = static_cast<int64_t>(t.NumRows());
  int64_t end = b.limit < 0 ? n : std::min(n, b.skip + b.limit);
  for (int64_t i = b.skip; i < end; ++i) {
    limited.AddRow(std::move(t.mutable_rows()[i]));
  }
  return limited;
}

}  // namespace

size_t MorselChunk(size_t domain, size_t workers) {
  // ~8 morsels per worker gives the claim counter something to steal
  // while bounding the per-range buffer count; the floor keeps tiny
  // domains from paying a pipeline re-Open per handful of positions.
  constexpr size_t kMinChunk = 16;
  if (workers == 0) workers = 1;
  size_t chunk = domain / (workers * 8);
  return chunk < kMinChunk ? kMinChunk : chunk;
}

ParallelCandidate AnalyzeParallelCandidate(Operator* root) {
  ParallelCandidate c;
  auto* proj = dynamic_cast<ProjectionOp*>(root);
  if (proj == nullptr) {
    c.reason = "plan root is not a projection (UNION runs serially)";
    return c;
  }
  // The merge point is the LOWEST pipeline breaker on the projection
  // spine (or the root when none breaks): everything below it must
  // distribute over the scan partition; everything above it — earlier
  // breakers included — resumes serially on the merged output. An
  // intermediate WITH with ORDER BY / DISTINCT / aggregation / SKIP /
  // LIMIT therefore no longer forces the whole plan serial.
  ProjectionOp* merge = proj;
  for (Operator* op = proj->child(); op != nullptr; op = op->child()) {
    if (auto* p = dynamic_cast<ProjectionOp*>(op)) {
      if (BodyBreaks(*p->body())) merge = p;
    }
  }
  if (!Distributive(merge->child(), &c.reason)) return c;

  // The driving pipeline: descend the child() chain to the unit-table
  // Argument leaf; the Apply directly above it correlates the first
  // MATCH, and the bottom of ITS inner pipeline is the scan to
  // partition.
  Operator* prev = nullptr;
  Operator* cur = merge->child();
  if (cur == nullptr) {
    c.reason = "projection has no input pipeline";
    return c;
  }
  while (cur->child() != nullptr) {
    prev = cur;
    cur = cur->child();
  }
  auto* leaf = dynamic_cast<ArgumentOp*>(cur);
  if (leaf == nullptr || !leaf->has_table_source()) {
    c.reason = "pipeline does not bottom out at the unit table";
    return c;
  }
  auto* drive = dynamic_cast<ApplyOp*>(prev);
  if (drive == nullptr) {
    c.reason = "no MATCH drives the plan (nothing to partition)";
    return c;
  }
  if (drive->optional()) {
    // OPTIONAL MATCH null-pads when the WHOLE scan finds nothing; a
    // partition that happens to be empty must not pad on its own.
    c.reason = "OPTIONAL MATCH drives the plan";
    return c;
  }
  // The DEEPEST partitionable scan of the driving pipeline anchors the
  // partition (variable-free filters may sit between it and the Argument
  // leaf; scans of later cross-product paths sit above it and iterate
  // their full domain per partitioned row).
  PartitionedScan* scan = nullptr;
  for (Operator* op = drive->inner(); op != nullptr; op = op->child()) {
    if (auto* s = dynamic_cast<PartitionedScan*>(op)) scan = s;
  }
  if (scan == nullptr) {
    c.reason = "driving pattern does not start at a partitionable scan";
    return c;
  }
  c.ok = true;
  c.projection = merge;
  c.scan = scan;
  c.merge_below_root = merge != proj;
  c.merge_shape = MergeShape(*merge->body());
  if (c.merge_below_root) c.merge_shape += " at intermediate WITH";
  return c;
}

bool QueryCallsNondeterministicFunction(const ast::Query& q) {
  for (const auto& part : q.parts) {
    for (const auto& clause : part.clauses) {
      switch (clause->kind) {
        case ast::Clause::Kind::kMatch: {
          const auto& m = static_cast<const ast::MatchClause&>(*clause);
          if (PatternNondet(m.pattern)) return true;
          if (m.where && ExprNondet(*m.where)) return true;
          break;
        }
        case ast::Clause::Kind::kWith: {
          const auto& w = static_cast<const ast::WithClause&>(*clause);
          if (BodyNondet(w.body)) return true;
          if (w.where && ExprNondet(*w.where)) return true;
          break;
        }
        case ast::Clause::Kind::kReturn: {
          const auto& r = static_cast<const ast::ReturnClause&>(*clause);
          if (BodyNondet(r.body)) return true;
          break;
        }
        case ast::Clause::Kind::kUnwind: {
          const auto& u = static_cast<const ast::UnwindClause&>(*clause);
          if (ExprNondet(*u.expr)) return true;
          break;
        }
        default:
          // Updating clauses and RETURN GRAPH never reach the planner.
          break;
      }
    }
  }
  return false;
}

Result<Table> ExecutePlanParallel(Plan* plan, WorkerPool* pool,
                                  size_t batch_size, BatchStats* stats,
                                  ParallelRunStats* pstats) {
  const ParallelPlanInfo& par = plan->parallel;
  if (!par.safe || par.scans.empty() ||
      par.scans.size() != par.projections.size()) {
    return Status::Internal("plan is not prepared for parallel execution");
  }
  const size_t instances = par.scans.size();
  const size_t workers =
      instances < pool->size() + 1 ? instances : pool->size() + 1;

  const size_t domain = par.scans[0]->ScanDomainSize();
  MorselDispatcher dispatcher(domain, MorselChunk(domain, workers));
  const size_t num_morsels = dispatcher.num_morsels();

  ProjectionOp* merge_proj = par.projections[0];
  const ast::ProjectionBody& body = *merge_proj->body();
  const EvalContext& merge_eval = merge_proj->exec_context()->eval;

  // Resumes the serial plan above the merge point; a no-op when the
  // merge point IS the root (the merged table is the query result).
  auto finish_above = [&](Table merged) -> Result<Table> {
    if (plan->root.get() == merge_proj) return merged;
    merge_proj->PreloadResult(std::move(merged));
    GQL_RETURN_IF_ERROR(plan->root->Open());
    return DrainPlan(plan->root.get(), batch_size, stats);
  };

  if (num_morsels == 0) {
    // Empty scan domain: run the breaker serially over its empty input —
    // keyless aggregation still produces its neutral row this way.
    if (pstats != nullptr) pstats->workers = workers;
    GQL_ASSIGN_OR_RETURN(
        Table merged,
        merge_proj->ProjectTable(Table(merge_proj->child()->schema())));
    return finish_above(std::move(merged));
  }

  // Merge kinds, most specific first: keyed/keyless aggregation folds
  // partials (pre-aggregation rows never materialize centrally);
  // DISTINCT partitions rows by whole-row hash; a bare ORDER BY builds
  // per-range sorted runs; everything else (plain projection, bare
  // SKIP/LIMIT) concatenates raw child rows in range order — the serial
  // scan order — and runs the breaker once over them.
  const bool aggregates = ProjectionAggregates(body);
  const bool distinct = !aggregates && body.distinct;
  const bool sort_only = !aggregates && !distinct && !body.order_by.empty();
  std::optional<AggregationState> proto;
  bool agg_keyed = false;
  if (aggregates) {
    // One shared plan (the Shape is immutable); workers Fork() it.
    GQL_ASSIGN_OR_RETURN(
        AggregationState planned,
        AggregationState::Plan(body, merge_proj->child()->schema()));
    agg_keyed = planned.has_keys();
    proto.emplace(std::move(planned));
  }
  const size_t partitions = workers;  // radix width of the keyed merges

  // SKIP/LIMIT under ORDER BY push a top-K bound into the local sorts
  // and run merges: rows past skip+limit can never surface, and the
  // strict total order makes truncation exact. The bounds are evaluated
  // up front, but an evaluation error DISABLES the bound instead of
  // raising here — the serial-tail slice below raises it at the same
  // point a serial run would (after ORDER BY key errors, which stage 1
  // surfaces first).
  uint64_t topk = UINT64_MAX;
  if (!body.order_by.empty() &&
      (body.skip != nullptr || body.limit != nullptr)) {
    Result<SkipLimitBounds> bounds = EvaluateSkipLimit(body, merge_eval);
    if (bounds.ok() && bounds->limit >= 0) {
      topk = static_cast<uint64_t>(bounds->skip) +
             static_cast<uint64_t>(bounds->limit);
    }
  }

  // Per-range buffers, one flavor per merge kind.
  const bool concat = !aggregates && !distinct && !sort_only;
  std::vector<Table> range_child(concat ? num_morsels : 0);
  std::vector<SortedRun> range_runs(sort_only ? num_morsels : 0);
  std::vector<Table> range_proj(distinct ? num_morsels : 0);
  // [range][partition] -> projected-row indices, in row order.
  std::vector<std::vector<std::vector<uint64_t>>> range_parts(
      distinct ? num_morsels : 0);
  std::vector<std::unique_ptr<AggregationState>> range_aggs(
      aggregates && !agg_keyed ? num_morsels : 0);
  std::vector<std::unique_ptr<PartitionedAggregationState>> range_pagg(
      aggregates && agg_keyed ? num_morsels : 0);

  std::vector<Status> range_status(num_morsels, Status::OK());
  std::vector<BatchStats> worker_stats(instances);

  auto work = [&](size_t w) -> Status {
    if (w >= instances) return Status::OK();
    ProjectionOp* wproj = par.projections[w];
    Operator* root = wproj->child();
    PartitionedScan* scan = par.scans[w];
    const EvalContext& eval = wproj->exec_context()->eval;
    ScanMorsel morsel;
    while (dispatcher.Next(&morsel)) {
      scan->SetScanRange(morsel.begin, morsel.end);
      auto run_range = [&]() -> Status {
        GQL_RETURN_IF_ERROR(root->Open());
        if (aggregates) {
          // Stream the range's morsels straight into the partial state:
          // the pre-aggregation rows never materialize, so a range's
          // working memory is one RowBatch, not its whole row count.
          // Every row stamps its global (range, row) position onto any
          // group it creates — the merge interleave's sort key.
          std::unique_ptr<AggregationState> st;
          std::unique_ptr<PartitionedAggregationState> pst;
          if (agg_keyed) {
            pst = std::make_unique<PartitionedAggregationState>(*proto,
                                                                partitions);
          } else {
            st = std::make_unique<AggregationState>(proto->Fork());
          }
          RowBatch batch(batch_size);
          uint64_t row_in_range = 0;
          while (true) {
            GQL_ASSIGN_OR_RETURN(bool ok, root->NextBatch(&batch));
            if (!ok) break;
            ++worker_stats[w].batches;
            worker_stats[w].rows += static_cast<int64_t>(batch.size());
            for (size_t i = 0; i < batch.size(); ++i) {
              GroupStamp stamp{morsel.index, row_in_range++};
              if (agg_keyed) {
                GQL_RETURN_IF_ERROR(
                    pst->AccumulateRow(batch.row(i), eval, stamp));
              } else {
                GQL_RETURN_IF_ERROR(
                    st->AccumulateRow(batch.row(i), eval, stamp));
              }
            }
          }
          if (agg_keyed) {
            range_pagg[morsel.index] = std::move(pst);
          } else {
            range_aggs[morsel.index] = std::move(st);
          }
          return Status::OK();
        }
        GQL_ASSIGN_OR_RETURN(Table t,
                             DrainPlan(root, batch_size, &worker_stats[w]));
        if (sort_only) {
          // Project and key in one pass, then the bounded local sort —
          // this range's contribution to the parallel merge sort.
          std::vector<ValueList> keys;
          GQL_ASSIGN_OR_RETURN(Table projected,
                               wproj->ProjectChunk(std::move(t), &keys));
          SortedRun run;
          run.reserve(projected.NumRows());
          for (size_t i = 0; i < projected.NumRows(); ++i) {
            run.push_back(SortRow{std::move(projected.mutable_rows()[i]),
                                  std::move(keys[i]), morsel.index, i});
          }
          std::sort(run.begin(), run.end(),
                    [&body](const SortRow& a, const SortRow& b) {
                      return SortRowLess(body, a, b);
                    });
          if (run.size() > topk) run.resize(static_cast<size_t>(topk));
          range_runs[morsel.index] = std::move(run);
        } else if (distinct) {
          // Project, then pre-split the row indices by whole-row hash so
          // the dedup stage becomes `partitions` independent seen-sets.
          GQL_ASSIGN_OR_RETURN(Table projected,
                               wproj->ProjectChunk(std::move(t), nullptr));
          std::vector<std::vector<uint64_t>> parts(partitions);
          for (size_t i = 0; i < projected.NumRows(); ++i) {
            parts[RowHash(projected.rows()[i]) % partitions].push_back(i);
          }
          range_parts[morsel.index] = std::move(parts);
          range_proj[morsel.index] = std::move(projected);
        } else {
          range_child[morsel.index] = std::move(t);
        }
        return Status::OK();
      };
      Status st = run_range();
      if (!st.ok()) {
        // Record per range and stop this worker; survivors drain the
        // dispatcher, and the merge stage reports the error of the
        // FIRST range in scan order — deterministic even though the
        // worker-to-range assignment is not.
        range_status[morsel.index] = std::move(st);
        break;
      }
    }
    scan->SetScanRange(0, SIZE_MAX);  // restore the serial default
    return Status::OK();
  };
  GQL_RETURN_IF_ERROR(pool->RunOnAll(work));

  if (stats != nullptr) {
    for (const BatchStats& ws : worker_stats) {
      stats->rows += ws.rows;
      stats->batches += ws.batches;
    }
  }
  size_t merge_tasks = 0;
  if (pstats != nullptr) {
    pstats->workers = workers;
    pstats->morsels = num_morsels;
    pstats->sort_merge = sort_only || (distinct && !body.order_by.empty());
    pstats->partitioned_agg = aggregates && agg_keyed;
    pstats->partitioned_distinct = distinct;
  }
  for (const Status& st : range_status) {
    GQL_RETURN_IF_ERROR(st);
  }

  // The merge stages. Each produces the merge projection's COMPLETE
  // output — tail and WHERE filter included — byte-identical to
  // merge_proj->ProjectTable over the concatenated ranges.
  auto compute_merged = [&]() -> Result<Table> {
    if (aggregates && agg_keyed) {
      // `partitions` independent MergeFrom chains (range order within
      // each) run as parallel tasks; the serial interleave on the
      // recorded stamps then restores serial first-occurrence group
      // order across partitions.
      std::vector<Table> part_tables(partitions);
      std::vector<std::vector<GroupStamp>> part_stamps(partitions);
      // Named local: the lambda's own GQL_ macros would shadow an
      // enclosing GQL_RETURN_IF_ERROR's temporary (-Wshadow).
      Status merge_status =
          pool->RunTasks(partitions, [&](size_t p) -> Status {
            AggregationState merged_p = std::move(range_pagg[0]->partition(p));
            for (size_t r = 1; r < num_morsels; ++r) {
              GQL_RETURN_IF_ERROR(
                  merged_p.MergeFrom(std::move(range_pagg[r]->partition(p))));
            }
            GQL_ASSIGN_OR_RETURN(part_tables[p],
                                 merged_p.Finish(merge_eval, &part_stamps[p]));
            return Status::OK();
          });
      GQL_RETURN_IF_ERROR(merge_status);
      merge_tasks += partitions;
      Table grouped(part_tables[0].fields());
      std::vector<size_t> pos(partitions, 0);
      while (true) {
        size_t best = partitions;
        for (size_t p = 0; p < partitions; ++p) {
          if (pos[p] >= part_stamps[p].size()) continue;
          if (best == partitions ||
              part_stamps[p][pos[p]] < part_stamps[best][pos[best]]) {
            best = p;
          }
        }
        if (best == partitions) break;
        grouped.AddRow(
            std::move(part_tables[best].mutable_rows()[pos[best]]));
        ++pos[best];
      }
      GQL_ASSIGN_OR_RETURN(
          Table tailed, ApplyProjectionTail(body, std::move(grouped), nullptr,
                                            nullptr, merge_eval));
      return merge_proj->FilterWhere(std::move(tailed));
    }

    if (aggregates) {
      // Keyless: a single group per range — the direct-fold chain is
      // O(1) per partial, so no partitioning is worth it.
      AggregationState merged = std::move(*range_aggs[0]);
      for (size_t r = 1; r < num_morsels; ++r) {
        GQL_RETURN_IF_ERROR(merged.MergeFrom(std::move(*range_aggs[r])));
      }
      GQL_ASSIGN_OR_RETURN(Table grouped, merged.Finish(merge_eval));
      GQL_ASSIGN_OR_RETURN(
          Table tailed, ApplyProjectionTail(body, std::move(grouped), nullptr,
                                            nullptr, merge_eval));
      return merge_proj->FilterWhere(std::move(tailed));
    }

    if (distinct) {
      // `partitions` independent seen-sets, each walking its share of
      // every range in (range, row) order; the serial interleave of the
      // survivors keeps the serial first occurrence of every distinct
      // row.
      std::vector<std::vector<RowSeq>> survivors(partitions);
      GQL_RETURN_IF_ERROR(
          pool->RunTasks(partitions, [&](size_t p) -> Status {
            std::unordered_set<const ValueList*, RowPtrHash, RowPtrEq> seen;
            for (size_t r = 0; r < num_morsels; ++r) {
              const Table& t = range_proj[r];
              for (uint64_t i : range_parts[r][p]) {
                if (seen.insert(&t.rows()[i]).second) {
                  survivors[p].push_back(RowSeq{r, i});
                }
              }
            }
            return Status::OK();
          }));
      merge_tasks += partitions;
      GQL_ASSIGN_OR_RETURN(
          Table shape,
          merge_proj->ProjectChunk(Table(merge_proj->child()->schema()),
                                   nullptr));
      Table deduped(shape.fields());
      std::vector<size_t> pos(partitions, 0);
      while (true) {
        size_t best = partitions;
        for (size_t p = 0; p < partitions; ++p) {
          if (pos[p] >= survivors[p].size()) continue;
          if (best == partitions ||
              SeqLess(survivors[p][pos[p]], survivors[best][pos[best]])) {
            best = p;
          }
        }
        if (best == partitions) break;
        RowSeq s = survivors[best][pos[best]++];
        deduped.AddRow(
            std::move(range_proj[s.range].mutable_rows()[s.idx]));
      }

      if (!body.order_by.empty()) {
        // ORDER BY after DISTINCT reuses the merge-sort machinery: key
        // and sort chunks of the deduped rows in parallel (the source
        // pairing is gone after DISTINCT, exactly as in the serial
        // tail), then tree-merge.
        size_t n = deduped.NumRows();
        size_t min_one = n == 0 ? 1 : n;
        size_t chunks = partitions < min_one ? partitions : min_one;
        size_t per = (n + chunks - 1) / chunks;
        std::vector<SortedRun> runs(chunks);
        GQL_RETURN_IF_ERROR(pool->RunTasks(chunks, [&](size_t c) -> Status {
          size_t lo = c * per;
          size_t hi = lo + per < n ? lo + per : n;
          SortedRun run;
          run.reserve(hi - lo);
          for (size_t i = lo; i < hi; ++i) {
            GQL_ASSIGN_OR_RETURN(
                ValueList keys,
                OrderKeysForRow(body, deduped, deduped.rows()[i], nullptr,
                                nullptr, merge_eval));
            run.push_back(SortRow{ValueList(), std::move(keys), 0, i});
          }
          std::sort(run.begin(), run.end(),
                    [&body](const SortRow& a, const SortRow& b) {
                      return SortRowLess(body, a, b);
                    });
          if (run.size() > topk) run.resize(static_cast<size_t>(topk));
          // Rows move only for the survivors of the bound; every chunk
          // touches a disjoint index range of `deduped`.
          for (SortRow& sr : run) {
            sr.row = std::move(deduped.mutable_rows()[sr.idx]);
          }
          runs[c] = std::move(run);
          return Status::OK();
        }));
        merge_tasks += chunks;
        GQL_RETURN_IF_ERROR(
            TreeMergeRuns(pool, body, &runs, topk, &merge_tasks));
        Table sorted(deduped.fields());
        for (SortRow& sr : runs[0]) sorted.AddRow(std::move(sr.row));
        deduped = std::move(sorted);
      }
      GQL_ASSIGN_OR_RETURN(
          Table sliced, SliceSkipLimit(body, std::move(deduped), merge_eval));
      return merge_proj->FilterWhere(std::move(sliced));
    }

    if (sort_only) {
      std::vector<SortedRun> runs = std::move(range_runs);
      GQL_RETURN_IF_ERROR(
          TreeMergeRuns(pool, body, &runs, topk, &merge_tasks));
      GQL_ASSIGN_OR_RETURN(
          Table shape,
          merge_proj->ProjectChunk(Table(merge_proj->child()->schema()),
                                   nullptr));
      Table sorted(shape.fields());
      for (SortRow& sr : runs[0]) sorted.AddRow(std::move(sr.row));
      GQL_ASSIGN_OR_RETURN(
          Table sliced, SliceSkipLimit(body, std::move(sorted), merge_eval));
      return merge_proj->FilterWhere(std::move(sliced));
    }

    Table merged(merge_proj->child()->schema());
    for (Table& t : range_child) {
      for (ValueList& row : t.mutable_rows()) {
        merged.AddRow(std::move(row));
      }
    }
    return merge_proj->ProjectTable(std::move(merged));
  };

  GQL_ASSIGN_OR_RETURN(Table merged, compute_merged());
  if (pstats != nullptr) pstats->merge_tasks = merge_tasks;
  return finish_above(std::move(merged));
}

}  // namespace gqlite
