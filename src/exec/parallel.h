#ifndef GQLITE_EXEC_PARALLEL_H_
#define GQLITE_EXEC_PARALLEL_H_

#include <cstddef>
#include <string>

#include "src/common/sync.h"

#include "src/exec/worker_pool.h"
#include "src/plan/planner.h"

namespace gqlite {

/// Morsel-driven parallel execution of compiled plans (ROADMAP's "worker
/// pool stealing morsel boundaries"). The model:
///
///  * The planner builds one pipeline INSTANCE per worker (structurally
///    identical operator trees over the same AST — operators are
///    stateful single-use pipelines, so workers must not share them).
///  * The driving scan of each instance is morsel-partitioned: a shared
///    MorselDispatcher splits the scan domain (node slots / label-index
///    entries) into contiguous ranges that workers claim atomically —
///    work stealing falls out of the shared claim counter.
///  * A worker binds its instance's scan to the claimed range, re-Opens
///    the pipeline, drains it, and buffers the result PER RANGE.
///  * The MERGE POINT is the lowest pipeline breaker on the projection
///    spine (a projection with aggregation / DISTINCT / ORDER BY / SKIP /
///    LIMIT), or the root projection when no breaker exists. Everything
///    below it distributes over the scan partition; everything above it
///    resumes serially on the merged output (ProjectionOp::PreloadResult),
///    so an intermediate WITH breaker no longer forces the whole plan
///    serial.
///  * The merge itself parallelizes per breaker kind, on the same pool
///    (WorkerPool::RunTasks), always reproducing the serial output
///    byte-for-byte:
///      - ORDER BY: per-range local sorts ordered by (keys, range, row) —
///        a STRICT total order, so the tree-structured pairwise run merge
///        is shape-independent and reproduces std::stable_sort exactly;
///        SKIP/LIMIT push a top-K bound into the local sorts and merges.
///      - keyed aggregation: rows hash-partition on their group key
///        (RowHash — the group index's own equivalence-consistent hash),
///        so the merge becomes independent per-partition MergeFrom chains;
///        GroupStamps recorded at group creation let the final interleave
///        restore serial first-occurrence group order. Keyless
///        aggregation keeps the direct-fold chain (single group, O(1) per
///        partial).
///      - DISTINCT: the same key-partitioning over whole rows gives
///        independent per-partition seen-sets; survivors interleave back
///        by (range, row), keeping the serial first occurrence.
///    One DELIBERATE semantic edge survives from the partial-aggregation
///    model: sum() over int64 adds in chunks, so a serial run whose
///    running sum overflows mid-stream (while the true total is
///    representable) can raise where the chunked run returns the total.
///    Cypher leaves accumulation order unspecified; the strict guarantee
///    kept is one-sided — any overflow the MERGE itself produces still
///    raises EvaluationError, never wraps.
///
/// Plans qualify when every operator below the merge point distributes
/// over a partition of the driving scan (per-row operators: Expand,
/// Filter, Unwind, Apply, simple WITH) and the query calls no
/// nondeterministic function (rand() mutates engine-shared PRNG state).
/// Everything else — UNION, OPTIONAL MATCH at the driving position,
/// matcher-fallback driving patterns, updating queries
/// (interpreter-only) — stays on the serial runtime.

/// One contiguous chunk of a partitioned scan domain.
struct ScanMorsel {
  size_t index = 0;  // position in range order (deterministic merge key)
  size_t begin = 0;
  size_t end = 0;
};

/// Splits `domain` positions into ceil(domain/chunk) contiguous morsels
/// claimed atomically by workers. Thread-safe; claim order is first-come.
class MorselDispatcher {
 public:
  MorselDispatcher(size_t domain, size_t chunk)
      : domain_(domain), chunk_(chunk == 0 ? 1 : chunk) {
    count_ = domain_ == 0 ? 0 : (domain_ + chunk_ - 1) / chunk_;
  }

  /// Claims the next morsel; false once the domain is exhausted.
  bool Next(ScanMorsel* out) {
    size_t i = next_.FetchAdd(1);
    if (i >= count_) return false;
    out->index = i;
    out->begin = i * chunk_;
    out->end = out->begin + chunk_ < domain_ ? out->begin + chunk_ : domain_;
    return true;
  }

  size_t num_morsels() const { return count_; }
  size_t chunk() const { return chunk_; }

 private:
  size_t domain_;
  size_t chunk_;
  size_t count_;
  /// The shared claim counter — work stealing falls out of FetchAdd.
  AtomicCounter next_;
};

/// Scan-range chunk for `domain` positions across `workers` workers:
/// roughly eight morsels per worker (steal granularity) with a floor that
/// keeps tiny domains from paying a pipeline re-Open per handful of
/// nodes.
size_t MorselChunk(size_t domain, size_t workers);

/// Result of analyzing one compiled operator tree for parallel
/// execution: the merge-point projection (the lowest pipeline breaker on
/// the projection spine, or the root) and the partitioned driving scan,
/// or the reason the plan stays serial.
struct ParallelCandidate {
  bool ok = false;
  std::string reason;
  ProjectionOp* projection = nullptr;
  PartitionedScan* scan = nullptr;
  /// Human-readable merge-stage shape ("parallel merge sort",
  /// "partitioned aggregation merge", ...) for EXPLAIN/PROFILE.
  std::string merge_shape;
  /// True when the merge point is an intermediate WITH (operators above
  /// it resume serially on the merged output).
  bool merge_below_root = false;
};
ParallelCandidate AnalyzeParallelCandidate(Operator* root);

/// True if any expression in the query calls rand() — which both mutates
/// engine-shared PRNG state (a data race across workers) and makes
/// results depend on evaluation order.
bool QueryCallsNondeterministicFunction(const ast::Query& q);

/// Per-execution counters surfaced through PROFILE and gqlsh :stats.
struct ParallelRunStats {
  size_t workers = 0;
  size_t morsels = 0;
  /// Merge-stage tasks submitted to the pool (pairwise run merges,
  /// per-partition aggregation/DISTINCT merges, chunk sorts).
  size_t merge_tasks = 0;
  /// Which parallel merge stages this execution ran.
  bool sort_merge = false;
  bool partitioned_agg = false;
  bool partitioned_distinct = false;
};

/// Executes a parallel-safe plan (Plan::parallel.safe) on `pool` (workers
/// = pool->size() + 1 including the calling thread; the plan must carry
/// at least that many instances is NOT required — extra pool threads
/// idle, extra instances go unused). `stats` accumulates rows/batches
/// drained across all workers.
Result<Table> ExecutePlanParallel(Plan* plan, WorkerPool* pool,
                                  size_t batch_size,
                                  BatchStats* stats = nullptr,
                                  ParallelRunStats* pstats = nullptr);

}  // namespace gqlite

#endif  // GQLITE_EXEC_PARALLEL_H_
