#ifndef GQLITE_EXEC_PARALLEL_H_
#define GQLITE_EXEC_PARALLEL_H_

#include <cstddef>
#include <string>

#include "src/common/sync.h"

#include "src/exec/worker_pool.h"
#include "src/plan/planner.h"

namespace gqlite {

/// Morsel-driven parallel execution of compiled plans (ROADMAP's "worker
/// pool stealing morsel boundaries"). The model:
///
///  * The planner builds one pipeline INSTANCE per worker (structurally
///    identical operator trees over the same AST — operators are
///    stateful single-use pipelines, so workers must not share them).
///  * The driving scan of each instance is morsel-partitioned: a shared
///    MorselDispatcher splits the scan domain (node slots / label-index
///    entries) into contiguous ranges that workers claim atomically —
///    work stealing falls out of the shared claim counter.
///  * A worker binds its instance's scan to the claimed range, re-Opens
///    the pipeline, drains it, and buffers the result PER RANGE.
///  * The merge stage runs serially after the pool barrier and
///    concatenates per-range results in range order — exactly the order
///    the serial scan produces — before the root projection runs once
///    over the merged rows. ORDER BY / DISTINCT / SKIP / LIMIT therefore
///    see the same input as a serial run (the pipeline-breaker barrier),
///    and ORDER BY output is byte-identical regardless of thread count.
///  * For aggregating root projections the workers instead fold each
///    range into an AggregationState and the merge stage combines the
///    partial aggregates in range order (count/sum/min/max/avg/collect
///    merge; see Aggregator::MergePartial) — the pre-aggregation rows
///    never materialize centrally. One DELIBERATE semantic edge: sum()
///    over int64 adds in chunks, so a serial run whose running sum
///    overflows mid-stream (while the true total is representable) can
///    raise where the chunked run returns the total. Cypher leaves
///    accumulation order unspecified; the strict guarantee kept is
///    one-sided — any overflow the MERGE itself produces still raises
///    EvaluationError, never wraps.
///
/// Plans qualify when every operator below the root projection
/// distributes over a partition of the driving scan (per-row operators:
/// Expand, Filter, Unwind, Apply, simple WITH) and the query calls no
/// nondeterministic function (rand() mutates engine-shared PRNG state).
/// Everything else — UNION, aggregating/sorting WITH, OPTIONAL MATCH at
/// the driving position, matcher-fallback driving patterns, updating
/// queries (interpreter-only) — stays on the serial runtime.

/// One contiguous chunk of a partitioned scan domain.
struct ScanMorsel {
  size_t index = 0;  // position in range order (deterministic merge key)
  size_t begin = 0;
  size_t end = 0;
};

/// Splits `domain` positions into ceil(domain/chunk) contiguous morsels
/// claimed atomically by workers. Thread-safe; claim order is first-come.
class MorselDispatcher {
 public:
  MorselDispatcher(size_t domain, size_t chunk)
      : domain_(domain), chunk_(chunk == 0 ? 1 : chunk) {
    count_ = domain_ == 0 ? 0 : (domain_ + chunk_ - 1) / chunk_;
  }

  /// Claims the next morsel; false once the domain is exhausted.
  bool Next(ScanMorsel* out) {
    size_t i = next_.FetchAdd(1);
    if (i >= count_) return false;
    out->index = i;
    out->begin = i * chunk_;
    out->end = out->begin + chunk_ < domain_ ? out->begin + chunk_ : domain_;
    return true;
  }

  size_t num_morsels() const { return count_; }
  size_t chunk() const { return chunk_; }

 private:
  size_t domain_;
  size_t chunk_;
  size_t count_;
  /// The shared claim counter — work stealing falls out of FetchAdd.
  AtomicCounter next_;
};

/// Scan-range chunk for `domain` positions across `workers` workers:
/// roughly eight morsels per worker (steal granularity) with a floor that
/// keeps tiny domains from paying a pipeline re-Open per handful of
/// nodes.
size_t MorselChunk(size_t domain, size_t workers);

/// Result of analyzing one compiled operator tree for parallel
/// execution: the root projection (merge stage) and the partitioned
/// driving scan, or the reason the plan stays serial.
struct ParallelCandidate {
  bool ok = false;
  std::string reason;
  ProjectionOp* projection = nullptr;
  PartitionedScan* scan = nullptr;
};
ParallelCandidate AnalyzeParallelCandidate(Operator* root);

/// True if any expression in the query calls rand() — which both mutates
/// engine-shared PRNG state (a data race across workers) and makes
/// results depend on evaluation order.
bool QueryCallsNondeterministicFunction(const ast::Query& q);

/// Per-execution counters surfaced through PROFILE and gqlsh :stats.
struct ParallelRunStats {
  size_t workers = 0;
  size_t morsels = 0;
};

/// Executes a parallel-safe plan (Plan::parallel.safe) on `pool` (workers
/// = pool->size() + 1 including the calling thread; the plan must carry
/// at least that many instances is NOT required — extra pool threads
/// idle, extra instances go unused). `stats` accumulates rows/batches
/// drained across all workers.
Result<Table> ExecutePlanParallel(Plan* plan, WorkerPool* pool,
                                  size_t batch_size,
                                  BatchStats* stats = nullptr,
                                  ParallelRunStats* pstats = nullptr);

}  // namespace gqlite

#endif  // GQLITE_EXEC_PARALLEL_H_
